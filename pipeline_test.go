package cloudmedia_test

import (
	"context"
	"math"
	"testing"

	"cloudmedia"
	"cloudmedia/pkg/plan"
)

func TestPipelineMatchesPlanPrimitives(t *testing.T) {
	// The facade must compute exactly what the pkg/plan building blocks
	// compute when composed by hand.
	p, err := cloudmedia.NewPipeline(
		cloudmedia.WithArrivalRate(0.25),
		cloudmedia.WithPeerUplink(34e3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ch := plan.PaperChannel()
	m, err := plan.PaperViewing(ch.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := plan.SolveEquilibrium(ch, m, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	supply, err := plan.SolvePeerSupply(eq, m, 34e3)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := res.TotalCapacity(), eq.TotalCapacity(); got != want {
		t.Errorf("TotalCapacity = %v, want %v", got, want)
	}
	if got, want := res.TotalPeerSupply(), supply.TotalPeerSupply(); got != want {
		t.Errorf("TotalPeerSupply = %v, want %v", got, want)
	}
	if got, want := res.TotalCloudDemand(), supply.TotalCloudDemand(); got != want {
		t.Errorf("TotalCloudDemand = %v, want %v", got, want)
	}

	vmPlan, err := plan.PlanVMs(plan.Demands(0, supply.CloudDemand), ch.VMBandwidth, plan.DefaultVMClusters(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.VMPlan.CostPerHour, vmPlan.CostPerHour; got != want {
		t.Errorf("VM cost = %v, want %v", got, want)
	}
}

func TestPipelineClientServerUsesFullCapacity(t *testing.T) {
	p, err := cloudmedia.NewPipeline(cloudmedia.WithArrivalRate(0.25))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Channels[0].Supply != nil {
		t.Error("Supply should be nil without peer uplink")
	}
	if got, want := res.TotalCloudDemand(), res.TotalCapacity(); math.Abs(got-want) > 1e-9 {
		t.Errorf("cloud demand %v != capacity %v in client-server analysis", got, want)
	}
}

func TestPipelineMultiChannel(t *testing.T) {
	p, err := cloudmedia.NewPipeline(
		cloudmedia.WithChunks(6),
		cloudmedia.WithChunkSeconds(100),
		cloudmedia.WithArrivalRate(0.3, 0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Channels) != 2 {
		t.Fatalf("channels = %d, want 2", len(res.Channels))
	}
	if len(res.Demands) != 12 {
		t.Fatalf("demands = %d, want 12", len(res.Demands))
	}
	if res.Channels[0].Equilibrium.TotalCapacity() <= res.Channels[1].Equilibrium.TotalCapacity() {
		t.Error("the busier channel should need more capacity")
	}
	// Every chunk must be stored exactly once.
	if got := len(res.StoragePlan.Placements); got != 12 {
		t.Errorf("storage placements = %d, want 12", got)
	}
}

func TestPipelineOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []cloudmedia.Option
	}{
		{"transfer-viewing conflict", []cloudmedia.Option{
			cloudmedia.WithTransfer(plan.TransferMatrix{{0}}),
			cloudmedia.WithViewing(0.9, 0.3),
		}},
		{"viewing-transfer conflict", []cloudmedia.Option{
			cloudmedia.WithViewing(0.9, 0.3),
			cloudmedia.WithTransfer(plan.TransferMatrix{{0}}),
		}},
		{"empty arrival rates", []cloudmedia.Option{cloudmedia.WithArrivalRate()}},
		{"negative arrival rate", []cloudmedia.Option{cloudmedia.WithArrivalRate(-1)}},
		{"negative uplink", []cloudmedia.Option{cloudmedia.WithPeerUplink(-1)}},
		{"invalid chunks", []cloudmedia.Option{cloudmedia.WithChunks(0)}},
		{"transfer size mismatch", []cloudmedia.Option{
			cloudmedia.WithChunks(4),
			cloudmedia.WithTransfer(plan.TransferMatrix{{0}}),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cloudmedia.NewPipeline(tc.opts...); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestPipelineContextCancelled(t *testing.T) {
	p, err := cloudmedia.NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNewScenarioOverrides(t *testing.T) {
	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithScale(1),
		cloudmedia.WithHours(6),
		cloudmedia.WithSeed(7),
		cloudmedia.WithChunks(4),
		cloudmedia.WithBudgets(50, 0.5),
		cloudmedia.WithUplinkRatio(1.2),
		cloudmedia.WithChannels(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Hours != 6 || sc.Seed != 7 || sc.Channel.Chunks != 4 {
		t.Errorf("overrides not applied: %+v", sc)
	}
	if sc.VMBudget != 50 || sc.StorageBudget != 0.5 {
		t.Errorf("budgets not applied: %v %v", sc.VMBudget, sc.StorageBudget)
	}
	if sc.UplinkRatio != 1.2 || sc.Workload.Channels != 3 {
		t.Errorf("workload knobs not applied: %+v", sc)
	}
}

func TestNewScenarioInvalid(t *testing.T) {
	if _, err := cloudmedia.NewScenario(cloudmedia.Mode(99)); err == nil {
		t.Error("invalid mode: want error")
	}
	if _, err := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithHours(-1)); err == nil {
		t.Error("negative hours: want error")
	}
}

// TestNewScenarioWithTrace pins the root-level demand-source options:
// WithTrace installs the trace (channel count and all), nil and
// conflicting sources fail, and the built scenario runs.
func TestNewScenarioWithTrace(t *testing.T) {
	tr := &cloudmedia.Trace{
		Times: []float64{0, 1800, 3600},
		Rates: [][]float64{{0.3, 0.5, 0.3}, {0.1, 0.1, 0.1}},
	}
	sc, err := cloudmedia.NewScenario(cloudmedia.ClientServer,
		cloudmedia.WithTrace(tr),
		cloudmedia.WithHours(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Source == nil {
		t.Fatal("WithTrace did not install the demand source")
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanQuality <= 0 {
		t.Errorf("trace-driven run quality %v", rep.MeanQuality)
	}

	if _, err := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithTrace(nil)); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithWorkloadSource(nil)); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := cloudmedia.NewScenario(cloudmedia.ClientServer,
		cloudmedia.WithTrace(tr), cloudmedia.WithWorkloadSource(tr)); err == nil {
		t.Error("conflicting demand-source options accepted")
	}
}
