// Cloudentry: the Sec. V-B control/data plane end to end over real TCP.
//
// A peer looking for a chunk asks the tracker for suppliers. With no peers
// holding the chunk, the tracker answers with the paper's 3-tuple
// ⟨entry-point address, ports, ticket⟩. The peer then fetches the chunk
// through the cloud entry point, which port-forwards to a VM chunk server
// that verifies the HMAC ticket before streaming the bytes.
//
// Run with: go run ./examples/cloudentry
package main

import (
	"fmt"
	"log"

	"cloudmedia/pkg/tracker"
	"cloudmedia/pkg/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	secret := []byte("cloudmedia-demo-secret")
	store := transport.SyntheticStore{Channels: 4, Chunks: 20, ChunkSize: 64 << 10}

	// Two VM chunk servers, as the VM scheduler would launch them.
	verify := func(ticket string, channel, chunk int, peer uint64, expiry uint64) error {
		return tracker.VerifyTicket(secret, ticket, channel, chunk, tracker.PeerID(peer), expiry-1)
	}
	vm1, err := transport.NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		return err
	}
	defer vm1.Close()
	vm2, err := transport.NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		return err
	}
	defer vm2.Close()

	// One public entry point forwarding to both VMs.
	entry, err := transport.NewEntryPoint("127.0.0.1:0", []string{vm1.Addr(), vm2.Addr()})
	if err != nil {
		return err
	}
	defer entry.Close()
	fmt.Printf("entry point %s forwarding to VMs %s, %s\n", entry.Addr(), vm1.Addr(), vm2.Addr())

	// Tracker knows the entry point and shares the ticket secret.
	tr, err := tracker.New(20, []tracker.EntryPoint{{Addr: entry.Addr()}}, secret)
	if err != nil {
		return err
	}

	// A freshly joined peer wants chunk 7 of channel 2; nobody has it.
	const peer = tracker.PeerID(4242)
	tr.Join(2, peer)
	peers, grant, err := tr.Lookup(2, 7, peer, 1, 8, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("tracker lookup: %d peer suppliers, cloud grant issued: %v\n", len(peers), grant != nil)
	if grant == nil {
		return fmt.Errorf("expected a cloud grant")
	}

	// Fetch through the granted entry point with the ticket.
	data, err := transport.FetchChunk(grant.Entry.Addr, 2, 7, uint64(peer), 1000, grant.Ticket)
	if err != nil {
		return err
	}
	fmt.Printf("fetched chunk (2,7): %d bytes through the cloud entry point\n", len(data))

	// A forged ticket is refused at the VM.
	if _, err := transport.FetchChunk(grant.Entry.Addr, 2, 8, uint64(peer), 1000, grant.Ticket); err != nil {
		fmt.Printf("reusing the ticket for another chunk is refused: %v\n", err)
	}

	// Once the peer announces the chunk, later lookups return it as a
	// supplier instead of burdening the cloud.
	if err := tr.Announce(2, peer, 7); err != nil {
		return err
	}
	tr.Join(2, 4243)
	peers, grant, err = tr.Lookup(2, 7, 4243, 1, 8, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("after announce: %d peer supplier(s), cloud grant issued: %v\n", len(peers), grant != nil)
	return nil
}
