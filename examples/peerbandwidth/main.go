// Peerbandwidth: streaming quality versus peer uplink headroom, Fig. 11 in
// miniature.
//
// Three P2P runs with mean peer uplink at 0.9×, 1.0×, and 1.2× the
// streaming rate. The paper's finding: quality stays satisfactory at every
// ratio, because the hourly provisioning absorbs whatever the overlay
// cannot supply.
//
// Run with: go run ./examples/peerbandwidth
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmedia/internal/experiments"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tbl := metrics.NewTable("P2P quality and cloud spend vs peer uplink ratio",
		"uplink_ratio", "mean_quality", "vm_cost_per_hour", "reserved_mbps")
	for _, ratio := range []float64{0.9, 1.0, 1.2} {
		sc := experiments.DefaultScenario(sim.P2P, 2)
		sc.Hours = 8
		sc.UplinkRatio = ratio
		tl, err := experiments.RunTimeline(sc)
		if err != nil {
			return err
		}
		tbl.AddRow(ratio, tl.MeanQuality, tl.MeanHourlyVMCost(), tl.MeanReservedMbps())
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nricher peers shift bytes off the cloud; quality holds in every case")
	return nil
}
