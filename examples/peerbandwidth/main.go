// Peerbandwidth: streaming quality versus peer uplink headroom, Fig. 11 in
// miniature.
//
// Three cloud-assisted runs with mean peer uplink at 0.9×, 1.0×, and 1.2×
// the streaming rate. The paper's finding: quality stays satisfactory at
// every ratio, because the hourly provisioning absorbs whatever the
// overlay cannot supply.
//
// Run with: go run ./examples/peerbandwidth
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/paper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tbl := paper.NewTable("P2P quality and cloud spend vs peer uplink ratio",
		"uplink_ratio", "mean_quality", "vm_cost_per_hour", "reserved_mbps")
	for _, ratio := range []float64{0.9, 1.0, 1.2} {
		sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
			cloudmedia.WithScale(2),
			cloudmedia.WithHours(8),
			cloudmedia.WithUplinkRatio(ratio),
		)
		if err != nil {
			return err
		}
		rep, err := sc.Run(context.Background())
		if err != nil {
			return err
		}
		tbl.AddRow(ratio, rep.MeanQuality, rep.VMCostTotal/rep.Hours, rep.MeanReservedMbps)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nricher peers shift bytes off the cloud; quality holds in every case")
	return nil
}
