// Costcompare: client-server versus cloud-assisted P2P rental cost,
// Fig. 10 in miniature.
//
// Runs the same 12-hour workload twice — once with every chunk served from
// the cloud, once with the mesh-pull P2P overlay assisting — and prints the
// hourly VM rental cost side by side, plus the storage bill that the paper
// notes is negligible next to VM rental.
//
// Run with: go run ./examples/costcompare
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/simulate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type outcome struct {
	hourlyCost []float64
	quality    float64
	storage    float64
}

// runMode simulates 12 hours in the given mode, sampling the cumulative VM
// bill once per simulated hour.
func runMode(ctx context.Context, mode simulate.Mode) (outcome, error) {
	sc := simulate.Default(mode, 2)
	sc.Hours = 12
	sc.SampleSeconds = 3600

	var out outcome
	prev := 0.0
	rep, err := sc.Run(ctx, simulate.OnSnapshot(func(snap simulate.Snapshot) {
		out.hourlyCost = append(out.hourlyCost, snap.VMCost-prev)
		prev = snap.VMCost
	}))
	if err != nil {
		return outcome{}, err
	}
	out.quality = rep.MeanQuality
	out.storage = rep.StorageCostTotal
	return out, nil
}

func run() error {
	ctx := context.Background()
	cs, err := runMode(ctx, simulate.ClientServer)
	if err != nil {
		return err
	}
	pp, err := runMode(ctx, simulate.CloudAssisted)
	if err != nil {
		return err
	}

	tbl := paper.NewTable("VM rental cost, client-server vs cloud-assisted P2P ($/hour)",
		"hour", "client_server", "cloud_assisted")
	var csTotal, ppTotal float64
	for i := range cs.hourlyCost {
		var p float64
		if i < len(pp.hourlyCost) {
			p = pp.hourlyCost[i]
			ppTotal += p
		}
		csTotal += cs.hourlyCost[i]
		tbl.AddRow(i+1, cs.hourlyCost[i], p)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotals: client-server $%.2f, cloud-assisted $%.2f (%.0f%% saved)\n",
		csTotal, ppTotal, 100*(1-ppTotal/csTotal))
	fmt.Printf("streaming quality: client-server %.3f, cloud-assisted %.3f\n", cs.quality, pp.quality)
	fmt.Printf("storage bill (either mode): ≈$%.5f — negligible, as the paper observes\n", cs.storage)
	return nil
}
