// Costcompare: client-server versus P2P rental cost, Fig. 10 in miniature.
//
// Runs the same 12-hour workload twice — once with every chunk served from
// the cloud, once with the mesh-pull P2P overlay assisting — and prints the
// hourly VM rental cost side by side, plus the storage bill that the paper
// notes is negligible next to VM rental.
//
// Run with: go run ./examples/costcompare
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmedia/internal/experiments"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type outcome struct {
		hourly  []experiments.Hourly
		quality float64
		storage float64
	}
	runMode := func(mode sim.Mode) (outcome, error) {
		sc := experiments.DefaultScenario(mode, 2)
		sc.Hours = 12
		tl, err := experiments.RunTimeline(sc)
		if err != nil {
			return outcome{}, err
		}
		return outcome{hourly: tl.Hourlies, quality: tl.MeanQuality, storage: tl.StorageCostTotal}, nil
	}

	cs, err := runMode(sim.ClientServer)
	if err != nil {
		return err
	}
	pp, err := runMode(sim.P2P)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("VM rental cost, client-server vs P2P ($/hour)",
		"hour", "client_server", "p2p")
	var csTotal, ppTotal float64
	for i := range cs.hourly {
		var p float64
		if i < len(pp.hourly) {
			p = pp.hourly[i].VMCostPerHour
			ppTotal += p
		}
		csTotal += cs.hourly[i].VMCostPerHour
		tbl.AddRow(cs.hourly[i].Hour, cs.hourly[i].VMCostPerHour, p)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotals: client-server $%.2f, P2P $%.2f (%.0f%% saved)\n",
		csTotal, ppTotal, 100*(1-ppTotal/csTotal))
	fmt.Printf("streaming quality: client-server %.3f, P2P %.3f\n", cs.quality, pp.quality)
	fmt.Printf("storage bill (either mode): ≈$%.5f — negligible, as the paper observes\n", cs.storage)
	return nil
}
