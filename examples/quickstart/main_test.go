package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestQuickstartGolden pins the quickstart output byte for byte: the
// analytic pipeline is deterministic, so any drift means the public API
// changed the numbers the README promises. Refresh with
// `go test ./examples/quickstart -update`.
func TestQuickstartGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quickstart.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("quickstart output drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
