// Quickstart: the CloudMedia analysis pipeline on a single channel.
//
// It walks the whole Sec. IV/V derivation for one video channel with the
// paper's parameters: solve the Jackson queueing network for the per-chunk
// server demand, subtract the expected peer supply, and turn the residual
// cloud demand into a concrete VM + storage rental plan against the
// Table II/III catalogs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/p2p"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's channel parameters: r = 50 KB/s (400 Kbps), 5-minute
	// chunks, 100-minute video → 20 chunks, 10 Mbps VMs.
	cfg := queueing.Config{
		Chunks:          20,
		PlaybackRate:    50e3,
		ChunkSeconds:    300,
		VMBandwidth:     cloud.DefaultVMBandwidth,
		EntryFirstChunk: 0.7,
	}

	// Viewing behaviour: sequential watching with VCR jumps every ~15 min.
	transfer, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		return err
	}

	// Demand side: 900 arrivals/hour into this channel.
	lambda := 900.0 / 3600
	eq, err := queueing.Solve(cfg, transfer, lambda, 0)
	if err != nil {
		return err
	}

	// Supply side: peers with ~270 Kbps mean uplink.
	res, err := p2p.Solve(p2p.Analysis{
		Equilibrium: eq,
		Transfer:    transfer,
		PeerUpload:  34e3,
	})
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("Per-chunk equilibrium (Λ = 0.25/s, 20 chunks)",
		"chunk", "arrival_rate", "servers", "capacity_mbps", "owners", "peer_mbps", "cloud_mbps")
	for i := 0; i < cfg.Chunks; i++ {
		tbl.AddRow(i, eq.ArrivalRates[i], eq.Servers[i],
			eq.Capacity[i]*8/1e6, res.Owners[i], res.PeerSupply[i]*8/1e6, res.CloudDemand[i]*8/1e6)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotal capacity: %.1f Mbps, peer supply: %.1f Mbps, cloud residual: %.1f Mbps\n\n",
		eq.TotalCapacity()*8/1e6, res.TotalPeerSupply()*8/1e6, res.TotalCloudDemand()*8/1e6)

	// Rental plans against the paper's catalogs and budgets.
	var demands []provision.ChunkDemand
	for i, d := range res.CloudDemand {
		demands = append(demands, provision.ChunkDemand{Channel: 0, Chunk: i, Demand: d})
	}
	vmPlan, err := provision.PlanVMs(demands, cfg.VMBandwidth, cloud.DefaultVMClusters(), 100)
	if err != nil {
		return err
	}
	fmt.Printf("VM plan: %.2f VMs (%v rented), $%.2f/hour, utility %.2f\n",
		vmPlan.TotalVMs(), vmPlan.RentalVMs(), vmPlan.CostPerHour, vmPlan.Utility)

	storagePlan, err := provision.PlanStorage(demands, cfg.ChunkBytes(), cloud.DefaultNFSClusters(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("storage plan: %v, $%.5f/hour\n", storagePlan.GBPerCluster, storagePlan.CostPerHour)
	return nil
}
