// Quickstart: the CloudMedia analysis pipeline on a single channel.
//
// It walks the whole Sec. IV/V derivation for one video channel with the
// paper's parameters — solve the Jackson queueing network for the
// per-chunk server demand, subtract the expected peer supply, and turn the
// residual cloud demand into a concrete VM + storage rental plan against
// the Table II/III catalogs — using nothing but the public cloudmedia
// package.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"cloudmedia"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The paper's channel parameters are the pipeline's defaults: r = 50
	// KB/s (400 Kbps), 5-minute chunks, 100-minute video → 20 chunks, 10
	// Mbps VMs, sequential viewing with VCR jumps. We set the demand side
	// (900 arrivals/hour) and the supply side (~270 Kbps mean peer uplink)
	// explicitly.
	p, err := cloudmedia.NewPipeline(
		cloudmedia.WithArrivalRate(900.0/3600),
		cloudmedia.WithPeerUplink(34e3),
		cloudmedia.WithBudgets(100, 1),
	)
	if err != nil {
		return err
	}
	res, err := p.Run(context.Background())
	if err != nil {
		return err
	}

	ch := res.Channels[0]
	eq, supply := ch.Equilibrium, ch.Supply
	fmt.Fprintln(w, "Per-chunk equilibrium (Λ = 0.25/s, 20 chunks)")
	fmt.Fprintf(w, "%-6s %-13s %-8s %-14s %-8s %-10s %-10s\n",
		"chunk", "arrival_rate", "servers", "capacity_mbps", "owners", "peer_mbps", "cloud_mbps")
	for i := 0; i < eq.Config.Chunks; i++ {
		fmt.Fprintf(w, "%-6d %-13.4g %-8d %-14.4g %-8.4g %-10.4g %-10.4g\n",
			i, eq.ArrivalRates[i], eq.Servers[i], eq.Capacity[i]*8/1e6,
			supply.Owners[i], supply.PeerSupply[i]*8/1e6, ch.CloudDemand[i]*8/1e6)
	}
	fmt.Fprintf(w, "\ntotal capacity: %.1f Mbps, peer supply: %.1f Mbps, cloud residual: %.1f Mbps\n\n",
		res.TotalCapacity()*8/1e6, res.TotalPeerSupply()*8/1e6, res.TotalCloudDemand()*8/1e6)

	fmt.Fprintf(w, "VM plan: %.2f VMs (%v rented), $%.2f/hour, utility %.2f\n",
		res.VMPlan.TotalVMs(), res.VMPlan.RentalVMs(), res.VMPlan.CostPerHour, res.VMPlan.Utility)
	fmt.Fprintf(w, "storage plan: %v, $%.5f/hour\n", res.StoragePlan.GBPerCluster, res.StoragePlan.CostPerHour)
	return nil
}
