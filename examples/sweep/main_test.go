package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSweepDeterministicAcrossWorkerCounts is the acceptance contract of
// the sweep API: the 3 mode × 3 budget grid completes under a four-worker
// pool and its CSV output is byte-identical at any parallelism, because
// cell seeds derive from the grid, not from scheduling.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run(&buf, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.String()
	}
	serial := render(1)
	pooled := render(4)
	if serial != pooled {
		t.Errorf("output differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s", serial, pooled)
	}

	lines := strings.Split(strings.TrimSpace(serial), "\n")
	// Header + 9 cells, blank separator, aggregate header + 6 axis values.
	if len(lines) != 18 {
		t.Errorf("lines = %d, want 18:\n%s", len(lines), serial)
	}
	for _, line := range lines[1:10] {
		if strings.HasSuffix(line, ",") == false {
			// Result rows end with the empty error column.
			t.Errorf("cell row has a non-empty error column: %q", line)
		}
	}
}
