// Command sweep compares the paper's three VoD architectures across a
// VM-budget axis in one concurrent parameter sweep — the shape of every
// figure in the evaluation section, expressed as a cloudmedia/pkg/sweep
// grid instead of hand-rolled loops.
//
// The 3 mode × 3 budget grid expands into nine derived scenarios, each
// with a deterministic per-cell seed, and runs on a four-worker pool; the
// per-cell CSV and the per-axis-value aggregation are printed to stdout.
// Output is byte-identical for any worker count.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/sweep"
)

func main() {
	if err := run(os.Stdout, 4); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, workers int) error {
	// The base scenario every cell derives from: two simulated hours of
	// the reduced-scale workload. Axis points override mode and budget on
	// independent deep copies, so cells share no state.
	base, err := cloudmedia.NewScenario(cloudmedia.ClientServer,
		cloudmedia.WithHours(2),
		cloudmedia.WithSampleSeconds(1800),
	)
	if err != nil {
		return err
	}

	grid := sweep.Grid{
		Base: base,
		Axes: []sweep.Axis{
			sweep.Modes(cloudmedia.ClientServer, cloudmedia.P2P, cloudmedia.CloudAssisted),
			sweep.VMBudgets(50, 100, 200),
		},
	}

	results, err := sweep.Runner{Workers: workers}.Run(context.Background(), grid)
	if err != nil {
		return err
	}

	if err := sweep.WriteCSV(w, results); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return sweep.WriteAggregateCSV(w, sweep.Reduce(results))
}
