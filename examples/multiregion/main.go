// Multiregion: the paper's "ongoing work" — CloudMedia spanning
// geographic locations.
//
// Three regions with different population shares and regional VM pricing
// each run their own cloud, tracker statistics, and hourly provisioning
// controller: one scenario per region, with the global arrival trace split
// by population share and the regional price list plugged in through the
// scenario's cluster catalog. The report shows how the bill follows both
// the regional crowd and the regional price list.
//
// Run with: go run ./examples/multiregion
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// region is one geographic location: its share of global arrivals and its
// local VM price list.
type region struct {
	name       string
	share      float64
	vmClusters []plan.VMCluster
}

func run() error {
	// Asia-Pacific rents at a 20% discount; Europe at a 10% premium.
	discounted := plan.DefaultVMClusters()
	for i := range discounted {
		discounted[i].PricePerHour *= 0.8
	}
	premium := plan.DefaultVMClusters()
	for i := range premium {
		premium[i].PricePerHour *= 1.1
	}
	regions := []region{
		{name: "us-east", share: 0.5},
		{name: "eu-west", share: 0.3, vmClusters: premium},
		{name: "ap-south", share: 0.2, vmClusters: discounted},
	}

	// The global trace: 4 channels, one aggregate arrival rate; each
	// region sees its population share of it.
	const hours = 8
	const globalRate = 1.0

	tbl := paper.NewTable(fmt.Sprintf("Multi-region deployment after %d simulated hours", hours),
		"region", "viewers", "quality", "vm_cost", "cost_per_viewer")
	var totalVM, totalStorage float64
	for _, r := range regions {
		wl := simulate.DefaultWorkload()
		wl.Channels = 4
		wl.BaseArrivalRate = globalRate * r.share

		opts := []cloudmedia.Option{
			cloudmedia.WithHours(hours),
			cloudmedia.WithSeed(11),
			cloudmedia.WithWorkload(wl),
			cloudmedia.WithChunks(8),
			cloudmedia.WithChunkSeconds(75),
			cloudmedia.WithSlotsPerVM(5),
		}
		if r.vmClusters != nil {
			opts = append(opts, cloudmedia.WithVMClusters(r.vmClusters...))
		}
		sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted, opts...)
		if err != nil {
			return err
		}
		rep, err := sc.Run(context.Background())
		if err != nil {
			return err
		}

		perViewer := 0.0
		if rep.FinalUsers > 0 {
			perViewer = rep.VMCostTotal / float64(rep.FinalUsers)
		}
		tbl.AddRow(r.name, rep.FinalUsers, rep.MeanQuality, rep.VMCostTotal, perViewer)
		totalVM += rep.VMCostTotal
		totalStorage += rep.StorageCostTotal
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nglobal bill: $%.2f VMs + $%.5f storage\n", totalVM, totalStorage)
	fmt.Println("two forces show up per viewer: the regional discount cuts the bill")
	fmt.Println("proportionally, while smaller regions pay more per head because the")
	fmt.Println("per-chunk capacity floors amortize over fewer viewers — an economy of")
	fmt.Println("scale the single-region analysis already predicts")
	return nil
}
