// Multiregion: the paper's "ongoing work" — CloudMedia spanning
// geographic locations.
//
// Three regions with different population shares and regional VM pricing
// each run their own cloud, tracker statistics, and hourly provisioning
// controller. The report shows how the bill follows both the regional
// crowd and the regional price list.
//
// Run with: go run ./examples/multiregion
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/geo"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Asia-Pacific rents at a 20% discount; Europe at a 10% premium.
	discounted := cloud.DefaultVMClusters()
	for i := range discounted {
		discounted[i].PricePerHour *= 0.8
	}
	premium := cloud.DefaultVMClusters()
	for i := range premium {
		premium[i].PricePerHour *= 1.1
	}
	regions := []geo.Region{
		{Name: "us-east", Share: 0.5},
		{Name: "eu-west", Share: 0.3, VMClusters: premium},
		{Name: "ap-south", Share: 0.2, VMClusters: discounted},
	}

	channel := queueing.Config{
		Chunks:          8,
		PlaybackRate:    50e3,
		ChunkSeconds:    75,
		VMBandwidth:     cloud.DefaultVMBandwidth,
		EntryFirstChunk: 0.7,
		SlotsPerVM:      5,
	}
	transfer, err := viewing.SequentialWithJumps(channel.Chunks, 0.9, 1.0/3)
	if err != nil {
		return err
	}
	wl := workload.Default()
	wl.Channels = 4
	wl.BaseArrivalRate = 1.0

	d, err := geo.New(geo.Config{
		Regions:  regions,
		Mode:     sim.P2P,
		Channel:  channel,
		Workload: wl,
		Transfer: transfer,
		Seed:     11,
	})
	if err != nil {
		return err
	}

	const hours = 8
	d.RunUntil(hours * 3600)
	reports, totalVM, totalStorage := d.Report()

	tbl := metrics.NewTable(fmt.Sprintf("Multi-region deployment after %d simulated hours", hours),
		"region", "viewers", "quality", "vm_cost", "cost_per_viewer")
	for _, r := range reports {
		perViewer := 0.0
		if r.Users > 0 {
			perViewer = r.VMCost / float64(r.Users)
		}
		tbl.AddRow(r.Name, r.Users, r.Quality, r.VMCost, perViewer)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nglobal bill: $%.2f VMs + $%.5f storage\n", totalVM, totalStorage)
	fmt.Println("two forces show up per viewer: the regional discount cuts the bill")
	fmt.Println("proportionally, while smaller regions pay more per head because the")
	fmt.Println("per-chunk capacity floors amortize over fewer viewers — an economy of")
	fmt.Println("scale the single-region analysis already predicts")
	return nil
}
