// Command policies walks the provisioning-policy frontier: the same
// cloud-assisted day simulated under the paper's greedy heuristic, the
// lookahead policy with tear-down hysteresis, the perfect-prediction
// oracle, and the fixed peak rental — each billed under both the
// on-demand and the reserved pricing plan.
//
// The interesting read is the frontier: Oracle provisions the true
// demand (best quality at the truth's price — the perfect-prediction
// bound), Greedy's one-interval prediction lag under-provisions ramps
// (slightly cheaper, slightly worse), StaticPeak pays roughly double for
// the peak held all day, and the reserved plan rewards policies whose
// rental is steady enough to commit.
//
// Run with: go run ./examples/policies
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/paper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	base, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithHours(12),
		cloudmedia.WithScale(2),
	)
	if err != nil {
		return err
	}

	policies := []cloudmedia.Policy{
		cloudmedia.Greedy{},
		cloudmedia.Lookahead{K: 3, Hysteresis: 2},
		cloudmedia.Oracle{},
		cloudmedia.StaticPeak{},
	}
	pricings := []cloudmedia.PricingPlan{
		cloudmedia.OnDemandPricing(),
		cloudmedia.ReservedPricing(),
	}

	tbl := paper.NewTable("Provisioning-policy frontier (cloud-assisted, 12 h)",
		"policy", "pricing", "quality", "reserved_usd", "on_demand_usd", "upfront_usd", "total_usd")
	for _, pol := range policies {
		for _, pri := range pricings {
			sc := base.With(
				cloudmedia.WithPolicy(pol),
				cloudmedia.WithPricing(pri),
			)
			rep, err := sc.Run(ctx)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", pol.Name(), pri.DisplayName(), err)
			}
			b := rep.Bill
			tbl.AddRow(pol.Name(), pri.DisplayName(), rep.MeanQuality,
				b.ReservedUSD, b.OnDemandUSD, b.UpfrontUSD, b.TotalUSD())
		}
	}
	return tbl.Render(os.Stdout)
}
