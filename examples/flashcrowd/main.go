// Flashcrowd: dynamic provisioning through an evening flash crowd.
//
// A small CloudMedia deployment runs for twelve simulated hours across an
// arrival surge. The hourly controller learns the crowd from the tracker's
// statistics and scales the VM rental up and back down; the printout shows
// viewers, provisioned bandwidth, spend, and streaming quality per hour.
//
// Run with: go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmedia/internal/experiments"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc := experiments.DefaultScenario(sim.ClientServer, 2)
	sc.Hours = 12
	// One sharp flash crowd at hour 8, four times the base rate.
	sc.Workload.BaseLevel = 0.4
	sc.Workload.FlashCrowds = []workload.FlashCrowd{
		{PeakHour: 8, WidthHours: 1, Amplitude: 4},
	}

	sys, err := experiments.Build(sc)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("Flash crowd at hour 8 — hourly view",
		"hour", "viewers", "reserved_mbps", "spend_per_hour", "quality")
	var prevCost float64
	if err := sys.Sim.ScheduleRepeating(3600, 3600, func(now float64) {
		sys.Cloud.Advance(now)
		vmCost, _ := sys.Cloud.Costs()
		q := sys.Sim.SampleQuality()
		tbl.AddRow(now/3600, sys.Sim.TotalUsers(),
			sys.Sim.TotalCloudCapacity()*8/1e6, vmCost-prevCost, q.Overall)
		prevCost = vmCost
	}); err != nil {
		return err
	}

	sys.Sim.RunUntil(sc.Hours * 3600)
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	sys.Cloud.Advance(sys.Sim.Now())
	vmCost, storageCost := sys.Cloud.Costs()
	fmt.Printf("\ntotal spend: $%.2f VMs + $%.5f storage over %v hours\n", vmCost, storageCost, sc.Hours)
	return nil
}
