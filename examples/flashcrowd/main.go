// Flashcrowd: dynamic provisioning through an evening flash crowd.
//
// A small CloudMedia deployment runs for twelve simulated hours across an
// arrival surge. The hourly controller learns the crowd from the tracker's
// statistics and scales the VM rental up and back down; the printout shows
// viewers, provisioned bandwidth, spend, and streaming quality per hour,
// streamed from the run as it happens.
//
// Run with: go run ./examples/flashcrowd
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/simulate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := cloudmedia.NewScenario(cloudmedia.ClientServer,
		cloudmedia.WithScale(2),
		cloudmedia.WithHours(12),
		cloudmedia.WithSampleSeconds(3600),
	)
	if err != nil {
		return err
	}
	// Replace the default diurnal pattern with one sharp flash crowd at
	// hour 8, four times the base rate.
	sc.Workload.BaseLevel = 0.4
	sc.Workload.FlashCrowds = []simulate.FlashCrowd{
		{PeakHour: 8, WidthHours: 1, Amplitude: 4},
	}

	tbl := paper.NewTable("Flash crowd at hour 8 — hourly view",
		"hour", "viewers", "reserved_mbps", "spend_per_hour", "quality")
	var prevCost float64
	rep, err := sc.Run(context.Background(), simulate.OnSnapshot(func(snap simulate.Snapshot) {
		tbl.AddRow(snap.Time/3600, snap.Users, snap.ReservedMbps, snap.VMCost-prevCost, snap.Quality)
		prevCost = snap.VMCost
	}))
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotal spend: $%.2f VMs + $%.5f storage over %v hours\n",
		rep.VMCostTotal, rep.StorageCostTotal, rep.Hours)
	return nil
}
