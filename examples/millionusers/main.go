// Millionusers: a full simulated day with more than a million concurrent
// viewers, in seconds of wall time.
//
// The per-viewer discrete-event engine tracks every viewer as an object,
// so a million-viewer day is out of its reach. This example switches the
// scenario to the fluid-cohort engine (WithFidelity(FidelityFluid)):
// state collapses to O(channels × chunks) aggregate flows, the crowd size
// becomes just a magnitude, and the same hourly provisioning controller
// runs unchanged on top. WithViewerScale(1.5e6) targets ~1.5 million
// concurrent viewers at the daily baseline — the flash crowds push the
// peak well past 3 million.
//
// The VM budget and rental catalog are scaled up from the paper's Table
// II to match the crowd (the paper's 150-VM catalog saturates around a
// few thousand concurrent viewers).
//
// Run with: go run ./examples/millionusers
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"cloudmedia"
	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w *os.File) error {
	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithFidelity(cloudmedia.FidelityFluid),
		cloudmedia.WithViewerScale(1.5e6),
		cloudmedia.WithChannels(20),
		cloudmedia.WithHours(24),
		cloudmedia.WithSampleSeconds(3600),
		// The paper's $100/h budget rents ~150 VMs; a million-viewer crowd
		// needs a proportionally larger budget and catalog.
		cloudmedia.WithBudgets(150_000, 100),
		cloudmedia.WithVMClusters(
			plan.VMCluster{Name: "mega-a", MaxVMs: 120_000, PricePerHour: 0.64, Utility: 1.0},
			plan.VMCluster{Name: "mega-b", MaxVMs: 120_000, PricePerHour: 0.60, Utility: 0.9},
		),
	)
	if err != nil {
		return err
	}

	tbl := paper.NewTable("A day with millions of viewers (fluid engine)",
		"hour", "viewers", "reserved_gbps", "cloud_served_tb", "spend_per_hour", "quality")
	var prevCost float64
	start := time.Now()
	rep, err := sc.Run(context.Background(), simulate.OnSnapshot(func(snap simulate.Snapshot) {
		tbl.AddRow(snap.Time/3600, snap.Users, snap.ReservedMbps/1e3,
			snap.CloudServedGB/1e3, snap.VMCost-prevCost, snap.Quality)
		prevCost = snap.VMCost
	}))
	if err != nil {
		return err
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsimulated %d viewer-channels for %.0f h in %v wall time\n",
		rep.FinalUsers, rep.Hours, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "mean quality %.4f, VM spend $%.0f, storage $%.2f\n",
		rep.MeanQuality, rep.VMCostTotal, rep.StorageCostTotal)
	return nil
}
