// Command serve walks the live control plane end to end:
//
//  1. Synthesize a short diurnal demand trace.
//  2. Serve it paced against the real clock at an aggressive time
//     compression, with the observability endpoint up.
//  3. Scrape /metrics and /state mid-run, like a Prometheus collector
//     would, and print a few live gauges including the cost ticker.
//  4. Drain and compare the paced run's bill against the same
//     scenario's batch Run — they are identical by construction, the
//     pacing guarantee (see DESIGN.md "Real-time serving").
//
// Run with: go run ./examples/serve
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"cloudmedia"
	"cloudmedia/pkg/serve"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A 12-hour diurnal trace over 4 channels, sampled every 30 min,
	// frozen from the parametric workload so the replay is a pure series.
	wl := simulate.DefaultWorkload()
	wl.Channels = 4
	wl.BaseArrivalRate = 0.5
	tr, err := trace.FromSource(wl.Source(), 12, 1800)
	if err != nil {
		return err
	}

	// 2. A cloud-assisted scenario replaying it, compressed 20000× so the
	// 12 simulated hours pace out in ~2 real seconds.
	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithTrace(tr),
		cloudmedia.WithHours(12),
		cloudmedia.WithFidelity(cloudmedia.FidelityFluid),
		cloudmedia.WithClock(cloudmedia.ClockReal),
		cloudmedia.WithTimeScale(20000),
	)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("serving 12 sim-hours at 20000x on http://%s\n", ln.Addr())

	type outcome struct {
		rep *serve.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := serve.Run(context.Background(), sc, serve.WithListener(ln))
		done <- outcome{rep, err}
	}()

	// 3. Scrape the endpoint mid-run.
	base := "http://" + ln.Addr().String()
	time.Sleep(800 * time.Millisecond)
	if err := printLiveGauges(base); err != nil {
		return err
	}

	out := <-done
	if out.err != nil {
		return out.err
	}
	rep := out.rep
	fmt.Printf("\ndrained: %.0f sim-hours in %.2f real-seconds (achieved %.0fx)\n",
		rep.Hours, rep.RealSeconds, rep.AchievedTimeScale)
	fmt.Printf("timeline bins: %d  final bill $%.2f\n", len(rep.Timeline), rep.Bill.TotalUSD())

	// 4. The pacing guarantee: the batch run of the same scenario bills
	// identically — pacing delays the engines, it never changes them.
	batch, err := sc.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("batch bill   $%.2f  (identical: %v)\n",
		batch.Bill.TotalUSD(), batch.Bill == rep.Bill)
	return nil
}

// printLiveGauges pulls a few exposition lines and the /state cost
// ticker while the run is in flight.
func printLiveGauges(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var picked []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, name := range []string{
			"cloudmedia_sim_seconds ", "cloudmedia_viewers ",
			"cloudmedia_cost_usd_total ", "cloudmedia_cost_usd_per_hour ",
		} {
			if strings.HasPrefix(line, name) {
				picked = append(picked, "  "+line)
			}
		}
	}
	fmt.Println("mid-run /metrics:")
	fmt.Println(strings.Join(picked, "\n"))

	st, err := http.Get(base + "/state")
	if err != nil {
		return err
	}
	defer st.Body.Close()
	var state struct {
		SimSeconds float64 `json:"sim_seconds"`
		CostUSD    float64 `json:"cost_usd"`
		Viewers    int     `json:"viewers"`
	}
	if err := json.NewDecoder(st.Body).Decode(&state); err != nil {
		return err
	}
	fmt.Printf("mid-run /state: t=%.0fs viewers=%d cost=$%.2f\n",
		state.SimSeconds, state.Viewers, state.CostUSD)
	return nil
}
