// Command resilience runs the same cloud-assisted day into a hostile
// spot market: 70% of the elastic capacity at 30% of the catalog price,
// a provider mass-preemption in the middle of the evening flash crowd,
// and a stochastic interruption process drawn per control interval from
// the run's seed.
//
// Three strategies face it: the paper's greedy heuristic on safe
// on-demand capacity (dear, untouched by preemptions), the same greedy
// naively pocketing the spot discount (cheap until the market takes the
// capacity back mid-crowd), and the hedged lookahead, which prices the
// interruption risk into its provisioning targets — renting a little
// extra spot so a preemption leaves it near where greedy wanted to be.
// The interesting read is the last two rows: the hedge keeps most of the
// discount and gives back much less quality under the same preemptions.
//
// Every run is deterministic per seed and bit-identical for any
// -workers value; rerun with a different seed to see other interruption
// draws.
//
// Run with: go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cloudmedia"
	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/simulate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	faults, err := simulate.ParseFault("preempt-peak")
	if err != nil {
		return err
	}
	base, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithHours(24),
		cloudmedia.WithScale(2),
		cloudmedia.WithFaults(faults),
	)
	if err != nil {
		return err
	}

	strategies := []struct {
		label   string
		policy  cloudmedia.Policy
		pricing cloudmedia.PricingPlan
	}{
		{"greedy / on-demand", cloudmedia.Greedy{}, cloudmedia.OnDemandPricing()},
		{"greedy / spot", cloudmedia.Greedy{}, cloudmedia.SpotPricing()},
		{"hedged lookahead / spot", cloudmedia.Lookahead{SpotHedge: true}, cloudmedia.SpotPricing()},
	}

	tbl := paper.NewTable("Spot mass-preemption mid-flash-crowd (cloud-assisted, 24 h)",
		"strategy", "quality", "interruptions", "spot_usd", "on_demand_usd", "total_usd")
	for _, s := range strategies {
		sc := base.With(
			cloudmedia.WithPolicy(s.policy),
			cloudmedia.WithPricing(s.pricing),
		)
		rep, err := sc.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", s.label, err)
		}
		b := rep.Bill
		tbl.AddRow(s.label, rep.MeanQuality, b.Interruptions, b.SpotUSD, b.OnDemandUSD, b.TotalUSD())
	}
	return tbl.Render(os.Stdout)
}
