// Command traces walks the trace-driven workload loop end to end:
//
//  1. Generate a synthetic demand trace the paper's parametric workload
//     cannot express — a staggered channel launch-and-decay catalog —
//     and save it as a portable CSV artifact.
//  2. Replay the trace through a cloud-assisted scenario; the channel
//     count, the arrival sampling, and the oracle policy's true rates
//     all follow the trace.
//  3. Record the replay's realized arrivals with a trace.Recorder and
//     round-trip the recording through the codec, closing the
//     record→replay loop on a fresh scenario.
//
// Run with: go run ./examples/traces
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cloudmedia"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "cloudmedia-traces")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Synthesize a launch/decay catalog: 6 channels going live 2 h
	// apart, ramping within ~1 h and fading with a 9-hour half-life.
	launches, err := trace.LaunchDecay(6, 18, 900, 0.12, 1, 9, 2)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "launches.csv")
	if err := trace.WriteFile(path, launches); err != nil {
		return err
	}
	fmt.Printf("generated %s: %d channels × %d samples\n", path, launches.NumChannels(), len(launches.Times))

	// 2. Replay it. WithTrace swaps the demand source; everything else —
	// budgets, policies, engines — works unchanged.
	loaded, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithTrace(loaded),
		cloudmedia.WithHours(18),
	)
	if err != nil {
		return err
	}

	// 3. Record the replay's realized arrivals as it runs.
	rec, err := trace.NewRecorder(loaded.NumChannels(), 900)
	if err != nil {
		return err
	}
	report, err := sc.Run(ctx, simulate.OnArrivals(rec.Add))
	if err != nil {
		return err
	}
	fmt.Printf("replayed: mean quality %.4f, VM cost $%.2f, final viewers %d\n",
		report.MeanQuality, report.VMCostTotal, report.FinalUsers)

	recorded, err := rec.Trace(report.Hours * 3600)
	if err != nil {
		return err
	}
	recPath := filepath.Join(dir, "recorded.json")
	if err := trace.WriteFile(recPath, recorded); err != nil {
		return err
	}

	// The recording replays like any other trace: a record-of-replay run
	// on a fresh seed reproduces the same demand envelope.
	again := sc.With(cloudmedia.WithSeed(7))
	again.Source = recorded
	rep2, err := again.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("re-replayed the recording: mean quality %.4f, VM cost $%.2f\n",
		rep2.MeanQuality, rep2.VMCostTotal)
	return nil
}
