package cloudmedia

import (
	"context"
	"fmt"

	"cloudmedia/pkg/plan"
)

// Pipeline is the one-shot CloudMedia analysis of Sec. IV/V: solve the
// Jackson queueing equilibrium per channel, estimate the peer supply the
// overlay contributes, and turn the residual cloud demand into concrete VM
// and storage rentals under hourly budgets.
//
// Build one with NewPipeline and functional options; the zero value is not
// usable. A Pipeline is immutable after construction and safe for
// concurrent Run calls.
type Pipeline struct {
	channel     plan.Channel
	transfer    plan.TransferMatrix
	rates       []float64
	peerUplink  float64
	vmBudget    float64
	storBudget  float64
	vmClusters  []plan.VMCluster
	nfsClusters []plan.NFSCluster
}

// ChannelAnalysis is the solved demand and supply of one channel.
type ChannelAnalysis struct {
	// Channel is the channel index, matching the order of WithArrivalRate.
	Channel int
	// ArrivalRate is the external arrival rate Λ the channel was solved
	// for, users/s.
	ArrivalRate float64
	// Equilibrium is the solved queueing steady state (Sec. IV-A/B).
	Equilibrium plan.Equilibrium
	// Supply is the peer-supply analysis (Sec. IV-C); nil when the
	// pipeline ran without peer uplink.
	Supply *plan.PeerSupply
	// CloudDemand is the per-chunk capacity to rent, bytes/s: the full
	// equilibrium capacity without peers, the post-peer residual with.
	CloudDemand []float64
}

// Result is the outcome of one Pipeline run.
type Result struct {
	// Channels holds one analysis per configured arrival rate.
	Channels []ChannelAnalysis
	// Demands is the flattened chunk-demand list the planners consumed.
	Demands []plan.ChunkDemand
	// VMPlan and StoragePlan are the budget-constrained rentals covering
	// every channel (Sec. V-A).
	VMPlan      plan.VMPlan
	StoragePlan plan.StoragePlan
}

// TotalCapacity returns Σ s_i across channels: the aggregate upload
// bandwidth needed for smooth playback, bytes/s.
func (r *Result) TotalCapacity() float64 {
	var t float64
	for _, ch := range r.Channels {
		t += ch.Equilibrium.TotalCapacity()
	}
	return t
}

// TotalPeerSupply returns Σ Γ_i across channels, bytes/s.
func (r *Result) TotalPeerSupply() float64 {
	var t float64
	for _, ch := range r.Channels {
		if ch.Supply != nil {
			t += ch.Supply.TotalPeerSupply()
		}
	}
	return t
}

// TotalCloudDemand returns Σ Δ_i across channels: the capacity rented from
// the cloud, bytes/s.
func (r *Result) TotalCloudDemand() float64 {
	var t float64
	for _, ch := range r.Channels {
		for _, d := range ch.CloudDemand {
			t += d
		}
	}
	return t
}

// NewPipeline builds a pipeline from the paper's defaults — the 20-chunk
// PaperChannel, sequential-with-jumps viewing, Λ = 0.25 users/s on a
// single channel, no peer uplink, B_M = $100/h, B_S = $1/h, Table II/III
// catalogs — overridden by the given options.
func NewPipeline(opts ...Option) (*Pipeline, error) {
	s, err := apply(opts)
	if err != nil {
		return nil, err
	}

	p := &Pipeline{
		channel:     s.Channel(plan.PaperChannel()),
		rates:       []float64{0.25},
		vmBudget:    100,
		storBudget:  1,
		vmClusters:  plan.DefaultVMClusters(),
		nfsClusters: plan.DefaultNFSClusters(),
	}
	if err := p.channel.Validate(); err != nil {
		return nil, err
	}
	// Copy every caller-provided slice: Pipeline promises immutability and
	// concurrent-Run safety, so later caller mutations must not reach it.
	if s.Rates != nil {
		p.rates = append([]float64(nil), s.Rates...)
	}
	for i, r := range p.rates {
		if r < 0 {
			return nil, fmt.Errorf("cloudmedia: negative arrival rate %v for channel %d", r, i)
		}
	}
	if s.PeerUplink != nil {
		if *s.PeerUplink < 0 {
			return nil, fmt.Errorf("cloudmedia: negative peer uplink %v", *s.PeerUplink)
		}
		p.peerUplink = *s.PeerUplink
	}
	if s.Budgets != nil {
		p.vmBudget, p.storBudget = s.Budgets[0], s.Budgets[1]
	}
	if s.VMClusters != nil {
		p.vmClusters = append([]plan.VMCluster(nil), s.VMClusters...)
	}
	if s.NFSClusters != nil {
		p.nfsClusters = append([]plan.NFSCluster(nil), s.NFSClusters...)
	}

	switch {
	case s.Transfer != nil:
		if err := s.Transfer.Validate(); err != nil {
			return nil, err
		}
		if s.Transfer.Size() != p.channel.Chunks {
			return nil, fmt.Errorf("cloudmedia: transfer matrix size %d != chunks %d",
				s.Transfer.Size(), p.channel.Chunks)
		}
		m := make(plan.TransferMatrix, len(s.Transfer))
		for i, row := range s.Transfer {
			m[i] = append([]float64(nil), row...)
		}
		p.transfer = m
	case s.Viewing != nil:
		m, err := plan.SequentialWithJumps(p.channel.Chunks, s.Viewing[0], s.Viewing[1])
		if err != nil {
			return nil, err
		}
		p.transfer = m
	default:
		m, err := plan.PaperViewing(p.channel.Chunks)
		if err != nil {
			return nil, err
		}
		p.transfer = m
	}
	return p, nil
}

// Run executes the full analysis: one equilibrium and peer-supply solve
// per channel, then the VM and storage rental plans across all channels.
// The context is checked between channels, so a cancelled context bounds
// the work of a large multi-channel run.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	res := &Result{}
	for i, rate := range p.rates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eq, err := plan.SolveEquilibrium(p.channel, p.transfer, rate)
		if err != nil {
			return nil, fmt.Errorf("cloudmedia: channel %d: %w", i, err)
		}
		ch := ChannelAnalysis{Channel: i, ArrivalRate: rate, Equilibrium: eq}
		if p.peerUplink > 0 {
			supply, err := plan.SolvePeerSupply(eq, p.transfer, p.peerUplink)
			if err != nil {
				return nil, fmt.Errorf("cloudmedia: channel %d: %w", i, err)
			}
			ch.Supply = &supply
			ch.CloudDemand = append([]float64(nil), supply.CloudDemand...)
		} else {
			ch.CloudDemand = append([]float64(nil), eq.Capacity...)
		}
		res.Channels = append(res.Channels, ch)
		res.Demands = append(res.Demands, plan.Demands(i, ch.CloudDemand)...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	vmPlan, err := plan.PlanVMs(res.Demands, p.channel.VMBandwidth, p.vmClusters, p.vmBudget)
	if err != nil {
		return nil, fmt.Errorf("cloudmedia: VM plan: %w", err)
	}
	res.VMPlan = vmPlan

	storagePlan, err := plan.PlanStorage(res.Demands, p.channel.ChunkBytes(), p.nfsClusters, p.storBudget)
	if err != nil {
		return nil, fmt.Errorf("cloudmedia: storage plan: %w", err)
	}
	res.StoragePlan = storagePlan
	return res, nil
}
