package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes one row per cell, ordered by cell index: the cell
// number, one column per axis, the derived seed, the run's headline
// metrics, and the ledger's dollar breakdown under the cell's pricing
// plan. The schema is a stable contract (EXPERIMENTS.md documents it and
// a golden test pins it):
//
//	cell,<axis>...,seed,hours,intervals,mean_quality,mean_reserved_mbps,vm_cost_usd,storage_cost_usd,reserved_usd,on_demand_usd,upfront_usd,total_bill_usd,final_users,error
//
// Because cell seeds are a pure function of the grid, the bytes written
// are identical regardless of the Runner's worker count.
func WriteCSV(w io.Writer, results []Result) error {
	ordered := append([]Result(nil), results...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Cell.Index < ordered[j].Cell.Index })

	var axes []string
	if len(ordered) > 0 {
		for _, c := range ordered[0].Cell.Coords {
			axes = append(axes, c.Axis)
		}
	}
	header := append([]string{"cell"}, axes...)
	header = append(header, "seed", "hours", "intervals", "mean_quality",
		"mean_reserved_mbps", "vm_cost_usd", "storage_cost_usd",
		"reserved_usd", "on_demand_usd", "upfront_usd", "total_bill_usd",
		"final_users", "error")

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, res := range ordered {
		if len(res.Cell.Coords) != len(axes) {
			return fmt.Errorf("sweep: cell %d has %d coords, header has %d axes",
				res.Cell.Index, len(res.Cell.Coords), len(axes))
		}
		row := []string{strconv.Itoa(res.Cell.Index)}
		for i, c := range res.Cell.Coords {
			if c.Axis != axes[i] {
				return fmt.Errorf("sweep: cell %d axis %q does not match header axis %q",
					res.Cell.Index, c.Axis, axes[i])
			}
			row = append(row, c.Label)
		}
		row = append(row, strconv.FormatInt(res.Cell.Seed, 10))
		if res.Report != nil {
			row = append(row,
				formatFloat(res.Report.Hours),
				strconv.Itoa(res.Report.Intervals),
				formatFloat(res.Report.MeanQuality),
				formatFloat(res.Report.MeanReservedMbps),
				formatFloat(res.Report.VMCostTotal),
				formatFloat(res.Report.StorageCostTotal),
				formatFloat(res.Report.Bill.ReservedUSD),
				formatFloat(res.Report.Bill.OnDemandUSD),
				formatFloat(res.Report.Bill.UpfrontUSD),
				formatFloat(res.Report.Bill.TotalUSD()),
				strconv.Itoa(res.Report.FinalUsers),
			)
		} else {
			row = append(row, "", "", "", "", "", "", "", "", "", "", "")
		}
		row = append(row, res.Err)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggregateCSV writes the per-axis-value reduction, one row per axis
// value:
//
//	axis,value,runs,errors,mean_quality,min_quality,max_quality,mean_cost_usd,min_cost_usd,max_cost_usd
func WriteAggregateCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	header := []string{"axis", "value", "runs", "errors", "mean_quality", "min_quality",
		"max_quality", "mean_cost_usd", "min_cost_usd", "max_cost_usd"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range aggs {
		row := []string{
			a.Axis, a.Label,
			strconv.Itoa(a.Runs), strconv.Itoa(a.Errors),
			formatFloat(a.Quality.Mean), formatFloat(a.Quality.Min), formatFloat(a.Quality.Max),
			formatFloat(a.CostUSD.Mean), formatFloat(a.CostUSD.Min), formatFloat(a.CostUSD.Max),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat is the canonical float spelling of the CSV schema: shortest
// round-trip representation, so output is byte-stable for identical runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
