package sweep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/sweep"
	"cloudmedia/pkg/trace"
)

func shortBase() simulate.Scenario {
	sc := simulate.Default(simulate.ClientServer, 1)
	sc.Hours = 1
	sc.SampleSeconds = 900
	return sc
}

func modeBudgetGrid() sweep.Grid {
	return sweep.Grid{
		Base: shortBase(),
		Axes: []sweep.Axis{
			sweep.Modes(simulate.ClientServer, simulate.P2P, simulate.CloudAssisted),
			sweep.VMBudgets(50, 100, 200),
		},
	}
}

func TestGridCells(t *testing.T) {
	g := modeBudgetGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	// Row-major: last axis fastest.
	want := [][2]string{
		{"client-server", "50"}, {"client-server", "100"}, {"client-server", "200"},
		{"p2p", "50"}, {"p2p", "100"}, {"p2p", "200"},
		{"cloud-assisted", "50"}, {"cloud-assisted", "100"}, {"cloud-assisted", "200"},
	}
	seeds := map[int64]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d: index %d", i, c.Index)
		}
		if c.Coords[0].Label != want[i][0] || c.Coords[1].Label != want[i][1] {
			t.Errorf("cell %d: coords %v, want %v", i, c.Coords, want[i])
		}
		seeds[c.Seed] = true
	}
	if len(seeds) != 9 {
		t.Errorf("per-cell seeds not distinct: %d unique of 9", len(seeds))
	}

	// Seeds are a pure function of the grid: re-expansion yields the same.
	again, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Seed != again[i].Seed {
			t.Errorf("cell %d seed not deterministic: %d vs %d", i, cells[i].Seed, again[i].Seed)
		}
	}
}

func TestGridNoAxesIsSingleCell(t *testing.T) {
	cells, err := sweep.Grid{Base: shortBase()}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || len(cells[0].Coords) != 0 {
		t.Fatalf("cells = %+v, want one coordless cell", cells)
	}
}

func TestGridValidation(t *testing.T) {
	base := shortBase()
	for name, axes := range map[string][]sweep.Axis{
		"unnamed axis":    {sweep.NewAxis("", sweep.Point{Label: "x", Set: func(*simulate.Scenario) {}})},
		"duplicate axis":  {sweep.VMBudgets(1), sweep.VMBudgets(2)},
		"empty axis":      {sweep.NewAxis("empty")},
		"duplicate label": {sweep.VMBudgets(1, 1)},
		"nil set":         {sweep.NewAxis("broken", sweep.Point{Label: "x"})},
	} {
		if _, err := (sweep.Grid{Base: base, Axes: axes}).Cells(); err == nil {
			t.Errorf("%s: Cells() accepted an invalid grid", name)
		}
	}
}

func TestGridScenarioDerivation(t *testing.T) {
	g := modeBudgetGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := g.Scenario(cells[3]) // p2p × $50
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != simulate.P2P {
		t.Errorf("mode = %v, want p2p", sc.Mode)
	}
	if sc.VMBudget != 50 {
		t.Errorf("VM budget = %v, want 50", sc.VMBudget)
	}
	if sc.Seed != cells[3].Seed {
		t.Errorf("seed = %d, want %d", sc.Seed, cells[3].Seed)
	}
	// Derivation never touches the base.
	if g.Base.Mode != simulate.ClientServer || g.Base.VMBudget != 100 {
		t.Errorf("base mutated: %+v", g.Base)
	}
}

// TestRunDeterministicAcrossWorkerCounts is the core contract: the same
// grid produces byte-identical CSV regardless of parallelism.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		results, err := sweep.Runner{Workers: workers}.Run(context.Background(), modeBudgetGrid())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sweep.WriteCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Errorf("CSV differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s", serial, parallel)
	}
	if n := strings.Count(serial, "\n"); n != 10 {
		t.Errorf("CSV lines = %d, want 10 (header + 9 cells)", n)
	}
}

func TestRunReportsPerCellErrors(t *testing.T) {
	g := sweep.Grid{
		Base: shortBase(),
		Axes: []sweep.Axis{sweep.NewAxis("hours",
			sweep.Point{Label: "ok", Set: func(sc *simulate.Scenario) { sc.Hours = 1 }},
			sweep.Point{Label: "bad", Set: func(sc *simulate.Scenario) { sc.Hours = -1 }},
		)},
	}
	results, err := sweep.Runner{Workers: 2}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Failed() {
		t.Errorf("good cell failed: %s", results[0].Err)
	}
	if !results[1].Failed() || !strings.Contains(results[1].Err, "invalid scenario") {
		t.Errorf("bad cell error = %q, want invalid scenario", results[1].Err)
	}
}

// TestRunCancellationPartialResults cancels mid-sweep and checks that the
// pool drains without goroutine leaks and returns what finished.
func TestRunCancellationPartialResults(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	g := modeBudgetGrid()
	runner := sweep.Runner{Workers: 2, RunOptions: []simulate.RunOption{
		// Cancel as soon as any cell completes its first provisioning
		// round; context.CancelFunc is safe to call concurrently.
		simulate.OnInterval(func(simulate.IntervalRecord) { cancel() }),
	}}
	results, err := runner.Run(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 || len(results) == 9 {
		t.Logf("partial results = %d (timing-dependent, just must not deadlock)", len(results))
	}
	for _, res := range results {
		if res.Failed() && !strings.Contains(res.Err, "context canceled") {
			t.Errorf("cell %d unexpected error: %s", res.Cell.Index, res.Err)
		}
	}

	// The pool must wind down completely.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestStreamDeliversEveryCell(t *testing.T) {
	ch, wait := sweep.Runner{Workers: 3}.Stream(context.Background(), modeBudgetGrid())
	seen := map[int]bool{}
	for res := range ch {
		seen[res.Cell.Index] = true
	}
	results, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 || len(results) != 9 {
		t.Errorf("streamed %d, collected %d, want 9 and 9", len(seen), len(results))
	}
	for i, res := range results {
		if res.Cell.Index != i {
			t.Errorf("results[%d].Cell.Index = %d, want sorted order", i, res.Cell.Index)
		}
	}
}

func TestStreamEarlyConsumerExit(t *testing.T) {
	ch, wait := sweep.Runner{Workers: 2}.Stream(context.Background(), modeBudgetGrid())
	<-ch // take one result, then walk away
	done := make(chan struct{})
	go func() {
		if _, err := wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("wait() deadlocked after early consumer exit")
	}
}

func TestReduce(t *testing.T) {
	results, err := sweep.Runner{Workers: 4}.Run(context.Background(), modeBudgetGrid())
	if err != nil {
		t.Fatal(err)
	}
	aggs := sweep.Reduce(results)
	// 3 mode values + 3 budget values.
	if len(aggs) != 6 {
		t.Fatalf("aggregates = %d, want 6", len(aggs))
	}
	// Sorted: mode axis before vm_budget, budget labels numerically.
	wantOrder := []string{"client-server", "cloud-assisted", "p2p", "50", "100", "200"}
	for i, a := range aggs {
		if a.Label != wantOrder[i] {
			t.Errorf("aggs[%d] = %s/%s, want label %s", i, a.Axis, a.Label, wantOrder[i])
		}
		if a.Runs != 3 || a.Errors != 0 {
			t.Errorf("%s=%s: runs %d errors %d, want 3 and 0", a.Axis, a.Label, a.Runs, a.Errors)
		}
		if a.Quality.Count != 3 || a.Quality.Min > a.Quality.Mean || a.Quality.Mean > a.Quality.Max {
			t.Errorf("%s=%s: inconsistent quality stats %+v", a.Axis, a.Label, a.Quality)
		}
		if a.CostUSD.Mean <= 0 {
			t.Errorf("%s=%s: cost %v, want > 0", a.Axis, a.Label, a.CostUSD.Mean)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	results, err := sweep.Runner{Workers: 2}.Run(context.Background(), sweep.Grid{
		Base: shortBase(),
		Axes: []sweep.Axis{sweep.VMBudgets(50, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []sweep.Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Cell.Seed != results[0].Cell.Seed ||
		decoded[0].Report.MeanQuality != results[0].Report.MeanQuality {
		t.Errorf("JSON round trip lost data: %+v", decoded)
	}
}

func TestPredictorsAxis(t *testing.T) {
	ax := sweep.Predictors(map[string]simulate.Predictor{
		"last": simulate.LastInterval{},
		"ewma": simulate.EWMA{Alpha: 0.4},
	})
	if len(ax.Points) != 2 || ax.Points[0].Label != "ewma" || ax.Points[1].Label != "last" {
		t.Fatalf("predictor axis not name-sorted: %+v", ax.Points)
	}
	var sc simulate.Scenario
	ax.Points[1].Set(&sc)
	if _, ok := sc.Predictor.(simulate.LastInterval); !ok {
		t.Errorf("predictor = %T, want LastInterval", sc.Predictor)
	}
}

func TestFidelityAxisRunsBothEngines(t *testing.T) {
	base := simulate.Default(simulate.CloudAssisted, 1)
	base.Hours = 1
	grid := sweep.Grid{
		Base: base,
		Axes: []sweep.Axis{sweep.Fidelities(simulate.FidelityEvent, simulate.FidelityFluid)},
	}
	results, err := sweep.Runner{Workers: 2}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	labels := map[string]bool{}
	for _, res := range results {
		if res.Failed() {
			t.Fatalf("cell %v failed: %s", res.Cell.Coords, res.Err)
		}
		if res.Report == nil || res.Report.MeanQuality <= 0 {
			t.Errorf("cell %v produced no quality", res.Cell.Coords)
		}
		for _, c := range res.Cell.Coords {
			if c.Axis == "fidelity" {
				labels[c.Label] = true
			}
		}
	}
	if !labels["event"] || !labels["fluid"] {
		t.Errorf("fidelity labels = %v, want event and fluid", labels)
	}
}

func TestViewerScaleAxisSetsArrivalRate(t *testing.T) {
	ax := sweep.ViewerScales(250, 1000)
	if ax.Name != "viewer_scale" || len(ax.Points) != 2 {
		t.Fatalf("axis = %+v", ax)
	}
	sc := simulate.Default(simulate.ClientServer, 1)
	ax.Points[1].Set(&sc)
	if got, want := sc.Workload.BaseArrivalRate, simulate.BaseRateForViewers(1000); got != want {
		t.Errorf("base rate = %v, want %v", got, want)
	}
}

func TestPolicyPricingAxes(t *testing.T) {
	base := simulate.Default(simulate.CloudAssisted, 1)
	base.Hours = 1
	grid := sweep.Grid{
		Base: base,
		Axes: []sweep.Axis{
			sweep.Policies(simulate.Greedy{}, simulate.StaticPeak{}),
			sweep.Pricings(simulate.OnDemandPricing(), simulate.ReservedPricing()),
		},
	}
	results, err := sweep.Runner{Workers: 4}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("cells = %d, want 4", len(results))
	}
	for _, res := range results {
		if res.Failed() {
			t.Fatalf("cell %d failed: %s", res.Cell.Index, res.Err)
		}
		var policy, pricing string
		for _, c := range res.Cell.Coords {
			switch c.Axis {
			case "policy":
				policy = c.Label
			case "pricing":
				pricing = c.Label
			}
		}
		if policy == "" || pricing == "" {
			t.Fatalf("cell %d missing axis labels: %+v", res.Cell.Index, res.Cell.Coords)
		}
		bill := res.Report.Bill
		switch pricing {
		case "on-demand":
			if bill.ReservedUSD != 0 || bill.UpfrontUSD != 0 {
				t.Errorf("%s/%s: on-demand cell accrued reserved dollars: %+v", policy, pricing, bill)
			}
		case "reserved":
			if bill.ReservedUSD <= 0 || bill.UpfrontUSD <= 0 {
				t.Errorf("%s/%s: reserved cell missing reserved/upfront dollars: %+v", policy, pricing, bill)
			}
		}
		if bill.TotalUSD() <= 0 {
			t.Errorf("%s/%s: empty bill", policy, pricing)
		}
	}
}

// TestTracesAxisSweepsDemandSources runs a grid over two synthetic
// demand traces: each cell must pick up its trace's channel count and
// produce a sane report, and the axis must order its points by name.
func TestTracesAxisSweepsDemandSources(t *testing.T) {
	flat := &trace.Trace{
		Times: []float64{0, 1800, 3600},
		Rates: [][]float64{{0.2, 0.2, 0.2}, {0.1, 0.1, 0.1}},
	}
	surge := &trace.Trace{
		Times: []float64{0, 1800, 3600},
		Rates: [][]float64{{0.05, 0.6, 0.05}, {0.05, 0.05, 0.05}, {0, 0.1, 0}},
	}
	grid := sweep.Grid{
		Base: shortBase(),
		Axes: []sweep.Axis{sweep.Traces(map[string]*trace.Trace{
			"surge": surge,
			"flat":  flat,
		})},
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Coords[0].Label != "flat" || cells[1].Coords[0].Label != "surge" {
		t.Fatalf("trace axis not name-ordered: %v", cells)
	}
	results, err := sweep.Runner{Workers: 2}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != "" {
			t.Fatalf("cell %v failed: %s", res.Cell.Coords, res.Err)
		}
		if res.Report.MeanQuality < 0 || res.Report.MeanQuality > 1 {
			t.Errorf("cell %v quality %v", res.Cell.Coords, res.Report.MeanQuality)
		}
	}
	// The axis hands each cell a clone: scribbling on the original after
	// expansion must not disturb a derived scenario.
	sc, err := grid.Scenario(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	flat.Rates[0][0] = 99
	r, err := sc.Source.Rate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r == 99 {
		t.Error("sweep cell shares the caller's trace instead of a clone")
	}
}
