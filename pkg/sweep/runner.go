package sweep

import (
	"context"
	"runtime"
	"sync"

	"cloudmedia/pkg/simulate"
)

// Result is the outcome of one cell: the cell identity, the run's report,
// and the error (if any) as a string so the type round-trips through
// encoding/json. A per-cell failure does not abort the sweep; check Err.
type Result struct {
	Cell   Cell             `json:"cell"`
	Report *simulate.Report `json:"report,omitempty"`
	Err    string           `json:"error,omitempty"`
}

// Failed reports whether the cell's run returned an error (including
// cancellation mid-run, in which case Report still covers the simulated
// prefix).
func (r Result) Failed() bool { return r.Err != "" }

// Runner executes a Grid on a bounded worker pool.
type Runner struct {
	// Workers bounds the concurrently running cells; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// RunOptions are passed to every cell's Run call — e.g.
	// simulate.KeepHistory() to retain per-interval records in each
	// Report. Callbacks fire concurrently from worker goroutines.
	RunOptions []simulate.RunOption
}

// Run expands the grid and executes every cell, returning results ordered
// by cell index. Cells whose run fails carry the error in Result.Err; the
// sweep itself only errors on an invalid grid or a cancelled context. On
// cancellation Run stops dispatching new cells, waits for in-flight cells
// (each observes the same context and returns promptly), and returns the
// partial results gathered so far alongside ctx.Err().
func (r Runner) Run(ctx context.Context, g Grid) ([]Result, error) {
	return r.run(ctx, g, nil)
}

// Stream runs the sweep on background goroutines and delivers each cell's
// Result on the returned channel as soon as it completes (completion
// order, not cell order). The channel closes when the sweep finishes or
// the context is cancelled. The returned wait function blocks until
// completion and yields the index-ordered results; it must be called to
// collect the sweep's outcome, and it drains undelivered results so a
// consumer that exits its receive loop early cannot deadlock the pool.
func (r Runner) Stream(ctx context.Context, g Grid) (<-chan Result, func() ([]Result, error)) {
	out := make(chan Result)
	type outcome struct {
		results []Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		defer close(out)
		results, err := r.run(ctx, g, func(res Result) {
			select {
			case out <- res:
			case <-ctx.Done():
			}
		})
		done <- outcome{results, err}
	}()
	return out, func() ([]Result, error) {
		go func() {
			for range out {
			}
		}()
		o := <-done
		return o.results, o.err
	}
}

// run is the shared pool: a job channel feeding Workers goroutines, each
// deriving and running one cell at a time. emit (optional) observes every
// result as it completes.
func (r Runner) run(ctx context.Context, g Grid, emit func(Result)) ([]Result, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	jobs := make(chan Cell)
	go func() {
		defer close(jobs)
		for _, cell := range cells {
			select {
			case jobs <- cell:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Each worker writes only its own cells' slots, so the slice needs no
	// lock; slots left nil (never dispatched) are compacted below.
	slots := make([]*Result, len(cells))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				res := r.runCell(ctx, g, cell)
				slots[cell.Index] = &res
				if emit != nil {
					emit(res)
				}
			}
		}()
	}
	wg.Wait()

	results := make([]Result, 0, len(cells))
	for _, res := range slots {
		if res != nil {
			results = append(results, *res)
		}
	}
	return results, ctx.Err()
}

func (r Runner) runCell(ctx context.Context, g Grid, cell Cell) Result {
	res := Result{Cell: cell}
	sc, err := g.Scenario(cell)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	rep, err := sc.Run(ctx, r.RunOptions...)
	res.Report = rep
	if err != nil {
		res.Err = err.Error()
	}
	return res
}
