// Package sweep runs families of CloudMedia scenarios concurrently: the
// cost-vs-budget, quality-vs-uplink, and mode-vs-mode run families behind
// the paper's Figs. 4–11 are all parameter sweeps, and this package is the
// declarative harness for them.
//
// Declare a Grid — a base Scenario plus one Axis per swept knob — and hand
// it to a Runner, which expands the cross product into cells, derives one
// independent scenario per cell (deterministic per-cell seed, no shared
// mutable state), and executes them on a bounded worker pool with context
// cancellation:
//
//	base, _ := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithHours(6))
//	grid := sweep.Grid{Base: base, Axes: []sweep.Axis{
//		sweep.Modes(simulate.ClientServer, simulate.P2P, simulate.CloudAssisted),
//		sweep.VMBudgets(50, 100, 200),
//	}}
//	results, err := sweep.Runner{Workers: 4}.Run(ctx, grid)
//	sweep.WriteCSV(os.Stdout, results)
//
// Results stream through Runner.Stream as cells finish, aggregate per axis
// value through Reduce or an Aggregator, and serialize through WriteCSV or
// encoding/json. Output is identical regardless of worker count: cell
// seeds depend only on the grid, and emitters order rows by cell index.
//
// The package builds purely on pkg/simulate — the public facade — so
// anything expressible as a Scenario is sweepable.
package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

// Point is one value along an Axis: a label for reports plus the mutation
// it applies to the derived scenario of every cell on this point.
type Point struct {
	// Label identifies the point in CSV/JSON output; unique per axis.
	Label string
	// Set applies the point's value to a derived scenario. The scenario is
	// already a deep copy, so Set may mutate it freely.
	Set func(*simulate.Scenario)
}

// Axis is one swept knob: a name and the points it takes. Axis values are
// plain scenario mutations, so any Scenario field — or any root-package
// functional option via Scenario.With — can be swept.
type Axis struct {
	Name   string
	Points []Point
}

// NewAxis builds a custom axis. The helper constructors below cover the
// common knobs; reach for NewAxis for anything else:
//
//	sweep.NewAxis("interval", sweep.Point{Label: "30m", Set: func(sc *simulate.Scenario) {
//		sc.IntervalSeconds = 1800
//	}})
func NewAxis(name string, points ...Point) Axis {
	return Axis{Name: name, Points: points}
}

// Modes sweeps the architecture under test; labels are Mode.String().
func Modes(modes ...simulate.Mode) Axis {
	ax := Axis{Name: "mode"}
	for _, m := range modes {
		m := m
		ax.Points = append(ax.Points, Point{
			Label: m.String(),
			Set:   func(sc *simulate.Scenario) { sc.Mode = m },
		})
	}
	return ax
}

// Fidelities sweeps the simulation engine behind the scenario — most
// usefully Fidelities(simulate.FidelityEvent, simulate.FidelityFluid) to
// cross-validate the aggregate model against the per-viewer reference on
// the same grid; labels are Fidelity.String().
func Fidelities(fidelities ...simulate.Fidelity) Axis {
	ax := Axis{Name: "fidelity"}
	for _, f := range fidelities {
		f := f
		ax.Points = append(ax.Points, Point{
			Label: f.String(),
			Set:   func(sc *simulate.Scenario) { sc.Fidelity = f },
		})
	}
	return ax
}

// ViewerScales sweeps the absolute target crowd size (the WithViewerScale
// knob): the workload arrival rate is set so roughly n viewers are
// concurrent at the daily baseline. Like WithViewerScale, it targets the
// parametric workload — do not combine it with Traces (scale the traces
// themselves with Trace.Scale instead).
func ViewerScales(viewers ...float64) Axis {
	return floatAxis("viewer_scale", viewers, func(sc *simulate.Scenario, v float64) {
		sc.Workload.BaseArrivalRate = simulate.BaseRateForViewers(v)
	})
}

// VMBudgets sweeps B_M, the hourly VM rental budget in dollars.
func VMBudgets(dollarsPerHour ...float64) Axis {
	return floatAxis("vm_budget", dollarsPerHour, func(sc *simulate.Scenario, v float64) {
		sc.VMBudget = v
	})
}

// StorageBudgets sweeps B_S, the hourly storage rental budget in dollars.
func StorageBudgets(dollarsPerHour ...float64) Axis {
	return floatAxis("storage_budget", dollarsPerHour, func(sc *simulate.Scenario, v float64) {
		sc.StorageBudget = v
	})
}

// UplinkRatios sweeps the mean peer uplink as a multiple of the streaming
// rate — the paper's Fig. 11 axis.
func UplinkRatios(ratios ...float64) Axis {
	return floatAxis("uplink_ratio", ratios, func(sc *simulate.Scenario, v float64) {
		sc.UplinkRatio = v
	})
}

// Chunks sweeps J, the number of chunks each video is divided into.
func Chunks(counts ...int) Axis {
	return intAxis("chunks", counts, func(sc *simulate.Scenario, v int) {
		sc.Channel.Chunks = v
	})
}

// Channels sweeps the number of video channels in the workload.
func Channels(counts ...int) Axis {
	return intAxis("channels", counts, func(sc *simulate.Scenario, v int) {
		sc.Workload.Channels = v
	})
}

// Policies sweeps the provisioning policy — the cost-vs-quality frontier
// axis: Policies(simulate.Greedy{}, simulate.Lookahead{},
// simulate.Oracle{}, simulate.StaticPeak{}) compares the paper's greedy
// against the anti-thrash, perfect-prediction, and fixed-peak baselines
// on the same grid. Labels are Policy.Name().
func Policies(policies ...simulate.Policy) Axis {
	ax := Axis{Name: "policy"}
	for _, p := range policies {
		p := p
		ax.Points = append(ax.Points, Point{
			Label: p.Name(),
			Set:   func(sc *simulate.Scenario) { sc.Policy = p },
		})
	}
	return ax
}

// Pricings sweeps the cloud billing plan (on-demand vs reservation-heavy
// price lists); labels are PricingPlan.DisplayName().
func Pricings(plans ...simulate.PricingPlan) Axis {
	ax := Axis{Name: "pricing"}
	for _, p := range plans {
		p := p
		ax.Points = append(ax.Points, Point{
			Label: p.DisplayName(),
			Set:   func(sc *simulate.Scenario) { sc.Pricing = p },
		})
	}
	return ax
}

// FaultScenarios sweeps the fault schedule: each point injects one named
// failure plan (nil for a fault-free baseline), so resilience under
// outages, mass-preemptions, and brownouts runs on one grid — e.g.
// FaultScenarios(simulate.FaultPresets()) plus {"none": nil}. Points are
// ordered by name so grids are deterministic; each cell receives its own
// clone of the schedule.
func FaultScenarios(named map[string]*simulate.FaultSchedule) Axis {
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	ax := Axis{Name: "fault"}
	for _, name := range names {
		f := named[name]
		ax.Points = append(ax.Points, Point{
			Label: name,
			Set:   func(sc *simulate.Scenario) { sc.Faults = f.Clone() },
		})
	}
	return ax
}

// SpotDiscounts sweeps the spot tier's price as a fraction of the
// catalog rate over the base scenario's pricing plan (1 prices spot like
// on-demand; the preset uses 0.3) — the axis for "how cheap must spot be
// to beat on-demand at this interruption rate".
func SpotDiscounts(rates ...float64) Axis {
	return floatAxis("spot_rate", rates, func(sc *simulate.Scenario, v float64) {
		sc.Pricing.SpotRate = v
	})
}

// SpotInterruptionRates sweeps the spot market's expected interruption
// events per hour over the base scenario's pricing plan — the risk axis
// of the spot trade-off (0 makes the discount free money).
func SpotInterruptionRates(perHour ...float64) Axis {
	return floatAxis("spot_interruption", perHour, func(sc *simulate.Scenario, v float64) {
		sc.Pricing.SpotInterruption = v
	})
}

// Traces sweeps the demand source: each point replays one named trace
// (pkg/trace) through the scenario, so recorded days, weekday/weekend
// cycles, and launch/decay catalogs run on one grid. Points are ordered
// by name so grids are deterministic; each cell receives its own clone
// of the trace.
func Traces(named map[string]*trace.Trace) Axis {
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	ax := Axis{Name: "trace"}
	for _, name := range names {
		tr := named[name]
		ax.Points = append(ax.Points, Point{
			Label: name,
			Set:   func(sc *simulate.Scenario) { sc.Source = tr.Clone() },
		})
	}
	return ax
}

// Predictors sweeps the controller's arrival-rate forecaster. Points are
// ordered by name so grids are deterministic.
func Predictors(named map[string]simulate.Predictor) Axis {
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	ax := Axis{Name: "predictor"}
	for _, name := range names {
		p := named[name]
		ax.Points = append(ax.Points, Point{
			Label: name,
			Set:   func(sc *simulate.Scenario) { sc.Predictor = p },
		})
	}
	return ax
}

func floatAxis(name string, values []float64, set func(*simulate.Scenario, float64)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.FormatFloat(v, 'g', -1, 64),
			Set:   func(sc *simulate.Scenario) { set(sc, v) },
		})
	}
	return ax
}

func intAxis(name string, values []int, set func(*simulate.Scenario, int)) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		v := v
		ax.Points = append(ax.Points, Point{
			Label: strconv.Itoa(v),
			Set:   func(sc *simulate.Scenario) { set(sc, v) },
		})
	}
	return ax
}

// Grid is a declarative scenario family: the cross product of the axes
// applied over the base scenario. The zero value is invalid; Base must be
// a valid Scenario (cloudmedia.NewScenario or simulate.Default).
type Grid struct {
	Base simulate.Scenario
	Axes []Axis
}

// Coord is one axis position of a cell.
type Coord struct {
	Axis  string `json:"axis"`
	Label string `json:"label"`
}

// Cell is one point of the expanded grid. Index is the row-major position
// (last axis fastest) and the canonical output order; Seed is the derived
// scenario's random seed, a pure function of the grid's base seed and the
// cell's coordinates, so results do not depend on worker count or
// execution order.
type Cell struct {
	Index  int     `json:"index"`
	Coords []Coord `json:"coords,omitempty"`
	Seed   int64   `json:"seed"`
}

// Cells expands the grid into its cross product in row-major order. A grid
// with no axes has exactly one cell: the base scenario.
func (g Grid) Cells() ([]Cell, error) {
	total := 1
	seenAxis := make(map[string]bool, len(g.Axes))
	for i, ax := range g.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep: axis %d has no name", i)
		}
		if seenAxis[ax.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Name)
		}
		seenAxis[ax.Name] = true
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no points", ax.Name)
		}
		seenLabel := make(map[string]bool, len(ax.Points))
		for j, pt := range ax.Points {
			if pt.Set == nil {
				return nil, fmt.Errorf("sweep: axis %q point %d has nil Set", ax.Name, j)
			}
			if seenLabel[pt.Label] {
				return nil, fmt.Errorf("sweep: axis %q has duplicate label %q", ax.Name, pt.Label)
			}
			seenLabel[pt.Label] = true
		}
		total *= len(ax.Points)
	}

	cells := make([]Cell, 0, total)
	idx := make([]int, len(g.Axes))
	for i := 0; i < total; i++ {
		cell := Cell{Index: i}
		for a, ax := range g.Axes {
			cell.Coords = append(cell.Coords, Coord{Axis: ax.Name, Label: ax.Points[idx[a]].Label})
		}
		cell.Seed = cellSeed(g.Base.Seed, cell.Coords)
		cells = append(cells, cell)
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(g.Axes[a].Points) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}

// Scenario derives the cell's scenario: a deep copy of the base with every
// axis point applied and the cell's deterministic seed installed.
func (g Grid) Scenario(c Cell) (simulate.Scenario, error) {
	sc := g.Base.Clone()
	for _, coord := range c.Coords {
		pt, err := g.point(coord)
		if err != nil {
			return simulate.Scenario{}, err
		}
		pt.Set(&sc)
	}
	sc.Seed = c.Seed
	return sc, nil
}

func (g Grid) point(coord Coord) (Point, error) {
	for _, ax := range g.Axes {
		if ax.Name != coord.Axis {
			continue
		}
		for _, pt := range ax.Points {
			if pt.Label == coord.Label {
				return pt, nil
			}
		}
		return Point{}, fmt.Errorf("sweep: axis %q has no point %q", coord.Axis, coord.Label)
	}
	return Point{}, fmt.Errorf("sweep: no axis %q", coord.Axis)
}

// cellSeed derives a per-cell seed from the base seed and the cell's
// coordinates with FNV-1a, so each cell's randomness is independent yet
// reproducible from the grid declaration alone.
func cellSeed(base int64, coords []Coord) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(base) >> (8 * i))
	}
	h.Write(buf[:])
	for _, c := range coords {
		h.Write([]byte(c.Axis))
		h.Write([]byte{'='})
		h.Write([]byte(c.Label))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}
