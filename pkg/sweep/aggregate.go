package sweep

import (
	"sort"
	"strconv"
	"sync"
)

// Stats is a streaming mean/min/max reduction of one metric.
type Stats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`

	sum float64
}

func (s *Stats) add(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.sum += v
	s.Mean = s.sum / float64(s.Count)
}

// Aggregate is the reduction of every successful cell sharing one axis
// value: streaming quality and the total ledger bill under the cell's
// pricing plan (reserved + on-demand + upfront + storage dollars; under
// the default on-demand plan this equals VM + storage cost), each as
// mean/min/max across the other axes.
type Aggregate struct {
	Axis    string `json:"axis"`
	Label   string `json:"label"`
	Runs    int    `json:"runs"`
	Errors  int    `json:"errors"`
	Quality Stats  `json:"quality"`
	CostUSD Stats  `json:"cost_usd"`
}

// Aggregator reduces results incrementally — feed it from a Stream loop to
// keep only aggregates in memory for very large sweeps. Add is safe for
// concurrent use.
type Aggregator struct {
	mu     sync.Mutex
	groups map[Coord]*Aggregate
}

// NewAggregator returns an empty streaming aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{groups: make(map[Coord]*Aggregate)}
}

// Add folds one result into every axis-value group it belongs to. Failed
// cells count toward Errors but not toward the metric stats.
func (a *Aggregator) Add(res Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, coord := range res.Cell.Coords {
		agg := a.groups[coord]
		if agg == nil {
			agg = &Aggregate{Axis: coord.Axis, Label: coord.Label}
			a.groups[coord] = agg
		}
		agg.Runs++
		if res.Failed() || res.Report == nil {
			agg.Errors++
			continue
		}
		agg.Quality.add(res.Report.MeanQuality)
		agg.CostUSD.add(res.Report.Bill.TotalUSD())
	}
}

// Aggregates returns the groups sorted by axis name, then by label with
// numeric labels in numeric order — a deterministic order regardless of
// the completion order the results arrived in.
func (a *Aggregator) Aggregates() []Aggregate {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Aggregate, 0, len(a.groups))
	for _, agg := range a.groups {
		out = append(out, *agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Axis != out[j].Axis {
			return out[i].Axis < out[j].Axis
		}
		return labelLess(out[i].Label, out[j].Label)
	})
	return out
}

// Reduce aggregates a completed sweep in one call.
func Reduce(results []Result) []Aggregate {
	a := NewAggregator()
	for _, res := range results {
		a.Add(res)
	}
	return a.Aggregates()
}

// labelLess orders numeric labels numerically ("50" before "100") and
// everything else lexically.
func labelLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		if fa != fb {
			return fa < fb
		}
		return a < b
	}
	return a < b
}
