package sweep_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestWriteCSVGolden pins the sweep CSV output byte for byte, like the
// quickstart golden: the schema is a stable contract that downstream
// plotting scripts parse, and per-cell seeds make the content fully
// deterministic. Refresh with `go test ./pkg/sweep -update`.
func TestWriteCSVGolden(t *testing.T) {
	grid := sweep.Grid{
		Base: shortBase(),
		Axes: []sweep.Axis{
			sweep.Modes(simulate.ClientServer, simulate.CloudAssisted),
			sweep.VMBudgets(50, 100),
		},
	}
	results, err := sweep.Runner{Workers: 4}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	if err := sweep.WriteAggregateCSV(&buf, sweep.Reduce(results)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "sweep.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep CSV drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
