// Package paper regenerates the tables and figures of the evaluation
// section of Wu et al., "CloudMedia: When Cloud on Demand Meets Video on
// Demand" (ICDCS 2011): the Table II/III catalogs, the Fig. 4–11
// simulation studies, and the Sec. VI-C microbenchmarks.
//
//	res, err := paper.Run("fig10", paper.Options{Mode: simulate.CloudAssisted, Scale: 2, Hours: 12})
//	for _, tbl := range res.Tables {
//		tbl.Render(os.Stdout)
//	}
//
// The cloudmedia CLI (cmd/cloudmedia) is a thin flag wrapper around this
// package.
package paper

import (
	"fmt"

	"cloudmedia/internal/experiments"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/modes"
	"cloudmedia/pkg/simulate"
)

// Table is one column-oriented result table; Render writes aligned text
// and RenderCSV comma-separated values.
type Table = metrics.Table

// NewTable creates an empty table with the given title and column headers
// — for callers assembling their own reports alongside the paper's.
func NewTable(title string, headers ...string) *Table {
	return metrics.NewTable(title, headers...)
}

// Result is the output of one experiment: the paper artifact's data as
// tables plus headline summary numbers.
type Result = experiments.Result

// Options selects the run configuration shared by every experiment.
type Options struct {
	// Mode is the architecture under test; zero means client-server.
	// Comparative figures (fig4, fig5, fig10, …) run the modes they
	// compare regardless of this setting.
	Mode simulate.Mode
	// Fidelity selects the simulation engine; zero means the per-viewer
	// event engine. Every experiment honours it, including the
	// comparative figures (both sides run on the chosen engine).
	Fidelity simulate.Fidelity
	// Policy selects the provisioning policy; nil means greedy, the
	// paper's heuristic. Like Fidelity, every simulation experiment
	// honours it (costfrontier pins the policies it compares).
	Policy simulate.Policy
	// Pricing selects the cloud billing plan; the zero value is pure
	// on-demand, the paper's literal prices (costfrontier pins the plans
	// it compares).
	Pricing simulate.PricingPlan
	// Source, when non-nil, replaces the parametric demand with a trace
	// or custom arrival-intensity source (the CLI's -trace flag); the
	// channel count follows the source. Experiments that synthesize their
	// own workloads (regional) ignore it.
	Source simulate.Source
	// Faults injects a declarative failure plan (the CLI's -fault flag):
	// region outages, spot mass-preemptions, capacity degradations. nil
	// injects nothing (resilience pins the schedules it compares).
	Faults *simulate.FaultSchedule
	// Scale is the workload scale: 1 ≈ 250 concurrent viewers, 10 ≈ paper
	// scale. Zero means 2.
	Scale float64
	// Hours is the simulated duration per run; zero means 24.
	Hours float64
	// Seed drives all randomness; runs are reproducible per seed. Zero
	// means 42, the suite default, matching the CLI.
	Seed int64
	// Workers bounds the engines' channel-stepping worker pool; zero means
	// GOMAXPROCS. Results are bit-identical for every value.
	Workers int
}

// IDs returns every experiment identifier in the suite's presentation
// order: the Table II/III catalogs first, then the figures in paper
// order, then the microbenchmarks and the mode-sensitive timeline.
func IDs() []string {
	return experiments.IDs()
}

// Run executes one experiment by ID (see IDs).
func Run(id string, o Options) (*Result, error) {
	runner, ok := experiments.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("paper: unknown experiment %q", id)
	}
	if o.Mode == 0 {
		o.Mode = simulate.ClientServer
	}
	if o.Scale == 0 {
		o.Scale = 2
	}
	esc, err := scenario(o)
	if err != nil {
		return nil, err
	}
	return runner(esc)
}

// scenario maps the public options onto the experiment harness's scenario
// through the canonical mode mapping (internal/modes): P2P holds the
// bootstrap rental statically, CloudAssisted provisions dynamically.
// Experiments that pin their own modes reset both fields (see
// Scenario.pinMode), so the setting only reaches the mode-sensitive
// entries.
func scenario(o Options) (experiments.Scenario, error) {
	mode, static, err := modes.Engine(o.Mode)
	if err != nil {
		return experiments.Scenario{}, fmt.Errorf("paper: %w", err)
	}
	esc := experiments.DefaultScenario(mode, o.Scale)
	esc.Fidelity = o.Fidelity
	esc.Policy = o.Policy
	esc.Pricing = o.Pricing
	esc.Source = o.Source
	esc.Faults = o.Faults.Clone()
	if o.Hours != 0 {
		esc.Hours = o.Hours
	}
	if o.Seed != 0 {
		esc.Seed = o.Seed
	}
	esc.Workers = o.Workers
	esc.StaticProvisioning = static
	return esc, nil
}
