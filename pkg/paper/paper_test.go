package paper_test

import (
	"reflect"
	"testing"

	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/simulate"
)

func TestIDs(t *testing.T) {
	ids := paper.IDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	// Presentation order: catalogs first, the mode-sensitive entries
	// (timeline, regional, costfrontier, tracereplay, resilience) last.
	if ids[0] != "tab2" || ids[len(ids)-1] != "resilience" {
		t.Errorf("presentation order lost: %v", ids)
	}
	want := map[string]bool{"tab2": false, "tab3": false, "fig4": false, "fig10": false}
	for _, id := range ids {
		if _, ok := want[id]; ok {
			want[id] = true
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunStatic(t *testing.T) {
	res, err := paper.Run("tab2", paper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tab2" || len(res.Tables) == 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestRunShortFigureAllModes(t *testing.T) {
	for _, mode := range []simulate.Mode{simulate.ClientServer, simulate.P2P, simulate.CloudAssisted} {
		if _, err := paper.Run("fig6", paper.Options{Mode: mode, Scale: 1, Hours: 1}); err != nil {
			t.Errorf("fig6 %v: %v", mode, err)
		}
	}
}

func TestModeDoesNotLeakIntoPinnedFigures(t *testing.T) {
	// fig6 is defined over client-server regardless of Options.Mode; in
	// particular the p2p mode's static-provisioning override must not leak
	// into it, so the summaries are identical for any requested mode.
	cs, err := paper.Run("fig6", paper.Options{Mode: simulate.ClientServer, Scale: 1, Hours: 2})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := paper.Run("fig6", paper.Options{Mode: simulate.P2P, Scale: 1, Hours: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs.Summary, pp.Summary) {
		t.Errorf("fig6 summary depends on requested mode:\n client-server: %v\n p2p: %v", cs.Summary, pp.Summary)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := paper.Run("fig99", paper.Options{}); err == nil {
		t.Error("unknown experiment: want error")
	}
	if _, err := paper.Run("tab2", paper.Options{Mode: simulate.Mode(42)}); err == nil {
		t.Error("invalid mode: want error")
	}
}
