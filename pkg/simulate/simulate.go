// Package simulate runs the CloudMedia discrete-event system — workload
// generator, streaming simulator, measurement tracker, dynamic
// provisioning controller, and IaaS cloud — behind a context-aware API.
//
// Build a Scenario (Default gives the reduced-scale counterpart of the
// paper's setup), then call Run with a context. Long runs stream their
// provisioning rounds through OnInterval or Stream instead of accumulating
// them, so memory stays bounded by one interval:
//
//	sc := simulate.Default(simulate.CloudAssisted, 2)
//	sc.Hours = 12
//	report, err := sc.Run(ctx, simulate.OnInterval(func(rec simulate.IntervalRecord) {
//		log.Printf("t=%.0fh reserved demand %.1f Mbps", rec.Time/3600, rec.TotalDemand*8/1e6)
//	}))
//
// Everything here wraps the internal engines; the analytic one-shot
// pipeline lives in the root cloudmedia package and pkg/plan.
package simulate

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/experiments"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/mathx"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// Mode selects the VoD architecture under test (Sec. III-B):
// ClientServer serves every chunk from dynamically rented cloud capacity;
// P2P runs the mesh-pull overlay with only the bootstrap (t=0) rental
// held statically for the whole run; CloudAssisted is the paper's
// CloudMedia, the overlay plus per-interval dynamic provisioning.
type Mode = modes.Mode

const (
	ClientServer  = modes.ClientServer
	P2P           = modes.P2P
	CloudAssisted = modes.CloudAssisted
)

// ParseMode converts a command-line spelling into a Mode. It accepts
// "client-server" (or "cs"), "p2p", and "cloud-assisted" (or
// "cloudmedia").
func ParseMode(s string) (Mode, error) {
	m, err := modes.Parse(s)
	if err != nil {
		return 0, fmt.Errorf("simulate: %w", err)
	}
	return m, nil
}

// Fidelity selects the simulation engine behind a scenario: the
// per-viewer discrete-event engine (FidelityEvent, the default and the
// accuracy reference) or the aggregate fluid-cohort engine
// (FidelityFluid, O(channels × chunks) state for million-viewer runs).
// See DESIGN.md "Engine fidelities" for the trade-offs.
type Fidelity = modes.Fidelity

const (
	FidelityEvent = modes.FidelityEvent
	FidelityFluid = modes.FidelityFluid
)

// ParseFidelity converts a command-line spelling into a Fidelity. It
// accepts "event" (or "discrete") and "fluid" (or "cohort").
func ParseFidelity(s string) (Fidelity, error) {
	f, err := modes.ParseFidelity(s)
	if err != nil {
		return 0, fmt.Errorf("simulate: %w", err)
	}
	return f, nil
}

// ClockMode selects how a live serving run (pkg/serve) paces simulated
// time against real time: ClockReal against the wall clock under a
// time-compression factor, ClockSimulated as fast as the engines can
// step (the batch behaviour, and the deterministic choice for tests).
// The zero value lets the consumer pick its default — the serve daemon
// defaults to real, tests to simulated. Batch Run ignores the setting.
type ClockMode = modes.ClockMode

const (
	ClockReal      = modes.ClockReal
	ClockSimulated = modes.ClockSimulated
)

// ParseClock converts a command-line spelling into a ClockMode. It
// accepts "real" (or "wall") and "simulated" (or "sim").
func ParseClock(s string) (ClockMode, error) {
	c, err := modes.ParseClock(s)
	if err != nil {
		return 0, fmt.Errorf("simulate: %w", err)
	}
	return c, nil
}

// Workload configures the synthetic PPLive-like arrival trace of
// Sec. VI-A: Zipf channel popularity, diurnal Poisson arrivals with flash
// crowds, exponential VCR-jump intervals, and bounded-Pareto peer uplinks.
type Workload = workload.Params

// Source is the demand seam: per-channel arrival intensity over time.
// Scenario.Source accepts any implementation — a recorded or generated
// trace (pkg/trace), or the parametric workload via Workload.Source —
// and both simulation engines, the bootstrap estimates, and the oracle
// policies' true-rate feed consume demand through it. See DESIGN.md
// "Workload sources and traces".
type Source = workload.Source

// FlashCrowd is one Gaussian arrival surge in the daily pattern.
type FlashCrowd = workload.FlashCrowd

// UplinkDistribution is the bounded-Pareto per-peer upload distribution
// used by Workload.PeerUplink.
type UplinkDistribution = mathx.BoundedPareto

// UplinkForRatio returns a peer-uplink distribution scaled so its mean is
// ratio × the streaming rate — the knob of the paper's Fig. 11 sweep.
func UplinkForRatio(streamingRate, ratio float64) (UplinkDistribution, error) {
	return workload.UplinkForRatio(streamingRate, ratio)
}

// DefaultWorkload returns the paper's trace parameters: 20 Zipf channels,
// ~2500 concurrent viewers, two flash crowds, 15-minute jump intervals.
func DefaultWorkload() Workload { return workload.Default() }

// BaseRateForViewers returns the aggregate base arrival rate that targets
// the given steady-state concurrent viewer count under the Default
// scenario's session length — the conversion behind WithViewerScale
// (250 viewers correspond to scale 1).
func BaseRateForViewers(viewers float64) float64 {
	return experiments.BaseRateForViewers(viewers)
}

// Scheduling selects how the P2P overlay allocates peer uplink across
// chunks at each rebalance.
type Scheduling = sim.PeerScheduling

const (
	// RarestFirst serves the scarcest chunks first — the paper's scheme.
	RarestFirst = sim.RarestFirst
	// Proportional splits uplink in proportion to demand, ignoring
	// rareness — the ablation baseline.
	Proportional = sim.Proportional
)

// Predictor forecasts a channel's next-interval arrival rate from the
// observed per-interval history (oldest first). The paper provisions with
// the last observation and flags richer predictors as future work; this
// interface is that extension point.
type Predictor = core.Predictor

// LastInterval is the paper's predictor: next interval equals the rate
// just observed (Sec. V-B).
type LastInterval = core.LastInterval

// EWMA smooths the history with an exponentially weighted moving average.
type EWMA = core.EWMA

// PeakOfWindow provisions for the maximum over a trailing window.
type PeakOfWindow = core.PeakOfWindow

// DiurnalMemory forecasts with the observation one daily period ago.
type DiurnalMemory = core.DiurnalMemory

// Policy is the provisioning-policy seam: how predicted per-chunk demand
// becomes a rental plan each interval. Policies are stateless value specs
// safe to share across scenarios; see DESIGN.md "Provisioning policies".
type Policy = provision.Policy

// Greedy is the paper's policy: every interval, run the greedy heuristic
// on the predicted demand, scaling demand down when the budget is
// infeasible. The default.
type Greedy = provision.Greedy

// Lookahead provisions for the per-chunk maximum over the next K
// predicted intervals and releases capacity only after the lower target
// persists for Hysteresis rounds — the anti-thrash policy.
type Lookahead = provision.Lookahead

// Oracle plans like Greedy but on the true arrival intensity of the
// workload trace: the perfect-prediction cost/quality upper bound.
type Oracle = provision.Oracle

// StaticPeak rents the horizon's peak demand once at t=0 and holds it for
// the whole run — the fixed-provisioning baseline generalized.
type StaticPeak = provision.StaticPeak

// ParsePolicy converts a command-line spelling into a Policy. It accepts
// "greedy", "lookahead", "lookahead-hedged", "oracle", and "staticpeak".
func ParsePolicy(s string) (Policy, error) {
	p, err := provision.ParsePolicy(s)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return p, nil
}

// PricingPlan describes how rented resources turn into dollars: an
// on-demand tier plus an optional reserved tier (a committed fraction of
// every VM cluster at a discounted hourly rate with an upfront fee per
// term). The zero value is pure on-demand, the paper's literal pricing.
type PricingPlan = cloud.PricingPlan

// LedgerTotals is a billing aggregate: VM-hours split reserved/on-demand,
// GB-hours, and dollars per tier. Every IntervalRecord carries the
// interval's accrual; every Report carries the run's total.
type LedgerTotals = cloud.LedgerTotals

// OnDemandPricing returns the paper's literal pricing: every VM-hour and
// GB-hour at the catalog price, no reservations.
func OnDemandPricing() PricingPlan { return cloud.OnDemandPricing() }

// ReservedPricing returns a reservation-heavy plan: 10% of every VM
// cluster committed per day at 45% of the catalog rate plus a 25%
// upfront, overflow on demand.
func ReservedPricing() PricingPlan { return cloud.ReservedPricing() }

// SpotPricing returns a spot-heavy plan: 70% of the elastic (beyond
// reserved) capacity billed at 30% of the catalog rate, carrying an
// expected 0.25 interruption events per hour. The discount is real money;
// the interruption risk is realized by the fault layer's seeded
// preemption process (see FaultSchedule) — hedge with
// Lookahead{SpotHedge: true}.
func SpotPricing() PricingPlan { return cloud.SpotPricing() }

// ParsePricing converts a command-line spelling into a PricingPlan. It
// accepts "on-demand", "reserved", and "spot".
func ParsePricing(s string) (PricingPlan, error) {
	p, err := cloud.ParsePricing(s)
	if err != nil {
		return PricingPlan{}, fmt.Errorf("simulate: %w", err)
	}
	return p, nil
}

// FaultSchedule is a declarative failure plan injected into a run at its
// control barriers: region outages (cross-region failover in the geo
// deployment, capacity blackouts in single-region runs), spot
// mass-preemptions, and capacity degradations. nil injects nothing. All
// fault handling is deterministic per seed and bit-identical across
// worker counts. See DESIGN.md "Failure injection and spot markets".
type FaultSchedule = fault.Schedule

// RegionOutage, SpotPreemption, and CapacityDegradation are the three
// fault kinds a FaultSchedule declares.
type (
	RegionOutage        = fault.RegionOutage
	SpotPreemption      = fault.SpotPreemption
	CapacityDegradation = fault.CapacityDegradation
)

// FaultPresets returns the named fault scenarios ("outage-flash",
// "preempt-peak", "degrade-evening"), aligned to the default workload's
// evening flash crowd.
func FaultPresets() map[string]*FaultSchedule { return fault.Presets() }

// FaultPresetNames lists the preset spellings, sorted, for CLI help.
func FaultPresetNames() []string { return fault.PresetNames() }

// ParseFault converts a command-line fault spec into a FaultSchedule: a
// preset name or comma-separated events like "outage@19.5h+2h",
// "preempt@20h:0.6", "degrade@18h+3h:0.5" (optionally region-scoped with
// a "name=" prefix). "" and "none" return nil.
func ParseFault(spec string) (*FaultSchedule, error) {
	s, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	return s, nil
}

// IntervalRecord captures one provisioning round: the arrival-rate
// estimates, derived cloud demand, peer supply, the VM and storage plans
// applied, the interval's ledger bill, and any planning failures.
type IntervalRecord = core.IntervalRecord
