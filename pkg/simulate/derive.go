package simulate

import (
	"fmt"

	"cloudmedia/internal/config"
	"cloudmedia/internal/experiments"
	"cloudmedia/internal/workload"
	"cloudmedia/pkg/plan"
)

// Option is a functional option shared with the root cloudmedia package:
// cloudmedia.WithHours, cloudmedia.WithBudgets, and the rest apply here
// unchanged (the two names alias one type). Scenario.With re-applies them
// to a derived copy.
type Option = config.Option

// With returns a derived scenario: a deep copy of the receiver with the
// options re-applied on top. The copy shares no mutable state with its
// parent — workloads, catalogs, and every other reference field are
// cloned — so parent and child can be mutated and run concurrently.
// Pipeline-only options (WithArrivalRate, WithTransfer, …) are harmless
// no-ops, matching NewScenario; WithScale is relative, multiplying the
// current arrival rate. Option conflicts surface on the next Validate or
// Run of the derived scenario, so derivation chains stay fluent:
//
//	base, _ := cloudmedia.NewScenario(cloudmedia.CloudAssisted, cloudmedia.WithHours(12))
//	cheap := base.With(cloudmedia.WithBudgets(50, 1))
//	crowded := cheap.With(cloudmedia.WithScale(2), cloudmedia.WithSeed(7))
func (sc Scenario) With(opts ...Option) Scenario {
	out := sc.Clone()
	s, err := config.Apply(opts)
	if err != nil {
		out.err = err
		return out
	}
	// Scale first: it rescales the *current* workload (or the current
	// demand source — a trace's arrival intensity is multiplied, since
	// rescaling the unused parametric base rate would be a silent no-op),
	// and an explicit WithWorkload or demand-source option in the same
	// call replaces the demand wholesale (the replacement is taken as-is,
	// matching NewScenario's precedence). WithViewerScale is absolute —
	// it pins the base rate to the target concurrency regardless of the
	// current rate — so it wins over the relative WithScale when both
	// appear; it is defined only for the parametric workload, so
	// combining it with a demand source is a recorded conflict.
	if s.Scale != nil {
		if out.Source != nil {
			scaled, err := workload.Scaled(out.Source, *s.Scale)
			if err != nil {
				out.err = err
				return out
			}
			out.Source = scaled
		} else {
			out.Workload.BaseArrivalRate *= *s.Scale
		}
	}
	if s.ViewerScale != nil {
		if out.Source != nil || s.Source != nil {
			out.err = fmt.Errorf("simulate: WithViewerScale targets the parametric workload and conflicts with a demand source (scale the trace instead: Trace.Scale or WithScale)")
			return out
		}
		out.Workload.BaseArrivalRate = experiments.BaseRateForViewers(*s.ViewerScale)
	}
	if s.Workload != nil {
		out.Workload = s.Workload.Clone()
	}
	if s.Source != nil {
		out.Source = s.Source.CloneSource()
	}
	out.Channel = s.Channel(out.Channel)
	if s.Channels != nil {
		out.Workload.Channels = *s.Channels
	}
	if s.Hours != nil {
		out.Hours = *s.Hours
	}
	if s.Seed != nil {
		out.Seed = *s.Seed
	}
	if s.Interval != nil {
		out.IntervalSeconds = *s.Interval
	}
	if s.Sample != nil {
		out.SampleSeconds = *s.Sample
	}
	if s.UplinkRatio != nil {
		out.UplinkRatio = *s.UplinkRatio
	}
	if s.Budgets != nil {
		out.VMBudget, out.StorageBudget = s.Budgets[0], s.Budgets[1]
	}
	if s.VMClusters != nil {
		out.VMClusters = append([]plan.VMCluster(nil), s.VMClusters...)
	}
	if s.NFSClusters != nil {
		out.NFSClusters = append([]plan.NFSCluster(nil), s.NFSClusters...)
	}
	if s.Predictor != nil {
		out.Predictor = s.Predictor
	}
	if s.Policy != nil {
		out.Policy = s.Policy
	}
	if s.Pricing != nil {
		out.Pricing = *s.Pricing
	}
	if s.Faults != nil {
		out.Faults = s.Faults.Clone()
	}
	if s.Scheduling != 0 {
		out.Scheduling = s.Scheduling
	}
	if s.Workers != nil {
		out.Workers = *s.Workers
	}
	if s.Fidelity != 0 {
		out.Fidelity = s.Fidelity
	}
	if s.Clock != 0 {
		out.Serve.Clock = s.Clock
	}
	if s.TimeScale != nil {
		out.Serve.TimeScale = *s.TimeScale
	}
	if s.MetricsAddr != nil {
		out.Serve.MetricsAddr = *s.MetricsAddr
	}
	return out
}

// Clone returns a deep copy of the scenario: the workload (including its
// flash-crowd list and cached popularity weights) and the rental catalogs
// are reallocated, so mutating the copy never reaches the original.
// Predictor and Policy values are shared; both are stateless specs (each
// run builds its own planner and billing ledger from them, so two clones
// running concurrently share no ledger or planner state).
func (sc Scenario) Clone() Scenario {
	sc.Workload = sc.Workload.Clone()
	if sc.Source != nil {
		sc.Source = sc.Source.CloneSource()
	}
	sc.VMClusters = append([]plan.VMCluster(nil), sc.VMClusters...)
	sc.NFSClusters = append([]plan.NFSCluster(nil), sc.NFSClusters...)
	sc.Faults = sc.Faults.Clone()
	return sc
}
