package simulate

import (
	"errors"
	"fmt"
	"math"

	"cloudmedia/internal/experiments"
	"cloudmedia/internal/modes"
	"cloudmedia/pkg/plan"
)

// ErrInvalidScenario is wrapped by every scenario-validation failure —
// an invalid mode, a non-positive duration, a negative period, or an
// option conflict recorded during With. Detect it with errors.Is:
//
//	if _, err := sc.Run(ctx); errors.Is(err, simulate.ErrInvalidScenario) { … }
var ErrInvalidScenario = errors.New("simulate: invalid scenario")

// Scenario bundles every knob a simulation run needs. The zero value is
// invalid; start from Default and override fields, or derive a variant
// from an existing scenario with With.
type Scenario struct {
	// Mode is the architecture under test.
	Mode Mode
	// Fidelity selects the simulation engine: zero or FidelityEvent runs
	// the per-viewer discrete-event simulator, FidelityFluid the
	// aggregate cohort integrator whose state is O(channels × chunks)
	// regardless of crowd size — the backend for million-viewer runs.
	Fidelity Fidelity
	// Channel holds the per-channel parameters (channels are uniform, as
	// in the paper).
	Channel plan.Channel
	// Workload drives the arrival trace.
	Workload Workload
	// Source, when non-nil, overrides the demand side of the workload
	// with an arbitrary arrival-intensity source — most usefully a
	// recorded or generated *trace.Trace (pkg/trace). The channel count
	// then follows the source; Workload keeps supplying the behavioural
	// parameters (VCR jumps, peer uplinks), and oracle policies plan on
	// the source's true rates.
	Source Source
	// Hours is the simulated duration.
	Hours float64
	// IntervalSeconds is the provisioning period T; 0 means hourly.
	IntervalSeconds float64
	// VMBudget is B_M in $/hour (the paper uses 100).
	VMBudget float64
	// StorageBudget is B_S in $/hour (the paper uses 1).
	StorageBudget float64
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// SampleSeconds is the measurement sampling period; 0 means 900.
	SampleSeconds float64
	// UplinkRatio, if > 0, rescales peer uplinks so their mean is
	// ratio × the streaming rate (the Fig. 11 sweep).
	UplinkRatio float64
	// Predictor overrides the controller's arrival-rate forecaster; nil
	// uses the paper's last-interval rule.
	Predictor Predictor
	// Policy selects the provisioning policy (how predicted demand turns
	// into rental plans); nil uses Greedy, the paper's heuristic.
	Policy Policy
	// Pricing selects the cloud billing plan; the zero value is pure
	// on-demand, the paper's literal pricing.
	Pricing PricingPlan
	// Faults is the declarative failure plan injected at the run's control
	// barriers; nil injects nothing. A spot Pricing plan with an
	// interruption rate drives its own seeded preemption process even with
	// no schedule.
	Faults *FaultSchedule
	// Scheduling overrides the P2P uplink allocation policy; zero uses
	// rarest-first, the paper's scheme.
	Scheduling Scheduling
	// Workers bounds the worker pool both engines use to step channels in
	// parallel between control barriers; 0 means GOMAXPROCS. Results are
	// bit-identical for every value — it is purely a throughput knob.
	Workers int
	// VMClusters and NFSClusters override the rental catalogs; nil uses
	// the paper's Table II/III defaults.
	VMClusters  []plan.VMCluster
	NFSClusters []plan.NFSCluster
	// Serve configures live serving (pkg/serve); batch Run ignores it.
	Serve ServeSettings

	// err records an option conflict observed during With; Validate and
	// Run surface it wrapped in ErrInvalidScenario.
	err error
}

// ServeSettings is the live-serving block of a Scenario, consumed only
// by pkg/serve (batch Run ignores it; the options WithClock,
// WithTimeScale, and WithMetricsAddr write it).
type ServeSettings struct {
	// Clock selects the pacing mode; the zero value lets serve.Run pick
	// its default (real).
	Clock ClockMode
	// TimeScale compresses simulated time for the real clock: one
	// simulated second takes 1/TimeScale real seconds. 0 means 1; 24
	// replays a day-long trace in an hour.
	TimeScale float64
	// MetricsAddr, when non-empty, is the TCP address the observability
	// endpoint listens on (e.g. ":9090").
	MetricsAddr string
}

// Default returns the reduced-scale counterpart of the paper's setup for
// the given mode: Zipf channels, diurnal arrivals with two flash crowds,
// hourly provisioning, Table II/III catalogs, B_M = $100/h, B_S = $1/h.
// scale 1 targets ~250 concurrent viewers; 10 approaches paper scale.
func Default(mode Mode, scale float64) Scenario {
	base := experiments.DefaultScenario(0, scale)
	return Scenario{
		Mode:            mode,
		Channel:         base.Channel,
		Workload:        base.Workload,
		Hours:           base.Hours,
		IntervalSeconds: base.IntervalSeconds,
		VMBudget:        base.VMBudget,
		StorageBudget:   base.StorageBudget,
		Seed:            base.Seed,
		SampleSeconds:   base.SampleSeconds,
	}
}

// Validate reports the first violated scenario invariant without running
// anything. Every failure wraps ErrInvalidScenario.
func (sc Scenario) Validate() error {
	if _, err := sc.internal(); err != nil {
		return err
	}
	return nil
}

// internal converts the public scenario into the experiment harness's
// form, applying the mode mapping.
func (sc Scenario) internal() (experiments.Scenario, error) {
	if sc.err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, sc.err)
	}
	engineMode, static, err := modes.Engine(sc.Mode)
	if err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	}
	if sc.Fidelity != 0 && sc.Fidelity != FidelityEvent && sc.Fidelity != FidelityFluid {
		return experiments.Scenario{}, fmt.Errorf("%w: invalid fidelity %d", ErrInvalidScenario, int(sc.Fidelity))
	}
	if sc.Hours <= 0 {
		return experiments.Scenario{}, fmt.Errorf("%w: non-positive duration %v h", ErrInvalidScenario, sc.Hours)
	}
	if sc.IntervalSeconds < 0 {
		return experiments.Scenario{}, fmt.Errorf("%w: negative provisioning interval %v s", ErrInvalidScenario, sc.IntervalSeconds)
	}
	if sc.SampleSeconds < 0 {
		return experiments.Scenario{}, fmt.Errorf("%w: negative sampling period %v s", ErrInvalidScenario, sc.SampleSeconds)
	}
	if err := sc.Channel.Validate(); err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	}
	if err := sc.Workload.Validate(); err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	}
	if sc.Source != nil {
		if err := sc.Source.Validate(); err != nil {
			return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
		}
		if sc.Source.NumChannels() <= 0 {
			return experiments.Scenario{}, fmt.Errorf("%w: demand source has no channels", ErrInvalidScenario)
		}
	}
	if err := sc.Pricing.Validate(); err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	}
	if err := sc.Faults.Validate(); err != nil {
		return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	}
	if v, ok := sc.Policy.(interface{ Validate() error }); ok && sc.Policy != nil {
		if err := v.Validate(); err != nil {
			return experiments.Scenario{}, fmt.Errorf("%w: %w", ErrInvalidScenario, err)
		}
	}
	if c := sc.Serve.Clock; c != 0 && c != ClockReal && c != ClockSimulated {
		return experiments.Scenario{}, fmt.Errorf("%w: invalid clock mode %d", ErrInvalidScenario, int(c))
	}
	if ts := sc.Serve.TimeScale; ts < 0 || math.IsNaN(ts) || math.IsInf(ts, 0) {
		return experiments.Scenario{}, fmt.Errorf("%w: invalid time scale %v", ErrInvalidScenario, ts)
	}
	if sc.Workers < 0 {
		return experiments.Scenario{}, fmt.Errorf("%w: negative workers %d", ErrInvalidScenario, sc.Workers)
	}
	out := experiments.Scenario{
		Mode:               engineMode,
		Fidelity:           sc.Fidelity,
		Channel:            sc.Channel,
		Workload:           sc.Workload,
		Source:             sc.Source,
		Hours:              sc.Hours,
		IntervalSeconds:    sc.IntervalSeconds,
		VMBudget:           sc.VMBudget,
		StorageBudget:      sc.StorageBudget,
		Seed:               sc.Seed,
		SampleSeconds:      sc.SampleSeconds,
		UplinkRatio:        sc.UplinkRatio,
		Predictor:          sc.Predictor,
		Policy:             sc.Policy,
		Pricing:            sc.Pricing,
		Faults:             sc.Faults,
		Scheduling:         sc.Scheduling,
		Workers:            sc.Workers,
		VMClusters:         sc.VMClusters,
		NFSClusters:        sc.NFSClusters,
		StaticProvisioning: static,
	}
	if out.IntervalSeconds == 0 {
		out.IntervalSeconds = 3600
	}
	if out.SampleSeconds == 0 {
		out.SampleSeconds = 900
	}
	return out, nil
}
