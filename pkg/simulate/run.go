package simulate

import (
	"context"

	"cloudmedia/internal/experiments"
)

// Snapshot is one periodic measurement of the running system, taken every
// Scenario.SampleSeconds of simulated time.
type Snapshot struct {
	// Time is the simulated clock in seconds.
	Time float64
	// Quality is the fraction of viewers with no playback stall inside the
	// trailing quality window (Fig. 5's metric).
	Quality float64
	// PerChannelQuality splits Quality by channel (1 for empty channels).
	PerChannelQuality []float64
	// Users is the current viewer count; PerChannelUsers splits it.
	Users           int
	PerChannelUsers []int
	// ReservedMbps is the cloud capacity provisioned at this instant.
	ReservedMbps float64
	// CloudServedGB is the cumulative cloud traffic actually delivered
	// since the start of the run (the "used" curve of Fig. 4).
	CloudServedGB float64
	// VMCost and StorageCost are the dollars accrued since the start of
	// the run.
	VMCost      float64
	StorageCost float64
}

// Report summarizes a finished (or cancelled) run.
type Report struct {
	// Mode and Hours echo the scenario; Hours is the simulated time
	// actually covered, which is less than requested if the context was
	// cancelled.
	Mode  Mode
	Hours float64
	// Intervals is the number of provisioning rounds that ran (including
	// the t=0 bootstrap).
	Intervals int
	// VMCostTotal and StorageCostTotal are the run's cloud bill at the
	// catalog's on-demand prices (the paper's literal accounting).
	VMCostTotal      float64
	StorageCostTotal float64
	// Bill is the ledger's view of the same run under the scenario's
	// PricingPlan: VM-hours and dollars split reserved / on-demand /
	// upfront / storage. Under the default on-demand plan Bill.TotalUSD()
	// equals VMCostTotal + StorageCostTotal.
	Bill LedgerTotals
	// MeanQuality averages Snapshot.Quality over the run.
	MeanQuality float64
	// MeanReservedMbps averages the provisioned cloud bandwidth.
	MeanReservedMbps float64
	// FinalUsers is the viewer count when the run ended.
	FinalUsers int
	// Records holds every provisioning round and Snapshots every sample,
	// only when the run was started with KeepHistory; stream via
	// OnInterval/OnSnapshot otherwise.
	Records   []IntervalRecord
	Snapshots []Snapshot
}

// RunOption configures one Run call.
type RunOption func(*runConfig)

type runConfig struct {
	onInterval  []func(IntervalRecord)
	onSnapshot  []func(Snapshot)
	onArrivals  []func(channel int, t, n float64)
	pacer       func(simNow float64)
	keepHistory bool
}

// OnInterval streams every provisioning round to fn as soon as it
// completes. fn runs on the simulation goroutine and must not block
// indefinitely. Multiple OnInterval options all fire, in order.
func OnInterval(fn func(IntervalRecord)) RunOption {
	return func(rc *runConfig) { rc.onInterval = append(rc.onInterval, fn) }
}

// OnSnapshot streams every periodic measurement to fn as it is taken.
// Multiple OnSnapshot options all fire, in order.
func OnSnapshot(fn func(Snapshot)) RunOption {
	return func(rc *runConfig) { rc.onSnapshot = append(rc.onSnapshot, fn) }
}

// OnArrivals observes every realized arrival of the run: the channel,
// the simulated time, and the arrival mass (1 per viewer on the event
// engine, fractional step masses on the fluid engine). Wire a
// trace.Recorder's Add here to capture the run as a replayable trace.
// Calls for one channel are serialized, but different channels may call
// concurrently from the event engine's channel workers — fn must keep
// per-channel state only (trace.Recorder does). Multiple OnArrivals
// options all fire, in order.
func OnArrivals(fn func(channel int, t, n float64)) RunOption {
	return func(rc *runConfig) { rc.onArrivals = append(rc.onArrivals, fn) }
}

// WithPacer installs the engines' pacing hook: fn is called once per
// control barrier with the simulated time the engine is about to advance
// to, before any state moves past the current instant. It runs on the
// simulation goroutine and is meant to sleep (pkg/serve wires a pacing
// clock here); it must not call back into the run. Because the hook only
// delays the engine, a paced run's interval records are identical to the
// same scenario's batch Run. The last WithPacer wins.
func WithPacer(fn func(simNow float64)) RunOption {
	return func(rc *runConfig) { rc.pacer = fn }
}

// KeepHistory retains every IntervalRecord and Snapshot in the Report.
// Memory grows with the run length; prefer the streaming callbacks for
// long simulations.
func KeepHistory() RunOption {
	return func(rc *runConfig) { rc.keepHistory = true }
}

// Run builds the system, applies bootstrap provisioning from the analytic
// t=0 estimates, and advances the simulation for Scenario.Hours of
// simulated time. The context is checked between sampling steps
// (Scenario.SampleSeconds of simulated time); on cancellation Run returns
// the context error together with a report covering the time simulated so
// far.
func (sc Scenario) Run(ctx context.Context, opts ...RunOption) (*Report, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}

	esc, err := sc.internal()
	if err != nil {
		return nil, err
	}
	rep := &Report{Mode: sc.Mode}
	intervals := 0
	esc.Pacer = rc.pacer
	// The OnInterval hook below captures every round, so the controller
	// never needs its own in-memory history.
	esc.DiscardRecords = true
	if len(rc.onArrivals) > 0 {
		fns := rc.onArrivals
		esc.OnArrivals = func(channel int, t, n float64) {
			for _, fn := range fns {
				fn(channel, t, n)
			}
		}
	}
	esc.OnInterval = func(rec IntervalRecord) {
		intervals++
		for _, fn := range rc.onInterval {
			fn(rec)
		}
		if rc.keepHistory {
			rep.Records = append(rep.Records, rec)
		}
	}

	sys, err := experiments.Build(esc)
	if err != nil {
		return nil, err
	}

	var qualitySum, reservedSum float64
	samples := 0
	observe := func(now float64) {
		sys.Cloud.Advance(now)
		vmCost, storageCost := sys.Cloud.Costs()
		q := sys.Sim.SampleQuality()
		snap := Snapshot{
			Time:              now,
			Quality:           q.Overall,
			PerChannelQuality: q.PerChannel,
			Users:             sys.Sim.TotalUsers(),
			PerChannelUsers:   q.UsersPerChannel,
			ReservedMbps:      sys.Sim.TotalCloudCapacity() * 8 / 1e6,
			CloudServedGB:     sys.Sim.CloudBytesServed() / 1e9,
			VMCost:            vmCost,
			StorageCost:       storageCost,
		}
		qualitySum += snap.Quality
		reservedSum += snap.ReservedMbps
		samples++
		for _, fn := range rc.onSnapshot {
			fn(snap)
		}
		if rc.keepHistory {
			rep.Snapshots = append(rep.Snapshots, snap)
		}
	}

	end := esc.Hours * 3600
	step := esc.SampleSeconds
	var runErr error
	for now := 0.0; now < end; {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		now += step
		if now > end {
			now = end
		}
		sys.Sim.RunUntil(now)
		observe(now)
	}

	sys.Cloud.Advance(sys.Sim.Now())
	rep.Hours = sys.Sim.Now() / 3600
	rep.Intervals = intervals
	rep.VMCostTotal, rep.StorageCostTotal = sys.Cloud.Costs()
	rep.Bill = sys.Cloud.Ledger().Totals()
	rep.FinalUsers = sys.Sim.TotalUsers()
	if samples > 0 {
		rep.MeanQuality = qualitySum / float64(samples)
		rep.MeanReservedMbps = reservedSum / float64(samples)
	}
	return rep, runErr
}

// Stream runs the scenario on a background goroutine and delivers every
// provisioning round on the returned channel, which closes when the run
// finishes or the context is cancelled. The returned wait function blocks
// until completion and yields the final report; it must be called to
// collect the run's outcome. Calling wait stops consuming from records
// yourself: it drains any undelivered rounds so a consumer that exits its
// receive loop early cannot deadlock the run.
func (sc Scenario) Stream(ctx context.Context, opts ...RunOption) (<-chan IntervalRecord, func() (*Report, error)) {
	records := make(chan IntervalRecord)
	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer close(records)
		opts = append(opts, OnInterval(func(rec IntervalRecord) {
			select {
			case records <- rec:
			case <-ctx.Done():
			}
		}))
		rep, err := sc.Run(ctx, opts...)
		done <- outcome{rep, err}
	}()
	return records, func() (*Report, error) {
		go func() {
			for range records {
			}
		}()
		out := <-done
		return out.rep, out.err
	}
}
