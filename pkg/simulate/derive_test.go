package simulate_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cloudmedia"
	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

func TestWithDerivesIndependentScenario(t *testing.T) {
	parent, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithHours(2),
		cloudmedia.WithVMClusters(plan.DefaultVMClusters()...),
	)
	if err != nil {
		t.Fatal(err)
	}
	wantCrowds := len(parent.Workload.FlashCrowds)
	wantRate := parent.Workload.BaseArrivalRate
	wantBudget := parent.VMBudget
	wantCluster := parent.VMClusters[0]

	child := parent.With(
		cloudmedia.WithBudgets(37, 2),
		cloudmedia.WithSeed(7),
		cloudmedia.WithScale(2),
	)
	if child.VMBudget != 37 || child.StorageBudget != 2 || child.Seed != 7 {
		t.Errorf("child = budget %v/%v seed %d, want 37/2/7", child.VMBudget, child.StorageBudget, child.Seed)
	}
	if child.Workload.BaseArrivalRate != 2*wantRate {
		t.Errorf("child rate = %v, want %v (relative scale)", child.Workload.BaseArrivalRate, 2*wantRate)
	}

	// Mutate every reference field of the child; the parent must not move.
	child.Workload.FlashCrowds = append(child.Workload.FlashCrowds,
		simulate.FlashCrowd{PeakHour: 3, WidthHours: 1, Amplitude: 9})
	child.Workload.FlashCrowds[0].Amplitude = 99
	child.VMClusters[0].PricePerHour = 1e9
	child.Mode = simulate.P2P
	child.Hours = 1e6

	if len(parent.Workload.FlashCrowds) != wantCrowds {
		t.Errorf("parent flash crowds grew to %d", len(parent.Workload.FlashCrowds))
	}
	if parent.Workload.FlashCrowds[0].Amplitude == 99 {
		t.Error("child crowd mutation reached the parent")
	}
	if parent.VMClusters[0] != wantCluster {
		t.Error("child catalog mutation reached the parent")
	}
	if parent.VMBudget != wantBudget || parent.Mode != cloudmedia.CloudAssisted || parent.Hours != 2 {
		t.Errorf("parent scalars mutated: %+v", parent)
	}
}

// TestWithConcurrentRuns runs a parent and two derived children at the
// same time; under -race this proves derivation shares no mutable state.
func TestWithConcurrentRuns(t *testing.T) {
	parent, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted, cloudmedia.WithHours(1))
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []simulate.Scenario{
		parent,
		parent.With(cloudmedia.WithBudgets(50, 1), cloudmedia.WithSeed(7)),
		parent.With(cloudmedia.WithUplinkRatio(1.2), cloudmedia.WithChannels(4)),
	}
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		wg.Add(1)
		go func(i int, sc simulate.Scenario) {
			defer wg.Done()
			rep, err := sc.Run(context.Background())
			if err != nil {
				t.Errorf("scenario %d: %v", i, err)
				return
			}
			if rep.Hours != 1 {
				t.Errorf("scenario %d: hours = %v", i, rep.Hours)
			}
		}(i, sc)
	}
	wg.Wait()
}

func TestWithChainsAndValidates(t *testing.T) {
	base, err := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithHours(4))
	if err != nil {
		t.Fatal(err)
	}
	derived := base.With(cloudmedia.WithInterval(1800)).With(cloudmedia.WithSampleSeconds(600))
	if derived.IntervalSeconds != 1800 || derived.SampleSeconds != 600 || derived.Hours != 4 {
		t.Errorf("chained derivation lost fields: %+v", derived)
	}
	if err := derived.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithOptionConflictSurfacesOnValidate(t *testing.T) {
	base, err := cloudmedia.NewScenario(cloudmedia.ClientServer)
	if err != nil {
		t.Fatal(err)
	}
	bad := base.With(cloudmedia.WithArrivalRate()) // empty: option error
	err = bad.Validate()
	if err == nil {
		t.Fatal("conflicting options passed Validate")
	}
	if !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("err = %v, want errors.Is ErrInvalidScenario", err)
	}
	if _, err := bad.Run(context.Background()); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("Run err = %v, want errors.Is ErrInvalidScenario", err)
	}
}

func TestWithRejectsNonPositiveScale(t *testing.T) {
	// The seed API clamped scale <= 0 to 1; the option now fails loudly
	// instead of silently producing a zero- or negative-arrival workload.
	for _, scale := range []float64{0, -3} {
		if _, err := cloudmedia.NewScenario(cloudmedia.ClientServer, cloudmedia.WithScale(scale)); err == nil {
			t.Errorf("NewScenario accepted scale %v", scale)
		}
		base, err := cloudmedia.NewScenario(cloudmedia.ClientServer)
		if err != nil {
			t.Fatal(err)
		}
		bad := base.With(cloudmedia.WithScale(scale))
		if err := bad.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
			t.Errorf("With(WithScale(%v)).Validate() = %v, want ErrInvalidScenario", scale, err)
		}
	}
}

func TestValidateCoversWorkloadAndChannel(t *testing.T) {
	sc := simulate.Default(simulate.ClientServer, 1)
	sc.Workload.BaseArrivalRate = -1
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("negative arrival rate: Validate() = %v, want ErrInvalidScenario", err)
	}
	sc = simulate.Default(simulate.ClientServer, 1)
	sc.Channel.Chunks = 0
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("zero chunks: Validate() = %v, want ErrInvalidScenario", err)
	}
}

func TestValidateReturnsTypedError(t *testing.T) {
	cases := map[string]simulate.Scenario{}
	sc := simulate.Default(simulate.ClientServer, 1)
	sc.Hours = 0
	cases["zero hours"] = sc
	sc = simulate.Default(simulate.ClientServer, 1)
	sc.IntervalSeconds = -1
	cases["negative interval"] = sc
	sc = simulate.Default(simulate.ClientServer, 1)
	sc.SampleSeconds = -1
	cases["negative sample"] = sc
	cases["invalid mode"] = simulate.Default(simulate.Mode(42), 1)

	for name, sc := range cases {
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, simulate.ErrInvalidScenario) {
			t.Errorf("%s: err %v not errors.Is ErrInvalidScenario", name, err)
		}
	}
}

func TestModeStringInvalidValues(t *testing.T) {
	for _, m := range []simulate.Mode{0, -1, 42} {
		s := m.String()
		if s == "" {
			t.Errorf("Mode(%d).String() empty", int(m))
		}
		switch s {
		case "client-server", "p2p", "cloud-assisted":
			t.Errorf("Mode(%d).String() = %q collides with a valid mode", int(m), s)
		}
	}
}

func TestCloneDeepCopies(t *testing.T) {
	orig := simulate.Default(simulate.P2P, 1)
	orig.VMClusters = plan.DefaultVMClusters()
	cp := orig.Clone()
	cp.Workload.FlashCrowds[0].PeakHour = 23
	cp.VMClusters[0].MaxVMs = 1
	if orig.Workload.FlashCrowds[0].PeakHour == 23 {
		t.Error("clone shares flash crowds")
	}
	if orig.VMClusters[0].MaxVMs == 1 {
		t.Error("clone shares VM catalog")
	}
}

func TestWithFidelityAndViewerScale(t *testing.T) {
	base := simulate.Default(simulate.CloudAssisted, 1)
	derived := base.With(
		cloudmedia.WithFidelity(simulate.FidelityFluid),
		cloudmedia.WithViewerScale(1_000_000),
	)
	if derived.Fidelity != simulate.FidelityFluid {
		t.Errorf("fidelity = %v, want fluid", derived.Fidelity)
	}
	if base.Fidelity != 0 {
		t.Errorf("base fidelity mutated to %v", base.Fidelity)
	}
	want := simulate.BaseRateForViewers(1_000_000)
	if got := derived.Workload.BaseArrivalRate; got != want {
		t.Errorf("base rate = %v, want %v", got, want)
	}
	if err := derived.Validate(); err != nil {
		t.Errorf("derived scenario invalid: %v", err)
	}
	// ViewerScale is absolute: it wins over a relative scale in the same
	// derivation.
	both := base.With(cloudmedia.WithScale(3), cloudmedia.WithViewerScale(500))
	if got := both.Workload.BaseArrivalRate; got != simulate.BaseRateForViewers(500) {
		t.Errorf("scale+viewerScale base rate = %v, want absolute %v", got, simulate.BaseRateForViewers(500))
	}
}

func TestWithFidelityRejectsInvalid(t *testing.T) {
	sc := simulate.Default(simulate.ClientServer, 1).With(cloudmedia.WithFidelity(99))
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("invalid fidelity: err = %v, want ErrInvalidScenario", err)
	}
	sc = simulate.Default(simulate.ClientServer, 1).With(cloudmedia.WithViewerScale(-5))
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("negative viewer scale: err = %v, want ErrInvalidScenario", err)
	}
	direct := simulate.Default(simulate.ClientServer, 1)
	direct.Fidelity = 99
	if err := direct.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("direct invalid fidelity: err = %v, want ErrInvalidScenario", err)
	}
}

func TestParseFidelity(t *testing.T) {
	for spell, want := range map[string]simulate.Fidelity{
		"event": simulate.FidelityEvent, "discrete": simulate.FidelityEvent,
		"fluid": simulate.FidelityFluid, "cohort": simulate.FidelityFluid,
	} {
		got, err := simulate.ParseFidelity(spell)
		if err != nil || got != want {
			t.Errorf("ParseFidelity(%q) = %v, %v", spell, got, err)
		}
	}
	if _, err := simulate.ParseFidelity("magic"); err == nil {
		t.Error("ParseFidelity accepted junk")
	}
	if simulate.FidelityFluid.String() != "fluid" || simulate.FidelityEvent.String() != "event" {
		t.Error("fidelity spellings drifted")
	}
}

func TestWithPolicyAndPricing(t *testing.T) {
	base := simulate.Default(simulate.CloudAssisted, 1)
	derived := base.With(
		cloudmedia.WithPolicy(simulate.Lookahead{K: 4, Hysteresis: 3}),
		cloudmedia.WithPricing(simulate.ReservedPricing()),
	)
	if derived.Policy == nil || derived.Policy.Name() != "lookahead" {
		t.Errorf("policy = %v, want lookahead", derived.Policy)
	}
	if la, ok := derived.Policy.(simulate.Lookahead); !ok || la.K != 4 || la.Hysteresis != 3 {
		t.Errorf("policy parameters lost: %+v", derived.Policy)
	}
	if derived.Pricing.DisplayName() != "reserved" {
		t.Errorf("pricing = %q, want reserved", derived.Pricing.DisplayName())
	}
	// The base is untouched: nil policy (greedy) and on-demand pricing.
	if base.Policy != nil || base.Pricing.Name != "" {
		t.Errorf("base mutated: policy %v, pricing %q", base.Policy, base.Pricing.Name)
	}
	if err := derived.Validate(); err != nil {
		t.Errorf("derived scenario invalid: %v", err)
	}
}

func TestWithPolicyAndPricingRejectInvalid(t *testing.T) {
	sc := simulate.Default(simulate.ClientServer, 1).With(cloudmedia.WithPolicy(nil))
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("nil policy: err = %v, want ErrInvalidScenario", err)
	}
	bad := simulate.PricingPlan{ReservedFraction: 2, TermHours: 24}
	sc = simulate.Default(simulate.ClientServer, 1).With(cloudmedia.WithPricing(bad))
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("bad pricing: err = %v, want ErrInvalidScenario", err)
	}
	// Invalid policy parameters surface on Validate, not at option time.
	sc = simulate.Default(simulate.ClientServer, 1).With(cloudmedia.WithPolicy(simulate.Lookahead{K: -2}))
	if err := sc.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("negative lookahead: err = %v, want ErrInvalidScenario", err)
	}
}

// TestDeriveClonesDemandSource pins Source handling in With/Clone: the
// derived scenario owns an independent copy of the trace, and a source
// installed through options survives derivation.
func TestDeriveClonesDemandSource(t *testing.T) {
	tr := &trace.Trace{
		Times: []float64{0, 3600},
		Rates: [][]float64{{0.3, 0.5}, {0.1, 0.1}},
	}
	base := simulate.Default(simulate.ClientServer, 1)
	base.Source = tr

	derived := base.With(cloudmedia.WithHours(2))
	if derived.Source == nil {
		t.Fatal("derivation dropped the demand source")
	}
	cl := base.Clone()
	tr.Rates[0][0] = 42 // scribble on the original
	for name, sc := range map[string]simulate.Scenario{"with": derived, "clone": cl} {
		r, err := sc.Source.Rate(0, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r == 42 {
			t.Errorf("%s: derived scenario shares the caller's trace", name)
		}
	}

	if err := derived.Validate(); err != nil {
		t.Fatalf("trace-driven scenario invalid: %v", err)
	}
	bad := base
	bad.Source = &trace.Trace{Times: []float64{0}, Rates: [][]float64{{-1}}}
	if err := bad.Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("invalid source: err = %v, want ErrInvalidScenario", err)
	}
}

// TestScaleAppliesToDemandSource pins the review fix: WithScale on a
// trace-driven scenario multiplies the source's intensity (it used to
// rescale the unused parametric base rate — a silent no-op), and the
// absolute WithViewerScale is a recorded conflict instead.
func TestScaleAppliesToDemandSource(t *testing.T) {
	tr := &trace.Trace{Times: []float64{0, 3600}, Rates: [][]float64{{0.2, 0.4}}}
	base := simulate.Default(simulate.ClientServer, 1)
	base.Source = tr

	doubled := base.With(cloudmedia.WithScale(2))
	if err := doubled.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := doubled.Source.Rate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.4 {
		t.Errorf("scaled trace rate = %v, want 0.4 (2 × 0.2)", r)
	}
	m, err := doubled.Source.MaxRate(0)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0.8 {
		t.Errorf("scaled envelope = %v, want 0.8", m)
	}

	if err := base.With(cloudmedia.WithViewerScale(1000)).Validate(); !errors.Is(err, simulate.ErrInvalidScenario) {
		t.Errorf("WithViewerScale on a trace: err = %v, want ErrInvalidScenario", err)
	}
}
