package simulate_test

import (
	"context"
	"testing"
	"time"

	"cloudmedia/pkg/simulate"
)

func shortScenario(mode simulate.Mode) simulate.Scenario {
	sc := simulate.Default(mode, 1)
	sc.Hours = 2
	return sc
}

func TestRunClientServer(t *testing.T) {
	rep, err := shortScenario(simulate.ClientServer).Run(context.Background(), simulate.KeepHistory())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != simulate.ClientServer {
		t.Errorf("mode = %v", rep.Mode)
	}
	if rep.Hours != 2 {
		t.Errorf("hours = %v, want 2", rep.Hours)
	}
	// Bootstrap + rounds at t=1h and t=2h.
	if rep.Intervals != 3 {
		t.Errorf("intervals = %d, want 3", rep.Intervals)
	}
	if len(rep.Records) != 3 {
		t.Errorf("records = %d, want 3", len(rep.Records))
	}
	// 2 h at the 900 s default sampling period.
	if len(rep.Snapshots) != 8 {
		t.Errorf("snapshots = %d, want 8", len(rep.Snapshots))
	}
	if rep.VMCostTotal <= 0 {
		t.Errorf("VM cost = %v, want > 0", rep.VMCostTotal)
	}
	if rep.MeanQuality <= 0 || rep.MeanQuality > 1 {
		t.Errorf("mean quality = %v outside (0,1]", rep.MeanQuality)
	}
	if rep.MeanReservedMbps <= 0 {
		t.Errorf("reserved = %v, want > 0", rep.MeanReservedMbps)
	}
}

func TestRunWithoutHistoryKeepsNothing(t *testing.T) {
	var streamed int
	rep, err := shortScenario(simulate.ClientServer).Run(context.Background(),
		simulate.OnInterval(func(simulate.IntervalRecord) { streamed++ }))
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Errorf("streamed = %d, want 3", streamed)
	}
	if rep.Records != nil || rep.Snapshots != nil {
		t.Error("history retained without KeepHistory")
	}
}

func TestRunP2PIsStaticallyProvisioned(t *testing.T) {
	rep, err := shortScenario(simulate.P2P).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Pure P2P holds the bootstrap rental: exactly one provisioning round.
	if rep.Intervals != 1 {
		t.Errorf("intervals = %d, want 1 (bootstrap only)", rep.Intervals)
	}
	ca, err := shortScenario(simulate.CloudAssisted).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ca.Intervals != 3 {
		t.Errorf("cloud-assisted intervals = %d, want 3", ca.Intervals)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := shortScenario(simulate.ClientServer).Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Hours != 0 {
		t.Errorf("report = %+v, want zero-hours partial report", rep)
	}

	// Mid-run cancellation stops between sampling steps.
	ctx, cancel = context.WithCancel(context.Background())
	sc := shortScenario(simulate.ClientServer)
	rep, err = sc.Run(ctx, simulate.OnSnapshot(func(s simulate.Snapshot) {
		if s.Time >= 1800 {
			cancel()
		}
	}))
	if err != context.Canceled {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	if rep.Hours <= 0 || rep.Hours >= 2 {
		t.Errorf("partial hours = %v, want in (0,2)", rep.Hours)
	}
}

func TestStream(t *testing.T) {
	records, wait := shortScenario(simulate.CloudAssisted).Stream(context.Background())
	var n int
	for range records {
		n++
	}
	rep, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("streamed records = %d, want 3", n)
	}
	if rep.Intervals != 3 {
		t.Errorf("intervals = %d, want 3", rep.Intervals)
	}
}

func TestStreamEarlyConsumerExit(t *testing.T) {
	// A consumer that stops reading records before the run finishes must
	// still be able to collect the report: wait drains the channel.
	records, wait := shortScenario(simulate.CloudAssisted).Stream(context.Background())
	<-records // read one round, then walk away
	done := make(chan struct{})
	go func() {
		if _, err := wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("wait() deadlocked after early consumer exit")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := shortScenario(simulate.ClientServer).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := shortScenario(simulate.ClientServer).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalUsers != b.FinalUsers || a.Intervals != b.Intervals {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestParseMode(t *testing.T) {
	good := map[string]simulate.Mode{
		"client-server":  simulate.ClientServer,
		"cs":             simulate.ClientServer,
		"p2p":            simulate.P2P,
		"cloud-assisted": simulate.CloudAssisted,
		"cloudmedia":     simulate.CloudAssisted,
	}
	for s, want := range good {
		got, err := simulate.ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("Mode(%v).String() empty", got)
		}
	}
	if _, err := simulate.ParseMode("quantum"); err == nil {
		t.Error("ParseMode(quantum): want error")
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := shortScenario(simulate.ClientServer)
	if err := sc.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	sc.Hours = 0
	if err := sc.Validate(); err == nil {
		t.Error("zero hours accepted")
	}
	sc = shortScenario(simulate.ClientServer)
	sc.SampleSeconds = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative sampling period accepted (would loop forever in Run)")
	}
	sc = shortScenario(simulate.ClientServer)
	sc.IntervalSeconds = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative provisioning interval accepted")
	}
	sc = shortScenario(simulate.Mode(0))
	if err := sc.Validate(); err == nil {
		t.Error("zero mode accepted")
	}
}
