// Package trace is the public facade of the trace-driven workload
// subsystem (internal/trace): per-channel arrival-intensity series that
// plug into any Scenario as its demand source, with a byte-stable
// CSV/JSON codec, synthetic generators beyond the paper's single diurnal
// pattern, and a Recorder that captures a run's realized arrivals back
// into a replayable trace.
//
// A Trace implements simulate.Source, so replaying a recorded day is one
// assignment (or one option):
//
//	tr, err := trace.ReadFile("day.csv")
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted, cloudmedia.WithTrace(tr))
//
// and recording one is one run option:
//
//	rec, err := trace.NewRecorder(6, 900)
//	report, err := sc.Run(ctx, simulate.OnArrivals(rec.Add))
//	tr, err := rec.Trace(report.Hours * 3600)
//
// See DESIGN.md "Workload sources and traces" and the examples/traces
// walkthrough.
package trace

import (
	"cloudmedia/internal/trace"
	"cloudmedia/internal/workload"
)

// Trace is a per-channel arrival-intensity series: Rates[c][i] is
// channel c's arrival rate in users/s at instant Times[i], linear
// between samples and flat outside them. It implements Source.
type Trace = trace.Trace

// Recorder bins a run's realized arrivals into a replayable Trace; wire
// its Add into simulate.OnArrivals.
type Recorder = trace.Recorder

// Source is the demand seam every trace satisfies — the same type as
// simulate.Source.
type Source = workload.Source

// Workload is the parametric workload configuration — the same type as
// simulate.Workload; its Source method adapts it into a Source.
type Workload = workload.Params

// NewRecorder builds a recorder for the given channel count and bin
// width in seconds.
func NewRecorder(channels int, stepSeconds float64) (*Recorder, error) {
	return trace.NewRecorder(channels, stepSeconds)
}

// ParseCSV parses the canonical trace CSV schema (header
// `time_s,ch0,…`, one row per sample); see EXPERIMENTS.md.
func ParseCSV(data []byte) (*Trace, error) { return trace.ParseCSV(data) }

// EncodeCSV renders the trace in the canonical, byte-stable CSV schema.
func EncodeCSV(tr *Trace) []byte { return trace.EncodeCSV(tr) }

// ParseJSON parses the JSON schema {"times":[…],"rates":[[…],…]}.
func ParseJSON(data []byte) (*Trace, error) { return trace.ParseJSON(data) }

// EncodeJSON renders the trace as canonical single-line JSON.
func EncodeJSON(tr *Trace) ([]byte, error) { return trace.EncodeJSON(tr) }

// ReadFile loads a trace from a .csv or .json file by extension.
func ReadFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// WriteFile writes a trace to a .csv or .json file by extension.
func WriteFile(path string, tr *Trace) error { return trace.WriteFile(path, tr) }

// FromSource samples any demand source onto a uniform grid —
// FromSource(workload.Source(), 24, 900) materializes the paper's
// parametric day as a portable artifact.
func FromSource(src Source, hours, stepSeconds float64) (*Trace, error) {
	return trace.FromSource(src, hours, stepSeconds)
}

// WeekdayWeekend samples a parametric workload over several days,
// scaling days 5 and 6 of each week by weekendFactor.
func WeekdayWeekend(w Workload, days int, stepSeconds, weekendFactor float64) (*Trace, error) {
	return trace.WeekdayWeekend(w, days, stepSeconds, weekendFactor)
}

// PopularityDrift generates channels whose Zipf ranking rotates once per
// periodHours, holding the aggregate rate at totalRate.
func PopularityDrift(channels int, hours, stepSeconds, zipfExponent, totalRate, periodHours float64) (*Trace, error) {
	return trace.PopularityDrift(channels, hours, stepSeconds, zipfExponent, totalRate, periodHours)
}

// LaunchDecay generates staggered channel launches that ramp to peakRate
// and decay with the given half-life.
func LaunchDecay(channels int, hours, stepSeconds, peakRate, rampHours, halfLifeHours, staggerHours float64) (*Trace, error) {
	return trace.LaunchDecay(channels, hours, stepSeconds, peakRate, rampHours, halfLifeHours, staggerHours)
}
