// Package plan is the analytic planning surface of the CloudMedia SDK: the
// Sec. IV/V pipeline of Wu et al. (ICDCS 2011) as importable building
// blocks.
//
// The pipeline has three stages, each usable on its own:
//
//  1. SolveEquilibrium sizes a channel's chunk queues with the Jackson
//     queueing analysis (Sec. IV-A/B), yielding the per-chunk server demand.
//  2. SolvePeerSupply estimates how much of that demand the P2P overlay
//     covers under rarest-first scheduling (Sec. IV-C), leaving the cloud
//     residual.
//  3. PlanVMs and PlanStorage turn residual demand into concrete rentals
//     against the Table II/III virtual-cluster catalogs under hourly
//     budgets (Sec. V-A).
//
// The one-call composition of all three stages lives in the root cloudmedia
// package as the Pipeline type; this package is for callers who want the
// intermediate artifacts. All bandwidths are bytes per second, matching the
// paper (r = 50 Kbytes/s); multiply by 8/1e6 for Mbps.
package plan

import (
	"cloudmedia/internal/cloud"
	"cloudmedia/internal/p2p"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
)

// Channel carries one video channel's parameters: chunk count J, playback
// rate r, chunk playback time T₀, per-VM bandwidth R, and the entry
// distribution. The zero value is invalid; start from PaperChannel or fill
// every field. Validate reports any violated invariant.
type Channel = queueing.Config

// TransferMatrix is the chunk-to-chunk viewing-behaviour matrix P:
// P[i][j] is the probability a viewer who finished chunk i watches chunk j
// next, with row deficits meaning departure. Build one with Sequential,
// SequentialWithJumps, DecayingRetention, or PaperViewing.
type TransferMatrix = queueing.TransferMatrix

// Equilibrium is the solved steady state of one channel: per-chunk arrival
// rates λ_i, minimal server counts m_i, and upload capacities s_i = R·m_i.
type Equilibrium = queueing.Equilibrium

// PeerSupply is the outcome of the peer-supply analysis: expected replica
// counts E[ν_i], peer upload bandwidth Γ_i per chunk, and the cloud
// residual Δ_i = max(0, s_i − Γ_i).
type PeerSupply = p2p.Result

// ChunkDemand is one (channel, chunk) entry of the demand list the rental
// planners consume; Demand is in bytes/s.
type ChunkDemand = provision.ChunkDemand

// VMPlan is a budget-constrained VM rental: fractional allocations per
// cluster, hourly cost, and the utility objective of Eqn. (7).
type VMPlan = provision.VMPlan

// StoragePlan is a budget-constrained NFS rental: chunk placements,
// per-cluster footprints, and hourly cost (Sec. V-A1).
type StoragePlan = provision.StoragePlan

// VMCluster describes one rentable virtual cluster type (a Table II row).
type VMCluster = cloud.VMClusterSpec

// NFSCluster describes one rentable NFS cluster type (a Table III row).
type NFSCluster = cloud.NFSClusterSpec

// ErrInfeasible is wrapped by planner errors when demand cannot be met
// within the budget or catalog capacity; detect it with errors.Is.
var ErrInfeasible = provision.ErrInfeasible

// DefaultVMBandwidth is the paper's per-VM allocation R: 10 Mbps in
// bytes/s.
const DefaultVMBandwidth = cloud.DefaultVMBandwidth

// DefaultVMClusters returns the paper's Table II virtual-cluster catalog.
func DefaultVMClusters() []VMCluster { return cloud.DefaultVMClusters() }

// DefaultNFSClusters returns the paper's Table III NFS-cluster catalog.
func DefaultNFSClusters() []NFSCluster { return cloud.DefaultNFSClusters() }

// PaperChannel returns the channel parameters of the paper's evaluation:
// a 100-minute video in 20 chunks of 300 s, r = 50 KB/s (400 Kbps),
// R = 10 Mbps VMs, and 70% of arrivals starting at chunk 1.
func PaperChannel() Channel {
	return Channel{
		Chunks:          20,
		PlaybackRate:    50e3,
		ChunkSeconds:    300,
		VMBandwidth:     DefaultVMBandwidth,
		EntryFirstChunk: 0.7,
	}
}

// Sequential returns a transfer matrix for strictly in-order viewing:
// chunk i continues to i+1 with probability cont, otherwise the viewer
// departs.
func Sequential(chunks int, cont float64) (TransferMatrix, error) {
	return viewing.Sequential(chunks, cont)
}

// SequentialWithJumps returns the paper's viewing model: continue to the
// next chunk with probability cont·(1−jump), VCR-jump to a uniformly random
// other chunk with probability cont·jump, and depart otherwise.
func SequentialWithJumps(chunks int, cont, jump float64) (TransferMatrix, error) {
	return viewing.SequentialWithJumps(chunks, cont, jump)
}

// DecayingRetention returns a sequential matrix whose continuation
// probability decays geometrically along the video, modelling early
// session abandonment.
func DecayingRetention(chunks int, cont, decay float64) (TransferMatrix, error) {
	return viewing.DecayingRetention(chunks, cont, decay)
}

// PaperViewing returns the transfer matrix family used throughout the
// paper's experiments: sequential viewing with VCR jumps (15-minute mean
// jump interval over 5-minute chunks, 90% per-chunk retention).
func PaperViewing(chunks int) (TransferMatrix, error) {
	return viewing.PaperDefault(chunks)
}

// SolveEquilibrium solves the Jackson queueing network of Sec. IV-A/B for
// external channel arrival rate lambda (users/s): per-chunk traffic rates,
// then the smallest per-chunk server counts whose expected sojourn time
// meets the playback deadline T₀.
func SolveEquilibrium(ch Channel, p TransferMatrix, lambda float64) (Equilibrium, error) {
	return queueing.Solve(ch, p, lambda, 0)
}

// SolvePeerSupply runs the Sec. IV-C analysis on a solved equilibrium:
// expected chunk ownership via Proposition 1, then rarest-first peer upload
// allocation (Eqn. 5). peerUplink is the mean per-peer upload bandwidth u
// in bytes/s.
func SolvePeerSupply(eq Equilibrium, p TransferMatrix, peerUplink float64) (PeerSupply, error) {
	return p2p.Solve(p2p.Analysis{Equilibrium: eq, Transfer: p, PeerUpload: peerUplink})
}

// PlanVMs runs the VM-configuration heuristic of Sec. V-A2: chunk demands
// are filled from clusters in descending marginal-utility order under the
// hourly budget B_M. vmBandwidth is R in bytes/s.
func PlanVMs(demands []ChunkDemand, vmBandwidth float64, clusters []VMCluster, budgetPerHour float64) (VMPlan, error) {
	return provision.PlanVMs(demands, vmBandwidth, clusters, budgetPerHour)
}

// PlanStorage runs the storage-rental heuristic of Sec. V-A1: every chunk
// is placed on exactly one NFS cluster under the hourly budget B_S.
// chunkBytes is the uniform chunk size r·T₀.
func PlanStorage(demands []ChunkDemand, chunkBytes float64, clusters []NFSCluster, budgetPerHour float64) (StoragePlan, error) {
	return provision.PlanStorage(demands, chunkBytes, clusters, budgetPerHour)
}

// Demands flattens one channel's per-chunk cloud demand (bytes/s) into the
// list the planners consume, tagged with the given channel index.
func Demands(channel int, cloudDemand []float64) []ChunkDemand {
	out := make([]ChunkDemand, len(cloudDemand))
	for i, d := range cloudDemand {
		out[i] = ChunkDemand{Channel: channel, Chunk: i, Demand: d}
	}
	return out
}
