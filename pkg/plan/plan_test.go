package plan_test

import (
	"errors"
	"math"
	"testing"

	"cloudmedia/pkg/plan"
)

// solve runs the analytic pipeline on the paper channel at Λ = 0.25/s.
func solve(t *testing.T, uplink float64) (plan.Equilibrium, plan.PeerSupply) {
	t.Helper()
	ch := plan.PaperChannel()
	m, err := plan.PaperViewing(ch.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := plan.SolveEquilibrium(ch, m, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	supply, err := plan.SolvePeerSupply(eq, m, uplink)
	if err != nil {
		t.Fatal(err)
	}
	return eq, supply
}

func TestPipelineInvariants(t *testing.T) {
	eq, supply := solve(t, 34e3)
	if eq.TotalCapacity() <= 0 {
		t.Fatal("no capacity demanded")
	}
	for i := range supply.PeerSupply {
		if supply.PeerSupply[i] < 0 {
			t.Errorf("chunk %d: negative peer supply", i)
		}
		if supply.PeerSupply[i] > eq.Capacity[i]+1e-9 {
			t.Errorf("chunk %d: peer supply %v exceeds demand %v", i, supply.PeerSupply[i], eq.Capacity[i])
		}
		want := math.Max(0, eq.Capacity[i]-supply.PeerSupply[i])
		if math.Abs(supply.CloudDemand[i]-want) > 1e-6 {
			t.Errorf("chunk %d: residual %v, want %v", i, supply.CloudDemand[i], want)
		}
	}
	if supply.TotalPeerSupply() <= 0 {
		t.Error("peers contributed nothing at 270 Kbps mean uplink")
	}
}

func TestPlannersRespectBudgets(t *testing.T) {
	eq, supply := solve(t, 34e3)
	demands := plan.Demands(0, supply.CloudDemand)
	if len(demands) != eq.Config.Chunks {
		t.Fatalf("demands = %d, want %d", len(demands), eq.Config.Chunks)
	}

	vmPlan, err := plan.PlanVMs(demands, eq.Config.VMBandwidth, plan.DefaultVMClusters(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if vmPlan.CostPerHour > 100 {
		t.Errorf("VM cost %v exceeds budget", vmPlan.CostPerHour)
	}

	storagePlan, err := plan.PlanStorage(demands, eq.Config.ChunkBytes(), plan.DefaultNFSClusters(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(storagePlan.Placements); got != eq.Config.Chunks {
		t.Errorf("placements = %d, want every chunk stored once", got)
	}
	if storagePlan.CostPerHour > 1 {
		t.Errorf("storage cost %v exceeds budget", storagePlan.CostPerHour)
	}
}

func TestInfeasibleBudgetIsDetectable(t *testing.T) {
	eq, supply := solve(t, 0)
	_, err := plan.PlanVMs(plan.Demands(0, supply.CloudDemand), eq.Config.VMBandwidth, plan.DefaultVMClusters(), 0.01)
	if !errors.Is(err, plan.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestViewingBuilders(t *testing.T) {
	for name, build := range map[string]func() (plan.TransferMatrix, error){
		"sequential": func() (plan.TransferMatrix, error) { return plan.Sequential(10, 0.9) },
		"jumps":      func() (plan.TransferMatrix, error) { return plan.SequentialWithJumps(10, 0.9, 0.3) },
		"decaying":   func() (plan.TransferMatrix, error) { return plan.DecayingRetention(10, 0.9, 0.95) },
		"paper":      func() (plan.TransferMatrix, error) { return plan.PaperViewing(10) },
	} {
		m, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: invalid matrix: %v", name, err)
		}
		if m.Size() != 10 {
			t.Errorf("%s: size %d", name, m.Size())
		}
	}
}
