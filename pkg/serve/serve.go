// Package serve runs a simulation scenario as a live, wall-clock-paced
// service: the same engines and control loop as a batch simulate.Run,
// held back at every control barrier by a pacing clock, observed through
// a rolling metric store, and exposed over HTTP (/metrics in the
// Prometheus text format with a live cost ticker, /healthz, /state).
//
// Because the pacing hook only delays the engines — it never changes
// what they compute — a paced run's interval records are identical to
// the same scenario's batch Run, at any time scale. Under the simulated
// clock the run IS the batch run plus observability, which is how the
// tests pin that guarantee.
//
//	sc, _ := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
//		cloudmedia.WithHours(24),
//		cloudmedia.WithTimeScale(24),       // replay the day in an hour
//		cloudmedia.WithMetricsAddr(":9090"),
//	)
//	report, err := serve.Run(ctx, sc)
//
// Cancel the context (the CLI wires SIGINT) for a graceful drain: the
// run stops at the next control barrier, the HTTP endpoint shuts down
// cleanly, and the returned report covers the time actually served.
package serve

import (
	"context"
	"net"
	"time"

	iserve "cloudmedia/internal/serve"
	"cloudmedia/pkg/simulate"
)

// LiveSource is the streaming arrival ingress: a workload source fed
// incrementally — by Ingest calls or by the trace-CSV line protocol via
// Feed — while the run is in flight. Wire one into a scenario with
// cloudmedia.WithWorkloadSource.
type LiveSource = iserve.LiveSource

// NewLiveSource builds an empty live source for the given channel count.
// maxRate is the per-channel ceiling used as the arrival-thinning
// envelope; ingested rates above it are clamped.
func NewLiveSource(channels int, maxRate float64) (*LiveSource, error) {
	return iserve.NewLiveSource(channels, maxRate)
}

// State is the /state JSON document: the latest value of everything the
// metric store tracks.
type State = iserve.State

// Bin is one aggregated timeline entry of the rolling metric store.
type Bin = iserve.Bin

// Report is a finished live run: the batch report plus the pacing
// outcome and the aggregated timeline.
type Report struct {
	*simulate.Report
	// RealSeconds is the wall-clock duration of the paced run.
	RealSeconds float64
	// AchievedTimeScale is simulated/real seconds actually realized —
	// close to the configured scale when the engines kept up, lower when
	// an interval's compute outran its real-time allowance.
	AchievedTimeScale float64
	// Timeline is the run's aggregated metric history (full run coverage
	// at fixed resolution, independent of the raw retention window).
	Timeline []Bin
	// Addr is the observability endpoint's listen address, empty when no
	// endpoint was configured.
	Addr string
}

// Option configures one Run call.
type Option func(*options)

type options struct {
	listener net.Listener
	runOpts  []simulate.RunOption
}

// WithListener serves the observability endpoint on an existing listener
// instead of the scenario's MetricsAddr — tests pass a ":0" listener and
// read the port back from Report.Addr.
func WithListener(ln net.Listener) Option {
	return func(o *options) { o.listener = ln }
}

// WithRunOptions forwards extra options to the underlying scenario Run —
// additional OnInterval/OnSnapshot observers, KeepHistory, OnArrivals.
// They are applied after the serve instrumentation, so a WithPacer here
// would replace the pacing clock; don't pass one.
func WithRunOptions(opts ...simulate.RunOption) Option {
	return func(o *options) { o.runOpts = append(o.runOpts, opts...) }
}

// Run executes the scenario paced against its configured clock
// (Scenario.Serve; unset defaults to the real clock at time scale 1) and
// serves live metrics while it is in flight. The context governs the
// whole run: cancellation drains gracefully and returns the partial
// report with the context's error, exactly like simulate.Run.
func Run(ctx context.Context, sc simulate.Scenario, opts ...Option) (*Report, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	mode := sc.Serve.Clock
	if mode == 0 {
		mode = simulate.ClockReal
	}
	timeScale := sc.Serve.TimeScale
	if timeScale == 0 {
		timeScale = 1
	}
	clock, err := iserve.NewClock(mode, timeScale)
	if err != nil {
		return nil, err
	}

	metrics := iserve.NewMetrics()
	rolling, err := iserve.NewRolling(0, sc.SampleSeconds)
	if err != nil {
		return nil, err
	}

	// Time every policy Plan call; nil means the controller would default
	// to Greedy, so pin that before wrapping.
	if sc.Policy == nil {
		sc.Policy = simulate.Greedy{}
	}
	sc.Policy = iserve.TimedPolicy(sc.Policy, metrics.ObservePlanLatency)

	var srv *iserve.HTTPServer
	switch {
	case o.listener != nil:
		srv = iserve.NewHTTPServer(o.listener, iserve.NewHandler(metrics, rolling))
	case sc.Serve.MetricsAddr != "":
		srv, err = iserve.ListenHTTP(sc.Serve.MetricsAddr, iserve.NewHandler(metrics, rolling))
		if err != nil {
			return nil, err
		}
	}
	addr := ""
	if srv != nil {
		srv.Start()
		addr = srv.Addr()
	}

	interval := sc.IntervalSeconds
	if interval == 0 {
		interval = 3600
	}
	vmBandwidth := sc.Channel.VMBandwidth

	// Both callbacks run on the simulation goroutine, so the cumulative
	// trackers below need no locking; the metric store does its own.
	var cumCost, lastDemand float64
	onInterval := func(rec simulate.IntervalRecord) {
		var storageGB float64
		for _, gb := range rec.StoragePlan.GBPerCluster {
			storageGB += gb
		}
		metrics.ObserveInterval(iserve.IntervalUpdate{
			Time:             rec.Time,
			IntervalSeconds:  interval,
			ArrivalRates:     rec.ArrivalRates,
			DemandPerChannel: rec.DemandPerChannel,
			TotalDemand:      rec.TotalDemand,
			TotalPeerSupply:  rec.TotalPeerSupply,
			VMs:              rec.VMPlan.RentalVMs(),
			CapacityPerChunk: rec.VMPlan.CapacityPerChunk(vmBandwidth),
			StorageGB:        storageGB,
			DemandScale:      rec.DemandScale,
			PlanErr:          rec.PlanErr != "",
			StorageErr:       rec.StorageErr != "",
			Cost:             rec.Cost,
		})
		cumCost += rec.Cost.TotalUSD()
		lastDemand = rec.TotalDemand
	}
	onSnapshot := func(s simulate.Snapshot) {
		metrics.ObserveSnapshot(iserve.SnapshotUpdate{
			Time:              s.Time,
			Quality:           s.Quality,
			PerChannelQuality: s.PerChannelQuality,
			Users:             s.Users,
			PerChannelUsers:   s.PerChannelUsers,
			ReservedMbps:      s.ReservedMbps,
			CloudServedGB:     s.CloudServedGB,
		})
		rolling.Add(iserve.Point{
			Sim:          s.Time,
			Real:         clock.RealElapsed(),
			Viewers:      s.Users,
			Quality:      s.Quality,
			DemandBps:    lastDemand,
			ReservedMbps: s.ReservedMbps,
			CostUSD:      cumCost,
		})
	}

	clock.Start()
	pacer := func(simNow float64) {
		// A cancelled wait falls through: the engine then advances to its
		// next context check in the Run loop and exits there, so the drain
		// stays on the batch path.
		_ = clock.WaitUntil(ctx, simNow)
		metrics.ObserveClock(simNow, clock.RealElapsed(), timeScale)
	}

	runOpts := append([]simulate.RunOption{
		simulate.WithPacer(pacer),
		simulate.OnInterval(onInterval),
		simulate.OnSnapshot(onSnapshot),
	}, o.runOpts...)
	rep, runErr := sc.Run(ctx, runOpts...)

	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	if rep == nil {
		return nil, runErr
	}

	out := &Report{
		Report:      rep,
		RealSeconds: clock.RealElapsed(),
		Timeline:    rolling.Timeline(),
		Addr:        addr,
	}
	if out.RealSeconds > 0 {
		out.AchievedTimeScale = rep.Hours * 3600 / out.RealSeconds
	}
	return out, runErr
}
