package serve_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudmedia/pkg/serve"
	"cloudmedia/pkg/simulate"
)

func testScenario(t *testing.T, fidelity simulate.Fidelity) simulate.Scenario {
	t.Helper()
	sc := simulate.Default(simulate.CloudAssisted, 1)
	sc.Hours = 3
	sc.Fidelity = fidelity
	sc.Serve.Clock = simulate.ClockSimulated
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// The pacing guarantee: a paced run's interval records are identical to
// the same scenario's batch Run, on both engines, because the pacer only
// delays the engines. Run under the simulated clock so the test is fast
// and deterministic.
func TestServeMatchesBatchRun(t *testing.T) {
	for _, tc := range []struct {
		name     string
		fidelity simulate.Fidelity
	}{
		{"event", simulate.FidelityEvent},
		{"fluid", simulate.FidelityFluid},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := testScenario(t, tc.fidelity)
			batch, err := sc.Run(context.Background(), simulate.KeepHistory())
			if err != nil {
				t.Fatal(err)
			}
			live, err := serve.Run(context.Background(), sc,
				serve.WithRunOptions(simulate.KeepHistory()))
			if err != nil {
				t.Fatal(err)
			}
			if len(live.Records) == 0 {
				t.Fatal("live run produced no interval records")
			}
			if !reflect.DeepEqual(batch.Records, live.Records) {
				t.Fatal("paced interval records differ from batch Run")
			}
			if !reflect.DeepEqual(batch.Snapshots, live.Snapshots) {
				t.Fatal("paced snapshots differ from batch Run")
			}
			if batch.Bill != live.Bill {
				t.Fatalf("bills differ: batch %+v, live %+v", batch.Bill, live.Bill)
			}
			if live.AchievedTimeScale <= 0 {
				t.Fatalf("AchievedTimeScale = %v", live.AchievedTimeScale)
			}
			if len(live.Timeline) == 0 {
				t.Fatal("no aggregated timeline")
			}
		})
	}
}

// The same identity must hold under a real clock at high compression:
// the scale changes only the wall-clock schedule, never the decisions.
func TestServeRealClockSameDecisions(t *testing.T) {
	sc := testScenario(t, simulate.FidelityFluid)
	batch, err := sc.Run(context.Background(), simulate.KeepHistory())
	if err != nil {
		t.Fatal(err)
	}
	sc.Serve.Clock = simulate.ClockReal
	sc.Serve.TimeScale = 100000 // 3 sim-hours ≈ 108ms of pacing
	live, err := serve.Run(context.Background(), sc,
		serve.WithRunOptions(simulate.KeepHistory()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Records, live.Records) {
		t.Fatal("real-clock interval records differ from batch Run")
	}
	if live.RealSeconds <= 0 {
		t.Fatalf("RealSeconds = %v", live.RealSeconds)
	}
}

// The observability endpoint serves /metrics, /healthz, and /state while
// the run is in flight, and goes away after the run drains.
func TestServeHTTPDuringRun(t *testing.T) {
	sc := testScenario(t, simulate.FidelityFluid)
	sc.Hours = 6
	sc.Serve.Clock = simulate.ClockReal
	sc.Serve.TimeScale = 50000

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	type outcome struct {
		rep *serve.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := serve.Run(context.Background(), sc, serve.WithListener(ln))
		done <- outcome{rep, err}
	}()

	// Poll until the endpoint answers, then check all three routes.
	var metricsBody string
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == 200 {
				metricsBody = string(body)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics endpoint never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{"cloudmedia_up 1", "cloudmedia_time_scale 50000", "cloudmedia_cost_usd_total"} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.rep.Addr != addr {
		t.Fatalf("report Addr = %q, want %q", out.rep.Addr, addr)
	}
	if out.rep.Intervals == 0 {
		t.Fatal("no provisioning rounds ran")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint still up after the run drained")
	}
}

// Cancellation mid-run drains gracefully: partial report, context error,
// HTTP endpoint shut down. Exercised with concurrent scrapes so the
// race detector covers start/scrape/ingest/shutdown overlap.
func TestServeCancelDrains(t *testing.T) {
	sc := testScenario(t, simulate.FidelityFluid)
	sc.Hours = 1000 // far more than the test will allow to run
	sc.Serve.Clock = simulate.ClockReal
	sc.Serve.TimeScale = 20000

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())

	// A live feed running alongside the scrapes while the run is paced.
	feed, err := serve.NewLiveSource(3, 100)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		rep *serve.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := serve.Run(ctx, sc, serve.WithListener(ln))
		done <- outcome{rep, err}
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = feed.Ingest(float64(i), []float64{1, 2, 3})
		}
	}()

	time.Sleep(100 * time.Millisecond)
	cancel()
	out := <-done
	close(stop)
	wg.Wait()

	if out.err != context.Canceled {
		t.Fatalf("cancelled run error = %v, want context.Canceled", out.err)
	}
	if out.rep == nil {
		t.Fatal("cancelled run returned no report")
	}
	if out.rep.Hours >= sc.Hours {
		t.Fatalf("cancelled run claims %v h of %v h", out.rep.Hours, sc.Hours)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint still up after cancellation")
	}
}

// A live source wired as the scenario's demand seam drives a paced run
// end to end: the engines read whatever has been ingested so far.
func TestServeWithLiveSource(t *testing.T) {
	feed, err := serve.NewLiveSource(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load a flat demand profile covering the run.
	if err := feed.Ingest(0, []float64{0.3, 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := feed.Ingest(4*3600, []float64{0.3, 0.1}); err != nil {
		t.Fatal(err)
	}
	sc := simulate.Default(simulate.CloudAssisted, 1)
	sc.Hours = 2
	sc.Fidelity = simulate.FidelityFluid
	sc.Source = feed
	sc.Serve.Clock = simulate.ClockSimulated
	rep, err := serve.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intervals == 0 {
		t.Fatal("no provisioning rounds")
	}
	if rep.FinalUsers == 0 {
		t.Fatal("live-fed run attracted no viewers")
	}
}

// Serve-block validation surfaces through Run.
func TestServeValidation(t *testing.T) {
	sc := testScenario(t, simulate.FidelityFluid)
	sc.Serve.Clock = simulate.ClockMode(99)
	if _, err := serve.Run(context.Background(), sc); err == nil {
		t.Fatal("invalid clock mode accepted")
	}
	sc = testScenario(t, simulate.FidelityFluid)
	sc.Serve.TimeScale = -2
	if _, err := serve.Run(context.Background(), sc); err == nil {
		t.Fatal("negative time scale accepted")
	}
}
