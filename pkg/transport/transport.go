// Package transport is the public facade of the CloudMedia data plane of
// Sec. V-B over real TCP: VM chunk servers that verify tracker tickets
// before streaming, public entry points that port-forward to them, and the
// client-side chunk fetch.
package transport

import (
	"cloudmedia/internal/transport"
)

// ChunkStore serves chunk payloads to a VM server.
type ChunkStore = transport.ChunkStore

// SyntheticStore is a ChunkStore generating deterministic payloads — handy
// for demos and tests.
type SyntheticStore = transport.SyntheticStore

// TicketVerifier validates a tracker-issued ticket before a chunk is
// served; wire it to tracker.VerifyTicket with the shared secret.
type TicketVerifier = transport.TicketVerifier

// VMServer is one VM chunk server listening on TCP.
type VMServer = transport.VMServer

// EntryPoint is a public TCP forwarder in front of a set of VM servers.
type EntryPoint = transport.EntryPoint

// NewVMServer starts a chunk server on addr (use "127.0.0.1:0" for an
// ephemeral port) backed by the store, refusing requests whose ticket
// fails verify.
func NewVMServer(addr string, store ChunkStore, verify TicketVerifier) (*VMServer, error) {
	return transport.NewVMServer(addr, store, verify)
}

// NewEntryPoint starts a forwarder on addr that round-robins connections
// across the target VM server addresses.
func NewEntryPoint(addr string, targets []string) (*EntryPoint, error) {
	return transport.NewEntryPoint(addr, targets)
}

// FetchChunk retrieves one chunk through an entry point (or directly from
// a VM server), presenting the tracker-issued ticket.
func FetchChunk(addr string, channel, chunk int, peer uint64, expiry uint64, ticket string) ([]byte, error) {
	return transport.FetchChunk(addr, channel, chunk, peer, expiry, ticket)
}
