// Package tracker is the public facade of the CloudMedia control plane of
// Sec. V-B: the per-channel index that peers join, announce chunk
// ownership to, and query for suppliers. When no peer holds a requested
// chunk, Lookup answers with the paper's 3-tuple ⟨entry-point address,
// ports, ticket⟩ — an HMAC-signed grant that lets the peer fetch the chunk
// through a cloud entry point (see pkg/transport).
package tracker

import (
	"cloudmedia/internal/tracker"
)

// PeerID identifies one peer.
type PeerID = tracker.PeerID

// EntryPoint is a public cloud entry-point address the tracker can direct
// peers to.
type EntryPoint = tracker.EntryPoint

// CloudGrant is the tracker's answer when the overlay cannot supply a
// chunk: the entry point to contact plus a signed, expiring ticket.
type CloudGrant = tracker.CloudGrant

// Tracker indexes one channel set's peers and chunk ownership.
type Tracker = tracker.Tracker

// New creates a tracker for channels of the given chunk count, the cloud
// entry points it may hand out, and the HMAC secret it signs tickets with.
func New(chunks int, entries []EntryPoint, secret []byte) (*Tracker, error) {
	return tracker.New(chunks, entries, secret)
}

// VerifyTicket checks a ticket's HMAC signature and expiry against the
// shared secret — the check a VM chunk server performs before streaming.
func VerifyTicket(secret []byte, ticket string, channel, chunk int, requester PeerID, now uint64) error {
	return tracker.VerifyTicket(secret, ticket, channel, chunk, requester, now)
}
