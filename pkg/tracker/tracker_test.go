package tracker_test

import (
	"bytes"
	"testing"

	"cloudmedia/pkg/tracker"
	"cloudmedia/pkg/transport"
)

// TestCloudEntryRoundTrip drives the public control/data plane end to end:
// tracker lookup → cloud grant → ticketed fetch through the entry point.
func TestCloudEntryRoundTrip(t *testing.T) {
	secret := []byte("test-secret")
	store := transport.SyntheticStore{Channels: 2, Chunks: 4, ChunkSize: 1 << 10}

	verify := func(ticket string, channel, chunk int, peer uint64, expiry uint64) error {
		return tracker.VerifyTicket(secret, ticket, channel, chunk, tracker.PeerID(peer), expiry-1)
	}
	vm, err := transport.NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	entry, err := transport.NewEntryPoint("127.0.0.1:0", []string{vm.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	tr, err := tracker.New(4, []tracker.EntryPoint{{Addr: entry.Addr()}}, secret)
	if err != nil {
		t.Fatal(err)
	}
	const peer = tracker.PeerID(1)
	tr.Join(1, peer)
	peers, grant, err := tr.Lookup(1, 2, peer, 1, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 0 || grant == nil {
		t.Fatalf("lookup on empty overlay: peers=%d grant=%v, want cloud grant", len(peers), grant)
	}

	data, err := transport.FetchChunk(grant.Entry.Addr, 1, 2, uint64(peer), 1000, grant.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.ChunkData(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("fetched chunk differs from store contents")
	}

	// The ticket is bound to (channel, chunk): reuse elsewhere is refused.
	if _, err := transport.FetchChunk(grant.Entry.Addr, 1, 3, uint64(peer), 1000, grant.Ticket); err == nil {
		t.Error("forged ticket accepted")
	}

	// After an announce the overlay supplies the chunk itself.
	if err := tr.Announce(1, peer, 2); err != nil {
		t.Fatal(err)
	}
	tr.Join(1, 2)
	peers, grant, err = tr.Lookup(1, 2, 2, 1, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || grant != nil {
		t.Errorf("post-announce lookup: peers=%d grant=%v, want 1 peer and no grant", len(peers), grant)
	}
}
