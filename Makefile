# Developer entry points; CI runs the same targets.

.PHONY: test race bench verify

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Key benchmarks → BENCH_PR4.json (the cross-PR perf trajectory;
# BENCH_PR3.json is the committed previous baseline).
bench:
	./scripts/bench.sh BENCH_PR4.json

verify: test race
