# Developer entry points; CI runs the same targets.

.PHONY: test race bench verify

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Key benchmarks → BENCH_PR3.json (the cross-PR perf trajectory).
bench:
	./scripts/bench.sh BENCH_PR3.json

verify: test race
