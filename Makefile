# Developer entry points; CI runs the same targets.

.PHONY: test race bench lint verify profile

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Key benchmarks → BENCH_PR10.json (the cross-PR perf trajectory;
# BENCH_PR9.json is the committed previous baseline), then the gate:
# fail on >20% ns/op regression against the baseline. Benchmarks new in
# this snapshot (no baseline entry) are reported one-sided, never failed.
bench:
	./scripts/bench.sh BENCH_PR10.json
	go run ./scripts/benchgate BENCH_PR9.json BENCH_PR10.json

# Profile the 10M-viewer fluid day under pprof: cpu.pprof and mem.pprof
# land in the repo root; inspect with `go tool pprof cpu.pprof`.
profile:
	go test -run '^$$' -bench 'BenchmarkFluid10MViewers/pool' -benchtime 1x \
	    -cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "wrote cpu.pprof and mem.pprof; open with: go tool pprof cpu.pprof"

# The project's own analyzers (determinism, boundary, noloss, hotpath)
# over the whole module. Suppress a finding only with a justified
# //cloudmedia:allow <analyzer> -- <reason> directive; see DESIGN.md.
lint:
	go build ./...
	go run ./cmd/cloudmedialint ./...

verify: test race lint
