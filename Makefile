# Developer entry points; CI runs the same targets.

.PHONY: test race bench lint verify

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Key benchmarks → BENCH_PR6.json (the cross-PR perf trajectory;
# BENCH_PR4.json is the committed previous baseline), then the gate:
# fail on >20% ns/op regression against the baseline.
bench:
	./scripts/bench.sh BENCH_PR6.json
	go run ./scripts/benchgate BENCH_PR4.json BENCH_PR6.json

# The project's own analyzers (determinism, boundary, noloss, hotpath)
# over the whole module. Suppress a finding only with a justified
# //cloudmedia:allow <analyzer> -- <reason> directive; see DESIGN.md.
lint:
	go build ./...
	go run ./cmd/cloudmedialint ./...

verify: test race lint
