package cloudmedia

import (
	"cloudmedia/pkg/simulate"
)

// Mode selects the VoD architecture a Scenario simulates; see the
// simulate.Mode constants re-exported below.
type Mode = simulate.Mode

// The three architectures of the paper's evaluation: pure client-server
// streaming, the P2P mesh with a static bootstrap rental, and CloudMedia's
// dynamically provisioned cloud-assisted P2P.
const (
	ClientServer  = simulate.ClientServer
	P2P           = simulate.P2P
	CloudAssisted = simulate.CloudAssisted
)

// Scenario is a fully assembled simulation configuration; run it with its
// context-aware Run or Stream methods. See pkg/simulate for the field and
// streaming documentation.
type Scenario = simulate.Scenario

// IntervalRecord is one provisioning round of a running scenario.
type IntervalRecord = simulate.IntervalRecord

// Report summarizes a finished scenario run.
type Report = simulate.Report

// NewScenario builds a simulation scenario from the paper's reduced-scale
// defaults (simulate.Default) overridden by the given options:
//
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
//		cloudmedia.WithHours(12),
//		cloudmedia.WithScale(2),
//	)
//	report, err := sc.Run(ctx)
//
// Channel-shape, budget, and catalog options apply here exactly as they do
// to NewPipeline; workload and timing options (WithHours, WithSeed,
// WithScale, WithChannels, WithPredictor, …) are scenario-specific.
func NewScenario(mode Mode, opts ...Option) (Scenario, error) {
	s, err := apply(opts)
	if err != nil {
		return Scenario{}, err
	}
	scale := 1.0
	if s.scale != nil {
		scale = *s.scale
	}
	sc := simulate.Default(mode, scale)
	sc.Channel = s.channel(sc.Channel)
	if s.workload != nil {
		sc.Workload = *s.workload
	}
	if s.channels != nil {
		sc.Workload.Channels = *s.channels
	}
	if s.hours != nil {
		sc.Hours = *s.hours
	}
	if s.seed != nil {
		sc.Seed = *s.seed
	}
	if s.interval != nil {
		sc.IntervalSeconds = *s.interval
	}
	if s.sample != nil {
		sc.SampleSeconds = *s.sample
	}
	if s.uplinkRatio != nil {
		sc.UplinkRatio = *s.uplinkRatio
	}
	if s.budgets != nil {
		sc.VMBudget, sc.StorageBudget = s.budgets[0], s.budgets[1]
	}
	if s.vmClusters != nil {
		sc.VMClusters = s.vmClusters
	}
	if s.nfsClusters != nil {
		sc.NFSClusters = s.nfsClusters
	}
	if s.predictor != nil {
		sc.Predictor = s.predictor
	}
	if s.scheduling != 0 {
		sc.Scheduling = s.scheduling
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
