package cloudmedia

import (
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

// Mode selects the VoD architecture a Scenario simulates; see the
// simulate.Mode constants re-exported below.
type Mode = simulate.Mode

// The three architectures of the paper's evaluation: pure client-server
// streaming, the P2P mesh with a static bootstrap rental, and CloudMedia's
// dynamically provisioned cloud-assisted P2P.
const (
	ClientServer  = simulate.ClientServer
	P2P           = simulate.P2P
	CloudAssisted = simulate.CloudAssisted
)

// Fidelity selects the simulation engine behind a Scenario; see the
// simulate.Fidelity constants re-exported below and DESIGN.md "Engine
// fidelities".
type Fidelity = simulate.Fidelity

// The two engine fidelities: the per-viewer discrete-event simulator (the
// default and the accuracy reference) and the aggregate fluid-cohort
// integrator for million-viewer runs.
const (
	FidelityEvent = simulate.FidelityEvent
	FidelityFluid = simulate.FidelityFluid
)

// ClockMode selects how a live serving run (pkg/serve) paces simulated
// time against real time; see the simulate.ClockMode constants
// re-exported below and DESIGN.md "Real-time serving".
type ClockMode = simulate.ClockMode

// The two pacing modes: against the wall clock under a time-compression
// factor (the serve daemon's default), or at full engine speed exactly
// like a batch Run (deterministic, for tests).
const (
	ClockReal      = simulate.ClockReal
	ClockSimulated = simulate.ClockSimulated
)

// Policy is the provisioning-policy seam: how predicted demand becomes a
// rental plan each interval. Pass one to WithPolicy; see the re-exported
// implementations below and DESIGN.md "Provisioning policies".
type Policy = simulate.Policy

// The four provisioning policies: the paper's greedy heuristic (the
// default), lookahead with tear-down hysteresis, the perfect-prediction
// oracle bound, and the fixed peak rental baseline.
type (
	Greedy     = simulate.Greedy
	Lookahead  = simulate.Lookahead
	Oracle     = simulate.Oracle
	StaticPeak = simulate.StaticPeak
)

// PricingPlan describes how rented resources turn into dollars; pass one
// to WithPricing. The zero value is pure on-demand billing.
type PricingPlan = simulate.PricingPlan

// OnDemandPricing returns the paper's literal pay-as-you-go pricing.
func OnDemandPricing() PricingPlan { return simulate.OnDemandPricing() }

// ReservedPricing returns a reservation-heavy plan: a committed fraction
// of every VM cluster at a discounted rate plus an upfront fee per term.
func ReservedPricing() PricingPlan { return simulate.ReservedPricing() }

// SpotPricing returns a spot-heavy plan: deeply discounted elastic
// capacity that the provider may mass-preempt (pass to WithPricing, or
// use WithSpotPricing).
func SpotPricing() PricingPlan { return simulate.SpotPricing() }

// FaultSchedule is a declarative failure plan — region outages, spot
// mass-preemptions, capacity degradations — injected into a run with
// WithFaults. See pkg/simulate for the event types and presets.
type FaultSchedule = simulate.FaultSchedule

// Source is the pluggable demand seam: per-channel arrival intensity
// over time. Pass one to WithWorkloadSource — most usefully a *Trace —
// and the engines, the bootstrap, and the oracle policies all follow it.
type Source = simulate.Source

// Trace is a per-channel arrival-intensity series (pkg/trace): recorded
// from a run, parsed from CSV/JSON, or synthesized. Pass one to
// WithTrace.
type Trace = trace.Trace

// Scenario is a fully assembled simulation configuration; run it with its
// context-aware Run or Stream methods. See pkg/simulate for the field and
// streaming documentation.
type Scenario = simulate.Scenario

// IntervalRecord is one provisioning round of a running scenario.
type IntervalRecord = simulate.IntervalRecord

// Report summarizes a finished scenario run.
type Report = simulate.Report

// NewScenario builds a simulation scenario from the paper's reduced-scale
// defaults (simulate.Default) overridden by the given options:
//
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
//		cloudmedia.WithHours(12),
//		cloudmedia.WithScale(2),
//	)
//	report, err := sc.Run(ctx)
//
// Channel-shape, budget, and catalog options apply here exactly as they do
// to NewPipeline; workload and timing options (WithHours, WithSeed,
// WithScale, WithChannels, WithPredictor, …) are scenario-specific.
//
// NewScenario is sugar for simulate.Default(mode, 1).With(opts...) plus
// validation; derive further variants from the result with Scenario.With.
func NewScenario(mode Mode, opts ...Option) (Scenario, error) {
	sc := simulate.Default(mode, 1).With(opts...)
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
