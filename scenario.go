package cloudmedia

import (
	"cloudmedia/pkg/simulate"
)

// Mode selects the VoD architecture a Scenario simulates; see the
// simulate.Mode constants re-exported below.
type Mode = simulate.Mode

// The three architectures of the paper's evaluation: pure client-server
// streaming, the P2P mesh with a static bootstrap rental, and CloudMedia's
// dynamically provisioned cloud-assisted P2P.
const (
	ClientServer  = simulate.ClientServer
	P2P           = simulate.P2P
	CloudAssisted = simulate.CloudAssisted
)

// Fidelity selects the simulation engine behind a Scenario; see the
// simulate.Fidelity constants re-exported below and DESIGN.md "Engine
// fidelities".
type Fidelity = simulate.Fidelity

// The two engine fidelities: the per-viewer discrete-event simulator (the
// default and the accuracy reference) and the aggregate fluid-cohort
// integrator for million-viewer runs.
const (
	FidelityEvent = simulate.FidelityEvent
	FidelityFluid = simulate.FidelityFluid
)

// Scenario is a fully assembled simulation configuration; run it with its
// context-aware Run or Stream methods. See pkg/simulate for the field and
// streaming documentation.
type Scenario = simulate.Scenario

// IntervalRecord is one provisioning round of a running scenario.
type IntervalRecord = simulate.IntervalRecord

// Report summarizes a finished scenario run.
type Report = simulate.Report

// NewScenario builds a simulation scenario from the paper's reduced-scale
// defaults (simulate.Default) overridden by the given options:
//
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
//		cloudmedia.WithHours(12),
//		cloudmedia.WithScale(2),
//	)
//	report, err := sc.Run(ctx)
//
// Channel-shape, budget, and catalog options apply here exactly as they do
// to NewPipeline; workload and timing options (WithHours, WithSeed,
// WithScale, WithChannels, WithPredictor, …) are scenario-specific.
//
// NewScenario is sugar for simulate.Default(mode, 1).With(opts...) plus
// validation; derive further variants from the result with Scenario.With.
func NewScenario(mode Mode, opts ...Option) (Scenario, error) {
	sc := simulate.Default(mode, 1).With(opts...)
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
