// Package cloudmedia is a from-scratch Go reproduction of "CloudMedia:
// When Cloud on Demand Meets Video on Demand" (Wu, Wu, Li, Qiu, Lau —
// ICDCS 2011).
//
// The implementation lives under internal/: the Jackson queueing analysis
// (internal/queueing), the P2P peer-supply analysis (internal/p2p), the
// rental heuristics (internal/provision), the IaaS cloud simulator
// (internal/cloud), the workload trace generator (internal/workload), the
// discrete-event streaming simulator (internal/sim), and the dynamic
// provisioning controller that is the paper's primary contribution
// (internal/core). The experiment harness (internal/experiments) and the
// cloudmedia CLI (cmd/cloudmedia) regenerate every table and figure of the
// paper's evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package cloudmedia
