// Package cloudmedia is a from-scratch Go reproduction of "CloudMedia:
// When Cloud on Demand Meets Video on Demand" (Wu, Wu, Li, Qiu, Lau —
// ICDCS 2011), packaged as an importable SDK.
//
// The root package is the facade. Pipeline runs the paper's one-shot
// analysis — Jackson queueing equilibrium → P2P peer supply →
// budget-constrained VM and storage rental — configured with functional
// options:
//
//	p, err := cloudmedia.NewPipeline(
//		cloudmedia.WithChunks(20),
//		cloudmedia.WithArrivalRate(0.25),
//		cloudmedia.WithPeerUplink(34e3),
//	)
//	res, err := p.Run(ctx)
//
// NewScenario assembles the full discrete-event system — workload trace,
// streaming simulator, measurement tracker, dynamic provisioning
// controller, IaaS cloud — whose context-aware Run streams provisioning
// rounds as they happen instead of accumulating them:
//
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted, cloudmedia.WithHours(12))
//	report, err := sc.Run(ctx)
//
// Scenarios are derivable: With re-applies any options to an independent
// deep copy, which is what pkg/sweep builds on to run whole scenario
// families — mode × budget grids, uplink sweeps — concurrently:
//
//	cheap := sc.With(cloudmedia.WithBudgets(50, 1))
//
// Demand is pluggable: WithTrace (or WithWorkloadSource) replaces the
// paper's parametric workload with a recorded or synthesized arrival
// trace from pkg/trace, and simulate.OnArrivals records any run back
// into a replayable one:
//
//	tr, err := trace.ReadFile("day.csv")
//	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted, cloudmedia.WithTrace(tr))
//
// The public subpackages expose the layers individually: pkg/plan the
// analytic building blocks, pkg/simulate the simulation engine and
// streaming API, pkg/trace demand traces (codec, generators, recorder),
// pkg/sweep the concurrent parameter-sweep harness, pkg/paper the
// table/figure reproduction registry behind cmd/cloudmedia, and
// pkg/tracker plus pkg/transport the Sec. V-B control/data plane over
// real TCP. The implementation lives under
// internal/ (queueing, p2p, provision, cloud, workload, sim, core,
// experiments) so it can be refactored without breaking importers. See
// README.md, DESIGN.md, and EXPERIMENTS.md.
package cloudmedia
