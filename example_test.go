package cloudmedia_test

import (
	"context"
	"fmt"
	"log"

	"cloudmedia"
	"cloudmedia/pkg/simulate"
)

// The quickstart: one channel with the paper's parameters, 900 arrivals
// per hour, peers uploading ~270 Kbps — equilibrium, peer supply, and the
// rental plan in one call.
func ExamplePipeline_Run() {
	p, err := cloudmedia.NewPipeline(
		cloudmedia.WithArrivalRate(900.0/3600),
		cloudmedia.WithPeerUplink(34e3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity: %.1f Mbps\n", res.TotalCapacity()*8/1e6)
	fmt.Printf("peer supply: %.1f Mbps\n", res.TotalPeerSupply()*8/1e6)
	fmt.Printf("cloud residual: %.1f Mbps\n", res.TotalCloudDemand()*8/1e6)
	fmt.Printf("VM rental: %v at $%.2f/hour\n", res.VMPlan.RentalVMs(), res.VMPlan.CostPerHour)
	// Output:
	// capacity: 410.0 Mbps
	// peer supply: 118.7 Mbps
	// cloud residual: 291.3 Mbps
	// VM rental: map[standard:30] at $13.11/hour
}

// A multi-channel analysis: three channels with Zipf-skewed arrival rates
// planned against one shared budget.
func ExampleNewPipeline() {
	p, err := cloudmedia.NewPipeline(
		cloudmedia.WithChunks(8),
		cloudmedia.WithChunkSeconds(75),
		cloudmedia.WithArrivalRate(0.3, 0.15, 0.1),
		cloudmedia.WithBudgets(100, 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channels analyzed: %d\n", len(res.Channels))
	fmt.Printf("chunk demands planned: %d\n", len(res.Demands))
	fmt.Printf("within budget: %v\n", res.VMPlan.CostPerHour <= 100)
	// Output:
	// channels analyzed: 3
	// chunk demands planned: 24
	// within budget: true
}

// A short dynamic-provisioning run: two simulated hours of the
// client-server system with the hourly controller.
func ExampleNewScenario() {
	sc, err := cloudmedia.NewScenario(cloudmedia.ClientServer,
		cloudmedia.WithScale(1),
		cloudmedia.WithHours(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioning rounds: %d\n", rep.Intervals)
	fmt.Printf("smooth playback above 90%%: %v\n", rep.MeanQuality > 0.9)
	// Output:
	// provisioning rounds: 3
	// smooth playback above 90%: true
}

// Streaming a long run: every provisioning round is handed to the
// callback as it completes instead of accumulating in memory.
func ExampleScenario() {
	sc, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithScale(1),
		cloudmedia.WithHours(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	rounds := 0
	if _, err := sc.Run(context.Background(), simulate.OnInterval(func(rec cloudmedia.IntervalRecord) {
		rounds++
	})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed rounds: %d\n", rounds)
	// Output:
	// streamed rounds: 4
}

// Scenario derivation: With re-applies functional options to a deep copy,
// so a whole family of variants can be spun off one base scenario — the
// primitive pkg/sweep's grids build on.
func ExampleScenario_With() {
	base, err := cloudmedia.NewScenario(cloudmedia.CloudAssisted,
		cloudmedia.WithHours(6),
		cloudmedia.WithBudgets(100, 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	cheap := base.With(cloudmedia.WithBudgets(50, 1))
	crowded := base.With(cloudmedia.WithScale(2), cloudmedia.WithSeed(7))

	fmt.Printf("base:    $%v/h, rate %.2f/s, seed %d\n", base.VMBudget, base.Workload.BaseArrivalRate, base.Seed)
	fmt.Printf("cheap:   $%v/h, rate %.2f/s, seed %d\n", cheap.VMBudget, cheap.Workload.BaseArrivalRate, cheap.Seed)
	fmt.Printf("crowded: $%v/h, rate %.2f/s, seed %d\n", crowded.VMBudget, crowded.Workload.BaseArrivalRate, crowded.Seed)
	// Output:
	// base:    $100/h, rate 0.60/s, seed 42
	// cheap:   $50/h, rate 0.60/s, seed 42
	// crowded: $100/h, rate 1.20/s, seed 7
}
