package cloudmedia

import (
	"fmt"

	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
)

// Option configures a Pipeline or a Scenario. Options are shared between
// the two builders: channel-shape, budget, and catalog options apply to
// both, while workload and timing options only affect NewScenario and the
// arrival/transfer options only affect NewPipeline (each Option's comment
// says which). Passing an option to a builder it does not affect is
// harmless.
type Option func(*settings)

// settings accumulates option values; nil pointer fields mean "keep the
// builder's default".
type settings struct {
	chunks          *int
	playbackRate    *float64
	chunkSeconds    *float64
	vmBandwidth     *float64
	slotsPerVM      *int
	entryFirstChunk *float64

	transfer plan.TransferMatrix
	viewing  *[2]float64
	rates    []float64

	peerUplink  *float64
	budgets     *[2]float64
	vmClusters  []plan.VMCluster
	nfsClusters []plan.NFSCluster

	hours       *float64
	seed        *int64
	scale       *float64
	interval    *float64
	sample      *float64
	uplinkRatio *float64
	channels    *int
	predictor   simulate.Predictor
	scheduling  simulate.Scheduling
	workload    *simulate.Workload

	err error
}

func (s *settings) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
}

// WithChunks sets J, the number of chunks each video is divided into.
func WithChunks(n int) Option {
	return func(s *settings) { s.chunks = &n }
}

// WithPlaybackRate sets r, the streaming playback rate in bytes/s (the
// paper uses 50e3, i.e. 400 Kbps).
func WithPlaybackRate(bytesPerSecond float64) Option {
	return func(s *settings) { s.playbackRate = &bytesPerSecond }
}

// WithChunkSeconds sets T₀, the playback time of one chunk.
func WithChunkSeconds(seconds float64) Option {
	return func(s *settings) { s.chunkSeconds = &seconds }
}

// WithVMBandwidth sets R, the upload bandwidth allocated to each VM in
// bytes/s (the paper uses 10 Mbps).
func WithVMBandwidth(bytesPerSecond float64) Option {
	return func(s *settings) { s.vmBandwidth = &bytesPerSecond }
}

// WithSlotsPerVM sets the capacity granularity of the queueing servers:
// each server is R/slots of bandwidth. 0 or 1 is the paper's literal
// whole-VM mapping; larger values model the fractional VM shares Eqn. (7)
// permits.
func WithSlotsPerVM(slots int) Option {
	return func(s *settings) { s.slotsPerVM = &slots }
}

// WithEntryFirstChunk sets α, the fraction of arrivals that start watching
// at chunk 1 (the paper uses 0.7).
func WithEntryFirstChunk(alpha float64) Option {
	return func(s *settings) { s.entryFirstChunk = &alpha }
}

// WithTransfer sets the viewing-behaviour transfer matrix explicitly.
// Pipeline only; Scenario derives its matrix from the workload's jump
// parameters. Mutually exclusive with WithViewing.
func WithTransfer(p plan.TransferMatrix) Option {
	return func(s *settings) {
		if s.viewing != nil {
			s.fail("cloudmedia: WithTransfer conflicts with WithViewing")
			return
		}
		s.transfer = p
	}
}

// WithViewing builds the sequential-with-VCR-jumps transfer matrix from a
// per-chunk continuation probability and a jump probability (the paper
// uses 0.9 and 1/3). Pipeline only. Mutually exclusive with WithTransfer.
func WithViewing(cont, jump float64) Option {
	return func(s *settings) {
		if s.transfer != nil {
			s.fail("cloudmedia: WithViewing conflicts with WithTransfer")
			return
		}
		s.viewing = &[2]float64{cont, jump}
	}
}

// WithArrivalRate sets the external channel arrival rates Λ in users/s,
// one value per channel; a single value analyzes a single channel.
// Pipeline only; Scenario arrivals come from the workload trace.
func WithArrivalRate(usersPerSecond ...float64) Option {
	return func(s *settings) {
		if len(usersPerSecond) == 0 {
			s.fail("cloudmedia: WithArrivalRate needs at least one rate")
			return
		}
		s.rates = usersPerSecond
	}
}

// WithPeerUplink sets u, the mean per-peer upload bandwidth in bytes/s,
// enabling the peer-supply stage; 0 (the default) analyzes a pure
// client-server system. Pipeline only; for a Scenario use WithUplinkRatio
// or WithWorkload.
func WithPeerUplink(bytesPerSecond float64) Option {
	return func(s *settings) { s.peerUplink = &bytesPerSecond }
}

// WithBudgets sets the hourly rental budgets: B_M for VMs and B_S for
// storage, in dollars (the paper uses 100 and 1).
func WithBudgets(vmPerHour, storagePerHour float64) Option {
	return func(s *settings) { s.budgets = &[2]float64{vmPerHour, storagePerHour} }
}

// WithVMClusters overrides the VM rental catalog (default: the paper's
// Table II).
func WithVMClusters(clusters ...plan.VMCluster) Option {
	return func(s *settings) { s.vmClusters = clusters }
}

// WithNFSClusters overrides the storage rental catalog (default: the
// paper's Table III).
func WithNFSClusters(clusters ...plan.NFSCluster) Option {
	return func(s *settings) { s.nfsClusters = clusters }
}

// WithHours sets the simulated duration. Scenario only.
func WithHours(hours float64) Option {
	return func(s *settings) { s.hours = &hours }
}

// WithSeed sets the random seed; runs are reproducible per seed. Scenario
// only.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = &seed }
}

// WithScale sets the workload scale: 1 targets ~250 concurrent viewers,
// 10 approaches the paper's ~2500. Scenario only.
func WithScale(scale float64) Option {
	return func(s *settings) { s.scale = &scale }
}

// WithInterval sets the provisioning period T in seconds (default 3600,
// the hourly rental granularity). Scenario only.
func WithInterval(seconds float64) Option {
	return func(s *settings) { s.interval = &seconds }
}

// WithSampleSeconds sets the measurement sampling period (default 900).
// Scenario only.
func WithSampleSeconds(seconds float64) Option {
	return func(s *settings) { s.sample = &seconds }
}

// WithUplinkRatio rescales the workload's peer uplinks so their mean is
// ratio × the streaming rate — the paper's Fig. 11 sweep. Scenario only.
func WithUplinkRatio(ratio float64) Option {
	return func(s *settings) { s.uplinkRatio = &ratio }
}

// WithChannels sets the number of video channels in the workload.
// Scenario only; a Pipeline's channel count follows WithArrivalRate.
func WithChannels(n int) Option {
	return func(s *settings) { s.channels = &n }
}

// WithPredictor replaces the controller's arrival-rate forecaster (default
// simulate.LastInterval, the paper's rule). Scenario only.
func WithPredictor(p simulate.Predictor) Option {
	return func(s *settings) { s.predictor = p }
}

// WithScheduling selects the P2P uplink allocation policy (default
// simulate.RarestFirst, the paper's scheme). Scenario only.
func WithScheduling(policy simulate.Scheduling) Option {
	return func(s *settings) { s.scheduling = policy }
}

// WithWorkload replaces the whole workload trace configuration. Scenario
// only; combine with simulate.DefaultWorkload to start from the paper's.
func WithWorkload(w simulate.Workload) Option {
	return func(s *settings) { s.workload = &w }
}

// apply runs the options and returns the accumulated settings.
func apply(opts []Option) (*settings, error) {
	s := &settings{}
	for _, opt := range opts {
		opt(s)
	}
	return s, s.err
}

// channel overlays the channel-shape options onto a base channel.
func (s *settings) channel(base plan.Channel) plan.Channel {
	if s.chunks != nil {
		base.Chunks = *s.chunks
	}
	if s.playbackRate != nil {
		base.PlaybackRate = *s.playbackRate
	}
	if s.chunkSeconds != nil {
		base.ChunkSeconds = *s.chunkSeconds
	}
	if s.vmBandwidth != nil {
		base.VMBandwidth = *s.vmBandwidth
	}
	if s.slotsPerVM != nil {
		base.SlotsPerVM = *s.slotsPerVM
	}
	if s.entryFirstChunk != nil {
		base.EntryFirstChunk = *s.entryFirstChunk
	}
	return base
}
