package cloudmedia

import (
	"cloudmedia/internal/config"
	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

// Option configures a Pipeline or a Scenario. Options are shared between
// the two builders: channel-shape, budget, and catalog options apply to
// both, while workload and timing options only affect NewScenario and the
// arrival/transfer options only affect NewPipeline (each Option's comment
// says which). Passing an option to a builder it does not affect is
// harmless.
//
// The same options re-apply to an existing scenario through
// Scenario.With, which derives an independent copy:
//
//	cheap := sc.With(cloudmedia.WithBudgets(50, 1))
//
// Option is one type across the module — cloudmedia.Option and
// simulate.Option are aliases — so options built here flow into
// pkg/simulate and pkg/sweep unchanged.
type Option = config.Option

// WithChunks sets J, the number of chunks each video is divided into.
func WithChunks(n int) Option {
	return func(s *config.Settings) { s.Chunks = &n }
}

// WithPlaybackRate sets r, the streaming playback rate in bytes/s (the
// paper uses 50e3, i.e. 400 Kbps).
func WithPlaybackRate(bytesPerSecond float64) Option {
	return func(s *config.Settings) { s.PlaybackRate = &bytesPerSecond }
}

// WithChunkSeconds sets T₀, the playback time of one chunk.
func WithChunkSeconds(seconds float64) Option {
	return func(s *config.Settings) { s.ChunkSeconds = &seconds }
}

// WithVMBandwidth sets R, the upload bandwidth allocated to each VM in
// bytes/s (the paper uses 10 Mbps).
func WithVMBandwidth(bytesPerSecond float64) Option {
	return func(s *config.Settings) { s.VMBandwidth = &bytesPerSecond }
}

// WithSlotsPerVM sets the capacity granularity of the queueing servers:
// each server is R/slots of bandwidth. 0 or 1 is the paper's literal
// whole-VM mapping; larger values model the fractional VM shares Eqn. (7)
// permits.
func WithSlotsPerVM(slots int) Option {
	return func(s *config.Settings) { s.SlotsPerVM = &slots }
}

// WithEntryFirstChunk sets α, the fraction of arrivals that start watching
// at chunk 1 (the paper uses 0.7).
func WithEntryFirstChunk(alpha float64) Option {
	return func(s *config.Settings) { s.EntryFirstChunk = &alpha }
}

// WithTransfer sets the viewing-behaviour transfer matrix explicitly.
// Pipeline only; Scenario derives its matrix from the workload's jump
// parameters. Mutually exclusive with WithViewing.
func WithTransfer(p plan.TransferMatrix) Option {
	return func(s *config.Settings) {
		if s.Viewing != nil {
			s.Fail("cloudmedia: WithTransfer conflicts with WithViewing")
			return
		}
		s.Transfer = p
	}
}

// WithViewing builds the sequential-with-VCR-jumps transfer matrix from a
// per-chunk continuation probability and a jump probability (the paper
// uses 0.9 and 1/3). Pipeline only. Mutually exclusive with WithTransfer.
func WithViewing(cont, jump float64) Option {
	return func(s *config.Settings) {
		if s.Transfer != nil {
			s.Fail("cloudmedia: WithViewing conflicts with WithTransfer")
			return
		}
		s.Viewing = &[2]float64{cont, jump}
	}
}

// WithArrivalRate sets the external channel arrival rates Λ in users/s,
// one value per channel; a single value analyzes a single channel.
// Pipeline only; Scenario arrivals come from the workload trace.
func WithArrivalRate(usersPerSecond ...float64) Option {
	return func(s *config.Settings) {
		if len(usersPerSecond) == 0 {
			s.Fail("cloudmedia: WithArrivalRate needs at least one rate")
			return
		}
		s.Rates = usersPerSecond
	}
}

// WithPeerUplink sets u, the mean per-peer upload bandwidth in bytes/s,
// enabling the peer-supply stage; 0 (the default) analyzes a pure
// client-server system. Pipeline only; for a Scenario use WithUplinkRatio
// or WithWorkload.
func WithPeerUplink(bytesPerSecond float64) Option {
	return func(s *config.Settings) { s.PeerUplink = &bytesPerSecond }
}

// WithBudgets sets the hourly rental budgets: B_M for VMs and B_S for
// storage, in dollars (the paper uses 100 and 1).
func WithBudgets(vmPerHour, storagePerHour float64) Option {
	return func(s *config.Settings) { s.Budgets = &[2]float64{vmPerHour, storagePerHour} }
}

// WithVMClusters overrides the VM rental catalog (default: the paper's
// Table II).
func WithVMClusters(clusters ...plan.VMCluster) Option {
	return func(s *config.Settings) { s.VMClusters = clusters }
}

// WithNFSClusters overrides the storage rental catalog (default: the
// paper's Table III).
func WithNFSClusters(clusters ...plan.NFSCluster) Option {
	return func(s *config.Settings) { s.NFSClusters = clusters }
}

// WithHours sets the simulated duration. Scenario only.
func WithHours(hours float64) Option {
	return func(s *config.Settings) { s.Hours = &hours }
}

// WithSeed sets the random seed; runs are reproducible per seed. Scenario
// only.
func WithSeed(seed int64) Option {
	return func(s *config.Settings) { s.Seed = &seed }
}

// WithScale sets the workload scale: in NewScenario, 1 targets ~250
// concurrent viewers and 10 approaches the paper's ~2500. In
// Scenario.With the scale is relative: it multiplies the derived
// scenario's current arrival rate, so With(WithScale(2)) doubles the
// crowd. The scale must be positive. Scenario only.
func WithScale(scale float64) Option {
	return func(s *config.Settings) {
		if scale <= 0 {
			s.Fail("cloudmedia: non-positive scale %v", scale)
			return
		}
		s.Scale = &scale
	}
}

// WithInterval sets the provisioning period T in seconds (default 3600,
// the hourly rental granularity). Scenario only.
func WithInterval(seconds float64) Option {
	return func(s *config.Settings) { s.Interval = &seconds }
}

// WithSampleSeconds sets the measurement sampling period (default 900).
// Scenario only.
func WithSampleSeconds(seconds float64) Option {
	return func(s *config.Settings) { s.Sample = &seconds }
}

// WithUplinkRatio rescales the workload's peer uplinks so their mean is
// ratio × the streaming rate — the paper's Fig. 11 sweep. Scenario only.
func WithUplinkRatio(ratio float64) Option {
	return func(s *config.Settings) { s.UplinkRatio = &ratio }
}

// WithChannels sets the number of video channels in the workload.
// Scenario only; a Pipeline's channel count follows WithArrivalRate.
func WithChannels(n int) Option {
	return func(s *config.Settings) { s.Channels = &n }
}

// WithWorkers bounds the worker pool both engines use to step channels in
// parallel between control barriers: n goroutines shard the channel set,
// clamped to the channel count. 0 (the default) uses GOMAXPROCS. Results
// are bit-identical for every worker count on both engines — parallelism
// is a throughput knob, never a behaviour knob. Scenario only.
func WithWorkers(n int) Option {
	return func(s *config.Settings) {
		if n < 0 {
			s.Fail("cloudmedia: negative workers %d", n)
			return
		}
		s.Workers = &n
	}
}

// WithFidelity selects the simulation engine: FidelityEvent (the default)
// runs the per-viewer discrete-event simulator, FidelityFluid the
// aggregate cohort integrator whose cost is independent of the crowd
// size. Scenario only.
func WithFidelity(f Fidelity) Option {
	return func(s *config.Settings) {
		if f != FidelityEvent && f != FidelityFluid {
			s.Fail("cloudmedia: invalid fidelity %d", int(f))
			return
		}
		s.Fidelity = f
	}
}

// WithViewerScale targets an absolute steady-state crowd size: the
// workload's arrival rate is set so roughly n viewers are concurrent at
// the daily baseline. It is the absolute counterpart of the relative
// WithScale (n = 250 matches scale 1); combine it with
// WithFidelity(FidelityFluid) for million-viewer runs. Scenario only.
func WithViewerScale(n float64) Option {
	return func(s *config.Settings) {
		if n <= 0 {
			s.Fail("cloudmedia: non-positive viewer scale %v", n)
			return
		}
		s.ViewerScale = &n
	}
}

// WithPredictor replaces the controller's arrival-rate forecaster (default
// simulate.LastInterval, the paper's rule). Scenario only.
func WithPredictor(p simulate.Predictor) Option {
	return func(s *config.Settings) { s.Predictor = p }
}

// WithPolicy selects the provisioning policy that turns predicted demand
// into rental plans each interval (default simulate.Greedy, the paper's
// heuristic): simulate.Lookahead plans for the max of the next k
// forecasts with tear-down hysteresis, simulate.Oracle plans on the true
// arrival trace (the perfect-prediction bound), and simulate.StaticPeak
// rents the horizon's peak once and holds it. Scenario only.
func WithPolicy(p simulate.Policy) Option {
	return func(s *config.Settings) {
		if p == nil {
			s.Fail("cloudmedia: nil policy")
			return
		}
		s.Policy = p
	}
}

// WithPricing selects the cloud pricing plan the run is billed under
// (default simulate.OnDemandPricing, the paper's literal pay-as-you-go
// prices; simulate.ReservedPricing adds a discounted reserved tier with
// an upfront fee per term). Scenario only.
func WithPricing(p simulate.PricingPlan) Option {
	return func(s *config.Settings) {
		if err := p.Validate(); err != nil {
			s.Fail("cloudmedia: %v", err)
			return
		}
		s.Pricing = &p
	}
}

// WithSpotPricing selects the spot-heavy billing plan: 70% of the
// elastic capacity at 30% of the catalog rate, with an expected 0.25
// interruption events per hour realized by the fault layer's seeded
// preemption process. Sugar for WithPricing(simulate.SpotPricing());
// hedge the interruption risk with
// WithPolicy(simulate.Lookahead{SpotHedge: true}). Scenario only.
func WithSpotPricing() Option {
	return WithPricing(simulate.SpotPricing())
}

// WithFaults injects a declarative failure plan at the run's control
// barriers: region outages, spot mass-preemptions, and capacity
// degradations (simulate.FaultSchedule; build one literally or with
// simulate.ParseFault). nil injects nothing. Fault runs stay
// deterministic per seed and bit-identical across worker counts.
// Scenario only.
func WithFaults(f *simulate.FaultSchedule) Option {
	return func(s *config.Settings) {
		if err := f.Validate(); err != nil {
			s.Fail("cloudmedia: %v", err)
			return
		}
		s.Faults = f.Clone()
	}
}

// WithScheduling selects the P2P uplink allocation policy (default
// simulate.RarestFirst, the paper's scheme). Scenario only.
func WithScheduling(policy simulate.Scheduling) Option {
	return func(s *config.Settings) { s.Scheduling = policy }
}

// WithWorkload replaces the whole workload trace configuration. Scenario
// only; combine with simulate.DefaultWorkload to start from the paper's.
func WithWorkload(w simulate.Workload) Option {
	return func(s *config.Settings) { s.Workload = &w }
}

// WithWorkloadSource overrides the demand side of the workload with an
// arbitrary arrival-intensity source (simulate.Source): a recorded or
// generated trace, or any custom implementation. The channel count then
// follows the source, the engines sample arrivals from it, and oracle
// policies plan on its true rates; the parametric workload keeps
// supplying the behavioural knobs (VCR jumps, peer uplinks). Scenario
// only. Mutually exclusive with WithTrace.
func WithWorkloadSource(src simulate.Source) Option {
	return func(s *config.Settings) {
		if src == nil {
			s.Fail("cloudmedia: nil workload source")
			return
		}
		if s.Source != nil {
			s.Fail("cloudmedia: WithWorkloadSource conflicts with an earlier demand source option")
			return
		}
		s.Source = src
	}
}

// WithTrace drives the scenario's arrivals from a demand trace — a
// recorded run, a parsed CSV/JSON artifact, or a synthetic generator
// from pkg/trace. Sugar for WithWorkloadSource(t). Scenario only.
// Mutually exclusive with WithWorkloadSource.
func WithTrace(t *trace.Trace) Option {
	return func(s *config.Settings) {
		if t == nil {
			s.Fail("cloudmedia: nil trace")
			return
		}
		if s.Source != nil {
			s.Fail("cloudmedia: WithTrace conflicts with an earlier demand source option")
			return
		}
		s.Source = t
	}
}

// WithClock selects how a live serving run (pkg/serve) paces simulated
// time: ClockReal against the wall clock, ClockSimulated at full engine
// speed. Scenario only; batch Run ignores it, and serve.Run defaults to
// ClockReal when unset.
func WithClock(mode ClockMode) Option {
	return func(s *config.Settings) {
		if mode != ClockReal && mode != ClockSimulated {
			s.Fail("cloudmedia: invalid clock mode %d", int(mode))
			return
		}
		s.Clock = mode
	}
}

// WithTimeScale sets the live-serving time compression: one simulated
// second takes 1/factor real seconds under the real clock (24 replays a
// day-long trace in an hour; factors beyond 24 suit tests and smoke
// runs). Scenario only; batch Run ignores it.
func WithTimeScale(factor float64) Option {
	return func(s *config.Settings) {
		if factor <= 0 {
			s.Fail("cloudmedia: non-positive time scale %v", factor)
			return
		}
		s.TimeScale = &factor
	}
}

// WithMetricsAddr sets the TCP address the live serving run's
// observability endpoint (/metrics, /healthz, /state) listens on, e.g.
// ":9090". Empty disables the endpoint. Scenario only; batch Run
// ignores it.
func WithMetricsAddr(addr string) Option {
	return func(s *config.Settings) { s.MetricsAddr = &addr }
}

// apply runs the options and returns the accumulated settings.
func apply(opts []Option) (*config.Settings, error) {
	return config.Apply(opts)
}
