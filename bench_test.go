package cloudmedia

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks of the analysis kernels and ablations of the
// design choices called out in DESIGN.md. Figure benchmarks run the full
// stack (workload → simulator → controller → cloud) over a short horizon;
// each reports domain metrics via b.ReportMetric in addition to wall time.

import (
	"context"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/experiments"
	"cloudmedia/internal/mathx"
	"cloudmedia/internal/p2p"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
	"cloudmedia/pkg/plan"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/sweep"
)

// benchScenario is the short-horizon configuration the figure benches use.
func benchScenario(mode sim.Mode) experiments.Scenario {
	sc := experiments.DefaultScenario(mode, 1)
	sc.Hours = 2
	sc.IntervalSeconds = 1800
	sc.SampleSeconds = 600
	return sc
}

// benchDemands builds a paper-scale chunk demand list (20 channels × 20
// chunks, Zipf-skewed) for the heuristic benchmarks.
func benchDemands() []provision.ChunkDemand {
	var out []provision.ChunkDemand
	for c := 0; c < 20; c++ {
		for i := 0; i < 20; i++ {
			out = append(out, provision.ChunkDemand{
				Channel: c, Chunk: i,
				// ≈100 VMs in total: comfortably inside the $100/h budget
				// and the Table II capacity, like the paper's steady state.
				Demand: 1.6e5 * float64(20-c) / float64(1+i),
			})
		}
	}
	return out
}

// BenchmarkTable2VMProvisioning exercises the VM-configuration heuristic
// against the Table II catalog (the artifact behind Table II).
func BenchmarkTable2VMProvisioning(b *testing.B) {
	demands := benchDemands()
	clusters := cloud.DefaultVMClusters()
	var utility float64
	for i := 0; i < b.N; i++ {
		plan, err := provision.PlanVMs(demands, cloud.DefaultVMBandwidth, clusters, 100)
		if err != nil {
			b.Fatal(err)
		}
		utility = plan.Utility
	}
	b.ReportMetric(utility, "utility")
}

// BenchmarkTable3StorageRental exercises the storage-rental heuristic
// against the Table III catalog.
func BenchmarkTable3StorageRental(b *testing.B) {
	demands := benchDemands()
	clusters := cloud.DefaultNFSClusters()
	var cost float64
	for i := 0; i < b.N; i++ {
		plan, err := provision.PlanStorage(demands, 15e6, clusters, 1)
		if err != nil {
			b.Fatal(err)
		}
		cost = plan.CostPerHour
	}
	b.ReportMetric(cost*24, "$/day")
}

// BenchmarkFig4Provisioning regenerates the provisioned-vs-used comparison.
func BenchmarkFig4Provisioning(b *testing.B) {
	var p2pOverCS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchScenario(sim.ClientServer))
		if err != nil {
			b.Fatal(err)
		}
		p2pOverCS = res.Summary["p2p_over_cs_reserved"]
	}
	b.ReportMetric(p2pOverCS, "p2p/cs-reserved")
}

// BenchmarkFig5Quality regenerates the streaming-quality comparison.
func BenchmarkFig5Quality(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchScenario(sim.ClientServer))
		if err != nil {
			b.Fatal(err)
		}
		q = res.Summary["cs_quality_mean"]
	}
	b.ReportMetric(q, "cs-quality")
}

// BenchmarkFig6QualityVsSize regenerates the quality-vs-channel-size scatter.
func BenchmarkFig6QualityVsSize(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchScenario(sim.ClientServer))
		if err != nil {
			b.Fatal(err)
		}
		q = res.Summary["large_channel_quality"]
	}
	b.ReportMetric(q, "large-ch-quality")
}

// BenchmarkFig7BandwidthVsSize regenerates the bandwidth-vs-size scatter.
func BenchmarkFig7BandwidthVsSize(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchScenario(sim.ClientServer))
		if err != nil {
			b.Fatal(err)
		}
		slope = res.Summary["cs_mbps_per_user"]
	}
	b.ReportMetric(slope, "cs-mbps/user")
}

// BenchmarkFig8StorageUtility regenerates the storage-utility evolution.
func BenchmarkFig8StorageUtility(b *testing.B) {
	var u float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchScenario(sim.P2P))
		if err != nil {
			b.Fatal(err)
		}
		u = res.Summary["channel_0_mean_utility"]
	}
	b.ReportMetric(u, "ch0-utility")
}

// BenchmarkFig9VMUtility regenerates the VM-utility evolution.
func BenchmarkFig9VMUtility(b *testing.B) {
	var u float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchScenario(sim.P2P))
		if err != nil {
			b.Fatal(err)
		}
		u = res.Summary["channel_0_mean_utility"]
	}
	b.ReportMetric(u, "ch0-utility")
}

// BenchmarkFig10Cost regenerates the VM rental cost comparison.
func BenchmarkFig10Cost(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchScenario(sim.ClientServer))
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Summary["p2p_over_cs_cost"]
	}
	b.ReportMetric(ratio, "p2p/cs-cost")
}

// BenchmarkFig11PeerBandwidth regenerates the uplink-ratio sensitivity.
func BenchmarkFig11PeerBandwidth(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchScenario(sim.P2P))
		if err != nil {
			b.Fatal(err)
		}
		q = res.Summary["quality_ratio_1.2"]
	}
	b.ReportMetric(q, "quality@1.2")
}

// BenchmarkVMStartupLatency measures the simulated VM lifecycle operations
// (Sec. VI-C: ≈25 s boot, faster shutdown, parallel launches).
func BenchmarkVMStartupLatency(b *testing.B) {
	var boot float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.VMLatency(experiments.Scenario{})
		if err != nil {
			b.Fatal(err)
		}
		boot = res.Summary["boot_seconds"]
	}
	b.ReportMetric(boot, "boot-s")
}

// BenchmarkStorageCostLibrary measures the storage bill of the paper-scale
// library (Sec. VI-C: ≈$0.018/day).
func BenchmarkStorageCostLibrary(b *testing.B) {
	var perDay float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.StorageCost(experiments.DefaultScenario(sim.P2P, 1))
		if err != nil {
			b.Fatal(err)
		}
		perDay = res.Summary["cost_per_day_usd"]
	}
	b.ReportMetric(perDay, "$/day")
}

// --- Analysis kernels ---

func paperChannel() (queueing.Config, queueing.TransferMatrix) {
	cfg := queueing.Config{
		Chunks:          20,
		PlaybackRate:    50e3,
		ChunkSeconds:    300,
		VMBandwidth:     cloud.DefaultVMBandwidth,
		EntryFirstChunk: 0.7,
	}
	p, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		panic(err)
	}
	return cfg, p
}

// BenchmarkQueueingSolve measures one channel's Jackson solve + sizing.
func BenchmarkQueueingSolve(b *testing.B) {
	cfg, p := paperChannel()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.Solve(cfg, p, 0.25, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP2PSolve measures the full peer-supply pipeline (Proposition 1
// solves + Eqn. 5) for one channel.
func BenchmarkP2PSolve(b *testing.B) {
	cfg, p := paperChannel()
	eq, err := queueing.Solve(cfg, p, 0.25, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p2p.Solve(p2p.Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 34e3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErlangC measures the queueing primitive in the inner loop of
// server sizing.
func BenchmarkErlangC(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += mathx.ErlangC(40, 35.5)
	}
	_ = sink
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationHeuristicVsNaive compares the marginal-utility-per-cost
// ordering of the VM heuristic against a naive catalog-order greedy,
// reporting the utility gap the ordering buys.
func BenchmarkAblationHeuristicVsNaive(b *testing.B) {
	demands := benchDemands()
	smart := cloud.DefaultVMClusters()
	// Naive order: force the heuristic to see utilities that neutralize the
	// u/p ranking (equal marginal utility), emulating first-fit.
	naive := cloud.DefaultVMClusters()
	for i := range naive {
		naive[i].Utility = naive[i].PricePerHour // u/p = 1 everywhere
	}
	var gap float64
	for i := 0; i < b.N; i++ {
		sp, err := provision.PlanVMs(demands, cloud.DefaultVMBandwidth, smart, 100)
		if err != nil {
			b.Fatal(err)
		}
		np, err := provision.PlanVMs(demands, cloud.DefaultVMBandwidth, naive, 100)
		if err != nil {
			b.Fatal(err)
		}
		// Evaluate the naive placement under the true utilities.
		var naiveTrue float64
		for _, a := range np.Allocations {
			for _, s := range smart {
				if s.Name == a.Cluster {
					naiveTrue += s.Utility * a.VMs
				}
			}
		}
		gap = sp.Utility - naiveTrue
	}
	b.ReportMetric(gap, "utility-gap")
}

// BenchmarkAblationPredictiveVsStatic compares the paper's hourly
// predictive provisioning against a static provision-for-the-peak baseline,
// reporting the cost ratio (static/predictive ≥ 1 means prediction saves).
func BenchmarkAblationPredictiveVsStatic(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(sim.ClientServer)
		predictive, err := experiments.RunTimeline(sc)
		if err != nil {
			b.Fatal(err)
		}
		// Static baseline: same demand curve, but billed at the peak hourly
		// rate for every hour (dedicated servers sized for the peak).
		var peak float64
		for _, h := range predictive.Hourlies {
			if h.VMCostPerHour > peak {
				peak = h.VMCostPerHour
			}
		}
		static := peak * float64(len(predictive.Hourlies))
		if predictive.VMCostTotal > 0 {
			ratio = static / predictive.VMCostTotal
		}
	}
	b.ReportMetric(ratio, "static/predictive")
}

// BenchmarkAblationPredictors compares the paper's last-interval predictor
// against the EWMA and peak-of-window extensions under a flash crowd,
// reporting the quality achieved by each forecaster for the same spend
// discipline. (The paper flags richer predictors as future work.)
func BenchmarkAblationPredictors(b *testing.B) {
	run := func(p core.Predictor) (quality, cost float64) {
		sc := benchScenario(sim.ClientServer)
		sc.Hours = 3
		sc.Predictor = p
		sc.Workload.FlashCrowds = []workload.FlashCrowd{{PeakHour: 1.5, WidthHours: 0.5, Amplitude: 3}}
		tl, err := experiments.RunTimeline(sc)
		if err != nil {
			b.Fatal(err)
		}
		return tl.MeanQuality, tl.VMCostTotal
	}
	var lastQ, ewmaQ, peakQ float64
	for i := 0; i < b.N; i++ {
		lastQ, _ = run(core.LastInterval{})
		ewmaQ, _ = run(core.EWMA{Alpha: 0.4})
		peakQ, _ = run(core.PeakOfWindow{Window: 3})
	}
	b.ReportMetric(lastQ, "q-last")
	b.ReportMetric(ewmaQ, "q-ewma")
	b.ReportMetric(peakQ, "q-peak")
}

// BenchmarkAblationPeerScheduling compares rarest-first against
// demand-proportional peer uplink allocation (Sec. IV-C's scheduling
// choice), reporting the quality each policy sustains for the same spend.
func BenchmarkAblationPeerScheduling(b *testing.B) {
	run := func(sched sim.PeerScheduling) float64 {
		sc := benchScenario(sim.P2P)
		sc.Scheduling = sched
		tl, err := experiments.RunTimeline(sc)
		if err != nil {
			b.Fatal(err)
		}
		return tl.MeanQuality
	}
	var rarest, proportional float64
	for i := 0; i < b.N; i++ {
		rarest = run(sim.RarestFirst)
		proportional = run(sim.Proportional)
	}
	b.ReportMetric(rarest, "q-rarest")
	b.ReportMetric(proportional, "q-proportional")
}

// --- Sweep harness ---

// BenchmarkSweep3x3 runs the examples/sweep-shaped grid — 3 modes × 3 VM
// budgets over a short horizon — through the pkg/sweep worker pool, so
// BENCH_*.json tracks sweep throughput across PRs. Reports cells/s in
// addition to wall time per grid.
func BenchmarkSweep3x3(b *testing.B) {
	base := simulate.Default(simulate.ClientServer, 1)
	base.Hours = 1
	base.SampleSeconds = 900
	grid := sweep.Grid{
		Base: base,
		Axes: []sweep.Axis{
			sweep.Modes(simulate.ClientServer, simulate.P2P, simulate.CloudAssisted),
			sweep.VMBudgets(50, 100, 200),
		},
	}
	runner := sweep.Runner{Workers: 4}
	var cells int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := runner.Run(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(results)
	}
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
}

// --- Engine fidelities and scale (PR 3) ---

// BenchmarkFluidMillionViewers is the scale acceptance benchmark: a full
// 24-hour scenario with ≥1,000,000 modeled concurrent viewers on the
// fluid-cohort engine, dynamic provisioning included. Reports the peak
// concurrent viewer count alongside wall time; the event engine cannot
// represent this crowd at all (it would need tens of GB of viewer
// objects), while the fluid engine's state is O(channels × chunks).
func BenchmarkFluidMillionViewers(b *testing.B) {
	sc := simulate.Default(simulate.CloudAssisted, 1)
	sc = sc.With(
		WithFidelity(simulate.FidelityFluid),
		WithViewerScale(1_000_000),
		WithChannels(20),
		WithHours(24),
		WithBudgets(150_000, 100),
		WithVMClusters(
			plan.VMCluster{Name: "mega-a", MaxVMs: 120_000, PricePerHour: 0.64, Utility: 1.0},
			plan.VMCluster{Name: "mega-b", MaxVMs: 120_000, PricePerHour: 0.60, Utility: 0.9},
		),
	)
	var peak, quality float64
	for i := 0; i < b.N; i++ {
		peak, quality = 0, 0
		rep, err := sc.Run(context.Background(), simulate.OnSnapshot(func(snap simulate.Snapshot) {
			if float64(snap.Users) > peak {
				peak = float64(snap.Users)
			}
		}))
		if err != nil {
			b.Fatal(err)
		}
		quality = rep.MeanQuality
	}
	b.ReportMetric(peak, "peak-viewers")
	b.ReportMetric(quality, "quality")
}

// BenchmarkFluid10MViewers is the ROADMAP's next scale bar: a full
// 24-hour day with ~10,000,000 peak concurrent viewers on the fluid
// engine, dynamic provisioning included — serial and with the
// channel-sharded worker pool (results are bit-identical; only wall time
// moves). The serial/pool pair measures the tentpole speedup on the host;
// the pool run is the one the <5 s acceptance target applies to.
func BenchmarkFluid10MViewers(b *testing.B) {
	base := simulate.Default(simulate.CloudAssisted, 1)
	base = base.With(
		WithFidelity(simulate.FidelityFluid),
		WithViewerScale(3_400_000), // ≈10M at the diurnal+flash-crowd peak
		WithChannels(40),
		WithHours(24),
		WithBudgets(520_000, 300),
		WithVMClusters(
			plan.VMCluster{Name: "mega-a", MaxVMs: 420_000, PricePerHour: 0.64, Utility: 1.0},
			plan.VMCluster{Name: "mega-b", MaxVMs: 420_000, PricePerHour: 0.60, Utility: 0.9},
		),
	)
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS-bounded pool
		name := "serial"
		if workers == 0 {
			name = "pool"
		}
		sc := base.With(WithWorkers(workers))
		b.Run(name, func(b *testing.B) {
			var peak, quality float64
			for i := 0; i < b.N; i++ {
				peak, quality = 0, 0
				rep, err := sc.Run(context.Background(), simulate.OnSnapshot(func(snap simulate.Snapshot) {
					if float64(snap.Users) > peak {
						peak = float64(snap.Users)
					}
				}))
				if err != nil {
					b.Fatal(err)
				}
				quality = rep.MeanQuality
			}
			b.ReportMetric(peak, "peak-viewers")
			b.ReportMetric(quality, "quality")
		})
	}
}

// BenchmarkFluid100MViewers is the ROADMAP's 100M bar: a full 24-hour
// day with ~100,000,000 peak concurrent viewers on the fluid engine,
// dynamic provisioning included. At this scale the PR 8 engine was
// bottlenecked outside the integrator — the serial per-batch RatesInto
// prologue and the controller's per-interval snapshot/derive/forecast
// loop — so this bench caps the sharded demand plane, the sharded
// control plane, and the fused step kernel together. Serial and pool
// results are bit-identical (pinned by the worker-invariance tests);
// only wall time moves. Guarded by -short so `go test ./...` stays
// fast; the bench snapshot (scripts/bench.sh) runs it.
func BenchmarkFluid100MViewers(b *testing.B) {
	if testing.Short() {
		b.Skip("100M-viewer day skipped in -short mode")
	}
	base := simulate.Default(simulate.CloudAssisted, 1)
	base = base.With(
		WithFidelity(simulate.FidelityFluid),
		WithViewerScale(34_000_000), // ≈100M at the diurnal+flash-crowd peak
		WithChannels(48),
		WithHours(24),
		WithBudgets(5_200_000, 3000),
		WithVMClusters(
			plan.VMCluster{Name: "mega-a", MaxVMs: 4_200_000, PricePerHour: 0.64, Utility: 1.0},
			plan.VMCluster{Name: "mega-b", MaxVMs: 4_200_000, PricePerHour: 0.60, Utility: 0.9},
		),
	)
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS-bounded pool
		name := "serial"
		if workers == 0 {
			name = "pool"
		}
		sc := base.With(WithWorkers(workers))
		b.Run(name, func(b *testing.B) {
			var peak, quality float64
			for i := 0; i < b.N; i++ {
				peak, quality = 0, 0
				rep, err := sc.Run(context.Background(), simulate.OnSnapshot(func(snap simulate.Snapshot) {
					if float64(snap.Users) > peak {
						peak = float64(snap.Users)
					}
				}))
				if err != nil {
					b.Fatal(err)
				}
				quality = rep.MeanQuality
			}
			b.ReportMetric(peak, "peak-viewers")
			b.ReportMetric(quality, "quality")
		})
	}
}

// BenchmarkEventParallelChannels measures the event engine's worker-pool
// sharding: the same 12-channel scenario stepped serially and with the
// pool (results are identical; only wall time moves).
func BenchmarkEventParallelChannels(b *testing.B) {
	base := experiments.DefaultScenario(sim.ClientServer, 2)
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS-bounded
		name := "serial"
		if workers == 0 {
			name = "pool"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wl := base.Workload
				wl.Channels = 12
				transfer, err := viewing.SequentialWithJumps(base.Channel.Chunks, 0.9, 0.3)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(sim.Config{
					Mode:     sim.ClientServer,
					Channel:  base.Channel,
					Workload: wl,
					Transfer: transfer,
					Seed:     7,
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				for c := 0; c < s.Channels(); c++ {
					for j := 0; j < base.Channel.Chunks; j++ {
						if err := s.SetCloudCapacity(c, j, 1e6); err != nil {
							b.Fatal(err)
						}
					}
				}
				s.RunUntil(4 * 3600)
			}
		})
	}
}

// --- Resilience (PR 10) ---

// BenchmarkResilienceDay runs the adversarial 24-hour day behind the
// resilience experiment end to end: spot pricing, the hedged lookahead,
// and a fault schedule landing inside the evening flash crowd — a region
// outage (applied as a capacity blackout in this single-region run) plus
// a provider mass-preemption. This is the full fault path — scheduled
// events, the seeded interruption process, preemption accounting, and
// capacity rescaling — at benchmark cadence, so BENCH_*.json tracks its
// cost across PRs. Reports quality, bill, and interruption count.
func BenchmarkResilienceDay(b *testing.B) {
	faults, err := simulate.ParseFault("outage@19.5h+2h,preempt@20h:0.6")
	if err != nil {
		b.Fatal(err)
	}
	sc := simulate.Default(simulate.CloudAssisted, 1)
	sc = sc.With(
		WithHours(24),
		WithPolicy(Lookahead{SpotHedge: true}),
		WithPricing(simulate.SpotPricing()),
		WithFaults(faults),
	)
	var quality, bill float64
	var interruptions int
	for i := 0; i < b.N; i++ {
		rep, err := sc.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		quality, bill = rep.MeanQuality, rep.Bill.TotalUSD()
		interruptions = rep.Bill.Interruptions
	}
	b.ReportMetric(quality, "quality")
	b.ReportMetric(bill, "bill-usd")
	b.ReportMetric(float64(interruptions), "interruptions")
}
