package cloudmedia_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoInternalImportsOutsideModule guards the SDK boundary: examples and
// the CLI are the reference consumers of the public API, so they must
// compile against the root package and pkg/ alone — and pkg/sweep is
// deliberately built purely on the public facades (pkg/simulate), proving
// the SDK surface is sufficient to write an orchestration layer. If this
// test fails, a public wrapper is missing.
func TestNoInternalImportsOutsideModule(t *testing.T) {
	for _, dir := range []string{"examples", "cmd", "pkg/sweep"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if p == "cloudmedia/internal" || strings.HasPrefix(p, "cloudmedia/internal/") {
					t.Errorf("%s imports %s: examples, cmd, and pkg/sweep must use the public API", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}
