package cloudmedia_test

import (
	"testing"

	"cloudmedia/internal/analysis"
)

// TestImportBoundaries guards the layering contract with the boundary
// analyzer (the same one `make lint` and CI run), so `go test ./...`
// alone still catches a violation:
//
//   - examples/, cmd/, and pkg/sweep are the reference consumers of the
//     public API and must compile against the root package and pkg/
//     alone — pkg/sweep in particular is deliberately built purely on
//     the public facades, proving the surface is sufficient to write an
//     orchestration layer (cmd/cloudmedialint is the one carve-out: a
//     dev tool built on internal/analysis by necessity);
//   - the deterministic engines must never import internal/serve or the
//     facades above them.
//
// If this test fails on a consumer package, a public wrapper is missing.
func TestImportBoundaries(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analysis.Boundary})
	if err != nil {
		t.Fatalf("running boundary analyzer: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
