#!/usr/bin/env bash
# Smoke test for the live control plane: boots `cloudmedia serve`
# against a freshly generated trace at high time compression, scrapes
# /healthz and /metrics while the run is in flight, and requires a
# clean drain with a final report. About two real seconds of serving.
# Wired into CI; run locally as ./scripts/serve_smoke.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:39510}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/cloudmedia" ./cmd/cloudmedia

"$WORK/cloudmedia" trace gen -kind diurnal -channels 3 -hours 6 -step 1800 -o "$WORK/trace.csv"

# 6 simulated hours at 10800x pace out in ~2 real seconds.
"$WORK/cloudmedia" serve -trace "$WORK/trace.csv" -hours 6 -fidelity fluid \
    -time-scale 10800 -metrics "$ADDR" > "$WORK/serve.log" &
SERVE_PID=$!

# The daemon needs a beat to bind; poll /healthz until it answers.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" 2>/dev/null | grep -q ok; then
        up=1
        break
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "serve_smoke: /healthz never came up on $ADDR" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi

# Scrape the exposition mid-run: the core gauges must be present and
# the clock must be moving.
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
for metric in cloudmedia_up cloudmedia_sim_seconds cloudmedia_viewers \
    cloudmedia_cost_usd_total cloudmedia_cost_usd_per_hour; do
    grep -q "^$metric" "$WORK/metrics.txt" || {
        echo "serve_smoke: $metric missing from /metrics" >&2
        exit 1
    }
done
curl -fsS "http://$ADDR/state" | grep -q '"sim_seconds"' || {
    echo "serve_smoke: /state did not return the live state" >&2
    exit 1
}

# The run must drain cleanly and report what it served.
wait "$SERVE_PID"
grep -q "served 6.00 sim-hours" "$WORK/serve.log" || {
    echo "serve_smoke: final report missing from output:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}

echo "serve_smoke: ok ($(grep 'served' "$WORK/serve.log"))"
