// Command benchgate compares two benchmark snapshots produced by
// scripts/bench.sh and fails when the new one regresses.
//
// Usage:
//
//	go run ./scripts/benchgate [-threshold 0.20] OLD.json NEW.json
//
// For every benchmark present in both snapshots the ns/op ratio
// new/old is computed; any ratio above 1+threshold is a regression and
// the command exits 1. Benchmarks that appear in only one snapshot are
// reported but never fail the gate, so adding or retiring a benchmark
// does not require touching the baseline in the same change. Benchmarks
// whose baseline is under -floor nanoseconds are reported but not gated:
// at sub-microsecond scale the delta between two snapshots is dominated
// by machine jitter, not code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Generated  string      `json:"generated"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// result is one benchmark's verdict after comparing two snapshots.
type result struct {
	Name       string
	OldNsOp    float64
	NewNsOp    float64
	Ratio      float64 // new/old; 0 when only one side has the benchmark
	Regression bool
	Note       string // set for one-sided or unusable entries
}

// compare pairs the two snapshots by benchmark name. threshold is the
// allowed fractional slowdown (0.20 → fail above +20% ns/op); floor is
// the baseline ns/op below which a benchmark is tracked but not gated.
func compare(oldSnap, newSnap snapshot, threshold, floor float64) []result {
	oldByName := make(map[string]benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldByName[b.Name] = b
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))

	var results []result
	for _, nb := range newSnap.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldByName[nb.Name]
		if !ok {
			results = append(results, result{Name: nb.Name, NewNsOp: nb.Metrics["ns/op"], Note: "new benchmark (no baseline)"})
			continue
		}
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			results = append(results, result{Name: nb.Name, OldNsOp: oldNs, NewNsOp: newNs, Note: "missing ns/op; skipped"})
			continue
		}
		r := result{Name: nb.Name, OldNsOp: oldNs, NewNsOp: newNs, Ratio: newNs / oldNs}
		if oldNs < floor {
			r.Note = "below noise floor; not gated"
		} else {
			r.Regression = r.Ratio > 1+threshold
		}
		results = append(results, r)
	}
	for _, ob := range oldSnap.Benchmarks {
		if !seen[ob.Name] {
			results = append(results, result{Name: ob.Name, OldNsOp: ob.Metrics["ns/op"], Note: "dropped from new snapshot"})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

func load(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return snapshot{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}

func run(args []string, out *os.File) (failed bool, err error) {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "allowed fractional ns/op slowdown before failing")
	floor := fs.Float64("floor", 1000, "baseline ns/op below which a benchmark is not gated")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("usage: benchgate [-threshold 0.20] [-floor 1000] OLD.json NEW.json")
	}
	oldSnap, err := load(fs.Arg(0))
	if err != nil {
		return false, err
	}
	newSnap, err := load(fs.Arg(1))
	if err != nil {
		return false, err
	}

	results := compare(oldSnap, newSnap, *threshold, *floor)
	fmt.Fprintf(out, "benchgate: %s (%s) vs %s (%s), threshold +%.0f%%\n",
		fs.Arg(0), oldSnap.Generated, fs.Arg(1), newSnap.Generated, *threshold*100)
	for _, r := range results {
		switch {
		case r.Note != "" && r.Ratio != 0:
			fmt.Fprintf(out, "  ~ %-40s %12.0f → %12.0f ns/op  (%+.1f%%)  %s\n",
				r.Name, r.OldNsOp, r.NewNsOp, (r.Ratio-1)*100, r.Note)
		case r.Note != "":
			fmt.Fprintf(out, "  ~ %-40s %s\n", r.Name, r.Note)
		case r.Regression:
			failed = true
			fmt.Fprintf(out, "  ✗ %-40s %12.0f → %12.0f ns/op  (%+.1f%%)\n",
				r.Name, r.OldNsOp, r.NewNsOp, (r.Ratio-1)*100)
		default:
			fmt.Fprintf(out, "  ✓ %-40s %12.0f → %12.0f ns/op  (%+.1f%%)\n",
				r.Name, r.OldNsOp, r.NewNsOp, (r.Ratio-1)*100)
		}
	}
	if failed {
		fmt.Fprintf(out, "benchgate: FAIL — at least one benchmark slowed by more than %.0f%%\n", *threshold*100)
	} else {
		fmt.Fprintln(out, "benchgate: ok")
	}
	return failed, nil
}

func main() {
	failed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
