package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(pairs map[string]float64) snapshot {
	s := snapshot{Generated: "t0"}
	for name, ns := range pairs {
		s.Benchmarks = append(s.Benchmarks, benchmark{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns},
		})
	}
	return s
}

func TestCompareVerdicts(t *testing.T) {
	oldSnap := snap(map[string]float64{
		"Fast":    2000,
		"Slower":  2000,
		"Limit":   2000,
		"Jitter":  100, // sub-floor baseline: tracked, never gated
		"Dropped": 2000,
		"Zero":    0,
	})
	newSnap := snap(map[string]float64{
		"Fast":   1600, // improvement
		"Slower": 2500, // +25% → regression at 20% threshold
		"Limit":  2400, // exactly +20% → allowed (strictly-above fails)
		"Jitter": 900,  // +800%, but below the 1000 ns floor
		"Added":  50,   // no baseline
		"Zero":   10,   // unusable baseline
	})
	byName := make(map[string]result)
	for _, r := range compare(oldSnap, newSnap, 0.20, 1000) {
		byName[r.Name] = r
	}
	if len(byName) != 7 {
		t.Fatalf("got %d results, want 7: %v", len(byName), byName)
	}
	for name, wantRegression := range map[string]bool{
		"Fast": false, "Slower": true, "Limit": false,
	} {
		r := byName[name]
		if r.Regression != wantRegression || r.Note != "" {
			t.Fatalf("%s: regression=%v note=%q, want regression=%v", name, r.Regression, r.Note, wantRegression)
		}
	}
	for name, wantNote := range map[string]string{
		"Jitter":  "below noise floor; not gated",
		"Added":   "new benchmark (no baseline)",
		"Dropped": "dropped from new snapshot",
		"Zero":    "missing ns/op; skipped",
	} {
		r := byName[name]
		if r.Note != wantNote || r.Regression {
			t.Fatalf("%s: regression=%v note=%q, want note=%q", name, r.Regression, r.Note, wantNote)
		}
	}
}

func writeSnap(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// End-to-end over real files, in the exact JSON shape bench.sh emits.
func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", `{
  "generated": "2026-01-01T00:00:00Z",
  "benchmarks": [
    {"name": "A", "iterations": 1, "metrics": {"ns/op": 1000, "quality": 0.9}},
    {"name": "B", "iterations": 100, "metrics": {"ns/op": 2000}}
  ]
}`)
	okPath := writeSnap(t, dir, "ok.json", `{
  "generated": "2026-01-02T00:00:00Z",
  "benchmarks": [
    {"name": "A", "iterations": 1, "metrics": {"ns/op": 1100}},
    {"name": "B", "iterations": 100, "metrics": {"ns/op": 1900}}
  ]
}`)
	badPath := writeSnap(t, dir, "bad.json", `{
  "generated": "2026-01-02T00:00:00Z",
  "benchmarks": [
    {"name": "A", "iterations": 1, "metrics": {"ns/op": 1300}},
    {"name": "B", "iterations": 100, "metrics": {"ns/op": 1900}}
  ]
}`)

	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()

	if failed, err := run([]string{oldPath, okPath}, null); err != nil || failed {
		t.Fatalf("within-threshold snapshot: failed=%v err=%v", failed, err)
	}
	if failed, err := run([]string{oldPath, badPath}, null); err != nil || !failed {
		t.Fatalf("+30%% snapshot must fail the gate: failed=%v err=%v", failed, err)
	}
	// A looser threshold lets the same snapshot through.
	if failed, err := run([]string{"-threshold", "0.5", oldPath, badPath}, null); err != nil || failed {
		t.Fatalf("+30%% under a 50%% threshold: failed=%v err=%v", failed, err)
	}

	// One-sided entries: a benchmark that first appears in the new
	// snapshot (however slow) is reported but can never fail the gate —
	// that is what lets a new benchmark land in the same PR as its first
	// snapshot. A dropped benchmark is likewise report-only.
	newBenchPath := writeSnap(t, dir, "newbench.json", `{
  "generated": "2026-01-02T00:00:00Z",
  "benchmarks": [
    {"name": "A", "iterations": 1, "metrics": {"ns/op": 1000}},
    {"name": "Fluid10MViewers", "iterations": 1, "metrics": {"ns/op": 5000000000}}
  ]
}`)
	if failed, err := run([]string{oldPath, newBenchPath}, null); err != nil || failed {
		t.Fatalf("snapshot adding + dropping benchmarks must pass one-sided: failed=%v err=%v", failed, err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	empty := writeSnap(t, dir, "empty.json", `{"generated": "t", "benchmarks": []}`)
	garbled := writeSnap(t, dir, "garbled.json", `not json`)
	good := writeSnap(t, dir, "good.json", `{
  "generated": "t", "benchmarks": [{"name": "A", "iterations": 1, "metrics": {"ns/op": 1}}]
}`)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()

	for _, args := range [][]string{
		{good},
		{good, good, good},
		{filepath.Join(dir, "missing.json"), good},
		{good, empty},
		{garbled, good},
	} {
		if _, err := run(args, null); err == nil {
			t.Fatalf("run(%v): expected error", args)
		} else if strings.Contains(err.Error(), "panic") {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}
