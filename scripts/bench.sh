#!/usr/bin/env bash
# Runs the key benchmarks and emits a machine-readable BENCH_PR10.json so
# the perf trajectory is tracked across PRs (earlier BENCH_PR*.json files
# stay committed as baselines). CI runs this and then gates the result
# against the previous snapshot with scripts/benchgate; run locally with
# `make bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Every bench runs -count=3 at a fixed -benchtime and the JSON keeps the
# FASTEST of the three samples per benchmark. Host noise on shared
# runners (CPU steal, scheduler jitter) is strictly additive — it only
# ever makes a sample slower — so min-of-N converges on the true cost
# while a single draw can land 30-60% high and trip the regression gate
# on untouched code. Holding -benchtime fixed keeps per-iteration
# amortization identical across snapshots; only the sampling changed.

# Full-stack scale and throughput benches (root package): one iteration
# each is enough — they are multi-second, domain-metric-reporting runs.
go test -run '^$' -bench 'BenchmarkFluidMillionViewers$|BenchmarkFluid10MViewers|BenchmarkFluid100MViewers|BenchmarkEventParallelChannels|BenchmarkSweep3x3$|BenchmarkResilienceDay$' \
    -benchtime 1x -count=3 . | tee -a "$TMP"

# Solver benches are sub-millisecond: a single iteration is all warm-up
# jitter, so give them enough rounds for a stable ns/op.
go test -run '^$' -bench 'BenchmarkQueueingSolve$|BenchmarkP2PSolve$' \
    -benchtime 100x -count=3 . | tee -a "$TMP"

# Hot-path micro benches: enough iterations for stable ns/op and the
# allocs/op guard to mean something.
go test -run '^$' -bench 'BenchmarkRebalancePeers$' -benchtime 2000x -count=3 ./internal/sim | tee -a "$TMP"

# Control-path benches: plans/s per provisioning policy and the billing
# ledger's accrual rate.
go test -run '^$' -bench 'BenchmarkPolicyPlan' -benchtime 200x -count=3 ./internal/provision | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkLedgerAccrual$' -benchtime 5000x -count=3 ./internal/cloud | tee -a "$TMP"

# Convert `go test -bench` lines into JSON, keeping the fastest of the
# -count samples for each benchmark (see the noise note above):
#   BenchmarkX-8  20  713 ns/op  0 B/op  0 allocs/op  4.2 quality
# → {"name":"X","iterations":20,"metrics":{"ns/op":713,...}}
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""
    out = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2)
    sep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        out = out sprintf("%s\"%s\": %s", sep, $(i + 1), $i)
        if ($(i + 1) == "ns/op") ns = $i + 0
        sep = ", "
    }
    out = out "}}"
    if (!(name in best)) {
        order[n++] = name
        best[name] = ns
        lines[name] = out
    } else if (ns != "" && ns < best[name]) {
        best[name] = ns
        lines[name] = out
    }
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", lines[order[i]], (i + 1 < n ? "," : "")
    printf "  ]\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT"
