package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"cloudmedia/internal/analysis"
)

// vetConfig is the package-unit description the go command hands a
// -vettool (the same JSON x/tools' unitchecker consumes). PackageFile
// maps each dependency's import path to its export data; ImportMap
// canonicalizes vendored import paths.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes the single package described by the config file,
// printing diagnostics in vet's file:line:col format. The go command
// requires the facts file named by VetxOutput to exist afterwards; the
// suite is fact-free, so an empty file is written.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cloudmedialint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test variants are out of scope, as in the standalone loader: the
	// invariants guard production code, and tests legitimately discard
	// errors they have just arranged. The go command compiles test
	// variants as units whose file list includes _test.go files (or
	// under a ".test"-suffixed import path for the generated main).
	if strings.Contains(cfg.ImportPath, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			return 0
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	pkg := &analysis.Package{
		PkgPath:   cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
