// Command cloudmedialint runs the repo's custom static analyzers (see
// internal/analysis): determinism, boundary, noloss, and hotpath. It is
// the teeth behind `make lint`.
//
// Standalone (the usual entry point, from anywhere in the module):
//
//	go run ./cmd/cloudmedialint ./...
//	cloudmedialint ./internal/fluid ./internal/sim
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go vet -vettool=$(which cloudmedialint) ./...
//
// Exit status is 1 when any diagnostic is reported, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudmedia/internal/analysis"
)

func main() {
	// go vet probes its tool with -V=full (version for the build cache)
	// and -flags (supported analyzer flags, as a JSON list — this suite
	// has none) before handing it package config files; the unit
	// protocol itself is handled in vet.go.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("cloudmedialint version cloudmedia-lint-1\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cloudmedialint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(standalone(flag.Args()))
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cloudmedialint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
