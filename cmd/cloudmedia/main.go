// Command cloudmedia runs the CloudMedia reproduction experiments: every
// table and figure of the paper's evaluation section, at a configurable
// scale and architecture.
//
// Usage:
//
//	cloudmedia -exp fig4                          # one experiment
//	cloudmedia -exp all -hours 12                 # the whole suite, shorter horizon
//	cloudmedia -list                              # show available experiment IDs
//	cloudmedia -exp timeline -mode cloud-assisted # hourly view of a chosen architecture
//	cloudmedia -exp fig10 -scale 10 -csv          # paper-scale run, CSV output
//
// The figure experiments pin the architectures they are defined over
// (fig4 always compares client-server against P2P, and so on); -mode
// drives the mode-sensitive entries, most usefully "timeline".
//
// The sweep subcommand runs whole scenario families concurrently on a
// worker pool (cloudmedia/pkg/sweep) and emits machine-readable results:
//
//	cloudmedia sweep -axis mode=cs,p2p,cloudmedia -axis vm-budget=50,100,200 \
//	    -workers 4 -hours 6 -output sweep.csv
//	cloudmedia sweep -axis uplink-ratio=0.9,1.0,1.2 -aggregate # Fig. 11 family
//
// The trace subcommand generates synthetic demand traces or records a
// run's realized arrivals into a replayable one; -trace feeds a trace
// file back into any experiment:
//
//	cloudmedia trace gen -kind weekweekend -days 14 -o fortnight.csv
//	cloudmedia trace record -mode cloud-assisted -hours 24 -o day.csv
//	cloudmedia -exp timeline -trace day.csv
//
// The serve subcommand runs one scenario as a live control plane, paced
// against the wall clock with a time-compression factor, with demand
// replayed from a trace or streamed over stdin and a /metrics + /state
// observability endpoint; SIGINT drains gracefully:
//
//	cloudmedia serve -trace day.csv -time-scale 24 -metrics :9090
//	cloudmedia serve -stdin -channels 6 -time-scale 3600 < live.csv
//
// The command is a thin flag wrapper around the public cloudmedia/pkg/paper,
// cloudmedia/pkg/sweep, cloudmedia/pkg/trace, and cloudmedia/pkg/serve
// packages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cloudmedia/pkg/paper"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmedia:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "sweep" {
		return runSweep(args[1:])
	}
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:])
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], os.Stdout)
	}
	fs := flag.NewFlagSet("cloudmedia", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment ID to run (or 'all')")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		mode     = fs.String("mode", "client-server", "architecture under test: client-server, p2p, or cloud-assisted")
		fidelity = fs.String("fidelity", "event", "simulation engine: event (per-viewer) or fluid (aggregate cohorts, million-viewer scale)")
		policy   = fs.String("policy", "greedy", "provisioning policy: greedy, lookahead, lookahead-hedged, oracle, or staticpeak")
		pricing  = fs.String("pricing", "on-demand", "cloud billing plan: on-demand, reserved, or spot")
		faultIn  = fs.String("fault", "", "fault schedule: a preset ("+strings.Join(simulate.FaultPresetNames(), ", ")+") or events like outage@19.5h+2h,preempt@20h:0.6,degrade@18h+3h:0.5")
		scale    = fs.Float64("scale", 2, "workload scale (1 ≈ 250 concurrent users, 10 ≈ paper scale)")
		traceIn  = fs.String("trace", "", "demand trace file (.csv or .json) replacing the parametric workload; see 'cloudmedia trace'")
		hours    = fs.Float64("hours", 24, "simulated duration per run, hours")
		seed     = fs.Int64("seed", 42, "random seed")
		workers  = fs.Int("workers", 0, "engine worker pool size for parallel channel stepping; 0 = GOMAXPROCS (results are identical for any value)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON   = fs.Bool("json", false, "emit JSON instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(paper.IDs(), "\n"))
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}
	m, err := simulate.ParseMode(*mode)
	if err != nil {
		return err
	}
	f, err := simulate.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}
	pol, err := simulate.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	pri, err := simulate.ParsePricing(*pricing)
	if err != nil {
		return err
	}
	flt, err := simulate.ParseFault(*faultIn)
	if err != nil {
		return err
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()

	ids := []string{*exp}
	if *exp == "all" {
		ids = paper.IDs()
	}
	opts := paper.Options{Mode: m, Fidelity: f, Policy: pol, Pricing: pri, Faults: flt, Scale: *scale, Hours: *hours, Seed: *seed, Workers: *workers}
	if *traceIn != "" {
		tr, err := trace.ReadFile(*traceIn)
		if err != nil {
			return err
		}
		opts.Source = tr
	}
	for _, id := range ids {
		res, err := paper.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asJSON {
			if err := renderJSON(res); err != nil {
				return err
			}
			continue
		}
		if err := render(res, *csv); err != nil {
			return err
		}
	}
	return nil
}

// renderJSON emits the result as one JSON document per experiment.
func renderJSON(res *paper.Result) error {
	type jsonTable struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	doc := struct {
		ID      string             `json:"id"`
		Summary map[string]float64 `json:"summary"`
		Tables  []jsonTable        `json:"tables"`
	}{ID: res.ID, Summary: res.Summary}
	for _, tbl := range res.Tables {
		doc.Tables = append(doc.Tables, jsonTable{Title: tbl.Title, Headers: tbl.Headers, Rows: tbl.Rows})
	}
	return encodeJSON(os.Stdout, doc)
}

// encodeJSON writes v as indented JSON.
func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func render(res *paper.Result, csv bool) error {
	for _, tbl := range res.Tables {
		var err error
		if csv {
			err = tbl.RenderCSV(os.Stdout)
		} else {
			err = tbl.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
		fmt.Println()
	}
	if len(res.Summary) > 0 {
		keys := make([]string, 0, len(res.Summary))
		for k := range res.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("# %s summary\n", res.ID)
		for _, k := range keys {
			fmt.Printf("%-28s %.4g\n", k, res.Summary[k])
		}
		fmt.Println()
	}
	return nil
}
