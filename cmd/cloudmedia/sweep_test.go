package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/sweep"
)

func TestSweepSubcommandCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	err := run([]string{"sweep",
		"-axis", "mode=cs,cloudmedia",
		"-axis", "vm-budget=50,100",
		"-workers", "4", "-hours", "1", "-output", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want header + 4 cells:\n%s", len(lines), data)
	}
	if lines[0] != "cell,mode,vm_budget,seed,hours,intervals,mean_quality,mean_reserved_mbps,vm_cost_usd,storage_cost_usd,reserved_usd,on_demand_usd,upfront_usd,total_bill_usd,final_users,error" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestSweepSubcommandJSONByExtension(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	err := run([]string{"sweep", "-axis", "vm-budget=50,100", "-hours", "1", "-output", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []sweep.Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("output is not a JSON result list: %v", err)
	}
	if len(results) != 2 || results[0].Report == nil {
		t.Errorf("results = %+v", results)
	}
}

func TestSweepSubcommandDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		out := filepath.Join(t.TempDir(), "sweep.csv")
		err := run([]string{"sweep",
			"-axis", "mode=cs,p2p,cloudmedia", "-axis", "vm-budget=50,100,200",
			"-workers", workers, "-hours", "1", "-output", out,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if one, four := render("1"), render("4"); one != four {
		t.Errorf("CSV differs between worker counts:\n--- 1 ---\n%s--- 4 ---\n%s", one, four)
	}
}

func TestSweepSubcommandErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad axis name":       {"sweep", "-axis", "warp=1,2"},
		"malformed axis":      {"sweep", "-axis", "vm-budget"},
		"bad axis value":      {"sweep", "-axis", "vm-budget=cheap"},
		"bad mode value":      {"sweep", "-axis", "mode=quantum"},
		"bad predictor":       {"sweep", "-axis", "predictor=oracle"},
		"bad base mode":       {"sweep", "-mode", "quantum"},
		"bad format":          {"sweep", "-format", "xml", "-hours", "1"},
		"bad flag":            {"sweep", "-nope"},
		"duplicate axis":      {"sweep", "-axis", "chunks=4", "-axis", "chunks=8"},
		"duplicate value":     {"sweep", "-axis", "channels=4,4"},
		"duplicate predictor": {"sweep", "-axis", "predictor=last,last"},
		"unwritable output":   {"sweep", "-hours", "1", "-output", "/nonexistent-dir/x.csv"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestParseAxisCoversEveryName(t *testing.T) {
	dir := t.TempDir()
	tracePaths := make([]string, 2)
	for i := range tracePaths {
		tracePaths[i] = filepath.Join(dir, fmt.Sprintf("t%d.csv", i))
		data := fmt.Sprintf("time_s,ch0\n0,0.%d\n3600,0.%d\n", i+1, i+2)
		if err := os.WriteFile(tracePaths[i], []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	specs := map[string]string{
		"trace":             "trace=" + strings.Join(tracePaths, ","),
		"mode":              "mode=cs,p2p",
		"fidelity":          "fidelity=event,fluid",
		"policy":            "policy=greedy,lookahead,oracle,staticpeak",
		"pricing":           "pricing=on-demand,reserved,spot",
		"fault":             "fault=none,preempt-peak,outage@19.5h+2h",
		"spot-rate":         "spot-rate=0.3,0.6",
		"spot-interruption": "spot-interruption=0.1,0.5",
		"viewer-scale":      "viewer-scale=250,1000000",
		"vm-budget":         "vm-budget=50,100",
		"storage-budget":    "storage-budget=1,2",
		"uplink-ratio":      "uplink-ratio=0.9,1.2",
		"chunks":            "chunks=4,8",
		"channels":          "channels=4,6",
		"predictor":         "predictor=last,ewma,peak,diurnal",
	}
	if len(specs) != len(axisNames) {
		t.Fatalf("test covers %d axes, CLI advertises %d", len(specs), len(axisNames))
	}
	for name, spec := range specs {
		ax, err := parseAxis(spec)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(ax.Points) < 2 {
			t.Errorf("%s: %d points", name, len(ax.Points))
		}
		// Every point must actually move the scenario it is applied to.
		base := simulate.Default(simulate.P2P, 1)
		for _, pt := range ax.Points {
			sc := base.Clone()
			pt.Set(&sc)
		}
	}
}
