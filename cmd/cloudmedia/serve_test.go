package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeSimulatedClock drives the subcommand end to end under the
// deterministic clock: generate a trace, serve it, check the report.
func TestServeSimulatedClock(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "demand.csv")
	if err := run([]string{"trace", "gen", "-kind", "diurnal", "-channels", "3", "-hours", "6", "-step", "1800", "-o", tr}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	var sb strings.Builder
	err := runServe([]string{
		"-trace", tr, "-hours", "3", "-fidelity", "fluid",
		"-clock", "sim", "-time-scale", "24",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"serving cloud-assisted at 24x", "served 3.00 sim-hours", "intervals", "bill $"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

// TestServeRealClockMetrics runs a heavily compressed real-clock serve
// with the metrics endpoint up, scraping it while the run is in flight.
func TestServeRealClockMetrics(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "demand.csv")
	if err := run([]string{"trace", "gen", "-kind", "diurnal", "-channels", "3", "-hours", "8", "-step", "1800", "-o", tr}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	const addr = "127.0.0.1:39414"
	done := make(chan error, 1)
	var sb strings.Builder
	go func() {
		done <- runServe([]string{
			"-trace", tr, "-hours", "6", "-fidelity", "fluid",
			"-clock", "real", "-time-scale", "40000", "-metrics", addr,
		}, &sb)
	}()
	var body string
	deadline := time.Now().Add(10 * time.Second)
	for body == "" {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				body = string(b)
			}
		}
		if time.Now().After(deadline) {
			select {
			case err := <-done:
				t.Fatalf("serve exited before metrics came up: %v\n%s", err, sb.String())
			default:
				t.Fatal("metrics endpoint never came up")
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(body, "cloudmedia_up 1") {
		t.Errorf("/metrics missing cloudmedia_up:\n%.400s", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "served 6.00 sim-hours") {
		t.Errorf("final report missing:\n%s", sb.String())
	}
}

// TestServeStdinFeed pipes the line protocol through -stdin.
func TestServeStdinFeed(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = orig }()
	go func() {
		_, _ = w.WriteString("time_s,ch0,ch1\n0,0.3,0.1\n14400,0.3,0.1\n")
		w.Close()
	}()
	var sb strings.Builder
	err = runServe([]string{
		"-stdin", "-channels", "2", "-max-rate", "5",
		"-hours", "2", "-fidelity", "fluid", "-clock", "sim",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live feed: 2 samples") {
		t.Errorf("feed stats missing:\n%s", sb.String())
	}
}

func TestServeErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad clock":        {"-clock", "lunar"},
		"bad mode":         {"-mode", "edge"},
		"bad policy":       {"-policy", "vibes"},
		"trace and stdin":  {"-trace", "x.csv", "-stdin"},
		"bad time scale":   {"-time-scale", "-2"},
		"missing trace":    {"-trace", "/nonexistent/t.csv"},
		"bad flag":         {"-nope"},
		"bad stdin params": {"-stdin", "-channels", "0"},
	} {
		if err := runServe(args, io.Discard); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}
