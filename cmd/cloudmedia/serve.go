package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"cloudmedia"
	"cloudmedia/pkg/serve"
	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

// runServe implements the serve subcommand: a wall-clock-paced live run
// of one scenario with streaming metrics. SIGINT/SIGTERM drain the run
// gracefully and still print the final report.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cloudmedia serve", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "cloud-assisted", "architecture to serve: client-server, p2p, or cloud-assisted")
		fidelity  = fs.String("fidelity", "event", "simulation engine: event or fluid")
		policy    = fs.String("policy", "greedy", "provisioning policy: greedy, lookahead, oracle, or staticpeak")
		pricing   = fs.String("pricing", "on-demand", "cloud billing plan: on-demand or reserved")
		hours     = fs.Float64("hours", 24, "simulated duration, hours")
		scale     = fs.Float64("scale", 2, "workload scale (parametric workload only)")
		seed      = fs.Int64("seed", 42, "random seed")
		traceIn   = fs.String("trace", "", "demand trace file (.csv or .json) to replay at compressed speed")
		stdin     = fs.Bool("stdin", false, "ingest live demand from stdin in the trace-CSV line protocol (time_s,rate0,…)")
		channels  = fs.Int("channels", 6, "channel count for -stdin ingestion")
		maxRate   = fs.Float64("max-rate", 10, "per-channel arrival-rate ceiling (users/s) for -stdin ingestion")
		workers   = fs.Int("workers", 0, "engine worker pool size for parallel channel stepping; 0 = GOMAXPROCS (results are identical for any value)")
		timeScale = fs.Float64("time-scale", 1, "time compression: simulated seconds per real second (24 replays a day in an hour)")
		clockSpec = fs.String("clock", "real", "pacing clock: real (wall-clock) or simulated (full speed)")
		metrics   = fs.String("metrics", "", "address for the /metrics, /healthz, /state endpoint, e.g. :9090 (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := simulate.ParseMode(*mode)
	if err != nil {
		return err
	}
	f, err := simulate.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}
	pol, err := simulate.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	pri, err := simulate.ParsePricing(*pricing)
	if err != nil {
		return err
	}
	clock, err := simulate.ParseClock(*clockSpec)
	if err != nil {
		return err
	}
	if *traceIn != "" && *stdin {
		return fmt.Errorf("-trace and -stdin are mutually exclusive")
	}

	opts := []cloudmedia.Option{
		cloudmedia.WithFidelity(f),
		cloudmedia.WithPolicy(pol),
		cloudmedia.WithPricing(pri),
		cloudmedia.WithHours(*hours),
		cloudmedia.WithSeed(*seed),
		cloudmedia.WithWorkers(*workers),
		cloudmedia.WithClock(clock),
		cloudmedia.WithTimeScale(*timeScale),
	}
	if *metrics != "" {
		opts = append(opts, cloudmedia.WithMetricsAddr(*metrics))
	}

	// The demand side: a replayed trace, a live stdin feed, or the scaled
	// parametric workload.
	var feed *serve.LiveSource
	switch {
	case *traceIn != "":
		tr, err := trace.ReadFile(*traceIn)
		if err != nil {
			return err
		}
		opts = append(opts, cloudmedia.WithTrace(tr))
	case *stdin:
		feed, err = serve.NewLiveSource(*channels, *maxRate)
		if err != nil {
			return err
		}
		opts = append(opts, cloudmedia.WithWorkloadSource(feed))
	default:
		opts = append(opts, cloudmedia.WithScale(*scale))
	}

	sc, err := cloudmedia.NewScenario(m, opts...)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if feed != nil {
		if clock == simulate.ClockSimulated {
			// Full-speed runs finish faster than any live feed: drain stdin
			// first so the run sees the complete series (batch semantics).
			if err := feed.Feed(ctx, os.Stdin); err != nil {
				return fmt.Errorf("stdin feed: %w", err)
			}
		} else {
			go func() {
				if err := feed.Feed(ctx, os.Stdin); err != nil && ctx.Err() == nil {
					fmt.Fprintln(os.Stderr, "cloudmedia serve: stdin feed:", err)
				}
			}()
		}
	}

	if *metrics != "" {
		fmt.Fprintf(out, "serving %s at %gx on %s (SIGINT drains)\n", m, *timeScale, *metrics)
	} else {
		fmt.Fprintf(out, "serving %s at %gx (SIGINT drains)\n", m, *timeScale)
	}
	rep, err := serve.Run(ctx, sc)
	if err != nil && err != context.Canceled {
		return err
	}
	if err == context.Canceled {
		fmt.Fprintln(out, "interrupted: drained gracefully")
	}
	printServeReport(out, rep, feed)
	return nil
}

func printServeReport(out io.Writer, rep *serve.Report, feed *serve.LiveSource) {
	if rep == nil {
		return
	}
	fmt.Fprintf(out, "served %.2f sim-hours in %.1f real-seconds (achieved %.0fx)\n",
		rep.Hours, rep.RealSeconds, rep.AchievedTimeScale)
	fmt.Fprintf(out, "intervals %d  mean quality %.4f  mean reserved %.1f Mbps  final viewers %d\n",
		rep.Intervals, rep.MeanQuality, rep.MeanReservedMbps, rep.FinalUsers)
	fmt.Fprintf(out, "bill $%.2f (vm $%.2f + storage $%.2f; reserved $%.2f, on-demand $%.2f, upfront $%.2f)\n",
		rep.Bill.TotalUSD(), rep.VMCostTotal, rep.StorageCostTotal,
		rep.Bill.ReservedUSD, rep.Bill.OnDemandUSD, rep.Bill.UpfrontUSD)
	if feed != nil {
		fmt.Fprintf(out, "live feed: %d samples retained, %d clamped, %d dropped\n",
			feed.Samples(), feed.Clamped(), feed.Dropped())
	}
}
