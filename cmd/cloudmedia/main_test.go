package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -exp: want error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestRunStaticExperiments(t *testing.T) {
	for _, id := range []string{"tab2", "tab3", "vmlat", "storcost"} {
		if err := run([]string{"-exp", id}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRunStaticExperimentCSV(t *testing.T) {
	if err := run([]string{"-exp", "tab2", "-csv"}); err != nil {
		t.Fatalf("tab2 -csv: %v", err)
	}
}

func TestRunShortFigure(t *testing.T) {
	// A tiny figure run proves the simulator path end to end from the CLI.
	if err := run([]string{"-exp", "fig6", "-scale", "1", "-hours", "2"}); err != nil {
		t.Fatalf("fig6: %v", err)
	}
}

func TestRunModeFlag(t *testing.T) {
	for _, mode := range []string{"p2p", "cloud-assisted"} {
		if err := run([]string{"-exp", "fig6", "-mode", mode, "-scale", "1", "-hours", "1"}); err != nil {
			t.Errorf("fig6 -mode %s: %v", mode, err)
		}
	}
}

func TestRunBadMode(t *testing.T) {
	if err := run([]string{"-exp", "fig6", "-mode", "quantum"}); err == nil {
		t.Error("bad -mode: want error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestRunStaticExperimentJSON(t *testing.T) {
	if err := run([]string{"-exp", "tab3", "-json"}); err != nil {
		t.Fatalf("tab3 -json: %v", err)
	}
}
