package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceGenKinds drives every generator kind through the subcommand
// and re-reads the artifacts through the codec.
func TestTraceGenKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"diurnal", "weekweekend", "drift", "launchdecay"} {
		for _, ext := range []string{".csv", ".json"} {
			out := filepath.Join(dir, kind+ext)
			args := []string{"trace", "gen", "-kind", kind, "-channels", "3", "-hours", "6", "-step", "1800", "-o", out}
			if kind == "weekweekend" {
				args = append(args, "-days", "2")
			}
			if err := run(args); err != nil {
				t.Fatalf("gen %s%s: %v", kind, ext, err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("gen %s%s wrote nothing", kind, ext)
			}
		}
	}
}

// TestTraceRecordThenReplay closes the CLI loop: record a short run,
// then feed the artifact back through -trace.
func TestTraceRecordThenReplay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rec.csv")
	if err := run([]string{"trace", "record", "-hours", "2", "-step", "1800", "-o", out}); err != nil {
		t.Fatalf("record: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,ch0") {
		t.Fatalf("recorded trace lacks the canonical header: %q", data[:20])
	}
	if err := run([]string{"-exp", "timeline", "-hours", "1", "-trace", out}); err != nil {
		t.Fatalf("replay via -trace: %v", err)
	}
}

func TestTraceSubcommandErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no subcommand":  {"trace"},
		"unknown sub":    {"trace", "replay"},
		"unknown kind":   {"trace", "gen", "-kind", "chaos"},
		"bad extension":  {"trace", "gen", "-o", "x.xml"},
		"bad gen flag":   {"trace", "gen", "-nope"},
		"missing replay": {"-exp", "timeline", "-trace", "/nonexistent/x.csv"},
		"record input":   {"trace", "record", "-trace", "/nonexistent/x.csv"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
