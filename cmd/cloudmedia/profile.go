package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts CPU profiling and/or arranges a heap snapshot,
// returning a stop function the caller must defer. Empty paths disable the
// corresponding profile; the stop function is always safe to call.
//
// The flags exist so the multi-second scale runs (fluid million-viewer
// days, paper-scale sweeps) can be profiled straight from the CLI:
//
//	cloudmedia -exp timeline -fidelity fluid -cpuprofile cpu.out
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cloudmedia: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cloudmedia: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cloudmedia: memprofile:", err)
			}
		}
	}, nil
}
