package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/trace"
)

// runTrace dispatches the `cloudmedia trace` subcommand: generate
// synthetic demand traces or record a run's realized arrivals into one.
func runTrace(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cloudmedia trace gen|record [flags] (see cloudmedia trace gen -h)")
	}
	switch args[0] {
	case "gen":
		return runTraceGen(args[1:])
	case "record":
		return runTraceRecord(args[1:])
	default:
		return fmt.Errorf("unknown trace subcommand %q (want gen or record)", args[0])
	}
}

// runTraceGen is `cloudmedia trace gen`: synthesize a demand trace and
// write it as CSV or JSON.
func runTraceGen(args []string) error {
	fs := flag.NewFlagSet("cloudmedia trace gen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "diurnal", "generator: diurnal (the paper's parametric day), weekweekend, drift, or launchdecay")
		channels = fs.Int("channels", 6, "number of channels")
		hours    = fs.Float64("hours", 24, "trace duration, hours (gen kinds weekweekend use -days instead)")
		days     = fs.Int("days", 7, "weekweekend: number of days")
		step     = fs.Float64("step", 900, "sample step, seconds")
		scale    = fs.Float64("scale", 1, "workload scale (1 ≈ 250 concurrent viewers)")
		weekend  = fs.Float64("weekend-factor", 1.6, "weekweekend: weekend intensity multiplier")
		period   = fs.Float64("drift-period", 6, "drift: hours per popularity-rank rotation")
		ramp     = fs.Float64("ramp", 2, "launchdecay: ramp time constant, hours")
		halflife = fs.Float64("half-life", 12, "launchdecay: decay half-life, hours")
		stagger  = fs.Float64("stagger", 3, "launchdecay: hours between channel launches")
		output   = fs.String("o", "trace.csv", "output path; .csv or .json selects the codec")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cloudmedia trace gen -kind diurnal|weekweekend|drift|launchdecay [flags]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nexample:\n  cloudmedia trace gen -kind weekweekend -days 14 -weekend-factor 2 -o fortnight.csv\n")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl := simulate.DefaultWorkload()
	wl.Channels = *channels
	wl.BaseArrivalRate = 0.6 * *scale // the Default scenario's rate-per-scale

	var (
		tr  *trace.Trace
		err error
	)
	switch *kind {
	case "diurnal":
		tr, err = trace.FromSource(wl.Source(), *hours, *step)
	case "weekweekend":
		tr, err = trace.WeekdayWeekend(wl, *days, *step, *weekend)
	case "drift":
		tr, err = trace.PopularityDrift(*channels, *hours, *step, wl.ZipfExponent, wl.BaseArrivalRate, *period)
	case "launchdecay":
		perChannel := wl.BaseArrivalRate / float64(*channels)
		tr, err = trace.LaunchDecay(*channels, *hours, *step, perChannel, *ramp, *halflife, *stagger)
	default:
		return fmt.Errorf("unknown trace kind %q (want diurnal, weekweekend, drift, or launchdecay)", *kind)
	}
	if err != nil {
		return err
	}
	if err := trace.WriteFile(*output, tr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d channels × %d samples over %.1f h\n",
		*output, tr.NumChannels(), len(tr.Times), tr.Duration()/3600)
	return nil
}

// runTraceRecord is `cloudmedia trace record`: run a scenario and write
// its realized arrivals as a replayable trace.
func runTraceRecord(args []string) error {
	fs := flag.NewFlagSet("cloudmedia trace record", flag.ContinueOnError)
	var (
		mode   = fs.String("mode", "client-server", "architecture under test: client-server, p2p, or cloud-assisted")
		scale  = fs.Float64("scale", 1, "workload scale")
		hours  = fs.Float64("hours", 24, "simulated duration, hours")
		seed   = fs.Int64("seed", 42, "random seed")
		step   = fs.Float64("step", 900, "recording bin width, seconds")
		input  = fs.String("trace", "", "optional input trace to replay while recording (record-of-replay)")
		output = fs.String("o", "recorded.csv", "output path; .csv or .json selects the codec")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cloudmedia trace record [flags]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nexample:\n  cloudmedia trace record -mode cloud-assisted -hours 24 -o day.csv\n")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := simulate.ParseMode(*mode)
	if err != nil {
		return err
	}
	sc := simulate.Default(m, *scale)
	sc.Hours = *hours
	sc.Seed = *seed
	if *input != "" {
		tr, err := trace.ReadFile(*input)
		if err != nil {
			return err
		}
		sc.Source = tr
	}
	channels := sc.Workload.Channels
	if sc.Source != nil {
		channels = sc.Source.NumChannels()
	}
	rec, err := trace.NewRecorder(channels, *step)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, err := sc.Run(ctx, simulate.OnArrivals(rec.Add))
	if err != nil && report == nil {
		return err
	}
	tr, terr := rec.Trace(report.Hours * 3600)
	if terr != nil {
		return terr
	}
	if werr := trace.WriteFile(*output, tr); werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d channels × %d samples over %.1f h (mean quality %.4f)\n",
		*output, tr.NumChannels(), len(tr.Times), tr.Duration()/3600, report.MeanQuality)
	return err // surfaces a cancelled run after saving the partial trace
}
