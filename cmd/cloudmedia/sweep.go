package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"cloudmedia/pkg/simulate"
	"cloudmedia/pkg/sweep"
	"cloudmedia/pkg/trace"
)

// axisFlags collects repeated -axis specs.
type axisFlags []string

func (a *axisFlags) String() string     { return strings.Join(*a, " ") }
func (a *axisFlags) Set(s string) error { *a = append(*a, s); return nil }

// runSweep is the `cloudmedia sweep` subcommand: expand a grid of derived
// scenarios and run them on a worker pool.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("cloudmedia sweep", flag.ContinueOnError)
	var axes axisFlags
	var (
		workers   = fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		output    = fs.String("output", "-", "output path ('-' = stdout); .json extension switches format")
		format    = fs.String("format", "", "output format: csv or json (default: by -output extension, else csv)")
		aggregate = fs.Bool("aggregate", false, "emit per-axis-value aggregates instead of per-cell rows")
		mode      = fs.String("mode", "client-server", "base architecture (swept axes override it)")
		scale     = fs.Float64("scale", 1, "workload scale of the base scenario")
		hours     = fs.Float64("hours", 6, "simulated duration per cell, hours")
		seed      = fs.Int64("seed", 42, "base random seed; per-cell seeds derive from it")
	)
	fs.Var(&axes, "axis", "swept axis as name=v1,v2,... (repeatable); axes: "+strings.Join(axisNames, ", "))
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cloudmedia sweep -axis name=v1,v2,... [-axis ...] [flags]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nexample:\n  cloudmedia sweep -axis mode=cs,p2p,cloudmedia -axis vm-budget=50,100,200 -workers 4 -output sweep.csv\n")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := simulate.ParseMode(*mode)
	if err != nil {
		return err
	}
	base := simulate.Default(m, *scale)
	base.Hours = *hours
	base.Seed = *seed

	grid := sweep.Grid{Base: base}
	if len(axes) == 0 {
		// Default family: the paper's three architectures.
		grid.Axes = append(grid.Axes, sweep.Modes(simulate.ClientServer, simulate.P2P, simulate.CloudAssisted))
	}
	for _, spec := range axes {
		ax, err := parseAxis(spec)
		if err != nil {
			return err
		}
		grid.Axes = append(grid.Axes, ax)
	}

	// Resolve the format and open the destination before running: a bad
	// -format or -output must fail in milliseconds, not after a
	// multi-hour sweep.
	outFormat := sweepFormat(*format, *output)
	if outFormat != "csv" && outFormat != "json" {
		return fmt.Errorf("unknown format %q (want csv or json)", outFormat)
	}
	w := io.Writer(os.Stdout)
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	// Ctrl-C cancels the sweep; the partial results gathered so far are
	// still written, so long sweeps degrade gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, runErr := sweep.Runner{Workers: *workers}.Run(ctx, grid)
	if runErr != nil && len(results) == 0 {
		return runErr
	}
	if err := emitSweep(w, results, outFormat, *aggregate); err != nil {
		return err
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted, %d/%d cells written: %w", len(results), countCells(grid), runErr)
	}
	return nil
}

func countCells(g sweep.Grid) int {
	cells, err := g.Cells()
	if err != nil {
		return 0
	}
	return len(cells)
}

// sweepFormat resolves the output format: explicit -format wins, then the
// -output extension, then CSV.
func sweepFormat(format, output string) string {
	if format != "" {
		return format
	}
	if strings.HasSuffix(output, ".json") {
		return "json"
	}
	return "csv"
}

func emitSweep(w io.Writer, results []sweep.Result, format string, aggregate bool) error {
	switch format {
	case "csv":
		if aggregate {
			return sweep.WriteAggregateCSV(w, sweep.Reduce(results))
		}
		return sweep.WriteCSV(w, results)
	case "json":
		if aggregate {
			return encodeJSON(w, sweep.Reduce(results))
		}
		return encodeJSON(w, results)
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
}

// axisNames lists the -axis spellings parseAxis accepts.
var axisNames = []string{"mode", "fidelity", "policy", "pricing", "fault", "spot-rate", "spot-interruption", "viewer-scale", "vm-budget", "storage-budget", "uplink-ratio", "chunks", "channels", "predictor", "trace"}

// parseAxis converts one -axis spec ("vm-budget=50,100,200") into an Axis.
func parseAxis(spec string) (sweep.Axis, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok || list == "" {
		return sweep.Axis{}, fmt.Errorf("axis %q: want name=v1,v2,...", spec)
	}
	values := strings.Split(list, ",")
	switch name {
	case "mode":
		var ms []simulate.Mode
		for _, v := range values {
			m, err := simulate.ParseMode(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			ms = append(ms, m)
		}
		return sweep.Modes(ms...), nil
	case "fidelity":
		var fids []simulate.Fidelity
		for _, v := range values {
			f, err := simulate.ParseFidelity(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			fids = append(fids, f)
		}
		return sweep.Fidelities(fids...), nil
	case "policy":
		var ps []simulate.Policy
		for _, v := range values {
			p, err := simulate.ParsePolicy(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			ps = append(ps, p)
		}
		return sweep.Policies(ps...), nil
	case "pricing":
		var ps []simulate.PricingPlan
		for _, v := range values {
			p, err := simulate.ParsePricing(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			ps = append(ps, p)
		}
		return sweep.Pricings(ps...), nil
	case "fault":
		// Values are fault specs (preset names or event lists, "none" for
		// the fault-free baseline); the spec spelling is the point label.
		named := make(map[string]*simulate.FaultSchedule, len(values))
		for _, v := range values {
			if _, dup := named[v]; dup {
				return sweep.Axis{}, fmt.Errorf("axis %s: duplicate value %q", name, v)
			}
			f, err := simulate.ParseFault(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			named[v] = f
		}
		return sweep.FaultScenarios(named), nil
	case "spot-rate":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.SpotDiscounts(fs...), nil
	case "spot-interruption":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.SpotInterruptionRates(fs...), nil
	case "viewer-scale":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.ViewerScales(fs...), nil
	case "vm-budget":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.VMBudgets(fs...), nil
	case "storage-budget":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.StorageBudgets(fs...), nil
	case "uplink-ratio":
		fs, err := parseFloats(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.UplinkRatios(fs...), nil
	case "chunks":
		is, err := parseInts(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.Chunks(is...), nil
	case "channels":
		is, err := parseInts(name, values)
		if err != nil {
			return sweep.Axis{}, err
		}
		return sweep.Channels(is...), nil
	case "trace":
		// Values are file paths; the point labels are the file basenames
		// (extension stripped), so sweep output stays readable.
		named := make(map[string]*trace.Trace, len(values))
		for _, v := range values {
			label := strings.TrimSuffix(filepath.Base(v), filepath.Ext(v))
			if _, dup := named[label]; dup {
				return sweep.Axis{}, fmt.Errorf("axis %s: duplicate trace label %q", name, label)
			}
			tr, err := trace.ReadFile(v)
			if err != nil {
				return sweep.Axis{}, fmt.Errorf("axis %s: %w", name, err)
			}
			named[label] = tr
		}
		return sweep.Traces(named), nil
	case "predictor":
		named := make(map[string]simulate.Predictor, len(values))
		for _, v := range values {
			// A map would silently collapse repeats; reject them like
			// every other axis does.
			if _, dup := named[v]; dup {
				return sweep.Axis{}, fmt.Errorf("axis %s: duplicate value %q", name, v)
			}
			p, err := predictorByName(v)
			if err != nil {
				return sweep.Axis{}, err
			}
			named[v] = p
		}
		return sweep.Predictors(named), nil
	default:
		return sweep.Axis{}, fmt.Errorf("unknown axis %q (want one of %s)", name, strings.Join(axisNames, ", "))
	}
}

// predictorByName maps CLI spellings onto the forecaster extension points
// of pkg/simulate, with the same defaults the ablation benchmarks use.
func predictorByName(name string) (simulate.Predictor, error) {
	switch name {
	case "last":
		return simulate.LastInterval{}, nil
	case "ewma":
		return simulate.EWMA{Alpha: 0.4}, nil
	case "peak":
		return simulate.PeakOfWindow{Window: 3}, nil
	case "diurnal":
		return simulate.DiurnalMemory{Period: 24}, nil
	default:
		return nil, fmt.Errorf("unknown predictor %q (want last, ewma, peak, or diurnal)", name)
	}
}

func parseFloats(axis string, values []string) ([]float64, error) {
	out := make([]float64, len(values))
	for i, v := range values {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("axis %s: bad value %q", axis, v)
		}
		out[i] = f
	}
	return out, nil
}

func parseInts(axis string, values []string) ([]int, error) {
	out := make([]int, len(values))
	for i, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("axis %s: bad value %q", axis, v)
		}
		out[i] = n
	}
	return out, nil
}
