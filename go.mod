module cloudmedia

go 1.24
