// Package geo implements the extension the paper lists as ongoing work
// ("expanding to cloud systems spanning different geographic locations"):
// a multi-region CloudMedia deployment in which each region runs its own
// user population, cloud infrastructure (with regional catalogs and
// prices), and provisioning controller, while the provider reads one
// aggregate bill and quality report.
//
// Regions are independent failure and pricing domains: arrivals are split
// by configured population shares, and each regional controller runs the
// full Sec. V-B loop against its local broker. The package reuses the same
// building blocks as a single-region deployment — nothing in the analysis
// changes, which is exactly the paper's implied claim.
//
// The adversarial layer (Config.Faults) makes the failure domains real:
// a region outage migrates the failed region's arrival share to the
// surviving regions (re-normalized by their own shares) behind a mutable
// share-scaling source, charges each receiving region the migrated
// viewers' transfer bytes, and zeroes the failed region's serving
// capacity; recovery restores the shares and charges the fail-back
// transfer. Spot preemptions and capacity degradations apply per region
// through internal/fault's scheduling hooks. All fault handling runs at
// control barriers between RunUntil segments, so runs stay bit-identical
// for every worker count and deterministic per seed.
package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/fluid"
	"cloudmedia/internal/mathx"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// ErrConfig wraps every deployment-configuration rejection, so callers
// can errors.Is their way past the message text.
var ErrConfig = errors.New("geo: invalid config")

// Region describes one geographic location.
type Region struct {
	Name string
	// Share is the fraction of global arrivals homed to this region.
	// Shares must be positive and sum to 1 (within tolerance).
	Share float64
	// UplinkScale rescales the region's peer upload distribution relative
	// to the global workload (broadband-rich regions above 1, mobile-heavy
	// ones below). 0 means 1. This is the regional heterogeneity that
	// feeds workload.Params.PeerUplink per deployment region.
	UplinkScale float64
	// VMClusters and NFSClusters are the regional catalogs; regional price
	// differences are the interesting knob. Empty slices use Tables II/III.
	VMClusters  []cloud.VMClusterSpec
	NFSClusters []cloud.NFSClusterSpec
}

// DefaultRegions returns a three-region split used by the "regional"
// experiment preset: half the crowd in a broadband-rich region, the rest
// across regions with progressively weaker uplinks, so the per-region
// cloud compensation differs visibly for the same budget.
func DefaultRegions() []Region {
	return []Region{
		{Name: "na", Share: 0.5, UplinkScale: 1.2},
		{Name: "eu", Share: 0.3, UplinkScale: 1.0},
		{Name: "apac", Share: 0.2, UplinkScale: 0.7},
	}
}

// regionWorkload derives a region's workload from the global trace: the
// arrival rate is the global rate times the region's share, and the peer
// uplink distribution is rescaled by the region's UplinkScale.
func regionWorkload(global workload.Params, r Region) (workload.Params, error) {
	wl := global.Clone()
	wl.BaseArrivalRate = global.BaseArrivalRate * r.Share
	if s := r.UplinkScale; s > 0 && s != 1 {
		up, err := mathx.NewBoundedPareto(wl.PeerUplink.Lo*s, wl.PeerUplink.Hi*s, wl.PeerUplink.Shape)
		if err != nil {
			return workload.Params{}, fmt.Errorf("geo: region %q uplink: %w", r.Name, err)
		}
		wl.PeerUplink = up
	}
	return wl, nil
}

// Config assembles a multi-region deployment.
type Config struct {
	Regions []Region
	Mode    sim.Mode
	// Fidelity selects each region's engine: zero or modes.FidelityEvent
	// builds the per-viewer simulator, modes.FidelityFluid the aggregate
	// cohort integrator.
	Fidelity modes.Fidelity
	Channel  queueing.Config
	Workload workload.Params // global trace; regional rate = global × share

	// Policy selects each regional controller's provisioning policy; nil
	// uses provision.Greedy. Oracle policies plan on the region's own
	// share-scaled trace intensity.
	Policy provision.Policy
	// Pricing is the billing plan every regional ledger accrues under;
	// the zero value is pure on-demand.
	Pricing cloud.PricingPlan

	// Faults is the declarative failure plan: region outages realized as
	// cross-region failover, plus per-region spot preemptions and
	// capacity degradations. nil injects nothing (the spot-interruption
	// process still runs when Pricing prices one).
	Faults *fault.Schedule
	// TransferCostPerGB prices the inter-region viewer-migration bytes
	// charged on failover and fail-back; 0 means $0.05/GB.
	TransferCostPerGB float64

	IntervalSeconds      float64
	VMBudgetPerHour      float64 // per-region budget
	StorageBudgetPerHour float64
	Transfer             queueing.TransferMatrix
	Seed                 int64
	// Workers bounds the worker pool each regional engine and controller
	// shard their channels over (sim.Config.Workers / core.Options.Workers);
	// 0 means GOMAXPROCS. Results are bit-identical for every value.
	Workers int
}

// Validate checks deployment invariants.
func (c Config) Validate() error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("%w: no regions", ErrConfig)
	}
	var total float64
	seen := make(map[string]bool, len(c.Regions))
	for i, r := range c.Regions {
		if r.Name == "" {
			return fmt.Errorf("%w: region %d has empty name", ErrConfig, i)
		}
		if seen[r.Name] {
			return fmt.Errorf("%w: duplicate region %q", ErrConfig, r.Name)
		}
		seen[r.Name] = true
		if r.Share <= 0 {
			return fmt.Errorf("%w: region %q: non-positive share %v", ErrConfig, r.Name, r.Share)
		}
		if r.UplinkScale < 0 {
			return fmt.Errorf("%w: region %q: negative uplink scale %v", ErrConfig, r.Name, r.UplinkScale)
		}
		total += r.Share
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("%w: region shares sum to %v, want 1", ErrConfig, total)
	}
	if c.IntervalSeconds < 0 {
		return fmt.Errorf("%w: negative interval %v s", ErrConfig, c.IntervalSeconds)
	}
	if c.VMBudgetPerHour < 0 {
		return fmt.Errorf("%w: negative VM budget %v $/h", ErrConfig, c.VMBudgetPerHour)
	}
	if c.StorageBudgetPerHour < 0 {
		return fmt.Errorf("%w: negative storage budget %v $/h", ErrConfig, c.StorageBudgetPerHour)
	}
	if c.TransferCostPerGB < 0 {
		return fmt.Errorf("%w: negative transfer cost %v $/GB", ErrConfig, c.TransferCostPerGB)
	}
	if err := c.validateFaults(seen); err != nil {
		return err
	}
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Transfer == nil {
		return fmt.Errorf("%w: nil transfer matrix", ErrConfig)
	}
	return c.Transfer.Validate()
}

// validateFaults checks the fault schedule against the region set: every
// scoped event must name a configured region, and the regions that can be
// down concurrently must leave some surviving share to fail over to.
func (c Config) validateFaults(regions map[string]bool) error {
	if c.Faults == nil {
		return nil
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	known := func(name string) bool { return name == "" || regions[name] }
	outageShare := make(map[string]bool, len(c.Regions))
	for _, o := range c.Faults.Outages {
		if !known(o.Region) {
			return fmt.Errorf("%w: outage names unknown region %q", ErrConfig, o.Region)
		}
		name := o.Region
		if name == "" {
			name = c.largestRegion()
		}
		outageShare[name] = true
	}
	// Sum in region-declaration order, not map order: float addition is
	// not associative and this threshold must be deterministic.
	var down float64
	for _, r := range c.Regions {
		if outageShare[r.Name] {
			down += r.Share
		}
	}
	if down >= 0.999 {
		return fmt.Errorf("%w: outages can take down share %v, nothing left to fail over to", ErrConfig, down)
	}
	for _, p := range c.Faults.Preemptions {
		if !known(p.Region) {
			return fmt.Errorf("%w: preemption names unknown region %q", ErrConfig, p.Region)
		}
	}
	for _, d := range c.Faults.Degradations {
		if !known(d.Region) {
			return fmt.Errorf("%w: degradation names unknown region %q", ErrConfig, d.Region)
		}
	}
	return nil
}

// largestRegion returns the name of the region with the biggest share
// (first wins ties) — the default victim for an unscoped outage.
func (c Config) largestRegion() string {
	best, share := "", -1.0
	for _, r := range c.Regions {
		if r.Share > share {
			best, share = r.Name, r.Share
		}
	}
	return best
}

// shareFactor is a mutable arrival-share multiplier read lock-free by the
// engines' channel workers and written only at control barriers (between
// RunUntil segments), via atomic float bits.
type shareFactor struct{ bits atomic.Uint64 }

func newShareFactor() *shareFactor {
	f := &shareFactor{}
	f.set(1)
	return f
}

func (f *shareFactor) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *shareFactor) get() float64  { return math.Float64frombits(f.bits.Load()) }

// shareSource scales a region's demand source by its deployment-owned
// share factor: 1 in steady state, 0 while the region is down, above 1
// while it absorbs a failed sibling's arrivals. Factor 1 multiplies
// bit-identically (r × 1.0 == r), so a fault-free deployment is exactly
// the pre-fault geo behaviour.
//
// CloneSource shares the factor handle on purpose (like serve.LiveSource
// shares its receiver): the deployment steers every copy of a region's
// demand — engine, oracle feed — through one knob.
type shareSource struct {
	src    workload.Source
	factor *shareFactor
	// maxBoost bounds the factor over the whole run (from the fault
	// schedule), so the arrival-thinning envelope primed at construction
	// stays an upper bound while survivors run above share 1.
	maxBoost float64
}

func (s *shareSource) NumChannels() int { return s.src.NumChannels() }

func (s *shareSource) Rate(channel int, t float64) (float64, error) {
	r, err := s.src.Rate(channel, t)
	return r * s.factor.get(), err
}

func (s *shareSource) MaxRate(channel int) (float64, error) {
	r, err := s.src.MaxRate(channel)
	return r * s.maxBoost, err
}

func (s *shareSource) MeanRate(channel int, start, end float64) (float64, error) {
	r, err := s.src.MeanRate(channel, start, end)
	return r * s.factor.get(), err
}

// RatesInto implements workload.BatchSource: delegate, then scale in
// place with one factor read, preserving Rate's r×factor operand order.
//
//cloudmedia:hotpath
func (s *shareSource) RatesInto(t float64, dst []float64) error {
	if err := workload.RatesInto(s.src, t, dst); err != nil {
		return err
	}
	f := s.factor.get()
	for c := range dst {
		dst[c] *= f
	}
	return nil
}

func (s *shareSource) CloneSource() workload.Source {
	return &shareSource{src: s.src.CloneSource(), factor: s.factor, maxBoost: s.maxBoost}
}

func (s *shareSource) Validate() error { return s.src.Validate() }

// RegionSystem is one region's running stack. Sim is the engine behind
// the deployment's fidelity, seen through the sim.Backend seam.
type RegionSystem struct {
	Region     Region
	Sim        sim.Backend
	Cloud      *cloud.Cloud
	Broker     *cloud.Broker
	Controller *core.Controller

	share *shareFactor
	down  bool
}

// geoEvent is one outage boundary in deployment time.
type geoEvent struct {
	time   float64
	start  bool // outage start (false = recovery)
	region int  // index into Deployment.regions
}

// Deployment is the full multi-region system.
type Deployment struct {
	cfg     Config
	regions []*RegionSystem

	events    []geoEvent // outage boundaries, sorted
	nextEvent int
	handoffGB float64 // per-migrated-viewer transfer footprint
	costPerGB float64
}

// New builds every regional stack, bootstraps provisioning from the
// analytic t=0 estimates, and starts the hourly controllers.
func New(cfg Config) (*Deployment, error) {
	if cfg.IntervalSeconds == 0 {
		cfg.IntervalSeconds = 3600
	}
	if cfg.VMBudgetPerHour == 0 {
		cfg.VMBudgetPerHour = 100
	}
	if cfg.StorageBudgetPerHour == 0 {
		cfg.StorageBudgetPerHour = 1
	}
	if cfg.TransferCostPerGB == 0 {
		cfg.TransferCostPerGB = 0.05
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Resolve unscoped outages to the largest-share region, so the rest
	// of the deployment only ever sees named victims.
	if cfg.Faults != nil && len(cfg.Faults.Outages) > 0 {
		cfg.Faults = cfg.Faults.Clone()
		for i := range cfg.Faults.Outages {
			if cfg.Faults.Outages[i].Region == "" {
				cfg.Faults.Outages[i].Region = cfg.largestRegion()
			}
		}
	}
	d := &Deployment{
		cfg:       cfg,
		handoffGB: cfg.Channel.ChunkBytes() / 1e9,
		costPerGB: cfg.TransferCostPerGB,
	}
	maxBoost := d.maxShareBoost()
	for i, region := range cfg.Regions {
		wl, err := regionWorkload(cfg.Workload, region)
		if err != nil {
			return nil, err
		}
		share := newShareFactor()
		src := &shareSource{src: wl.Source(), factor: share, maxBoost: maxBoost}
		simCfg := sim.Config{
			Mode:     cfg.Mode,
			Channel:  cfg.Channel,
			Workload: wl,
			Source:   src,
			Transfer: cfg.Transfer,
			Workers:  cfg.Workers,
			Seed:     cfg.Seed + int64(i)*7919, // distinct stream per region
		}
		var s sim.Backend
		switch cfg.Fidelity {
		case 0, modes.FidelityEvent:
			s, err = sim.New(simCfg)
		case modes.FidelityFluid:
			s, err = fluid.New(fluid.Config{Sim: simCfg})
		default:
			err = fmt.Errorf("invalid fidelity %d", int(cfg.Fidelity))
		}
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		vmSpecs := region.VMClusters
		if len(vmSpecs) == 0 {
			vmSpecs = cloud.DefaultVMClusters()
		}
		nfsSpecs := region.NFSClusters
		if len(nfsSpecs) == 0 {
			nfsSpecs = cloud.DefaultNFSClusters()
		}
		cl, err := cloud.New(vmSpecs, nfsSpecs, cloud.WithPricing(cfg.Pricing))
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		broker, err := cloud.NewBroker(cl)
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		oracleSrc := src.CloneSource()
		ctl, err := core.NewController(s, cl, broker, core.Options{
			IntervalSeconds:      cfg.IntervalSeconds,
			VMBudgetPerHour:      cfg.VMBudgetPerHour,
			StorageBudgetPerHour: cfg.StorageBudgetPerHour,
			FallbackTransfer:     cfg.Transfer,
			ApplyBootLatency:     true,
			PeerSupplyTrust:      0.7,
			ProvisionHeadroom:    1.2,
			Policy:               cfg.Policy,
			Workers:              cfg.Workers,
			// Each region's oracle source is its own share-scaled trace,
			// read through the share wrapper so failover migrations steer
			// the oracle's view too.
			TrueRates: func(channel int, start, end float64) float64 {
				r, err := oracleSrc.MeanRate(channel, start, end)
				if err != nil {
					return 0
				}
				return r
			},
		})
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}

		inputs := make([]core.ChannelInput, s.Channels())
		for c := range inputs {
			rate, err := wl.ChannelRate(c, 0)
			if err != nil {
				return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
			}
			inputs[c] = core.ChannelInput{
				ArrivalRate: rate,
				Transfer:    cfg.Transfer,
				MeanUplink:  wl.PeerUplink.Mean(),
			}
		}
		ctl.Provision(0, inputs)
		if err := ctl.Start(); err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		rs := &RegionSystem{
			Region: region, Sim: s, Cloud: cl, Broker: broker, Controller: ctl,
			share: share,
		}
		// Per-region scheduled faults: spot preemptions, degradations,
		// and the pricing plan's stochastic interruption process. Outages
		// are deployment-level (share migration), handled in RunUntil.
		if err := fault.Attach(fault.Target{
			Backend:         s,
			Cloud:           cl,
			Controller:      ctl,
			Region:          region.Name,
			IntervalSeconds: cfg.IntervalSeconds,
			Seed:            cfg.Seed + int64(i)*7919 + 1,
		}, cfg.Faults); err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		d.regions = append(d.regions, rs)
	}
	d.buildEvents()
	return d, nil
}

// maxShareBoost bounds the share factor any survivor can reach over the
// run: with S the combined share of every region the schedule can take
// down, survivors scale by at most 1/(1−S). A fault-free deployment
// returns exactly 1 so the envelope (and with it every pre-fault golden)
// is untouched.
func (d *Deployment) maxShareBoost() float64 {
	if d.cfg.Faults == nil || len(d.cfg.Faults.Outages) == 0 {
		return 1
	}
	failing := make(map[string]bool, len(d.cfg.Regions))
	for _, o := range d.cfg.Faults.Outages {
		failing[o.Region] = true
	}
	// Sum in region-declaration order, not map order: the boost scales
	// every envelope and must be float-deterministic.
	var down float64
	for _, r := range d.cfg.Regions {
		if failing[r.Name] {
			down += r.Share
		}
	}
	if down >= 0.999 {
		down = 0.999 // unreachable: Validate rejects it
	}
	return 1 / (1 - down)
}

// buildEvents flattens the outage windows into a sorted boundary list.
// Ties process recoveries before starts, then lower region index, so the
// order is deterministic.
func (d *Deployment) buildEvents() {
	if d.cfg.Faults == nil {
		return
	}
	index := make(map[string]int, len(d.regions))
	for i, r := range d.regions {
		index[r.Region.Name] = i
	}
	for _, o := range d.cfg.Faults.Outages {
		ri := index[o.Region]
		d.events = append(d.events,
			geoEvent{time: o.Start, start: true, region: ri},
			geoEvent{time: o.Start + o.Duration, start: false, region: ri},
		)
	}
	sort.Slice(d.events, func(i, j int) bool {
		a, b := d.events[i], d.events[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.start != b.start {
			return !a.start // recoveries first
		}
		return a.region < b.region
	})
}

// Regions returns the regional stacks in configuration order.
func (d *Deployment) Regions() []*RegionSystem { return d.regions }

// RunUntil advances every region to simulated time t. Regions evolve
// independently between outage boundaries (cross-region traffic is out of
// scope, as in the paper's sketch); at each boundary every region is
// barriered to the boundary instant, the failover (or recovery) is
// applied — share migration, capacity blackout, transfer charges — and
// the advance resumes. Fault-free deployments take the straight path.
func (d *Deployment) RunUntil(t float64) {
	for d.nextEvent < len(d.events) && d.events[d.nextEvent].time <= t {
		ev := d.events[d.nextEvent]
		d.nextEvent++
		for _, r := range d.regions {
			r.Sim.RunUntil(ev.time)
			r.Cloud.Advance(ev.time)
		}
		if ev.start {
			d.failOver(ev.time, ev.region)
		} else {
			d.recover(ev.time, ev.region)
		}
	}
	for _, r := range d.regions {
		r.Sim.RunUntil(t)
		r.Cloud.Advance(t)
	}
}

// applyShares recomputes every region's arrival factor from the down set:
// down regions get 0, survivors re-normalize to 1/(1 − downShare) so the
// global arrival mass is conserved.
func (d *Deployment) applyShares() {
	var downShare float64
	for _, r := range d.regions {
		if r.down {
			downShare += r.Region.Share
		}
	}
	boost := 1.0
	if downShare > 0 && downShare < 1 {
		boost = 1 / (1 - downShare)
	}
	for _, r := range d.regions {
		if r.down {
			r.share.set(0)
		} else {
			r.share.set(boost)
		}
	}
}

// failOver takes region ri dark at time now: arrivals migrate to the
// survivors (proportionally to their shares), serving capacity zeroes,
// and each receiving region is charged the migrated viewers' handoff
// bytes. The failed region's controller keeps running; with arrivals and
// capacity at zero its next plans collapse to (nearly) nothing, so its
// bill drains on its own.
func (d *Deployment) failOver(now float64, ri int) {
	failed := d.regions[ri]
	failed.down = true
	d.applyShares()
	//cloudmedia:allow noloss -- factor 0 is always valid
	_ = failed.Controller.SetCapacityFactor(now, 0)
	failed.Cloud.Ledger().Notef(now, "region outage: arrivals migrated to surviving regions")

	migrated := float64(failed.Sim.TotalUsers())
	if migrated <= 0 {
		return
	}
	var survivingShare float64
	for _, r := range d.regions {
		if !r.down {
			survivingShare += r.Region.Share
		}
	}
	if survivingShare <= 0 {
		return
	}
	for _, r := range d.regions {
		if r.down {
			continue
		}
		moved := migrated * r.Region.Share / survivingShare
		cost := moved * d.handoffGB * d.costPerGB
		r.Cloud.Ledger().ChargeTransfer(now, cost,
			fmt.Sprintf("%.0f viewers failed over from %s", moved, failed.Region.Name))
	}
}

// recover brings region ri back at time now: shares re-normalize (with it
// back in the pool), its capacity factor clears, and the region is
// charged the fail-back transfer for its share of the currently served
// crowd returning home.
func (d *Deployment) recover(now float64, ri int) {
	recovered := d.regions[ri]
	recovered.down = false
	d.applyShares()
	//cloudmedia:allow noloss -- restoring factor 1 is always valid
	_ = recovered.Controller.SetCapacityFactor(now, 1)

	var crowd float64
	for _, r := range d.regions {
		if r != recovered {
			crowd += float64(r.Sim.TotalUsers())
		}
	}
	returning := crowd * recovered.Region.Share
	cost := returning * d.handoffGB * d.costPerGB
	recovered.Cloud.Ledger().ChargeTransfer(now, cost,
		fmt.Sprintf("%.0f viewers failed back to %s", returning, recovered.Region.Name))
	recovered.Cloud.Ledger().Notef(now, "region recovered: share restored")
}

// RegionReport is one region's aggregate outcome.
type RegionReport struct {
	Name        string
	Users       int
	Quality     float64
	VMCost      float64
	StorageCost float64
	// Bill is the region's ledger view: dollars split by pricing tier,
	// spot interruption events, and failover transfer charges.
	Bill cloud.LedgerTotals
}

// Report summarizes every region plus the global totals.
func (d *Deployment) Report() (regions []RegionReport, totalVM, totalStorage float64) {
	for _, r := range d.regions {
		vm, storage := r.Cloud.Costs()
		q := r.Sim.SampleQuality()
		regions = append(regions, RegionReport{
			Name:        r.Region.Name,
			Users:       r.Sim.TotalUsers(),
			Quality:     q.Overall,
			VMCost:      vm,
			StorageCost: storage,
			Bill:        r.Cloud.Ledger().Totals(),
		})
		totalVM += vm
		totalStorage += storage
	}
	return regions, totalVM, totalStorage
}
