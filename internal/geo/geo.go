// Package geo implements the extension the paper lists as ongoing work
// ("expanding to cloud systems spanning different geographic locations"):
// a multi-region CloudMedia deployment in which each region runs its own
// user population, cloud infrastructure (with regional catalogs and
// prices), and provisioning controller, while the provider reads one
// aggregate bill and quality report.
//
// Regions are independent failure and pricing domains: arrivals are split
// by configured population shares, and each regional controller runs the
// full Sec. V-B loop against its local broker. The package reuses the same
// building blocks as a single-region deployment — nothing in the analysis
// changes, which is exactly the paper's implied claim.
package geo

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/fluid"
	"cloudmedia/internal/mathx"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// Region describes one geographic location.
type Region struct {
	Name string
	// Share is the fraction of global arrivals homed to this region.
	// Shares must be positive and sum to 1 (within tolerance).
	Share float64
	// UplinkScale rescales the region's peer upload distribution relative
	// to the global workload (broadband-rich regions above 1, mobile-heavy
	// ones below). 0 means 1. This is the regional heterogeneity that
	// feeds workload.Params.PeerUplink per deployment region.
	UplinkScale float64
	// VMClusters and NFSClusters are the regional catalogs; regional price
	// differences are the interesting knob. Empty slices use Tables II/III.
	VMClusters  []cloud.VMClusterSpec
	NFSClusters []cloud.NFSClusterSpec
}

// DefaultRegions returns a three-region split used by the "regional"
// experiment preset: half the crowd in a broadband-rich region, the rest
// across regions with progressively weaker uplinks, so the per-region
// cloud compensation differs visibly for the same budget.
func DefaultRegions() []Region {
	return []Region{
		{Name: "na", Share: 0.5, UplinkScale: 1.2},
		{Name: "eu", Share: 0.3, UplinkScale: 1.0},
		{Name: "apac", Share: 0.2, UplinkScale: 0.7},
	}
}

// regionWorkload derives a region's workload from the global trace: the
// arrival rate is the global rate times the region's share, and the peer
// uplink distribution is rescaled by the region's UplinkScale.
func regionWorkload(global workload.Params, r Region) (workload.Params, error) {
	wl := global.Clone()
	wl.BaseArrivalRate = global.BaseArrivalRate * r.Share
	if s := r.UplinkScale; s > 0 && s != 1 {
		up, err := mathx.NewBoundedPareto(wl.PeerUplink.Lo*s, wl.PeerUplink.Hi*s, wl.PeerUplink.Shape)
		if err != nil {
			return workload.Params{}, fmt.Errorf("geo: region %q uplink: %w", r.Name, err)
		}
		wl.PeerUplink = up
	}
	return wl, nil
}

// Config assembles a multi-region deployment.
type Config struct {
	Regions []Region
	Mode    sim.Mode
	// Fidelity selects each region's engine: zero or modes.FidelityEvent
	// builds the per-viewer simulator, modes.FidelityFluid the aggregate
	// cohort integrator.
	Fidelity modes.Fidelity
	Channel  queueing.Config
	Workload workload.Params // global trace; regional rate = global × share

	// Policy selects each regional controller's provisioning policy; nil
	// uses provision.Greedy. Oracle policies plan on the region's own
	// share-scaled trace intensity.
	Policy provision.Policy
	// Pricing is the billing plan every regional ledger accrues under;
	// the zero value is pure on-demand.
	Pricing cloud.PricingPlan

	IntervalSeconds      float64
	VMBudgetPerHour      float64 // per-region budget
	StorageBudgetPerHour float64
	Transfer             queueing.TransferMatrix
	Seed                 int64
}

// Validate checks deployment invariants.
func (c Config) Validate() error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("geo: no regions")
	}
	var total float64
	seen := make(map[string]bool, len(c.Regions))
	for i, r := range c.Regions {
		if r.Name == "" {
			return fmt.Errorf("geo: region %d has empty name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("geo: duplicate region %q", r.Name)
		}
		seen[r.Name] = true
		if r.Share <= 0 {
			return fmt.Errorf("geo: region %q: non-positive share %v", r.Name, r.Share)
		}
		if r.UplinkScale < 0 {
			return fmt.Errorf("geo: region %q: negative uplink scale %v", r.Name, r.UplinkScale)
		}
		total += r.Share
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("geo: region shares sum to %v, want 1", total)
	}
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Transfer == nil {
		return fmt.Errorf("geo: nil transfer matrix")
	}
	return c.Transfer.Validate()
}

// RegionSystem is one region's running stack. Sim is the engine behind
// the deployment's fidelity, seen through the sim.Backend seam.
type RegionSystem struct {
	Region     Region
	Sim        sim.Backend
	Cloud      *cloud.Cloud
	Broker     *cloud.Broker
	Controller *core.Controller
}

// Deployment is the full multi-region system.
type Deployment struct {
	cfg     Config
	regions []*RegionSystem
}

// New builds every regional stack, bootstraps provisioning from the
// analytic t=0 estimates, and starts the hourly controllers.
func New(cfg Config) (*Deployment, error) {
	if cfg.IntervalSeconds == 0 {
		cfg.IntervalSeconds = 3600
	}
	if cfg.VMBudgetPerHour == 0 {
		cfg.VMBudgetPerHour = 100
	}
	if cfg.StorageBudgetPerHour == 0 {
		cfg.StorageBudgetPerHour = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{cfg: cfg}
	for i, region := range cfg.Regions {
		wl, err := regionWorkload(cfg.Workload, region)
		if err != nil {
			return nil, err
		}
		simCfg := sim.Config{
			Mode:     cfg.Mode,
			Channel:  cfg.Channel,
			Workload: wl,
			Transfer: cfg.Transfer,
			Seed:     cfg.Seed + int64(i)*7919, // distinct stream per region
		}
		var s sim.Backend
		switch cfg.Fidelity {
		case 0, modes.FidelityEvent:
			s, err = sim.New(simCfg)
		case modes.FidelityFluid:
			s, err = fluid.New(fluid.Config{Sim: simCfg})
		default:
			err = fmt.Errorf("invalid fidelity %d", int(cfg.Fidelity))
		}
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		vmSpecs := region.VMClusters
		if len(vmSpecs) == 0 {
			vmSpecs = cloud.DefaultVMClusters()
		}
		nfsSpecs := region.NFSClusters
		if len(nfsSpecs) == 0 {
			nfsSpecs = cloud.DefaultNFSClusters()
		}
		cl, err := cloud.New(vmSpecs, nfsSpecs, cloud.WithPricing(cfg.Pricing))
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		broker, err := cloud.NewBroker(cl)
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		ctl, err := core.NewController(s, cl, broker, core.Options{
			IntervalSeconds:      cfg.IntervalSeconds,
			VMBudgetPerHour:      cfg.VMBudgetPerHour,
			StorageBudgetPerHour: cfg.StorageBudgetPerHour,
			FallbackTransfer:     cfg.Transfer,
			ApplyBootLatency:     true,
			PeerSupplyTrust:      0.7,
			ProvisionHeadroom:    1.2,
			Policy:               cfg.Policy,
			// Each region's oracle source is its own share-scaled trace.
			TrueRates: wl.TrueRateSource(),
		})
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}

		inputs := make([]core.ChannelInput, s.Channels())
		for c := range inputs {
			rate, err := wl.ChannelRate(c, 0)
			if err != nil {
				return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
			}
			inputs[c] = core.ChannelInput{
				ArrivalRate: rate,
				Transfer:    cfg.Transfer,
				MeanUplink:  wl.PeerUplink.Mean(),
			}
		}
		ctl.Provision(0, inputs)
		if err := ctl.Start(); err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", region.Name, err)
		}
		d.regions = append(d.regions, &RegionSystem{
			Region: region, Sim: s, Cloud: cl, Broker: broker, Controller: ctl,
		})
	}
	return d, nil
}

// Regions returns the regional stacks in configuration order.
func (d *Deployment) Regions() []*RegionSystem { return d.regions }

// RunUntil advances every region to simulated time t (regions evolve
// independently; cross-region traffic is out of scope, as in the paper's
// sketch).
func (d *Deployment) RunUntil(t float64) {
	for _, r := range d.regions {
		r.Sim.RunUntil(t)
		r.Cloud.Advance(t)
	}
}

// RegionReport is one region's aggregate outcome.
type RegionReport struct {
	Name        string
	Users       int
	Quality     float64
	VMCost      float64
	StorageCost float64
}

// Report summarizes every region plus the global totals.
func (d *Deployment) Report() (regions []RegionReport, totalVM, totalStorage float64) {
	for _, r := range d.regions {
		vm, storage := r.Cloud.Costs()
		q := r.Sim.SampleQuality()
		regions = append(regions, RegionReport{
			Name:        r.Region.Name,
			Users:       r.Sim.TotalUsers(),
			Quality:     q.Overall,
			VMCost:      vm,
			StorageCost: storage,
		})
		totalVM += vm
		totalStorage += storage
	}
	return regions, totalVM, totalStorage
}
