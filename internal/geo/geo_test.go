package geo

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
	"cloudmedia/internal/workload"
)

func testConfig(t *testing.T, regions []Region) Config {
	t.Helper()
	ch := testutil.ChannelConfig(5, 60)
	ch.SlotsPerVM = 5
	// The paper's default 15-minute jump interval, unlike the shortened
	// intervals the engine tests use.
	wl := testutil.FlatWorkload(2, 0.6, workload.Default().JumpMeanSeconds)
	return Config{
		Regions:         regions,
		Mode:            sim.ClientServer,
		Channel:         ch,
		Workload:        wl,
		Transfer:        testutil.SequentialWithJumps(t, ch.Chunks, 0.9, 0.2),
		IntervalSeconds: 600,
		Seed:            5,
	}
}

func twoRegions() []Region {
	return []Region{
		{Name: "us-east", Share: 0.7},
		{Name: "eu-west", Share: 0.3},
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t, twoRegions())

	noRegions := base
	noRegions.Regions = nil
	if _, err := New(noRegions); err == nil {
		t.Error("no regions accepted")
	}

	badShare := base
	badShare.Regions = []Region{{Name: "a", Share: 0.5}, {Name: "b", Share: 0.2}}
	if _, err := New(badShare); err == nil {
		t.Error("shares not summing to 1 accepted")
	}

	dup := base
	dup.Regions = []Region{{Name: "a", Share: 0.5}, {Name: "a", Share: 0.5}}
	if _, err := New(dup); err == nil {
		t.Error("duplicate region accepted")
	}

	unnamed := base
	unnamed.Regions = []Region{{Name: "", Share: 1}}
	if _, err := New(unnamed); err == nil {
		t.Error("unnamed region accepted")
	}

	noTransfer := base
	noTransfer.Transfer = nil
	if _, err := New(noTransfer); err == nil {
		t.Error("nil transfer accepted")
	}
}

// TestValidateRejectsNegatives pins the PR 10 bugfix: New defaults only
// the == 0 spellings of the interval and budgets, so negatives used to
// slip through into the controllers. Every rejection wraps ErrConfig.
func TestValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative interval", func(c *Config) { c.IntervalSeconds = -600 }},
		{"negative vm budget", func(c *Config) { c.VMBudgetPerHour = -100 }},
		{"negative storage budget", func(c *Config) { c.StorageBudgetPerHour = -1 }},
		{"negative transfer cost", func(c *Config) { c.TransferCostPerGB = -0.05 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, twoRegions())
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("%s accepted", tc.name)
			} else if !errors.Is(err, ErrConfig) {
				t.Errorf("%s: error %v does not wrap ErrConfig", tc.name, err)
			}
		})
	}
}

func TestValidateFaultSchedule(t *testing.T) {
	cfg := testConfig(t, twoRegions())
	cfg.Faults = &fault.Schedule{
		Outages: []fault.RegionOutage{{Region: "atlantis", Start: 600, Duration: 600}},
	}
	if _, err := New(cfg); err == nil || !errors.Is(err, ErrConfig) {
		t.Errorf("unknown outage region accepted: %v", err)
	}
	cfg.Faults = &fault.Schedule{
		Outages: []fault.RegionOutage{
			{Region: "us-east", Start: 600, Duration: 600},
			{Region: "eu-west", Start: 1800, Duration: 600},
		},
	}
	if _, err := New(cfg); err == nil || !errors.Is(err, ErrConfig) {
		t.Errorf("outages covering every region accepted: %v", err)
	}
}

func TestDeploymentSplitsPopulationByShare(t *testing.T) {
	d, err := New(testConfig(t, twoRegions()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.RunUntil(3 * 600)
	regions, totalVM, _ := d.Report()
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	if regions[0].Users <= regions[1].Users {
		t.Errorf("us-east (70%% share) has %d users vs eu-west %d", regions[0].Users, regions[1].Users)
	}
	if totalVM <= 0 {
		t.Error("no VM cost accrued")
	}
	for _, r := range regions {
		if r.Quality < 0.7 {
			t.Errorf("region %s quality %v", r.Name, r.Quality)
		}
	}
}

func TestRegionalPricingChangesBill(t *testing.T) {
	run := func(priceFactor float64) float64 {
		specs := cloud.DefaultVMClusters()
		for i := range specs {
			specs[i].PricePerHour *= priceFactor
		}
		regions := []Region{{Name: "only", Share: 1, VMClusters: specs}}
		d, err := New(testConfig(t, regions))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		d.RunUntil(2 * 600)
		_, totalVM, _ := d.Report()
		return totalVM
	}
	cheap := run(0.5)
	expensive := run(1.0)
	if cheap >= expensive {
		t.Errorf("half-price region bill %v not below full price %v", cheap, expensive)
	}
}

func TestRegionsAreIndependentSeedStreams(t *testing.T) {
	d, err := New(testConfig(t, []Region{
		{Name: "a", Share: 0.5},
		{Name: "b", Share: 0.5},
	}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.RunUntil(1200)
	regions, _, _ := d.Report()
	// Equal shares but distinct seed streams: byte-identical populations at
	// every instant would indicate correlated randomness.
	a, errA := d.Regions()[0].Sim.ChannelCloudBytes(0)
	b, errB := d.Regions()[1].Sim.ChannelCloudBytes(0)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a == b && regions[0].Users == regions[1].Users {
		t.Error("regions appear to share a random stream")
	}
}

func TestDeploymentDefaultsApplied(t *testing.T) {
	cfg := testConfig(t, twoRegions())
	cfg.IntervalSeconds = 0
	cfg.VMBudgetPerHour = 0
	cfg.StorageBudgetPerHour = 0
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(d.Regions()) != 2 {
		t.Error("regions not built")
	}
}

func TestRegionWorkloadUplinkHeterogeneity(t *testing.T) {
	global := workload.Default()
	weak := Region{Name: "apac", Share: 0.2, UplinkScale: 0.7}
	strong := Region{Name: "na", Share: 0.5, UplinkScale: 1.2}
	wWeak, err := regionWorkload(global, weak)
	if err != nil {
		t.Fatal(err)
	}
	wStrong, err := regionWorkload(global, strong)
	if err != nil {
		t.Fatal(err)
	}
	base := global.PeerUplink.Mean()
	if got := wWeak.PeerUplink.Mean(); math.Abs(got-0.7*base) > 1e-9*base {
		t.Errorf("weak region mean uplink %v, want %v", got, 0.7*base)
	}
	if got := wStrong.PeerUplink.Mean(); math.Abs(got-1.2*base) > 1e-9*base {
		t.Errorf("strong region mean uplink %v, want %v", got, 1.2*base)
	}
	if wWeak.BaseArrivalRate != global.BaseArrivalRate*0.2 {
		t.Errorf("share not applied: %v", wWeak.BaseArrivalRate)
	}
	cfg := testConfig(t, []Region{{Name: "x", Share: 1, UplinkScale: -1}})
	if err := cfg.Validate(); err == nil {
		t.Error("negative uplink scale accepted by Validate")
	}
}

func TestDefaultRegionsValid(t *testing.T) {
	cfg := testConfig(t, DefaultRegions())
	if err := cfg.Validate(); err != nil {
		t.Errorf("DefaultRegions invalid: %v", err)
	}
}

// TestDeploymentHonoursPolicyAndPricing pins the PR 4 plumbing: the
// configured provisioning policy and billing plan must reach every
// regional controller and ledger (the regional experiment advertises
// -policy/-pricing support).
func TestDeploymentHonoursPolicyAndPricing(t *testing.T) {
	cfg := testConfig(t, twoRegions())
	cfg.Policy = provision.StaticPeak{Intervals: 2}
	cfg.Pricing = cloud.ReservedPricing()
	dep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep.RunUntil(2 * 600)
	for _, r := range dep.Regions() {
		led := r.Cloud.Ledger()
		if got := led.Plan().DisplayName(); got != "reserved" {
			t.Errorf("region %s billed under %q, want reserved", r.Region.Name, got)
		}
		if led.Totals().UpfrontUSD <= 0 {
			t.Errorf("region %s accrued no upfront under the reserved plan", r.Region.Name)
		}
		recs := r.Controller.Records()
		if len(recs) < 2 {
			t.Fatalf("region %s: %d records", r.Region.Name, len(recs))
		}
		// StaticPeak holds its first plan: later rounds repeat it.
		if recs[1].VMPlan.TotalVMs() != recs[len(recs)-1].VMPlan.TotalVMs() {
			t.Errorf("region %s: static plan moved between rounds", r.Region.Name)
		}
	}
}

// faultConfig is the adversarial deployment the failover tests share: an
// outage taking the large region dark for one interval, a global spot
// preemption while it is down, everything billed on the spot plan.
func faultConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig(t, twoRegions())
	cfg.Pricing = cloud.SpotPricing()
	cfg.Faults = &fault.Schedule{
		Outages:     []fault.RegionOutage{{Region: "us-east", Start: 600, Duration: 600}},
		Preemptions: []fault.SpotPreemption{{At: 900, Fraction: 0.5}},
	}
	return cfg
}

// TestOutageFailoverMigratesSharesAndChargesTransfer exercises the PR 10
// failover path end to end: the failed region's arrivals move to the
// survivor (shares re-normalized through the mutable share source), the
// handoff bytes are charged to the receiving region, and recovery
// restores the shares and charges the fail-back.
func TestOutageFailoverMigratesSharesAndChargesTransfer(t *testing.T) {
	cfg := faultConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	east, west := d.Regions()[0], d.Regions()[1]

	d.RunUntil(1100) // mid-outage
	if !east.down {
		t.Fatal("failed region not marked down mid-outage")
	}
	if got := east.share.get(); got != 0 {
		t.Errorf("failed region share factor %v, want 0", got)
	}
	if got, want := west.share.get(), 1/(1-0.7); math.Abs(got-want) > 1e-12 {
		t.Errorf("survivor share factor %v, want %v", got, want)
	}
	if got := east.Controller.CapacityFactor(); got != 0 {
		t.Errorf("failed region capacity factor %v, want 0", got)
	}
	if west.Cloud.Ledger().Totals().TransferUSD <= 0 {
		t.Error("survivor charged no failover transfer")
	}
	if east.Cloud.Ledger().Totals().Interruptions == 0 {
		t.Error("spot preemption at t=900 left no interruption record")
	}

	d.RunUntil(1800) // past recovery
	if east.down || east.share.get() != 1 || west.share.get() != 1 {
		t.Errorf("shares not restored after recovery: east=%v west=%v",
			east.share.get(), west.share.get())
	}
	if got := east.Controller.CapacityFactor(); got != 1 {
		t.Errorf("recovered region capacity factor %v, want 1", got)
	}
	if east.Cloud.Ledger().Totals().TransferUSD <= 0 {
		t.Error("recovered region charged no fail-back transfer")
	}
	regions, _, _ := d.Report()
	if regions[1].Bill.TransferUSD != west.Cloud.Ledger().Totals().TransferUSD {
		t.Error("Report bill does not carry the ledger transfer dollars")
	}
}

// TestGeoWorkerInvarianceUnderFaults is the PR 10 S4 pin: a faulted
// multi-region run — failover, share migration, spot preemption and all
// — must produce byte-identical per-region reports for every worker
// count, on both engine fidelities. (This also covers the S1 bugfix:
// before PR 10 the Workers knob silently never reached the regional
// engines, so this test could not exist.)
func TestGeoWorkerInvarianceUnderFaults(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, fid := range []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid} {
		run := func(workers int) []RegionReport {
			cfg := faultConfig(t)
			cfg.Fidelity = fid
			cfg.Workers = workers
			d, err := New(cfg)
			if err != nil {
				t.Fatalf("fidelity %v workers %d: %v", fid, workers, err)
			}
			d.RunUntil(4 * 600)
			regions, _, _ := d.Report()
			return regions
		}
		serial := run(1)
		if len(serial) != 2 || serial[0].Users+serial[1].Users == 0 {
			t.Fatalf("fidelity %v: serial run served nobody: %+v", fid, serial)
		}
		for _, workers := range []int{4, 8} {
			if got := run(workers); !reflect.DeepEqual(serial, got) {
				t.Errorf("fidelity %v: Workers=%d report diverged from serial\nserial: %+v\ngot:    %+v",
					fid, workers, serial, got)
			}
		}
	}
}

// TestFailoverDeterministicPerSeed pins reproducibility: the same seed
// and fault schedule give byte-identical deployments run to run, on both
// fidelities, and a different seed gives a different realization.
func TestFailoverDeterministicPerSeed(t *testing.T) {
	for _, fid := range []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid} {
		run := func(seed int64) []RegionReport {
			cfg := faultConfig(t)
			cfg.Fidelity = fid
			cfg.Seed = seed
			d, err := New(cfg)
			if err != nil {
				t.Fatalf("fidelity %v: %v", fid, err)
			}
			d.RunUntil(3 * 600)
			regions, _, _ := d.Report()
			return regions
		}
		a, b := run(5), run(5)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fidelity %v: same seed diverged:\n%+v\n%+v", fid, a, b)
		}
		if fid == modes.FidelityEvent {
			if other := run(6); reflect.DeepEqual(a, other) {
				t.Errorf("fidelity %v: different seeds produced identical reports", fid)
			}
		}
	}
}

// TestFaultFreeDeploymentUntouched pins the bit-identity claim of the
// share wrapper: a deployment with no fault schedule reports exactly what
// the pre-fault geo code reported (factor 1 multiplies bit-identically,
// and the envelope boost is exactly 1).
func TestFaultFreeDeploymentUntouched(t *testing.T) {
	run := func(withNilFaults bool) []RegionReport {
		cfg := testConfig(t, twoRegions())
		if withNilFaults {
			cfg.Faults = nil
		} else {
			cfg.Faults = &fault.Schedule{} // empty schedule, same thing
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.RunUntil(2 * 600)
		regions, _, _ := d.Report()
		return regions
	}
	if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
		t.Errorf("nil and empty fault schedules diverge:\n%+v\n%+v", a, b)
	}
}
