package geo

import (
	"math"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
	"cloudmedia/internal/workload"
)

func testConfig(t *testing.T, regions []Region) Config {
	t.Helper()
	ch := testutil.ChannelConfig(5, 60)
	ch.SlotsPerVM = 5
	// The paper's default 15-minute jump interval, unlike the shortened
	// intervals the engine tests use.
	wl := testutil.FlatWorkload(2, 0.6, workload.Default().JumpMeanSeconds)
	return Config{
		Regions:         regions,
		Mode:            sim.ClientServer,
		Channel:         ch,
		Workload:        wl,
		Transfer:        testutil.SequentialWithJumps(t, ch.Chunks, 0.9, 0.2),
		IntervalSeconds: 600,
		Seed:            5,
	}
}

func twoRegions() []Region {
	return []Region{
		{Name: "us-east", Share: 0.7},
		{Name: "eu-west", Share: 0.3},
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t, twoRegions())

	noRegions := base
	noRegions.Regions = nil
	if _, err := New(noRegions); err == nil {
		t.Error("no regions accepted")
	}

	badShare := base
	badShare.Regions = []Region{{Name: "a", Share: 0.5}, {Name: "b", Share: 0.2}}
	if _, err := New(badShare); err == nil {
		t.Error("shares not summing to 1 accepted")
	}

	dup := base
	dup.Regions = []Region{{Name: "a", Share: 0.5}, {Name: "a", Share: 0.5}}
	if _, err := New(dup); err == nil {
		t.Error("duplicate region accepted")
	}

	unnamed := base
	unnamed.Regions = []Region{{Name: "", Share: 1}}
	if _, err := New(unnamed); err == nil {
		t.Error("unnamed region accepted")
	}

	noTransfer := base
	noTransfer.Transfer = nil
	if _, err := New(noTransfer); err == nil {
		t.Error("nil transfer accepted")
	}
}

func TestDeploymentSplitsPopulationByShare(t *testing.T) {
	d, err := New(testConfig(t, twoRegions()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.RunUntil(3 * 600)
	regions, totalVM, _ := d.Report()
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	if regions[0].Users <= regions[1].Users {
		t.Errorf("us-east (70%% share) has %d users vs eu-west %d", regions[0].Users, regions[1].Users)
	}
	if totalVM <= 0 {
		t.Error("no VM cost accrued")
	}
	for _, r := range regions {
		if r.Quality < 0.7 {
			t.Errorf("region %s quality %v", r.Name, r.Quality)
		}
	}
}

func TestRegionalPricingChangesBill(t *testing.T) {
	run := func(priceFactor float64) float64 {
		specs := cloud.DefaultVMClusters()
		for i := range specs {
			specs[i].PricePerHour *= priceFactor
		}
		regions := []Region{{Name: "only", Share: 1, VMClusters: specs}}
		d, err := New(testConfig(t, regions))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		d.RunUntil(2 * 600)
		_, totalVM, _ := d.Report()
		return totalVM
	}
	cheap := run(0.5)
	expensive := run(1.0)
	if cheap >= expensive {
		t.Errorf("half-price region bill %v not below full price %v", cheap, expensive)
	}
}

func TestRegionsAreIndependentSeedStreams(t *testing.T) {
	d, err := New(testConfig(t, []Region{
		{Name: "a", Share: 0.5},
		{Name: "b", Share: 0.5},
	}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.RunUntil(1200)
	regions, _, _ := d.Report()
	// Equal shares but distinct seed streams: byte-identical populations at
	// every instant would indicate correlated randomness.
	a, errA := d.Regions()[0].Sim.ChannelCloudBytes(0)
	b, errB := d.Regions()[1].Sim.ChannelCloudBytes(0)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a == b && regions[0].Users == regions[1].Users {
		t.Error("regions appear to share a random stream")
	}
}

func TestDeploymentDefaultsApplied(t *testing.T) {
	cfg := testConfig(t, twoRegions())
	cfg.IntervalSeconds = 0
	cfg.VMBudgetPerHour = 0
	cfg.StorageBudgetPerHour = 0
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(d.Regions()) != 2 {
		t.Error("regions not built")
	}
}

func TestRegionWorkloadUplinkHeterogeneity(t *testing.T) {
	global := workload.Default()
	weak := Region{Name: "apac", Share: 0.2, UplinkScale: 0.7}
	strong := Region{Name: "na", Share: 0.5, UplinkScale: 1.2}
	wWeak, err := regionWorkload(global, weak)
	if err != nil {
		t.Fatal(err)
	}
	wStrong, err := regionWorkload(global, strong)
	if err != nil {
		t.Fatal(err)
	}
	base := global.PeerUplink.Mean()
	if got := wWeak.PeerUplink.Mean(); math.Abs(got-0.7*base) > 1e-9*base {
		t.Errorf("weak region mean uplink %v, want %v", got, 0.7*base)
	}
	if got := wStrong.PeerUplink.Mean(); math.Abs(got-1.2*base) > 1e-9*base {
		t.Errorf("strong region mean uplink %v, want %v", got, 1.2*base)
	}
	if wWeak.BaseArrivalRate != global.BaseArrivalRate*0.2 {
		t.Errorf("share not applied: %v", wWeak.BaseArrivalRate)
	}
	cfg := testConfig(t, []Region{{Name: "x", Share: 1, UplinkScale: -1}})
	if err := cfg.Validate(); err == nil {
		t.Error("negative uplink scale accepted by Validate")
	}
}

func TestDefaultRegionsValid(t *testing.T) {
	cfg := testConfig(t, DefaultRegions())
	if err := cfg.Validate(); err != nil {
		t.Errorf("DefaultRegions invalid: %v", err)
	}
}

// TestDeploymentHonoursPolicyAndPricing pins the PR 4 plumbing: the
// configured provisioning policy and billing plan must reach every
// regional controller and ledger (the regional experiment advertises
// -policy/-pricing support).
func TestDeploymentHonoursPolicyAndPricing(t *testing.T) {
	cfg := testConfig(t, twoRegions())
	cfg.Policy = provision.StaticPeak{Intervals: 2}
	cfg.Pricing = cloud.ReservedPricing()
	dep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep.RunUntil(2 * 600)
	for _, r := range dep.Regions() {
		led := r.Cloud.Ledger()
		if got := led.Plan().DisplayName(); got != "reserved" {
			t.Errorf("region %s billed under %q, want reserved", r.Region.Name, got)
		}
		if led.Totals().UpfrontUSD <= 0 {
			t.Errorf("region %s accrued no upfront under the reserved plan", r.Region.Name)
		}
		recs := r.Controller.Records()
		if len(recs) < 2 {
			t.Fatalf("region %s: %d records", r.Region.Name, len(recs))
		}
		// StaticPeak holds its first plan: later rounds repeat it.
		if recs[1].VMPlan.TotalVMs() != recs[len(recs)-1].VMPlan.TotalVMs() {
			t.Errorf("region %s: static plan moved between rounds", r.Region.Name)
		}
	}
}
