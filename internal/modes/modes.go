// Package modes defines the public VoD architecture selector shared by
// pkg/simulate and pkg/paper, and its single canonical mapping onto the
// simulation engine. pkg/simulate aliases the Mode type into the public
// API; the Engine mapping stays internal so engine types never leak.
package modes

import (
	"fmt"

	"cloudmedia/internal/sim"
)

// Mode selects the VoD architecture under test (Sec. III-B).
type Mode int

const (
	// ClientServer serves every chunk straight from dynamically rented
	// cloud capacity, with no peer assistance.
	ClientServer Mode = iota + 1
	// P2P runs the mesh-pull overlay with only the bootstrap (t=0) cloud
	// rental held for the whole run — the static-provisioning baseline the
	// paper's dynamic scheme improves on.
	P2P
	// CloudAssisted is the paper's CloudMedia: the P2P overlay plus the
	// dynamic provisioning controller renting cloud capacity every
	// interval to cover the peer-supply shortfall.
	CloudAssisted
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ClientServer:
		return "client-server"
	case P2P:
		return "p2p"
	case CloudAssisted:
		return "cloud-assisted"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Parse converts a command-line spelling into a Mode. It accepts
// "client-server" (or "cs"), "p2p", and "cloud-assisted" (or
// "cloudmedia").
func Parse(s string) (Mode, error) {
	switch s {
	case "client-server", "cs":
		return ClientServer, nil
	case "p2p":
		return P2P, nil
	case "cloud-assisted", "cloudmedia":
		return CloudAssisted, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want client-server, p2p, or cloud-assisted)", s)
	}
}

// Fidelity selects the simulation engine behind a scenario: the
// per-viewer discrete-event engine or the aggregate fluid-cohort engine.
// The zero value means FidelityEvent, so existing scenarios are
// unaffected.
type Fidelity int

const (
	// FidelityEvent is the per-viewer discrete-event engine
	// (internal/sim): every viewer is an object, memory and event count
	// grow with the crowd. The default, and the reference for accuracy.
	FidelityEvent Fidelity = iota + 1
	// FidelityFluid is the aggregate cohort engine (internal/fluid):
	// O(channels × chunks) state independent of crowd size, so
	// million-viewer scenarios run in seconds. See DESIGN.md "Engine
	// fidelities" for what the model drops.
	FidelityFluid
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case FidelityEvent:
		return "event"
	case FidelityFluid:
		return "fluid"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// ParseFidelity converts a command-line spelling into a Fidelity. It
// accepts "event" (or "discrete") and "fluid" (or "cohort").
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "event", "discrete":
		return FidelityEvent, nil
	case "fluid", "cohort":
		return FidelityFluid, nil
	default:
		return 0, fmt.Errorf("unknown fidelity %q (want event or fluid)", s)
	}
}

// Engine maps the public mode onto the internal simulator mode and whether
// the bootstrap rental is held statically (true = no periodic provisioning
// rounds after t=0).
func Engine(m Mode) (sim.Mode, bool, error) {
	switch m {
	case ClientServer:
		return sim.ClientServer, false, nil
	case P2P:
		return sim.P2P, true, nil
	case CloudAssisted:
		return sim.P2P, false, nil
	default:
		return 0, false, fmt.Errorf("invalid mode %d", int(m))
	}
}
