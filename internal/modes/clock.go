package modes

import "fmt"

// ClockMode selects how a live serving run (internal/serve, pkg/serve)
// paces simulated time against real time. The zero value means "unset":
// consumers apply their own default (the serve daemon defaults to
// ClockReal, tests to ClockSimulated).
type ClockMode int

const (
	// ClockReal paces the engines against the wall clock: one simulated
	// second takes 1/timeScale real seconds. Time-scales of 1–24× cover
	// the paper's day-long traces (24× replays a day in an hour); higher
	// factors are supported for tests and smoke runs.
	ClockReal ClockMode = iota + 1
	// ClockSimulated applies no pacing: the run proceeds as fast as the
	// engines can step, exactly like a batch Run. The deterministic choice
	// for tests — interval decisions are identical either way, only the
	// wall-clock schedule differs.
	ClockSimulated
)

// String implements fmt.Stringer.
func (c ClockMode) String() string {
	switch c {
	case ClockReal:
		return "real"
	case ClockSimulated:
		return "simulated"
	default:
		return fmt.Sprintf("ClockMode(%d)", int(c))
	}
}

// ParseClock converts a command-line spelling into a ClockMode. It
// accepts "real" (or "wall") and "simulated" (or "sim").
func ParseClock(s string) (ClockMode, error) {
	switch s {
	case "real", "wall":
		return ClockReal, nil
	case "simulated", "sim":
		return ClockSimulated, nil
	default:
		return 0, fmt.Errorf("unknown clock %q (want real or simulated)", s)
	}
}
