package modes

import (
	"strings"
	"testing"

	"cloudmedia/internal/sim"
)

func TestStringCoversEveryMode(t *testing.T) {
	want := map[Mode]string{
		ClientServer:  "client-server",
		P2P:           "p2p",
		CloudAssisted: "cloud-assisted",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", int(m), got, s)
		}
	}
}

func TestStringInvalidValues(t *testing.T) {
	for _, m := range []Mode{0, -1, 4, 1 << 20} {
		s := m.String()
		if !strings.HasPrefix(s, "Mode(") {
			t.Errorf("Mode(%d).String() = %q, want Mode(n) form for invalid values", int(m), s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{ClientServer, P2P, CloudAssisted} {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := Parse("Mode(0)"); err == nil {
		t.Error("Parse accepted the invalid-mode String() form")
	}
}

func TestEngineMapping(t *testing.T) {
	cases := []struct {
		mode   Mode
		engine sim.Mode
		static bool
	}{
		{ClientServer, sim.ClientServer, false},
		{P2P, sim.P2P, true},
		{CloudAssisted, sim.P2P, false},
	}
	for _, c := range cases {
		engine, static, err := Engine(c.mode)
		if err != nil || engine != c.engine || static != c.static {
			t.Errorf("Engine(%v) = %v, %v, %v; want %v, %v", c.mode, engine, static, err, c.engine, c.static)
		}
	}
	for _, m := range []Mode{0, -1, 99} {
		if _, _, err := Engine(m); err == nil {
			t.Errorf("Engine(%d) accepted an invalid mode", int(m))
		}
	}
}
