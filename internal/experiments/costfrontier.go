package experiments

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
)

// frontierPolicies are the four provisioning policies the frontier
// compares, in presentation order.
func frontierPolicies() []provision.Policy {
	return []provision.Policy{
		provision.Greedy{},
		provision.Lookahead{},
		provision.Oracle{},
		provision.StaticPeak{},
	}
}

// CostFrontier maps the cost-vs-quality frontier of the provisioning
// policies: every policy × both pricing plans × both engine fidelities on
// the scenario's architecture, each run reporting its mean streaming
// quality against the run's cumulative ledger bill split by tier. Greedy
// is the paper's heuristic; Oracle bounds what perfect prediction could
// save; StaticPeak is what a provider without elastic provisioning would
// pay; Lookahead sits in between. The second table breaks the
// reserved-plan bill down per interval, the Fig. 10 view with
// reserved/on-demand/storage dollars separated.
func CostFrontier(sc Scenario) (*Result, error) {
	sc = sc.pinMode(sc.Mode)
	policies := frontierPolicies()
	pricings := []cloud.PricingPlan{cloud.OnDemandPricing(), cloud.ReservedPricing()}
	fidelities := []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid}

	type combo struct {
		policy   provision.Policy
		pricing  cloud.PricingPlan
		fidelity modes.Fidelity
	}
	var combos []combo
	var family []Scenario
	for _, fid := range fidelities {
		for _, pricing := range pricings {
			for _, policy := range policies {
				run := sc
				run.Fidelity = fid
				run.Pricing = pricing
				run.Policy = policy
				combos = append(combos, combo{policy, pricing, fid})
				family = append(family, run)
			}
		}
	}
	runs, err := RunTimelines(family...)
	if err != nil {
		return nil, fmt.Errorf("costfrontier: %w", err)
	}

	frontier := metrics.NewTable(
		fmt.Sprintf("Cost-vs-quality frontier — policies × pricing plans (%v)", sc.Mode),
		"policy", "pricing", "fidelity", "mean_quality",
		"reserved_usd", "on_demand_usd", "upfront_usd", "storage_usd", "total_usd")
	summary := make(map[string]float64)
	for i, c := range combos {
		tl := runs[i]
		b := tl.Bill
		frontier.AddRow(c.policy.Name(), c.pricing.DisplayName(), c.fidelity.String(), tl.MeanQuality,
			b.ReservedUSD, b.OnDemandUSD, b.UpfrontUSD, b.StorageUSD, b.TotalUSD())
		if c.fidelity == modes.FidelityEvent {
			key := c.policy.Name() + "_" + c.pricing.DisplayName()
			summary[key+"_usd"] = b.TotalUSD()
			if c.pricing.Name == "on-demand" {
				summary[c.policy.Name()+"_quality"] = tl.MeanQuality
			}
		}
	}

	// Per-interval dollar breakdown under the reserved plan, event
	// fidelity: the reserved tier is flat, the on-demand tier follows the
	// diurnal pattern, and the policies differ in how much of it they rent.
	breakdown := metrics.NewTable(
		"Per-interval cost breakdown — reserved pricing, event fidelity ($)",
		"hour", "policy", "reserved_usd", "on_demand_usd", "upfront_usd", "storage_usd", "cumulative_usd")
	for i, c := range combos {
		if c.fidelity != modes.FidelityEvent || c.pricing.Name != "reserved" {
			continue
		}
		var cum float64
		for _, rec := range runs[i].Records {
			cum += rec.Cost.TotalUSD()
			breakdown.AddRow(rec.Time/3600, c.policy.Name(),
				rec.Cost.ReservedUSD, rec.Cost.OnDemandUSD, rec.Cost.UpfrontUSD, rec.Cost.StorageUSD, cum)
		}
	}

	return &Result{
		ID:      "costfrontier",
		Tables:  []*metrics.Table{frontier, breakdown},
		Summary: summary,
	}, nil
}
