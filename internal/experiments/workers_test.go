package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"cloudmedia/internal/modes"
	"cloudmedia/internal/sim"
)

// ensureParallelHost raises GOMAXPROCS so multi-worker configurations
// resolve to real pools even on single-core hosts (sim.EffectiveWorkers
// clamps to GOMAXPROCS at construction time), restoring it on cleanup.
func ensureParallelHost(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestWorkersInvariantAcrossStack runs the paper's default scenario
// through the full stack (controller, broker, ledger) at several worker
// counts and requires the complete measurement record — every snapshot,
// hourly, interval record, and the bill — to match exactly, in both
// streaming modes on both engines. Workers now shards the engines AND the
// controller's per-channel snapshot/derive/forecast planes, so this pins
// the plumbing end to end: the knob changes throughput, never results.
func TestWorkersInvariantAcrossStack(t *testing.T) {
	ensureParallelHost(t, 8)
	for _, mode := range []sim.Mode{sim.ClientServer, sim.P2P} {
		for _, fid := range []modes.Fidelity{modes.FidelityFluid, modes.FidelityEvent} {
			run := func(workers int) *Timeline {
				sc := DefaultScenario(mode, 1)
				sc.Fidelity = fid
				sc.Hours = 4
				sc.Workers = workers
				tl, err := RunTimeline(sc)
				if err != nil {
					t.Fatalf("%v/%v workers=%d: %v", mode, fid, workers, err)
				}
				// The scenario embeds the differing Workers value itself;
				// blank it so DeepEqual compares only what the run produced.
				tl.Scenario = Scenario{}
				return tl
			}
			serial := run(1)
			if serial.MeanQuality <= 0 || len(serial.Snapshots) == 0 {
				t.Fatalf("%v/%v: serial run produced no measurements", mode, fid)
			}
			for _, workers := range []int{4, 8} {
				if got := run(workers); !reflect.DeepEqual(serial, got) {
					t.Errorf("%v/%v: Workers=%d timeline diverged from serial", mode, fid, workers)
				}
			}
		}
	}
}
