package experiments

import (
	"reflect"
	"testing"

	"cloudmedia/internal/modes"
	"cloudmedia/internal/sim"
)

// TestWorkersInvariantAcrossStack runs the paper's default cloud-assisted
// scenario through the full stack (controller, broker, ledger) at several
// worker counts and requires the complete measurement record — every
// snapshot, hourly, interval record, and the bill — to match exactly.
// This pins the Workers plumbing end to end on both engines: the knob
// changes throughput, never results.
func TestWorkersInvariantAcrossStack(t *testing.T) {
	for _, fid := range []modes.Fidelity{modes.FidelityFluid, modes.FidelityEvent} {
		run := func(workers int) *Timeline {
			sc := DefaultScenario(sim.P2P, 1)
			sc.Fidelity = fid
			sc.Hours = 4
			sc.Workers = workers
			tl, err := RunTimeline(sc)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", fid, workers, err)
			}
			// The scenario embeds the differing Workers value itself; blank
			// it so DeepEqual compares only what the run produced.
			tl.Scenario = Scenario{}
			return tl
		}
		serial := run(1)
		if serial.MeanQuality <= 0 || len(serial.Snapshots) == 0 {
			t.Fatalf("%v: serial run produced no measurements", fid)
		}
		for _, workers := range []int{4, 8} {
			if got := run(workers); !reflect.DeepEqual(serial, got) {
				t.Errorf("%v: Workers=%d timeline diverged from serial", fid, workers)
			}
		}
	}
}
