package experiments

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/provision"
)

// Table2 emits the virtual cluster catalog (an input of the paper, shipped
// verbatim as DefaultVMClusters).
func Table2(Scenario) (*Result, error) {
	tbl := metrics.NewTable("Table II — virtual cluster configurations",
		"type", "utility", "memory_mb", "cpu_mhz", "disk_gb", "price_per_hour", "max_vms")
	for _, s := range cloud.DefaultVMClusters() {
		tbl.AddRow(s.Name, s.Utility, s.MemoryMB, s.CPUMHz, s.DiskGB, s.PricePerHour, s.MaxVMs)
	}
	return &Result{ID: "tab2", Tables: []*metrics.Table{tbl}, Summary: map[string]float64{
		"clusters": float64(len(cloud.DefaultVMClusters())),
	}}, nil
}

// Table3 emits the NFS cluster catalog (Table III).
func Table3(Scenario) (*Result, error) {
	tbl := metrics.NewTable("Table III — NFS cluster configurations",
		"type", "utility", "rotation_rpm", "price_per_gb_hour", "capacity_gb")
	for _, s := range cloud.DefaultNFSClusters() {
		tbl.AddRow(s.Name, s.Utility, s.RotationRPM, s.PricePerGBHour, s.CapacityGB)
	}
	return &Result{ID: "tab3", Tables: []*metrics.Table{tbl}, Summary: map[string]float64{
		"clusters": float64(len(cloud.DefaultNFSClusters())),
	}}, nil
}

// VMLatency reproduces the Sec. VI-C lifecycle measurements: launching a
// VM takes ≈25 s, shutdown is faster, and launches proceed in parallel so
// a whole batch becomes active together.
func VMLatency(Scenario) (*Result, error) {
	cl, err := cloud.New(cloud.DefaultVMClusters(), cloud.DefaultNFSClusters())
	if err != nil {
		return nil, err
	}
	if err := cl.SetVMs(0, "standard", 20); err != nil {
		return nil, err
	}
	// Find the activation edge by scanning the clock.
	var activatedAt float64 = -1
	for t := 0.0; t <= 60; t += 0.5 {
		n, err := cl.ActiveVMs(t, "standard")
		if err != nil {
			return nil, err
		}
		if n == 20 {
			activatedAt = t
			break
		}
	}
	if activatedAt < 0 {
		return nil, fmt.Errorf("vmlat: batch never became active")
	}
	tbl := metrics.NewTable("VM lifecycle latency (Sec. VI-C)", "metric", "seconds")
	tbl.AddRow("batch_of_20_active_after", activatedAt)
	tbl.AddRow("configured_boot_latency", cl.BootLatency())
	return &Result{ID: "vmlat", Tables: []*metrics.Table{tbl}, Summary: map[string]float64{
		"boot_seconds": activatedAt,
	}}, nil
}

// StorageCost reproduces the Sec. VI-C storage observation: storing the
// whole 20-channel library costs ≈$0.018/day — negligible next to VM
// rental. It plans placement for the paper-scale library (20 channels ×
// 20 chunks × 15 MB) with the real Table III prices.
func StorageCost(sc Scenario) (*Result, error) {
	var demands []provision.ChunkDemand
	for c := 0; c < 20; c++ {
		for i := 0; i < 20; i++ {
			// Popularity-ordered demands so the heuristic's ordering shows.
			demands = append(demands, provision.ChunkDemand{
				Channel: c, Chunk: i, Demand: float64((20 - c) * (20 - i)),
			})
		}
	}
	const paperChunkBytes = 15e6
	plan, err := provision.PlanStorage(demands, paperChunkBytes, cloud.DefaultNFSClusters(), sc.StorageBudget)
	if err != nil {
		return nil, err
	}
	perDay := plan.CostPerHour * 24
	tbl := metrics.NewTable("Storage cost for the full library (Sec. VI-C)", "metric", "value")
	tbl.AddRow("chunks_stored", len(plan.Placements))
	for name, gb := range plan.GBPerCluster {
		tbl.AddRow("gb_on_"+name, gb)
	}
	tbl.AddRow("cost_per_hour_usd", plan.CostPerHour)
	tbl.AddRow("cost_per_day_usd", perDay)
	return &Result{ID: "storcost", Tables: []*metrics.Table{tbl}, Summary: map[string]float64{
		"cost_per_day_usd": perDay,
	}}, nil
}

// Runner is an experiment entry point.
type Runner func(Scenario) (*Result, error)

// Registry maps experiment IDs (as used by the CLI) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"tab2":         Table2,
		"tab3":         Table3,
		"fig4":         Fig4,
		"fig5":         Fig5,
		"fig6":         Fig6,
		"fig7":         Fig7,
		"fig8":         Fig8,
		"fig9":         Fig9,
		"fig10":        Fig10,
		"fig11":        Fig11,
		"vmlat":        VMLatency,
		"storcost":     StorageCost,
		"timeline":     TimelineReport,
		"regional":     Regional,
		"costfrontier": CostFrontier,
		"tracereplay":  TraceReplay,
		"resilience":   Resilience,
	}
}

// IDs returns the experiment identifiers in a stable presentation order.
func IDs() []string {
	return []string{"tab2", "tab3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "vmlat", "storcost", "timeline", "regional", "costfrontier", "tracereplay", "resilience"}
}
