package experiments

import (
	"fmt"

	"cloudmedia/internal/metrics"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/trace"
)

// TraceReplay demonstrates the record→replay loop the demand-source seam
// unlocks: it runs the scenario on the per-viewer event engine while a
// trace.Recorder bins the realized arrivals, then replays the recovered
// trace through both engine fidelities and compares the aggregates. The
// replayed runs must reproduce the recorded quality, provisioned
// bandwidth, and cost within the DESIGN.md "Engine fidelities"
// tolerances — the cross-validation contract, now checkable against any
// recorded workload rather than only the parametric one.
func TraceReplay(sc Scenario) (*Result, error) {
	if sc.Mode == 0 {
		sc.Mode = sim.ClientServer
	}
	base := sc
	base.Fidelity = modes.FidelityEvent // record on the per-viewer reference engine

	// The recording run keeps the scenario's own demand — the parametric
	// workload, or whatever source -trace installed — so the experiment
	// validates the loop on the demand the caller actually asked about.
	channels := base.Workload.Channels
	if base.Source != nil {
		channels = base.Source.NumChannels()
	}
	rec, err := trace.NewRecorder(channels, base.SampleSeconds)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: %w", err)
	}
	base.OnArrivals = rec.Add
	recorded, err := RunTimeline(base)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: recording run: %w", err)
	}
	tr, err := rec.Trace(base.Hours * 3600)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: %w", err)
	}

	replayEvent := sc
	replayEvent.Fidelity = modes.FidelityEvent
	replayEvent.OnArrivals = nil
	replayEvent.Source = tr
	// A different seed decorrelates the replay's Poisson thinning from
	// the recording's: the replay must reproduce the aggregates because
	// the recovered intensity is right, not because it re-rolls the same
	// dice.
	replayEvent.Seed = sc.Seed + 1
	replayFluid := replayEvent
	replayFluid.Fidelity = modes.FidelityFluid
	tls, err := RunTimelines(replayEvent, replayFluid)
	if err != nil {
		return nil, fmt.Errorf("tracereplay: replay runs: %w", err)
	}
	event, fluid := tls[0], tls[1]

	tbl := metrics.NewTable("Trace record → replay — aggregates across engines",
		"metric", "recorded", "replay_event", "replay_fluid")
	tbl.AddRow("quality_mean", recorded.MeanQuality, event.MeanQuality, fluid.MeanQuality)
	tbl.AddRow("reserved_mean_mbps", recorded.MeanReservedMbps(), event.MeanReservedMbps(), fluid.MeanReservedMbps())
	tbl.AddRow("covered_fraction", recorded.ReservedCoversUsedFraction(), event.ReservedCoversUsedFraction(), fluid.ReservedCoversUsedFraction())
	tbl.AddRow("vm_cost_usd", recorded.VMCostTotal, event.VMCostTotal, fluid.VMCostTotal)

	return &Result{
		ID:     "tracereplay",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"recorded_quality":           recorded.MeanQuality,
			"replay_event_quality":       event.MeanQuality,
			"replay_fluid_quality":       fluid.MeanQuality,
			"recorded_reserved_mbps":     recorded.MeanReservedMbps(),
			"replay_event_reserved_mbps": event.MeanReservedMbps(),
			"replay_fluid_reserved_mbps": fluid.MeanReservedMbps(),
			"recorded_vm_cost_usd":       recorded.VMCostTotal,
			"replay_event_vm_cost_usd":   event.VMCostTotal,
			"replay_fluid_vm_cost_usd":   fluid.VMCostTotal,
			"trace_samples":              float64(len(tr.Times)),
			"trace_channels":             float64(tr.NumChannels()),
		},
	}, nil
}
