package experiments

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/fluid"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// ViewersPerScale is the approximate steady-state concurrent viewer count
// one unit of workload scale buys under DefaultScenario's session length
// (the "scale 1 targets ~250 concurrent viewers" contract of the public
// API). WithViewerScale converts absolute viewer targets through it.
const ViewersPerScale = 250

// BaseRateForViewers returns the aggregate base arrival rate that targets
// the given steady-state concurrent viewer count under DefaultScenario's
// session length — the absolute counterpart of the relative scale knob
// (DefaultScenario uses 0.6 users/s per unit of scale).
func BaseRateForViewers(viewers float64) float64 {
	return 0.6 * viewers / ViewersPerScale
}

// Scenario bundles every knob an experiment run needs.
type Scenario struct {
	Mode sim.Mode
	// Fidelity selects the engine: zero or modes.FidelityEvent builds the
	// per-viewer discrete-event simulator, modes.FidelityFluid the
	// aggregate cohort integrator (for million-viewer scale).
	Fidelity        modes.Fidelity
	Channel         queueing.Config
	Workload        workload.Params
	Hours           float64 // simulated duration
	IntervalSeconds float64 // controller period T
	VMBudget        float64 // B_M, $/hour
	StorageBudget   float64 // B_S, $/hour
	Seed            int64
	SampleSeconds   float64 // measurement sampling period
	UplinkRatio     float64 // if > 0, rescale peer uplinks to ratio × r (Fig. 11)
	// Predictor overrides the controller's arrival-rate forecaster; nil
	// uses the paper's last-interval rule.
	Predictor core.Predictor
	// Policy selects the provisioning policy; nil uses provision.Greedy,
	// the paper's heuristic.
	Policy provision.Policy
	// Pricing selects the billing plan the cloud ledger accrues under;
	// the zero value is pure on-demand, the paper's literal pricing.
	Pricing cloud.PricingPlan
	// Faults is the declarative failure plan injected at control barriers:
	// spot preemptions and capacity degradations apply directly; region
	// outages degenerate to full blackouts in a single-region run (the
	// "regional" experiment realizes them as cross-region failover
	// instead). nil injects nothing — though a spot Pricing plan with an
	// interruption rate still drives its own seeded preemption process.
	Faults *fault.Schedule
	// Scheduling overrides the P2P uplink allocation policy; zero uses
	// rarest-first, the paper's scheme.
	Scheduling sim.PeerScheduling
	// Workers bounds the worker pool both engines use to step channels in
	// parallel between control barriers; 0 means GOMAXPROCS. Results are
	// bit-identical for every value.
	Workers int
	// VMClusters and NFSClusters override the rental catalogs; nil uses the
	// paper's Table II/III defaults. Regional price lists are the
	// interesting knob (see examples/multiregion).
	VMClusters  []cloud.VMClusterSpec
	NFSClusters []cloud.NFSClusterSpec
	// StaticProvisioning keeps the bootstrap (t=0) rental for the whole
	// run instead of starting the periodic controller — the
	// fixed-provisioning baseline the paper's dynamic scheme improves on.
	StaticProvisioning bool
	// Source overrides the demand side of the workload: per-channel
	// arrival intensity over time (a recorded trace, a synthetic
	// generator, …). nil keeps the parametric Workload demand. When set,
	// the channel count follows the source; Workload still supplies the
	// behavioural parameters (VCR jumps, peer uplinks) and the oracle
	// policies' true rates come from the source.
	Source workload.Source
	// OnArrivals observes every realized arrival (channel, time, mass) —
	// the recording seam behind trace.Recorder. Calls for one channel are
	// serialized; different channels may call concurrently from the event
	// engine's channel workers.
	OnArrivals func(channel int, t, n float64)
	// OnInterval streams each provisioning round to the caller as soon as
	// it completes; nil disables streaming.
	OnInterval func(core.IntervalRecord)
	// Pacer is forwarded to the engine's pacing hook (sim.Config.Pacer):
	// called once per control barrier, before state advances, so a live
	// serving layer can sleep the run against a wall clock. nil runs the
	// engines at full speed.
	Pacer func(simNow float64)
	// DiscardRecords drops the controller's in-memory interval history so
	// long streaming runs hold only the current round.
	DiscardRecords bool
}

// DefaultScenario returns the reduced-scale counterpart of the paper's
// setup: Zipf channels, diurnal arrivals with two flash crowds, hourly
// provisioning, Table II/III clusters, B_M = $100/h, B_S = $1/h.
//
// Three deliberate reductions keep runs laptop-sized (recorded in
// EXPERIMENTS.md): 10 channels of 8×75 s chunks instead of 20 channels of
// 20×300 s (same 1:25 r/R ratio, proportionally shorter videos), and an
// arrival rate targeting ~250 concurrent viewers instead of ~2500. The
// chunk-queue count (80) is sized against the unchanged Table II cluster
// capacity (150 VMs) the same way the paper's 400 queues sat against its
// 150 VMs: client-server demand lands near the paper's ≈$48/h average
// without saturating the clusters, leaving the P2P savings visible. Pass
// scale > 1 to move toward paper-scale crowds.
func DefaultScenario(mode sim.Mode, scale float64) Scenario {
	if scale <= 0 {
		scale = 1
	}
	wl := workload.Default()
	wl.Channels = 6
	wl.ZipfExponent = 0.8
	wl.BaseArrivalRate = 0.6 * scale // ≈300·scale concurrent at mean session ≈7 min
	wl.JumpMeanSeconds = 225         // 3 chunks, preserving the paper's jump:chunk ratio
	return Scenario{
		Mode: mode,
		Channel: queueing.Config{
			Chunks:          8,
			PlaybackRate:    50e3,
			ChunkSeconds:    75,
			VMBandwidth:     cloud.DefaultVMBandwidth,
			EntryFirstChunk: 0.7,
			// Provision at fifth-of-a-VM granularity (2 Mbps slots): the
			// fractional VM shares of Eqn. (7) in action. See the
			// queueing.Config.SlotsPerVM doc comment.
			SlotsPerVM: 5,
		},
		Workload:        wl,
		Hours:           24,
		IntervalSeconds: 3600,
		VMBudget:        100,
		StorageBudget:   1,
		Seed:            42,
		SampleSeconds:   900,
	}
}

// pinMode returns a copy of the scenario locked to the given engine mode.
// It also clears StaticProvisioning: a public "p2p" scenario carries the
// hold-the-bootstrap override, but a figure that pins its own modes is
// defined over dynamically provisioned runs and must not inherit it.
func (sc Scenario) pinMode(m sim.Mode) Scenario {
	sc.Mode = m
	sc.StaticProvisioning = false
	return sc
}

// System is one assembled CloudMedia stack. Sim is the engine behind the
// scenario's fidelity: *sim.Simulator for event mode, *fluid.Backend for
// fluid mode — callers only see the sim.Backend seam.
type System struct {
	Scenario   Scenario
	Sim        sim.Backend
	Cloud      *cloud.Cloud
	Broker     *cloud.Broker
	Controller *core.Controller
	Transfer   queueing.TransferMatrix
}

// Build assembles the stack and applies bootstrap provisioning from the
// analytic t=0 estimates, exactly as Sec. V-B describes ("based on the
// application's empirical user scale and viewing pattern information").
func Build(sc Scenario) (*System, error) {
	if sc.Hours <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v h", sc.Hours)
	}
	if sc.SampleSeconds <= 0 {
		sc.SampleSeconds = 900
	}
	// Resolve the demand source: the scenario's override (cloned so
	// concurrent runs share no lazy caches) or the parametric workload.
	// Everything downstream — the engines' arrival sampling, the
	// bootstrap estimates, and the oracle policies' true rates — reads
	// demand through this one seam.
	var demand workload.Source
	if sc.Source != nil {
		demand = sc.Source.CloneSource()
		if err := demand.Validate(); err != nil {
			return nil, err
		}
		sc.Workload.Channels = demand.NumChannels()
	} else {
		demand = sc.Workload.Source()
	}
	if sc.UplinkRatio > 0 {
		up, err := workload.UplinkForRatio(sc.Channel.PlaybackRate, sc.UplinkRatio)
		if err != nil {
			return nil, err
		}
		sc.Workload.PeerUplink = up
	}
	// Jump probability per chunk ≈ T₀ / mean jump interval.
	jump := sc.Channel.ChunkSeconds / sc.Workload.JumpMeanSeconds
	if jump > 1 {
		jump = 1
	}
	transfer, err := viewing.SequentialWithJumps(sc.Channel.Chunks, 0.9, jump)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Mode:       sc.Mode,
		Channel:    sc.Channel,
		Workload:   sc.Workload,
		Source:     demand,
		OnArrivals: sc.OnArrivals,
		Pacer:      sc.Pacer,
		Transfer:   transfer,
		Scheduling: sc.Scheduling,
		Workers:    sc.Workers,
		Seed:       sc.Seed,
	}
	var s sim.Backend
	switch sc.Fidelity {
	case 0, modes.FidelityEvent:
		s, err = sim.New(simCfg)
	case modes.FidelityFluid:
		s, err = fluid.New(fluid.Config{Sim: simCfg})
	default:
		err = fmt.Errorf("experiments: invalid fidelity %d", int(sc.Fidelity))
	}
	if err != nil {
		return nil, err
	}
	vmSpecs := sc.VMClusters
	if vmSpecs == nil {
		vmSpecs = cloud.DefaultVMClusters()
	}
	nfsSpecs := sc.NFSClusters
	if nfsSpecs == nil {
		nfsSpecs = cloud.DefaultNFSClusters()
	}
	cl, err := cloud.New(vmSpecs, nfsSpecs, cloud.WithPricing(sc.Pricing))
	if err != nil {
		return nil, err
	}
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		return nil, err
	}
	ctl, err := core.NewController(s, cl, broker, core.Options{
		IntervalSeconds:      sc.IntervalSeconds,
		VMBudgetPerHour:      sc.VMBudget,
		StorageBudgetPerHour: sc.StorageBudget,
		FallbackTransfer:     transfer,
		ApplyBootLatency:     true,
		// The live overlay lags the equilibrium ownership model, so trust
		// 70% of the analytic peer supply and keep 20% provisioning slack
		// — the reserved ≈ 1.5–2× used margin visible in the paper's Fig. 4.
		PeerSupplyTrust:   0.7,
		ProvisionHeadroom: 1.2,
		Predictor:         sc.Predictor,
		Policy:            sc.Policy,
		// Oracle policies plan on the true arrival intensity of the
		// demand source — parametric or trace alike; the feed is always
		// wired, and only policies that declare Oracle() == true ever
		// consult it. It closes over the run's private source copy, so
		// concurrent runs share no state.
		TrueRates: func(channel int, start, end float64) float64 {
			r, err := demand.MeanRate(channel, start, end)
			if err != nil {
				return 0
			}
			return r
		},
		OnInterval:     sc.OnInterval,
		DiscardHistory: sc.DiscardRecords,
		// The control plane shards per-channel work over the same worker
		// budget as the engines; results are worker-count-invariant on
		// both planes.
		Workers: sc.Workers,
	})
	if err != nil {
		return nil, err
	}

	// Inject the fault plan (and the pricing plan's spot-interruption
	// process) at this run's control barriers. Single-region runs realize
	// region outages as full blackouts — there is nowhere to fail over to.
	target := fault.Target{
		Backend:         s,
		Cloud:           cl,
		Controller:      ctl,
		IntervalSeconds: sc.IntervalSeconds,
		Seed:            sc.Seed,
	}
	if err := fault.Attach(target, sc.Faults); err != nil {
		return nil, err
	}
	if err := fault.AttachBlackouts(target, sc.Faults); err != nil {
		return nil, err
	}

	sys := &System{Scenario: sc, Sim: s, Cloud: cl, Broker: broker, Controller: ctl, Transfer: transfer}
	inputs := make([]core.ChannelInput, s.Channels())
	for c := range inputs {
		rate, err := demand.Rate(c, 0)
		if err != nil {
			return nil, err
		}
		inputs[c] = core.ChannelInput{
			ArrivalRate: rate,
			Transfer:    transfer,
			MeanUplink:  sc.Workload.PeerUplink.Mean(),
		}
	}
	ctl.Provision(0, inputs)
	if !sc.StaticProvisioning {
		if err := ctl.Start(); err != nil {
			return nil, err
		}
	}
	return sys, nil
}
