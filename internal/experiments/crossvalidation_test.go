package experiments

import (
	"math"
	"testing"

	"cloudmedia/internal/modes"
)

// Cross-validation tolerances for fluid vs event mode on the paper's
// Fig. 4/5 scenarios. These are the documented contract of the fluid
// engine (DESIGN.md "Engine fidelities"): quality within 0.03 absolute,
// provisioned bandwidth within 15% relative, budget-coverage fraction
// within 0.1 absolute. Observed agreement at the default scenario is
// roughly 5× tighter on every metric; the slack absorbs seed-to-seed
// variance of the event engine.
const (
	xvalQualityTol  = 0.03
	xvalReservedTol = 0.15
	xvalCoveredTol  = 0.1
)

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a/b - 1)
}

// fidelityPair returns the default fig4/5/10 scenario under both engine
// fidelities — the shared fixture of every cross-validation test.
func fidelityPair() (event, fluid Scenario) {
	event = DefaultScenario(0, 1)
	fluid = event
	fluid.Fidelity = modes.FidelityFluid
	return event, fluid
}

// TestFluidCrossValidatesFig4 pins the fluid engine's provisioning
// behaviour (reserved bandwidth, coverage, and the P2P-vs-client-server
// saving — Fig. 4's claims) against the event engine.
func TestFluidCrossValidatesFig4(t *testing.T) {
	event, fluid := fidelityPair()

	re, err := Fig4(event)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Fig4(fluid)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cs_reserved_mean_mbps", "p2p_reserved_mean_mbps"} {
		if d := relDiff(rf.Summary[key], re.Summary[key]); d > xvalReservedTol {
			t.Errorf("%s: fluid %v vs event %v (%.1f%% off, tol %.0f%%)",
				key, rf.Summary[key], re.Summary[key], d*100, xvalReservedTol*100)
		}
	}
	for _, key := range []string{"cs_covered_fraction", "p2p_covered_fraction"} {
		if d := math.Abs(rf.Summary[key] - re.Summary[key]); d > xvalCoveredTol {
			t.Errorf("%s: fluid %v vs event %v", key, rf.Summary[key], re.Summary[key])
		}
	}
	// The headline claim: P2P provisions far below client-server, and
	// both engines agree on the saving.
	if rf.Summary["p2p_over_cs_reserved"] >= 1 {
		t.Errorf("fluid lost the P2P saving: p2p/cs = %v", rf.Summary["p2p_over_cs_reserved"])
	}
	if d := math.Abs(rf.Summary["p2p_over_cs_reserved"] - re.Summary["p2p_over_cs_reserved"]); d > xvalReservedTol {
		t.Errorf("p2p/cs reserved ratio: fluid %v vs event %v",
			rf.Summary["p2p_over_cs_reserved"], re.Summary["p2p_over_cs_reserved"])
	}
}

// TestFluidCrossValidatesFig5 pins the fluid engine's streaming-quality
// curve (Fig. 5's metric) against the event engine.
func TestFluidCrossValidatesFig5(t *testing.T) {
	event, fluid := fidelityPair()

	re, err := Fig5(event)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Fig5(fluid)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cs_quality_mean", "p2p_quality_mean"} {
		if d := math.Abs(rf.Summary[key] - re.Summary[key]); d > xvalQualityTol {
			t.Errorf("%s: fluid %v vs event %v (Δ %.4f, tol %.2f)",
				key, rf.Summary[key], re.Summary[key], d, xvalQualityTol)
		}
		if rf.Summary[key] < 0.9 {
			t.Errorf("%s: fluid quality %v collapsed below 0.9", key, rf.Summary[key])
		}
	}
}

// TestFluidCostTracksEvent pins the run cost (the Fig. 10 view of the
// same scenarios) across engines: the controller driven by fluid
// estimates must land within the reserved-bandwidth tolerance of the
// event-mode bill.
func TestFluidCostTracksEvent(t *testing.T) {
	event, fluid := fidelityPair()

	re, err := Fig10(event)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Fig10(fluid)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cs_cost_per_hour", "p2p_cost_per_hour"} {
		if d := relDiff(rf.Summary[key], re.Summary[key]); d > xvalReservedTol {
			t.Errorf("%s: fluid %v vs event %v (%.1f%% off)",
				key, rf.Summary[key], re.Summary[key], d*100)
		}
	}
}
