package experiments

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/geo"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/viewing"
)

// resilienceCombos are the policy × pricing pairings the experiment
// compares, in presentation order: the paper's greedy on the safe plan,
// greedy naively taking the spot discount, the hedged lookahead that
// prices the interruption risk into its targets, and the
// perfect-prediction bound.
func resilienceCombos() []struct {
	key     string
	policy  provision.Policy
	pricing cloud.PricingPlan
} {
	return []struct {
		key     string
		policy  provision.Policy
		pricing cloud.PricingPlan
	}{
		{"greedy_ondemand", provision.Greedy{}, cloud.OnDemandPricing()},
		{"greedy_spot", provision.Greedy{}, cloud.SpotPricing()},
		{"hedged_spot", provision.Lookahead{SpotHedge: true}, cloud.SpotPricing()},
		{"oracle_ondemand", provision.Oracle{}, cloud.OnDemandPricing()},
	}
}

// Resilience compares provisioning policies under adversity: every combo
// of resilienceCombos × two single-region fault kinds (the spot
// mass-preemption and the evening brownout, both inside the flash crowd)
// × both engine fidelities, plus a multi-region outage realized as geo
// failover. The question the table answers: does the hedged lookahead
// keep the spot discount's savings without giving the quality back when
// the provider mass-preempts — against greedy-on-demand (safe, dear),
// greedy-on-spot (cheap, fragile), and the oracle bound.
func Resilience(sc Scenario) (*Result, error) {
	sc = sc.pinMode(sc.Mode)
	presets := fault.Presets()
	faults := []struct {
		key   string
		sched *fault.Schedule
	}{
		{"preempt", presets["preempt-peak"]},
		{"degrade", presets["degrade-evening"]},
	}
	fidelities := []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid}
	combos := resilienceCombos()

	type run struct {
		fault, combo string
		fidelity     modes.Fidelity
	}
	var meta []run
	var family []Scenario
	for _, fid := range fidelities {
		for _, f := range faults {
			for _, c := range combos {
				r := sc
				r.Fidelity = fid
				r.Policy = c.policy
				r.Pricing = c.pricing
				r.Faults = f.sched
				meta = append(meta, run{f.key, c.key, fid})
				family = append(family, r)
			}
		}
	}
	runs, err := RunTimelines(family...)
	if err != nil {
		return nil, fmt.Errorf("resilience: %w", err)
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("Resilience — policies × pricing under faults (%v)", sc.Mode),
		"fault", "policy_pricing", "fidelity", "mean_quality",
		"spot_usd", "on_demand_usd", "interruptions", "total_usd")
	summary := make(map[string]float64)
	for i, m := range meta {
		tl := runs[i]
		b := tl.Bill
		tbl.AddRow(m.fault, m.combo, m.fidelity.String(), tl.MeanQuality,
			b.SpotUSD, b.OnDemandUSD, b.Interruptions, b.TotalUSD())
		if m.fidelity == modes.FidelityEvent {
			summary[m.fault+"_"+m.combo+"_usd"] = b.TotalUSD()
			summary[m.fault+"_"+m.combo+"_quality"] = tl.MeanQuality
			summary[m.fault+"_"+m.combo+"_interruptions"] = float64(b.Interruptions)
		}
	}

	// The outage leg: a three-region deployment losing its largest region
	// mid-flash-crowd, arrivals failing over to the survivors and back.
	geoTbl, err := resilienceOutage(sc, presets["outage-flash"], summary)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:      "resilience",
		Tables:  []*metrics.Table{tbl, geoTbl},
		Summary: summary,
	}, nil
}

// resilienceOutage runs the outage-flash schedule through the geo
// deployment on both fidelities and reports the per-region outcome:
// migrated arrival shares, failover transfer dollars, and the quality
// cost of serving a failed region's crowd from the survivors.
func resilienceOutage(sc Scenario, sched *fault.Schedule, summary map[string]float64) (*metrics.Table, error) {
	jump := sc.Channel.ChunkSeconds / sc.Workload.JumpMeanSeconds
	if jump > 1 {
		jump = 1
	}
	transfer, err := viewing.SequentialWithJumps(sc.Channel.Chunks, 0.9, jump)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"Resilience — region outage with cross-region failover",
		"fidelity", "region", "users", "quality", "transfer_usd", "total_usd")
	for _, fid := range []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid} {
		dep, err := geo.New(geo.Config{
			Regions:              geo.DefaultRegions(),
			Mode:                 sc.Mode,
			Fidelity:             fid,
			Policy:               sc.Policy,
			Channel:              sc.Channel,
			Workload:             sc.Workload,
			Faults:               sched,
			IntervalSeconds:      sc.IntervalSeconds,
			VMBudgetPerHour:      sc.VMBudget,
			StorageBudgetPerHour: sc.StorageBudget,
			Transfer:             transfer,
			Seed:                 sc.Seed,
			Workers:              sc.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("resilience outage: %w", err)
		}
		dep.RunUntil(sc.Hours * 3600)
		regions, totalVM, totalStorage := dep.Report()
		var transferUSD, qualitySum float64
		for _, r := range regions {
			tbl.AddRow(fid.String(), r.Name, r.Users, r.Quality, r.Bill.TransferUSD, r.Bill.TotalUSD())
			transferUSD += r.Bill.TransferUSD
			qualitySum += r.Quality
		}
		if fid == modes.FidelityEvent {
			summary["outage_transfer_usd"] = transferUSD
			summary["outage_total_usd"] = totalVM + totalStorage + transferUSD
			summary["outage_mean_region_quality"] = qualitySum / float64(len(regions))
		}
	}
	return tbl, nil
}
