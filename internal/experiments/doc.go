// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each runner assembles the full CloudMedia stack —
// workload trace, streaming simulator, cloud, broker, controller — runs it
// over simulated time, and emits the same rows/series the paper reports.
//
// Scale is configurable: the paper simulates a week of ~2500 concurrent
// users; the default Scenario is reduced so the whole suite finishes on a
// laptop, and EXPERIMENTS.md records the scale each result was produced at.
// Shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target, not absolute numbers.
package experiments
