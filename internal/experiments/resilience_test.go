package experiments

import (
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
)

// TestHedgedLookaheadBeatsGreedyUnderPreemption is the PR 10 acceptance
// pin: under a spot mass-preemption mid-run, the hedged lookahead on the
// spot plan must come in cheaper than greedy on safe on-demand capacity
// at equal-or-better quality (within a small tolerance), on BOTH engine
// fidelities — otherwise the risk discount is not earning its keep.
func TestHedgedLookaheadBeatsGreedyUnderPreemption(t *testing.T) {
	preempt := &fault.Schedule{
		Name:        "preempt@6h",
		Preemptions: []fault.SpotPreemption{{At: 6 * 3600, Fraction: 0.6}},
	}
	for _, fid := range []modes.Fidelity{modes.FidelityEvent, modes.FidelityFluid} {
		base := DefaultScenario(sim.P2P, 1)
		base.Hours = 8
		base.Fidelity = fid
		base.Faults = preempt

		greedy := base
		greedy.Policy = provision.Greedy{}
		greedy.Pricing = cloud.OnDemandPricing()
		hedged := base
		hedged.Policy = provision.Lookahead{SpotHedge: true}
		hedged.Pricing = cloud.SpotPricing()

		tls, err := RunTimelines(greedy, hedged)
		if err != nil {
			t.Fatalf("fidelity %v: %v", fid, err)
		}
		g, h := tls[0], tls[1]
		if h.Bill.TotalUSD() >= g.Bill.TotalUSD() {
			t.Errorf("fidelity %v: hedged spot bill $%.2f not below greedy on-demand $%.2f",
				fid, h.Bill.TotalUSD(), g.Bill.TotalUSD())
		}
		if h.MeanQuality < g.MeanQuality-0.01 {
			t.Errorf("fidelity %v: hedged quality %.4f gave back too much vs greedy %.4f",
				fid, h.MeanQuality, g.MeanQuality)
		}
		if h.Bill.Interruptions == 0 {
			t.Errorf("fidelity %v: spot run recorded no interruptions — preemption never fired", fid)
		}
		if g.Bill.Interruptions != 0 || g.Bill.SpotUSD != 0 {
			t.Errorf("fidelity %v: on-demand run touched the spot market: %+v", fid, g.Bill)
		}
	}
}

// TestScenarioFaultsValidateAndClone: Build rejects a malformed fault
// schedule, and the fault plumbing survives scenario derivation.
func TestScenarioFaultsValidate(t *testing.T) {
	sc := DefaultScenario(sim.P2P, 1)
	sc.Hours = 1
	sc.Faults = &fault.Schedule{Preemptions: []fault.SpotPreemption{{At: -5, Fraction: 0.5}}}
	if _, err := RunTimeline(sc); err == nil {
		t.Error("negative preemption time accepted by Build")
	}
}

// TestResilienceSmoke runs the full experiment family at a reduced
// horizon to keep the registry honest: every combo, both fault kinds,
// and the geo-failover leg must produce tables and the summary keys the
// docs promise.
func TestResilienceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience family is a long run")
	}
	sc := DefaultScenario(sim.P2P, 1)
	sc.Hours = 24
	res, err := Resilience(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables")
	}
	for _, key := range []string{
		"preempt_greedy_ondemand_usd", "preempt_hedged_spot_usd",
		"preempt_hedged_spot_quality", "preempt_hedged_spot_interruptions",
		"degrade_greedy_ondemand_usd",
		"outage_transfer_usd", "outage_total_usd", "outage_mean_region_quality",
	} {
		if _, ok := res.Summary[key]; !ok {
			t.Errorf("summary missing %q (have %v)", key, res.Summary)
		}
	}
	if res.Summary["outage_transfer_usd"] <= 0 {
		t.Error("geo failover leg charged no transfer dollars")
	}
	if res.Summary["preempt_hedged_spot_usd"] >= res.Summary["preempt_greedy_ondemand_usd"] {
		t.Errorf("hedged spot $%.2f not below greedy on-demand $%.2f in the family run",
			res.Summary["preempt_hedged_spot_usd"], res.Summary["preempt_greedy_ondemand_usd"])
	}
}
