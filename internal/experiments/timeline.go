package experiments

import (
	"fmt"
	"sync"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/metrics"
)

// Snapshot is one periodic measurement of the running system.
type Snapshot struct {
	Time                   float64
	Quality                float64
	PerChannelQuality      []float64
	PerChannelUsers        []int
	PerChannelReservedMbps []float64
	TotalUsers             int
}

// Hourly is one hour's bandwidth and cost accounting.
type Hourly struct {
	Hour          float64
	ReservedMbps  float64 // cloud capacity provisioned at the sample instant
	UsedMbps      float64 // average cloud bandwidth actually served this hour
	VMCostPerHour float64 // dollars accrued this hour for VM rental
}

// Timeline is the full measurement record of one run; every figure is a
// projection of it.
type Timeline struct {
	Scenario  Scenario
	Snapshots []Snapshot
	Hourlies  []Hourly
	Records   []core.IntervalRecord

	VMCostTotal      float64
	StorageCostTotal float64
	// Bill is the ledger's view of the run under the scenario's pricing
	// plan, dollars split reserved / on-demand / upfront / storage.
	Bill cloud.LedgerTotals
	// LedgerNotes carries the ledger diagnostics (infeasible budgets,
	// failed storage plans) accumulated over the run.
	LedgerNotes []cloud.Note
	MeanQuality float64
}

// bytesPerSecToMbps converts bytes/s to megabits/s, the paper's unit.
func bytesPerSecToMbps(b float64) float64 { return b * 8 / 1e6 }

// RunTimeline builds the system for the scenario, runs it for
// Scenario.Hours of simulated time, and returns the measurement record.
func RunTimeline(sc Scenario) (*Timeline, error) {
	sys, err := Build(sc)
	if err != nil {
		return nil, err
	}
	tl := &Timeline{Scenario: sc}
	s := sys.Sim

	if err := s.ScheduleRepeating(sc.SampleSeconds, sc.SampleSeconds, func(now float64) {
		q := s.SampleQuality()
		snap := Snapshot{
			Time:                   now,
			Quality:                q.Overall,
			PerChannelQuality:      q.PerChannel,
			PerChannelUsers:        q.UsersPerChannel,
			PerChannelReservedMbps: make([]float64, s.Channels()),
			TotalUsers:             s.TotalUsers(),
		}
		for c := 0; c < s.Channels(); c++ {
			cap, err := s.CloudCapacity(c)
			if err == nil {
				snap.PerChannelReservedMbps[c] = bytesPerSecToMbps(cap)
			}
		}
		tl.Snapshots = append(tl.Snapshots, snap)
	}); err != nil {
		return nil, err
	}

	var prevBytes, prevCost float64
	if err := s.ScheduleRepeating(3600, 3600, func(now float64) {
		sys.Cloud.Advance(now)
		vmCost, _ := sys.Cloud.Costs()
		served := s.CloudBytesServed()
		tl.Hourlies = append(tl.Hourlies, Hourly{
			Hour:          now / 3600,
			ReservedMbps:  bytesPerSecToMbps(s.TotalCloudCapacity()),
			UsedMbps:      bytesPerSecToMbps((served - prevBytes) / 3600),
			VMCostPerHour: vmCost - prevCost,
		})
		prevBytes = served
		prevCost = vmCost
	}); err != nil {
		return nil, err
	}

	s.RunUntil(sc.Hours * 3600)
	sys.Cloud.Advance(s.Now())
	tl.VMCostTotal, tl.StorageCostTotal = sys.Cloud.Costs()
	tl.Bill = sys.Cloud.Ledger().Totals()
	tl.LedgerNotes = sys.Cloud.Ledger().Diagnostics()
	tl.Records = sys.Controller.Records()

	var qSum float64
	for _, snap := range tl.Snapshots {
		qSum += snap.Quality
	}
	if len(tl.Snapshots) > 0 {
		tl.MeanQuality = qSum / float64(len(tl.Snapshots))
	}
	return tl, nil
}

// RunTimelines runs the scenarios concurrently and returns their
// timelines in input order. The figure experiments' run-families (mode
// vs. mode, ratio vs. ratio) are independent simulations, so they fan out
// across cores the same way pkg/sweep's worker pool fans out user grids;
// each Scenario is passed by value and Build assembles a private engine,
// so runs share no mutable state. The first error (lowest input index)
// wins.
func RunTimelines(scs ...Scenario) ([]*Timeline, error) {
	tls := make([]*Timeline, len(scs))
	errs := make([]error, len(scs))
	var wg sync.WaitGroup
	for i, sc := range scs {
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			tls[i], errs[i] = RunTimeline(sc)
		}(i, sc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d (%v): %w", i, scs[i].Mode, err)
		}
	}
	return tls, nil
}

// TimelineReport runs the scenario exactly as configured — unlike the
// figure experiments, which pin the modes they are defined over, this is
// the registry entry that honours the scenario's Mode and
// StaticProvisioning — and reports the hourly provisioning view:
// reserved vs used bandwidth, VM spend, and streaming quality.
func TimelineReport(sc Scenario) (*Result, error) {
	tl, err := RunTimeline(sc)
	if err != nil {
		return nil, fmt.Errorf("timeline run: %w", err)
	}
	label := sc.Mode.String()
	if sc.StaticProvisioning {
		label += ", static provisioning"
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Hourly provisioning timeline (%s)", label),
		"hour", "reserved_mbps", "used_mbps", "vm_cost_per_hour")
	for _, h := range tl.Hourlies {
		tbl.AddRow(h.Hour, h.ReservedMbps, h.UsedMbps, h.VMCostPerHour)
	}
	return &Result{
		ID:     "timeline",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"mean_quality":           tl.MeanQuality,
			"vm_cost_total_usd":      tl.VMCostTotal,
			"storage_cost_total_usd": tl.StorageCostTotal,
			"mean_reserved_mbps":     tl.MeanReservedMbps(),
			"reserved_covers_used":   tl.ReservedCoversUsedFraction(),
		},
	}, nil
}

// MeanHourlyVMCost returns the average of the hourly VM rental costs.
func (tl *Timeline) MeanHourlyVMCost() float64 {
	if len(tl.Hourlies) == 0 {
		return 0
	}
	var sum float64
	for _, h := range tl.Hourlies {
		sum += h.VMCostPerHour
	}
	return sum / float64(len(tl.Hourlies))
}

// MeanReservedMbps returns the average provisioned cloud bandwidth.
func (tl *Timeline) MeanReservedMbps() float64 {
	if len(tl.Hourlies) == 0 {
		return 0
	}
	var sum float64
	for _, h := range tl.Hourlies {
		sum += h.ReservedMbps
	}
	return sum / float64(len(tl.Hourlies))
}

// ReservedCoversUsedFraction returns the fraction of hours in which the
// provisioned bandwidth was at least the used bandwidth — Fig. 4's
// "provisioned is larger than used in the majority of time".
func (tl *Timeline) ReservedCoversUsedFraction() float64 {
	if len(tl.Hourlies) == 0 {
		return 0
	}
	covered := 0
	for _, h := range tl.Hourlies {
		if h.ReservedMbps >= h.UsedMbps {
			covered++
		}
	}
	return float64(covered) / float64(len(tl.Hourlies))
}
