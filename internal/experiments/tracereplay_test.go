package experiments

import (
	"math"
	"testing"

	"cloudmedia/internal/modes"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/trace"
)

// TestTraceReplayReproducesAggregates is the record→replay contract: a
// trace recorded from a fig4-style event-engine run and replayed through
// both engine fidelities must reproduce the run's aggregate quality,
// provisioned bandwidth, and cost within the DESIGN.md "Engine
// fidelities" tolerances (the same constants the fluid cross-validation
// tests pin). The replay runs on a different seed, so agreement means
// the recovered intensity is right — not that the dice were re-rolled.
func TestTraceReplayReproducesAggregates(t *testing.T) {
	sc := DefaultScenario(sim.ClientServer, 1)
	res, err := TraceReplay(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary

	for _, engine := range []string{"event", "fluid"} {
		if d := math.Abs(s["replay_"+engine+"_quality"] - s["recorded_quality"]); d > xvalQualityTol {
			t.Errorf("%s replay quality %v vs recorded %v (Δ %.4f, tol %.2f)",
				engine, s["replay_"+engine+"_quality"], s["recorded_quality"], d, xvalQualityTol)
		}
		if d := relDiff(s["replay_"+engine+"_reserved_mbps"], s["recorded_reserved_mbps"]); d > xvalReservedTol {
			t.Errorf("%s replay reserved %v Mbps vs recorded %v (%.1f%% off, tol %.0f%%)",
				engine, s["replay_"+engine+"_reserved_mbps"], s["recorded_reserved_mbps"], d*100, xvalReservedTol*100)
		}
		if d := relDiff(s["replay_"+engine+"_vm_cost_usd"], s["recorded_vm_cost_usd"]); d > xvalReservedTol {
			t.Errorf("%s replay VM cost $%v vs recorded $%v (%.1f%% off, tol %.0f%%)",
				engine, s["replay_"+engine+"_vm_cost_usd"], s["recorded_vm_cost_usd"], d*100, xvalReservedTol*100)
		}
	}
	if s["recorded_quality"] < 0.9 {
		t.Errorf("recording run quality collapsed: %v", s["recorded_quality"])
	}
	if s["trace_channels"] != float64(sc.Workload.Channels) {
		t.Errorf("recorded trace has %v channels, want %d", s["trace_channels"], sc.Workload.Channels)
	}
}

// TestTraceSourceDrivesBothEngines pins the seam mechanics end to end on
// a hand-built trace: the channel count follows the source, both engines
// accept it, and a channel whose trace is silent stays empty while a
// loaded channel fills — under event and fluid fidelity alike.
func TestTraceSourceDrivesBothEngines(t *testing.T) {
	tr := &trace.Trace{
		Times: []float64{0, 1800, 3600},
		Rates: [][]float64{
			{0.2, 0.4, 0.2}, // busy channel
			{0, 0, 0},       // silent channel
		},
	}
	for _, fidelity := range []struct {
		name string
		f    modes.Fidelity
	}{{"event", modes.FidelityEvent}, {"fluid", modes.FidelityFluid}} {
		sc := DefaultScenario(sim.ClientServer, 1)
		sc.Hours = 1
		sc.Fidelity = fidelity.f
		sc.Source = tr
		sys, err := Build(sc)
		if err != nil {
			t.Fatalf("%s: %v", fidelity.name, err)
		}
		if got := sys.Sim.Channels(); got != 2 {
			t.Fatalf("%s: engine has %d channels, want 2 (from the trace)", fidelity.name, got)
		}
		sys.Sim.RunUntil(3600)
		busy, err := sys.Sim.Users(0)
		if err != nil {
			t.Fatal(err)
		}
		silent, err := sys.Sim.Users(1)
		if err != nil {
			t.Fatal(err)
		}
		if busy == 0 {
			t.Errorf("%s: busy trace channel stayed empty", fidelity.name)
		}
		if silent != 0 {
			t.Errorf("%s: silent trace channel has %d viewers", fidelity.name, silent)
		}
	}
}

// TestTraceReplayHonoursScenarioSource pins the review fix: a scenario
// that already carries a demand source (the CLI's -trace) is recorded
// as-is — the experiment must not silently fall back to the parametric
// workload.
func TestTraceReplayHonoursScenarioSource(t *testing.T) {
	custom := &trace.Trace{
		Times: []float64{0, 3600, 7200},
		Rates: [][]float64{{0.3, 0.5, 0.3}, {0.1, 0.2, 0.1}, {0.05, 0.05, 0.05}},
	}
	sc := DefaultScenario(sim.ClientServer, 1)
	sc.Hours = 2
	sc.Source = custom
	res, err := TraceReplay(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The recording must reflect the custom trace's 3 channels, not the
	// default parametric workload's 6.
	if got := res.Summary["trace_channels"]; got != 3 {
		t.Errorf("recorded %v channels, want the supplied trace's 3", got)
	}
}
