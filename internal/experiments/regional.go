package experiments

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/geo"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/viewing"
)

// Regional runs the multi-region deployment the paper lists as ongoing
// work ("expanding to cloud systems spanning different geographic
// locations"): the scenario's crowd is split across geo.DefaultRegions,
// each region running its own overlay (the scenario's mode — P2P
// overlays with cloud compensation, or pure client-server) and its own
// provisioning controller against its own broker, with regional uplink
// heterogeneity feeding the per-region workload (broadband-rich regions
// need less cloud compensation than mobile-heavy ones for the same
// budget). The scenario's fidelity selects the per-region engine, so
// million-viewer regional deployments run on the fluid engine.
// Provisioning is always dynamic: geo controllers run every interval.
func Regional(sc Scenario) (*Result, error) {
	jump := sc.Channel.ChunkSeconds / sc.Workload.JumpMeanSeconds
	if jump > 1 {
		jump = 1
	}
	transfer, err := viewing.SequentialWithJumps(sc.Channel.Chunks, 0.9, jump)
	if err != nil {
		return nil, err
	}
	configured := geo.DefaultRegions()
	dep, err := geo.New(geo.Config{
		Regions:              configured,
		Mode:                 sc.Mode,
		Fidelity:             sc.Fidelity,
		Policy:               sc.Policy,
		Pricing:              sc.Pricing,
		Channel:              sc.Channel,
		Workload:             sc.Workload,
		Faults:               sc.Faults,
		IntervalSeconds:      sc.IntervalSeconds,
		VMBudgetPerHour:      sc.VMBudget,
		StorageBudgetPerHour: sc.StorageBudget,
		Transfer:             transfer,
		Seed:                 sc.Seed,
		Workers:              sc.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("regional: %w", err)
	}
	dep.RunUntil(sc.Hours * 3600)

	regions, totalVM, totalStorage := dep.Report()
	var bill cloud.LedgerTotals
	for _, r := range dep.Regions() {
		t := r.Cloud.Ledger().Totals()
		bill.ReservedUSD += t.ReservedUSD
		bill.OnDemandUSD += t.OnDemandUSD
		bill.SpotUSD += t.SpotUSD
		bill.UpfrontUSD += t.UpfrontUSD
		bill.StorageUSD += t.StorageUSD
		bill.TransferUSD += t.TransferUSD
		bill.Interruptions += t.Interruptions
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Regional deployment — per-region outcome (%v)", sc.Mode),
		"region", "share", "uplink_scale", "users", "quality", "vm_cost_usd")
	summary := map[string]float64{
		"vm_cost_total_usd":      totalVM,
		"storage_cost_total_usd": totalStorage,
		"bill_total_usd":         bill.TotalUSD(),
		"bill_reserved_usd":      bill.ReservedUSD,
		"bill_on_demand_usd":     bill.OnDemandUSD,
		"bill_spot_usd":          bill.SpotUSD,
		"bill_upfront_usd":       bill.UpfrontUSD,
		"bill_transfer_usd":      bill.TransferUSD,
		"interruptions":          float64(bill.Interruptions),
	}
	for i, r := range regions {
		scale := configured[i].UplinkScale
		if scale == 0 {
			scale = 1
		}
		tbl.AddRow(r.Name, configured[i].Share, scale, r.Users, r.Quality, r.VMCost)
		summary["quality_"+r.Name] = r.Quality
		summary["vm_cost_"+r.Name+"_usd"] = r.VMCost
	}
	return &Result{ID: "regional", Tables: []*metrics.Table{tbl}, Summary: summary}, nil
}
