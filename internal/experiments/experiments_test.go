package experiments

import (
	"strings"
	"testing"

	"cloudmedia/internal/core"
	"cloudmedia/internal/sim"
)

// quickScenario keeps experiment tests fast: 3 simulated hours at small
// scale with 20-minute provisioning rounds.
func quickScenario(mode sim.Mode) Scenario {
	sc := DefaultScenario(mode, 2)
	sc.Hours = 3
	sc.IntervalSeconds = 1200
	sc.SampleSeconds = 600
	return sc
}

func TestDefaultScenarioShape(t *testing.T) {
	sc := DefaultScenario(sim.ClientServer, 1)
	// 6 channels is the documented laptop-scale reduction of the paper's 20
	// (see the DefaultScenario doc comment and EXPERIMENTS.md).
	if sc.Workload.Channels != 6 {
		t.Errorf("channels = %d, want 6", sc.Workload.Channels)
	}
	if sc.VMBudget != 100 || sc.StorageBudget != 1 {
		t.Errorf("budgets = %v/%v, want paper's 100/1", sc.VMBudget, sc.StorageBudget)
	}
	if sc.Channel.VMBandwidth/sc.Channel.PlaybackRate != 25 {
		t.Errorf("R/r = %v, want the paper's 25", sc.Channel.VMBandwidth/sc.Channel.PlaybackRate)
	}
	// Negative scale falls back to 1.
	neg := DefaultScenario(sim.P2P, -3)
	if neg.Workload.BaseArrivalRate != DefaultScenario(sim.P2P, 1).Workload.BaseArrivalRate {
		t.Error("non-positive scale should default to 1")
	}
}

func TestBuildValidation(t *testing.T) {
	sc := quickScenario(sim.ClientServer)
	sc.Hours = 0
	if _, err := Build(sc); err == nil {
		t.Error("zero hours: want error")
	}
}

func TestRunTimelineProducesMeasurements(t *testing.T) {
	tl, err := RunTimeline(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("RunTimeline: %v", err)
	}
	if len(tl.Snapshots) == 0 || len(tl.Hourlies) == 0 || len(tl.Records) == 0 {
		t.Fatalf("missing measurements: %d snapshots, %d hourlies, %d records",
			len(tl.Snapshots), len(tl.Hourlies), len(tl.Records))
	}
	if tl.VMCostTotal <= 0 {
		t.Error("no VM cost accrued")
	}
	if tl.MeanQuality <= 0 || tl.MeanQuality > 1 {
		t.Errorf("quality %v outside (0,1]", tl.MeanQuality)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	// Provisioned covers used in the majority of hours, both modes.
	if res.Summary["cs_covered_fraction"] < 0.5 {
		t.Errorf("C/S covered fraction %v", res.Summary["cs_covered_fraction"])
	}
	if res.Summary["p2p_covered_fraction"] < 0.5 {
		t.Errorf("P2P covered fraction %v", res.Summary["p2p_covered_fraction"])
	}
	// P2P reserves less cloud bandwidth than client-server.
	if r := res.Summary["p2p_over_cs_reserved"]; r >= 1 {
		t.Errorf("p2p/cs reserved ratio %v, want < 1", r)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) == 0 {
		t.Error("fig4 table empty")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	cs := res.Summary["cs_quality_mean"]
	pp := res.Summary["p2p_quality_mean"]
	if cs < 0.7 || pp < 0.6 {
		t.Errorf("qualities cs=%v p2p=%v too low for a provisioned system", cs, pp)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(res.Tables[0].Rows) == 0 {
		t.Fatal("no scatter points")
	}
	// Quality good regardless of channel size: both buckets healthy.
	if res.Summary["large_channel_quality"] < 0.6 {
		t.Errorf("large-channel quality %v", res.Summary["large_channel_quality"])
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	cs := res.Summary["cs_mbps_per_user"]
	pp := res.Summary["p2p_mbps_per_user"]
	if cs <= 0 {
		t.Fatalf("cs slope %v", cs)
	}
	if pp >= cs {
		t.Errorf("P2P slope %v not below C/S slope %v (P2P should scale better)", pp, cs)
	}
}

func TestFig8And9Shape(t *testing.T) {
	res8, err := Fig8(quickScenario(sim.P2P))
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	res9, err := Fig9(quickScenario(sim.P2P))
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	// The most popular channel earns at least as much utility as the tail.
	if res8.Summary["channel_0_mean_utility"] < res8.Summary["channel_5_mean_utility"] {
		t.Errorf("storage utility not ordered by popularity: %v", res8.Summary)
	}
	if res9.Summary["channel_0_mean_utility"] < res9.Summary["channel_5_mean_utility"] {
		t.Errorf("VM utility not ordered by popularity: %v", res9.Summary)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(quickScenario(sim.ClientServer))
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	cs := res.Summary["cs_cost_per_hour"]
	pp := res.Summary["p2p_cost_per_hour"]
	if cs <= 0 {
		t.Fatal("no client-server cost")
	}
	if pp >= cs {
		t.Errorf("P2P cost %v not below C/S %v", pp, cs)
	}
	if res.Summary["storage_cost_per_day"] > cs {
		t.Error("storage cost should be negligible next to VM rental")
	}
}

func TestFig11Shape(t *testing.T) {
	sc := quickScenario(sim.P2P)
	res, err := Fig11(sc)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	for _, key := range []string{"quality_ratio_0.9", "quality_ratio_1.0", "quality_ratio_1.2"} {
		q, ok := res.Summary[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		if q < 0.6 {
			t.Errorf("%s = %v: provisioning should absorb uplink shortfall", key, q)
		}
	}
}

func TestTable2Table3(t *testing.T) {
	res2, err := Table2(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tables[0].Rows) != 3 {
		t.Errorf("Table II rows = %d", len(res2.Tables[0].Rows))
	}
	res3, err := Table3(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Tables[0].Rows) != 2 {
		t.Errorf("Table III rows = %d", len(res3.Tables[0].Rows))
	}
}

func TestVMLatency(t *testing.T) {
	res, err := VMLatency(Scenario{})
	if err != nil {
		t.Fatalf("VMLatency: %v", err)
	}
	boot := res.Summary["boot_seconds"]
	if boot < 20 || boot > 30 {
		t.Errorf("boot latency %v s, want ≈25 (Sec. VI-C)", boot)
	}
}

func TestStorageCostMatchesPaperBallpark(t *testing.T) {
	res, err := StorageCost(DefaultScenario(sim.P2P, 1))
	if err != nil {
		t.Fatalf("StorageCost: %v", err)
	}
	perDay := res.Summary["cost_per_day_usd"]
	if perDay < 0.005 || perDay > 0.05 {
		t.Errorf("storage cost $%.4f/day outside the paper's ≈$0.018 ballpark", perDay)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Errorf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
}

func TestRepresentativeChannels(t *testing.T) {
	got := representativeChannels(20)
	if len(got) != 4 || got[0] != 0 || got[3] != 19 {
		t.Errorf("representativeChannels(20) = %v", got)
	}
	if got := representativeChannels(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("representativeChannels(1) = %v", got)
	}
}

func TestResultTablesRender(t *testing.T) {
	res, err := Table2(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Tables[0].Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "standard") {
		t.Error("render missing cluster names")
	}
}

func TestRicherPeersReduceCloudSpend(t *testing.T) {
	// The effect the paper calls "quite intuitive" and omits from Fig. 11:
	// cloud provisioning falls as peer uplink rises.
	spend := func(ratio float64) float64 {
		sc := quickScenario(sim.P2P)
		sc.UplinkRatio = ratio
		tl, err := RunTimeline(sc)
		if err != nil {
			t.Fatalf("RunTimeline(%v): %v", ratio, err)
		}
		return tl.VMCostTotal
	}
	poor := spend(0.5)
	rich := spend(1.5)
	if rich >= poor {
		t.Errorf("cloud spend with rich peers (%v) not below poor peers (%v)", rich, poor)
	}
}

func TestSchedulingPolicyFlowsThroughScenario(t *testing.T) {
	sc := quickScenario(sim.P2P)
	sc.Scheduling = sim.Proportional
	tl, err := RunTimeline(sc)
	if err != nil {
		t.Fatalf("RunTimeline(proportional): %v", err)
	}
	if tl.MeanQuality < 0.6 {
		t.Errorf("proportional scheduling quality %v", tl.MeanQuality)
	}
}

func TestPredictorFlowsThroughScenario(t *testing.T) {
	sc := quickScenario(sim.ClientServer)
	sc.Predictor = core.PeakOfWindow{Window: 2}
	tl, err := RunTimeline(sc)
	if err != nil {
		t.Fatalf("RunTimeline(peak): %v", err)
	}
	if len(tl.Records) == 0 {
		t.Fatal("no provisioning records")
	}
}
