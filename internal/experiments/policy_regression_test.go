package experiments

import (
	"testing"

	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
)

// preSeamGoldens are the fig4/5/10 summary values produced by the
// pre-refactor controller (greedy planning hard-coded in core.Controller)
// at DefaultScenario(0, 1), captured at full precision immediately before
// the provision.Policy seam was extracted. The default Greedy policy must
// reproduce them bit for bit on both engines: the seam is a pure
// mechanical extraction, so any drift here is a behaviour change.
var preSeamGoldens = map[modes.Fidelity]map[string]map[string]float64{
	modes.FidelityEvent: {
		"fig4": {
			"cs_covered_fraction":    1,
			"cs_reserved_mean_mbps":  200.80000000000004,
			"p2p_covered_fraction":   1,
			"p2p_over_cs_reserved":   0.79302200539539935,
			"p2p_reserved_mean_mbps": 159.23881868339623,
		},
		"fig5": {
			"cs_quality_mean":  0.99400972088321093,
			"p2p_quality_mean": 0.99947772895423748,
		},
		"fig10": {
			"cs_cost_per_hour":     10.06875,
			"p2p_cost_per_hour":    8.1749999999999989,
			"p2p_over_cs_cost":     0.81191806331471128,
			"storage_cost_per_day": 0.00047952000000000026,
		},
	},
	modes.FidelityFluid: {
		"fig4": {
			"cs_covered_fraction":    1,
			"cs_reserved_mean_mbps":  207.19999999999996,
			"p2p_covered_fraction":   1,
			"p2p_over_cs_reserved":   0.79635269015254029,
			"p2p_reserved_mean_mbps": 165.00427739960631,
		},
		"fig5": {
			"cs_quality_mean":  0.99914370630377392,
			"p2p_quality_mean": 0.99441437209974393,
		},
		"fig10": {
			"cs_cost_per_hour":     10.237499999999999,
			"p2p_cost_per_hour":    8.3812499999999961,
			"p2p_over_cs_cost":     0.81868131868131844,
			"storage_cost_per_day": 0.00047952000000000026,
		},
	},
}

// TestGreedyPolicyBitIdenticalToPreSeamController cross-validates the
// seam extraction: fig4, fig5, and fig10 under the default (Greedy)
// policy, on both fidelities, against the pre-refactor goldens — exact
// float equality, no tolerance.
func TestGreedyPolicyBitIdenticalToPreSeamController(t *testing.T) {
	figs := map[string]func(Scenario) (*Result, error){"fig4": Fig4, "fig5": Fig5, "fig10": Fig10}
	for fid, byFig := range preSeamGoldens {
		for name, want := range byFig {
			sc := DefaultScenario(0, 1)
			sc.Fidelity = fid
			res, err := figs[name](sc)
			if err != nil {
				t.Fatalf("%v/%s: %v", fid, name, err)
			}
			for key, wantV := range want {
				if got := res.Summary[key]; got != wantV {
					t.Errorf("%v/%s %s = %.17g, want pre-seam %.17g (seam extraction changed behaviour)",
						fid, name, key, got, wantV)
				}
			}
		}
	}
}

// TestPolicyCostInvariant pins the frontier ordering on the default day:
// perfect prediction can only save money (Oracle ≤ Greedy) and a fixed
// peak rental can only waste it (Greedy ≤ StaticPeak), at no quality
// collapse for any policy.
func TestPolicyCostInvariant(t *testing.T) {
	policies := []provision.Policy{provision.Oracle{}, provision.Greedy{}, provision.StaticPeak{}}
	family := make([]Scenario, len(policies))
	for i, p := range policies {
		// The paper's cloud-assisted system: P2P overlay + dynamic rounds.
		sc := DefaultScenario(sim.P2P, 1)
		sc.Policy = p
		family[i] = sc
	}
	runs, err := RunTimelines(family...)
	if err != nil {
		t.Fatal(err)
	}
	oracle, greedy, static := runs[0], runs[1], runs[2]
	t.Logf("oracle: $%.2f q=%.4f; greedy: $%.2f q=%.4f; staticpeak: $%.2f q=%.4f",
		oracle.Bill.TotalUSD(), oracle.MeanQuality,
		greedy.Bill.TotalUSD(), greedy.MeanQuality,
		static.Bill.TotalUSD(), static.MeanQuality)
	// Oracle ≤ Greedy on the frontier: the last-interval predictor
	// under-provisions demand ramps, which is *cheaper* than the truth but
	// pays in quality, so the pure-dollar comparison carries a small band —
	// within it, the oracle must not lose quality.
	if oracle.Bill.TotalUSD() > greedy.Bill.TotalUSD()*1.01 {
		t.Errorf("oracle bill $%.2f above greedy $%.2f: perfect prediction made things worse",
			oracle.Bill.TotalUSD(), greedy.Bill.TotalUSD())
	}
	if oracle.MeanQuality < greedy.MeanQuality-0.005 {
		t.Errorf("oracle quality %v below greedy %v: the oracle is off the frontier",
			oracle.MeanQuality, greedy.MeanQuality)
	}
	// Greedy ≤ StaticPeak outright: holding the daily peak all day must
	// cost strictly more than renting to demand.
	if greedy.Bill.TotalUSD() > static.Bill.TotalUSD() {
		t.Errorf("greedy bill $%.2f above static-peak $%.2f: elastic provisioning made things worse",
			greedy.Bill.TotalUSD(), static.Bill.TotalUSD())
	}
	for i, tl := range runs {
		if tl.MeanQuality < 0.9 {
			t.Errorf("%s quality %v collapsed below 0.9", policies[i].Name(), tl.MeanQuality)
		}
	}
}

// TestCostFrontierExperiment smokes the registry entry end to end on a
// short horizon: 4 policies × 2 pricing plans × 2 fidelities, every
// combo's bill broken down by tier.
func TestCostFrontierExperiment(t *testing.T) {
	sc := DefaultScenario(sim.P2P, 1)
	sc.Hours = 3
	res, err := CostFrontier(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d, want frontier + breakdown", len(res.Tables))
	}
	if got := len(res.Tables[0].Rows); got != 16 {
		t.Errorf("frontier rows = %d, want 4 policies × 2 pricings × 2 fidelities", got)
	}
	// Per-interval breakdown: 4 policies × (bootstrap + 3 hourly rounds).
	if got := len(res.Tables[1].Rows); got != 4*4 {
		t.Errorf("breakdown rows = %d, want 16", got)
	}
	for _, key := range []string{
		"greedy_on-demand_usd", "greedy_reserved_usd",
		"oracle_on-demand_usd", "staticpeak_reserved_usd",
		"greedy_quality", "lookahead_quality",
	} {
		if _, ok := res.Summary[key]; !ok {
			t.Errorf("summary missing %q", key)
		}
	}
	// Reserved-tier dollars must actually show up under the reserved plan.
	if res.Summary["greedy_reserved_usd"] == res.Summary["greedy_on-demand_usd"] {
		t.Error("reserved pricing produced the on-demand bill — the ledger split is not wired")
	}
}
