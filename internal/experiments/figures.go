package experiments

import (
	"fmt"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/metrics"
	"cloudmedia/internal/sim"
)

// Result is the output of one experiment: the paper artifact's data as
// tables plus headline summary numbers for EXPERIMENTS.md.
type Result struct {
	ID      string
	Tables  []*metrics.Table
	Summary map[string]float64
}

// Fig4 reproduces "Cloud capacity provisioning vs. usage": hourly
// provisioned and used cloud bandwidth for both modes. The reproduction
// targets: provisioned ≥ used in the great majority of hours, and P2P
// provisioning far below client-server.
func Fig4(sc Scenario) (*Result, error) {
	tls, err := RunTimelines(sc.pinMode(sim.ClientServer), sc.pinMode(sim.P2P))
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	cs, pp := tls[0], tls[1]

	tbl := metrics.NewTable("Fig. 4 — cloud capacity provisioning vs usage (Mbps)",
		"hour", "cs_reserved", "cs_used", "p2p_reserved", "p2p_used")
	for i := range cs.Hourlies {
		h := cs.Hourlies[i]
		var pr, pu float64
		if i < len(pp.Hourlies) {
			pr, pu = pp.Hourlies[i].ReservedMbps, pp.Hourlies[i].UsedMbps
		}
		tbl.AddRow(h.Hour, h.ReservedMbps, h.UsedMbps, pr, pu)
	}
	return &Result{
		ID:     "fig4",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"cs_reserved_mean_mbps":  cs.MeanReservedMbps(),
			"p2p_reserved_mean_mbps": pp.MeanReservedMbps(),
			"p2p_over_cs_reserved":   ratio(pp.MeanReservedMbps(), cs.MeanReservedMbps()),
			"cs_covered_fraction":    cs.ReservedCoversUsedFraction(),
			"p2p_covered_fraction":   pp.ReservedCoversUsedFraction(),
		},
	}, nil
}

// Fig5 reproduces "Average streaming quality in the VoD system": the
// smooth-playback fraction over time for both modes. Paper averages:
// C/S ≈ 0.97, P2P ≈ 0.95 (P2P slightly worse).
func Fig5(sc Scenario) (*Result, error) {
	tls, err := RunTimelines(sc.pinMode(sim.ClientServer), sc.pinMode(sim.P2P))
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	cs, pp := tls[0], tls[1]
	tbl := metrics.NewTable("Fig. 5 — average streaming quality", "hour", "cs_quality", "p2p_quality")
	for i := range cs.Snapshots {
		s := cs.Snapshots[i]
		var pq float64
		if i < len(pp.Snapshots) {
			pq = pp.Snapshots[i].Quality
		}
		tbl.AddRow(s.Time/3600, s.Quality, pq)
	}
	return &Result{
		ID:     "fig5",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"cs_quality_mean":  cs.MeanQuality,
			"p2p_quality_mean": pp.MeanQuality,
		},
	}, nil
}

// Fig6 reproduces "Channel streaming quality vs. channel size": a scatter
// of per-channel quality against the channel's viewer count across a day
// (client-server). The target shape: quality is good regardless of size.
func Fig6(sc Scenario) (*Result, error) {
	sc = sc.pinMode(sim.ClientServer)
	tl, err := RunTimeline(sc)
	if err != nil {
		return nil, fmt.Errorf("fig6 run: %w", err)
	}
	tbl := metrics.NewTable("Fig. 6 — channel streaming quality vs channel size (C/S)",
		"users", "quality")
	var sizes, qualities []float64
	for _, snap := range tl.Snapshots {
		for c, n := range snap.PerChannelUsers {
			if n == 0 {
				continue
			}
			tbl.AddRow(n, snap.PerChannelQuality[c])
			sizes = append(sizes, float64(n))
			qualities = append(qualities, snap.PerChannelQuality[c])
		}
	}
	// Split the scatter at the median channel size so both buckets are
	// populated regardless of scale; the paper's claim is that quality is
	// good on both sides.
	medianSize := mathx.Percentile(sizes, 0.5)
	var small, large []float64
	for i, n := range sizes {
		if n <= medianSize {
			small = append(small, qualities[i])
		} else {
			large = append(large, qualities[i])
		}
	}
	return &Result{
		ID:     "fig6",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"small_channel_quality": mean(small),
			"large_channel_quality": mean(large),
			"median_channel_size":   medianSize,
		},
	}, nil
}

// Fig7 reproduces "Cloud capacity provisioning vs. channel size": per
// channel, provisioned bandwidth against viewer count, for both modes. The
// target shape: roughly linear growth for client-server, much flatter
// (well-scaling) for P2P.
func Fig7(sc Scenario) (*Result, error) {
	tls, err := RunTimelines(sc.pinMode(sim.ClientServer), sc.pinMode(sim.P2P))
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	cs, pp := tls[0], tls[1]
	tbl := metrics.NewTable("Fig. 7 — provisioned bandwidth vs channel size (Mbps)",
		"mode", "users", "bandwidth_mbps")
	collect := func(tl *Timeline, mode string) (xs, ys []float64) {
		for _, snap := range tl.Snapshots {
			for c, n := range snap.PerChannelUsers {
				if n == 0 {
					continue
				}
				tbl.AddRow(mode, n, snap.PerChannelReservedMbps[c])
				xs = append(xs, float64(n))
				ys = append(ys, snap.PerChannelReservedMbps[c])
			}
		}
		return xs, ys
	}
	csX, csY := collect(cs, "cs")
	ppX, ppY := collect(pp, "p2p")
	return &Result{
		ID:     "fig7",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"cs_mbps_per_user":  slopeThroughOrigin(csX, csY),
			"p2p_mbps_per_user": slopeThroughOrigin(ppX, ppY),
		},
	}, nil
}

// Fig8 reproduces "Evolution of aggregate storage utility" for four
// channels of different sizes (P2P mode): utilities track popularity, the
// adaptiveness claim of Sec. VI-C.
func Fig8(sc Scenario) (*Result, error) {
	return utilityFigure(sc, "fig8", "Fig. 8 — aggregate storage utility (P2P)", func(r intervalUtilities) map[int]float64 {
		return r.storage
	})
}

// Fig9 reproduces "Evolution of aggregate VM utility" for the same four
// channels (P2P mode).
func Fig9(sc Scenario) (*Result, error) {
	return utilityFigure(sc, "fig9", "Fig. 9 — aggregate VM utility (P2P)", func(r intervalUtilities) map[int]float64 {
		return r.vm
	})
}

type intervalUtilities struct {
	storage map[int]float64
	vm      map[int]float64
}

func utilityFigure(sc Scenario, id, title string, pick func(intervalUtilities) map[int]float64) (*Result, error) {
	sc = sc.pinMode(sim.P2P)
	tl, err := RunTimeline(sc)
	if err != nil {
		return nil, fmt.Errorf("%s run: %w", id, err)
	}
	// Representative channels spread across the popularity ranking, like
	// the paper's sizes 600/200/100/60.
	channels := representativeChannels(sc.Workload.Channels)
	headers := []string{"hour"}
	for _, c := range channels {
		headers = append(headers, fmt.Sprintf("channel_%d", c))
	}
	tbl := metrics.NewTable(title, headers...)
	sums := make(map[int]float64, len(channels))
	for _, rec := range tl.Records {
		u := pick(intervalUtilities{storage: rec.StoragePlan.UtilityPerChannel, vm: rec.VMPlan.UtilityPerChannel})
		row := make([]any, 0, len(channels)+1)
		row = append(row, rec.Time/3600)
		for _, c := range channels {
			row = append(row, u[c])
			sums[c] += u[c]
		}
		tbl.AddRow(row...)
	}
	summary := make(map[string]float64, len(channels))
	n := float64(len(tl.Records))
	for _, c := range channels {
		if n > 0 {
			summary[fmt.Sprintf("channel_%d_mean_utility", c)] = sums[c] / n
		}
	}
	return &Result{ID: id, Tables: []*metrics.Table{tbl}, Summary: summary}, nil
}

// representativeChannels picks four channels across the Zipf ranking.
func representativeChannels(n int) []int {
	picks := []int{0, n / 4, n / 2, n - 1}
	out := picks[:0]
	seen := map[int]bool{}
	for _, p := range picks {
		if p < 0 || p >= n || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Fig10 reproduces "Evolution of overall VM rental cost": hourly dollars
// for both modes. Paper averages: C/S ≈ $48/h, P2P ≈ $4.27/h.
func Fig10(sc Scenario) (*Result, error) {
	tls, err := RunTimelines(sc.pinMode(sim.ClientServer), sc.pinMode(sim.P2P))
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	cs, pp := tls[0], tls[1]
	tbl := metrics.NewTable("Fig. 10 — overall VM rental cost ($/hour)", "hour", "cs_cost", "p2p_cost")
	for i := range cs.Hourlies {
		var pc float64
		if i < len(pp.Hourlies) {
			pc = pp.Hourlies[i].VMCostPerHour
		}
		tbl.AddRow(cs.Hourlies[i].Hour, cs.Hourlies[i].VMCostPerHour, pc)
	}
	return &Result{
		ID:     "fig10",
		Tables: []*metrics.Table{tbl},
		Summary: map[string]float64{
			"cs_cost_per_hour":     cs.MeanHourlyVMCost(),
			"p2p_cost_per_hour":    pp.MeanHourlyVMCost(),
			"p2p_over_cs_cost":     ratio(pp.MeanHourlyVMCost(), cs.MeanHourlyVMCost()),
			"storage_cost_per_day": ratio(pp.StorageCostTotal, sc.Hours/24),
		},
	}, nil
}

// Fig11 reproduces "Average streaming quality ... at different ratios of
// peer average upload capacity over the streaming rate": P2P runs with
// mean uplink at 0.9, 1.0, and 1.2 × r. Target: satisfactory quality in
// all cases (the cloud absorbs the shortfall).
func Fig11(sc Scenario) (*Result, error) {
	ratios := []float64{0.9, 1.0, 1.2}
	tbl := metrics.NewTable("Fig. 11 — P2P streaming quality vs peer uplink ratio", "hour", "r0.9", "r1.0", "r1.2")
	summary := make(map[string]float64, len(ratios))
	family := make([]Scenario, len(ratios))
	for i, r := range ratios {
		family[i] = sc.pinMode(sim.P2P)
		family[i].UplinkRatio = r
	}
	runs, err := RunTimelines(family...)
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	for i, r := range ratios {
		summary[fmt.Sprintf("quality_ratio_%.1f", r)] = runs[i].MeanQuality
	}
	for i := range runs[0].Snapshots {
		row := []any{runs[0].Snapshots[i].Time / 3600}
		for _, tl := range runs {
			if i < len(tl.Snapshots) {
				row = append(row, tl.Snapshots[i].Quality)
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return &Result{ID: "fig11", Tables: []*metrics.Table{tbl}, Summary: summary}, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// slopeThroughOrigin fits y = kx by least squares.
func slopeThroughOrigin(xs, ys []float64) float64 {
	var xy, xx float64
	for i := range xs {
		xy += xs[i] * ys[i]
		xx += xs[i] * xs[i]
	}
	if xx == 0 {
		return 0
	}
	return xy / xx
}
