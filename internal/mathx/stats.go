package mathx

import (
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's online
// algorithm for mean/variance plus min/max) without retaining samples.
// The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations recorded.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Percentile returns the p-quantile (p in [0, 1]) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser), the comparison used throughout the
// analytic tests.
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
