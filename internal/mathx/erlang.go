package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when an M/M/m queue has offered load a = λ/µ ≥ m,
// i.e. no equilibrium exists.
var ErrUnstable = errors.New("mathx: queue unstable (offered load >= servers)")

// ErlangB returns the Erlang-B blocking probability B(m, a) for m servers
// and offered load a = λ/µ, computed with the standard numerically stable
// recurrence B(0)=1, B(k) = a·B(k−1) / (k + a·B(k−1)).
func ErlangB(m int, a float64) float64 {
	b := 1.0
	for k := 1; k <= m; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the Erlang-C delay probability C(m, a): the probability
// that an arriving job must wait in an M/M/m queue with m servers and
// offered load a = λ/µ. Requires a < m for a meaningful (finite-queue)
// answer; callers should check stability first.
func ErlangC(m int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	mm := float64(m)
	if a >= mm {
		return 1
	}
	b := ErlangB(m, a)
	return mm * b / (mm - a*(1-b))
}

// MMm describes a stable M/M/m queue in equilibrium. Construct with NewMMm.
type MMm struct {
	Lambda  float64 // arrival rate λ (jobs per unit time)
	Mu      float64 // per-server service rate µ
	Servers int     // m

	offered float64 // a = λ/µ
	delayP  float64 // Erlang-C C(m, a)
}

// NewMMm validates parameters and returns the equilibrium description of an
// M/M/m queue. It returns ErrUnstable if λ/µ ≥ m.
func NewMMm(lambda, mu float64, m int) (MMm, error) {
	switch {
	case lambda < 0:
		return MMm{}, fmt.Errorf("mathx: negative arrival rate %v", lambda)
	case mu <= 0:
		return MMm{}, fmt.Errorf("mathx: non-positive service rate %v", mu)
	case m <= 0:
		return MMm{}, fmt.Errorf("mathx: non-positive server count %d", m)
	}
	a := lambda / mu
	if a >= float64(m) {
		return MMm{}, ErrUnstable
	}
	return MMm{
		Lambda:  lambda,
		Mu:      mu,
		Servers: m,
		offered: a,
		delayP:  ErlangC(m, a),
	}, nil
}

// OfferedLoad returns a = λ/µ.
func (q MMm) OfferedLoad() float64 { return q.offered }

// Utilization returns ρ = λ/(m·µ) ∈ [0, 1).
func (q MMm) Utilization() float64 { return q.offered / float64(q.Servers) }

// DelayProbability returns the Erlang-C probability that an arrival waits.
func (q MMm) DelayProbability() float64 { return q.delayP }

// MeanQueueLength returns E[L_q], the expected number of jobs waiting
// (excluding jobs in service).
func (q MMm) MeanQueueLength() float64 {
	if q.Lambda == 0 {
		return 0
	}
	return q.delayP * q.offered / (float64(q.Servers) - q.offered)
}

// MeanJobs returns E[n], the expected number of jobs in the system (waiting
// plus in service). This is Eqn. (3) of the paper in closed form:
// E[n] = a + C(m,a)·a/(m−a).
func (q MMm) MeanJobs() float64 {
	return q.offered + q.MeanQueueLength()
}

// MeanWait returns E[W_q], the expected waiting time before service starts.
func (q MMm) MeanWait() float64 {
	if q.Lambda == 0 {
		return 0
	}
	return q.MeanQueueLength() / q.Lambda
}

// MeanSojourn returns E[T], the expected total time in system (waiting plus
// service). By Little's law E[T] = E[n]/λ.
func (q MMm) MeanSojourn() float64 {
	if q.Lambda == 0 {
		return 1 / q.Mu
	}
	return q.MeanJobs() / q.Lambda
}

// StateProbability returns p(k), the equilibrium probability of exactly k
// jobs in the system (Eqn. (2) of the paper).
func (q MMm) StateProbability(k int) float64 {
	if k < 0 {
		return 0
	}
	p0 := q.emptyProbability()
	a := q.offered
	m := q.Servers
	if k <= m {
		// p0 · a^k / k!  computed incrementally to avoid overflow.
		p := p0
		for i := 1; i <= k; i++ {
			p *= a / float64(i)
		}
		return p
	}
	// p(m) · (a/m)^(k−m)
	pm := p0
	for i := 1; i <= m; i++ {
		pm *= a / float64(i)
	}
	return pm * math.Pow(a/float64(m), float64(k-m))
}

// emptyProbability returns p(0) using the standard M/M/m normalization.
func (q MMm) emptyProbability() float64 {
	a := q.offered
	m := q.Servers
	sum := 0.0
	term := 1.0 // a^k/k! for k = 0
	for k := 0; k < m; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term is now a^m/m!; add the waiting-tail mass a^m/m! · m/(m−a).
	sum += term * float64(m) / (float64(m) - a)
	return 1 / sum
}

// MinServersForSojourn returns the smallest server count m such that the
// M/M/m queue with rates (λ, µ) is stable and has mean sojourn time at most
// target. This is the paper's iterative sizing rule from Sec. IV-B:
// start at m=1 and grow m until E[n] ≤ λ·T₀ (equivalently E[T] ≤ T₀ by
// Little's law). maxServers bounds the search; if the target is unreachable
// within the bound an error is returned.
func MinServersForSojourn(lambda, mu, target float64, maxServers int) (int, error) {
	switch {
	case lambda < 0:
		return 0, fmt.Errorf("mathx: negative arrival rate %v", lambda)
	case mu <= 0:
		return 0, fmt.Errorf("mathx: non-positive service rate %v", mu)
	case target <= 0:
		return 0, fmt.Errorf("mathx: non-positive sojourn target %v", target)
	case maxServers <= 0:
		return 0, fmt.Errorf("mathx: non-positive server bound %d", maxServers)
	}
	if lambda == 0 {
		// A single server serves the (nonexistent) load; sojourn is 1/µ.
		if 1/mu <= target {
			return 1, nil
		}
		return 0, fmt.Errorf("mathx: service time 1/µ=%v exceeds target %v", 1/mu, target)
	}
	if 1/mu > target {
		// Even with zero waiting the service time alone misses the target.
		return 0, fmt.Errorf("mathx: service time 1/µ=%v exceeds target %v", 1/mu, target)
	}
	start := int(math.Floor(lambda/mu)) + 1 // smallest stable m
	if start < 1 {
		start = 1
	}
	for m := start; m <= maxServers; m++ {
		q, err := NewMMm(lambda, mu, m)
		if err != nil {
			continue
		}
		if q.MeanSojourn() <= target {
			return m, nil
		}
	}
	return 0, fmt.Errorf("mathx: no m ≤ %d meets sojourn target %v (λ=%v µ=%v)", maxServers, target, lambda, mu)
}
