package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic reference values for the Erlang-B formula.
	tests := []struct {
		m    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{5, 3, 0.110054},
		{10, 5, 0.018385},
	}
	for _, tc := range tests {
		got := ErlangB(tc.m, tc.a)
		if !ApproxEqual(got, tc.want, 1e-4) {
			t.Errorf("ErlangB(%d, %v) = %v, want %v", tc.m, tc.a, got, tc.want)
		}
	}
}

func TestErlangCSingleServerMatchesMM1(t *testing.T) {
	// For m = 1, Erlang-C reduces to the M/M/1 delay probability ρ.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); !ApproxEqual(got, rho, 1e-12) {
			t.Errorf("ErlangC(1, %v) = %v, want %v", rho, got, rho)
		}
	}
}

func TestErlangCBounds(t *testing.T) {
	if got := ErlangC(5, 0); got != 0 {
		t.Errorf("ErlangC(5, 0) = %v, want 0", got)
	}
	if got := ErlangC(3, 3); got != 1 {
		t.Errorf("ErlangC at saturation = %v, want 1", got)
	}
	if got := ErlangC(3, 5); got != 1 {
		t.Errorf("ErlangC overloaded = %v, want 1", got)
	}
}

func TestNewMMmValidation(t *testing.T) {
	if _, err := NewMMm(-1, 1, 1); err == nil {
		t.Error("negative λ: want error")
	}
	if _, err := NewMMm(1, 0, 1); err == nil {
		t.Error("zero µ: want error")
	}
	if _, err := NewMMm(1, 1, 0); err == nil {
		t.Error("zero m: want error")
	}
	if _, err := NewMMm(2, 1, 2); !errors.Is(err, ErrUnstable) {
		t.Errorf("saturated queue: err = %v, want ErrUnstable", err)
	}
}

func TestMM1MatchesClosedForm(t *testing.T) {
	// M/M/1: E[n] = ρ/(1−ρ), E[T] = 1/(µ−λ).
	lambda, mu := 0.6, 1.0
	q, err := NewMMm(lambda, mu, 1)
	if err != nil {
		t.Fatalf("NewMMm: %v", err)
	}
	rho := lambda / mu
	if got, want := q.MeanJobs(), rho/(1-rho); !ApproxEqual(got, want, 1e-10) {
		t.Errorf("MeanJobs = %v, want %v", got, want)
	}
	if got, want := q.MeanSojourn(), 1/(mu-lambda); !ApproxEqual(got, want, 1e-10) {
		t.Errorf("MeanSojourn = %v, want %v", got, want)
	}
}

func TestMMmLittlesLaw(t *testing.T) {
	q, err := NewMMm(7, 1.5, 6)
	if err != nil {
		t.Fatalf("NewMMm: %v", err)
	}
	if got, want := q.MeanJobs(), q.Lambda*q.MeanSojourn(); !ApproxEqual(got, want, 1e-10) {
		t.Errorf("Little's law violated: E[n]=%v λE[T]=%v", got, want)
	}
}

func TestMMmStateProbabilitiesSumToOne(t *testing.T) {
	q, err := NewMMm(4, 1, 6)
	if err != nil {
		t.Fatalf("NewMMm: %v", err)
	}
	var sum float64
	for k := 0; k < 300; k++ {
		sum += q.StateProbability(k)
	}
	if !ApproxEqual(sum, 1, 1e-9) {
		t.Errorf("state probabilities sum to %v, want 1", sum)
	}
}

func TestMMmMeanJobsMatchesStateSum(t *testing.T) {
	// E[n] from the closed form must agree with Σ k·p(k) — this is exactly
	// the paper's Eqn. (3) versus our Erlang-C shortcut.
	q, err := NewMMm(5, 1.2, 7)
	if err != nil {
		t.Fatalf("NewMMm: %v", err)
	}
	var byState float64
	for k := 0; k < 500; k++ {
		byState += float64(k) * q.StateProbability(k)
	}
	if got := q.MeanJobs(); !ApproxEqual(got, byState, 1e-6) {
		t.Errorf("MeanJobs=%v, Σk·p(k)=%v", got, byState)
	}
}

func TestMinServersForSojourn(t *testing.T) {
	// λ=10/s, µ=1/s: need at least 11 servers for stability.
	m, err := MinServersForSojourn(10, 1, 1.5, 1000)
	if err != nil {
		t.Fatalf("MinServersForSojourn: %v", err)
	}
	if m < 11 {
		t.Errorf("m = %d, want at least 11 (stability)", m)
	}
	q, err := NewMMm(10, 1, m)
	if err != nil {
		t.Fatalf("NewMMm(%d): %v", m, err)
	}
	if q.MeanSojourn() > 1.5 {
		t.Errorf("sojourn %v exceeds target at m=%d", q.MeanSojourn(), m)
	}
	if m > 11 {
		// Minimality: one fewer server must miss the target (or be unstable).
		prev, err := NewMMm(10, 1, m-1)
		if err == nil && prev.MeanSojourn() <= 1.5 {
			t.Errorf("m=%d not minimal: m-1 already meets target", m)
		}
	}
}

func TestMinServersForSojournZeroLoad(t *testing.T) {
	m, err := MinServersForSojourn(0, 1, 2, 10)
	if err != nil {
		t.Fatalf("MinServersForSojourn: %v", err)
	}
	if m != 1 {
		t.Errorf("m = %d, want 1 for zero load", m)
	}
}

func TestMinServersForSojournUnreachable(t *testing.T) {
	// Service time 1/µ = 10 alone exceeds target 1: no m works.
	if _, err := MinServersForSojourn(1, 0.1, 1, 100); err == nil {
		t.Error("want error when service time exceeds target")
	}
	// Bound too small to stabilize the queue.
	if _, err := MinServersForSojourn(1000, 1, 2000, 5); err == nil {
		t.Error("want error when maxServers below stability threshold")
	}
}

// TestMinServersProperty: the returned m is always stable, meets the
// target, and is minimal.
func TestMinServersProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := 0.5 + r.Float64()*30
		mu := 0.5 + r.Float64()*3
		target := 1/mu + r.Float64()*5 // always reachable
		m, err := MinServersForSojourn(lambda, mu, target, 100000)
		if err != nil {
			return false
		}
		q, err := NewMMm(lambda, mu, m)
		if err != nil || q.MeanSojourn() > target+1e-9 {
			return false
		}
		if m == 1 {
			return true
		}
		prev, err := NewMMm(lambda, mu, m-1)
		if err != nil {
			return true // m−1 unstable → minimal
		}
		return prev.MeanSojourn() > target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSojournMonotoneInServers(t *testing.T) {
	prev := math.Inf(1)
	for m := 4; m <= 20; m++ {
		q, err := NewMMm(3.5, 1, m)
		if err != nil {
			t.Fatalf("NewMMm(%d): %v", m, err)
		}
		if s := q.MeanSojourn(); s > prev+1e-12 {
			t.Errorf("sojourn not monotone: m=%d gives %v > %v", m, s, prev)
		} else {
			prev = s
		}
	}
}
