package mathx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Error("zero-value Summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	if !ApproxEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !ApproxEqual(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single obs: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	if s.Variance() != 0 {
		t.Errorf("Variance = %v, want 0 for single obs", s.Variance())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct{ p, want float64 }{
		{0, 10}, {0.5, 30}, {1, 50}, {0.25, 20}, {0.125, 15},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !ApproxEqual(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty slice should give 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !ApproxEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1e9, 1e9+1, 1e-6) {
		t.Error("relative comparison should match")
	}
	if ApproxEqual(1, 2, 1e-6) {
		t.Error("1 and 2 should not match")
	}
	if !ApproxEqual(0, 1e-9, 1e-6) {
		t.Error("absolute comparison near zero should match")
	}
}

// Property: Summary mean/variance agree with two-pass formulas.
func TestSummaryMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return ApproxEqual(s.Mean(), mean, 1e-9) && ApproxEqual(s.Variance(), variance, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
