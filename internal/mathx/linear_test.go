package mathx

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Errorf("got %v, want [3 -4]", x)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !ApproxEqual(x[0], 1, 1e-12) || !ApproxEqual(x[1], 3, 1e-12) {
		t.Errorf("got %v, want [1 3]", x)
	}
}

func TestSolveLinearRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{7, 9}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !ApproxEqual(x[0], 9, 1e-12) || !ApproxEqual(x[1], 7, 1e-12) {
		t.Errorf("got %v, want [9 7]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system: want error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs mismatch: want error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged row: want error")
	}
}

func TestSolveLinearDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if a[0][0] != 2 || a[1][1] != 3 || b[0] != 5 || b[1] != 10 {
		t.Errorf("inputs mutated: a=%v b=%v", a, b)
	}
}

// TestSolveLinearProperty verifies A·x = b holds for random diagonally
// dominant systems (which are guaranteed nonsingular).
func TestSolveLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			var rowSum float64
			for j := range a[i] {
				a[i][j] = r.Float64()*2 - 1
				rowSum += absf(a[i][j])
			}
			a[i][i] += rowSum + 1 // diagonal dominance
			b[i] = r.Float64()*20 - 10
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	got := MatVec(a, []float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MatVec = %v, want [17 39]", got)
	}
}
