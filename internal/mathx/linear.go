package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by SolveLinear when the coefficient matrix is
// singular (or numerically so close to singular that elimination fails).
var ErrSingular = errors.New("mathx: singular matrix")

// SolveLinear solves the dense linear system A·x = b using Gaussian
// elimination with partial pivoting and returns x.
//
// A must be square with len(A) == len(b); A and b are not modified.
// The chunk-transfer systems in this codebase have dimension J ≈ 20, so a
// direct O(n³) solve is both exact and cheap.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("mathx: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: dimension mismatch: %d rows, %d rhs entries", n, len(b))
	}

	// Work on copies so the caller's data stays intact.
	m := make([][]float64, n)
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(row), n)
		}
		m[i] = make([]float64, n)
		copy(m[i], row)
	}
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			m[col], m[pivot] = m[pivot], m[col]
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}

	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := rhs[i]
		for c := i + 1; c < n; c++ {
			sum -= m[i][c] * x[c]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MatVec returns A·x for a dense matrix A.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Residual returns the max-norm of A·x − b, used by tests and by callers
// that want to sanity-check a solve.
func Residual(a [][]float64, x, b []float64) float64 {
	ax := MatVec(a, x)
	var worst float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
