package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfWeights(t *testing.T) {
	w, err := ZipfWeights(5, 1)
	if err != nil {
		t.Fatalf("ZipfWeights: %v", err)
	}
	if len(w) != 5 {
		t.Fatalf("len = %d, want 5", len(w))
	}
	if !ApproxEqual(Sum(w), 1, 1e-12) {
		t.Errorf("weights sum to %v, want 1", Sum(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Errorf("weights not decreasing at %d: %v > %v", i, w[i], w[i-1])
		}
	}
	// For s=1: w1/w2 = 2.
	if !ApproxEqual(w[0]/w[1], 2, 1e-12) {
		t.Errorf("w0/w1 = %v, want 2", w[0]/w[1])
	}
}

func TestZipfWeightsUniformAtZeroExponent(t *testing.T) {
	w, err := ZipfWeights(4, 0)
	if err != nil {
		t.Fatalf("ZipfWeights: %v", err)
	}
	for _, x := range w {
		if !ApproxEqual(x, 0.25, 1e-12) {
			t.Errorf("weight %v, want 0.25", x)
		}
	}
}

func TestZipfWeightsErrors(t *testing.T) {
	if _, err := ZipfWeights(0, 1); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := ZipfWeights(3, -1); err == nil {
		t.Error("negative s: want error")
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	if _, err := NewBoundedPareto(0, 1, 3); err == nil {
		t.Error("lo=0: want error")
	}
	if _, err := NewBoundedPareto(2, 1, 3); err == nil {
		t.Error("hi<lo: want error")
	}
	if _, err := NewBoundedPareto(1, 2, 0); err == nil {
		t.Error("shape=0: want error")
	}
}

func TestBoundedParetoSamplesInRange(t *testing.T) {
	p, err := NewBoundedPareto(180e3, 10e6, 3) // the paper's peer uplink distribution
	if err != nil {
		t.Fatalf("NewBoundedPareto: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := p.Sample(rng)
		if x < p.Lo || x > p.Hi {
			t.Fatalf("sample %v outside [%v, %v]", x, p.Lo, p.Hi)
		}
	}
}

func TestBoundedParetoEmpiricalMeanMatchesAnalytic(t *testing.T) {
	p, err := NewBoundedPareto(1, 100, 3)
	if err != nil {
		t.Fatalf("NewBoundedPareto: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(p.Sample(rng))
	}
	if !ApproxEqual(s.Mean(), p.Mean(), 0.02) {
		t.Errorf("empirical mean %v vs analytic %v", s.Mean(), p.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(Exponential(rng, 15))
	}
	if !ApproxEqual(s.Mean(), 15, 0.05) {
		t.Errorf("empirical mean %v, want ≈15", s.Mean())
	}
	if Exponential(rng, 0) != 0 {
		t.Error("zero mean should give 0")
	}
}

func TestPoissonCountMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, mean := range []float64{0.5, 5, 60, 800} {
		var s Summary
		for i := 0; i < 20000; i++ {
			s.Add(float64(PoissonCount(rng, mean)))
		}
		if !ApproxEqual(s.Mean(), mean, 0.08) {
			t.Errorf("Poisson(%v): empirical mean %v", mean, s.Mean())
		}
	}
	if PoissonCount(rng, 0) != 0 {
		t.Error("zero mean should give 0")
	}
}

func TestNextPoissonArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if !math.IsInf(NextPoissonArrival(rng, 0, 0), 1) {
		t.Error("zero rate should give +Inf")
	}
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(NextPoissonArrival(rng, 100, 2) - 100)
	}
	if !ApproxEqual(s.Mean(), 0.5, 0.05) {
		t.Errorf("inter-arrival mean %v, want ≈0.5", s.Mean())
	}
}

func TestNextNHPPArrivalRespectsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Rate 4 on [0,10): expected ~40 arrivals.
	rate := func(t float64) float64 { return 4 }
	var count int
	now := 0.0
	for {
		next := NextNHPPArrival(rng, now, 10, 8, rate)
		if math.IsInf(next, 1) {
			break
		}
		if next <= now || next >= 10 {
			t.Fatalf("arrival %v outside (now, horizon)", next)
		}
		now = next
		count++
	}
	if count < 20 || count > 70 {
		t.Errorf("count = %d, want ≈40", count)
	}
}

func TestNextNHPPArrivalZeroEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if !math.IsInf(NextNHPPArrival(rng, 0, 10, 0, func(float64) float64 { return 1 }), 1) {
		t.Error("zero envelope should give +Inf")
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	for i := 0; i < 100000; i++ {
		idx := WeightedChoice(rng, w)
		if idx < 0 || idx > 2 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if f := float64(counts[2]) / 100000; !ApproxEqual(f, 0.7, 0.05) {
		t.Errorf("heaviest weight frequency %v, want ≈0.7", f)
	}
	if WeightedChoice(rng, []float64{0, 0}) != -1 {
		t.Error("all-zero weights should return -1")
	}
	if WeightedChoice(rng, nil) != -1 {
		t.Error("nil weights should return -1")
	}
}

func TestWeightedChoiceSkipsNegativeAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := []float64{0, -3, 5, 0}
	for i := 0; i < 1000; i++ {
		if idx := WeightedChoice(rng, w); idx != 2 {
			t.Fatalf("index %d, want 2 (only positive weight)", idx)
		}
	}
}

// Property: ZipfWeights always sums to 1 and is non-increasing.
func TestZipfWeightsProperty(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%50) + 1
		s := float64(sRaw%30) / 10
		w, err := ZipfWeights(n, s)
		if err != nil {
			return false
		}
		if !ApproxEqual(Sum(w), 1, 1e-9) {
			return false
		}
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
