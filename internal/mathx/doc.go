// Package mathx provides the numerical substrate shared by the CloudMedia
// analysis and simulation packages: dense linear-system solving, M/M/m
// (Erlang) queueing formulas, random-variate generation for the workload
// distributions used in the paper (Zipf, bounded Pareto, exponential,
// Poisson), and streaming summary statistics.
//
// Everything in this package is deterministic given its inputs; random
// variates take an explicit *rand.Rand so that callers control seeding.
package mathx
