package mathx

import (
	"fmt"
	"math"
	"math/rand"
)

// ZipfWeights returns n weights proportional to 1/rank^s, normalized to sum
// to 1. Rank 1 (index 0) is the most popular. The paper deploys 20 channels
// "with different popularities following a Zipf-like distribution".
func ZipfWeights(n int, s float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mathx: non-positive channel count %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("mathx: negative Zipf exponent %v", s)
	}
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w, nil
}

// BoundedPareto samples variates from a Pareto distribution with shape k,
// truncated to [lo, hi] by inverse-transform sampling on the truncated CDF.
// The paper draws peer upload capacities from a Pareto distribution on
// [180 Kbps, 10 Mbps] with shape k = 3.
type BoundedPareto struct {
	Lo, Hi float64
	Shape  float64
}

// NewBoundedPareto validates the parameters and returns the distribution.
func NewBoundedPareto(lo, hi, shape float64) (BoundedPareto, error) {
	switch {
	case lo <= 0:
		return BoundedPareto{}, fmt.Errorf("mathx: non-positive Pareto lower bound %v", lo)
	case hi <= lo:
		return BoundedPareto{}, fmt.Errorf("mathx: Pareto upper bound %v not above lower bound %v", hi, lo)
	case shape <= 0:
		return BoundedPareto{}, fmt.Errorf("mathx: non-positive Pareto shape %v", shape)
	}
	return BoundedPareto{Lo: lo, Hi: hi, Shape: shape}, nil
}

// Sample draws one variate.
func (p BoundedPareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	k := p.Shape
	lk := math.Pow(p.Lo, k)
	hk := math.Pow(p.Hi, k)
	// Inverse of the truncated CDF F(x) = (1 − (lo/x)^k) / (1 − (lo/hi)^k).
	x := math.Pow(-(u*hk-u*lk-hk)/(hk*lk), -1/k)
	return math.Min(math.Max(x, p.Lo), p.Hi)
}

// Mean returns the analytic mean of the bounded Pareto distribution.
func (p BoundedPareto) Mean() float64 {
	k := p.Shape
	l, h := p.Lo, p.Hi
	if k == 1 {
		return (h * l / (h - l)) * math.Log(h/l)
	}
	lk := math.Pow(l, k)
	return lk / (1 - math.Pow(l/h, k)) * (k / (k - 1)) * (1/math.Pow(l, k-1) - 1/math.Pow(h, k-1))
}

// Exponential draws an exponential variate with the given mean. The paper's
// VCR-jump intervals are exponential with a 15-minute mean, and Jackson
// service times are exponential by assumption.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// PoissonCount draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation beyond 500 to
// stay O(1) for the flash-crowd peaks.
func PoissonCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := 0
	for {
		p *= rng.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// NextPoissonArrival returns the time of the next event of a homogeneous
// Poisson process with the given rate (events per unit time), measured from
// now. A non-positive rate yields +Inf (no arrival).
func NextPoissonArrival(rng *rand.Rand, now, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return now + rng.ExpFloat64()/rate
}

// NextNHPPArrival returns the next arrival time of a non-homogeneous Poisson
// process with instantaneous rate rate(t), simulated by thinning against the
// envelope rateMax (which must dominate rate(t) on the horizon). It returns
// +Inf if no arrival occurs before horizon.
func NextNHPPArrival(rng *rand.Rand, now, horizon, rateMax float64, rate func(t float64) float64) float64 {
	if rateMax <= 0 {
		return math.Inf(1)
	}
	t := now
	for {
		t += rng.ExpFloat64() / rateMax
		if t >= horizon {
			return math.Inf(1)
		}
		if rng.Float64()*rateMax <= rate(t) {
			return t
		}
	}
}

// WeightedChoice returns an index drawn with probability proportional to
// weights[i]. Weights must be non-negative with a positive sum; otherwise
// -1 is returned.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
