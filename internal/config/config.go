// Package config holds the functional-option accumulator shared by the
// root cloudmedia package (NewPipeline, NewScenario) and pkg/simulate
// (Scenario.With). The root package owns the public Option constructors;
// this package owns the Settings they write so that scenario derivation in
// pkg/simulate can re-apply the same options without importing the root
// package (which would be an import cycle).
package config

import (
	"fmt"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/fault"
	"cloudmedia/internal/modes"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// Option configures a Pipeline or a Scenario by writing Settings fields.
// The root cloudmedia package aliases this type as cloudmedia.Option and
// pkg/simulate as simulate.Option, so the three spellings are one type.
type Option func(*Settings)

// Settings accumulates option values; nil pointer fields mean "keep the
// builder's default".
type Settings struct {
	// Channel shape.
	Chunks          *int
	PlaybackRate    *float64
	ChunkSeconds    *float64
	VMBandwidth     *float64
	SlotsPerVM      *int
	EntryFirstChunk *float64

	// Pipeline-only knobs.
	Transfer queueing.TransferMatrix
	Viewing  *[2]float64
	Rates    []float64

	// Shared budget and catalog knobs.
	PeerUplink  *float64
	Budgets     *[2]float64
	VMClusters  []cloud.VMClusterSpec
	NFSClusters []cloud.NFSClusterSpec

	// Scenario-only knobs.
	Hours       *float64
	Seed        *int64
	Scale       *float64
	ViewerScale *float64
	Interval    *float64
	Sample      *float64
	UplinkRatio *float64
	Channels    *int
	Workers     *int
	Predictor   core.Predictor
	Policy      provision.Policy
	Pricing     *cloud.PricingPlan
	Scheduling  sim.PeerScheduling
	Fidelity    modes.Fidelity
	Workload    *workload.Params
	Source      workload.Source
	Faults      *fault.Schedule

	// Live-serving knobs (pkg/serve; ignored by batch Run).
	Clock       modes.ClockMode
	TimeScale   *float64
	MetricsAddr *string

	// Err is the first option conflict observed; builders surface it.
	Err error
}

// Fail records the first option error; later errors are dropped so the
// caller sees the root cause.
func (s *Settings) Fail(format string, args ...any) {
	if s.Err == nil {
		s.Err = fmt.Errorf(format, args...)
	}
}

// Apply runs the options over a fresh accumulator and returns it together
// with the first recorded option error.
func Apply(opts []Option) (*Settings, error) {
	s := &Settings{}
	for _, opt := range opts {
		opt(s)
	}
	return s, s.Err
}

// Clone returns a deep copy: every pointer field is re-allocated and every
// slice reallocated, so mutations through the copy never reach the
// original. Predictor and Policy values are shared (both are stateless
// value specs; per-run policy state lives in the planner a controller
// builds from the spec).
func (s *Settings) Clone() *Settings {
	if s == nil {
		return nil
	}
	out := *s
	out.Chunks = clonePtr(s.Chunks)
	out.PlaybackRate = clonePtr(s.PlaybackRate)
	out.ChunkSeconds = clonePtr(s.ChunkSeconds)
	out.VMBandwidth = clonePtr(s.VMBandwidth)
	out.SlotsPerVM = clonePtr(s.SlotsPerVM)
	out.EntryFirstChunk = clonePtr(s.EntryFirstChunk)
	out.Viewing = clonePtr(s.Viewing)
	out.Rates = append([]float64(nil), s.Rates...)
	out.PeerUplink = clonePtr(s.PeerUplink)
	out.Budgets = clonePtr(s.Budgets)
	out.VMClusters = append([]cloud.VMClusterSpec(nil), s.VMClusters...)
	out.NFSClusters = append([]cloud.NFSClusterSpec(nil), s.NFSClusters...)
	out.Hours = clonePtr(s.Hours)
	out.Seed = clonePtr(s.Seed)
	out.Scale = clonePtr(s.Scale)
	out.ViewerScale = clonePtr(s.ViewerScale)
	out.Interval = clonePtr(s.Interval)
	out.Sample = clonePtr(s.Sample)
	out.UplinkRatio = clonePtr(s.UplinkRatio)
	out.Channels = clonePtr(s.Channels)
	out.Workers = clonePtr(s.Workers)
	out.Pricing = clonePtr(s.Pricing)
	out.TimeScale = clonePtr(s.TimeScale)
	out.MetricsAddr = clonePtr(s.MetricsAddr)
	if s.Transfer != nil {
		m := make(queueing.TransferMatrix, len(s.Transfer))
		for i, row := range s.Transfer {
			m[i] = append([]float64(nil), row...)
		}
		out.Transfer = m
	}
	if s.Workload != nil {
		w := s.Workload.Clone()
		out.Workload = &w
	}
	if s.Source != nil {
		out.Source = s.Source.CloneSource()
	}
	out.Faults = s.Faults.Clone()
	return &out
}

func clonePtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// Channel overlays the channel-shape options onto a base channel config.
func (s *Settings) Channel(base queueing.Config) queueing.Config {
	if s.Chunks != nil {
		base.Chunks = *s.Chunks
	}
	if s.PlaybackRate != nil {
		base.PlaybackRate = *s.PlaybackRate
	}
	if s.ChunkSeconds != nil {
		base.ChunkSeconds = *s.ChunkSeconds
	}
	if s.VMBandwidth != nil {
		base.VMBandwidth = *s.VMBandwidth
	}
	if s.SlotsPerVM != nil {
		base.SlotsPerVM = *s.SlotsPerVM
	}
	if s.EntryFirstChunk != nil {
		base.EntryFirstChunk = *s.EntryFirstChunk
	}
	return base
}
