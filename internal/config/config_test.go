package config

import (
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/workload"
)

func TestApplyAccumulatesAndReportsFirstError(t *testing.T) {
	s, err := Apply([]Option{
		func(s *Settings) { v := 8; s.Chunks = &v },
		func(s *Settings) { s.Fail("first") },
		func(s *Settings) { s.Fail("second") },
	})
	if err == nil || err.Error() != "first" {
		t.Errorf("err = %v, want first recorded failure", err)
	}
	if s.Chunks == nil || *s.Chunks != 8 {
		t.Errorf("chunks not accumulated: %+v", s.Chunks)
	}
}

func TestCloneSharesNothingMutable(t *testing.T) {
	hours := 6.0
	wl := workload.Default()
	s := &Settings{
		Hours:      &hours,
		Rates:      []float64{0.1, 0.2},
		VMClusters: cloud.DefaultVMClusters(),
		Transfer:   queueing.TransferMatrix{{0, 1}, {0.5, 0}},
		Workload:   &wl,
	}
	c := s.Clone()

	*c.Hours = 12
	c.Rates[0] = 9
	c.VMClusters[0].MaxVMs = 1
	c.Transfer[0][1] = 0.25
	c.Workload.Channels = 99
	c.Workload.FlashCrowds[0].PeakHour = 1

	if *s.Hours != 6 {
		t.Errorf("hours = %v, want 6", *s.Hours)
	}
	if s.Rates[0] != 0.1 {
		t.Errorf("rates mutated: %v", s.Rates)
	}
	if s.VMClusters[0].MaxVMs == 1 {
		t.Error("VM catalog shared")
	}
	if s.Transfer[0][1] != 1 {
		t.Error("transfer matrix shared")
	}
	if s.Workload.Channels == 99 || s.Workload.FlashCrowds[0].PeakHour == 1 {
		t.Error("workload shared")
	}
}

func TestCloneNil(t *testing.T) {
	var s *Settings
	if s.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
	empty := (&Settings{}).Clone()
	if empty.Hours != nil || empty.Workload != nil || empty.Transfer != nil {
		t.Errorf("empty clone grew fields: %+v", empty)
	}
}

func TestChannelOverlay(t *testing.T) {
	chunks, rate := 16, 25e3
	s := &Settings{Chunks: &chunks, PlaybackRate: &rate}
	base := queueing.Config{Chunks: 8, PlaybackRate: 50e3, ChunkSeconds: 75, VMBandwidth: 1.25e6}
	got := s.Channel(base)
	if got.Chunks != 16 || got.PlaybackRate != 25e3 {
		t.Errorf("overlay = %+v", got)
	}
	if got.ChunkSeconds != 75 || got.VMBandwidth != 1.25e6 {
		t.Errorf("untouched fields changed: %+v", got)
	}
}
