package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Point is one raw observation in the rolling store.
type Point struct {
	Sim          float64 // simulated seconds
	Real         float64 // wall-clock seconds since clock start
	Viewers      int
	Quality      float64
	DemandBps    float64 // total cloud demand, bytes/s
	ReservedMbps float64
	CostUSD      float64 // cumulative bill at this point
}

// Bin is one aggregated timeline entry: means over the raw points whose
// simulated time falls in [Start, Start+Width).
type Bin struct {
	Start        float64 `json:"start_s"`
	Width        float64 `json:"width_s"`
	Count        int     `json:"count"`
	Viewers      float64 `json:"viewers"`
	Quality      float64 `json:"quality"`
	DemandBps    float64 `json:"demand_bytes_per_second"`
	ReservedMbps float64 `json:"reserved_mbps"`
	CostUSD      float64 `json:"cost_usd"` // last cumulative bill seen in the bin
}

// Rolling retains raw observations for a bounded window of simulated
// time and aggregates everything — including points later pruned from
// the raw window — into fixed-width bins, so a long-running daemon keeps
// a full-run timeline at constant resolution while raw points stay
// bounded.
type Rolling struct {
	mu     sync.Mutex
	retain float64 // raw window, simulated seconds
	width  float64 // aggregation bin width, simulated seconds
	raw    []Point
	bins   map[int]*binAcc
}

type binAcc struct {
	count        int
	viewers      float64
	quality      float64
	demand       float64
	reservedMbps float64
	costUSD      float64 // last value wins
	lastSim      float64
}

// NewRolling builds a store retaining raw points for retainSeconds of
// simulated time and aggregating at binSeconds resolution. Zero values
// pick defaults (raw window 6h, bins 15min).
func NewRolling(retainSeconds, binSeconds float64) (*Rolling, error) {
	if retainSeconds == 0 {
		retainSeconds = 6 * 3600
	}
	if binSeconds == 0 {
		binSeconds = 900
	}
	if retainSeconds < 0 || math.IsNaN(retainSeconds) || math.IsInf(retainSeconds, 0) {
		return nil, fmt.Errorf("serve: invalid raw retention %v", retainSeconds)
	}
	if binSeconds <= 0 || math.IsNaN(binSeconds) || math.IsInf(binSeconds, 0) {
		return nil, fmt.Errorf("serve: invalid bin width %v", binSeconds)
	}
	return &Rolling{retain: retainSeconds, width: binSeconds, bins: make(map[int]*binAcc)}, nil
}

// Add records one observation and prunes raw points that fell out of the
// retention window. Aggregation is unaffected by pruning.
func (r *Rolling) Add(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.raw = append(r.raw, p)
	cut := 0
	for cut < len(r.raw)-1 && r.raw[cut].Sim < p.Sim-r.retain {
		cut++
	}
	if cut > 0 {
		r.raw = append(r.raw[:0], r.raw[cut:]...)
	}
	idx := int(math.Floor(p.Sim / r.width))
	acc := r.bins[idx]
	if acc == nil {
		acc = &binAcc{}
		r.bins[idx] = acc
	}
	acc.count++
	acc.viewers += float64(p.Viewers)
	acc.quality += p.Quality
	acc.demand += p.DemandBps
	acc.reservedMbps += p.ReservedMbps
	if p.Sim >= acc.lastSim {
		acc.lastSim = p.Sim
		acc.costUSD = p.CostUSD
	}
}

// Raw returns a copy of the currently retained raw points.
func (r *Rolling) Raw() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Point(nil), r.raw...)
}

// Timeline returns the aggregated bins in simulated-time order, covering
// the whole run regardless of raw retention.
func (r *Rolling) Timeline() []Bin {
	r.mu.Lock()
	defer r.mu.Unlock()
	idxs := make([]int, 0, len(r.bins))
	for i := range r.bins {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Bin, 0, len(idxs))
	for _, i := range idxs {
		acc := r.bins[i]
		n := float64(acc.count)
		out = append(out, Bin{
			Start:        float64(i) * r.width,
			Width:        r.width,
			Count:        acc.count,
			Viewers:      acc.viewers / n,
			Quality:      acc.quality / n,
			DemandBps:    acc.demand / n,
			ReservedMbps: acc.reservedMbps / n,
			CostUSD:      acc.costUSD,
		})
	}
	return out
}
