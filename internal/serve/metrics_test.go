package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
)

func sampleInterval() IntervalUpdate {
	return IntervalUpdate{
		Time:             3600,
		IntervalSeconds:  3600,
		ArrivalRates:     []float64{1.5, 2.5},
		DemandPerChannel: []float64{1e6, 2e6},
		TotalDemand:      3e6,
		TotalPeerSupply:  5e5,
		VMs:              map[string]int{"east": 3, "west": 1},
		CapacityPerChunk: map[[2]int]float64{{0, 0}: 1e6, {1, 0}: 2e6},
		StorageGB:        42,
		DemandScale:      1,
		Cost: cloud.LedgerTotals{
			ReservedUSD: 2, OnDemandUSD: 1, UpfrontUSD: 0.5, StorageUSD: 0.25,
		},
	}
}

func TestMetricsStateAndProm(t *testing.T) {
	m := NewMetrics()
	m.ObserveClock(3600, 150, 24)
	m.ObserveSnapshot(SnapshotUpdate{
		Time: 3600, Quality: 0.97, PerChannelQuality: []float64{0.99, 0.95},
		Users: 120, PerChannelUsers: []int{80, 40},
		ReservedMbps: 800, CloudServedGB: 3.5,
	})
	m.ObserveInterval(sampleInterval())
	m.ObservePlanLatency(0.002)

	st := m.State()
	if st.Viewers != 120 || st.Quality != 0.97 {
		t.Fatalf("snapshot not recorded: %+v", st)
	}
	if st.Plans != 1 || st.PlanErrors != 0 {
		t.Fatalf("interval counters: %+v", st)
	}
	if st.CostUSD != 3.75 {
		t.Fatalf("CostUSD = %v, want 3.75", st.CostUSD)
	}
	if st.CostRatePerHourUSD != 3.75 {
		t.Fatalf("cost rate = %v, want 3.75/h for a 1h interval", st.CostRatePerHourUSD)
	}
	if st.VMs["east"] != 3 {
		t.Fatalf("VM plan not recorded: %+v", st.VMs)
	}
	if st.TimeScale != 24 || st.RealSeconds != 150 {
		t.Fatalf("clock not recorded: %+v", st)
	}

	// A second errored interval accumulates cost and counts the failure.
	u := sampleInterval()
	u.Time = 7200
	u.PlanErr, u.StorageErr = true, true
	m.ObserveInterval(u)
	st = m.State()
	if st.Plans != 2 || st.PlanErrors != 1 || st.StorageErrors != 1 {
		t.Fatalf("error counters: %+v", st)
	}
	if st.CostUSD != 7.5 {
		t.Fatalf("cumulative CostUSD = %v, want 7.5", st.CostUSD)
	}

	var sb strings.Builder
	if err := m.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"cloudmedia_up 1",
		"cloudmedia_sim_seconds 7200",
		"cloudmedia_time_scale 24",
		"cloudmedia_viewers 120",
		`cloudmedia_channel_viewers{channel="0"} 80`,
		"cloudmedia_quality 0.97",
		`cloudmedia_arrival_rate{channel="1"} 2.5`,
		`cloudmedia_demand_bytes_per_second{channel="0"} 1e+06`,
		"cloudmedia_demand_bytes_per_second_total 3e+06",
		"cloudmedia_peer_supply_bytes_per_second 500000",
		`cloudmedia_provisioned_bytes_per_second{channel="1",chunk="0"} 2e+06`,
		`cloudmedia_vm_plan{cluster="east"} 3`,
		"cloudmedia_storage_gb 42",
		"cloudmedia_reserved_mbps 800",
		"cloudmedia_cloud_served_gigabytes 3.5",
		"cloudmedia_plan_rounds_total 2",
		"cloudmedia_plan_errors_total 1",
		"cloudmedia_storage_errors_total 1",
		"cloudmedia_plan_latency_seconds 0.002",
		`cloudmedia_cost_usd{tier="reserved"} 4`,
		"cloudmedia_cost_usd_total 7.5",
		"cloudmedia_cost_usd_per_hour 3.75",
		"# TYPE cloudmedia_cost_usd_total counter",
		"# HELP cloudmedia_viewers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// State copies must not alias the store.
	st = m.State()
	st.ArrivalRates[0] = -1
	st.VMs["east"] = -1
	if again := m.State(); again.ArrivalRates[0] == -1 || again.VMs["east"] == -1 {
		t.Fatal("State shares slices/maps with the store")
	}
}

func TestRollingTimeline(t *testing.T) {
	r, err := NewRolling(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRolling(-1, 100); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := NewRolling(100, -1); err == nil {
		t.Fatal("negative bin width accepted")
	}
	for i := 0; i < 40; i++ {
		r.Add(Point{
			Sim: float64(i) * 50, Viewers: 10 + i, Quality: 1,
			DemandBps: 100, CostUSD: float64(i),
		})
	}
	// 40 points, 50s apart, 1000s raw window: raw is pruned...
	if raw := r.Raw(); len(raw) > 25 {
		t.Fatalf("raw retained %d points past the window", len(raw))
	}
	// ...but the timeline covers the whole run: 40*50/100 = 20 bins, 2
	// points each.
	bins := r.Timeline()
	if len(bins) != 20 {
		t.Fatalf("timeline has %d bins, want 20", len(bins))
	}
	if bins[0].Start != 0 || bins[0].Count != 2 {
		t.Fatalf("first bin: %+v", bins[0])
	}
	if bins[0].Viewers != 10.5 {
		t.Fatalf("first bin mean viewers = %v, want 10.5", bins[0].Viewers)
	}
	if last := bins[len(bins)-1]; last.CostUSD != 39 {
		t.Fatalf("last bin cost = %v, want the last cumulative value 39", last.CostUSD)
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].Start <= bins[i-1].Start {
			t.Fatal("timeline not ordered")
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	m := NewMetrics()
	m.ObserveInterval(sampleInterval())
	r, err := NewRolling(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(Point{Sim: 100, Viewers: 7, Quality: 1})
	srv, err := ListenHTTP("127.0.0.1:0", NewHandler(m, r))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Start() // idempotent
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "cloudmedia_up 1") {
		t.Fatalf("/metrics = %d, missing cloudmedia_up", code)
	}
	code, body := get("/state")
	if code != 200 {
		t.Fatalf("/state = %d", code)
	}
	var doc struct {
		State
		Timeline []Bin `json:"timeline"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/state not JSON: %v", err)
	}
	if doc.Plans != 1 || len(doc.Timeline) != 1 || doc.Timeline[0].Viewers != 7 {
		t.Fatalf("/state contents: %+v", doc)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still reachable after Shutdown")
	}
}

func TestHTTPShutdownWithoutStart(t *testing.T) {
	srv, err := ListenHTTP("127.0.0.1:0", NewHandler(NewMetrics(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTimedPolicy(t *testing.T) {
	var observed int
	var last float64
	inner := provision.Lookahead{K: 2, Hysteresis: 1}
	p := TimedPolicy(inner, func(s float64) { observed++; last = s })
	if p.Name() != "lookahead" || p.Lookahead() != 2 || p.Oracle() {
		t.Fatalf("wrapper does not forward policy identity: %s/%d/%v", p.Name(), p.Lookahead(), p.Oracle())
	}
	if v, ok := p.(interface{ Validate() error }); !ok {
		t.Fatal("wrapper lost Validate")
	} else if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TimedPolicy(provision.Lookahead{K: -1}, nil)
	if err := bad.(interface{ Validate() error }).Validate(); err == nil {
		t.Fatal("wrapper swallowed inner Validate error")
	}

	planner := p.NewPlanner()
	req := provision.PlanRequest{
		IntervalSeconds: 3600,
		Demands:         []provision.ChunkDemand{{Channel: 0, Chunk: 0, Demand: 1e6}},
		VMBandwidth:     1e6,
		VMClusters:      []cloud.VMClusterSpec{{Name: "c", Utility: 1, MaxVMs: 10, PricePerHour: 1}},
		VMBudgetPerHour: 100,
	}
	res, err := planner.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMPlan.TotalVMs() == 0 {
		t.Fatal("wrapped planner produced an empty plan")
	}
	if observed != 1 || last < 0 {
		t.Fatalf("latency not observed: count=%d last=%v", observed, last)
	}

	// FutureDemander forwarding: a planner without the refinement reports
	// true; StaticPeak's own answer is forwarded through the wrapper.
	if fd := planner.(provision.FutureDemander); !fd.NeedsFuture() {
		t.Fatal("default NeedsFuture should be true")
	}
	sp := TimedPolicy(provision.StaticPeak{}, nil).NewPlanner()
	if !sp.(provision.FutureDemander).NeedsFuture() {
		t.Fatal("StaticPeak needs future before its first plan")
	}
	if _, err := sp.Plan(req); err != nil {
		t.Fatal(err)
	}
	if sp.(provision.FutureDemander).NeedsFuture() {
		t.Fatal("StaticPeak still wants future after planning")
	}
}

// Scrapers run concurrently with the simulation's observers; every
// exported read must deep-copy under the lock (the exposition path once
// aliased the live slice backings — caught by the race detector).
func TestMetricsConcurrentObserveAndScrape(t *testing.T) {
	m := NewMetrics()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			u := sampleInterval()
			u.Time = float64(i) * 60
			m.ObserveInterval(u)
			m.ObserveSnapshot(SnapshotUpdate{
				Time: u.Time, Users: i, PerChannelUsers: []int{i, i + 1},
				Quality: 1, PerChannelQuality: []float64{1, 0.9},
			})
			m.ObserveClock(u.Time, u.Time/100, 100)
			m.ObservePlanLatency(1e-4)
		}
	}()
	for i := 0; i < 100; i++ {
		if err := m.WriteProm(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
		_ = m.State()
	}
	<-done
}
