package serve

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"cloudmedia/internal/workload"
)

func mustLive(t *testing.T, channels int, maxRate float64) *LiveSource {
	t.Helper()
	s, err := NewLiveSource(channels, maxRate)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLiveSourceValidation(t *testing.T) {
	if _, err := NewLiveSource(0, 1); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewLiveSource(2, 0); err == nil {
		t.Fatal("zero rate ceiling accepted")
	}
	if _, err := NewLiveSource(2, math.NaN()); err == nil {
		t.Fatal("NaN rate ceiling accepted")
	}
	s := mustLive(t, 2, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(0, []float64{1}); err == nil {
		t.Fatal("short rate row accepted")
	}
	if err := s.Ingest(math.NaN(), []float64{1, 1}); err == nil {
		t.Fatal("NaN sample time accepted")
	}
	if err := s.Ingest(0, []float64{-1, 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestLiveSourceInterpolation(t *testing.T) {
	s := mustLive(t, 2, 100)
	// Empty source: rate 0 everywhere.
	if r, err := s.Rate(0, 5); err != nil || r != 0 {
		t.Fatalf("empty Rate = %v, %v; want 0, nil", r, err)
	}
	if err := s.Ingest(10, []float64{2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(20, []float64{6, 8}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ch   int
		t    float64
		want float64
	}{
		{0, 5, 2},  // before first sample: boundary hold
		{0, 10, 2}, // exact hit
		{0, 15, 4}, // midpoint
		{1, 15, 6}, // midpoint, channel 1
		{0, 20, 6}, // exact hit on last
		{1, 25, 8}, // after last sample: boundary hold
	}
	for _, c := range cases {
		got, err := s.Rate(c.ch, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Rate(%d, %v) = %v, want %v", c.ch, c.t, got, c.want)
		}
	}
	if _, err := s.Rate(2, 0); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
}

func TestLiveSourceRatesIntoMatchesRate(t *testing.T) {
	s := mustLive(t, 3, 100)
	for i := 0; i < 10; i++ {
		ti := float64(i) * 7
		if err := s.Ingest(ti, []float64{float64(i), float64(i * 2), 50 - float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]float64, 3)
	for _, tt := range []float64{-1, 0, 3.5, 7, 31.4, 63, 99} {
		if err := s.RatesInto(tt, dst); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			want, err := s.Rate(c, tt)
			if err != nil {
				t.Fatal(err)
			}
			if dst[c] != want {
				t.Fatalf("RatesInto(%v)[%d] = %v, Rate = %v", tt, c, dst[c], want)
			}
		}
	}
	if err := s.RatesInto(0, make([]float64, 2)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestLiveSourceClampAndDrop(t *testing.T) {
	s := mustLive(t, 1, 10)
	if err := s.Ingest(0, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(10, []float64{99}); err != nil {
		t.Fatal(err)
	}
	if got := s.Clamped(); got != 1 {
		t.Fatalf("Clamped = %d, want 1", got)
	}
	if r, _ := s.Rate(0, 10); r != 10 {
		t.Fatalf("clamped rate = %v, want envelope 10", r)
	}
	// Stale sample: dropped, not an error, and does not disturb the series.
	if err := s.Ingest(5, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if got := s.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if r, _ := s.Rate(0, 5); r != 7.5 {
		t.Fatalf("rate after dropped sample = %v, want 7.5", r)
	}
}

func TestLiveSourceRetention(t *testing.T) {
	s := mustLive(t, 1, 100)
	if err := s.SetRetention(100); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRetention(-1); err == nil {
		t.Fatal("negative retention accepted")
	}
	for i := 0; i < 50; i++ {
		if err := s.Ingest(float64(i*10), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Window is 100s over samples every 10s: ~11 retained.
	if n := s.Samples(); n > 15 {
		t.Fatalf("retained %d samples with a 100s window over 10s spacing", n)
	}
	if n := s.Samples(); n < 2 {
		t.Fatalf("retained %d samples, want at least a segment", n)
	}
}

func TestLiveSourceFeed(t *testing.T) {
	s := mustLive(t, 2, 100)
	input := strings.Join([]string{
		"time_s,ch0,ch1", // header is skipped
		"",
		"# comment",
		"0,1,2",
		"10, 3 , 4", // spaces tolerated
	}, "\n")
	if err := s.Feed(context.Background(), strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if n := s.Samples(); n != 2 {
		t.Fatalf("Samples = %d, want 2", n)
	}
	if r, _ := s.Rate(1, 5); r != 3 {
		t.Fatalf("fed rate = %v, want 3", r)
	}

	if err := s.Feed(context.Background(), strings.NewReader("20,x,1\n")); err == nil {
		t.Fatal("malformed rate accepted")
	}
	if err := s.Feed(context.Background(), strings.NewReader("20,1\n")); err == nil {
		t.Fatal("short row accepted")
	}
	// Non-numeric time past line 1 is an error, not a header.
	if err := s.Feed(context.Background(), strings.NewReader("30,1,1\nnope,1,1\n")); err == nil {
		t.Fatal("mid-stream bad time accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Feed(ctx, strings.NewReader("40,1,1\n")); err != context.Canceled {
		t.Fatalf("cancelled Feed = %v, want context.Canceled", err)
	}
}

func TestLiveSourceSourceContract(t *testing.T) {
	s := mustLive(t, 2, 50)
	var src workload.Source = s
	if src.NumChannels() != 2 {
		t.Fatalf("NumChannels = %d", src.NumChannels())
	}
	if m, err := src.MaxRate(0); err != nil || m != 50 {
		t.Fatalf("MaxRate = %v, %v; want envelope 50", m, err)
	}
	if _, err := src.MaxRate(5); err == nil {
		t.Fatal("out-of-range MaxRate channel accepted")
	}
	if src.CloneSource() != src {
		t.Fatal("CloneSource must return the shared receiver")
	}
	if err := s.Ingest(0, []float64{4, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(100, []float64{4, 0}); err != nil {
		t.Fatal(err)
	}
	m, err := src.MeanRate(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-4) > 1e-9 {
		t.Fatalf("MeanRate over a flat series = %v, want 4", m)
	}
	if m, _ := src.MeanRate(0, 100, 100); m != 0 {
		t.Fatalf("MeanRate over empty span = %v", m)
	}
}

// Readers interpolating while a feeder ingests must be race-clean (run
// under -race in CI).
func TestLiveSourceConcurrent(t *testing.T) {
	s := mustLive(t, 4, 1000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = s.Ingest(float64(i), []float64{1, 2, 3, 4})
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Rate(w, 250); err != nil {
					t.Error(err)
					return
				}
				if err := s.RatesInto(123.4, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
