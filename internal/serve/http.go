package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"
)

// NewHandler builds the observability mux:
//
//	/metrics — Prometheus text exposition (version 0.0.4)
//	/healthz — liveness, "ok\n"
//	/state   — full JSON state snapshot, plus the aggregated timeline
//	           when a Rolling store is supplied (nil is fine)
func NewHandler(m *Metrics, r *Rolling) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//cloudmedia:allow noloss -- HTTP response write; a disconnected scraper is not actionable here
		_ = m.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//cloudmedia:allow noloss -- HTTP response write; a disconnected client is not actionable here
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/state", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			State
			Timeline []Bin `json:"timeline,omitempty"`
		}{State: m.State()}
		if r != nil {
			doc.Timeline = r.Timeline()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//cloudmedia:allow noloss -- HTTP response write; a disconnected client is not actionable here
		_ = enc.Encode(doc)
	})
	return mux
}

// HTTPServer runs the observability endpoint on its own goroutine with a
// graceful shutdown. It accepts either an address to listen on or an
// existing listener (tests pass a ":0" listener to get a free port).
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener

	mu   sync.Mutex
	done chan struct{}
	err  error
}

// NewHTTPServer wraps handler in a server for the given listener.
func NewHTTPServer(ln net.Listener, handler http.Handler) *HTTPServer {
	return &HTTPServer{
		srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
}

// ListenHTTP opens addr (e.g. ":9090", "127.0.0.1:0") and returns a
// server for it.
func ListenHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewHTTPServer(ln, handler), nil
}

// Addr returns the listener's address (useful after ":0").
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Start begins serving on the listener. Idempotent.
func (s *HTTPServer) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		return
	}
	s.done = make(chan struct{})
	done := s.done
	go func() {
		err := s.srv.Serve(s.ln)
		if err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
		close(done)
	}()
}

// Shutdown drains in-flight requests and stops the server, returning any
// serve error. Safe to call without Start (closes the listener).
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if done == nil {
		return s.ln.Close()
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return err
	}
	<-done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
