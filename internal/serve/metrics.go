package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"cloudmedia/internal/cloud"
)

// SnapshotUpdate is one periodic measurement pushed into the metric
// store (pkg/serve maps simulate.Snapshot onto it).
type SnapshotUpdate struct {
	Time              float64
	Quality           float64
	PerChannelQuality []float64
	Users             int
	PerChannelUsers   []int
	ReservedMbps      float64
	CloudServedGB     float64
}

// IntervalUpdate is one provisioning round pushed into the metric store
// (pkg/serve maps simulate.IntervalRecord onto it).
type IntervalUpdate struct {
	Time             float64
	IntervalSeconds  float64
	ArrivalRates     []float64
	DemandPerChannel []float64 // bytes/s
	TotalDemand      float64
	TotalPeerSupply  float64
	VMs              map[string]int     // plan per cluster
	CapacityPerChunk map[[2]int]float64 // provisioned bytes/s per (channel, chunk)
	StorageGB        float64
	DemandScale      float64
	PlanErr          bool
	StorageErr       bool
	Cost             cloud.LedgerTotals // the interval's accrual
}

// State is the /state JSON snapshot: the latest of everything the store
// tracks, plus the cumulative counters.
type State struct {
	SimSeconds  float64 `json:"sim_seconds"`
	RealSeconds float64 `json:"real_seconds"`
	TimeScale   float64 `json:"time_scale"`

	Viewers           int       `json:"viewers"`
	ViewersPerChannel []int     `json:"viewers_per_channel,omitempty"`
	Quality           float64   `json:"quality"`
	QualityPerChannel []float64 `json:"quality_per_channel,omitempty"`
	ReservedMbps      float64   `json:"reserved_mbps"`
	CloudServedGB     float64   `json:"cloud_served_gb"`

	ArrivalRates     []float64      `json:"arrival_rates,omitempty"`
	DemandPerChannel []float64      `json:"demand_bytes_per_second,omitempty"`
	TotalDemand      float64        `json:"total_demand_bytes_per_second"`
	PeerSupply       float64        `json:"peer_supply_bytes_per_second"`
	VMs              map[string]int `json:"vm_plan,omitempty"`
	StorageGB        float64        `json:"storage_gb"`
	DemandScale      float64        `json:"demand_scale"`

	Plans              int     `json:"plan_rounds"`
	PlanErrors         int     `json:"plan_errors"`
	StorageErrors      int     `json:"storage_errors"`
	LastPlanLatency    float64 `json:"last_plan_latency_seconds"`
	TotalPlanLatency   float64 `json:"total_plan_latency_seconds"`
	CostUSD            float64 `json:"cost_usd"`
	CostReservedUSD    float64 `json:"cost_reserved_usd"`
	CostOnDemandUSD    float64 `json:"cost_on_demand_usd"`
	CostUpfrontUSD     float64 `json:"cost_upfront_usd"`
	CostStorageUSD     float64 `json:"cost_storage_usd"`
	CostRatePerHourUSD float64 `json:"cost_usd_per_hour"`
}

// Metrics is the live run's metric store: updated from the run loop's
// callbacks, read concurrently by the HTTP handlers. Everything is
// plain last-value gauges plus a few monotonic counters — deliberately
// no time series, which live in Rolling.
type Metrics struct {
	mu sync.Mutex
	st State

	capacity map[[2]int]float64
	cost     cloud.LedgerTotals
}

// NewMetrics builds an empty store.
func NewMetrics() *Metrics {
	return &Metrics{st: State{DemandScale: 1, Quality: 1}}
}

// ObserveClock records the pacing state: simulated seconds, real seconds
// since the clock started, and the configured time scale.
func (m *Metrics) ObserveClock(simSeconds, realSeconds, timeScale float64) {
	m.mu.Lock()
	m.st.SimSeconds = simSeconds
	m.st.RealSeconds = realSeconds
	m.st.TimeScale = timeScale
	m.mu.Unlock()
}

// ObserveSnapshot records one periodic measurement.
func (m *Metrics) ObserveSnapshot(s SnapshotUpdate) {
	m.mu.Lock()
	if s.Time > m.st.SimSeconds {
		m.st.SimSeconds = s.Time
	}
	m.st.Viewers = s.Users
	m.st.ViewersPerChannel = append(m.st.ViewersPerChannel[:0], s.PerChannelUsers...)
	m.st.Quality = s.Quality
	m.st.QualityPerChannel = append(m.st.QualityPerChannel[:0], s.PerChannelQuality...)
	m.st.ReservedMbps = s.ReservedMbps
	m.st.CloudServedGB = s.CloudServedGB
	m.mu.Unlock()
}

// ObserveInterval records one provisioning round, accumulating the
// interval's bill into the cumulative cost and deriving the cost ticker
// rate ($/h over the interval that just ended).
func (m *Metrics) ObserveInterval(u IntervalUpdate) {
	m.mu.Lock()
	if u.Time > m.st.SimSeconds {
		m.st.SimSeconds = u.Time
	}
	m.st.ArrivalRates = append(m.st.ArrivalRates[:0], u.ArrivalRates...)
	m.st.DemandPerChannel = append(m.st.DemandPerChannel[:0], u.DemandPerChannel...)
	m.st.TotalDemand = u.TotalDemand
	m.st.PeerSupply = u.TotalPeerSupply
	m.st.VMs = u.VMs
	m.capacity = u.CapacityPerChunk
	m.st.StorageGB = u.StorageGB
	m.st.DemandScale = u.DemandScale
	m.st.Plans++
	if u.PlanErr {
		m.st.PlanErrors++
	}
	if u.StorageErr {
		m.st.StorageErrors++
	}
	m.cost.ReservedVMHours += u.Cost.ReservedVMHours
	m.cost.OnDemandVMHours += u.Cost.OnDemandVMHours
	m.cost.GBHours += u.Cost.GBHours
	m.cost.ReservedUSD += u.Cost.ReservedUSD
	m.cost.OnDemandUSD += u.Cost.OnDemandUSD
	m.cost.UpfrontUSD += u.Cost.UpfrontUSD
	m.cost.StorageUSD += u.Cost.StorageUSD
	m.st.CostUSD = m.cost.TotalUSD()
	m.st.CostReservedUSD = m.cost.ReservedUSD
	m.st.CostOnDemandUSD = m.cost.OnDemandUSD
	m.st.CostUpfrontUSD = m.cost.UpfrontUSD
	m.st.CostStorageUSD = m.cost.StorageUSD
	if u.IntervalSeconds > 0 {
		m.st.CostRatePerHourUSD = u.Cost.TotalUSD() / (u.IntervalSeconds / 3600)
	}
	m.mu.Unlock()
}

// ObservePlanLatency records one policy Plan call's wall-clock duration.
func (m *Metrics) ObservePlanLatency(seconds float64) {
	m.mu.Lock()
	m.st.LastPlanLatency = seconds
	m.st.TotalPlanLatency += seconds
	m.mu.Unlock()
}

// State returns a copy of the current state (slices and maps included).
func (m *Metrics) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stateLocked()
}

// stateLocked deep-copies the state; the caller must hold m.mu. The
// copy matters: observers refill the slice fields in place, so a
// shallow copy would alias live backing arrays.
func (m *Metrics) stateLocked() State {
	st := m.st
	st.ViewersPerChannel = append([]int(nil), m.st.ViewersPerChannel...)
	st.QualityPerChannel = append([]float64(nil), m.st.QualityPerChannel...)
	st.ArrivalRates = append([]float64(nil), m.st.ArrivalRates...)
	st.DemandPerChannel = append([]float64(nil), m.st.DemandPerChannel...)
	if m.st.VMs != nil {
		st.VMs = make(map[string]int, len(m.st.VMs))
		for k, v := range m.st.VMs {
			st.VMs[k] = v
		}
	}
	return st
}

// WriteJSON writes the /state document.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.State())
}

// WriteProm writes the store in the Prometheus text exposition format
// (version 0.0.4), hand-rolled so the module stays dependency-free.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	st := m.stateLocked()
	caps := m.capacity
	m.mu.Unlock()

	p := promWriter{w: w}
	p.gauge("cloudmedia_up", "Whether the serve control plane is running.", 1)
	p.gauge("cloudmedia_sim_seconds", "Simulated time reached by the paced run.", st.SimSeconds)
	p.gauge("cloudmedia_real_seconds", "Wall-clock seconds since the pacing clock started.", st.RealSeconds)
	p.gauge("cloudmedia_time_scale", "Configured time compression factor (simulated/real).", st.TimeScale)
	p.gauge("cloudmedia_viewers", "Concurrent viewers across all channels.", float64(st.Viewers))
	p.head("cloudmedia_channel_viewers", "Concurrent viewers per channel.", "gauge")
	for c, n := range st.ViewersPerChannel {
		p.row("cloudmedia_channel_viewers", channelLabel(c), float64(n))
	}
	p.gauge("cloudmedia_quality", "Fraction of viewers with smooth playback in the trailing window.", st.Quality)
	p.head("cloudmedia_channel_quality", "Smooth-playback fraction per channel.", "gauge")
	for c, q := range st.QualityPerChannel {
		p.row("cloudmedia_channel_quality", channelLabel(c), q)
	}
	p.head("cloudmedia_arrival_rate", "Estimated per-channel arrival rate, users/s.", "gauge")
	for c, r := range st.ArrivalRates {
		p.row("cloudmedia_arrival_rate", channelLabel(c), r)
	}
	p.head("cloudmedia_demand_bytes_per_second", "Derived per-channel cloud demand.", "gauge")
	for c, d := range st.DemandPerChannel {
		p.row("cloudmedia_demand_bytes_per_second", channelLabel(c), d)
	}
	p.gauge("cloudmedia_demand_bytes_per_second_total", "Derived cloud demand across channels.", st.TotalDemand)
	p.gauge("cloudmedia_peer_supply_bytes_per_second", "Analytic peer supply across channels.", st.PeerSupply)
	p.head("cloudmedia_provisioned_bytes_per_second", "Provisioned cloud capacity per chunk.", "gauge")
	for _, k := range sortedChunkKeys(caps) {
		p.row("cloudmedia_provisioned_bytes_per_second",
			fmt.Sprintf(`channel="%d",chunk="%d"`, k[0], k[1]), caps[k])
	}
	p.head("cloudmedia_vm_plan", "VMs rented per cluster in the applied plan.", "gauge")
	for _, name := range sortedClusterNames(st.VMs) {
		p.row("cloudmedia_vm_plan", fmt.Sprintf(`cluster=%q`, name), float64(st.VMs[name]))
	}
	p.gauge("cloudmedia_storage_gb", "NFS storage rented in the applied plan.", st.StorageGB)
	p.gauge("cloudmedia_reserved_mbps", "Cloud capacity provisioned at the last sample.", st.ReservedMbps)
	p.gauge("cloudmedia_cloud_served_gigabytes", "Cumulative cloud traffic delivered.", st.CloudServedGB)
	p.gauge("cloudmedia_demand_scale", "Demand scale applied by the last plan (<1 = budget infeasible).", st.DemandScale)
	p.counter("cloudmedia_plan_rounds_total", "Provisioning rounds completed.", float64(st.Plans))
	p.counter("cloudmedia_plan_errors_total", "Provisioning rounds whose VM planning failed.", float64(st.PlanErrors))
	p.counter("cloudmedia_storage_errors_total", "Provisioning rounds whose storage planning failed.", float64(st.StorageErrors))
	p.gauge("cloudmedia_plan_latency_seconds", "Wall-clock duration of the last policy Plan call.", st.LastPlanLatency)
	p.counter("cloudmedia_plan_latency_seconds_total", "Cumulative wall-clock time in policy Plan calls.", st.TotalPlanLatency)
	p.head("cloudmedia_cost_usd", "Cumulative ledger bill by pricing tier.", "counter")
	p.row("cloudmedia_cost_usd", `tier="reserved"`, st.CostReservedUSD)
	p.row("cloudmedia_cost_usd", `tier="on_demand"`, st.CostOnDemandUSD)
	p.row("cloudmedia_cost_usd", `tier="upfront"`, st.CostUpfrontUSD)
	p.row("cloudmedia_cost_usd", `tier="storage"`, st.CostStorageUSD)
	p.counter("cloudmedia_cost_usd_total", "Cumulative ledger bill, all tiers.", st.CostUSD)
	p.gauge("cloudmedia_cost_usd_per_hour", "Ledger accrual rate over the last provisioning interval.", st.CostRatePerHourUSD)
	return p.err
}

// promWriter accumulates exposition lines, remembering the first write
// error so call sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) head(name, help, kind string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *promWriter) row(name, labels string, v float64) {
	p.printf("%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func (p *promWriter) scalar(name, help, kind string, v float64) {
	p.head(name, help, kind)
	p.printf("%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

func (p *promWriter) gauge(name, help string, v float64)   { p.scalar(name, help, "gauge", v) }
func (p *promWriter) counter(name, help string, v float64) { p.scalar(name, help, "counter", v) }

func channelLabel(c int) string { return fmt.Sprintf(`channel="%d"`, c) }

func sortedClusterNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedChunkKeys(m map[[2]int]float64) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}
