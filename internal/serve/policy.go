package serve

import (
	"time"

	"cloudmedia/internal/provision"
)

// TimedPolicy wraps a provisioning policy so every Plan call's wall-clock
// duration is reported to observe — the metric store's plan-latency
// feed. The wrapper is transparent: Name, Lookahead, Oracle, an optional
// Validate, and the planner's optional NeedsFuture all forward to the
// inner policy, so the controller's behaviour is unchanged.
func TimedPolicy(p provision.Policy, observe func(seconds float64)) provision.Policy {
	return timedPolicy{inner: p, observe: observe}
}

type timedPolicy struct {
	inner   provision.Policy
	observe func(seconds float64)
}

// validator mirrors the optional Validate check experiments.Build applies
// to policies via type assertion; the wrapper must keep exposing it.
type validator interface {
	Validate() error
}

func (p timedPolicy) Name() string   { return p.inner.Name() }
func (p timedPolicy) Lookahead() int { return p.inner.Lookahead() }
func (p timedPolicy) Oracle() bool   { return p.inner.Oracle() }

func (p timedPolicy) Validate() error {
	if v, ok := p.inner.(validator); ok {
		return v.Validate()
	}
	return nil
}

func (p timedPolicy) NewPlanner() provision.Planner {
	return &timedPlanner{inner: p.inner.NewPlanner(), observe: p.observe}
}

type timedPlanner struct {
	inner   provision.Planner
	observe func(seconds float64)
}

func (p *timedPlanner) Plan(req provision.PlanRequest) (provision.PlanResult, error) {
	start := time.Now()
	res, err := p.inner.Plan(req)
	if p.observe != nil {
		p.observe(time.Since(start).Seconds())
	}
	return res, err
}

// NeedsFuture implements provision.FutureDemander by forwarding; a
// planner without the refinement always wants its policy's lookahead.
func (p *timedPlanner) NeedsFuture() bool {
	if fd, ok := p.inner.(provision.FutureDemander); ok {
		return fd.NeedsFuture()
	}
	return true
}
