// Package serve holds the live control plane's building blocks: the
// pacing clock, the streaming arrival ingress, the rolling metric store
// with its Prometheus-style exposition, and the timed policy wrapper. The
// public facade that assembles them around a simulate.Scenario is
// cloudmedia/pkg/serve; see DESIGN.md "Real-time serving".
package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"cloudmedia/internal/modes"
)

// Clock paces simulated time against real time. WaitUntil is called from
// the engines' pacing hook (sim.Config.Pacer) on the simulation
// goroutine; RealElapsed may be called concurrently from HTTP handlers.
type Clock interface {
	// Start anchors the clock at the current wall time. Idempotent.
	Start()
	// WaitUntil blocks until the wall clock reaches the real time
	// corresponding to simSeconds of simulated time, or the context is
	// cancelled (returning the context error). A simulated clock returns
	// immediately.
	WaitUntil(ctx context.Context, simSeconds float64) error
	// RealElapsed returns the wall-clock seconds since Start (0 before).
	RealElapsed() float64
	// Mode reports the clock's kind.
	Mode() modes.ClockMode
}

// NewClock builds a clock for the given mode. timeScale compresses
// simulated time for ClockReal: simSeconds/timeScale real seconds pass
// per simulated second's worth of pacing (1–24× covers the paper's
// day-long traces; larger factors are valid and used by tests and smoke
// runs). 0 means 1. ClockSimulated ignores the scale.
func NewClock(mode modes.ClockMode, timeScale float64) (Clock, error) {
	if timeScale == 0 {
		timeScale = 1
	}
	if timeScale < 0 || math.IsNaN(timeScale) || math.IsInf(timeScale, 0) {
		return nil, fmt.Errorf("serve: invalid time scale %v", timeScale)
	}
	switch mode {
	case modes.ClockReal:
		return &realClock{scale: timeScale}, nil
	case modes.ClockSimulated:
		return &simulatedClock{}, nil
	default:
		return nil, fmt.Errorf("serve: invalid clock mode %d", int(mode))
	}
}

// realClock sleeps so simulated second s arrives at start + s/scale.
// Pacing is anchored to the start instant, not the previous wait, so
// scheduling jitter and slow intervals never accumulate drift: a barrier
// the engines reach late is simply not waited on.
type realClock struct {
	scale float64

	mu    sync.Mutex
	start time.Time
}

func (c *realClock) Start() {
	c.mu.Lock()
	if c.start.IsZero() {
		c.start = time.Now()
	}
	c.mu.Unlock()
}

func (c *realClock) startTime() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start
}

func (c *realClock) WaitUntil(ctx context.Context, simSeconds float64) error {
	start := c.startTime()
	if start.IsZero() {
		c.Start()
		start = c.startTime()
	}
	due := start.Add(time.Duration(simSeconds / c.scale * float64(time.Second)))
	d := time.Until(due)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func (c *realClock) RealElapsed() float64 {
	start := c.startTime()
	if start.IsZero() {
		return 0
	}
	return time.Since(start).Seconds()
}

func (c *realClock) Mode() modes.ClockMode { return modes.ClockReal }

// simulatedClock applies no pacing: WaitUntil only honours cancellation,
// so a simulated-clock serve run is the batch run plus observability.
type simulatedClock struct {
	mu    sync.Mutex
	start time.Time
}

func (c *simulatedClock) Start() {
	c.mu.Lock()
	if c.start.IsZero() {
		c.start = time.Now()
	}
	c.mu.Unlock()
}

func (c *simulatedClock) WaitUntil(ctx context.Context, simSeconds float64) error {
	return ctx.Err()
}

func (c *simulatedClock) RealElapsed() float64 {
	c.mu.Lock()
	start := c.start
	c.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start).Seconds()
}

func (c *simulatedClock) Mode() modes.ClockMode { return modes.ClockSimulated }
