package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"cloudmedia/internal/modes"
)

func TestNewClockValidation(t *testing.T) {
	if _, err := NewClock(modes.ClockReal, -1); err == nil {
		t.Fatal("negative time scale accepted")
	}
	if _, err := NewClock(modes.ClockReal, math.NaN()); err == nil {
		t.Fatal("NaN time scale accepted")
	}
	if _, err := NewClock(modes.ClockReal, math.Inf(1)); err == nil {
		t.Fatal("infinite time scale accepted")
	}
	if _, err := NewClock(modes.ClockMode(0), 1); err == nil {
		t.Fatal("unset clock mode accepted")
	}
	c, err := NewClock(modes.ClockReal, 0)
	if err != nil {
		t.Fatalf("zero time scale rejected: %v", err)
	}
	if c.Mode() != modes.ClockReal {
		t.Fatalf("mode = %v, want real", c.Mode())
	}
}

func TestRealClockPaces(t *testing.T) {
	// 100 simulated seconds at 1000x should take ~100ms of real time.
	c, err := NewClock(modes.ClockReal, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	start := time.Now()
	if err := c.WaitUntil(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("waited %v for 100 sim-seconds at 1000x, want ~100ms", elapsed)
	}
	if re := c.RealElapsed(); re <= 0 {
		t.Fatalf("RealElapsed = %v after waiting", re)
	}
}

func TestRealClockNoDrift(t *testing.T) {
	// Pacing is anchored to the start instant: a barrier already in the
	// past is not waited on, so late intervals do not push later ones.
	c, err := NewClock(modes.ClockReal, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(20 * time.Millisecond) // now ~20000 sim-seconds "late"
	start := time.Now()
	if err := c.WaitUntil(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("past barrier still waited %v", elapsed)
	}
}

func TestRealClockCancel(t *testing.T) {
	c, err := NewClock(modes.ClockReal, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.WaitUntil(ctx, 3600) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("WaitUntil error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUntil did not honour cancellation")
	}
}

func TestSimulatedClockNeverWaits(t *testing.T) {
	c, err := NewClock(modes.ClockSimulated, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	start := time.Now()
	for s := 0.0; s < 1e6; s += 1e5 {
		if err := c.WaitUntil(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("simulated clock spent %v pacing", elapsed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.WaitUntil(ctx, 0); err != context.Canceled {
		t.Fatalf("cancelled WaitUntil = %v, want context.Canceled", err)
	}
}

func TestClockStartIdempotent(t *testing.T) {
	c, err := NewClock(modes.ClockReal, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(5 * time.Millisecond)
	first := c.RealElapsed()
	c.Start() // must not re-anchor
	if second := c.RealElapsed(); second < first {
		t.Fatalf("RealElapsed went backwards after second Start: %v -> %v", first, second)
	}
}
