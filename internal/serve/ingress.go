package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cloudmedia/internal/workload"
)

// LiveSource is a workload.Source fed incrementally while a run is in
// flight: a line-protocol stream (stdin, a socket) or direct Ingest calls
// append per-channel rate samples, and the engines read the growing
// series concurrently. Between samples the intensity is linear; before
// the first and after the last sample it holds the boundary value, so the
// run keeps serving the latest observed rates until the next line
// arrives.
//
// Two deliberate deviations from the batch sources, both consequences of
// being live:
//
//   - CloneSource returns the receiver itself, not a deep copy: a live
//     feed is a shared stream, and a private copy would silently freeze
//     the clone at the rates ingested so far. Concurrent runs therefore
//     observe the same feed.
//   - The thinning envelope (MaxRate) is fixed at construction instead of
//     derived from the series: non-homogeneous Poisson thinning needs an
//     upper bound on rates that have not arrived yet. Ingested rates
//     above the envelope are clamped to it (counted in Clamped), so the
//     sampling stays correct at the cost of flattening surges beyond the
//     declared ceiling.
//
// One caveat inherent to feeding a discrete-event engine: each channel's
// next arrival is sampled when the previous one fires, so a rate spike
// ingested between two arrivals is seen only from the next re-arm
// onwards — ingress latency is bounded by one inter-arrival gap (plus
// one thinning horizon for idle channels).
type LiveSource struct {
	mu       sync.RWMutex
	channels int
	envelope float64 // per-channel thinning ceiling, users/s
	retain   float64 // sample retention window, seconds
	times    []float64
	samples  [][]float64 // sample-major: samples[i][c]
	clamped  int
	dropped  int
}

var _ workload.Source = (*LiveSource)(nil)
var _ workload.BatchSource = (*LiveSource)(nil)

// DefaultRetainSeconds bounds the live series: samples older than this
// much simulated time behind the newest one are pruned, keeping the
// source's memory independent of run length (a day of 15-minute samples
// is ~100 points per channel).
const DefaultRetainSeconds = 48 * 3600

// NewLiveSource builds an empty live source for the given channel count.
// maxRate is the per-channel rate ceiling used as the thinning envelope;
// ingested rates above it are clamped.
func NewLiveSource(channels int, maxRate float64) (*LiveSource, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("serve: non-positive channel count %d", channels)
	}
	if maxRate <= 0 || math.IsNaN(maxRate) || math.IsInf(maxRate, 0) {
		return nil, fmt.Errorf("serve: invalid rate ceiling %v", maxRate)
	}
	return &LiveSource{channels: channels, envelope: maxRate, retain: DefaultRetainSeconds}, nil
}

// SetRetention overrides the sample retention window in simulated
// seconds; 0 restores the default.
func (s *LiveSource) SetRetention(seconds float64) error {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("serve: invalid retention %v", seconds)
	}
	if seconds == 0 {
		seconds = DefaultRetainSeconds
	}
	s.mu.Lock()
	s.retain = seconds
	s.mu.Unlock()
	return nil
}

// Ingest appends one sample: every channel's arrival rate at simulated
// time t. Times must be strictly increasing across calls; a stale sample
// is dropped (counted in Dropped) rather than treated as an error, so a
// replayed feed that overlaps the history keeps streaming.
func (s *LiveSource) Ingest(t float64, rates []float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("serve: non-finite sample time %v", t)
	}
	if len(rates) != s.channels {
		return fmt.Errorf("serve: sample has %d rates, want %d", len(rates), s.channels)
	}
	row := make([]float64, len(rates))
	for c, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("serve: channel %d: invalid rate %v", c, r)
		}
		row[c] = r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.times); n > 0 && t <= s.times[n-1] {
		s.dropped++
		return nil
	}
	for c, r := range row {
		if r > s.envelope {
			row[c] = s.envelope
			s.clamped++
		}
	}
	s.times = append(s.times, t)
	s.samples = append(s.samples, row)
	// Prune everything older than the retention window, keeping at least
	// two samples so interpolation always has a segment.
	cut := 0
	for cut < len(s.times)-2 && s.times[cut] < t-s.retain {
		cut++
	}
	if cut > 0 {
		s.times = append(s.times[:0], s.times[cut:]...)
		s.samples = append(s.samples[:0], s.samples[cut:]...)
	}
	return nil
}

// Clamped returns how many ingested rates exceeded the envelope and were
// clamped; Dropped how many whole samples arrived out of order.
func (s *LiveSource) Clamped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clamped
}

// Dropped returns how many samples were discarded as non-monotonic.
func (s *LiveSource) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// Samples returns the number of samples currently retained.
func (s *LiveSource) Samples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.times)
}

// Feed ingests the line protocol from r until EOF, a malformed line, or
// context cancellation. Each line is a trace-CSV row — "time_s,rate0,
// rate1,…" with one rate per channel — and blank lines, '#' comments,
// and a leading header line are skipped, so `cloudmedia trace gen`
// output pipes straight in:
//
//	cloudmedia trace gen -kind weekweekend -days 2 | cloudmedia serve -stdin …
func (s *LiveSource) Feed(ctx context.Context, r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if err := ctx.Err(); err != nil {
			return err
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			if line == 1 {
				continue // header row ("time_s,ch0,…")
			}
			return fmt.Errorf("serve: line %d: bad time %q", line, fields[0])
		}
		if len(fields)-1 != s.channels {
			return fmt.Errorf("serve: line %d: %d rates, want %d", line, len(fields)-1, s.channels)
		}
		rates := make([]float64, s.channels)
		for c, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("serve: line %d: bad rate %q", line, f)
			}
			rates[c] = v
		}
		if err := s.Ingest(t, rates); err != nil {
			return fmt.Errorf("serve: line %d: %w", line, err)
		}
	}
	return sc.Err()
}

// NumChannels implements workload.Source.
func (s *LiveSource) NumChannels() int { return s.channels }

// Rate implements workload.Source: linear between samples, the boundary
// value outside them, 0 before any sample arrives.
func (s *LiveSource) Rate(channel int, t float64) (float64, error) {
	if channel < 0 || channel >= s.channels {
		return 0, fmt.Errorf("serve: channel %d outside [0,%d)", channel, s.channels)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.times)
	if n == 0 {
		return 0, nil
	}
	if t <= s.times[0] {
		return s.samples[0][channel], nil
	}
	if t >= s.times[n-1] {
		return s.samples[n-1][channel], nil
	}
	i := sort.SearchFloat64s(s.times, t)
	if s.times[i] == t {
		return s.samples[i][channel], nil
	}
	t0, t1 := s.times[i-1], s.times[i]
	f := (t - t0) / (t1 - t0)
	return s.samples[i-1][channel] + f*(s.samples[i][channel]-s.samples[i-1][channel]), nil
}

// RatesInto implements workload.BatchSource under one lock acquisition
// and one segment search.
//
//cloudmedia:hotpath
func (s *LiveSource) RatesInto(t float64, dst []float64) error {
	if len(dst) != s.channels {
		return rateBufLenError(len(dst), s.channels)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.times)
	if n == 0 {
		for c := range dst {
			dst[c] = 0
		}
		return nil
	}
	switch {
	case t <= s.times[0]:
		copy(dst, s.samples[0])
	case t >= s.times[n-1]:
		copy(dst, s.samples[n-1])
	default:
		i := sort.SearchFloat64s(s.times, t)
		if s.times[i] == t {
			copy(dst, s.samples[i])
			return nil
		}
		t0, t1 := s.times[i-1], s.times[i]
		f := (t - t0) / (t1 - t0)
		for c := range dst {
			dst[c] = s.samples[i-1][c] + f*(s.samples[i][c]-s.samples[i-1][c])
		}
	}
	return nil
}

// MaxRate implements workload.Source: the fixed envelope (see the type
// comment for why it cannot follow the series).
func (s *LiveSource) MaxRate(channel int) (float64, error) {
	if channel < 0 || channel >= s.channels {
		return 0, fmt.Errorf("serve: channel %d outside [0,%d)", channel, s.channels)
	}
	return s.envelope, nil
}

// MeanRate implements workload.Source by midpoint sampling of Rate — an
// approximation, adequate for the bootstrap estimate and oracle feeds
// that consume it.
func (s *LiveSource) MeanRate(channel int, start, end float64) (float64, error) {
	if end <= start {
		return 0, nil
	}
	const steps = 12
	dt := (end - start) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		r, err := s.Rate(channel, start+(float64(i)+0.5)*dt)
		if err != nil {
			return 0, err
		}
		sum += r
	}
	return sum / steps, nil
}

// CloneSource implements workload.Source by returning the receiver: a
// live feed is shared, not copied (see the type comment).
func (s *LiveSource) CloneSource() workload.Source { return s }

// Validate implements workload.Source.
func (s *LiveSource) Validate() error {
	if s.channels <= 0 {
		return fmt.Errorf("serve: non-positive channel count %d", s.channels)
	}
	if s.envelope <= 0 {
		return fmt.Errorf("serve: invalid rate ceiling %v", s.envelope)
	}
	return nil
}

// rateBufLenError is the cold half of RatesInto's length guard, kept out
// of line so the annotated hot body contains no fmt machinery.
func rateBufLenError(n, channels int) error {
	return fmt.Errorf("serve: rate buffer length %d != channels %d", n, channels)
}
