package metrics

import (
	"strings"
	"testing"

	"cloudmedia/internal/mathx"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries("bw")
	for i, v := range []float64{10, 30, 20} {
		if err := ts.Add(float64(i), v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if tm, v := ts.At(1); tm != 1 || v != 30 {
		t.Errorf("At(1) = %v,%v", tm, v)
	}
	if !mathx.ApproxEqual(ts.Mean(), 20, 1e-12) {
		t.Errorf("Mean = %v", ts.Mean())
	}
	if ts.Max() != 30 || ts.Min() != 10 {
		t.Errorf("Max/Min = %v/%v", ts.Max(), ts.Min())
	}
}

func TestTimeSeriesRejectsBackwardsTime(t *testing.T) {
	ts := NewTimeSeries("x")
	if err := ts.Add(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add(4, 1); err == nil {
		t.Error("backwards time: want error")
	}
}

func TestTimeSeriesCopies(t *testing.T) {
	ts := NewTimeSeries("x")
	_ = ts.Add(0, 7)
	vals := ts.Values()
	vals[0] = 99
	if _, v := ts.At(0); v != 7 {
		t.Error("Values exposes internal storage")
	}
	times := ts.Times()
	times[0] = 99
	if tm, _ := ts.At(0); tm != 0 {
		t.Error("Times exposes internal storage")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "hour", "cost")
	tbl.AddRow(1, 4.5)
	tbl.AddRow(2, 48.0)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "hour") || !strings.Contains(out, "48") {
		t.Errorf("unexpected render:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x", 1.25)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	want := "a,b\nx,1.25\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSeriesTable(t *testing.T) {
	a := NewTimeSeries("cs")
	b := NewTimeSeries("p2p")
	_ = a.Add(0, 100)
	_ = a.Add(1, 200)
	_ = b.Add(0, 10)
	tbl := SeriesTable("fig", "hour", a, b)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "100" || tbl.Rows[0][2] != "10" {
		t.Errorf("row 0 = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][2] != "" {
		t.Errorf("short series should pad: %v", tbl.Rows[1])
	}
}
