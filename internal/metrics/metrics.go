// Package metrics provides the time-series recording and tabular reporting
// used by the experiment harness: every figure in the paper is a set of
// (time, value) series or an (x, y) scatter, rendered as aligned text
// columns or CSV.
package metrics

import (
	"fmt"
	"io"
	"strings"

	"cloudmedia/internal/mathx"
)

// TimeSeries is an append-only sequence of (time, value) samples.
type TimeSeries struct {
	Name   string
	times  []float64
	values []float64
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{Name: name}
}

// Add appends one sample. Times should be non-decreasing; Add enforces this
// to catch misuse of the simulated clock.
func (ts *TimeSeries) Add(t, v float64) error {
	if n := len(ts.times); n > 0 && t < ts.times[n-1] {
		return fmt.Errorf("metrics: time %v before last sample %v in %q", t, ts.times[n-1], ts.Name)
	}
	ts.times = append(ts.times, t)
	ts.values = append(ts.values, v)
	return nil
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.values) }

// At returns the i-th sample.
func (ts *TimeSeries) At(i int) (t, v float64) { return ts.times[i], ts.values[i] }

// Values returns a copy of the sample values.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.values))
	copy(out, ts.values)
	return out
}

// Times returns a copy of the sample times.
func (ts *TimeSeries) Times() []float64 {
	out := make([]float64, len(ts.times))
	copy(out, ts.times)
	return out
}

// Mean returns the mean sample value (0 when empty).
func (ts *TimeSeries) Mean() float64 { return mathx.Mean(ts.values) }

// Max returns the largest sample value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	var m float64
	for i, v := range ts.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample value (0 when empty).
func (ts *TimeSeries) Min() float64 {
	var m float64
	for i, v := range ts.values {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Table is a simple column-oriented result table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (header row first).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SeriesTable aligns several time series that share sampling times into a
// table with one time column. Series shorter than the longest are padded
// with empty cells.
func SeriesTable(title, timeHeader string, series ...*TimeSeries) *Table {
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, timeHeader)
	longest := 0
	for _, s := range series {
		headers = append(headers, s.Name)
		if s.Len() > longest {
			longest = s.Len()
		}
	}
	tbl := NewTable(title, headers...)
	for i := 0; i < longest; i++ {
		row := make([]any, 0, len(series)+1)
		var tm float64
		for _, s := range series {
			if s.Len() > i {
				tm, _ = s.At(i)
				break
			}
		}
		row = append(row, tm)
		for _, s := range series {
			if s.Len() > i {
				_, v := s.At(i)
				row = append(row, v)
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl
}
