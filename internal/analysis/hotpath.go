package analysis

import (
	"go/ast"
	"go/types"
)

// Hotpath makes the zero-allocation contract of the per-step functions
// (the workload.RatesInto family, core.FlattenDemandsInto, the rebalance
// and fluid-step loops) checkable at the line level. The AllocsPerRun
// guards prove the steady state allocates nothing; this analyzer explains
// *why* by forbidding the constructs that could allocate at all inside
// any function annotated //cloudmedia:hotpath:
//
//   - map, slice, and channel construction (literals, make, new);
//   - append into a slice freshly allocated in the same function
//     (append into caller-provided or reused scratch is fine);
//   - fmt calls (even error paths: a hot path's guard clauses delegate
//     message formatting to a cold helper);
//   - function literals (closures capture and escape).
//
// Struct and array literals stay on the stack and are allowed.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //cloudmedia:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !funcIsHotpath(fn) || fn.Body == nil {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	fresh := freshSlices(pass, fn)
	name := fn.Name.Name

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path %s: function literals capture and may escape to the heap", name)
			return false // its body is the closure's problem, reported once
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s allocates", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s allocates: reuse a scratch buffer", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, name, fresh)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, name string, fresh map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.ObjectOf(fun).(*types.Builtin)
		if !ok {
			return
		}
		switch b.Name() {
		case "make":
			pass.Reportf(call.Pos(), "make in hot path %s allocates: reuse a scratch buffer", name)
		case "new":
			pass.Reportf(call.Pos(), "new in hot path %s allocates", name)
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if obj := appendBaseObj(pass, call.Args[0]); obj != nil && fresh[obj] {
				pass.Reportf(call.Pos(),
					"append into slice freshly allocated in hot path %s: append into caller-provided or reused scratch instead", name)
			}
		}
	case *ast.SelectorExpr:
		ident, ok := fun.X.(*ast.Ident)
		if !ok {
			return
		}
		if pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(),
				"fmt.%s in hot path %s allocates: delegate formatting to a cold helper", fun.Sel.Name, name)
		}
	}
}

// freshSlices collects the local variables the function initializes from
// an allocating expression (make, composite literal, new): appending into
// those is growth of a fresh allocation, not reuse of caller scratch.
func freshSlices(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		ident, ok := lhs.(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		if !allocatingExpr(pass, rhs) {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(ident); obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					record(vs.Names[i], vs.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// allocatingExpr reports whether the expression freshly allocates a
// slice/map (make, literal, new).
func allocatingExpr(pass *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		ident, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.ObjectOf(ident).(*types.Builtin)
		return ok && (b.Name() == "make" || b.Name() == "new")
	}
	return false
}

// appendBaseObj unwraps the append destination to its base identifier's
// object. Slice expressions (x[:0], x[:n]) are explicit reuse and return
// nil, as do non-identifier bases (fields, parameters through selectors).
func appendBaseObj(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			return nil
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(e)
		default:
			return nil
		}
	}
}
