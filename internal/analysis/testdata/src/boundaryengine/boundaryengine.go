// Package fluid exercises the boundary analyzer's engine rules: loaded
// under an engine package path, which must stay below both the live
// control plane and the public facades. Engine-to-engine imports are
// allowed.
package fluid

import (
	_ "cloudmedia/internal/core"
	_ "cloudmedia/internal/serve" // want "must not import cloudmedia/internal/serve"
	_ "cloudmedia/pkg/simulate"   // want "must not import cloudmedia/pkg/simulate"
)
