// Package sweep exercises the boundary analyzer's consumer rule: loaded
// under the pkg/sweep path, which must compile against the public API
// alone.
package sweep

import (
	_ "cloudmedia/internal/core" // want "must not import cloudmedia/internal/core"
	_ "cloudmedia/pkg/simulate"
)
