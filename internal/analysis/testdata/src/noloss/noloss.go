// Package noloss exercises the noloss analyzer: loaded under an internal
// package path, where errors must never be silently discarded.
package noloss

import (
	"bytes"
	"errors"
	"fmt"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

func drops() {
	_ = fail() // want "error value fail"
	fail()     // want "call to fail drops its error result"
}

func dropsTuple() int {
	v, _ := failPair() // want "error result of failPair discarded"
	return v
}

// handled is the happy path: nothing to flag.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := failPair()
	if err != nil {
		return err
	}
	_ = v // int, not error: discarding it is fine
	return nil
}

// deferredTeardown is exempt by convention: no caller left to inform.
func deferredTeardown() {
	defer fail()
	go fail()
}

// neverFailSinks: bytes.Buffer writes and fmt.Fprintf into one carry a
// documented permanently-nil error and are conventional Go.
func neverFail() string {
	var buf bytes.Buffer
	buf.WriteString("a")
	buf.WriteByte(',')
	fmt.Fprintf(&buf, "%d", 1)
	return buf.String()
}

func escapeHatch() {
	//cloudmedia:allow noloss -- fixture exercises the escape hatch
	_ = fail()
}
