// Package hotpath exercises the hotpath analyzer: allocating constructs
// are forbidden only inside functions annotated //cloudmedia:hotpath.
package hotpath

import "fmt"

type point struct{ x, y int }

//cloudmedia:hotpath
func allocates(n int) []int {
	m := map[string]int{} // want "map literal in hot path"
	_ = m
	s := []int{1, 2} // want "slice literal in hot path"
	_ = s
	return make([]int, n) // want "make in hot path"
}

//cloudmedia:hotpath
func formats(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf in hot path"
}

//cloudmedia:hotpath
func captures() func() int {
	return func() int { return 1 } // want "closure in hot path"
}

//cloudmedia:hotpath
func growsFresh() []int {
	out := make([]int, 0, 4) // want "make in hot path"
	out = append(out, 1)     // want "append into slice freshly allocated"
	return out
}

// reuses appends into caller-provided scratch after an explicit
// truncation — the sanctioned zero-allocation shape.
//
//cloudmedia:hotpath
func reuses(dst []int, vals []int) []int {
	dst = dst[:0]
	for _, v := range vals {
		dst = append(dst, v)
	}
	return dst
}

// stackValues builds struct and array values, which stay off the heap.
//
//cloudmedia:hotpath
func stackValues() point {
	coords := [2]int{3, 4}
	return point{x: coords[0], y: coords[1]}
}

// coldHelper is unannotated: it may allocate and format freely.
func coldHelper(n, channels int) error {
	buf := make([]byte, 0, 64)
	_ = buf
	return fmt.Errorf("buffer length %d != channels %d", n, channels)
}

//cloudmedia:hotpath
func hatched() []int {
	//cloudmedia:allow hotpath -- fixture exercises the escape hatch
	return make([]int, 1)
}
