// Package allow exercises directive validation: a malformed escape hatch
// is itself a diagnostic, so a suppression can never silently fail to
// engage or engage without a recorded justification.
package allow

//cloudmedia:allow determinism // want "allow directive needs a reason"
var missingReason = 1

//cloudmedia:allow nosuchanalyzer -- the name is wrong // want "unknown analyzer"
var unknownName = 2

//cloudmedia:allow noloss determinism -- one directive per analyzer // want "exactly one analyzer name"
var twoNames = 3

//cloudmedia:allow noloss -- well-formed, suppressing nothing, never reported
var wellFormed = 4
