// Package determinism exercises the determinism analyzer: loaded under an
// engine package path, so wall clocks, global rand, and order-sensitive
// map iteration are all forbidden.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "wall-clock source time.Now"
}

func sleepy() {
	time.Sleep(time.Second) // want "wall-clock source time.Sleep"
}

func clockArithmeticIsFine() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

func globalRand() int {
	return rand.Intn(6) // want "global rand.Intn"
}

func seededStreamIsFine() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func mapSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "write to outer variable total"
	}
	return total
}

func mapAnyKey(m map[string]int) string {
	for k := range m {
		return k // want "selects an arbitrary element"
	}
	return ""
}

func mapEmit(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "output inside range over map"
	}
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

func mapFillSlice(m map[int]float64, dst []float64) {
	for k, v := range m {
		dst[k] = v // want "indexed write to outer dst"
	}
}

// sortedSum is the sanctioned shape: collect keys, sort, then iterate the
// slice. Neither loop may be flagged.
func sortedSum(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// mirror writes a map entry keyed by the iteration key: each iteration
// touches its own entry, so the result is order-independent.
func mirror(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// localWork stays inside the loop body; nothing escapes per-iteration.
func localWork(m map[string]int) {
	for _, v := range m {
		doubled := v * 2
		_ = doubled
	}
}

func escapeHatch() time.Time {
	//cloudmedia:allow determinism -- fixture exercises the escape hatch
	return time.Now()
}
