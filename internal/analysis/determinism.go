package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism guards the engine packages' bit-identical-replay guarantee:
// a seeded run must produce the same bytes whether it runs batch or paced
// (PR 6), on one worker or sixteen (PR 3), today or next year. Inside the
// engine set it forbids
//
//   - wall-clock sources (time.Now, time.Since, time.Tick, ...): sim time
//     is the only clock engines may read; serve.Clock owns the wall and
//     lives outside the engine set by design;
//   - the global math/rand functions (rand.Intn, rand.Float64, ...): all
//     randomness must flow from a seed-derived *rand.Rand stream, or
//     worker scheduling changes the draw order;
//   - order-sensitive iteration over maps: a range whose body accumulates
//     into outer variables, writes slices, emits output, or returns picks
//     up Go's randomized map order. Iterate sorted keys instead; the one
//     sanctioned shape is collecting keys into a slice to sort.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global rand, and order-sensitive map iteration in engine packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package's wall-clock (or timer) entry
// points. Conversions and arithmetic (time.Duration, time.Unix) are fine:
// they do not read the clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// draw from the shared global source. Constructors (New, NewSource,
// NewZipf) are fine: they feed seed-derived streams.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

func runDeterminism(pass *Pass) error {
	if !isEnginePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkForbiddenCall flags pkg.Func calls into the wall clock or the
// global rand source.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"wall-clock source time.%s in engine package %s: engines read only simulated time (serve.Clock owns the wall clock)",
				sel.Sel.Name, pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"global rand.%s in engine package %s: draw from a seed-derived *rand.Rand stream instead",
				sel.Sel.Name, pass.Pkg.Path())
		}
	}
}

// checkMapRange flags order-sensitive bodies under a range over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(pass, rng.Key)
	if isKeyCollectLoop(pass, rng, keyObj) {
		return // keys := append(keys, k) — the sorted-iteration idiom's first half
	}

	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()
	}
	valObj := rangeVarObj(pass, rng.Value)
	isLoopVar := func(obj types.Object) bool {
		return obj != nil && (obj == keyObj || obj == valObj)
	}

	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s inside range over map is iteration-order dependent: iterate sorted keys instead", what)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkOrderedWrite(pass, lhs, keyObj, local, isLoopVar, report)
			}
		case *ast.IncDecStmt:
			checkOrderedWrite(pass, n.X, keyObj, local, isLoopVar, report)
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.ReturnStmt:
			report(n.Pos(), "return (selects an arbitrary element)")
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isEmitCall(pass, call) {
				report(n.Pos(), "output")
			}
		}
		return true
	})
}

// checkOrderedWrite flags an assignment target that escapes the loop body
// in an order-sensitive way. Writes into a map keyed (in part) by the
// iteration key are exempt: each iteration touches its own entry, so the
// result is order-independent.
func checkOrderedWrite(pass *Pass, lhs ast.Expr, keyObj types.Object, local, isLoopVar func(types.Object) bool, report func(token.Pos, string)) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if local(obj) || isLoopVar(obj) {
			return
		}
		report(lhs.Pos(), "write to outer variable "+lhs.Name)
	case *ast.IndexExpr:
		baseType := pass.TypesInfo.TypeOf(lhs.X)
		if baseType != nil {
			if _, isMap := baseType.Underlying().(*types.Map); isMap {
				if exprMentions(pass, lhs.Index, keyObj) || rootIsLocal(pass, lhs.X, local) {
					return
				}
				report(lhs.Pos(), "map write not keyed by the iteration key")
				return
			}
		}
		if rootIsLocal(pass, lhs.X, local) {
			return
		}
		report(lhs.Pos(), "indexed write to outer "+types.ExprString(lhs.X))
	case *ast.SelectorExpr:
		if rootIsLocal(pass, lhs, local) {
			return
		}
		report(lhs.Pos(), "write to field "+types.ExprString(lhs))
	case *ast.StarExpr:
		report(lhs.Pos(), "write through pointer "+types.ExprString(lhs.X))
	case *ast.ParenExpr:
		checkOrderedWrite(pass, lhs.X, keyObj, local, isLoopVar, report)
	}
}

// rangeVarObj resolves a range clause variable to its object, for both
// `:=` (definition) and `=` (use) forms.
func rangeVarObj(pass *Pass, expr ast.Expr) types.Object {
	ident, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(ident)
}

// exprMentions reports whether the expression references obj.
func exprMentions(pass *Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(ident) == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootIsLocal unwraps selectors/indexes/parens to the base identifier and
// reports whether it is declared inside the loop body.
func rootIsLocal(pass *Pass, expr ast.Expr, local func(types.Object) bool) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return local(pass.TypesInfo.ObjectOf(e))
		default:
			return false
		}
	}
}

// isKeyCollectLoop recognizes the sanctioned pre-sort idiom: a body that
// is exactly `keys = append(keys, k)`, collecting the map's keys for a
// subsequent sort. Any other work belongs after the sort.
func isKeyCollectLoop(pass *Pass, rng *ast.RangeStmt, keyObj types.Object) bool {
	if keyObj == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg) != keyObj {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(dst) == pass.TypesInfo.ObjectOf(src)
}

// isEmitCall reports whether the statement-level call visibly emits
// output: the fmt print family or writer-shaped methods. Inside a map
// range the emission order is the map order — nondeterministic.
func isEmitCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if ident, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				return true
			}
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune",
			"Print", "Printf", "Println", "Encode":
			return true
		}
	case *ast.Ident:
		switch fun.Name {
		case "print", "println":
			return true
		}
	}
	return false
}
