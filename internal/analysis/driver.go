package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//cloudmedia:allow <analyzer> -- <reason>
const allowPrefix = "//cloudmedia:allow"

// Run executes the analyzers over the packages, applies the
// //cloudmedia:allow suppressions, and returns the surviving diagnostics
// sorted by position. Malformed directives (missing reason, unknown
// analyzer name) are reported as diagnostics themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directive names validate against the full registry, not just the
	// analyzers in this run: a boundary-only run must not reject a
	// legitimate `//cloudmedia:allow noloss` directive elsewhere in the
	// file.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed, directiveDiags := collectAllows(pkg, known)
		out = append(out, directiveDiags...)

		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				if !allowed.suppresses(d) {
					out = append(out, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// allowIndex records which (file, line) pairs waive which analyzers. A
// directive covers its own line (trailing form) and the line below it
// (standalone form above the offending statement).
type allowIndex map[string]map[int]map[string]bool

func (idx allowIndex) add(file string, line int, analyzer string) {
	byLine := idx[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		idx[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][analyzer] = true
	}
}

func (idx allowIndex) suppresses(d Diagnostic) bool {
	return idx[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// collectAllows scans the package's comments for allow directives,
// reporting malformed ones so an escape hatch can never silently fail to
// engage (or engage without a recorded justification).
func collectAllows(pkg *Package, known map[string]bool) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var diags []Diagnostic
	malformed := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "allow",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // e.g. //cloudmedia:allowance — not ours
				}
				name, reason, ok := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case !ok || reason == "":
					malformed(c.Pos(), "allow directive needs a reason: %s <analyzer> -- <reason>", allowPrefix)
				case name == "" || len(strings.Fields(name)) != 1:
					malformed(c.Pos(), "allow directive needs exactly one analyzer name: %s <analyzer> -- <reason>", allowPrefix)
				case !known[name]:
					malformed(c.Pos(), "allow directive names unknown analyzer %q", name)
				default:
					idx.add(pkg.Fset.Position(c.Pos()).Filename, pkg.Fset.Position(c.Pos()).Line, name)
				}
			}
		}
	}
	return idx, diags
}

// funcIsHotpath reports whether the declaration's doc comment carries the
// //cloudmedia:hotpath annotation.
func funcIsHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == "//cloudmedia:hotpath" || strings.HasPrefix(c.Text, "//cloudmedia:hotpath ") {
			return true
		}
	}
	return false
}
