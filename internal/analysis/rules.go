package analysis

import "strings"

// enginePackages are the deterministic simulation core: everything a
// seeded run's bit-identical guarantee (paced vs batch, any worker count,
// byte-stable sweep CSVs) flows through. These packages must not read the
// wall clock, the global rand source, or iterate maps in an
// order-sensitive way — internal/serve is the one sanctioned wall-clock
// owner and deliberately outside this set.
var enginePackages = map[string]bool{
	"cloudmedia/internal/cloud":     true,
	"cloudmedia/internal/core":      true,
	"cloudmedia/internal/fluid":     true,
	"cloudmedia/internal/geo":       true,
	"cloudmedia/internal/provision": true,
	"cloudmedia/internal/sim":       true,
	"cloudmedia/internal/trace":     true,
	"cloudmedia/internal/workload":  true,
}

// isEnginePackage reports whether path is in the deterministic core.
func isEnginePackage(path string) bool { return enginePackages[path] }

// isInternalPackage reports whether path is under cloudmedia/internal.
func isInternalPackage(path string) bool {
	return path == "cloudmedia/internal" || strings.HasPrefix(path, "cloudmedia/internal/")
}

// isPublicConsumer reports whether path is one of the packages that must
// compile against the public API alone: examples/ and cmd/ are the
// reference consumers of the SDK, and pkg/sweep is deliberately built
// purely on the public facades, proving the surface is sufficient to
// write an orchestration layer. cmd/cloudmedialint is carved out: the
// linter is a development tool built on internal/analysis by necessity,
// not an SDK consumer.
func isPublicConsumer(path string) bool {
	if path == "cloudmedia/cmd/cloudmedialint" {
		return false
	}
	return strings.HasPrefix(path, "cloudmedia/examples/") ||
		path == "cloudmedia/cmd" || strings.HasPrefix(path, "cloudmedia/cmd/") ||
		path == "cloudmedia/pkg/sweep" || strings.HasPrefix(path, "cloudmedia/pkg/sweep/")
}

// isFacadeOrRoot reports whether path is the root SDK package or a public
// facade — layers above the engines that engines must never import back.
func isFacadeOrRoot(path string) bool {
	return path == "cloudmedia" || path == "cloudmedia/pkg" || strings.HasPrefix(path, "cloudmedia/pkg/")
}

// isServePackage reports whether path is the live control plane.
func isServePackage(path string) bool {
	return path == "cloudmedia/internal/serve" || strings.HasPrefix(path, "cloudmedia/internal/serve/")
}
