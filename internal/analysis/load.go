package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the patterns (relative to dir, a
// directory inside the module) and returns them ready for analysis. Test
// files are excluded: the invariants guard production code, and test
// helpers that engines share live in non-test files, which are covered.
//
// Dependency types come from compiled export data located via
// `go list -export`, so loading works offline and never re-type-checks
// the transitive closure from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, importMap, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := exportLookup(exports, importMap)
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// goList shells out to the go command for package metadata and compiled
// export data. Targets are the non-DepOnly matches; exports maps every
// import path in the dependency closure to its export-data file. With
// tolerateErrors, unresolvable patterns (fixture fakes) are skipped
// instead of failing the listing.
func goList(dir string, patterns []string, tolerateErrors bool) (targets []listPackage, exports, importMap map[string]string, err error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports = make(map[string]string)
	importMap = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			if p.Error != nil {
				if tolerateErrors {
					continue
				}
				return nil, nil, nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}
	return targets, exports, importMap, nil
}

// exportLookup resolves an import path (through the module's vendor/rename
// map, if any) to a reader over its compiled export data.
func exportLookup(exports, importMap map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod directory — the
// directory Load should run in so `./...` means the whole module.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
