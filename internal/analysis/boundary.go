package analysis

import "strconv"

// Boundary enforces the module's import DAG — the SDK boundary PR 1
// introduced as a parser-based test plus a CI grep, promoted here to an
// analyzer that names the violated rule at the offending import line:
//
//   - examples/, cmd/, and pkg/sweep are the reference consumers of the
//     public API and must never import cloudmedia/internal/...;
//   - the engine packages (internal/{sim,fluid,core,workload,provision,
//     cloud,trace,geo}) sit below both the live control plane and the
//     public facades, so they must never import internal/serve, pkg/...,
//     or the root cloudmedia package.
var Boundary = &Analyzer{
	Name: "boundary",
	Doc:  "enforce the public-API / control-plane / engine import DAG",
	Run:  runBoundary,
}

func runBoundary(pass *Pass) error {
	path := pass.Pkg.Path()
	type rule struct {
		forbids func(string) bool
		why     string
	}
	var rules []rule
	if isPublicConsumer(path) {
		rules = append(rules, rule{
			forbids: isInternalPackage,
			why:     "examples, cmd, and pkg/sweep must use the public API (root package and pkg/...)",
		})
	}
	if isEnginePackage(path) {
		rules = append(rules, rule{
			forbids: isServePackage,
			why:     "engine packages must stay below the live control plane (internal/serve drives engines, never the reverse)",
		})
		rules = append(rules, rule{
			forbids: isFacadeOrRoot,
			why:     "engine packages must stay below the public facades (pkg/... and the root package wrap engines, never the reverse)",
		})
	}
	if len(rules) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range rules {
				if r.forbids(target) {
					pass.Reportf(imp.Pos(), "%s must not import %s: %s", path, target, r.why)
				}
			}
		}
	}
	return nil
}
