package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the x/tools analysistest counterpart for the stdlib-only
// framework: fixtures live under testdata/src/<name>/, expectations are
// `// want "regexp"` comments on the offending line, and RunFixture fails
// the test on any mismatch in either direction. Fixture packages may
// import anything resolvable in the module (stdlib or cloudmedia/...);
// unresolvable imports (fake paths used by boundary fixtures) type-check
// against an empty placeholder package, which is enough for the
// syntax-level analyzers that use them.

// TB is the subset of *testing.T the harness needs, declared locally so
// the production lint binary does not link the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<fixture> as package path pkgPath, runs
// the analyzer (with allow-directive suppression, so escape hatches are
// exercised end to end), and matches diagnostics against the fixture's
// want comments.
func RunFixture(t TB, testdataDir, fixture, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join(testdataDir, "src", fixture)
	pkg, err := LoadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", fixture, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", fixture, d.Pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", fixture, w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses `// want "re" ["re" ...]` comments from the
// fixture's files.
func collectWants(t TB, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				tail := c.Text[idx+len("// want "):]
				ms := wantRE.FindAllString(tail, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pattern, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, m, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: compiling %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// LoadFixture parses and type-checks one fixture directory as pkgPath.
// Imports resolve through the module's real export data when possible and
// fall back to empty placeholder packages for fake paths, with type
// errors tolerated (boundary fixtures import paths that do not exist).
func LoadFixture(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	seen := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}

	imp, err := fixtureImporter(fset, imports)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // tolerate: fake imports leave holes
	}
	info := newInfo()
	//cloudmedia:allow noloss -- fixture type errors are expected (fake imports); the lenient check still yields a usable package
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s produced no package", dir)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// fixtureExports caches `go list -export` results across fixtures within
// one test process: the set of stdlib packages fixtures import is small
// and stable.
var fixtureExports struct {
	sync.Mutex
	cache map[string]string // import path → export file ("" = unresolvable)
}

// fixtureImporter resolves the fixture's direct imports (and their
// transitive closure) via the go command, faking the rest.
func fixtureImporter(fset *token.FileSet, imports []string) (types.Importer, error) {
	fixtureExports.Lock()
	defer fixtureExports.Unlock()
	if fixtureExports.cache == nil {
		fixtureExports.cache = make(map[string]string)
	}

	var missing []string
	for _, p := range imports {
		if _, ok := fixtureExports.cache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		root, err := ModuleRoot(".")
		if err != nil {
			return nil, err
		}
		// tolerateErrors: unresolvable (fake) paths must not fail the
		// listing; they simply come back without export data.
		_, exports, importMap, err := goList(root, missing, true)
		if err != nil {
			return nil, err
		}
		for from, to := range importMap {
			if file, ok := exports[to]; ok {
				exports[from] = file
			}
		}
		for p, file := range exports {
			fixtureExports.cache[p] = file
		}
		for _, p := range missing {
			if _, ok := fixtureExports.cache[p]; !ok {
				fixtureExports.cache[p] = ""
			}
		}
	}

	exports := make(map[string]string)
	for p, file := range fixtureExports.cache {
		if file != "" {
			exports[p] = file
		}
	}
	return &lenientImporter{
		gc:    importer.ForCompiler(fset, "gc", exportLookup(exports, nil)),
		fakes: make(map[string]*types.Package),
	}, nil
}

// lenientImporter delegates to compiled export data and substitutes an
// empty, complete package for anything unresolvable, so fixtures can
// import fake paths (the boundary analyzer only reads the import strings).
type lenientImporter struct {
	gc    types.Importer
	fakes map[string]*types.Package
}

func (li *lenientImporter) Import(path string) (*types.Package, error) {
	pkg, err := li.gc.Import(path)
	if err == nil {
		return pkg, nil
	}
	if fake, ok := li.fakes[path]; ok {
		return fake, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	fake := types.NewPackage(path, name)
	fake.MarkComplete()
	li.fakes[path] = fake
	return fake, nil
}
