package analysis

import (
	"go/ast"
	"go/types"
)

// NoLoss forbids silently discarded errors in internal/... — the bug
// class PRs 3–4 fixed by hand when per-channel capacity accounting and
// storage planning swallowed failures. Both spellings are caught:
//
//	_ = f()          // blank-assigned error result
//	f()              // bare call whose error result vanishes
//
// A justified drop must carry //cloudmedia:allow noloss -- <reason> at
// the line, so every intentional discard documents why losing the error
// is safe. Exempt by convention: deferred and `go` calls (teardown paths
// with no caller left to inform), and bare writes into sinks whose
// documented contract is a permanently nil error (*bytes.Buffer,
// *strings.Builder, hash.Hash — including fmt.Fprint* into them).
var NoLoss = &Analyzer{
	Name: "noloss",
	Doc:  "forbid discarded error results in internal packages",
	Run:  runNoLoss,
}

func runNoLoss(pass *Pass) error {
	if !isInternalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankErrorAssign(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareErrorCall(pass, call)
				}
			case *ast.DeferStmt, *ast.GoStmt:
				return false
			}
			return true
		})
	}
	return nil
}

// checkBlankErrorAssign flags `_` targets whose corresponding value is an
// error. Handles both the 1:1 form (`_ = f()`, `a, _ = f(), g()`) and the
// tuple form (`v, _ := f()` where f returns (T, error)).
func checkBlankErrorAssign(pass *Pass, assign *ast.AssignStmt) {
	blankAt := func(i int) bool {
		ident, ok := assign.Lhs[i].(*ast.Ident)
		return ok && ident.Name == "_"
	}

	if len(assign.Lhs) > 1 && len(assign.Rhs) == 1 {
		// Tuple assignment from one multi-value expression. Only calls
		// produce dropped errors worth flagging: comma-ok forms (map
		// index, type assertion, channel receive) yield a bool.
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(assign.Lhs); i++ {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(assign.Lhs[i].Pos(),
					"error result of %s discarded: handle it or annotate with %s noloss -- <reason>",
					types.ExprString(call.Fun), allowPrefix)
			}
		}
		return
	}
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		if !blankAt(i) {
			continue
		}
		t := pass.TypesInfo.TypeOf(assign.Rhs[i])
		if t != nil && isErrorType(t) {
			pass.Reportf(assign.Lhs[i].Pos(),
				"error value %s discarded: handle it or annotate with %s noloss -- <reason>",
				types.ExprString(assign.Rhs[i]), allowPrefix)
		}
	}
}

// checkBareErrorCall flags statement-level calls whose result set
// includes an error.
func checkBareErrorCall(pass *Pass, call *ast.CallExpr) {
	if isNeverFailWrite(pass, call) {
		return
	}
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return
	}
	drops := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				drops = true
			}
		}
	default:
		drops = isErrorType(t)
	}
	if drops {
		pass.Reportf(call.Pos(),
			"call to %s drops its error result: handle it or annotate with %s noloss -- <reason>",
			types.ExprString(call.Fun), allowPrefix)
	}
}

// neverFailSinks are types whose Write-family methods document a
// permanently nil error; bare calls on them are conventional Go.
var neverFailSinks = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// isNeverFailWrite recognizes buf.WriteString(...)-style calls on
// never-fail sinks, and fmt.Fprint* whose writer is statically one.
func isNeverFailWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() != "fmt" || len(call.Args) == 0 {
				return false
			}
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln":
				return sinkType(pass.TypesInfo.TypeOf(call.Args[0]))
			}
			return false
		}
	}
	return sinkType(pass.TypesInfo.TypeOf(sel.X))
}

func sinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return neverFailSinks[types.TypeString(t, nil)]
}

var errorType = types.Universe.Lookup("error").Type()

// isErrorType matches results declared as `error` — the contract type. A
// concrete type that merely implements error is a deliberate API choice
// and not flagged.
func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
