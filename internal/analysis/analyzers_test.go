package analysis

import "testing"

// Each fixture is a package that fails without its analyzer: the want
// comments pin both the findings and the non-findings (the sanctioned
// idioms and escape hatches carry no want and must stay silent).

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, "testdata", "determinism", "cloudmedia/internal/sim", Determinism)
}

func TestBoundaryConsumerFixture(t *testing.T) {
	RunFixture(t, "testdata", "boundaryconsumer", "cloudmedia/pkg/sweep", Boundary)
}

func TestBoundaryEngineFixture(t *testing.T) {
	RunFixture(t, "testdata", "boundaryengine", "cloudmedia/internal/fluid", Boundary)
}

func TestNoLossFixture(t *testing.T) {
	RunFixture(t, "testdata", "noloss", "cloudmedia/internal/nolossfix", NoLoss)
}

func TestHotpathFixture(t *testing.T) {
	RunFixture(t, "testdata", "hotpath", "cloudmedia/internal/hotpathfix", Hotpath)
}

func TestAllowDirectiveValidation(t *testing.T) {
	RunFixture(t, "testdata", "allow", "cloudmedia/internal/allowfix", Determinism)
}

// TestDeterminismIgnoresNonEnginePackage pins the gating: the same
// offending code outside the engine set is none of the analyzer's
// business (internal/serve owns the wall clock by design).
func TestDeterminismIgnoresNonEnginePackage(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/determinism", "cloudmedia/internal/serve")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism fired outside the engine set: %v", diags)
	}
}

// TestModuleIsLintClean runs the full suite over the real module — the
// same sweep `make lint` and CI perform — so `go test ./...` alone
// catches a regression.
func TestModuleIsLintClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
