// Package analysis is the repo's static-analysis layer: a small suite of
// custom analyzers that encode the invariants the simulator's tests defend
// dynamically — deterministic engines, the public-API import DAG, no
// silently dropped errors, and allocation-free hot paths — so violations
// fail `make lint` at the line that introduces them.
//
// The framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface (Analyzer / Pass / Diagnostic,
// plus an analysistest-style fixture harness in analysistest.go). The
// toolchain's x/tools module is not a dependency of this repo, so the
// loader builds type information with the standard library alone:
// `go list -export` locates compiled export data for every dependency and
// go/types checks the target packages against it (see load.go). Analyzers
// written against this package keep the upstream shape, so migrating to
// x/tools/go/analysis later is a mechanical change.
//
// Suppression: a finding can be waived at the line that triggers it with
//
//	//cloudmedia:allow <analyzer> -- <reason>
//
// either trailing the offending line or on its own line directly above it.
// The reason string is mandatory; a directive without one (or naming an
// unknown analyzer) is itself a lint error, so every escape hatch in the
// tree documents why the invariant holds anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker, mirroring the
// x/tools/go/analysis type of the same name.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cloudmedia:allow directives.
	Name string
	// Doc states the invariant the analyzer encodes and which PR's bug
	// class motivated it.
	Doc string
	// Run reports violations through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with the position already resolved so
// callers can sort and print without the file set.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{Boundary, Determinism, Hotpath, NoLoss}
}
