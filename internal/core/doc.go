// Package core implements the paper's primary contribution: the dynamic
// cloud provisioning algorithm of Sec. V-B that a VoD provider runs every
// interval T (one hour in the paper).
//
// Each interval the Controller:
//
//  1. collects the interval's statistics from the tracker — per-channel
//     arrival rates Λ(c), empirical transfer matrices P(c), and (in P2P
//     mode) the mean peer uplink u;
//  2. derives the equilibrium per-chunk upload demand via the Jackson
//     analysis (package queueing) and, in P2P mode, subtracts the expected
//     peer contribution (package p2p) to get the cloud residual Δ(c,i);
//  3. negotiates the current catalog with the cloud broker and runs the
//     storage-rental and VM-configuration heuristics (package provision)
//     against the configured budgets;
//  4. submits the resulting SLA reconfiguration to the cloud and applies
//     the per-chunk capacities to the running system — capacity increases
//     take effect only after the VM boot latency, decreases immediately.
//
// Infeasible budgets are handled by geometrically scaling the demand until
// the heuristics fit, with the shortfall recorded in the interval record —
// the paper's "signal to the provider that the budget should be increased".
package core
