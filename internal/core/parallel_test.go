package core

import (
	"reflect"
	"runtime"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
)

// ensureParallelHost raises GOMAXPROCS so multi-worker configurations
// resolve to real pools even on single-core hosts (sim.EffectiveWorkers
// clamps to GOMAXPROCS at construction time), restoring it on cleanup.
func ensureParallelHost(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// runControllerWithWorkers drives a complete stack for several rounds
// with the control plane sharded over `workers` goroutines (the engine
// itself is pinned serial, isolating the controller's fan-outs) and
// returns the full interval history plus the ledger bill.
func runControllerWithWorkers(t *testing.T, mode sim.Mode, pol provision.Policy, pred Predictor, workers int) ([]IntervalRecord, cloud.LedgerTotals) {
	t.Helper()
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	wl := testutil.FlatWorkload(6, 0.6, 300) // 6 channels: enough shards for an 8-worker pool
	s, cl, broker := testutil.Stack(t, sim.Config{
		Mode:             mode,
		Channel:          testutil.ChannelConfig(5, 60),
		Workload:         wl,
		Transfer:         transfer,
		RebalanceSeconds: 10,
		Seed:             7,
		Workers:          1,
	})
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:  600,
		FallbackTransfer: transfer,
		ApplyBootLatency: true,
		Policy:           pol,
		Predictor:        pred,
		// The oracle feed: pure reads over the workload parameters, safe
		// for the per-channel fan-out by construction.
		TrueRates: func(channel int, start, end float64) float64 {
			r, err := wl.MeanChannelRate(channel, start, end)
			if err != nil {
				return 0
			}
			return r
		},
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	ctl.Provision(0, bootstrapInputs(t, s, &wl, transfer))
	if err := ctl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.RunUntil(4 * 600)
	cl.Advance(s.Now())
	return ctl.Records(), cl.Ledger().Totals()
}

// TestControllerWorkerInvariance pins the control-plane tentpole: the
// full IntervalRecord history — rates, per-channel demands, totals,
// plans, bills — and the ledger must be bit-identical for Workers 1, 4,
// and 8, in both streaming modes, across policies that exercise every
// sharded path: the plain snapshot+derive fan (greedy), the lookahead
// forecast fan with a non-fixed-point predictor so futureDemands really
// re-derives each step (lookahead+EWMA), and the concurrent TrueRates
// reads (oracle).
func TestControllerWorkerInvariance(t *testing.T) {
	ensureParallelHost(t, 8)
	policies := []struct {
		name string
		pol  provision.Policy
		pred Predictor
	}{
		{"greedy", nil, nil},
		{"lookahead-ewma", provision.Lookahead{K: 2}, EWMA{Alpha: 0.5}},
		{"oracle", provision.Oracle{}, nil},
	}
	for _, mode := range []sim.Mode{sim.ClientServer, sim.P2P} {
		for _, tc := range policies {
			serialRecs, serialBill := runControllerWithWorkers(t, mode, tc.pol, tc.pred, 1)
			if len(serialRecs) < 4 {
				t.Fatalf("%v/%s: serial run produced %d records, want ≥4", mode, tc.name, len(serialRecs))
			}
			last := serialRecs[len(serialRecs)-1]
			if last.TotalDemand <= 0 {
				t.Fatalf("%v/%s: serial run derived no demand", mode, tc.name)
			}
			for _, workers := range []int{4, 8} {
				recs, bill := runControllerWithWorkers(t, mode, tc.pol, tc.pred, workers)
				if !reflect.DeepEqual(serialRecs, recs) {
					t.Errorf("%v/%s: Workers=%d interval records diverged from serial", mode, tc.name, workers)
				}
				if !reflect.DeepEqual(serialBill, bill) {
					t.Errorf("%v/%s: Workers=%d ledger %+v diverged from serial %+v", mode, tc.name, workers, bill, serialBill)
				}
			}
		}
	}
}
