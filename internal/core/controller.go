package core

import (
	"errors"
	"fmt"
	"math"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
)

// Options configures the provisioning controller.
type Options struct {
	// IntervalSeconds is T, the provisioning period. Defaults to 3600 (the
	// hourly rental granularity of Sec. V-B).
	IntervalSeconds float64
	// VMBudgetPerHour is B_M. The paper uses $100/hour.
	VMBudgetPerHour float64
	// StorageBudgetPerHour is B_S. The paper uses $1/hour.
	StorageBudgetPerHour float64
	// FallbackTransfer seeds transfer-matrix rows that saw no traffic in an
	// interval. Usually the analytic prior (viewing.PaperDefault).
	FallbackTransfer queueing.TransferMatrix
	// MaxServersPerChunk bounds the queueing search; ≤0 uses the default.
	MaxServersPerChunk int
	// ApplyBootLatency delays capacity increases by the cloud's VM boot
	// latency, modelling that freshly requested VMs serve only once booted.
	ApplyBootLatency bool
	// PeerSupplyTrust discounts the analytic peer contribution before
	// computing the cloud residual: Δ = capacity − trust·Γ. The analysis
	// assumes equilibrium chunk ownership; trusting it fully leaves no
	// margin when the live overlay lags the model (channel churn, cold
	// chunks). 0 means 1 (full trust).
	PeerSupplyTrust float64
	// ProvisionHeadroom multiplies every chunk's cloud demand before
	// planning, the over-provisioning slack visible in the paper's Fig. 4
	// (reserved ≈ 1.5–2× used). 0 means 1 (no headroom).
	ProvisionHeadroom float64
	// Predictor forecasts next-interval arrival rates from the observed
	// history. nil uses LastInterval, the paper's rule.
	Predictor Predictor
	// HistoryLimit bounds the per-channel rate history kept for the
	// predictor; 0 means 168 (a week of hourly intervals).
	HistoryLimit int
	// StorageChangeThreshold implements the Sec. V-B trigger: the NFS
	// storage rental is recomputed only when total demand has moved by more
	// than this fraction since the last storage plan (or on the first
	// round). 0 recomputes every interval.
	StorageChangeThreshold float64
	// OnInterval, when non-nil, receives every IntervalRecord as soon as
	// its provisioning round completes. It runs on the simulator goroutine,
	// so it must not call back into the simulator.
	OnInterval func(IntervalRecord)
	// DiscardHistory stops the controller from accumulating records in
	// memory; long streaming runs set it together with OnInterval so memory
	// stays bounded by one interval.
	DiscardHistory bool
}

func (o *Options) applyDefaults() {
	if o.IntervalSeconds == 0 {
		o.IntervalSeconds = 3600
	}
	if o.VMBudgetPerHour == 0 {
		o.VMBudgetPerHour = 100
	}
	if o.StorageBudgetPerHour == 0 {
		o.StorageBudgetPerHour = 1
	}
	if o.PeerSupplyTrust == 0 {
		o.PeerSupplyTrust = 1
	}
	if o.ProvisionHeadroom == 0 {
		o.ProvisionHeadroom = 1
	}
	if o.Predictor == nil {
		o.Predictor = LastInterval{}
	}
	if o.HistoryLimit == 0 {
		o.HistoryLimit = 168
	}
}

// IntervalRecord captures one provisioning round for later analysis; the
// experiment harness turns these into the paper's figures.
type IntervalRecord struct {
	Time             float64   // when the round ran, seconds
	ArrivalRates     []float64 // per-channel Λ estimates
	DemandPerChannel []float64 // per-channel Σ Δ, bytes/s
	TotalDemand      float64   // Σ over channels, bytes/s
	TotalPeerSupply  float64   // Σ Γ, bytes/s
	VMPlan           provision.VMPlan
	StoragePlan      provision.StoragePlan
	// DemandScale < 1 records that the budget was infeasible and demand was
	// scaled down to fit (the paper's "increase your budget" signal).
	DemandScale float64
}

// Controller wires the measurement feed, the analysis, the heuristics, the
// broker, and the running system together. It talks to the simulation only
// through the sim.Backend seam, so the same control loop drives both the
// per-viewer discrete-event engine and the aggregate fluid engine.
type Controller struct {
	sim    sim.Backend
	broker *cloud.Broker
	cl     *cloud.Cloud
	opts   Options

	records     []IntervalRecord
	lastCaps    map[[2]int]float64 // last applied per-chunk capacity targets
	rateHistory [][]float64        // per-channel observed arrival rates, oldest first

	lastStoragePlan   provision.StoragePlan
	lastStorageDemand float64
	storagePlanned    bool
}

// NewController builds a controller for a simulation backend and a cloud
// reached through its broker.
func NewController(s sim.Backend, cl *cloud.Cloud, broker *cloud.Broker, opts Options) (*Controller, error) {
	if s == nil || cl == nil || broker == nil {
		return nil, fmt.Errorf("core: nil simulator, cloud, or broker")
	}
	opts.applyDefaults()
	if opts.IntervalSeconds <= 0 {
		return nil, fmt.Errorf("core: non-positive interval %v", opts.IntervalSeconds)
	}
	if opts.FallbackTransfer != nil {
		if err := opts.FallbackTransfer.Validate(); err != nil {
			return nil, fmt.Errorf("core: fallback transfer: %w", err)
		}
		if opts.FallbackTransfer.Size() != s.ChannelConfig().Chunks {
			return nil, fmt.Errorf("core: fallback transfer size %d != chunks %d",
				opts.FallbackTransfer.Size(), s.ChannelConfig().Chunks)
		}
	}
	if v, ok := opts.Predictor.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return &Controller{
		sim:         s,
		broker:      broker,
		cl:          cl,
		opts:        opts,
		lastCaps:    make(map[[2]int]float64),
		rateHistory: make([][]float64, s.Channels()),
	}, nil
}

// Records returns the per-interval history (shared slice internals are not
// exposed: a copy is returned).
func (c *Controller) Records() []IntervalRecord {
	out := make([]IntervalRecord, len(c.records))
	copy(out, c.records)
	return out
}

// Start schedules the periodic provisioning rounds, beginning one interval
// from now (statistics need a full interval to accumulate). Bootstrap
// provisioning for interval 0 should be applied first via Provision.
func (c *Controller) Start() error {
	return c.sim.ScheduleRepeating(c.opts.IntervalSeconds, c.opts.IntervalSeconds, func(now float64) {
		c.runInterval(now)
	})
}

// runInterval executes one provisioning round using the statistics the
// tracker accumulated since the previous round.
func (c *Controller) runInterval(now float64) {
	inputs := make([]ChannelInput, c.sim.Channels())
	for ch := range inputs {
		est, err := c.sim.Estimator(ch)
		if err != nil {
			continue // unreachable: channel index from range
		}
		rate, err := est.ArrivalRate(c.opts.IntervalSeconds)
		if err != nil {
			rate = 0
		}
		rate = c.forecast(ch, rate)
		matrix, err := est.Matrix(c.opts.FallbackTransfer)
		if err != nil || matrix.Size() == 0 {
			matrix = c.opts.FallbackTransfer
		}
		uplink, err := c.sim.MeanUplink(ch)
		if err != nil {
			uplink = 0
		}
		inputs[ch] = ChannelInput{ArrivalRate: rate, Transfer: matrix, MeanUplink: uplink}
		est.Reset()
	}
	c.Provision(now, inputs)
}

// forecast appends the observation to the channel's history and returns
// the predictor's rate for the next interval.
func (c *Controller) forecast(channel int, observed float64) float64 {
	h := append(c.rateHistory[channel], observed)
	if len(h) > c.opts.HistoryLimit {
		h = h[len(h)-c.opts.HistoryLimit:]
	}
	c.rateHistory[channel] = h
	return c.opts.Predictor.Predict(h)
}

// Provision derives demand from the given per-channel inputs and applies
// plans to the cloud and the running system. It is also the bootstrap
// entry point: experiments call it at t=0 with analytic estimates.
func (c *Controller) Provision(now float64, inputs []ChannelInput) {
	cfg := c.sim.ChannelConfig()
	p2pMode := c.sim.Mode() == sim.P2P

	rec := IntervalRecord{
		Time:             now,
		ArrivalRates:     make([]float64, len(inputs)),
		DemandPerChannel: make([]float64, len(inputs)),
		DemandScale:      1,
	}
	demands := make([]ChannelDemand, len(inputs))
	for ch, in := range inputs {
		rec.ArrivalRates[ch] = in.ArrivalRate
		if in.Transfer == nil {
			in.Transfer = c.opts.FallbackTransfer
		}
		d, err := DeriveDemand(cfg, in, p2pMode, c.opts.MaxServersPerChunk)
		if err != nil {
			// A channel whose analysis fails (e.g. degenerate estimated
			// matrix) keeps zero demand this interval rather than aborting
			// the whole round.
			demands[ch] = ChannelDemand{
				CloudDemand: make([]float64, cfg.Chunks),
				PeerSupply:  make([]float64, cfg.Chunks),
			}
			continue
		}
		// Apply peer-supply trust and provisioning headroom against the
		// full equilibrium capacity (Δ = capacity − trust·Γ, then slack).
		for i := range d.CloudDemand {
			delta := d.Equilibrium.Capacity[i] - c.opts.PeerSupplyTrust*d.PeerSupply[i]
			if delta < 0 {
				delta = 0
			}
			d.CloudDemand[i] = delta * c.opts.ProvisionHeadroom
		}
		demands[ch] = d
		for _, delta := range d.CloudDemand {
			rec.DemandPerChannel[ch] += delta
			rec.TotalDemand += delta
		}
		for _, g := range d.PeerSupply {
			rec.TotalPeerSupply += g
		}
	}

	catalog := c.broker.Negotiate()
	vmSpecs := make([]cloud.VMClusterSpec, 0, len(catalog.VMClusters))
	for _, a := range catalog.VMClusters {
		vmSpecs = append(vmSpecs, a.Spec)
	}
	nfsSpecs := make([]cloud.NFSClusterSpec, 0, len(catalog.NFSClusters))
	for _, a := range catalog.NFSClusters {
		nfsSpecs = append(nfsSpecs, a.Spec)
	}

	flat := FlattenDemands(demands)
	vmPlan, scale, err := planWithScaling(flat, catalog.VMBandwidth, vmSpecs, c.opts.VMBudgetPerHour)
	if err != nil {
		// Even fully scaled-down planning failed (no clusters, etc.):
		// record an empty round.
		c.record(rec)
		return
	}
	rec.VMPlan = vmPlan
	rec.DemandScale = scale

	if len(nfsSpecs) > 0 && c.storageStale(rec.TotalDemand) {
		if sp, err := provision.PlanStorage(flat, cfg.ChunkBytes(), nfsSpecs, c.opts.StorageBudgetPerHour); err == nil {
			c.lastStoragePlan = sp
			c.lastStorageDemand = rec.TotalDemand
			c.storagePlanned = true
		}
	}
	rec.StoragePlan = c.lastStoragePlan

	c.apply(now, vmPlan, rec.StoragePlan, catalog.VMBandwidth, demands)
	c.record(rec)
}

// record delivers a finished round to the OnInterval subscriber and the
// in-memory history, honouring DiscardHistory.
func (c *Controller) record(rec IntervalRecord) {
	if c.opts.OnInterval != nil {
		c.opts.OnInterval(rec)
	}
	if !c.opts.DiscardHistory {
		c.records = append(c.records, rec)
	}
}

// storageStale reports whether the storage rental should be recomputed for
// the given total demand (Sec. V-B: "if the demand for chunks has changed
// significantly since last interval").
func (c *Controller) storageStale(totalDemand float64) bool {
	if !c.storagePlanned {
		return true
	}
	if c.opts.StorageChangeThreshold <= 0 {
		return true
	}
	base := c.lastStorageDemand
	if base == 0 {
		return totalDemand > 0
	}
	change := totalDemand/base - 1
	if change < 0 {
		change = -change
	}
	return change > c.opts.StorageChangeThreshold
}

// planWithScaling runs the VM heuristic, shrinking demand until the plan
// fits the budget and cluster capacity. The first retry jumps straight to
// an upper bound on the feasible scale (cost is at least totalVMs × the
// cheapest price, and VMs are bounded by total cluster capacity), then
// backs off geometrically. Returns the plan and the final scale.
func planWithScaling(flat []provision.ChunkDemand, vmBandwidth float64, specs []cloud.VMClusterSpec, budget float64) (provision.VMPlan, float64, error) {
	plan, err := provision.PlanVMs(flat, vmBandwidth, specs, budget)
	if err == nil {
		return plan, 1, nil
	}
	if !errors.Is(err, provision.ErrInfeasible) {
		return provision.VMPlan{}, 1, err
	}

	var totalNeed float64
	for _, d := range flat {
		totalNeed += d.Demand / vmBandwidth
	}
	if totalNeed <= 0 {
		return provision.VMPlan{}, 1, err
	}
	var capTotal float64
	minPrice := math.Inf(1)
	for _, s := range specs {
		capTotal += float64(s.MaxVMs)
		if s.PricePerHour < minPrice {
			minPrice = s.PricePerHour
		}
	}
	scale := 1.0
	if bound := capTotal / totalNeed; bound < scale {
		scale = bound
	}
	if minPrice > 0 {
		if bound := budget / (totalNeed * minPrice); bound < scale {
			scale = bound
		}
	}
	scale *= 0.98

	for attempt := 0; attempt < 30 && scale > 0; attempt++ {
		scaled := make([]provision.ChunkDemand, len(flat))
		for i, d := range flat {
			scaled[i] = provision.ChunkDemand{Channel: d.Channel, Chunk: d.Chunk, Demand: d.Demand * scale}
		}
		plan, err := provision.PlanVMs(scaled, vmBandwidth, specs, budget)
		if err == nil {
			return plan, scale, nil
		}
		if !errors.Is(err, provision.ErrInfeasible) {
			return provision.VMPlan{}, scale, err
		}
		scale *= 0.9
	}
	return provision.VMPlan{}, scale, fmt.Errorf("%w: demand unservable even at %.2f%% scale", provision.ErrInfeasible, scale*100)
}

// apply submits the SLA reconfiguration and updates the per-chunk serving
// capacities in the running system.
func (c *Controller) apply(now float64, vmPlan provision.VMPlan, storagePlan provision.StoragePlan, vmBandwidth float64, demands []ChannelDemand) {
	req := cloud.Request{Time: now, VMTargets: map[string]int{}, StorageGB: map[string]float64{}}
	for _, spec := range c.cl.VMClusters() {
		req.VMTargets[spec.Name] = 0
	}
	for name, n := range vmPlan.RentalVMs() {
		req.VMTargets[name] = n
	}
	if storagePlan.GBPerCluster != nil {
		for _, spec := range c.cl.NFSClusters() {
			req.StorageGB[spec.Name] = storagePlan.GBPerCluster[spec.Name]
		}
	} else {
		req.StorageGB = nil
	}
	if err := c.broker.Submit(req); err != nil {
		// Capacity races are not fatal: the system keeps last interval's
		// allocation and tries again next interval.
		return
	}

	caps := vmPlan.CapacityPerChunk(vmBandwidth)
	delay := 0.0
	if c.opts.ApplyBootLatency {
		delay = c.cl.BootLatency()
	}
	for ch, d := range demands {
		for i := range d.CloudDemand {
			key := [2]int{ch, i}
			target := caps[key]
			if target > c.lastCaps[key] {
				// Increases wait for the new VMs to boot.
				c.setCapacityAt(now, delay, ch, i, target)
			} else {
				// Decreases take effect immediately (shutdown is fast).
				_ = c.sim.SetCloudCapacity(ch, i, target)
			}
			c.lastCaps[key] = target
		}
	}
}

// setCapacityAt applies a capacity change after `delay` seconds.
func (c *Controller) setCapacityAt(now, delay float64, ch, chunk int, target float64) {
	if delay <= 0 {
		_ = c.sim.SetCloudCapacity(ch, chunk, target)
		return
	}
	_ = c.sim.ScheduleAt(now+delay, func(float64) {
		_ = c.sim.SetCloudCapacity(ch, chunk, target)
	})
}
