package core

import (
	"fmt"
	"sort"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
)

// Options configures the provisioning controller.
type Options struct {
	// IntervalSeconds is T, the provisioning period. Defaults to 3600 (the
	// hourly rental granularity of Sec. V-B).
	IntervalSeconds float64
	// VMBudgetPerHour is B_M. The paper uses $100/hour.
	VMBudgetPerHour float64
	// StorageBudgetPerHour is B_S. The paper uses $1/hour.
	StorageBudgetPerHour float64
	// FallbackTransfer seeds transfer-matrix rows that saw no traffic in an
	// interval. Usually the analytic prior (viewing.PaperDefault).
	FallbackTransfer queueing.TransferMatrix
	// MaxServersPerChunk bounds the queueing search; ≤0 uses the default.
	MaxServersPerChunk int
	// ApplyBootLatency delays capacity increases by the cloud's VM boot
	// latency, modelling that freshly requested VMs serve only once booted.
	ApplyBootLatency bool
	// PeerSupplyTrust discounts the analytic peer contribution before
	// computing the cloud residual: Δ = capacity − trust·Γ. The analysis
	// assumes equilibrium chunk ownership; trusting it fully leaves no
	// margin when the live overlay lags the model (channel churn, cold
	// chunks). 0 means 1 (full trust).
	PeerSupplyTrust float64
	// ProvisionHeadroom multiplies every chunk's cloud demand before
	// planning, the over-provisioning slack visible in the paper's Fig. 4
	// (reserved ≈ 1.5–2× used). 0 means 1 (no headroom).
	ProvisionHeadroom float64
	// Predictor forecasts next-interval arrival rates from the observed
	// history. nil uses LastInterval, the paper's rule.
	Predictor Predictor
	// Policy turns predicted demand into rental plans each interval. nil
	// uses provision.Greedy, the paper's heuristic with infeasibility
	// scaling.
	Policy provision.Policy
	// TrueRates, when non-nil, exposes the workload trace's true mean
	// arrival rate for a channel over [start, end) — the realized-arrival
	// source oracle policies (Policy.Oracle() == true) plan on. Policies
	// that do not ask for it never see it.
	TrueRates func(channel int, start, end float64) float64
	// HistoryLimit bounds the per-channel rate history kept for the
	// predictor; 0 means 168 (a week of hourly intervals).
	HistoryLimit int
	// StorageChangeThreshold implements the Sec. V-B trigger: the NFS
	// storage rental is recomputed only when total demand has moved by more
	// than this fraction since the last storage plan (or on the first
	// round). 0 recomputes every interval.
	StorageChangeThreshold float64
	// OnInterval, when non-nil, receives every IntervalRecord as soon as
	// its provisioning round completes. It runs on the simulator goroutine,
	// so it must not call back into the simulator.
	OnInterval func(IntervalRecord)
	// DiscardHistory stops the controller from accumulating records in
	// memory; long streaming runs set it together with OnInterval so memory
	// stays bounded by one interval.
	DiscardHistory bool
	// Workers bounds the pool that shards the per-channel control-plane
	// work — measurement snapshots, demand derivation, and lookahead
	// forecasting — mirroring sim.Config.Workers on the engines. 0 uses
	// min(GOMAXPROCS, channels); 1 runs serially. Channels are derived
	// independently and every cross-channel total is reduced serially in
	// ascending channel order afterwards, so results are bit-identical
	// for every worker count. TrueRates and Predictor implementations
	// must tolerate concurrent calls for different channels (all in-tree
	// ones are pure reads over per-channel state).
	Workers int
}

func (o *Options) applyDefaults() {
	if o.IntervalSeconds == 0 {
		o.IntervalSeconds = 3600
	}
	if o.VMBudgetPerHour == 0 {
		o.VMBudgetPerHour = 100
	}
	if o.StorageBudgetPerHour == 0 {
		o.StorageBudgetPerHour = 1
	}
	if o.PeerSupplyTrust == 0 {
		o.PeerSupplyTrust = 1
	}
	if o.ProvisionHeadroom == 0 {
		o.ProvisionHeadroom = 1
	}
	if o.Predictor == nil {
		o.Predictor = LastInterval{}
	}
	if o.Policy == nil {
		o.Policy = provision.Greedy{}
	}
	if o.HistoryLimit == 0 {
		o.HistoryLimit = 168
	}
}

// IntervalRecord captures one provisioning round for later analysis; the
// experiment harness turns these into the paper's figures.
type IntervalRecord struct {
	Time             float64   // when the round ran, seconds
	ArrivalRates     []float64 // per-channel Λ estimates (or true rates, for oracle policies)
	DemandPerChannel []float64 // per-channel Σ Δ, bytes/s
	TotalDemand      float64   // Σ over channels, bytes/s
	TotalPeerSupply  float64   // Σ Γ, bytes/s
	VMPlan           provision.VMPlan
	StoragePlan      provision.StoragePlan
	// DemandScale < 1 records that the budget was infeasible and demand was
	// scaled down to fit (the paper's "increase your budget" signal).
	DemandScale float64
	// PlanErr records a round whose VM planning failed outright (no plan
	// was applied; the previous rental stays in force).
	PlanErr string
	// StorageErr records a round whose storage planning failed; the
	// previous storage plan stays applied. Both errors also land in the
	// cloud ledger's diagnostics.
	StorageErr string
	// Cost is the ledger bill accrued over the interval that ended at
	// Time, split by pricing tier. The bootstrap (t=0) record carries only
	// the first reservation term's upfront fee, if any.
	Cost cloud.LedgerTotals
}

// Controller wires the measurement feed, the analysis, the provisioning
// policy, the broker, and the running system together. It talks to the
// simulation only through the sim.Backend seam, so the same control loop
// drives both the per-viewer discrete-event engine and the aggregate
// fluid engine; it plans only through the provision.Policy seam, so the
// same measurement loop drives greedy, lookahead, oracle, and static
// baselines.
type Controller struct {
	sim     sim.Backend
	broker  *cloud.Broker
	cl      *cloud.Cloud
	opts    Options
	planner provision.Planner
	workers int // resolved Options.Workers, see forEachChannel

	records     []IntervalRecord
	planCaps    map[[2]int]float64 // last planned per-chunk capacity targets, unscaled
	lastCaps    map[[2]int]float64 // last applied per-chunk capacities (plan × fault factors)
	rateHistory [][]float64        // per-channel observed arrival rates, oldest first

	// capFactor is the persistent capacity multiplier fault injection's
	// capacity-degradation events set (1 = healthy); preemptScale is the
	// transient survivor fraction after a spot preemption, reset when the
	// next plan re-rents the lost VMs. Both stay exactly 1 on healthy
	// runs, so plan×1×1 is bit-identical to the unscaled plan and no
	// golden moves.
	capFactor    float64
	preemptScale float64

	// Per-round scratch, reused across intervals so the steady control
	// path stops allocating: the measurement inputs, the derived
	// per-channel demands, and the flattened chunk-demand list handed to
	// the planner. Safe because nothing downstream retains them — records
	// get their own slices, planners copy before sorting, and apply reads
	// synchronously within the round.
	scratchInputs  []ChannelInput
	scratchDemands []ChannelDemand
	scratchFlat    []provision.ChunkDemand
}

// NewController builds a controller for a simulation backend and a cloud
// reached through its broker.
func NewController(s sim.Backend, cl *cloud.Cloud, broker *cloud.Broker, opts Options) (*Controller, error) {
	if s == nil || cl == nil || broker == nil {
		return nil, fmt.Errorf("core: nil simulator, cloud, or broker")
	}
	opts.applyDefaults()
	if opts.IntervalSeconds <= 0 {
		return nil, fmt.Errorf("core: non-positive interval %v", opts.IntervalSeconds)
	}
	if opts.FallbackTransfer != nil {
		if err := opts.FallbackTransfer.Validate(); err != nil {
			return nil, fmt.Errorf("core: fallback transfer: %w", err)
		}
		if opts.FallbackTransfer.Size() != s.ChannelConfig().Chunks {
			return nil, fmt.Errorf("core: fallback transfer size %d != chunks %d",
				opts.FallbackTransfer.Size(), s.ChannelConfig().Chunks)
		}
	}
	if v, ok := opts.Predictor.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	if v, ok := opts.Policy.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return &Controller{
		sim:          s,
		broker:       broker,
		cl:           cl,
		opts:         opts,
		planner:      opts.Policy.NewPlanner(),
		workers:      sim.EffectiveWorkers(opts.Workers, s.Channels()),
		planCaps:     make(map[[2]int]float64),
		lastCaps:     make(map[[2]int]float64),
		rateHistory:  make([][]float64, s.Channels()),
		capFactor:    1,
		preemptScale: 1,
	}, nil
}

// forEachChannel runs fn for every channel index, sharding across the
// controller's worker pool. fn must touch only channel-ch state (the
// per-channel estimator feed, rateHistory[ch], its own slots of the
// scratch slices) plus read-only configuration; every cross-channel
// reduction happens serially after the fan-out, in ascending channel
// order, so rounds are bit-identical for any worker count. The serial
// branch (effective workers == 1) runs on the calling goroutine.
func (c *Controller) forEachChannel(n int, fn func(ch int)) {
	if c.workers <= 1 || n <= 1 {
		for ch := 0; ch < n; ch++ {
			fn(ch)
		}
		return
	}
	sim.FanOut(c.workers, n, fn)
}

// Records returns the per-interval history (shared slice internals are not
// exposed: a copy is returned).
func (c *Controller) Records() []IntervalRecord {
	out := make([]IntervalRecord, len(c.records))
	copy(out, c.records)
	return out
}

// Start schedules the periodic provisioning rounds, beginning one interval
// from now (statistics need a full interval to accumulate). Bootstrap
// provisioning for interval 0 should be applied first via Provision.
func (c *Controller) Start() error {
	return c.sim.ScheduleRepeating(c.opts.IntervalSeconds, c.opts.IntervalSeconds, func(now float64) {
		c.runInterval(now)
	})
}

// runInterval executes one provisioning round using the statistics the
// tracker accumulated since the previous round. The per-channel snapshot
// — estimator read, forecast, matrix estimate, uplink probe, reset — is
// sharded over the worker pool: each shard touches only its channel's
// feed, history, and inputs slot, and the round runs at a control
// barrier with no channel-stepping workers active, so the fan-out
// observes a settled engine and writes disjoint state.
func (c *Controller) runInterval(now float64) {
	n := c.sim.Channels()
	if cap(c.scratchInputs) < n {
		c.scratchInputs = make([]ChannelInput, n)
	}
	inputs := c.scratchInputs[:n]
	c.forEachChannel(n, func(ch int) {
		est, err := c.sim.Estimator(ch)
		if err != nil {
			return // unreachable: channel index from range
		}
		rate, err := est.ArrivalRate(c.opts.IntervalSeconds)
		if err != nil {
			rate = 0
		}
		rate = c.forecast(ch, rate)
		matrix, err := est.Matrix(c.opts.FallbackTransfer)
		if err != nil || matrix.Size() == 0 {
			matrix = c.opts.FallbackTransfer
		}
		uplink, err := c.sim.MeanUplink(ch)
		if err != nil {
			uplink = 0
		}
		inputs[ch] = ChannelInput{ArrivalRate: rate, Transfer: matrix, MeanUplink: uplink}
		est.Reset()
	})
	c.Provision(now, inputs)
}

// forecast appends the observation to the channel's history and returns
// the predictor's rate for the next interval.
func (c *Controller) forecast(channel int, observed float64) float64 {
	h := append(c.rateHistory[channel], observed)
	if len(h) > c.opts.HistoryLimit {
		h = h[len(h)-c.opts.HistoryLimit:]
	}
	c.rateHistory[channel] = h
	return c.opts.Predictor.Predict(h)
}

// oracle reports whether this run plans on true arrival rates: the policy
// asked for them and a source is configured.
func (c *Controller) oracle() bool {
	return c.opts.Policy.Oracle() && c.opts.TrueRates != nil
}

// wantsFuture reports whether the planner still consumes forecasts this
// round; planners that don't implement provision.FutureDemander always do.
func (c *Controller) wantsFuture() bool {
	if fd, ok := c.planner.(provision.FutureDemander); ok {
		return fd.NeedsFuture()
	}
	return true
}

// deriveOne runs the demand analysis for one channel and applies the
// peer-supply trust and provisioning headroom, yielding the per-chunk
// cloud demand the policy plans on. A channel whose analysis fails (e.g.
// degenerate estimated matrix) gets zero demand rather than aborting the
// round.
func (c *Controller) deriveOne(cfg queueing.Config, in ChannelInput, p2pMode bool) ChannelDemand {
	if in.Transfer == nil {
		in.Transfer = c.opts.FallbackTransfer
	}
	d, err := DeriveDemand(cfg, in, p2pMode, c.opts.MaxServersPerChunk)
	if err != nil {
		return ChannelDemand{
			CloudDemand: make([]float64, cfg.Chunks),
			PeerSupply:  make([]float64, cfg.Chunks),
		}
	}
	// Apply peer-supply trust and provisioning headroom against the full
	// equilibrium capacity (Δ = capacity − trust·Γ, then slack).
	for i := range d.CloudDemand {
		delta := d.Equilibrium.Capacity[i] - c.opts.PeerSupplyTrust*d.PeerSupply[i]
		if delta < 0 {
			delta = 0
		}
		d.CloudDemand[i] = delta * c.opts.ProvisionHeadroom
	}
	return d
}

// futureDemands forecasts per-chunk demand for the k intervals after the
// upcoming one: from the true trace rates for oracle policies, otherwise
// by iterating the predictor on its own forecasts. Transfer matrices and
// uplinks are held at their current estimates, so a step whose forecast
// rate matches the previous step's reuses that step's demand analysis —
// with a fixed-point predictor (LastInterval, the default) the whole
// lookahead costs one analysis, not k+1. current and currentRates are
// this round's derived demands and the rates that produced them.
//
// Each channel's forecast chain (history → predict → derive, step by
// step) depends only on that channel's own state, so the lookahead is
// sharded channel-outer over the worker pool — the demand plane's
// controller-side fan-out — filling the steps×channels demand matrix.
// Only the per-step flattening reads across channels, and it runs
// serially afterwards in step then channel order, exactly the order the
// old step-outer loop flattened in, so plans are bit-identical for any
// worker count.
func (c *Controller) futureDemands(cfg queueing.Config, inputs []ChannelInput, current []ChannelDemand, currentRates []float64, p2pMode bool, now float64, k int) [][]provision.ChunkDemand {
	T := c.opts.IntervalSeconds
	oracle := c.oracle()
	steps := make([][]ChannelDemand, k)
	for step := range steps {
		steps[step] = make([]ChannelDemand, len(inputs))
	}
	c.forEachChannel(len(inputs), func(ch int) {
		in := inputs[ch]
		var hist []float64
		if !oracle {
			hist = append(append([]float64(nil), c.rateHistory[ch]...), in.ArrivalRate)
		}
		prev, prevRate := current[ch], currentRates[ch]
		for step := 1; step <= k; step++ {
			if oracle {
				in.ArrivalRate = c.opts.TrueRates(ch, now+float64(step)*T, now+float64(step+1)*T)
			} else {
				in.ArrivalRate = c.opts.Predictor.Predict(hist)
				hist = append(hist, in.ArrivalRate)
			}
			if in.ArrivalRate == prevRate {
				steps[step-1][ch] = prev
			} else {
				steps[step-1][ch] = c.deriveOne(cfg, in, p2pMode)
			}
			prev, prevRate = steps[step-1][ch], in.ArrivalRate
		}
	})
	future := make([][]provision.ChunkDemand, k)
	for step := range future {
		future[step] = FlattenDemands(steps[step])
	}
	return future
}

// reduceDemands folds the sharded per-channel demands into the record's
// cross-channel totals. It runs serially after the derive fan-out, in
// ascending channel order with the per-chunk interleaving the old fused
// loop used (DemandPerChannel[ch] and TotalDemand advance together, chunk
// by chunk, then the peer supply), so the canonical accumulation order —
// and with it every golden — is unchanged by the sharding.
//
//cloudmedia:hotpath
func (c *Controller) reduceDemands(rec *IntervalRecord, demands []ChannelDemand) {
	for ch := range demands {
		d := demands[ch]
		for _, delta := range d.CloudDemand {
			rec.DemandPerChannel[ch] += delta
			rec.TotalDemand += delta
		}
		for _, g := range d.PeerSupply {
			rec.TotalPeerSupply += g
		}
	}
}

// Provision derives demand from the given per-channel inputs, asks the
// provisioning policy for a plan, and applies it to the cloud and the
// running system. It is also the bootstrap entry point: experiments call
// it at t=0 with analytic estimates.
func (c *Controller) Provision(now float64, inputs []ChannelInput) {
	cfg := c.sim.ChannelConfig()
	p2pMode := c.sim.Mode() == sim.P2P
	oracle := c.oracle()

	rec := IntervalRecord{
		Time:             now,
		ArrivalRates:     make([]float64, len(inputs)),
		DemandPerChannel: make([]float64, len(inputs)),
		DemandScale:      1,
	}
	if cap(c.scratchDemands) < len(inputs) {
		c.scratchDemands = make([]ChannelDemand, len(inputs))
	}
	// Shard the demand derivation per channel: each shard reads its own
	// input (plus the pure TrueRates/analysis paths) and writes only its
	// slots of demands and rec.ArrivalRates. The cross-channel totals are
	// reduced afterwards, serially.
	demands := c.scratchDemands[:len(inputs)]
	c.forEachChannel(len(inputs), func(ch int) {
		in := inputs[ch]
		if oracle {
			in.ArrivalRate = c.opts.TrueRates(ch, now, now+c.opts.IntervalSeconds)
		}
		rec.ArrivalRates[ch] = in.ArrivalRate
		demands[ch] = c.deriveOne(cfg, in, p2pMode)
	})
	c.reduceDemands(&rec, demands)

	catalog := c.broker.Negotiate()
	vmSpecs := make([]cloud.VMClusterSpec, 0, len(catalog.VMClusters))
	for _, a := range catalog.VMClusters {
		vmSpecs = append(vmSpecs, a.Spec)
	}
	nfsSpecs := make([]cloud.NFSClusterSpec, 0, len(catalog.NFSClusters))
	for _, a := range catalog.NFSClusters {
		nfsSpecs = append(nfsSpecs, a.Spec)
	}

	c.scratchFlat = FlattenDemandsInto(c.scratchFlat, demands)
	req := provision.PlanRequest{
		Time:                   now,
		IntervalSeconds:        c.opts.IntervalSeconds,
		Demands:                c.scratchFlat,
		VMBandwidth:            catalog.VMBandwidth,
		ChunkBytes:             cfg.ChunkBytes(),
		VMClusters:             vmSpecs,
		NFSClusters:            nfsSpecs,
		VMBudgetPerHour:        c.opts.VMBudgetPerHour,
		StorageBudgetPerHour:   c.opts.StorageBudgetPerHour,
		StorageChangeThreshold: c.opts.StorageChangeThreshold,
		Pricing:                c.cl.Ledger().Plan(),
	}
	if k := c.opts.Policy.Lookahead(); k > 0 && c.wantsFuture() {
		req.Future = c.futureDemands(cfg, inputs, demands, rec.ArrivalRates, p2pMode, now, k)
	}

	res, err := c.planner.Plan(req)
	if err != nil {
		// Planning failed outright (no clusters, demand unservable even
		// fully scaled down, …): record the empty round and keep last
		// interval's rental.
		rec.PlanErr = err.Error()
		c.cl.Ledger().Notef(now, "%s policy: VM plan failed: %v", c.opts.Policy.Name(), err)
		c.finish(now, rec)
		return
	}
	rec.VMPlan = res.VMPlan
	rec.DemandScale = res.DemandScale
	rec.StoragePlan = res.StoragePlan
	if res.StorageErr != nil {
		rec.StorageErr = res.StorageErr.Error()
		c.cl.Ledger().Notef(now, "%s policy: storage plan failed, previous plan kept: %v",
			c.opts.Policy.Name(), res.StorageErr)
	}

	c.apply(now, res.VMPlan, res.StoragePlan, catalog.VMBandwidth, demands)
	c.finish(now, rec)
}

// finish settles the bill for the interval that just ended, stamps it on
// the record, and delivers the record.
func (c *Controller) finish(now float64, rec IntervalRecord) {
	c.cl.Advance(now)
	rec.Cost = c.cl.Ledger().Checkpoint()
	c.record(rec)
}

// record delivers a finished round to the OnInterval subscriber and the
// in-memory history, honouring DiscardHistory.
func (c *Controller) record(rec IntervalRecord) {
	if c.opts.OnInterval != nil {
		c.opts.OnInterval(rec)
	}
	if !c.opts.DiscardHistory {
		c.records = append(c.records, rec)
	}
}

// apply submits the SLA reconfiguration and updates the per-chunk serving
// capacities in the running system.
func (c *Controller) apply(now float64, vmPlan provision.VMPlan, storagePlan provision.StoragePlan, vmBandwidth float64, demands []ChannelDemand) {
	req := cloud.Request{Time: now, VMTargets: map[string]int{}, StorageGB: map[string]float64{}}
	for _, spec := range c.cl.VMClusters() {
		req.VMTargets[spec.Name] = 0
	}
	for name, n := range vmPlan.RentalVMs() {
		req.VMTargets[name] = n
	}
	if storagePlan.GBPerCluster != nil {
		for _, spec := range c.cl.NFSClusters() {
			req.StorageGB[spec.Name] = storagePlan.GBPerCluster[spec.Name]
		}
	} else {
		req.StorageGB = nil
	}
	if err := c.broker.Submit(req); err != nil {
		// Capacity races are not fatal: the system keeps last interval's
		// allocation and tries again next interval.
		return
	}

	caps := vmPlan.CapacityPerChunk(vmBandwidth)
	delay := 0.0
	if c.opts.ApplyBootLatency {
		delay = c.cl.BootLatency()
	}
	// A fresh plan re-rents whatever a spot preemption killed, so the
	// transient survivor scale resets here; the persistent degradation
	// factor keeps applying until the fault clears it.
	c.preemptScale = 1
	for ch, d := range demands {
		for i := range d.CloudDemand {
			key := [2]int{ch, i}
			c.planCaps[key] = caps[key]
			target := caps[key] * c.capFactor
			if target > c.lastCaps[key] {
				// Increases wait for the new VMs to boot.
				c.setCapacityAt(now, delay, ch, i, target)
			} else {
				// Decreases take effect immediately (shutdown is fast).
				//cloudmedia:allow noloss -- channel/chunk come from the plan loop, which only visits valid indices
				_ = c.sim.SetCloudCapacity(ch, i, target)
			}
			c.lastCaps[key] = target
		}
	}
}

// SetCapacityFactor sets the persistent capacity multiplier — fault
// injection's capacity-degradation hook. The factor scales every applied
// chunk capacity (current and future plans) and holds until the next
// SetCapacityFactor call; the current capacities are rescaled immediately,
// in ascending (channel, chunk) order so the reapplication is
// worker-count-invariant. Must be called at a control barrier (from a
// scheduled callback or between RunUntil calls), like every backend
// interaction.
func (c *Controller) SetCapacityFactor(now, factor float64) error {
	if factor < 0 || factor > 1 {
		return fmt.Errorf("core: capacity factor %v outside [0,1]", factor)
	}
	c.capFactor = factor
	c.reapplyCaps()
	return nil
}

// CapacityFactor returns the current persistent capacity multiplier.
func (c *Controller) CapacityFactor() float64 { return c.capFactor }

// ScaleCapacity multiplies the transient post-preemption capacity scale —
// fault injection's spot-preemption hook, called with the survivor
// fraction after Cloud.PreemptSpot removed the billed VMs. The scale
// compounds across preemptions within one interval and resets when the
// next provisioning round re-rents replacement capacity (which then boots
// through the normal latency path). Must be called at a control barrier.
func (c *Controller) ScaleCapacity(now, factor float64) error {
	if factor < 0 || factor > 1 {
		return fmt.Errorf("core: capacity scale %v outside [0,1]", factor)
	}
	c.preemptScale *= factor
	c.reapplyCaps()
	return nil
}

// reapplyCaps pushes planCaps × capFactor × preemptScale into the running
// system, immediately: degraded or preempted capacity disappears at once,
// and a degradation clearing restores capacity that never stopped being
// rented (already-booted VMs), so no boot latency applies on either edge.
// Keys are applied in ascending (channel, chunk) order — planCaps is a
// map, and float-effect ordering must not depend on Go's randomized
// iteration.
func (c *Controller) reapplyCaps() {
	keys := make([][2]int, 0, len(c.planCaps))
	for key := range c.planCaps {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	f := c.capFactor * c.preemptScale
	for _, key := range keys {
		target := c.planCaps[key] * f
		//cloudmedia:allow noloss -- keys were recorded by apply from valid plan indices
		_ = c.sim.SetCloudCapacity(key[0], key[1], target)
		c.lastCaps[key] = target
	}
}

// setCapacityAt applies a capacity change after `delay` seconds.
func (c *Controller) setCapacityAt(now, delay float64, ch, chunk int, target float64) {
	if delay <= 0 {
		//cloudmedia:allow noloss -- channel/chunk validated by the caller's plan loop
		_ = c.sim.SetCloudCapacity(ch, chunk, target)
		return
	}
	//cloudmedia:allow noloss -- now+delay > now so ScheduleAt cannot fail
	_ = c.sim.ScheduleAt(now+delay, func(float64) {
		//cloudmedia:allow noloss -- channel/chunk validated by the caller's plan loop
		_ = c.sim.SetCloudCapacity(ch, chunk, target)
	})
}
