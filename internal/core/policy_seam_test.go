package core

import (
	"strings"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
)

// buildStack assembles a simulator + cloud + broker for seam tests,
// returning the pieces so each test can pick its own controller Options.
func buildStack(t *testing.T) (*sim.Simulator, *cloud.Cloud, *cloud.Broker, queueing.TransferMatrix) {
	t.Helper()
	s, cl, _ := testSystem(t, sim.ClientServer)
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		t.Fatal(err)
	}
	return s, cl, broker, testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
}

func flatInputs(s *sim.Simulator, transfer queueing.TransferMatrix, rate float64) []ChannelInput {
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		inputs[c] = ChannelInput{ArrivalRate: rate, Transfer: transfer}
	}
	return inputs
}

// TestStorageInfeasibilityIsVisible pins the satellite fix: a failed
// storage plan must land on the IntervalRecord and in the ledger
// diagnostics instead of being silently swallowed (the controller used to
// keep the stale plan with no trace).
func TestStorageInfeasibilityIsVisible(t *testing.T) {
	s, cl, broker, transfer := buildStack(t)
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:      600,
		StorageBudgetPerHour: 1e-12, // no chunk is placeable under this budget
		FallbackTransfer:     transfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Provision(0, flatInputs(s, transfer, 0.2))
	recs := ctl.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if rec.StorageErr == "" {
		t.Fatal("storage infeasibility not recorded on the IntervalRecord")
	}
	if !strings.Contains(rec.StorageErr, "unplaceable") {
		t.Errorf("StorageErr = %q, want the PlanStorage infeasibility", rec.StorageErr)
	}
	if len(rec.StoragePlan.Placements) != 0 {
		t.Errorf("failed round still produced %d placements", len(rec.StoragePlan.Placements))
	}
	// The VM side of the round must be unaffected.
	if rec.PlanErr != "" {
		t.Errorf("VM planning failed too: %v", rec.PlanErr)
	}
	if len(rec.VMPlan.Allocations) == 0 {
		t.Error("VM plan missing despite a storage-only failure")
	}
	// And the ledger diagnostics must carry the event.
	notes := cl.Ledger().Diagnostics()
	if len(notes) == 0 {
		t.Fatal("no ledger diagnostics for the failed storage plan")
	}
	if !strings.Contains(notes[0].Msg, "storage plan failed") {
		t.Errorf("ledger note = %q, want a storage-plan diagnostic", notes[0].Msg)
	}
}

// TestVMPlanFailureIsVisible pins the companion path: when VM planning
// fails outright, the empty round records the error instead of silently
// keeping the previous rental.
func TestVMPlanFailureIsVisible(t *testing.T) {
	s, cl, broker, transfer := buildStack(t)
	// A negative budget is rejected by PlanVMs with a non-infeasible
	// error, which planWithScaling passes straight through — the
	// planning-failed path without any scale search.
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:  600,
		VMBudgetPerHour:  -1,
		FallbackTransfer: transfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Provision(0, flatInputs(s, transfer, 0.5))
	rec := ctl.Records()[0]
	if rec.PlanErr == "" {
		t.Fatal("failed VM planning round recorded no PlanErr")
	}
	if len(rec.VMPlan.Allocations) != 0 {
		t.Error("failed round carries a VM plan")
	}
	if len(cl.Ledger().Diagnostics()) == 0 {
		t.Error("no ledger diagnostic for the failed VM plan")
	}
}

// capturePolicy records the PlanRequest the controller builds and
// delegates planning to Greedy — a seam probe.
type capturePolicy struct {
	lookahead int
	oracle    bool
	reqs      *[]provision.PlanRequest
}

func (p capturePolicy) Name() string   { return "capture" }
func (p capturePolicy) Lookahead() int { return p.lookahead }
func (p capturePolicy) Oracle() bool   { return p.oracle }
func (p capturePolicy) NewPlanner() provision.Planner {
	return &capturePlanner{policy: p, inner: provision.Greedy{}.NewPlanner()}
}

type capturePlanner struct {
	policy capturePolicy
	inner  provision.Planner
}

func (p *capturePlanner) Plan(req provision.PlanRequest) (provision.PlanResult, error) {
	*p.policy.reqs = append(*p.policy.reqs, req)
	return p.inner.Plan(req)
}

// TestControllerFillsPlanRequest pins the seam contract: budgets, catalog,
// chunk size, and exactly Lookahead() future forecasts reach the policy.
func TestControllerFillsPlanRequest(t *testing.T) {
	s, cl, broker, transfer := buildStack(t)
	var reqs []provision.PlanRequest
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:  600,
		VMBudgetPerHour:  42,
		FallbackTransfer: transfer,
		Policy:           capturePolicy{lookahead: 2, reqs: &reqs},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Provision(0, flatInputs(s, transfer, 0.2))
	if len(reqs) != 1 {
		t.Fatalf("policy saw %d requests, want 1", len(reqs))
	}
	req := reqs[0]
	if req.VMBudgetPerHour != 42 {
		t.Errorf("VMBudgetPerHour = %v", req.VMBudgetPerHour)
	}
	if len(req.VMClusters) != len(cl.VMClusters()) || len(req.NFSClusters) != len(cl.NFSClusters()) {
		t.Error("catalog did not reach the policy")
	}
	if req.ChunkBytes != s.ChannelConfig().ChunkBytes() {
		t.Errorf("ChunkBytes = %v, want %v", req.ChunkBytes, s.ChannelConfig().ChunkBytes())
	}
	if want := s.Channels() * s.ChannelConfig().Chunks; len(req.Demands) != want {
		t.Errorf("demands = %d, want %d", len(req.Demands), want)
	}
	if len(req.Future) != 2 {
		t.Fatalf("future forecasts = %d, want Lookahead() = 2", len(req.Future))
	}
	for i, step := range req.Future {
		if len(step) != len(req.Demands) {
			t.Errorf("future step %d has %d chunk demands, want %d", i, len(step), len(req.Demands))
		}
	}
}

// TestOraclePolicySeesTrueRates pins the oracle path: when the policy
// declares Oracle() and a true-rate source exists, the recorded arrival
// rates are the trace's, not the predictor's.
func TestOraclePolicySeesTrueRates(t *testing.T) {
	s, cl, broker, transfer := buildStack(t)
	const trueRate = 0.123
	var reqs []provision.PlanRequest
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:  600,
		FallbackTransfer: transfer,
		Policy:           capturePolicy{oracle: true, lookahead: 1, reqs: &reqs},
		TrueRates:        func(int, float64, float64) float64 { return trueRate },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Provision(0, flatInputs(s, transfer, 0.9)) // predictor input says 0.9
	rec := ctl.Records()[0]
	for ch, r := range rec.ArrivalRates {
		if r != trueRate {
			t.Errorf("channel %d planned on rate %v, want the oracle's %v", ch, r, trueRate)
		}
	}
	// Future forecasts come from the same oracle source.
	if len(reqs) != 1 || len(reqs[0].Future) != 1 {
		t.Fatalf("oracle lookahead not filled: %+v", reqs)
	}
}

// TestPolicyValidationSurfaces pins that invalid policy parameters fail
// controller construction.
func TestPolicyValidationSurfaces(t *testing.T) {
	s, cl, broker, transfer := buildStack(t)
	_, err := NewController(s, cl, broker, Options{
		FallbackTransfer: transfer,
		Policy:           provision.Lookahead{K: -1},
	})
	if err == nil {
		t.Error("negative lookahead accepted")
	}
}
