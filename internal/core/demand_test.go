package core

import (
	"testing"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
)

func chanCfg() queueing.Config {
	return queueing.Config{
		Chunks:          8,
		PlaybackRate:    50e3,
		ChunkSeconds:    300,
		VMBandwidth:     1.25e6,
		EntryFirstChunk: 0.7,
	}
}

func TestDeriveDemandClientServer(t *testing.T) {
	cfg := chanCfg()
	p, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeriveDemand(cfg, ChannelInput{ArrivalRate: 0.2, Transfer: p}, false, 0)
	if err != nil {
		t.Fatalf("DeriveDemand: %v", err)
	}
	// Client-server: cloud demand equals the full equilibrium capacity.
	for i := range d.CloudDemand {
		if !mathx.ApproxEqual(d.CloudDemand[i], d.Equilibrium.Capacity[i], 1e-9) {
			t.Errorf("chunk %d: Δ=%v, capacity=%v", i, d.CloudDemand[i], d.Equilibrium.Capacity[i])
		}
		if d.PeerSupply[i] != 0 {
			t.Errorf("chunk %d: peer supply %v in C/S mode", i, d.PeerSupply[i])
		}
	}
}

func TestDeriveDemandP2PReducesCloud(t *testing.T) {
	cfg := chanCfg()
	p, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	in := ChannelInput{ArrivalRate: 0.2, Transfer: p, MeanUplink: 60e3}
	cs, err := DeriveDemand(cfg, in, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := DeriveDemand(cfg, in, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	csTotal := mathx.Sum(cs.CloudDemand)
	ppTotal := mathx.Sum(pp.CloudDemand)
	if ppTotal >= csTotal {
		t.Errorf("P2P demand %v not below C/S %v", ppTotal, csTotal)
	}
	if mathx.Sum(pp.PeerSupply) <= 0 {
		t.Error("no peer supply derived")
	}
	// Δ + Γ = full capacity (per chunk, within clamping).
	for i := range pp.CloudDemand {
		full := cs.CloudDemand[i]
		if pp.CloudDemand[i]+pp.PeerSupply[i] < full-1e-6 {
			t.Errorf("chunk %d: Δ+Γ=%v below full %v", i, pp.CloudDemand[i]+pp.PeerSupply[i], full)
		}
	}
}

func TestDeriveDemandZeroUplinkFallsBackToFull(t *testing.T) {
	cfg := chanCfg()
	p, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	in := ChannelInput{ArrivalRate: 0.2, Transfer: p, MeanUplink: 0}
	d, err := DeriveDemand(cfg, in, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(mathx.Sum(d.CloudDemand), d.Equilibrium.TotalCapacity(), 1e-9) {
		t.Error("zero uplink should mean full cloud demand")
	}
}

func TestDeriveDemandErrors(t *testing.T) {
	cfg := chanCfg()
	p, err := viewing.PaperDefault(cfg.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveDemand(cfg, ChannelInput{ArrivalRate: -1, Transfer: p}, false, 0); err == nil {
		t.Error("negative rate: want error")
	}
	closed := queueing.TransferMatrix{{0, 1}, {1, 0}}
	small := cfg
	small.Chunks = 2
	if _, err := DeriveDemand(small, ChannelInput{ArrivalRate: 1, Transfer: closed}, false, 0); err == nil {
		t.Error("closed matrix: want error")
	}
}

func TestFlattenDemands(t *testing.T) {
	demands := []ChannelDemand{
		{CloudDemand: []float64{1, 2}},
		{CloudDemand: []float64{3}},
	}
	flat := FlattenDemands(demands)
	if len(flat) != 3 {
		t.Fatalf("len = %d", len(flat))
	}
	if flat[2].Channel != 1 || flat[2].Chunk != 0 || flat[2].Demand != 3 {
		t.Errorf("flat[2] = %+v", flat[2])
	}
}
