package core

import (
	"reflect"
	"testing"
)

func demandFixture() []ChannelDemand {
	return []ChannelDemand{
		{CloudDemand: []float64{1e6, 2e6, 0}},
		{CloudDemand: []float64{5e5}},
		{CloudDemand: nil},
		{CloudDemand: []float64{3e6, 4e6}},
	}
}

// The scratch-reusing flatten must produce exactly what the allocating
// one does, and refill (not append past) a dirty buffer.
func TestFlattenDemandsIntoMatchesFlatten(t *testing.T) {
	demands := demandFixture()
	want := FlattenDemands(demands)
	got := FlattenDemandsInto(nil, demands)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("fresh scratch differs:\n%v\nvs\n%v", got, want)
	}
	// Reuse with stale contents and excess capacity: same result.
	dirty := FlattenDemandsInto(nil, demandFixture())
	dirty = append(dirty, dirty...)
	got = FlattenDemandsInto(dirty, demands)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused scratch differs:\n%v\nvs\n%v", got, want)
	}
}

// Once the scratch has grown to the round's size, flattening allocates
// nothing — the per-interval control path stays allocation-free.
func TestFlattenDemandsIntoAllocFree(t *testing.T) {
	demands := demandFixture()
	scratch := FlattenDemandsInto(nil, demands)
	allocs := testing.AllocsPerRun(200, func() {
		scratch = FlattenDemandsInto(scratch, demands)
	})
	if allocs > 0 {
		t.Fatalf("FlattenDemandsInto allocates %.1f times per round", allocs)
	}
}
