package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/mathx"
	"cloudmedia/internal/sim"
)

func TestLastInterval(t *testing.T) {
	p := LastInterval{}
	if got := p.Predict([]float64{1, 5, 3}); got != 3 {
		t.Errorf("Predict = %v, want 3", got)
	}
	if got := p.Predict([]float64{7}); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

func TestEWMAValidate(t *testing.T) {
	if err := (EWMA{Alpha: 0.5}).Validate(); err != nil {
		t.Errorf("valid alpha rejected: %v", err)
	}
	for _, a := range []float64{0, -0.1, 1.5} {
		if err := (EWMA{Alpha: a}).Validate(); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestEWMAMath(t *testing.T) {
	p := EWMA{Alpha: 0.5}
	// f0 = 2; f1 = 0.5·4 + 0.5·2 = 3; f2 = 0.5·8 + 0.5·3 = 5.5.
	if got := p.Predict([]float64{2, 4, 8}); !mathx.ApproxEqual(got, 5.5, 1e-12) {
		t.Errorf("Predict = %v, want 5.5", got)
	}
	// Alpha 1 degenerates to LastInterval.
	one := EWMA{Alpha: 1}
	if got := one.Predict([]float64{2, 4, 8}); got != 8 {
		t.Errorf("alpha=1 Predict = %v, want 8", got)
	}
}

func TestEWMASmoothsSpike(t *testing.T) {
	smooth := EWMA{Alpha: 0.3}
	spiky := []float64{10, 10, 10, 100}
	got := smooth.Predict(spiky)
	if got <= 10 || got >= 100 {
		t.Errorf("Predict = %v, want strictly between baseline and spike", got)
	}
	if last := (LastInterval{}).Predict(spiky); got >= last {
		t.Errorf("EWMA %v should undershoot LastInterval %v on a spike", got, last)
	}
}

func TestPeakOfWindow(t *testing.T) {
	p := PeakOfWindow{Window: 3}
	if got := p.Predict([]float64{9, 1, 2, 3}); got != 3 {
		t.Errorf("Predict = %v, want 3 (9 is outside the window)", got)
	}
	all := PeakOfWindow{}
	if got := all.Predict([]float64{9, 1, 2, 3}); got != 9 {
		t.Errorf("Predict = %v, want 9 (unbounded window)", got)
	}
}

func TestDiurnalMemory(t *testing.T) {
	if err := (DiurnalMemory{Period: 0}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
	d := DiurnalMemory{Period: 3}
	// Too little history: fall back to last interval.
	if got := d.Predict([]float64{4, 5}); got != 5 {
		t.Errorf("short history Predict = %v, want 5", got)
	}
	// history = [10, 1, 1, 2]: one period before next is index 1 (value 1);
	// blended with the latest (2): 0.7·1 + 0.3·2 = 1.3.
	if got := d.Predict([]float64{10, 1, 1, 2}); !mathx.ApproxEqual(got, 1.3, 1e-12) {
		t.Errorf("Predict = %v, want 1.3", got)
	}
}

// Property: every predictor returns a value within [min, max] of its
// history — forecasts never extrapolate outside observed range.
func TestPredictorsBoundedByHistory(t *testing.T) {
	preds := []Predictor{
		LastInterval{},
		EWMA{Alpha: 0.4},
		PeakOfWindow{Window: 5},
		DiurnalMemory{Period: 24},
	}
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		h := make([]float64, n)
		lo, hi := 1e18, -1e18
		for i := range h {
			h[i] = r.Float64() * 100
			if h[i] < lo {
				lo = h[i]
			}
			if h[i] > hi {
				hi = h[i]
			}
		}
		for _, p := range preds {
			got := p.Predict(h)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestControllerRejectsInvalidPredictor(t *testing.T) {
	s, cl, _ := testSystem(t, sim.ClientServer)
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(s, cl, broker, Options{Predictor: EWMA{Alpha: -1}}); err == nil {
		t.Error("invalid EWMA accepted")
	}
}
