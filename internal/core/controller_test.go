package core

import (
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
	"cloudmedia/internal/workload"
)

// testSystem builds a small but complete CloudMedia stack: simulator,
// cloud, broker, controller. The scenario pieces come from the shared
// internal/testutil builders.
func testSystem(t *testing.T, mode sim.Mode) (*sim.Simulator, *cloud.Cloud, *Controller) {
	t.Helper()
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	s, cl, broker := testutil.Stack(t, sim.Config{
		Mode:             mode,
		Channel:          testutil.ChannelConfig(5, 60),
		Workload:         testutil.FlatWorkload(3, 0.3, 300),
		Transfer:         transfer,
		RebalanceSeconds: 10,
		Seed:             7,
	})
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:  600, // 10-minute rounds keep the test quick
		FallbackTransfer: transfer,
		ApplyBootLatency: true,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return s, cl, ctl
}

// bootstrapInputs builds analytic t=0 inputs from the workload parameters.
func bootstrapInputs(t *testing.T, s *sim.Simulator, wl *workload.Params, transfer queueing.TransferMatrix) []ChannelInput {
	t.Helper()
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		rate, err := wl.ChannelRate(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		inputs[c] = ChannelInput{
			ArrivalRate: rate,
			Transfer:    transfer,
			MeanUplink:  wl.PeerUplink.Mean(),
		}
	}
	return inputs
}

func TestNewControllerValidation(t *testing.T) {
	s, cl, _ := testSystem(t, sim.ClientServer)
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(nil, cl, broker, Options{}); err == nil {
		t.Error("nil sim: want error")
	}
	if _, err := NewController(s, nil, broker, Options{}); err == nil {
		t.Error("nil cloud: want error")
	}
	bad := queueing.NewTransferMatrix(2)
	if _, err := NewController(s, cl, broker, Options{FallbackTransfer: bad}); err == nil {
		t.Error("fallback size mismatch: want error")
	}
}

func TestControllerEndToEndClientServer(t *testing.T) {
	s, cl, ctl := testSystem(t, sim.ClientServer)
	wl := testutil.FlatWorkload(3, 0.3, 300)
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)

	ctl.Provision(0, bootstrapInputs(t, s, &wl, transfer))
	if err := ctl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.RunUntil(3 * 600)
	cl.Advance(s.Now())

	recs := ctl.Records()
	if len(recs) < 3 {
		t.Fatalf("records = %d, want ≥3 (bootstrap + 2 rounds)", len(recs))
	}
	// Demand must be positive once traffic flows.
	if recs[len(recs)-1].TotalDemand <= 0 {
		t.Error("no demand derived from live statistics")
	}
	// VMs must actually have been rented and billed.
	vmCost, _ := cl.Costs()
	if vmCost <= 0 {
		t.Error("no VM cost accrued")
	}
	// Provisioned capacity must reach the simulator.
	if s.TotalCloudCapacity() <= 0 {
		t.Error("no capacity applied to the simulator")
	}
	// And the users should be streaming smoothly.
	q := s.SampleQuality()
	if q.Overall < 0.8 {
		t.Errorf("quality %v with hourly provisioning, want ≥0.8", q.Overall)
	}
}

func TestControllerP2PCheaperThanClientServer(t *testing.T) {
	// Needs a real crowd: peer uplinks (~0.3 Mbps each) only displace
	// 10 Mbps VMs when many viewers hold chunks.
	run := func(mode sim.Mode) float64 {
		transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
		wl := testutil.FlatWorkload(3, 2.5, 300) // ≈750 concurrent users
		s, cl, broker := testutil.Stack(t, sim.Config{
			Mode: mode, Channel: testutil.ChannelConfig(5, 60), Workload: wl, Transfer: transfer,
			RebalanceSeconds: 10, Seed: 7,
		})
		ctl, err := NewController(s, cl, broker, Options{
			IntervalSeconds:  600,
			FallbackTransfer: transfer,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctl.Provision(0, bootstrapInputs(t, s, &wl, transfer))
		if err := ctl.Start(); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(3 * 600)
		cl.Advance(s.Now())
		vmCost, _ := cl.Costs()
		return vmCost
	}
	cs := run(sim.ClientServer)
	p2p := run(sim.P2P)
	if p2p >= cs {
		t.Errorf("P2P VM cost %v not below client-server %v (the paper's headline)", p2p, cs)
	}
}

func TestControllerRecordsDemandScale(t *testing.T) {
	s, _, _ := testSystem(t, sim.ClientServer)
	// Rebuild a controller with a tiny VM budget to force scaling.
	cl2, err := cloud.New(cloud.DefaultVMClusters(), cloud.DefaultNFSClusters())
	if err != nil {
		t.Fatal(err)
	}
	broker2, err := cloud.NewBroker(cl2)
	if err != nil {
		t.Fatal(err)
	}
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	ctl, err := NewController(s, cl2, broker2, Options{
		IntervalSeconds:  600,
		VMBudgetPerHour:  0.5, // ≈1 VM: far below demand
		FallbackTransfer: transfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		inputs[c] = ChannelInput{ArrivalRate: 0.2, Transfer: transfer}
	}
	ctl.Provision(0, inputs)
	recs := ctl.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].DemandScale >= 1 {
		t.Errorf("DemandScale = %v, want < 1 under a starvation budget", recs[0].DemandScale)
	}
	if recs[0].VMPlan.CostPerHour > 0.5+1e-9 {
		t.Errorf("plan cost %v exceeds budget", recs[0].VMPlan.CostPerHour)
	}
}

func TestControllerZeroTrafficKeepsZeroDemand(t *testing.T) {
	s, cl, ctl := testSystem(t, sim.ClientServer)
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		inputs[c] = ChannelInput{ArrivalRate: 0, Transfer: transfer}
	}
	ctl.Provision(0, inputs)
	recs := ctl.Records()
	if recs[0].TotalDemand != 0 {
		t.Errorf("TotalDemand = %v, want 0", recs[0].TotalDemand)
	}
	cl.Advance(3600)
	vmCost, _ := cl.Costs()
	if vmCost != 0 {
		t.Errorf("vm cost %v for an idle system", vmCost)
	}
}

func TestStorageRecomputeThreshold(t *testing.T) {
	s, cl, _ := testSystem(t, sim.ClientServer)
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		t.Fatal(err)
	}
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	ctl, err := NewController(s, cl, broker, Options{
		IntervalSeconds:        600,
		FallbackTransfer:       transfer,
		StorageChangeThreshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := func(rate float64) []ChannelInput {
		in := make([]ChannelInput, s.Channels())
		for c := range in {
			in[c] = ChannelInput{ArrivalRate: rate, Transfer: transfer}
		}
		return in
	}
	// First round always plans storage.
	ctl.Provision(0, inputs(0.2))
	first := ctl.Records()[0].StoragePlan
	if len(first.Placements) == 0 {
		t.Fatal("no initial storage plan")
	}
	// A small demand wiggle (<25%) keeps the previous plan object.
	ctl.Provision(600, inputs(0.21))
	second := ctl.Records()[1].StoragePlan
	if second.Utility != first.Utility {
		t.Errorf("storage replanned for a small change: %v vs %v", second.Utility, first.Utility)
	}
	// A large demand jump forces a recompute.
	ctl.Provision(1200, inputs(2.0))
	third := ctl.Records()[2].StoragePlan
	if third.Utility == first.Utility {
		t.Error("storage not replanned after a large demand change")
	}
}

func TestControllerHonorsBootLatencyOnIncrease(t *testing.T) {
	s, cl, ctl := testSystem(t, sim.ClientServer)
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		inputs[c] = ChannelInput{ArrivalRate: 0.2, Transfer: transfer}
	}
	ctl.Provision(0, inputs)
	// Immediately after provisioning, capacity has not landed (VMs boot for
	// ~25 s); after the boot latency it has.
	if got := s.TotalCloudCapacity(); got != 0 {
		t.Errorf("capacity %v before boot completes, want 0", got)
	}
	s.RunUntil(cl.BootLatency() + 1)
	if got := s.TotalCloudCapacity(); got <= 0 {
		t.Error("capacity missing after boot latency")
	}
}

func TestControllerRecoversFromVMFailures(t *testing.T) {
	s, cl, ctl := testSystem(t, sim.ClientServer)
	transfer := testutil.SequentialWithJumps(t, 5, 0.9, 0.2)
	inputs := make([]ChannelInput, s.Channels())
	for c := range inputs {
		inputs[c] = ChannelInput{ArrivalRate: 0.2, Transfer: transfer}
	}
	ctl.Provision(0, inputs)
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(300)
	before, err := cl.AllocatedVMs("standard")
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Skip("no standard VMs allocated in this scenario")
	}
	// Kill everything mid-interval; the next round's absolute SLA targets
	// must restore the fleet.
	if _, err := cl.FailVMs(s.Now(), "standard", before); err != nil {
		t.Fatal(err)
	}
	if got, _ := cl.AllocatedVMs("standard"); got != 0 {
		t.Fatalf("failure did not clear allocation: %d", got)
	}
	s.RunUntil(2 * 600) // past the next provisioning round
	after, err := cl.AllocatedVMs("standard")
	if err != nil {
		t.Fatal(err)
	}
	if after == 0 {
		t.Error("controller did not restore the failed VMs on the next round")
	}
}
