package core

import (
	"fmt"
)

// Predictor forecasts a channel's next-interval arrival rate from the
// history of observed per-interval rates (oldest first, most recent last).
//
// The paper provisions with the last interval's observation and notes that
// "more accurate prediction methods based on historical data collected over
// more intervals can be applied" as future work — this interface is that
// extension point. All implementations must be deterministic.
type Predictor interface {
	// Predict returns the forecast arrival rate for the next interval.
	// history is never empty.
	Predict(history []float64) float64
}

// LastInterval is the paper's predictor: next interval's rate equals the
// rate just observed (Sec. V-B).
type LastInterval struct{}

// Predict implements Predictor.
func (LastInterval) Predict(history []float64) float64 {
	return history[len(history)-1]
}

// EWMA forecasts with an exponentially weighted moving average:
// f ← α·observed + (1−α)·f. Smooths arrival noise at the cost of lagging
// genuine ramps like flash crowds.
type EWMA struct {
	// Alpha is the smoothing weight in (0, 1]; 1 degenerates to
	// LastInterval.
	Alpha float64
}

// Validate checks the smoothing weight.
func (e EWMA) Validate() error {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return fmt.Errorf("core: EWMA alpha %v outside (0,1]", e.Alpha)
	}
	return nil
}

// Predict implements Predictor.
func (e EWMA) Predict(history []float64) float64 {
	f := history[0]
	for _, x := range history[1:] {
		f = e.Alpha*x + (1-e.Alpha)*f
	}
	return f
}

// PeakOfWindow forecasts the maximum over the trailing window — a
// conservative rule that keeps capacity at the recent peak, trading rental
// cost for flash-crowd robustness.
type PeakOfWindow struct {
	// Window is the number of trailing intervals considered; ≤0 means all.
	Window int
}

// Predict implements Predictor.
func (p PeakOfWindow) Predict(history []float64) float64 {
	start := 0
	if p.Window > 0 && len(history) > p.Window {
		start = len(history) - p.Window
	}
	peak := history[start]
	for _, x := range history[start+1:] {
		if x > peak {
			peak = x
		}
	}
	return peak
}

// DiurnalMemory forecasts with the observation one period ago (e.g. 24
// intervals for hourly provisioning over a daily pattern), falling back to
// the last interval until a full period of history exists. It exploits the
// strong day-over-day repetition of VoD demand.
type DiurnalMemory struct {
	// Period is the number of intervals per cycle; must be positive.
	Period int
}

// Validate checks the period.
func (d DiurnalMemory) Validate() error {
	if d.Period <= 0 {
		return fmt.Errorf("core: diurnal period %d must be positive", d.Period)
	}
	return nil
}

// Predict implements Predictor.
func (d DiurnalMemory) Predict(history []float64) float64 {
	// The next interval is one period after history index len−Period.
	idx := len(history) - d.Period
	if idx < 0 {
		return history[len(history)-1]
	}
	// Blend the same-time-yesterday observation with the latest one so a
	// day-over-day trend shift is not ignored entirely.
	return 0.7*history[idx] + 0.3*history[len(history)-1]
}
