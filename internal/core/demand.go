package core

import (
	"fmt"

	"cloudmedia/internal/p2p"
	"cloudmedia/internal/provision"
	"cloudmedia/internal/queueing"
)

// ChannelInput bundles one channel's per-interval statistics: everything
// the demand derivation needs.
type ChannelInput struct {
	ArrivalRate float64                 // Λ(c), users/s
	Transfer    queueing.TransferMatrix // P(c), estimated or prior
	MeanUplink  float64                 // u, bytes/s (ignored in client-server mode)
}

// ChannelDemand is the derived demand for one channel.
type ChannelDemand struct {
	Equilibrium queueing.Equilibrium
	// CloudDemand[i] is Δ(c,i) in bytes/s: full capacity in client-server
	// mode, the post-peer residual in P2P mode.
	CloudDemand []float64
	// PeerSupply[i] is Γ(c,i) (zero in client-server mode).
	PeerSupply []float64
}

// DeriveDemand runs the Sec. IV analysis for one channel. p2pMode selects
// whether peer supply is subtracted. maxServers ≤ 0 uses the package
// default.
func DeriveDemand(cfg queueing.Config, in ChannelInput, p2pMode bool, maxServers int) (ChannelDemand, error) {
	if in.ArrivalRate < 0 {
		return ChannelDemand{}, fmt.Errorf("core: negative arrival rate %v", in.ArrivalRate)
	}
	eq, err := queueing.Solve(cfg, in.Transfer, in.ArrivalRate, maxServers)
	if err != nil {
		return ChannelDemand{}, fmt.Errorf("core: demand analysis: %w", err)
	}
	out := ChannelDemand{
		Equilibrium: eq,
		CloudDemand: make([]float64, cfg.Chunks),
		PeerSupply:  make([]float64, cfg.Chunks),
	}
	if !p2pMode || in.MeanUplink <= 0 {
		copy(out.CloudDemand, eq.Capacity)
		return out, nil
	}
	res, err := p2p.Solve(p2p.Analysis{
		Equilibrium: eq,
		Transfer:    in.Transfer,
		PeerUpload:  in.MeanUplink,
	})
	if err != nil {
		return ChannelDemand{}, fmt.Errorf("core: peer supply analysis: %w", err)
	}
	copy(out.CloudDemand, res.CloudDemand)
	copy(out.PeerSupply, res.PeerSupply)
	return out, nil
}

// FlattenDemands converts per-channel demands into the flat chunk-demand
// list the provisioning heuristics consume.
func FlattenDemands(demands []ChannelDemand) []provision.ChunkDemand {
	return FlattenDemandsInto(nil, demands)
}

// FlattenDemandsInto is FlattenDemands appending into a reused scratch
// buffer: dst is truncated and refilled, growing only when the demand set
// outgrows its capacity, so a controller that flattens every interval
// allocates nothing in steady state. Safe to reuse across rounds because
// no planner retains the request's demand slice (Greedy copies before
// sorting, Lookahead/StaticPeak copy their per-chunk maxima).
//
//cloudmedia:hotpath
func FlattenDemandsInto(dst []provision.ChunkDemand, demands []ChannelDemand) []provision.ChunkDemand {
	dst = dst[:0]
	for c, d := range demands {
		for i, delta := range d.CloudDemand {
			dst = append(dst, provision.ChunkDemand{Channel: c, Chunk: i, Demand: delta})
		}
	}
	return dst
}
