// Package tracker implements the CloudMedia tracking server (Fig. 3 and
// Sec. V-B): per-channel peer lists with chunk-availability bitmaps,
// chunk-rareness ranking for rarest-first scheduling, and the cloud
// redirection handshake — when peer supply is insufficient the tracker
// returns a 3-tuple ⟨entry-point address, port list, ticket⟩ whose ticket
// the cloud entry point verifies before forwarding chunk requests to VMs.
//
// Tickets are HMAC-SHA256 tokens over (channel, chunk, peer, expiry),
// issued by the tracker and verified by package transport's entry points;
// both sides share the secret out of band, standing in for the paper's SLA
// credential exchange.
package tracker

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PeerID identifies a peer in the overlay.
type PeerID uint64

// EntryPoint is one public access address of the cloud infrastructure.
type EntryPoint struct {
	Addr  string // host:port of the entry point
	Ports []int  // forwarding ports available behind it
}

// CloudGrant is the tracker's redirection 3-tuple of Sec. V-B.
type CloudGrant struct {
	Entry  EntryPoint
	Ticket string // HMAC ticket the entry point verifies
}

// Errors returned by ticket verification and lookups.
var (
	ErrBadTicket      = errors.New("tracker: invalid ticket")
	ErrExpiredTicket  = errors.New("tracker: expired ticket")
	ErrUnknownChannel = errors.New("tracker: unknown channel")
	ErrUnknownPeer    = errors.New("tracker: unknown peer")
	ErrNoEntryPoints  = errors.New("tracker: no cloud entry points configured")
)

// peerState is one peer's registration in a channel.
type peerState struct {
	bitmap []bool
	owned  int
}

// channelIndex is the tracker's view of one channel.
type channelIndex struct {
	peers  map[PeerID]*peerState
	owners []int // per-chunk replica counts
}

// Tracker maintains the overlay metadata for all channels. All methods are
// safe for concurrent use.
type Tracker struct {
	mu sync.Mutex

	chunks   int
	channels map[int]*channelIndex
	entries  []EntryPoint
	secret   []byte
	ticketed uint64 // count of cloud grants issued (statistics)
}

// New creates a tracker for channels of `chunks` chunks each, with the
// given cloud entry points and HMAC secret.
func New(chunks int, entries []EntryPoint, secret []byte) (*Tracker, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("tracker: non-positive chunk count %d", chunks)
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("tracker: empty ticket secret")
	}
	for i, e := range entries {
		if e.Addr == "" {
			return nil, fmt.Errorf("tracker: entry point %d has empty address", i)
		}
	}
	return &Tracker{
		chunks:   chunks,
		channels: make(map[int]*channelIndex),
		entries:  entries,
		secret:   append([]byte(nil), secret...),
	}, nil
}

// Join registers a peer in a channel with an empty bitmap. Re-joining
// resets the peer's bitmap.
func (t *Tracker) Join(channel int, peer PeerID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := t.channel(channel)
	if old, ok := ch.peers[peer]; ok {
		for i, has := range old.bitmap {
			if has {
				ch.owners[i]--
			}
		}
	}
	ch.peers[peer] = &peerState{bitmap: make([]bool, t.chunks)}
}

// Leave removes a peer and its chunk replicas from the channel.
func (t *Tracker) Leave(channel int, peer PeerID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.channels[channel]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownChannel, channel)
	}
	st, ok := ch.peers[peer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, peer)
	}
	for i, has := range st.bitmap {
		if has {
			ch.owners[i]--
		}
	}
	delete(ch.peers, peer)
	return nil
}

// Announce records that a peer now buffers a chunk (the periodic bitmap
// exchange of mesh-pull P2P).
func (t *Tracker) Announce(channel int, peer PeerID, chunk int) error {
	if chunk < 0 || chunk >= t.chunks {
		return fmt.Errorf("tracker: chunk %d outside [0,%d)", chunk, t.chunks)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.channels[channel]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownChannel, channel)
	}
	st, ok := ch.peers[peer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, peer)
	}
	if !st.bitmap[chunk] {
		st.bitmap[chunk] = true
		st.owned++
		ch.owners[chunk]++
	}
	return nil
}

// Peers returns the number of peers registered in the channel.
func (t *Tracker) Peers(channel int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ch, ok := t.channels[channel]; ok {
		return len(ch.peers)
	}
	return 0
}

// Owners returns a copy of the per-chunk replica counts — the rareness
// information rarest-first scheduling consumes.
func (t *Tracker) Owners(channel int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, t.chunks)
	if ch, ok := t.channels[channel]; ok {
		copy(out, ch.owners)
	}
	return out
}

// RarestOrder returns the chunk indices sorted by rising replica count.
func (t *Tracker) RarestOrder(channel int) []int {
	owners := t.Owners(channel)
	order := make([]int, len(owners))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return owners[order[a]] < owners[order[b]]
	})
	return order
}

// Suppliers returns up to max peers that buffer the chunk, deterministic
// order (by peer ID) so lookups are reproducible.
func (t *Tracker) Suppliers(channel, chunk int, max int) ([]PeerID, error) {
	if chunk < 0 || chunk >= t.chunks {
		return nil, fmt.Errorf("tracker: chunk %d outside [0,%d)", chunk, t.chunks)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.channels[channel]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownChannel, channel)
	}
	var ids []PeerID
	for id, st := range ch.peers {
		if st.bitmap[chunk] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if max > 0 && len(ids) > max {
		ids = ids[:max]
	}
	return ids, nil
}

// Lookup implements the Sec. V-B handshake: it returns peers holding the
// chunk if at least minPeers are available, and otherwise a CloudGrant
// redirecting the requester to a cloud entry point with a signed ticket
// valid until `expiry` (caller-defined clock, e.g. simulated seconds or a
// Unix timestamp).
func (t *Tracker) Lookup(channel, chunk int, requester PeerID, minPeers, maxPeers int, expiry uint64) ([]PeerID, *CloudGrant, error) {
	peers, err := t.Suppliers(channel, chunk, maxPeers+1)
	if err != nil {
		return nil, nil, err
	}
	// The requester cannot supply itself.
	filtered := peers[:0]
	for _, p := range peers {
		if p != requester {
			filtered = append(filtered, p)
		}
	}
	if maxPeers > 0 && len(filtered) > maxPeers {
		filtered = filtered[:maxPeers]
	}
	if len(filtered) >= minPeers {
		return filtered, nil, nil
	}
	grant, err := t.grant(channel, chunk, requester, expiry)
	if err != nil {
		return nil, nil, err
	}
	return filtered, grant, nil
}

// grant issues a CloudGrant for the requester.
func (t *Tracker) grant(channel, chunk int, requester PeerID, expiry uint64) (*CloudGrant, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) == 0 {
		return nil, ErrNoEntryPoints
	}
	entry := t.entries[int(t.ticketed)%len(t.entries)] // round-robin
	t.ticketed++
	return &CloudGrant{
		Entry:  entry,
		Ticket: signTicket(t.secret, channel, chunk, requester, expiry),
	}, nil
}

// GrantsIssued returns the number of cloud redirections so far — the
// "insufficient peer supply" statistic.
func (t *Tracker) GrantsIssued() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ticketed
}

// VerifyTicket checks a ticket for (channel, chunk, requester) against the
// shared secret and the caller's current clock. The entry points call this
// before port-forwarding a request to a VM.
func (t *Tracker) VerifyTicket(ticket string, channel, chunk int, requester PeerID, now uint64) error {
	return VerifyTicket(t.secret, ticket, channel, chunk, requester, now)
}

// signTicket builds "base64(expiry)|base64(hmac)" over the request tuple.
func signTicket(secret []byte, channel, chunk int, requester PeerID, expiry uint64) string {
	mac := hmac.New(sha256.New, secret)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(channel))
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(chunk))
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(requester))
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], expiry)
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], expiry)
	return base64.RawURLEncoding.EncodeToString(buf[:]) + "." +
		base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}

// VerifyTicket validates a ticket produced by signTicket with the same
// secret, for the same tuple, and not yet expired at `now`.
func VerifyTicket(secret []byte, ticket string, channel, chunk int, requester PeerID, now uint64) error {
	var expiryPart, macPart string
	for i := 0; i < len(ticket); i++ {
		if ticket[i] == '.' {
			expiryPart, macPart = ticket[:i], ticket[i+1:]
			break
		}
	}
	if expiryPart == "" || macPart == "" {
		return ErrBadTicket
	}
	rawExpiry, err := base64.RawURLEncoding.DecodeString(expiryPart)
	if err != nil || len(rawExpiry) != 8 {
		return ErrBadTicket
	}
	expiry := binary.BigEndian.Uint64(rawExpiry)
	want := signTicket(secret, channel, chunk, requester, expiry)
	if !hmac.Equal([]byte(want), []byte(ticket)) {
		return ErrBadTicket
	}
	if now > expiry {
		return ErrExpiredTicket
	}
	return nil
}

// channel returns (creating if needed) the index for a channel.
// Caller holds t.mu.
func (t *Tracker) channel(id int) *channelIndex {
	ch, ok := t.channels[id]
	if !ok {
		ch = &channelIndex{
			peers:  make(map[PeerID]*peerState),
			owners: make([]int, t.chunks),
		}
		t.channels[id] = ch
	}
	return ch
}
