package tracker

import (
	"errors"
	"testing"
)

func newTestTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := New(5, []EntryPoint{
		{Addr: "10.0.0.1:9000", Ports: []int{9001, 9002}},
		{Addr: "10.0.0.2:9000", Ports: []int{9001}},
	}, []byte("test-secret"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, []byte("s")); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := New(3, nil, nil); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := New(3, []EntryPoint{{}}, []byte("s")); err == nil {
		t.Error("empty entry address accepted")
	}
}

func TestJoinAnnounceLeave(t *testing.T) {
	tr := newTestTracker(t)
	tr.Join(0, 1)
	tr.Join(0, 2)
	if got := tr.Peers(0); got != 2 {
		t.Fatalf("Peers = %d, want 2", got)
	}
	if err := tr.Announce(0, 1, 3); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if err := tr.Announce(0, 1, 3); err != nil {
		t.Fatalf("repeat Announce: %v", err)
	}
	owners := tr.Owners(0)
	if owners[3] != 1 {
		t.Errorf("owners[3] = %d, want 1 (announce is idempotent)", owners[3])
	}
	if err := tr.Leave(0, 1); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := tr.Owners(0)[3]; got != 0 {
		t.Errorf("owners[3] after leave = %d, want 0", got)
	}
	if got := tr.Peers(0); got != 1 {
		t.Errorf("Peers = %d, want 1", got)
	}
}

func TestRejoinResetsBitmap(t *testing.T) {
	tr := newTestTracker(t)
	tr.Join(0, 7)
	if err := tr.Announce(0, 7, 2); err != nil {
		t.Fatal(err)
	}
	tr.Join(0, 7) // rejoin
	if got := tr.Owners(0)[2]; got != 0 {
		t.Errorf("owners[2] after rejoin = %d, want 0", got)
	}
}

func TestAnnounceErrors(t *testing.T) {
	tr := newTestTracker(t)
	if err := tr.Announce(0, 1, 0); !errors.Is(err, ErrUnknownChannel) {
		t.Errorf("unknown channel: %v", err)
	}
	tr.Join(0, 1)
	if err := tr.Announce(0, 99, 0); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("unknown peer: %v", err)
	}
	if err := tr.Announce(0, 1, 9); err == nil {
		t.Error("chunk out of range accepted")
	}
	if err := tr.Leave(3, 1); !errors.Is(err, ErrUnknownChannel) {
		t.Errorf("leave unknown channel: %v", err)
	}
	if err := tr.Leave(0, 42); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("leave unknown peer: %v", err)
	}
}

func TestRarestOrder(t *testing.T) {
	tr := newTestTracker(t)
	for p := PeerID(1); p <= 4; p++ {
		tr.Join(0, p)
	}
	// chunk 0: 3 owners; chunk 1: 1; chunk 2: 2; chunks 3,4: 0.
	for _, p := range []PeerID{1, 2, 3} {
		if err := tr.Announce(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Announce(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, p := range []PeerID{2, 3} {
		if err := tr.Announce(0, p, 2); err != nil {
			t.Fatal(err)
		}
	}
	order := tr.RarestOrder(0)
	// Rarest first: chunks 3,4 (0 owners), then 1, then 2, then 0.
	if order[2] != 1 || order[3] != 2 || order[4] != 0 {
		t.Errorf("RarestOrder = %v", order)
	}
}

func TestSuppliersDeterministicAndBounded(t *testing.T) {
	tr := newTestTracker(t)
	for p := PeerID(1); p <= 5; p++ {
		tr.Join(0, p)
		if err := tr.Announce(0, p, 2); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Suppliers(0, 2, 3)
	if err != nil {
		t.Fatalf("Suppliers: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Suppliers = %v, want [1 2 3]", got)
	}
	if _, err := tr.Suppliers(0, 9, 3); err == nil {
		t.Error("chunk out of range accepted")
	}
	if _, err := tr.Suppliers(9, 0, 3); !errors.Is(err, ErrUnknownChannel) {
		t.Errorf("unknown channel: %v", err)
	}
}

func TestLookupReturnsPeersWhenSufficient(t *testing.T) {
	tr := newTestTracker(t)
	for p := PeerID(1); p <= 3; p++ {
		tr.Join(0, p)
		if err := tr.Announce(0, p, 1); err != nil {
			t.Fatal(err)
		}
	}
	peers, grant, err := tr.Lookup(0, 1, 9, 2, 5, 1000)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if grant != nil {
		t.Error("grant issued despite sufficient peers")
	}
	if len(peers) != 3 {
		t.Errorf("peers = %v", peers)
	}
}

func TestLookupExcludesRequester(t *testing.T) {
	tr := newTestTracker(t)
	tr.Join(0, 1)
	if err := tr.Announce(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	peers, grant, err := tr.Lookup(0, 1, 1, 1, 5, 1000)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(peers) != 0 {
		t.Errorf("requester offered itself: %v", peers)
	}
	if grant == nil {
		t.Fatal("expected a cloud grant")
	}
}

func TestLookupGrantsCloudOnShortage(t *testing.T) {
	tr := newTestTracker(t)
	tr.Join(0, 1)
	peers, grant, err := tr.Lookup(0, 3, 1, 1, 5, 500)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(peers) != 0 || grant == nil {
		t.Fatalf("want cloud grant, got peers=%v grant=%v", peers, grant)
	}
	if grant.Entry.Addr == "" || grant.Ticket == "" {
		t.Errorf("incomplete grant: %+v", grant)
	}
	// The ticket validates for the exact tuple and clock.
	if err := tr.VerifyTicket(grant.Ticket, 0, 3, 1, 400); err != nil {
		t.Errorf("VerifyTicket: %v", err)
	}
	if tr.GrantsIssued() != 1 {
		t.Errorf("GrantsIssued = %d", tr.GrantsIssued())
	}
}

func TestGrantsRoundRobinEntryPoints(t *testing.T) {
	tr := newTestTracker(t)
	tr.Join(0, 1)
	g1, err := tr.grant(0, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tr.grant(0, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Entry.Addr == g2.Entry.Addr {
		t.Errorf("entry points not rotated: %v, %v", g1.Entry.Addr, g2.Entry.Addr)
	}
}

func TestTicketRejection(t *testing.T) {
	secret := []byte("k")
	ticket := signTicket(secret, 1, 2, 3, 100)

	if err := VerifyTicket(secret, ticket, 1, 2, 3, 50); err != nil {
		t.Fatalf("valid ticket rejected: %v", err)
	}
	if err := VerifyTicket(secret, ticket, 1, 2, 3, 101); !errors.Is(err, ErrExpiredTicket) {
		t.Errorf("expired: %v", err)
	}
	if err := VerifyTicket(secret, ticket, 1, 2, 4, 50); !errors.Is(err, ErrBadTicket) {
		t.Errorf("wrong peer: %v", err)
	}
	if err := VerifyTicket(secret, ticket, 0, 2, 3, 50); !errors.Is(err, ErrBadTicket) {
		t.Errorf("wrong channel: %v", err)
	}
	if err := VerifyTicket([]byte("other"), ticket, 1, 2, 3, 50); !errors.Is(err, ErrBadTicket) {
		t.Errorf("wrong secret: %v", err)
	}
	if err := VerifyTicket(secret, "garbage", 1, 2, 3, 50); !errors.Is(err, ErrBadTicket) {
		t.Errorf("malformed: %v", err)
	}
	// Tampered MAC: flip the final character to a different base64 symbol.
	last := ticket[len(ticket)-1]
	flip := byte('A')
	if last == 'A' {
		flip = 'B'
	}
	tampered := ticket[:len(ticket)-1] + string(flip)
	if err := VerifyTicket(secret, tampered, 1, 2, 3, 50); !errors.Is(err, ErrBadTicket) {
		t.Errorf("tampered: %v", err)
	}
}

func TestLookupNoEntryPoints(t *testing.T) {
	tr, err := New(3, nil, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	tr.Join(0, 1)
	if _, _, err := tr.Lookup(0, 0, 1, 1, 5, 10); !errors.Is(err, ErrNoEntryPoints) {
		t.Errorf("err = %v, want ErrNoEntryPoints", err)
	}
}

func TestOwnersUnknownChannelIsZero(t *testing.T) {
	tr := newTestTracker(t)
	owners := tr.Owners(42)
	for _, n := range owners {
		if n != 0 {
			t.Errorf("unknown channel owners = %v", owners)
		}
	}
}
