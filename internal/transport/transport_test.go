package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"cloudmedia/internal/tracker"
)

const testSecret = "transport-test-secret"

// newStack starts a tracker-verified VM server behind an entry point.
func newStack(t *testing.T) (*tracker.Tracker, *VMServer, *EntryPoint) {
	t.Helper()
	store := SyntheticStore{Channels: 2, Chunks: 4, ChunkSize: 4096}
	tr, err := tracker.New(4, nil, []byte(testSecret))
	if err != nil {
		t.Fatalf("tracker.New: %v", err)
	}
	verify := func(ticket string, channel, chunk int, peer uint64, expiry uint64) error {
		// The VM re-derives validity from the shared secret; "now" is the
		// request's own expiry minus one so unexpired tickets pass and the
		// expiry claim is still covered by the MAC.
		return tracker.VerifyTicket([]byte(testSecret), ticket, channel, chunk, tracker.PeerID(peer), expiry-1)
	}
	vm, err := NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		t.Fatalf("NewVMServer: %v", err)
	}
	t.Cleanup(func() { _ = vm.Close() })
	ep, err := NewEntryPoint("127.0.0.1:0", []string{vm.Addr()})
	if err != nil {
		t.Fatalf("NewEntryPoint: %v", err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	return tr, vm, ep
}

// ticketFor obtains a genuine tracker-issued ticket for the tuple.
func ticketFor(channel, chunk int, peer uint64, expiry uint64) string {
	tr, err := tracker.New(8, []tracker.EntryPoint{{Addr: "x"}}, []byte(testSecret))
	if err != nil {
		panic(err)
	}
	tr.Join(channel, tracker.PeerID(peer))
	_, grant, err := tr.Lookup(channel, chunk, tracker.PeerID(peer), 1, 5, expiry)
	if err != nil {
		panic(err)
	}
	return grant.Ticket
}

func TestFetchThroughEntryPoint(t *testing.T) {
	_, vm, ep := newStack(t)
	ticket := ticketFor(1, 2, 77, 1000)
	got, err := FetchChunk(ep.Addr(), 1, 2, 77, 1000, ticket)
	if err != nil {
		t.Fatalf("FetchChunk: %v", err)
	}
	want, err := SyntheticStore{Channels: 2, Chunks: 4, ChunkSize: 4096}.ChunkData(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("payload mismatch through entry point")
	}
	// Direct-to-VM fetch works too.
	got, err = FetchChunk(vm.Addr(), 1, 2, 77, 1000, ticket)
	if err != nil {
		t.Fatalf("direct FetchChunk: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("payload mismatch direct")
	}
}

func TestFetchRejectsBadTicket(t *testing.T) {
	_, _, ep := newStack(t)
	if _, err := FetchChunk(ep.Addr(), 1, 2, 77, 1000, "forged"); !errors.Is(err, ErrBadTicket) {
		t.Errorf("err = %v, want ErrBadTicket", err)
	}
	// A ticket for a different chunk must not unlock this one.
	other := ticketFor(1, 3, 77, 1000)
	if _, err := FetchChunk(ep.Addr(), 1, 2, 77, 1000, other); !errors.Is(err, ErrBadTicket) {
		t.Errorf("cross-chunk ticket: err = %v, want ErrBadTicket", err)
	}
}

func TestFetchUnknownChunk(t *testing.T) {
	_, _, ep := newStack(t)
	// Channel 7 is outside the 2-channel store but the ticket is genuine.
	ticket := ticketFor(7, 1, 5, 1000)
	if _, err := FetchChunk(ep.Addr(), 7, 1, 5, 1000, ticket); !errors.Is(err, ErrUnknownChunk) {
		t.Errorf("err = %v, want ErrUnknownChunk", err)
	}
}

func TestConcurrentFetches(t *testing.T) {
	_, _, ep := newStack(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		chunk := i % 4
		go func() {
			defer wg.Done()
			ticket := ticketFor(0, chunk, 9, 1000)
			data, err := FetchChunk(ep.Addr(), 0, chunk, 9, 1000, ticket)
			if err != nil {
				errs <- err
				return
			}
			if len(data) != 4096 {
				errs <- errors.New("short payload")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent fetch: %v", err)
	}
}

func TestEntryPointRoundRobin(t *testing.T) {
	storeA := SyntheticStore{Channels: 1, Chunks: 1, ChunkSize: 8}
	// Second "VM" holds a different store so the rotation is observable.
	storeB := SyntheticStore{Channels: 1, Chunks: 1, ChunkSize: 16}
	verify := func(string, int, int, uint64, uint64) error { return nil }
	vmA, err := NewVMServer("127.0.0.1:0", storeA, verify)
	if err != nil {
		t.Fatal(err)
	}
	defer vmA.Close()
	vmB, err := NewVMServer("127.0.0.1:0", storeB, verify)
	if err != nil {
		t.Fatal(err)
	}
	defer vmB.Close()
	ep, err := NewEntryPoint("127.0.0.1:0", []string{vmA.Addr(), vmB.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	sizes := map[int]bool{}
	for i := 0; i < 4; i++ {
		data, err := FetchChunk(ep.Addr(), 0, 0, 1, 10, "any")
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		sizes[len(data)] = true
	}
	if !sizes[8] || !sizes[16] {
		t.Errorf("round-robin not observed: sizes %v", sizes)
	}
}

func TestEntryPointSetTargets(t *testing.T) {
	store := SyntheticStore{Channels: 1, Chunks: 1, ChunkSize: 8}
	verify := func(string, int, int, uint64, uint64) error { return nil }
	vm, err := NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	ep, err := NewEntryPoint("127.0.0.1:0", []string{"127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.SetTargets(nil); err == nil {
		t.Error("empty target set accepted")
	}
	if err := ep.SetTargets([]string{vm.Addr()}); err != nil {
		t.Fatalf("SetTargets: %v", err)
	}
	if _, err := FetchChunk(ep.Addr(), 0, 0, 1, 10, "any"); err != nil {
		t.Fatalf("fetch after retarget: %v", err)
	}
}

func TestServerValidation(t *testing.T) {
	store := SyntheticStore{Channels: 1, Chunks: 1, ChunkSize: 8}
	verify := func(string, int, int, uint64, uint64) error { return nil }
	if _, err := NewVMServer("127.0.0.1:0", nil, verify); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewVMServer("127.0.0.1:0", store, nil); err == nil {
		t.Error("nil verifier accepted")
	}
	if _, err := NewEntryPoint("127.0.0.1:0", nil); err == nil {
		t.Error("no targets accepted")
	}
}

func TestSyntheticStoreBounds(t *testing.T) {
	s := SyntheticStore{Channels: 2, Chunks: 3, ChunkSize: 10}
	if _, err := s.ChunkData(2, 0); err == nil {
		t.Error("channel out of range accepted")
	}
	if _, err := s.ChunkData(0, 3); err == nil {
		t.Error("chunk out of range accepted")
	}
	a, err := s.ChunkData(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ChunkData(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("distinct chunks should differ")
	}
	// Deterministic.
	a2, err := s.ChunkData(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, a2) {
		t.Error("store not deterministic")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	store := SyntheticStore{Channels: 1, Chunks: 1, ChunkSize: 8}
	verify := func(string, int, int, uint64, uint64) error { return nil }
	vm, err := NewVMServer("127.0.0.1:0", store, verify)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := vm.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
