// Package transport implements the data plane of Sec. V-B over real TCP:
// VM chunk servers that stream chunk bytes to peers, cloud entry points
// that verify tracker tickets and port-forward requests to VMs, and the
// client fetch call. In the paper this role is played by modified Apache
// servers behind port-forwarding entry points; here it is a compact binary
// protocol on net.Conn so the control plane (tracker tickets, entry-point
// rotation) can be exercised end to end in tests and demos.
//
// Wire format, request (client → entry point → VM):
//
//	magic      uint32  "CMED"
//	channel    uint32
//	chunk      uint32
//	peer       uint64
//	expiry     uint64
//	ticketLen  uint16
//	ticket     [ticketLen]byte
//
// Response (VM → client):
//
//	status     uint8   (0 = OK, 1 = bad ticket, 2 = unknown chunk)
//	length     uint32  (payload bytes, present only when status = 0)
//	payload    [length]byte
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const magic = 0x434d4544 // "CMED"

// Response status codes.
const (
	statusOK         = 0
	statusBadTicket  = 1
	statusUnknown    = 2
	maxTicketLen     = 512
	maxChunkPayload  = 64 << 20 // 64 MiB: far above any chunk in this system
	defaultIOTimeout = 10 * time.Second
)

// Errors surfaced to clients.
var (
	ErrBadTicket    = errors.New("transport: ticket rejected")
	ErrUnknownChunk = errors.New("transport: unknown chunk")
)

// ChunkStore provides chunk payloads to a VM server.
type ChunkStore interface {
	// ChunkData returns the payload of (channel, chunk) or an error if the
	// store does not hold it.
	ChunkData(channel, chunk int) ([]byte, error)
}

// TicketVerifier validates a tracker ticket for a request tuple.
type TicketVerifier func(ticket string, channel, chunk int, peer uint64, expiry uint64) error

// request is one parsed wire request.
type request struct {
	channel, chunk int
	peer           uint64
	expiry         uint64
	ticket         string
}

// readRequest parses a request from the connection.
func readRequest(r io.Reader) (request, error) {
	var head struct {
		Magic     uint32
		Channel   uint32
		Chunk     uint32
		Peer      uint64
		Expiry    uint64
		TicketLen uint16
	}
	if err := binary.Read(r, binary.BigEndian, &head); err != nil {
		return request{}, fmt.Errorf("transport: read header: %w", err)
	}
	if head.Magic != magic {
		return request{}, fmt.Errorf("transport: bad magic %#x", head.Magic)
	}
	if head.TicketLen > maxTicketLen {
		return request{}, fmt.Errorf("transport: ticket length %d too large", head.TicketLen)
	}
	ticket := make([]byte, head.TicketLen)
	if _, err := io.ReadFull(r, ticket); err != nil {
		return request{}, fmt.Errorf("transport: read ticket: %w", err)
	}
	return request{
		channel: int(head.Channel),
		chunk:   int(head.Chunk),
		peer:    head.Peer,
		expiry:  head.Expiry,
		ticket:  string(ticket),
	}, nil
}

// writeRequest serializes a request.
func writeRequest(w io.Writer, req request) error {
	head := struct {
		Magic     uint32
		Channel   uint32
		Chunk     uint32
		Peer      uint64
		Expiry    uint64
		TicketLen uint16
	}{magic, uint32(req.channel), uint32(req.chunk), req.peer, req.expiry, uint16(len(req.ticket))}
	if err := binary.Write(w, binary.BigEndian, head); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := io.WriteString(w, req.ticket); err != nil {
		return fmt.Errorf("transport: write ticket: %w", err)
	}
	return nil
}

// VMServer is one VM's streaming service: it answers chunk requests whose
// tickets verify.
type VMServer struct {
	store  ChunkStore
	verify TicketVerifier

	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

// NewVMServer starts a VM chunk server on addr (use "127.0.0.1:0" for an
// ephemeral test port).
func NewVMServer(addr string, store ChunkStore, verify TicketVerifier) (*VMServer, error) {
	if store == nil {
		return nil, fmt.Errorf("transport: nil chunk store")
	}
	if verify == nil {
		return nil, fmt.Errorf("transport: nil ticket verifier")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &VMServer{store: store, verify: verify, ln: ln}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's listen address.
func (s *VMServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight requests to finish.
func (s *VMServer) Close() error {
	var err error
	s.once.Do(func() {
		err = s.ln.Close()
		s.wg.Wait()
	})
	return err
}

func (s *VMServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *VMServer) handle(conn net.Conn) {
	//cloudmedia:allow noloss -- best-effort deadline; a dead conn fails the next read anyway
	_ = conn.SetDeadline(time.Now().Add(defaultIOTimeout))
	req, err := readRequest(conn)
	if err != nil {
		return
	}
	if err := s.verify(req.ticket, req.channel, req.chunk, req.peer, req.expiry); err != nil {
		//cloudmedia:allow noloss -- best-effort error reply; the peer is already being dropped
		_ = binary.Write(conn, binary.BigEndian, uint8(statusBadTicket))
		return
	}
	data, err := s.store.ChunkData(req.channel, req.chunk)
	if err != nil {
		//cloudmedia:allow noloss -- best-effort error reply; the peer is already being dropped
		_ = binary.Write(conn, binary.BigEndian, uint8(statusUnknown))
		return
	}
	if err := binary.Write(conn, binary.BigEndian, uint8(statusOK)); err != nil {
		return
	}
	if err := binary.Write(conn, binary.BigEndian, uint32(len(data))); err != nil {
		return
	}
	//cloudmedia:allow noloss -- final payload write; the client detects truncation against the length header
	_, _ = conn.Write(data)
}

// EntryPoint is a cloud access point that forwards client connections to
// VM servers round-robin — the port-forwarding technique of Sec. V-B. It
// performs no protocol inspection; tickets are verified by the VMs.
type EntryPoint struct {
	mu      sync.Mutex
	targets []string
	next    int

	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

// NewEntryPoint starts an entry point on addr forwarding to the given VM
// addresses.
func NewEntryPoint(addr string, targets []string) (*EntryPoint, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("transport: entry point needs at least one VM target")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &EntryPoint{targets: append([]string(nil), targets...), ln: ln}
	e.wg.Add(1)
	go e.serve()
	return e, nil
}

// Addr returns the entry point's listen address.
func (e *EntryPoint) Addr() string { return e.ln.Addr().String() }

// SetTargets replaces the forwarding set (the VM scheduler updates it as
// VMs launch and retire).
func (e *EntryPoint) SetTargets(targets []string) error {
	if len(targets) == 0 {
		return fmt.Errorf("transport: entry point needs at least one VM target")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.targets = append([]string(nil), targets...)
	e.next = 0
	return nil
}

// Close stops the entry point and waits for in-flight forwards.
func (e *EntryPoint) Close() error {
	var err error
	e.once.Do(func() {
		err = e.ln.Close()
		e.wg.Wait()
	})
	return err
}

func (e *EntryPoint) serve() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer conn.Close()
			e.forward(conn)
		}()
	}
}

func (e *EntryPoint) forward(client net.Conn) {
	e.mu.Lock()
	target := e.targets[e.next%len(e.targets)]
	e.next++
	e.mu.Unlock()

	vm, err := net.DialTimeout("tcp", target, defaultIOTimeout)
	if err != nil {
		return
	}
	defer vm.Close()
	//cloudmedia:allow noloss -- best-effort deadline; a dead conn fails the copy below anyway
	_ = client.SetDeadline(time.Now().Add(defaultIOTimeout))
	//cloudmedia:allow noloss -- best-effort deadline; a dead conn fails the copy below anyway
	_ = vm.SetDeadline(time.Now().Add(defaultIOTimeout))

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(vm, client) // request path
	}()
	//cloudmedia:allow noloss -- forwarder teardown: either side closing ends the copy, nothing to report
	_, _ = io.Copy(client, vm) // response path
	<-done
}

// FetchChunk requests one chunk through addr (an entry point or a VM
// directly) with the given ticket, returning the payload.
func FetchChunk(addr string, channel, chunk int, peer uint64, expiry uint64, ticket string) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, defaultIOTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	//cloudmedia:allow noloss -- best-effort deadline; a dead conn fails the request write anyway
	_ = conn.SetDeadline(time.Now().Add(defaultIOTimeout))
	if err := writeRequest(conn, request{
		channel: channel, chunk: chunk, peer: peer, expiry: expiry, ticket: ticket,
	}); err != nil {
		return nil, err
	}
	// Half-close the write side so io.Copy-based forwarders see EOF on the
	// request path and the response can flow back.
	if tcp, ok := conn.(*net.TCPConn); ok {
		//cloudmedia:allow noloss -- best-effort half-close; failure just delays the forwarder's EOF
		_ = tcp.CloseWrite()
	}
	var status uint8
	if err := binary.Read(conn, binary.BigEndian, &status); err != nil {
		return nil, fmt.Errorf("transport: read status: %w", err)
	}
	switch status {
	case statusOK:
	case statusBadTicket:
		return nil, ErrBadTicket
	case statusUnknown:
		return nil, ErrUnknownChunk
	default:
		return nil, fmt.Errorf("transport: unknown status %d", status)
	}
	var length uint32
	if err := binary.Read(conn, binary.BigEndian, &length); err != nil {
		return nil, fmt.Errorf("transport: read length: %w", err)
	}
	if length > maxChunkPayload {
		return nil, fmt.Errorf("transport: payload %d exceeds limit", length)
	}
	data := make([]byte, length)
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return data, nil
}

// SyntheticStore is a deterministic ChunkStore: chunk (c, i) is a repeated
// pattern derived from its identity, sized uniformly. It stands in for the
// NFS-backed video library in tests and demos.
type SyntheticStore struct {
	Channels  int
	Chunks    int
	ChunkSize int
}

// ChunkData implements ChunkStore.
func (s SyntheticStore) ChunkData(channel, chunk int) ([]byte, error) {
	if channel < 0 || channel >= s.Channels || chunk < 0 || chunk >= s.Chunks {
		return nil, fmt.Errorf("transport: chunk (%d,%d) outside store", channel, chunk)
	}
	data := make([]byte, s.ChunkSize)
	seed := byte(channel*31 + chunk*7 + 1)
	for i := range data {
		data[i] = seed + byte(i)
	}
	return data, nil
}
