package viewing

import (
	"testing"

	"cloudmedia/internal/mathx"
)

func TestSequential(t *testing.T) {
	p, err := Sequential(4, 0.8)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
	for i := 0; i < 3; i++ {
		if p[i][i+1] != 0.8 {
			t.Errorf("P[%d][%d] = %v, want 0.8", i, i+1, p[i][i+1])
		}
		if !mathx.ApproxEqual(p.DepartureProbability(i), 0.2, 1e-12) {
			t.Errorf("departure(%d) = %v, want 0.2", i, p.DepartureProbability(i))
		}
	}
	if p.DepartureProbability(3) != 1 {
		t.Errorf("last chunk departure = %v, want 1", p.DepartureProbability(3))
	}
}

func TestSequentialErrors(t *testing.T) {
	if _, err := Sequential(0, 0.5); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := Sequential(3, 1.5); err == nil {
		t.Error("cont > 1: want error")
	}
	if _, err := Sequential(3, -0.1); err == nil {
		t.Error("cont < 0: want error")
	}
}

func TestSequentialWithJumps(t *testing.T) {
	chunks, cont, jump := 10, 0.9, 1.0/3
	p, err := SequentialWithJumps(chunks, cont, jump)
	if err != nil {
		t.Fatalf("SequentialWithJumps: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
	// Every non-terminal row: departure probability exactly 1 − cont.
	for i := 0; i < chunks-1; i++ {
		if !mathx.ApproxEqual(p.DepartureProbability(i), 1-cont, 1e-9) {
			t.Errorf("departure(%d) = %v, want %v", i, p.DepartureProbability(i), 1-cont)
		}
	}
	// Sequential mass dominates any single jump target.
	if p[0][1] <= p[0][5] {
		t.Errorf("sequential move %v should exceed jump %v", p[0][1], p[0][5])
	}
	// Jump mass is uniform across non-self targets.
	if !mathx.ApproxEqual(p[0][5], cont*jump/float64(chunks-1), 1e-12) {
		t.Errorf("jump share = %v", p[0][5])
	}
	// No self-loops.
	for i := 0; i < chunks; i++ {
		if p[i][i] != 0 {
			t.Errorf("self loop at %d", i)
		}
	}
}

func TestSequentialWithJumpsSingleChunk(t *testing.T) {
	p, err := SequentialWithJumps(1, 0.9, 0.3)
	if err != nil {
		t.Fatalf("SequentialWithJumps: %v", err)
	}
	if p.DepartureProbability(0) != 1 {
		t.Error("single chunk should always depart")
	}
}

func TestSequentialWithJumpsErrors(t *testing.T) {
	if _, err := SequentialWithJumps(0, 0.5, 0.5); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := SequentialWithJumps(3, 2, 0.5); err == nil {
		t.Error("cont > 1: want error")
	}
	if _, err := SequentialWithJumps(3, 0.5, -1); err == nil {
		t.Error("jump < 0: want error")
	}
}

func TestDecayingRetention(t *testing.T) {
	p, err := DecayingRetention(5, 0.9, 0.8)
	if err != nil {
		t.Fatalf("DecayingRetention: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
	prev := 1.0
	for i := 0; i < 4; i++ {
		if p[i][i+1] >= prev {
			t.Errorf("continuation not decaying at %d: %v >= %v", i, p[i][i+1], prev)
		}
		prev = p[i][i+1]
	}
	if !mathx.ApproxEqual(p[1][2], 0.9*0.8, 1e-12) {
		t.Errorf("P[1][2] = %v, want 0.72", p[1][2])
	}
}

func TestDecayingRetentionErrors(t *testing.T) {
	if _, err := DecayingRetention(0, 0.9, 0.8); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := DecayingRetention(3, 0.9, 1.2); err == nil {
		t.Error("decay > 1: want error")
	}
}

func TestPaperDefault(t *testing.T) {
	p, err := PaperDefault(20)
	if err != nil {
		t.Fatalf("PaperDefault: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
	if !p.HasDeparture() {
		t.Error("paper default must admit departures")
	}
}
