// Package viewing builds and estimates the chunk-transfer probability
// matrices P(c) that drive the Jackson analysis.
//
// The builders encode viewing-behaviour families: strictly sequential
// watching, sequential watching with VCR jumps (the paper's trace has
// exponential 15-minute jump intervals, i.e. a per-chunk jump probability of
// roughly T₀/15 min), and early-abandonment profiles where retention decays
// along the video.
//
// The Estimator is the measurement half of Sec. V-B: the tracker feeds it
// observed arrivals and chunk-to-chunk transitions during an interval, and
// at the end of the interval it produces the (Λ, P) estimates used to
// provision the next interval.
package viewing
