package viewing

import (
	"math/rand"
	"testing"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/queueing"
)

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0); err == nil {
		t.Error("zero chunks: want error")
	}
	e, err := NewEstimator(5)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if e.Chunks() != 5 {
		t.Errorf("Chunks = %d, want 5", e.Chunks())
	}
}

func TestEstimatorArrivalRate(t *testing.T) {
	e, _ := NewEstimator(3)
	for i := 0; i < 360; i++ {
		e.RecordArrival()
	}
	rate, err := e.ArrivalRate(3600)
	if err != nil {
		t.Fatalf("ArrivalRate: %v", err)
	}
	if !mathx.ApproxEqual(rate, 0.1, 1e-12) {
		t.Errorf("rate = %v, want 0.1/s", rate)
	}
	if _, err := e.ArrivalRate(0); err == nil {
		t.Error("zero interval: want error")
	}
}

func TestEstimatorMatrixFromObservations(t *testing.T) {
	e, _ := NewEstimator(3)
	// Chunk 0: 6 transitions to 1, 2 to 2, 2 departures → [0, 0.6, 0.2].
	for i := 0; i < 6; i++ {
		mustRecord(t, e, 0, 1)
	}
	for i := 0; i < 2; i++ {
		mustRecord(t, e, 0, 2)
	}
	for i := 0; i < 2; i++ {
		mustRecord(t, e, 0, Departed)
	}
	p, err := e.Matrix(nil)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if !mathx.ApproxEqual(p[0][1], 0.6, 1e-12) || !mathx.ApproxEqual(p[0][2], 0.2, 1e-12) {
		t.Errorf("row 0 = %v", p[0])
	}
	if !mathx.ApproxEqual(p.DepartureProbability(0), 0.2, 1e-12) {
		t.Errorf("departure(0) = %v, want 0.2", p.DepartureProbability(0))
	}
	// Unobserved rows with nil fallback are all-departure.
	if p.DepartureProbability(1) != 1 {
		t.Errorf("unobserved row should depart, got %v", p.DepartureProbability(1))
	}
}

func TestEstimatorMatrixFallback(t *testing.T) {
	e, _ := NewEstimator(3)
	mustRecord(t, e, 0, 1)
	fallback, err := Sequential(3, 0.5)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	p, err := e.Matrix(fallback)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if p[0][1] != 1 {
		t.Errorf("observed row overridden: %v", p[0])
	}
	if p[1][2] != 0.5 {
		t.Errorf("fallback row not used: %v", p[1])
	}
}

func TestEstimatorMatrixFallbackErrors(t *testing.T) {
	e, _ := NewEstimator(3)
	if _, err := e.Matrix(queueing.NewTransferMatrix(2)); err == nil {
		t.Error("size mismatch: want error")
	}
	bad := queueing.TransferMatrix{{2, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	if _, err := e.Matrix(bad); err == nil {
		t.Error("invalid fallback: want error")
	}
}

func TestEstimatorRecordTransitionErrors(t *testing.T) {
	e, _ := NewEstimator(3)
	if err := e.RecordTransition(-1, 0); err == nil {
		t.Error("negative source: want error")
	}
	if err := e.RecordTransition(3, 0); err == nil {
		t.Error("source out of range: want error")
	}
	if err := e.RecordTransition(0, 3); err == nil {
		t.Error("destination out of range: want error")
	}
	if err := e.RecordTransition(0, -2); err == nil {
		t.Error("destination -2: want error")
	}
}

func TestEstimatorReset(t *testing.T) {
	e, _ := NewEstimator(2)
	e.RecordArrival()
	mustRecord(t, e, 0, 1)
	e.Reset()
	if e.Arrivals() != 0 {
		t.Error("arrivals not reset")
	}
	p, err := e.Matrix(nil)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if p[0][1] != 0 {
		t.Error("transitions not reset")
	}
}

// TestEstimatorRecoversTrueMatrix: feed transitions sampled from a known P
// and verify the estimate converges to it.
func TestEstimatorRecoversTrueMatrix(t *testing.T) {
	truth, err := SequentialWithJumps(6, 0.9, 1.0/3)
	if err != nil {
		t.Fatalf("SequentialWithJumps: %v", err)
	}
	e, _ := NewEstimator(6)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60000; trial++ {
		from := rng.Intn(6)
		u := rng.Float64()
		to := Departed
		for j := 0; j < 6; j++ {
			u -= truth[from][j]
			if u <= 0 {
				to = j
				break
			}
		}
		mustRecord(t, e, from, to)
	}
	got, err := e.Matrix(nil)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if diff := got[i][j] - truth[i][j]; diff > 0.03 || diff < -0.03 {
				t.Errorf("P[%d][%d]: est %v vs truth %v", i, j, got[i][j], truth[i][j])
			}
		}
	}
}

func mustRecord(t *testing.T, e *Estimator, from, to int) {
	t.Helper()
	if err := e.RecordTransition(from, to); err != nil {
		t.Fatalf("RecordTransition(%d,%d): %v", from, to, err)
	}
}
