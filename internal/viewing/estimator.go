package viewing

import (
	"fmt"

	"cloudmedia/internal/queueing"
)

// Departed is the sentinel destination passed to RecordTransition when a
// user leaves the channel after finishing a chunk.
const Departed = -1

// Estimator accumulates observed user behaviour in one channel over a
// provisioning interval and produces the (Λ, P) estimates the controller
// feeds into the queueing analysis for the next interval (Sec. V-B: "user
// arrival patterns in the previous time interval are used to predict the
// capacity demand in the next interval").
//
// Estimator is not safe for concurrent use; the simulator drives it from a
// single event loop, matching the single tracking server of the paper.
type Estimator struct {
	chunks      int
	arrivals    int
	transitions [][]int // transitions[i][j]: completed chunk i then fetched j
	departures  []int   // departures[i]: completed chunk i then left
}

// NewEstimator returns an estimator for a channel with the given chunk count.
func NewEstimator(chunks int) (*Estimator, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("viewing: non-positive chunk count %d", chunks)
	}
	e := &Estimator{chunks: chunks, departures: make([]int, chunks)}
	e.transitions = make([][]int, chunks)
	for i := range e.transitions {
		e.transitions[i] = make([]int, chunks)
	}
	return e, nil
}

// Chunks returns the channel's chunk count.
func (e *Estimator) Chunks() int { return e.chunks }

// Arrivals returns the number of arrivals recorded this interval.
func (e *Estimator) Arrivals() int { return e.arrivals }

// RecordArrival notes one external user arrival to the channel.
func (e *Estimator) RecordArrival() { e.arrivals++ }

// RecordTransition notes that a user finished downloading chunk `from` and
// proceeded to chunk `to` (or left, if to == Departed). Out-of-range indices
// return an error rather than panicking so a buggy feed cannot crash the
// controller.
func (e *Estimator) RecordTransition(from, to int) error {
	if from < 0 || from >= e.chunks {
		return fmt.Errorf("viewing: transition source %d outside [0,%d)", from, e.chunks)
	}
	if to == Departed {
		e.departures[from]++
		return nil
	}
	if to < 0 || to >= e.chunks {
		return fmt.Errorf("viewing: transition destination %d outside [0,%d)", to, e.chunks)
	}
	e.transitions[from][to]++
	return nil
}

// ArrivalRate returns the estimated Poisson arrival rate Λ over an interval
// of the given length in seconds.
func (e *Estimator) ArrivalRate(intervalSeconds float64) (float64, error) {
	if intervalSeconds <= 0 {
		return 0, fmt.Errorf("viewing: non-positive interval %v", intervalSeconds)
	}
	return float64(e.arrivals) / intervalSeconds, nil
}

// Matrix returns the empirical transfer matrix. Rows with no observed
// completions fall back to the corresponding row of fallback (which must be
// a valid matrix of the same size); with a nil fallback, unobserved rows are
// all-departure. This keeps cold chunks provisionable from the prior when
// an interval saw no traffic on them.
func (e *Estimator) Matrix(fallback queueing.TransferMatrix) (queueing.TransferMatrix, error) {
	if fallback != nil {
		if fallback.Size() != e.chunks {
			return nil, fmt.Errorf("viewing: fallback size %d != chunks %d", fallback.Size(), e.chunks)
		}
		if err := fallback.Validate(); err != nil {
			return nil, fmt.Errorf("viewing: fallback: %w", err)
		}
	}
	p := queueing.NewTransferMatrix(e.chunks)
	for i := 0; i < e.chunks; i++ {
		total := e.departures[i]
		for _, n := range e.transitions[i] {
			total += n
		}
		if total == 0 {
			if fallback != nil {
				copy(p[i], fallback[i])
			}
			continue
		}
		for j, n := range e.transitions[i] {
			p[i][j] = float64(n) / float64(total)
		}
	}
	return p, nil
}

// Reset clears all recorded observations, starting a new interval.
func (e *Estimator) Reset() {
	e.arrivals = 0
	for i := range e.transitions {
		for j := range e.transitions[i] {
			e.transitions[i][j] = 0
		}
		e.departures[i] = 0
	}
}
