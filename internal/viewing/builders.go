package viewing

import (
	"fmt"

	"cloudmedia/internal/queueing"
)

// Sequential returns a P where users watch chunks strictly in order,
// continuing from chunk i to i+1 with probability cont and otherwise
// leaving. The final chunk always departs.
func Sequential(chunks int, cont float64) (queueing.TransferMatrix, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("viewing: non-positive chunk count %d", chunks)
	}
	if cont < 0 || cont > 1 {
		return nil, fmt.Errorf("viewing: continuation probability %v outside [0,1]", cont)
	}
	p := queueing.NewTransferMatrix(chunks)
	for i := 0; i < chunks-1; i++ {
		p[i][i+1] = cont
	}
	return p, nil
}

// SequentialWithJumps models the paper's trace: after finishing a chunk a
// user continues to the next chunk with probability cont·(1−jump), jumps to
// a uniformly random other position with probability jump·cont, and leaves
// with probability 1−cont. With T₀ = 5 min chunks and exponential jump
// intervals of mean 15 min, jump ≈ 1/3.
func SequentialWithJumps(chunks int, cont, jump float64) (queueing.TransferMatrix, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("viewing: non-positive chunk count %d", chunks)
	}
	if cont < 0 || cont > 1 {
		return nil, fmt.Errorf("viewing: continuation probability %v outside [0,1]", cont)
	}
	if jump < 0 || jump > 1 {
		return nil, fmt.Errorf("viewing: jump probability %v outside [0,1]", jump)
	}
	p := queueing.NewTransferMatrix(chunks)
	if chunks == 1 {
		return p, nil
	}
	for i := 0; i < chunks; i++ {
		jumpShare := cont * jump / float64(chunks-1)
		for j := 0; j < chunks; j++ {
			if j == i {
				continue
			}
			p[i][j] = jumpShare
		}
		if i < chunks-1 {
			p[i][i+1] += cont * (1 - jump)
		}
		// The last chunk has no sequential successor; its (1−jump)·cont mass
		// departs, matching users who finish the video.
	}
	return p, nil
}

// DecayingRetention returns a sequential matrix whose continuation
// probability decays geometrically along the video: chunk i continues with
// probability cont·decay^i. This models the well-documented early
// abandonment of VoD sessions and produces the skewed per-chunk demand that
// makes the storage heuristic's ordering matter.
func DecayingRetention(chunks int, cont, decay float64) (queueing.TransferMatrix, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("viewing: non-positive chunk count %d", chunks)
	}
	if cont < 0 || cont > 1 || decay < 0 || decay > 1 {
		return nil, fmt.Errorf("viewing: cont=%v decay=%v outside [0,1]", cont, decay)
	}
	p := queueing.NewTransferMatrix(chunks)
	c := cont
	for i := 0; i < chunks-1; i++ {
		p[i][i+1] = c
		c *= decay
	}
	return p, nil
}

// PaperDefault returns the transfer matrix family used throughout the
// experiments: sequential viewing with VCR jumps matching the trace of
// Sec. VI-A (15-minute expected jump interval over 5-minute chunks, 90%
// per-chunk retention).
func PaperDefault(chunks int) (queueing.TransferMatrix, error) {
	return SequentialWithJumps(chunks, 0.9, 1.0/3)
}
