package sim

import (
	"testing"
)

func pacedConfig(t *testing.T) Config {
	t.Helper()
	cfg := smallConfig(t, P2P)
	cfg.Seed = 7
	return cfg
}

// The pacing hook fires once per control barrier, before state advances
// past the current instant, with nondecreasing barrier times bounded by
// the RunUntil target.
func TestPacerCalledPerBarrier(t *testing.T) {
	cfg := pacedConfig(t)
	var barriers []float64
	var s *Simulator
	cfg.Pacer = func(simNow float64) {
		if s.Now() >= simNow {
			t.Fatalf("pacer at %v called after state advanced to %v", simNow, s.Now())
		}
		barriers = append(barriers, simNow)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 600.0
	s.RunUntil(horizon)
	if len(barriers) == 0 {
		t.Fatal("pacer never called")
	}
	for i, b := range barriers {
		if b > horizon {
			t.Fatalf("barrier %v beyond the RunUntil target %v", b, horizon)
		}
		if i > 0 && b < barriers[i-1] {
			t.Fatalf("barriers went backwards: %v after %v", b, barriers[i-1])
		}
	}
	if last := barriers[len(barriers)-1]; last != horizon {
		t.Fatalf("final barrier %v, want the target %v", last, horizon)
	}
}

// A pacer that only observes must not change the run: same seed, same
// outcome with and without the hook.
func TestPacerDoesNotPerturbRun(t *testing.T) {
	run := func(withPacer bool) (int, float64) {
		cfg := pacedConfig(t)
		if withPacer {
			cfg.Pacer = func(float64) {}
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.RunUntil(3600)
		return s.TotalUsers(), s.CloudBytesServed()
	}
	users0, bytes0 := run(false)
	users1, bytes1 := run(true)
	if users0 != users1 || bytes0 != bytes1 {
		t.Fatalf("pacer perturbed the run: (%d, %v) vs (%d, %v)", users0, bytes0, users1, bytes1)
	}
}
