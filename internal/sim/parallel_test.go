package sim

import (
	"testing"

	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// multiChannelConfig widens smallConfig to enough channels to make the
// worker pool do real work.
func multiChannelConfig(t *testing.T, mode Mode, channels int) Config {
	t.Helper()
	cfg := smallConfig(t, mode)
	cfg.Workload.Channels = channels
	return cfg
}

type runOutcome struct {
	quality float64
	users   int
	bytes   float64
	uplinks []float64
}

// runWithWorkers drives a scenario with repeating control work (the
// shape of a provisioning controller) and returns every observable the
// Backend surface exposes.
func runWithWorkers(t *testing.T, cfg Config, workers int) runOutcome {
	t.Helper()
	cfg.Workers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < s.Channels(); c++ {
		for i := 0; i < cfg.Channel.Chunks; i++ {
			if err := s.SetCloudCapacity(c, i, 400e3); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A control-plane callback every 60 s, touching every channel like the
	// controller does at interval boundaries.
	if err := s.ScheduleRepeating(60, 60, func(now float64) {
		for c := 0; c < s.Channels(); c++ {
			if _, err := s.MeanUplink(c); err != nil {
				t.Error(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1800)
	out := runOutcome{
		quality: s.SampleQuality().Overall,
		users:   s.TotalUsers(),
		bytes:   s.CloudBytesServed(),
	}
	for c := 0; c < s.Channels(); c++ {
		u, err := s.MeanUplink(c)
		if err != nil {
			t.Fatal(err)
		}
		out.uplinks = append(out.uplinks, u)
	}
	return out
}

// TestParallelSteppingMatchesSerial: results must be bit-identical for
// every worker count — per-channel rng streams and engines mean the
// sharding changes wall time only. go test -race additionally verifies
// the workers share no state.
func TestParallelSteppingMatchesSerial(t *testing.T) {
	ensureParallelHost(t, 8) // resolve multi-worker configs to real pools on any host
	for _, mode := range []Mode{ClientServer, P2P} {
		cfg := multiChannelConfig(t, mode, 6)
		serial := runWithWorkers(t, cfg, 1)
		for _, workers := range []int{2, 4, 8} {
			parallel := runWithWorkers(t, cfg, workers)
			if serial.quality != parallel.quality || serial.users != parallel.users || serial.bytes != parallel.bytes {
				t.Errorf("%v workers=%d diverged from serial: %+v vs %+v", mode, workers, parallel, serial)
			}
			for c := range serial.uplinks {
				if serial.uplinks[c] != parallel.uplinks[c] {
					t.Errorf("%v workers=%d channel %d uplink %v != serial %v",
						mode, workers, c, parallel.uplinks[c], serial.uplinks[c])
				}
			}
		}
	}
}

// TestChannelStreamsIndependent: adding a channel must not perturb the
// existing channels' randomness (each channel derives its own stream from
// the seed, so scenarios grow without rewriting history).
func TestChannelStreamsIndependent(t *testing.T) {
	cfg2 := multiChannelConfig(t, ClientServer, 2)
	cfg3 := multiChannelConfig(t, ClientServer, 3)
	// Hold channel 0's arrival rate fixed across the two configs: the
	// base rate is aggregate and the Zipf weights renormalize with the
	// channel count, so pin a flat popularity and scale the base rate.
	for _, cfg := range []*Config{&cfg2, &cfg3} {
		cfg.Workload.ZipfExponent = 0
		cfg.Workload.BaseArrivalRate = 0.1 * float64(cfg.Workload.Channels)
	}
	run := func(cfg Config) int {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.RunUntil(600)
		n, err := s.Users(0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if a, b := run(cfg2), run(cfg3); a != b {
		t.Errorf("channel 0 population %d with 2 channels vs %d with 3: streams not independent", a, b)
	}
}

// TestRebalanceSteadyStateAllocs guards the rebalancePeers hot path: after
// warm-up, a rebalance pass over every channel must not allocate (the
// order scratch is reused across calls).
func TestRebalanceSteadyStateAllocs(t *testing.T) {
	cfg := multiChannelConfig(t, P2P, 4)
	cfg.Workers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(600) // warm-up: populations and pools in steady state
	allocs := testing.AllocsPerRun(50, func() {
		for _, ch := range s.channels {
			s.rebalancePeers(ch)
		}
	})
	if allocs != 0 {
		t.Errorf("rebalance pass allocates %.0f objects, want 0", allocs)
	}
}

// TestWorkersValidation: negative worker counts are rejected.
func TestWorkersValidation(t *testing.T) {
	cfg := smallConfig(t, ClientServer)
	cfg.Workers = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative Workers accepted")
	}
}

// BenchmarkRebalancePeers measures the P2P rebalance hot path in steady
// state; allocs/op is the guarded metric (the order scratch is reused
// across rebalances; TestRebalanceSteadyStateAllocs holds the hard bound).
func BenchmarkRebalancePeers(b *testing.B) {
	cfg := queueing.Config{
		Chunks:          8,
		PlaybackRate:    50e3,
		ChunkSeconds:    75,
		VMBandwidth:     1.25e6,
		EntryFirstChunk: 0.7,
	}
	transfer, err := viewing.SequentialWithJumps(cfg.Chunks, 0.9, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	wl := workload.Default()
	wl.Channels = 6
	wl.BaseArrivalRate = 1.2
	wl.BaseLevel = 1
	wl.FlashCrowds = nil
	s, err := New(Config{
		Mode:     P2P,
		Channel:  cfg,
		Workload: wl,
		Transfer: transfer,
		Seed:     7,
		Workers:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.RunUntil(1800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ch := range s.channels {
			s.rebalancePeers(ch)
		}
	}
}
