package sim

import (
	"testing"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// smallConfig returns a fast scenario: 2 channels of 5 chunks, 10-second
// chunks, steady arrivals, no flash crowds.
func smallConfig(t *testing.T, mode Mode) Config {
	t.Helper()
	chCfg := queueing.Config{
		Chunks:          5,
		PlaybackRate:    50e3,
		ChunkSeconds:    10,
		VMBandwidth:     250e3, // R = 5r: a dedicated server share downloads a chunk in 2 s
		EntryFirstChunk: 0.7,
	}
	transfer, err := viewing.Sequential(chCfg.Chunks, 0.9)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	wl := workload.Default()
	wl.Channels = 2
	wl.BaseArrivalRate = 0.2
	wl.BaseLevel = 1
	wl.FlashCrowds = nil
	wl.JumpMeanSeconds = 120
	return Config{
		Mode:     mode,
		Channel:  chCfg,
		Workload: wl,
		Transfer: transfer,
		Seed:     1,
	}
}

// provisionGenerously gives every pool ample cloud capacity.
func provisionGenerously(t *testing.T, s *Simulator) {
	t.Helper()
	for c := 0; c < s.Channels(); c++ {
		for i := 0; i < s.ChannelConfig().Chunks; i++ {
			if err := s.SetCloudCapacity(c, i, 100e6); err != nil {
				t.Fatalf("SetCloudCapacity: %v", err)
			}
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	cfg := smallConfig(t, ClientServer)
	cfg.Mode = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid mode: want error")
	}
	cfg = smallConfig(t, ClientServer)
	cfg.Transfer = queueing.NewTransferMatrix(3)
	if _, err := New(cfg); err == nil {
		t.Error("matrix size mismatch: want error")
	}
	cfg = smallConfig(t, ClientServer)
	cfg.RebalanceSeconds = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative rebalance: want error")
	}
}

func TestModeString(t *testing.T) {
	if ClientServer.String() != "client-server" || P2P.String() != "p2p" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestUsersArriveAndDepart(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	provisionGenerously(t, s)
	s.RunUntil(600)
	if s.TotalUsers() == 0 {
		t.Fatal("no users arrived in 10 minutes at 0.2 arrivals/s")
	}
	// Sessions are finite (~5 chunks × 10 s): population stays bounded.
	// Mean session ≈ 50 s → E[users] ≈ 0.2 × 50 = 10; far below arrivals.
	if got := s.TotalUsers(); got > 100 {
		t.Errorf("population %d looks unbounded", got)
	}
	est, err := s.Estimator(0)
	if err != nil {
		t.Fatal(err)
	}
	if rate, err := est.ArrivalRate(600); err != nil || rate == 0 {
		t.Errorf("estimator recorded no arrivals (rate %v, err %v)", rate, err)
	}
}

func TestGenerousCapacityGivesSmoothPlayback(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	provisionGenerously(t, s)
	s.RunUntil(900)
	q := s.SampleQuality()
	if q.Overall < 0.99 {
		t.Errorf("quality %v with generous capacity, want ≈1", q.Overall)
	}
}

func TestStarvedCapacityCausesStalls(t *testing.T) {
	cfg := smallConfig(t, ClientServer)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Give only a trickle: enough to start playback eventually, far below
	// the demand needed to sustain it.
	for c := 0; c < s.Channels(); c++ {
		for i := 0; i < cfg.Channel.Chunks; i++ {
			if err := s.SetCloudCapacity(c, i, cfg.Channel.PlaybackRate/4); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.RunUntil(900)
	if s.TotalUsers() == 0 {
		t.Skip("no users in starved run")
	}
	q := s.SampleQuality()
	if q.Overall > 0.9 {
		t.Errorf("quality %v under starvation, want well below 1", q.Overall)
	}
}

func TestCloudBytesServedTracksUsage(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	provisionGenerously(t, s)
	s.RunUntil(600)
	served := s.CloudBytesServed()
	if served <= 0 {
		t.Fatal("no cloud bytes served")
	}
	// Sanity: served bytes ≈ completed downloads × chunk size; bounded by
	// total users' possible consumption.
	var chBytes float64
	for c := 0; c < s.Channels(); c++ {
		v, err := s.ChannelCloudBytes(c)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Errorf("negative channel bytes %v", v)
		}
		chBytes += v
	}
	if !mathx.ApproxEqual(chBytes, served, 1e-6) {
		t.Errorf("per-channel bytes %v != total %v", chBytes, served)
	}
}

func TestP2PUsesLessCloudThanClientServer(t *testing.T) {
	run := func(mode Mode) float64 {
		cfg := smallConfig(t, mode)
		cfg.Workload.BaseArrivalRate = 0.5
		// Healthy peer uplinks: mean ≈ 1.2 × r.
		up, err := workload.UplinkForRatio(cfg.Channel.PlaybackRate, 1.2)
		if err != nil {
			t.Fatalf("UplinkForRatio: %v", err)
		}
		cfg.Workload.PeerUplink = up
		cfg.RebalanceSeconds = 5
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		provisionGenerously(t, s)
		s.RunUntil(1800)
		return s.CloudBytesServed()
	}
	cs := run(ClientServer)
	p2p := run(P2P)
	if p2p >= cs {
		t.Errorf("P2P cloud usage %v not below client-server %v", p2p, cs)
	}
	if p2p > 0.7*cs {
		t.Errorf("P2P should offload substantially: p2p=%v cs=%v", p2p, cs)
	}
}

func TestP2PQualityWithHealthyPeers(t *testing.T) {
	cfg := smallConfig(t, P2P)
	up, err := workload.UplinkForRatio(cfg.Channel.PlaybackRate, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload.PeerUplink = up
	cfg.RebalanceSeconds = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	provisionGenerously(t, s)
	s.RunUntil(900)
	q := s.SampleQuality()
	if q.Overall < 0.9 {
		t.Errorf("P2P quality %v, want ≥0.9", q.Overall)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int, float64) {
		s, err := New(smallConfig(t, P2P))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		provisionGenerously(t, s)
		s.RunUntil(600)
		return s.TotalUsers(), s.CloudBytesServed()
	}
	u1, b1 := run()
	u2, b2 := run()
	if u1 != u2 || b1 != b2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", u1, b1, u2, b2)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg1 := smallConfig(t, ClientServer)
	cfg2 := smallConfig(t, ClientServer)
	cfg2.Seed = 2
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, s1)
	provisionGenerously(t, s2)
	s1.RunUntil(600)
	s2.RunUntil(600)
	if s1.CloudBytesServed() == s2.CloudBytesServed() && s1.TotalUsers() == s2.TotalUsers() {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestAccessorBounds(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCloudCapacity(-1, 0, 1); err == nil {
		t.Error("negative channel: want error")
	}
	if err := s.SetCloudCapacity(0, 99, 1); err == nil {
		t.Error("chunk out of range: want error")
	}
	if err := s.SetCloudCapacity(0, 0, -1); err == nil {
		t.Error("negative capacity: want error")
	}
	if _, err := s.CloudCapacity(5); err == nil {
		t.Error("channel out of range: want error")
	}
	if _, err := s.Users(5); err == nil {
		t.Error("channel out of range: want error")
	}
	if _, err := s.MeanUplink(5); err == nil {
		t.Error("channel out of range: want error")
	}
	if _, err := s.Estimator(5); err == nil {
		t.Error("channel out of range: want error")
	}
	if _, err := s.ChannelCloudBytes(5); err == nil {
		t.Error("channel out of range: want error")
	}
}

func TestCloudCapacityAccounting(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCloudCapacity(0, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCloudCapacity(0, 1, 2e6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCloudCapacity(1, 0, 5e6); err != nil {
		t.Fatal(err)
	}
	got, err := s.CloudCapacity(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3e6 {
		t.Errorf("channel 0 capacity = %v, want 3e6", got)
	}
	if tot := s.TotalCloudCapacity(); tot != 8e6 {
		t.Errorf("total capacity = %v, want 8e6", tot)
	}
}

func TestQualityEmptySystem(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	q := s.SampleQuality()
	if q.Overall != 1 {
		t.Errorf("empty system quality = %v, want 1", q.Overall)
	}
	for c, v := range q.PerChannel {
		if v != 1 {
			t.Errorf("empty channel %d quality = %v, want 1", c, v)
		}
	}
}

func TestMeanUplinkWithinDistribution(t *testing.T) {
	cfg := smallConfig(t, P2P)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, s)
	s.RunUntil(600)
	for c := 0; c < s.Channels(); c++ {
		n, err := s.Users(c)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			continue
		}
		u, err := s.MeanUplink(c)
		if err != nil {
			t.Fatal(err)
		}
		if u < cfg.Workload.PeerUplink.Lo || u > cfg.Workload.PeerUplink.Hi {
			t.Errorf("mean uplink %v outside distribution bounds", u)
		}
	}
}

func TestScheduleRepeating(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	var ticks []float64
	if err := s.ScheduleRepeating(10, 20, func(now float64) { ticks = append(ticks, now) }); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleRepeating(0, 0, func(float64) {}); err == nil {
		t.Error("zero interval: want error")
	}
	s.RunUntil(55)
	if len(ticks) != 3 || ticks[0] != 10 || ticks[1] != 30 || ticks[2] != 50 {
		t.Errorf("ticks = %v, want [10 30 50]", ticks)
	}
}

func TestEstimatorFeedsTransitions(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, s)
	s.RunUntil(900)
	est, err := s.Estimator(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := est.Matrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential ground truth with jumps layered on: forward transitions
	// must carry observable mass.
	var forward float64
	for i := 0; i < 4; i++ {
		forward += p[i][i+1]
	}
	if forward == 0 {
		t.Error("no forward transitions observed")
	}
}

func TestPeerSchedulingString(t *testing.T) {
	if RarestFirst.String() != "rarest-first" || Proportional.String() != "proportional" {
		t.Error("scheduling strings")
	}
	if PeerScheduling(9).String() == "" {
		t.Error("unknown scheduling should still format")
	}
}

func TestPeerSchedulingValidation(t *testing.T) {
	cfg := smallConfig(t, P2P)
	cfg.Scheduling = PeerScheduling(42)
	if _, err := New(cfg); err == nil {
		t.Error("invalid scheduling accepted")
	}
}

func TestProportionalSchedulingRuns(t *testing.T) {
	run := func(sched PeerScheduling) (float64, float64) {
		cfg := smallConfig(t, P2P)
		cfg.Scheduling = sched
		cfg.RebalanceSeconds = 5
		up, err := workload.UplinkForRatio(cfg.Channel.PlaybackRate, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workload.PeerUplink = up
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%v): %v", sched, err)
		}
		provisionGenerously(t, s)
		s.RunUntil(1200)
		return s.CloudBytesServed(), s.SampleQuality().Overall
	}
	rarestBytes, rarestQ := run(RarestFirst)
	propBytes, propQ := run(Proportional)
	if rarestQ < 0.8 || propQ < 0.8 {
		t.Errorf("quality collapsed: rarest=%v proportional=%v", rarestQ, propQ)
	}
	// The two policies must actually allocate differently.
	if rarestBytes == propBytes {
		t.Error("schedulers produced byte-identical cloud usage (suspicious)")
	}
}
