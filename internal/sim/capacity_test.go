package sim

import (
	"testing"
)

// TestCloudCapacityCacheTracksWrites: the cached per-channel totals must
// track SetCloudCapacity writes exactly — reads after any write pattern
// equal a fresh sum over the pools.
func TestCloudCapacityCacheTracksWrites(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	freshSum := func(channel int) float64 {
		var total float64
		for _, p := range s.channels[channel].pools {
			total += p.cloudCap
		}
		return total
	}
	check := func(context string) {
		t.Helper()
		var want float64
		for c := range s.channels {
			got, err := s.CloudCapacity(c)
			if err != nil {
				t.Fatal(err)
			}
			if fresh := freshSum(c); got != fresh {
				t.Errorf("%s: channel %d cached capacity %v != fresh sum %v", context, c, got, fresh)
			}
			want += got
		}
		if got := s.TotalCloudCapacity(); got != want {
			t.Errorf("%s: total capacity %v != sum of channels %v", context, got, want)
		}
	}
	check("initial")
	for c := 0; c < len(s.channels); c++ {
		for j := 0; j < s.cfg.Channel.Chunks; j++ {
			if err := s.SetCloudCapacity(c, j, float64(100*(c+1)+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	check("after full provisioning")
	// Overwrite a single chunk after a read: the stale-cache hazard.
	if err := s.SetCloudCapacity(1, 2, 7.5); err != nil {
		t.Fatal(err)
	}
	check("after single-chunk overwrite")
	s.RunUntil(120)
	check("after integration")
}

// TestCloudCapacityReadsAllocFree guards the cached read path the same way
// TestRebalanceSteadyStateAllocs guards rebalancePeers: the controller
// reads capacity totals every sample, so the cache hit must not allocate.
func TestCloudCapacityReadsAllocFree(t *testing.T) {
	s, err := New(smallConfig(t, ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < len(s.channels); c++ {
		for j := 0; j < s.cfg.Channel.Chunks; j++ {
			if err := s.SetCloudCapacity(c, j, 1e5); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sink float64
	allocs := testing.AllocsPerRun(50, func() {
		sink += s.TotalCloudCapacity()
		for c := range s.channels {
			v, _ := s.CloudCapacity(c)
			sink += v
		}
	})
	if allocs != 0 {
		t.Errorf("capacity reads allocate %.0f objects, want 0 (sink %v)", allocs, sink)
	}
}
