package sim

import (
	"fmt"
	"math"
	"math/rand"

	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// Mode selects the VoD implementation under test (Sec. III-B).
type Mode int

const (
	// ClientServer serves every chunk straight from the cloud.
	ClientServer Mode = iota + 1
	// P2P organizes viewers into a mesh that exchanges chunks rarest-first,
	// with the cloud compensating for insufficient peer uplink.
	P2P
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ClientServer:
		return "client-server"
	case P2P:
		return "p2p"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PeerScheduling selects how the P2P overlay allocates peer uplink across
// chunks at each rebalance.
type PeerScheduling int

const (
	// RarestFirst serves the scarcest chunks first — the paper's scheme
	// (Sec. IV-C): "requests for the rarest chunk are served first".
	RarestFirst PeerScheduling = iota + 1
	// Proportional splits the uplink budget across chunks in proportion to
	// their demand, ignoring rareness — the ablation baseline.
	Proportional
)

// String implements fmt.Stringer.
func (p PeerScheduling) String() string {
	switch p {
	case RarestFirst:
		return "rarest-first"
	case Proportional:
		return "proportional"
	default:
		return fmt.Sprintf("PeerScheduling(%d)", int(p))
	}
}

// Config assembles a simulation scenario.
type Config struct {
	Mode     Mode
	Channel  queueing.Config         // per-channel parameters (uniform channels, as in the paper)
	Workload workload.Params         // arrival trace parameters
	Transfer queueing.TransferMatrix // ground-truth viewing behaviour

	// Source overrides the demand side of the workload: per-channel
	// arrival intensity over time (a recorded trace, a synthetic
	// generator, …). nil derives the parametric source from Workload —
	// bit-identical to the pre-seam sampling. When set, the channel count
	// follows the source; Workload still supplies the behavioural
	// parameters (VCR jumps, peer uplinks).
	Source workload.Source

	// OnArrivals, when non-nil, observes every realized arrival: the
	// channel, the simulated time, and the arrival mass (always 1 for
	// this engine; the fluid engine reports fractional step masses).
	// Calls for one channel are serialized; different channels may call
	// concurrently from the channel-stepping workers — on both engines —
	// so the observer must keep per-channel state only (trace.Recorder
	// does).
	OnArrivals func(channel int, t, n float64)

	// Pacer, when non-nil, is called once per control barrier with the
	// simulated time the engine is about to advance to, before any state
	// moves past the current instant. A live control plane (internal/serve)
	// blocks here against a wall clock to pace the simulation; a nil Pacer
	// (every batch run) costs nothing. The callback must not call back into
	// the engine; it may only sleep or return.
	Pacer func(simNow float64)

	// Scheduling selects the P2P uplink allocation policy. Defaults to
	// RarestFirst, the paper's scheme.
	Scheduling PeerScheduling

	// RebalanceSeconds is the peer bandwidth reallocation period in P2P
	// mode. Defaults to 30 s.
	RebalanceSeconds float64
	// QualityWindowSeconds is the trailing window of the smooth-playback
	// metric. Defaults to 300 s (the paper's 5 minutes).
	QualityWindowSeconds float64
	// Seed drives all randomness; runs are reproducible per seed. Each
	// channel derives an independent stream from (Seed, channel index),
	// so results do not depend on Workers.
	Seed int64
	// Workers bounds the worker pool that steps channels in parallel
	// between control-event barriers (channels only interact through the
	// controller at interval boundaries, so their event queues are
	// independent in between). The fluid engine honours the same knob for
	// its batched Euler fan-out. 0 uses min(GOMAXPROCS, channels); 1 runs
	// serially. Results are identical for every worker count on both
	// engines.
	Workers int
}

func (c *Config) applyDefaults() {
	if c.RebalanceSeconds == 0 {
		c.RebalanceSeconds = 30
	}
	if c.QualityWindowSeconds == 0 {
		c.QualityWindowSeconds = 300
	}
	if c.Scheduling == 0 {
		c.Scheduling = RarestFirst
	}
}

// Validate checks the scenario invariants.
func (c Config) Validate() error {
	if c.Mode != ClientServer && c.Mode != P2P {
		return fmt.Errorf("sim: invalid mode %d", int(c.Mode))
	}
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Transfer.Validate(); err != nil {
		return err
	}
	if c.Transfer.Size() != c.Channel.Chunks {
		return fmt.Errorf("sim: transfer matrix size %d != chunks %d", c.Transfer.Size(), c.Channel.Chunks)
	}
	if c.RebalanceSeconds < 0 || c.QualityWindowSeconds < 0 {
		return fmt.Errorf("sim: negative timing parameter")
	}
	if c.Scheduling != RarestFirst && c.Scheduling != Proportional {
		return fmt.Errorf("sim: invalid peer scheduling %d", int(c.Scheduling))
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	}
	if c.Source != nil {
		if err := c.Source.Validate(); err != nil {
			return err
		}
		if c.Source.NumChannels() <= 0 {
			return fmt.Errorf("sim: demand source has no channels")
		}
	}
	return nil
}

// channelSeed derives an independent deterministic stream per channel so
// channels can advance in parallel without sharing a rand source. The
// multiplier is the 64-bit golden-ratio constant (SplitMix64's increment),
// which decorrelates consecutive channel indices.
func channelSeed(seed int64, channel int) int64 {
	return seed + int64(channel+1)*-7046029254386353131 // 0x9E3779B97F4A7C15 as signed
}

// channelState holds one video channel's runtime state: its own event
// queue and random stream (so channels can step in parallel), its download
// pools, live viewers, chunk ownership (the tracker's bitmap aggregate),
// and the per-interval measurement feed.
type channelState struct {
	index  int
	sim    *Simulator
	engine *Engine
	rng    *rand.Rand

	pools  []*pool
	users  map[*user]struct{}
	owners []int // per-chunk count of viewers holding the chunk

	totalUplink      float64
	estimator        *viewing.Estimator
	cloudBytesServed float64
	arrivalEvent     *Event
	userSeq          int

	// rebalanceOrder is the scratch chunk permutation reused across
	// rebalances so the 30-second rebalance tick stays allocation-free.
	rebalanceOrder []int

	// cloudCapTotal caches the sum of the pools' cloud shares;
	// cloudCapDirty marks it stale after a SetCloudCapacity write. See
	// cloudCapacity.
	cloudCapTotal float64
	cloudCapDirty bool
}

func (ch *channelState) addUser(u *user) {
	ch.users[u] = struct{}{}
	ch.totalUplink += u.uplink
	ch.estimator.RecordArrival()
}

func (ch *channelState) removeUser(u *user) {
	delete(ch.users, u)
	ch.totalUplink -= u.uplink
	if ch.totalUplink < 0 {
		ch.totalUplink = 0
	}
}

// Simulator is the per-viewer discrete-event Backend. It is
// single-threaded at the API: all interaction must happen from scheduled
// callbacks or between RunUntil calls. Internally, RunUntil shards the
// per-channel event queues across a bounded worker pool between control
// barriers (see Config.Workers).
type Simulator struct {
	cfg     Config
	workers int

	// src is the resolved demand source (Config.Source, or the parametric
	// source derived from Config.Workload); envelopes caches each
	// channel's thinning bound, primed serially in New so the per-channel
	// workers only ever read the source.
	src       workload.Source
	envelopes []float64

	// control sequences the cross-channel callbacks — controller
	// intervals, peer rebalances, delayed capacity applications. Channels
	// advance independently up to the next control event, then the event
	// fires with every channel settled at that instant.
	control *Engine
	now     float64

	channels []*channelState
}

// Statically assert both engines satisfy the seam.
var _ Backend = (*Simulator)(nil)

// New builds a simulator, wires per-channel arrival processes, and (in P2P
// mode) starts the periodic peer-bandwidth rebalancer.
func New(cfg Config) (*Simulator, error) {
	cfg.applyDefaults()
	if cfg.Source != nil {
		// The demand source owns the channel count; Workload keeps only
		// the behavioural role (jumps, uplinks).
		cfg.Workload.Channels = cfg.Source.NumChannels()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := cfg.Source
	if src == nil {
		src = cfg.Workload.Source()
	}
	workers := EffectiveWorkers(cfg.Workers, cfg.Workload.Channels)
	s := &Simulator{
		cfg:     cfg,
		workers: workers,
		src:     src,
		control: NewEngine(),
	}
	// Prime the envelopes (and any lazy source caches, e.g. Zipf weights)
	// serially before the channel workers exist.
	s.envelopes = make([]float64, cfg.Workload.Channels)
	for c := range s.envelopes {
		env, err := src.MaxRate(c)
		if err != nil {
			return nil, err
		}
		s.envelopes[c] = env
	}
	s.channels = make([]*channelState, cfg.Workload.Channels)
	for c := range s.channels {
		est, err := viewing.NewEstimator(cfg.Channel.Chunks)
		if err != nil {
			return nil, err
		}
		ch := &channelState{
			index:          c,
			sim:            s,
			engine:         NewEngine(),
			rng:            rand.New(rand.NewSource(channelSeed(cfg.Seed, c))),
			users:          make(map[*user]struct{}),
			owners:         make([]int, cfg.Channel.Chunks),
			estimator:      est,
			rebalanceOrder: make([]int, cfg.Channel.Chunks),
		}
		ch.pools = make([]*pool, cfg.Channel.Chunks)
		for i := range ch.pools {
			ch.pools[i] = &pool{ch: ch, chunk: i}
		}
		s.channels[c] = ch
		if err := s.scheduleArrival(ch); err != nil {
			return nil, err
		}
	}
	if cfg.Mode == P2P {
		if err := s.ScheduleRepeating(cfg.RebalanceSeconds, cfg.RebalanceSeconds, func(float64) {
			for _, ch := range s.channels {
				s.rebalancePeers(ch)
			}
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Now returns the simulated clock in seconds.
func (s *Simulator) Now() float64 { return s.now }

// RunUntil advances the simulation to time t (seconds). Channels step
// independently (in parallel when Workers permits) up to each control
// event — a provisioning round, a peer rebalance, a delayed capacity
// application — which then runs with every channel settled at its
// timestamp.
func (s *Simulator) RunUntil(t float64) {
	for {
		barrier := t
		if at, ok := s.control.NextAt(); ok && at < barrier {
			barrier = at
		}
		if barrier > s.now {
			if s.cfg.Pacer != nil {
				s.cfg.Pacer(barrier)
			}
			s.advanceChannels(barrier)
			s.now = barrier
		}
		s.control.RunUntil(barrier)
		if barrier >= t {
			return
		}
	}
}

// advanceChannels runs every channel's private event queue to time t,
// fanning out across the worker pool. Channel event handlers touch only
// their own channelState (users, pools, estimator, rng), so the shards
// share no mutable state; results are bit-identical for any worker count.
// The serial branch (effective workers == 1, pinned at New) runs on the
// calling goroutine without constructing the fan-out closure.
func (s *Simulator) advanceChannels(t float64) {
	if s.workers <= 1 || len(s.channels) == 1 {
		for _, ch := range s.channels {
			ch.engine.RunUntil(t)
		}
		return
	}
	FanOut(s.workers, len(s.channels), func(i int) {
		s.channels[i].engine.RunUntil(t)
	})
}

// ScheduleAt runs fn at simulated time t. The callback runs at a control
// barrier: every channel is settled at t when it fires.
func (s *Simulator) ScheduleAt(t float64, fn func(now float64)) error {
	_, err := s.control.Schedule(t, func() { fn(s.control.Now()) })
	return err
}

// ScheduleRepeating runs fn at start, start+interval, start+2·interval, …
// at control barriers.
func (s *Simulator) ScheduleRepeating(start, interval float64, fn func(now float64)) error {
	if interval <= 0 {
		return fmt.Errorf("sim: non-positive repeat interval %v", interval)
	}
	var tick func()
	at := start
	tick = func() {
		fn(s.control.Now())
		at += interval
		//cloudmedia:allow noloss -- at > now by construction, Schedule cannot fail
		_, _ = s.control.Schedule(at, tick)
	}
	_, err := s.control.Schedule(start, tick)
	return err
}

// scheduleArrival arms the next NHPP arrival for a channel on the
// channel's own event queue, thinning against the channel's cached
// envelope. The rate comes from the resolved demand source, so the same
// loop replays traces and samples the parametric workload.
func (s *Simulator) scheduleArrival(ch *channelState) error {
	now := ch.engine.Now()
	// Sample within a one-day horizon; if the thinning run finds nothing
	// (possible only at negligible rates), re-arm at the horizon.
	horizon := now + 24*3600
	next := workload.NextArrivalThinned(ch.rng, s.src, ch.index, s.envelopes[ch.index], now, horizon)
	fire := next
	arrived := true
	if math.IsInf(next, 1) {
		fire = horizon
		arrived = false
	}
	ev, err := ch.engine.Schedule(fire, func() {
		if arrived {
			s.spawnUser(ch)
		}
		//cloudmedia:allow noloss -- re-arm fails only when the engine has stopped; the arrival chain just ends
		_ = s.scheduleArrival(ch)
	})
	if err != nil {
		return err
	}
	ch.arrivalEvent = ev
	return nil
}

// spawnUser creates a viewer at the configured entry distribution: chunk 1
// with probability α, uniform over the others otherwise.
func (s *Simulator) spawnUser(ch *channelState) {
	ch.userSeq++
	u := &user{
		id:      ch.userSeq,
		channel: ch,
		sim:     s,
		uplink:  s.cfg.Workload.SampleUplink(ch.rng),
		owned:   make([]bool, s.cfg.Channel.Chunks),
	}
	start := 0
	if s.cfg.Channel.Chunks > 1 && ch.rng.Float64() >= s.cfg.Channel.EntryFirstChunk {
		start = 1 + ch.rng.Intn(s.cfg.Channel.Chunks-1)
	}
	u.join(start)
	if s.cfg.OnArrivals != nil {
		s.cfg.OnArrivals(ch.index, ch.engine.Now(), 1)
	}
}

// rebalancePeers reallocates the channel's aggregate peer uplink across
// chunks — the simulator-side counterpart of Eqn. (5). Each chunk can draw
// at most (owners × mean uplink) and at most the remaining unallocated
// budget; demand is the active download count times R (every download can
// absorb up to one VM's bandwidth), so the cloud share only compensates
// the shortfall, mirroring Δ = Rm − Γ. The visit order is the scheduling
// policy: rarest-first (the paper) or demand-proportional (ablation).
//
//cloudmedia:hotpath
func (s *Simulator) rebalancePeers(ch *channelState) {
	n := len(ch.users)
	if n == 0 {
		for _, p := range ch.pools {
			if p.peerCap != 0 {
				p.setCapacity(-1, 0)
			}
		}
		return
	}
	meanUplink := ch.totalUplink / float64(n)
	target := s.cfg.Channel.VMBandwidth

	if s.cfg.Scheduling == Proportional {
		s.rebalanceProportional(ch, meanUplink, target)
		return
	}

	budget := ch.totalUplink
	order := ch.rebalanceOrder
	for i := range order {
		order[i] = i
	}
	sortByOwners(order, ch.owners)
	for _, i := range order {
		p := ch.pools[i]
		var take float64
		if ch.owners[i] > 0 && budget > 0 {
			demand := float64(len(p.active)) * target
			avail := float64(ch.owners[i]) * meanUplink
			if avail > budget {
				avail = budget
			}
			take = demand
			if take > avail {
				take = avail
			}
		}
		if take != p.peerCap {
			p.setCapacity(-1, take)
		}
		budget -= take
	}
}

// sortByOwners stable-sorts the scratch permutation by ascending owner
// count. Chunk counts are small (8–20), so insertion sort wins — and
// unlike sort.SliceStable it allocates nothing, keeping the 30-second
// rebalance tick off the garbage collector entirely.
//
//cloudmedia:hotpath
func sortByOwners(order []int, owners []int) {
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && owners[order[j]] > owners[v] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// rebalanceProportional splits the uplink budget across chunks with owners
// in proportion to demand, with no rareness priority.
//
//cloudmedia:hotpath
func (s *Simulator) rebalanceProportional(ch *channelState, meanUplink, target float64) {
	var totalDemand float64
	for i, p := range ch.pools {
		if ch.owners[i] > 0 {
			totalDemand += float64(len(p.active)) * target
		}
	}
	budget := ch.totalUplink
	for i, p := range ch.pools {
		var take float64
		if ch.owners[i] > 0 && totalDemand > 0 {
			demand := float64(len(p.active)) * target
			share := budget * demand / totalDemand
			avail := float64(ch.owners[i]) * meanUplink
			take = demand
			if take > share {
				take = share
			}
			if take > avail {
				take = avail
			}
		}
		if take != p.peerCap {
			p.setCapacity(-1, take)
		}
	}
}

// SetCloudCapacity sets the cloud-provisioned upload capacity Δ for one
// chunk's pool, in bytes/s — the knob the controller turns after each
// provisioning round.
func (s *Simulator) SetCloudCapacity(channel, chunk int, bytesPerSecond float64) error {
	if channel < 0 || channel >= len(s.channels) {
		return fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	if chunk < 0 || chunk >= s.cfg.Channel.Chunks {
		return fmt.Errorf("sim: chunk %d outside [0,%d)", chunk, s.cfg.Channel.Chunks)
	}
	if bytesPerSecond < 0 {
		return fmt.Errorf("sim: negative capacity %v", bytesPerSecond)
	}
	s.channels[channel].pools[chunk].setCapacity(bytesPerSecond, -1)
	s.channels[channel].cloudCapDirty = true
	return nil
}

// CloudCapacity returns the total cloud capacity currently provisioned to a
// channel, bytes/s.
func (s *Simulator) CloudCapacity(channel int) (float64, error) {
	if channel < 0 || channel >= len(s.channels) {
		return 0, fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	return s.channels[channel].cloudCapacity(), nil
}

// cloudCapacity returns the sum of the channel's per-pool cloud shares.
// Pool state needs no settling for this: cloud capacity changes only
// through Simulator.SetCloudCapacity (the rebalancer touches only the peer
// share), which marks the cached total stale. The controller writes every
// chunk of a channel per provisioning round and then reads totals each
// sample, so the cache makes reads O(1) amortized instead of O(chunks);
// recomputation walks the pools in index order, bit-identical to a fresh
// sum.
func (ch *channelState) cloudCapacity() float64 {
	if ch.cloudCapDirty {
		var total float64
		for _, p := range ch.pools {
			total += p.cloudCap
		}
		ch.cloudCapTotal = total
		ch.cloudCapDirty = false
	}
	return ch.cloudCapTotal
}

// TotalCloudCapacity returns the cloud capacity provisioned across all
// channels, bytes/s. It iterates the channel list directly rather than
// going through CloudCapacity's index validation, so there is no error to
// discard: every index produced by the range is in bounds by construction.
func (s *Simulator) TotalCloudCapacity() float64 {
	var total float64
	for _, ch := range s.channels {
		total += ch.cloudCapacity()
	}
	return total
}

// CloudBytesServed returns the cumulative bytes actually served from cloud
// capacity since the start of the run (the "used" curve of Fig. 4). Pools
// are settled to the current clock first; byte counters are per-channel
// (each channel's worker owns its own accumulator), so the total is their
// sum in channel order.
func (s *Simulator) CloudBytesServed() float64 {
	var total float64
	for _, ch := range s.channels {
		ch.settlePools()
		total += ch.cloudBytesServed
	}
	return total
}

// settlePools advances every pool's byte accounting to the channel clock.
func (ch *channelState) settlePools() {
	now := ch.engine.Now()
	for _, p := range ch.pools {
		p.settle(now)
	}
}

// ChannelCloudBytes returns the cumulative cloud bytes served to a channel.
func (s *Simulator) ChannelCloudBytes(channel int) (float64, error) {
	if channel < 0 || channel >= len(s.channels) {
		return 0, fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	ch := s.channels[channel]
	ch.settlePools()
	return ch.cloudBytesServed, nil
}

// Users returns the current viewer count of a channel.
func (s *Simulator) Users(channel int) (int, error) {
	if channel < 0 || channel >= len(s.channels) {
		return 0, fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	return len(s.channels[channel].users), nil
}

// TotalUsers returns the viewer count across all channels.
func (s *Simulator) TotalUsers() int {
	var n int
	for _, ch := range s.channels {
		n += len(ch.users)
	}
	return n
}

// MeanUplink returns the average upload bandwidth of a channel's current
// viewers (0 when empty) — the u the controller feeds into Eqn. (5).
func (s *Simulator) MeanUplink(channel int) (float64, error) {
	if channel < 0 || channel >= len(s.channels) {
		return 0, fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	ch := s.channels[channel]
	if len(ch.users) == 0 {
		return 0, nil
	}
	return ch.totalUplink / float64(len(ch.users)), nil
}

// Estimator exposes a channel's measurement feed for the controller, which
// reads it at the end of each interval and then Resets it.
func (s *Simulator) Estimator(channel int) (Feed, error) {
	if channel < 0 || channel >= len(s.channels) {
		return nil, fmt.Errorf("sim: channel %d outside [0,%d)", channel, len(s.channels))
	}
	return s.channels[channel].estimator, nil
}

// QualitySample is a snapshot of the smooth-playback metric.
type QualitySample struct {
	Time            float64
	Overall         float64   // fraction of viewers smooth over the window
	PerChannel      []float64 // per-channel fraction (1 for empty channels)
	UsersPerChannel []int
}

// SampleQuality measures streaming quality right now: the fraction of
// viewers with no stall inside the trailing window (Fig. 5's metric).
func (s *Simulator) SampleQuality() QualitySample {
	now := s.now
	win := s.cfg.QualityWindowSeconds
	sample := QualitySample{
		Time:            now,
		PerChannel:      make([]float64, len(s.channels)),
		UsersPerChannel: make([]int, len(s.channels)),
	}
	var smooth, total int
	for c, ch := range s.channels {
		chSmooth := 0
		for u := range ch.users {
			if u.smoothAt(now, win) {
				//cloudmedia:allow determinism -- integer count over the user set; addition order cannot change the result
				chSmooth++
			}
		}
		n := len(ch.users)
		sample.UsersPerChannel[c] = n
		if n == 0 {
			sample.PerChannel[c] = 1
		} else {
			sample.PerChannel[c] = float64(chSmooth) / float64(n)
		}
		smooth += chSmooth
		total += n
	}
	if total == 0 {
		sample.Overall = 1
	} else {
		sample.Overall = float64(smooth) / float64(total)
	}
	return sample
}

// Mode returns the scenario's streaming mode.
func (s *Simulator) Mode() Mode { return s.cfg.Mode }

// ChannelConfig returns the per-channel parameters.
func (s *Simulator) ChannelConfig() queueing.Config { return s.cfg.Channel }

// Channels returns the number of channels.
func (s *Simulator) Channels() int { return len(s.channels) }
