package sim

// download is one in-flight chunk transfer. Its progress is tracked
// implicitly through the pool's cumulative work counter: every active
// download in a pool proceeds at the same rate, so the bytes a download has
// received equal pool.workDone − startWork.
type download struct {
	user      *user
	pool      *pool
	startWork float64 // pool.workDone when the download was enrolled
}

// pool is the fluid download queue of one (channel, chunk): its capacity is
// the cloud share plus the peer share, divided processor-style among active
// downloads with a per-download cap of R (one VM's bandwidth).
//
// Because all members share one equal rate and every download needs the
// same chunk size, the completion order is exactly the enrollment order.
// The pool therefore keeps a FIFO of active downloads, tracks one
// cumulative per-download work counter, and schedules a single event for
// the head's completion — O(1) amortized per state change instead of
// rescheduling every member.
//
// A pool belongs to exactly one channel: its events live on the channel's
// engine and its served-byte accounting on the channel's accumulator, so
// parallel channel stepping never shares pool state across workers.
type pool struct {
	ch    *channelState
	chunk int

	cloudCap float64 // Δ, bytes/s provisioned from the cloud
	peerCap  float64 // Γ, bytes/s allocated from peers (P2P mode)

	active     []*download // FIFO: head completes first
	workDone   float64     // cumulative bytes delivered per member download
	rate       float64     // current per-download rate, bytes/s
	lastUpdate float64
	headEvent  *Event
}

// settle advances the pool's work counter to `now`, attributing served
// bytes to peers first and the cloud for the remainder (peers are the
// primary source in P2P VoD; the cloud compensates).
func (p *pool) settle(now float64) {
	dt := now - p.lastUpdate
	if dt <= 0 {
		return
	}
	if p.rate > 0 && len(p.active) > 0 {
		p.workDone += p.rate * dt
		total := p.rate * float64(len(p.active))
		peerServed := total
		if peerServed > p.peerCap {
			peerServed = p.peerCap
		}
		p.ch.cloudBytesServed += (total - peerServed) * dt
	}
	p.lastUpdate = now
}

// remainingOf returns the bytes download d still needs.
func (p *pool) remainingOf(d *download) float64 {
	rem := p.ch.sim.cfg.Channel.ChunkBytes() - (p.workDone - d.startWork)
	if rem < 0 {
		return 0
	}
	return rem
}

// reschedule recomputes the shared rate and re-arms the head-completion
// event. Caller must have settled first.
func (p *pool) reschedule(now float64) {
	p.headEvent.Cancel()
	p.headEvent = nil
	n := len(p.active)
	if n == 0 {
		p.rate = 0
		return
	}
	rate := (p.cloudCap + p.peerCap) / float64(n)
	if cap := p.ch.sim.cfg.Channel.VMBandwidth; rate > cap {
		rate = cap
	}
	p.rate = rate
	if rate <= 0 {
		return // starved: resumes when capacity arrives
	}
	at := now + p.remainingOf(p.active[0])/rate
	ev, err := p.ch.engine.Schedule(at, p.onHeadComplete)
	if err != nil {
		return // unreachable: at >= now by construction
	}
	p.headEvent = ev
}

// onHeadComplete fires when the oldest download finishes; several members
// can complete in the same instant (identical enrollment times). The head
// always completes — the event was armed for exactly its finish time, so
// float rounding must not leave it re-armed at now+ε forever.
func (p *pool) onHeadComplete() {
	now := p.ch.engine.Now()
	p.headEvent = nil
	p.settle(now)
	if len(p.active) == 0 {
		p.reschedule(now)
		return
	}
	tol := p.ch.sim.cfg.Channel.ChunkBytes() * 1e-9
	done := []*download{p.active[0]}
	p.active = p.active[1:]
	for len(p.active) > 0 && p.remainingOf(p.active[0]) <= tol {
		done = append(done, p.active[0])
		p.active = p.active[1:]
	}
	for _, d := range done {
		d.pool = nil
	}
	p.reschedule(now)
	for _, d := range done {
		d.user.onDownloadComplete(p.chunk)
	}
}

// add enrolls a new download at the FIFO tail (it has the most bytes left).
func (p *pool) add(d *download) {
	now := p.ch.engine.Now()
	p.settle(now)
	d.pool = p
	d.startWork = p.workDone
	p.active = append(p.active, d)
	p.reschedule(now)
}

// remove aborts an in-flight download (seek or departure).
func (p *pool) remove(d *download) {
	now := p.ch.engine.Now()
	p.settle(now)
	for i, other := range p.active {
		if other == d {
			p.active = append(p.active[:i], p.active[i+1:]...)
			break
		}
	}
	d.pool = nil
	p.reschedule(now)
}

// setCapacity updates the cloud and/or peer share (negative leaves a share
// unchanged) and re-splits.
func (p *pool) setCapacity(cloudCap, peerCap float64) {
	now := p.ch.engine.Now()
	p.settle(now)
	if cloudCap >= 0 {
		p.cloudCap = cloudCap
	}
	if peerCap >= 0 {
		p.peerCap = peerCap
	}
	p.reschedule(now)
}
