package sim

import (
	"math"

	"cloudmedia/internal/viewing"
)

// userState tracks where a viewer is in the playback pipeline.
type userState int

const (
	// stateFetching: waiting for the first chunk after joining or seeking;
	// nothing is playing yet (startup/seek latency, not a stall).
	stateFetching userState = iota + 1
	// statePlaying: playing a chunk while the next one downloads behind it.
	statePlaying
	// stateStalled: playback hit the end of the current chunk before the
	// next one arrived — the smooth-playback violation the paper measures.
	stateStalled
)

// user is one VoD viewer. All of a user's events live on its channel's
// private engine and random stream, which is what lets channels step in
// parallel between control barriers.
type user struct {
	id      int
	channel *channelState
	sim     *Simulator

	uplink     float64
	owned      []bool
	ownedCount int

	state        userState
	playingChunk int
	nextChunk    int // successor chosen at playback start; -1 = departure
	nextReady    bool
	dl           *download

	playEnd *Event
	jumpEv  *Event

	joinedAt     float64
	lastStallEnd float64
	fetchStart   float64 // when the current stateFetching wait began
}

// join initializes the viewer and starts fetching the entry chunk.
func (u *user) join(startChunk int) {
	now := u.channel.engine.Now()
	u.joinedAt = now
	u.lastStallEnd = math.Inf(-1)
	u.state = stateFetching
	u.fetchStart = now
	u.nextChunk = -1
	u.channel.addUser(u)
	u.scheduleJump()
	u.startFetch(startChunk)
}

// startFetch begins downloading the chunk, or short-circuits if the user's
// buffer already holds it (chunks stay cached until departure).
func (u *user) startFetch(chunk int) {
	if u.owned[chunk] {
		u.onChunkReady(chunk)
		return
	}
	d := &download{user: u}
	u.dl = d
	u.channel.pools[chunk].add(d)
}

// onDownloadComplete is called by the pool when a transfer finishes.
func (u *user) onDownloadComplete(chunk int) {
	u.dl = nil
	if !u.owned[chunk] {
		u.owned[chunk] = true
		u.ownedCount++
		u.channel.owners[chunk]++
	}
	u.onChunkReady(chunk)
}

// onChunkReady reacts to a chunk becoming playable.
func (u *user) onChunkReady(chunk int) {
	switch u.state {
	case stateFetching:
		u.beginPlayback(chunk)
	case statePlaying:
		if chunk == u.nextChunk {
			u.nextReady = true
		}
	case stateStalled:
		if chunk == u.nextChunk {
			u.lastStallEnd = u.channel.engine.Now()
			u.beginPlayback(chunk)
		}
	}
}

// beginPlayback starts playing a chunk, chooses the successor per the
// transfer matrix, records the transition for the tracker, and pipelines
// the successor's download behind the playback.
func (u *user) beginPlayback(chunk int) {
	now := u.channel.engine.Now()
	u.state = statePlaying
	u.playingChunk = chunk
	u.nextChunk = u.sampleNext(chunk)
	u.nextReady = false

	if u.nextChunk >= 0 {
		//cloudmedia:allow noloss -- chunk indices come from sampleNext, which stays inside the estimator's domain
		_ = u.channel.estimator.RecordTransition(chunk, u.nextChunk)
		if u.owned[u.nextChunk] {
			u.nextReady = true
		} else {
			u.startFetch(u.nextChunk)
		}
	} else {
		//cloudmedia:allow noloss -- chunk is the currently playing index, always in the estimator's domain
		_ = u.channel.estimator.RecordTransition(chunk, viewing.Departed)
	}

	ev, err := u.channel.engine.Schedule(now+u.sim.cfg.Channel.ChunkSeconds, u.onPlayEnd)
	if err == nil {
		u.playEnd = ev
	}
}

// onPlayEnd fires when the current chunk's playback time elapses.
func (u *user) onPlayEnd() {
	u.playEnd = nil
	if u.nextChunk < 0 {
		u.leave()
		return
	}
	if u.nextReady {
		u.beginPlayback(u.nextChunk)
		return
	}
	// Deadline missed: the user stalls until the in-flight download lands.
	u.state = stateStalled
}

// sampleNext draws the successor chunk from the transfer matrix row, or -1
// for departure.
func (u *user) sampleNext(chunk int) int {
	row := u.sim.cfg.Transfer[chunk]
	x := u.channel.rng.Float64()
	for j, p := range row {
		x -= p
		if x < 0 {
			return j
		}
	}
	return -1
}

// scheduleJump arms the next VCR-jump timer.
func (u *user) scheduleJump() {
	delay := u.sim.cfg.Workload.NextJump(u.channel.rng)
	ev, err := u.channel.engine.Schedule(u.channel.engine.Now()+delay, u.onJump)
	if err == nil {
		u.jumpEv = ev
	}
}

// onJump seeks to a uniformly random position: the current download (if
// any) is aborted, playback restarts at the target once it is available.
// Seek latency is not counted as a stall.
func (u *user) onJump() {
	u.jumpEv = nil
	u.scheduleJump()

	target := u.channel.rng.Intn(u.sim.cfg.Channel.Chunks)
	if u.state == statePlaying || u.state == stateStalled {
		//cloudmedia:allow noloss -- target is drawn from rng.Intn(Chunks), inside the estimator's domain
		_ = u.channel.estimator.RecordTransition(u.playingChunk, target)
	}
	if u.dl != nil && u.dl.pool != nil {
		u.dl.pool.remove(u.dl)
		u.dl = nil
	}
	u.playEnd.Cancel()
	u.playEnd = nil
	if u.state == stateStalled {
		// The seek resolves the stall (the user moved elsewhere).
		u.lastStallEnd = u.channel.engine.Now()
	}
	u.state = stateFetching
	u.fetchStart = u.channel.engine.Now()
	u.nextChunk = -1
	u.nextReady = false
	u.startFetch(target)
}

// leave tears the viewer down: events cancelled, downloads aborted, cached
// chunks removed from the channel's supplier counts.
func (u *user) leave() {
	u.jumpEv.Cancel()
	u.jumpEv = nil
	u.playEnd.Cancel()
	u.playEnd = nil
	if u.dl != nil && u.dl.pool != nil {
		u.dl.pool.remove(u.dl)
		u.dl = nil
	}
	for chunk, has := range u.owned {
		if has {
			u.channel.owners[chunk]--
		}
	}
	u.channel.removeUser(u)
}

// smoothAt reports whether the user counts as "smooth playback" for the
// trailing window ending at now. Currently-stalled users are not smooth; a
// startup/seek wait longer than one chunk's playback time also counts as a
// violation (otherwise a starved system would look perfect because nobody
// ever reaches the playing state).
func (u *user) smoothAt(now, window float64) bool {
	if u.state == stateStalled {
		return false
	}
	if u.state == stateFetching && now-u.fetchStart > u.sim.cfg.Channel.ChunkSeconds {
		return false
	}
	return u.lastStallEnd <= now-window
}
