package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// EffectiveWorkers resolves a requested worker count against the host and
// the shard count. 0 means GOMAXPROCS; the result is clamped to GOMAXPROCS
// (the fan-outs are CPU-bound, so more workers than processors buys only
// scheduling overhead) and to n (at most one worker per shard), and is at
// least 1. A result of 1 is the contract for "run serially, spawn
// nothing": every fan-out in the engines and the controller takes a
// goroutine-free fast path when the effective count is 1 — explicit
// Workers==1, a single-core host (GOMAXPROCS==1, the bench-host case where
// Fluid10MViewers/pool used to pay the pool handoff for zero parallelism),
// or a single shard (channels==1).
//
// The clamp reads GOMAXPROCS once, at backend/controller construction
// time; results never depend on it (worker-count invariance), only wall
// time does.
func EffectiveWorkers(requested, n int) int {
	w := requested
	p := runtime.GOMAXPROCS(0)
	if w == 0 || w > p {
		w = p
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// poolSpawns counts every goroutine FanOut has ever spawned, so tests can
// assert the serial fast path spawns none. Monotonic and global: tests
// read a before/after delta.
var poolSpawns atomic.Int64

// PoolSpawns returns the cumulative number of pool goroutines FanOut has
// spawned — a test instrument for pinning the serial fast path, not a
// production metric.
func PoolSpawns() int64 { return poolSpawns.Load() }

// FanOut runs fn(0) … fn(n-1) across a pool of `workers` goroutines that
// work-steal shard indices from a shared atomic counter — the pattern the
// event engine's channel stepping established, shared here by the fluid
// integrator's batch fan-out, its demand-plane rate reads, and the
// controller's per-channel snapshot/derive/forecast shards. fn must touch
// only shard-i state (plus read-only shared state); under that contract
// results are bit-identical for every worker count, because each shard's
// arithmetic is the exact serial sequence regardless of which worker runs
// it.
//
// With workers <= 1 (or a single shard) the indices run serially on the
// calling goroutine and nothing is spawned. Hot callers with a zero-alloc
// contract keep their own serial branch before building the closure, so
// the escaping fn literal is never constructed on that path.
func FanOut(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	poolSpawns.Add(int64(workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
