package sim

import (
	"container/heap"
	"fmt"
)

// Event is a cancellable scheduled callback.
type Event struct {
	at       float64
	seq      uint64
	index    int // heap index, -1 once popped
	canceled bool
	fn       func()
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// eventHeap orders events by (time, sequence) for deterministic replay.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e, _ := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a minimal deterministic discrete-event scheduler.
type Engine struct {
	now   float64
	seq   uint64
	queue eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run at simulated time `at` and returns a handle for
// cancellation. Scheduling in the past is an error: it would silently
// reorder causality.
func (e *Engine) Schedule(at float64, fn func()) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("sim: nil event function")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// RunUntil processes events in timestamp order until the queue is empty or
// the next event is after `until`, then advances the clock to `until`.
func (e *Engine) RunUntil(until float64) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		ev, _ := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	if until > e.now {
		e.now = until
	}
}

// NextAt returns the timestamp of the earliest queued event and whether
// one exists. Cancelled events still count until popped; a spurious
// barrier on a cancelled timestamp is harmless.
func (e *Engine) NextAt() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Pending returns the number of queued (possibly cancelled) events; used by
// tests to detect leaks.
func (e *Engine) Pending() int { return len(e.queue) }
