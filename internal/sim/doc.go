// Package sim is the discrete-event VoD streaming simulator that replaces
// the paper's physical testbed (Sec. VI-A): user swarms emulated by the
// workload trace, a tracker per channel, fluid chunk-download pools fed by
// cloud VMs and (in P2P mode) peer uplinks, playback with stall tracking,
// and the measurement hooks the controller and experiments need.
//
// # Model
//
// Each (channel, chunk) pair owns a download pool with a capacity in
// bytes/s: the cloud-provisioned share Δ (set by the controller through
// SetCloudCapacity) plus, in P2P mode, the peer share Γ reallocated every
// rebalance interval by rarest-first scheduling over the channel's chunk
// ownership counts. Concurrent downloads in a pool share its capacity
// processor-style, individually capped at the per-VM bandwidth R; download
// completions are rescheduled whenever pool membership or capacity changes.
// This realizes the M/M/m abstraction of the analysis: m servers of rate R
// serving the chunk's download queue.
//
// Users follow the paper's viewing model: they arrive per channel as a
// non-homogeneous Poisson process, start at chunk 1 with probability α
// (uniformly elsewhere otherwise), pipeline the next chunk's download
// behind the current chunk's playback, move between chunks according to the
// transfer matrix, jump to random positions at exponential intervals, and
// keep every downloaded chunk cached until they leave. A user whose next
// chunk misses its playback deadline stalls; the streaming-quality metric
// is the fraction of users with no stall in the trailing window (5 minutes
// in the paper).
//
// The simulator is single-threaded and deterministic for a given seed.
package sim
