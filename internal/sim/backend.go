package sim

import (
	"cloudmedia/internal/queueing"
)

// Backend is the simulation-engine seam: the exact surface the
// provisioning controller (internal/core) and the public run loop
// (pkg/simulate, internal/experiments) consume. Two implementations
// exist, selected by the scenario's fidelity:
//
//   - *Simulator (this package): the per-viewer discrete-event engine.
//     Every viewer is an object with its own playback state and cached
//     chunks; memory and event count grow linearly with the crowd.
//   - *fluid.Backend (internal/fluid): the aggregate cohort engine. State
//     is O(channels × chunks) regardless of crowd size, so million-viewer
//     scenarios integrate in seconds at the cost of per-viewer detail.
//
// Both engines are single-threaded at the API: all interaction must
// happen from scheduled callbacks or between RunUntil calls. The
// controller only ever talks to a backend at provisioning-interval
// boundaries, which is what lets the event engine shard its channels
// across a worker pool internally.
type Backend interface {
	// Now returns the simulated clock in seconds.
	Now() float64
	// RunUntil advances the simulation to time t (seconds).
	RunUntil(t float64)
	// ScheduleAt runs fn at simulated time t.
	ScheduleAt(t float64, fn func(now float64)) error
	// ScheduleRepeating runs fn at start, start+interval, start+2·interval, …
	ScheduleRepeating(start, interval float64, fn func(now float64)) error

	// Mode returns the scenario's streaming mode.
	Mode() Mode
	// ChannelConfig returns the per-channel parameters.
	ChannelConfig() queueing.Config
	// Channels returns the number of channels.
	Channels() int

	// SetCloudCapacity sets the cloud-provisioned upload capacity Δ for
	// one chunk's download queue, in bytes/s.
	SetCloudCapacity(channel, chunk int, bytesPerSecond float64) error
	// CloudCapacity returns the cloud capacity currently provisioned to a
	// channel, bytes/s.
	CloudCapacity(channel int) (float64, error)
	// TotalCloudCapacity returns the capacity provisioned across all
	// channels, bytes/s.
	TotalCloudCapacity() float64
	// CloudBytesServed returns the cumulative bytes served from cloud
	// capacity since the start of the run (Fig. 4's "used" curve).
	CloudBytesServed() float64
	// ChannelCloudBytes splits CloudBytesServed by channel.
	ChannelCloudBytes(channel int) (float64, error)

	// Users returns the current viewer count of a channel.
	Users(channel int) (int, error)
	// TotalUsers returns the viewer count across all channels.
	TotalUsers() int
	// MeanUplink returns the average upload bandwidth of a channel's
	// current viewers (0 when empty) — the u of Eqn. (5).
	MeanUplink(channel int) (float64, error)

	// Estimator exposes a channel's measurement feed for the controller,
	// which reads it at the end of each interval and then Resets it.
	Estimator(channel int) (Feed, error)
	// SampleQuality measures streaming quality right now: the fraction of
	// viewers with no stall inside the trailing window (Fig. 5's metric).
	SampleQuality() QualitySample
}

// Feed is one channel's per-interval measurement stream: the (Λ, P)
// estimates the controller feeds into the queueing analysis (Sec. V-B).
// The event engine backs it with *viewing.Estimator's integer counts; the
// fluid engine accumulates fractional flows directly.
type Feed interface {
	// ArrivalRate returns the estimated Poisson arrival rate Λ over an
	// interval of the given length in seconds.
	ArrivalRate(intervalSeconds float64) (float64, error)
	// Matrix returns the empirical transfer matrix, with unobserved rows
	// taken from fallback (which must be a valid matrix of the same size).
	Matrix(fallback queueing.TransferMatrix) (queueing.TransferMatrix, error)
	// Reset clears the recorded observations, starting a new interval.
	Reset()
}
