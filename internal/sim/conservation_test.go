package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmedia/internal/queueing"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// TestCloudBytesNeverExceedCapacityIntegral: with a constant cloud capacity
// C per chunk over a run of length T, the cloud cannot have served more
// than C·T·pools bytes, and in client-server mode it must have served
// every byte (no peers exist to credit).
func TestCloudBytesNeverExceedCapacityIntegral(t *testing.T) {
	cfg := smallConfig(t, ClientServer)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const perChunk = 400e3
	for c := 0; c < s.Channels(); c++ {
		for i := 0; i < cfg.Channel.Chunks; i++ {
			if err := s.SetCloudCapacity(c, i, perChunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	const horizon = 1800.0
	s.RunUntil(horizon)
	served := s.CloudBytesServed()
	bound := perChunk * float64(s.Channels()*cfg.Channel.Chunks) * horizon
	if served > bound+1e-6 {
		t.Errorf("served %v exceeds capacity integral %v", served, bound)
	}
	if served <= 0 {
		t.Error("no bytes served")
	}
}

// TestP2PCloudAttributionBounded: cloud-attributed bytes can never exceed
// what the cloud capacity could deliver, regardless of peer activity.
func TestP2PCloudAttributionBounded(t *testing.T) {
	cfg := smallConfig(t, P2P)
	cfg.RebalanceSeconds = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const perChunk = 200e3
	for c := 0; c < s.Channels(); c++ {
		for i := 0; i < cfg.Channel.Chunks; i++ {
			if err := s.SetCloudCapacity(c, i, perChunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	const horizon = 1800.0
	s.RunUntil(horizon)
	bound := perChunk * float64(s.Channels()*cfg.Channel.Chunks) * horizon
	if served := s.CloudBytesServed(); served > bound+1e-6 {
		t.Errorf("cloud-attributed bytes %v exceed cloud capacity integral %v", served, bound)
	}
}

// TestSimInvariantsProperty drives random small scenarios and checks the
// global invariants: user counts non-negative and bounded, quality within
// [0,1], byte counters monotone.
func TestSimInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chCfg := queueing.Config{
			Chunks:          2 + r.Intn(5),
			PlaybackRate:    50e3,
			ChunkSeconds:    5 + float64(r.Intn(20)),
			VMBandwidth:     250e3,
			EntryFirstChunk: r.Float64(),
		}
		if chCfg.Chunks == 1 {
			chCfg.EntryFirstChunk = 1
		}
		transfer, err := viewing.SequentialWithJumps(chCfg.Chunks, 0.5+r.Float64()*0.45, r.Float64()*0.5)
		if err != nil {
			return false
		}
		wl := workload.Default()
		wl.Channels = 1 + r.Intn(3)
		wl.BaseArrivalRate = r.Float64() * 0.5
		wl.BaseLevel = 1
		wl.FlashCrowds = nil
		wl.JumpMeanSeconds = 30 + r.Float64()*300
		mode := ClientServer
		if r.Intn(2) == 1 {
			mode = P2P
		}
		s, err := New(Config{
			Mode: mode, Channel: chCfg, Workload: wl, Transfer: transfer,
			RebalanceSeconds: 5, Seed: seed,
		})
		if err != nil {
			return false
		}
		for c := 0; c < s.Channels(); c++ {
			for i := 0; i < chCfg.Chunks; i++ {
				if err := s.SetCloudCapacity(c, i, r.Float64()*2e6); err != nil {
					return false
				}
			}
		}
		var lastBytes float64
		for step := 1; step <= 5; step++ {
			s.RunUntil(float64(step) * 120)
			if s.TotalUsers() < 0 {
				return false
			}
			q := s.SampleQuality()
			if q.Overall < 0 || q.Overall > 1 {
				return false
			}
			b := s.CloudBytesServed()
			if b < lastBytes-1e-6 {
				return false // byte counter went backwards
			}
			lastBytes = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}
