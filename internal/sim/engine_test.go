package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	add := func(at float64, id int) {
		if _, err := e.Schedule(at, func() { order = append(order, id) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	add(5, 1)
	add(1, 2)
	add(3, 3)
	e.RunUntil(10)
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Errorf("order = %v, want [2 3 1]", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		id := i
		if _, err := e.Schedule(1, func() { order = append(order, id) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.RunUntil(2)
	for i, id := range order {
		if id != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	if _, err := e.Schedule(10, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(5)
	if fired {
		t.Error("event after boundary fired")
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
	e.RunUntil(10)
	if !fired {
		t.Error("event at boundary did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev, err := e.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	e.RunUntil(2)
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling nil or twice is safe.
	var nilEv *Event
	nilEv.Cancel()
	ev.Cancel()
}

func TestEngineSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.RunUntil(10)
	if _, err := e.Schedule(5, func() {}); err == nil {
		t.Error("scheduling in the past: want error")
	}
	if _, err := e.Schedule(11, nil); err == nil {
		t.Error("nil fn: want error")
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var times []float64
	var chain func()
	chain = func() {
		times = append(times, e.Now())
		if e.Now() < 3 {
			if _, err := e.Schedule(e.Now()+1, chain); err != nil {
				t.Errorf("Schedule: %v", err)
			}
		}
	}
	if _, err := e.Schedule(1, chain); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(100)
	if len(times) != 3 || times[0] != 1 || times[2] != 3 {
		t.Errorf("times = %v, want [1 2 3]", times)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}
