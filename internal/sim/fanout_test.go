package sim

import (
	"runtime"
	"testing"
)

// ensureParallelHost raises GOMAXPROCS so multi-worker configurations
// resolve to real pools even on single-core hosts (EffectiveWorkers
// clamps to GOMAXPROCS at construction time), restoring it on cleanup.
// Tests that exercise the pool must call it before building engines.
func ensureParallelHost(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestEffectiveWorkers(t *testing.T) {
	ensureParallelHost(t, 8)
	cases := []struct {
		requested, n, want int
	}{
		{0, 16, 8},  // default: GOMAXPROCS
		{0, 4, 4},   // ... clamped to the shard count
		{4, 16, 4},  // explicit request honoured
		{16, 16, 8}, // request clamped to GOMAXPROCS
		{1, 16, 1},  // explicit serial
		{3, 1, 1},   // one shard → serial
		{5, 0, 1},   // no shards still floors at 1
	}
	for _, tc := range cases {
		if got := EffectiveWorkers(tc.requested, tc.n); got != tc.want {
			t.Errorf("EffectiveWorkers(%d, %d) = %d, want %d", tc.requested, tc.n, got, tc.want)
		}
	}
	// The 1-vCPU bench-host case behind the Fluid10MViewers/pool
	// regression: any worker request resolves to serial on a single-core
	// host.
	runtime.GOMAXPROCS(1)
	for _, requested := range []int{0, 4, 8} {
		if got := EffectiveWorkers(requested, 16); got != 1 {
			t.Errorf("GOMAXPROCS=1: EffectiveWorkers(%d, 16) = %d, want 1", requested, got)
		}
	}
}

func TestFanOutSerialSpawnsNoGoroutines(t *testing.T) {
	before := PoolSpawns()
	var calls [5]int
	FanOut(1, len(calls), func(i int) { calls[i]++ })
	var single int
	FanOut(8, 1, func(i int) { single++ }) // one shard → serial regardless of workers
	if got := PoolSpawns() - before; got != 0 {
		t.Fatalf("serial FanOut spawned %d pool goroutines, want 0", got)
	}
	for i, n := range calls {
		if n != 1 {
			t.Errorf("shard %d ran %d times, want 1", i, n)
		}
	}
	if single != 1 {
		t.Errorf("single shard ran %d times, want 1", single)
	}
}

func TestFanOutParallelCoversEveryShard(t *testing.T) {
	ensureParallelHost(t, 8)
	before := PoolSpawns()
	const shards = 100
	hits := make([]int, shards) // disjoint writes: the race detector guards the contract
	FanOut(4, shards, func(i int) { hits[i]++ })
	if got := PoolSpawns() - before; got != 4 {
		t.Errorf("FanOut(4, %d) spawned %d goroutines, want 4", shards, got)
	}
	for i, n := range hits {
		if n != 1 {
			t.Errorf("shard %d ran %d times, want 1", i, n)
		}
	}
}

// TestEventSerialFastPathSpawnsNoPool pins the satellite fix: on a
// single-core host (or with Workers=1) the event engine's channel
// stepping must run entirely on the calling goroutine — no pool handoff
// to pay for zero available parallelism.
func TestEventSerialFastPathSpawnsNoPool(t *testing.T) {
	ensureParallelHost(t, 1)
	cfg := multiChannelConfig(t, ClientServer, 6)
	cfg.Workers = 8 // any request resolves to serial under GOMAXPROCS=1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := PoolSpawns()
	s.RunUntil(1800)
	if got := PoolSpawns() - before; got != 0 {
		t.Errorf("serial-host run spawned %d pool goroutines, want 0", got)
	}
	if s.TotalUsers() == 0 && s.CloudBytesServed() == 0 {
		t.Error("run produced no activity")
	}
}
