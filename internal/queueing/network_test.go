package queueing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmedia/internal/mathx"
)

// paperConfig mirrors the experimental settings of Sec. VI-A: r = 50 KB/s,
// T₀ = 300 s (5-minute chunks), J = 20 (100-minute video), R = 10 Mbps.
func paperConfig() Config {
	return Config{
		Chunks:          20,
		PlaybackRate:    50e3,
		ChunkSeconds:    300,
		VMBandwidth:     1.25e6, // 10 Mbps in bytes/s
		EntryFirstChunk: 0.7,
	}
}

// sequentialMatrix builds a P where users watch chunks in order and continue
// to the next chunk with probability cont.
func sequentialMatrix(j int, cont float64) TransferMatrix {
	p := NewTransferMatrix(j)
	for i := 0; i < j-1; i++ {
		p[i][i+1] = cont
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := paperConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config should validate: %v", err)
	}
	bad := []Config{
		{},
		{Chunks: -1, PlaybackRate: 1, ChunkSeconds: 1, VMBandwidth: 2, EntryFirstChunk: 1},
		{Chunks: 2, PlaybackRate: 0, ChunkSeconds: 1, VMBandwidth: 2},
		{Chunks: 2, PlaybackRate: 1, ChunkSeconds: 0, VMBandwidth: 2},
		{Chunks: 2, PlaybackRate: 2, ChunkSeconds: 1, VMBandwidth: 1}, // R ≤ r
		{Chunks: 2, PlaybackRate: 1, ChunkSeconds: 1, VMBandwidth: 2, EntryFirstChunk: 1.5},
		{Chunks: 1, PlaybackRate: 1, ChunkSeconds: 1, VMBandwidth: 2, EntryFirstChunk: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := paperConfig()
	if got := c.ChunkBytes(); got != 15e6 {
		t.Errorf("ChunkBytes = %v, want 15e6 (15 MB per the paper)", got)
	}
	// µ = R/(rT₀) = 1.25e6/15e6: one server finishes a chunk every 12 s.
	if got := c.ServiceRate(); !mathx.ApproxEqual(got, 1.25e6/15e6, 1e-12) {
		t.Errorf("ServiceRate = %v", got)
	}
}

func TestExternalArrivals(t *testing.T) {
	c := paperConfig()
	ext := c.ExternalArrivals(10)
	if !mathx.ApproxEqual(ext[0], 7, 1e-12) {
		t.Errorf("ext[0] = %v, want 7 (α=0.7)", ext[0])
	}
	rest := 3.0 / 19
	for i := 1; i < len(ext); i++ {
		if !mathx.ApproxEqual(ext[i], rest, 1e-12) {
			t.Errorf("ext[%d] = %v, want %v", i, ext[i], rest)
		}
	}
	if !mathx.ApproxEqual(mathx.Sum(ext), 10, 1e-9) {
		t.Errorf("external rates sum to %v, want 10", mathx.Sum(ext))
	}
	one := Config{Chunks: 1, PlaybackRate: 1, ChunkSeconds: 1, VMBandwidth: 2, EntryFirstChunk: 1}
	if got := one.ExternalArrivals(5); got[0] != 5 {
		t.Errorf("single chunk ext = %v, want [5]", got)
	}
}

func TestSolveTrafficSequential(t *testing.T) {
	// Pure sequential viewing with α=1: λ_i = Λ·cont^(i−1).
	j, cont, lambda := 5, 0.8, 10.0
	p := sequentialMatrix(j, cont)
	cfg := Config{Chunks: j, PlaybackRate: 1, ChunkSeconds: 1, VMBandwidth: 2, EntryFirstChunk: 1}
	rates, err := SolveTraffic(p, cfg.ExternalArrivals(lambda))
	if err != nil {
		t.Fatalf("SolveTraffic: %v", err)
	}
	want := lambda
	for i := 0; i < j; i++ {
		if !mathx.ApproxEqual(rates[i], want, 1e-9) {
			t.Errorf("λ[%d] = %v, want %v", i, rates[i], want)
		}
		want *= cont
	}
}

func TestSolveTrafficFlowConservation(t *testing.T) {
	// At equilibrium the total departure rate Σ λ_i·(1−Σ_j P_ij) must equal
	// the total external arrival rate.
	p := TransferMatrix{
		{0, 0.7, 0.1},
		{0.05, 0, 0.75},
		{0.1, 0.1, 0},
	}
	ext := []float64{4, 1, 1}
	rates, err := SolveTraffic(p, ext)
	if err != nil {
		t.Fatalf("SolveTraffic: %v", err)
	}
	var out float64
	for i, li := range rates {
		out += li * p.DepartureProbability(i)
	}
	if !mathx.ApproxEqual(out, mathx.Sum(ext), 1e-9) {
		t.Errorf("departure rate %v != arrival rate %v", out, mathx.Sum(ext))
	}
}

func TestSolveTrafficErrors(t *testing.T) {
	p := sequentialMatrix(3, 0.5)
	if _, err := SolveTraffic(p, []float64{1, 2}); err == nil {
		t.Error("mismatched ext length: want error")
	}
	if _, err := SolveTraffic(p, []float64{1, -2, 0}); err == nil {
		t.Error("negative ext: want error")
	}
	closed := TransferMatrix{{0, 1}, {1, 0}}
	if _, err := SolveTraffic(closed, []float64{1, 0}); err == nil {
		t.Error("closed routing with arrivals: want error (singular)")
	}
}

func TestSolvePaperScenario(t *testing.T) {
	cfg := paperConfig()
	p := sequentialMatrix(cfg.Chunks, 0.9)
	eq, err := Solve(cfg, p, 0.5, 0) // 0.5 arrivals/s ≈ 1800/hour
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	mu := cfg.ServiceRate()
	for i := range eq.Servers {
		if eq.ArrivalRates[i] == 0 {
			continue
		}
		q, err := mathx.NewMMm(eq.ArrivalRates[i], mu, eq.Servers[i])
		if err != nil {
			t.Fatalf("chunk %d unstable at chosen m: %v", i, err)
		}
		if q.MeanSojourn() > cfg.ChunkSeconds+1e-9 {
			t.Errorf("chunk %d sojourn %v exceeds T₀", i, q.MeanSojourn())
		}
		if eq.Capacity[i] != cfg.VMBandwidth*float64(eq.Servers[i]) {
			t.Errorf("chunk %d capacity inconsistent", i)
		}
	}
	if eq.TotalServers() <= 0 || eq.TotalCapacity() <= 0 {
		t.Error("expected positive total demand")
	}
	if eq.ExpectedPopulation() <= 0 {
		t.Error("expected positive population")
	}
}

func TestSolveCapacityExceedsOfferedLoad(t *testing.T) {
	// Provisioned bandwidth must at least cover the raw byte demand
	// λ_i · chunkBytes for each chunk.
	cfg := paperConfig()
	p := sequentialMatrix(cfg.Chunks, 0.85)
	eq, err := Solve(cfg, p, 1.2, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i, li := range eq.ArrivalRates {
		if eq.Capacity[i] < li*cfg.ChunkBytes()-1e-6 {
			t.Errorf("chunk %d capacity %v below byte demand %v", i, eq.Capacity[i], li*cfg.ChunkBytes())
		}
	}
}

func TestSolveZeroArrivalRate(t *testing.T) {
	cfg := paperConfig()
	p := sequentialMatrix(cfg.Chunks, 0.9)
	eq, err := Solve(cfg, p, 0, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if eq.TotalServers() != 0 || eq.TotalCapacity() != 0 {
		t.Error("idle channel should need no capacity")
	}
}

func TestSolveRejectsClosedMatrix(t *testing.T) {
	cfg := Config{Chunks: 2, PlaybackRate: 1, ChunkSeconds: 2, VMBandwidth: 3, EntryFirstChunk: 0.5}
	closed := TransferMatrix{{0, 1}, {1, 0}}
	if _, err := Solve(cfg, closed, 1, 0); err == nil {
		t.Error("closed matrix should be rejected")
	}
}

func TestSolveRejectsSizeMismatch(t *testing.T) {
	cfg := paperConfig()
	if _, err := Solve(cfg, sequentialMatrix(5, 0.5), 1, 0); err == nil {
		t.Error("matrix/config size mismatch should error")
	}
}

// Property: demand grows monotonically with the arrival rate.
func TestSolveMonotoneInLambda(t *testing.T) {
	cfg := paperConfig()
	p := sequentialMatrix(cfg.Chunks, 0.9)
	prev := 0.0
	for _, lambda := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		eq, err := Solve(cfg, p, lambda, 0)
		if err != nil {
			t.Fatalf("Solve(%v): %v", lambda, err)
		}
		if tot := eq.TotalCapacity(); tot < prev {
			t.Errorf("capacity not monotone at Λ=%v: %v < %v", lambda, tot, prev)
		} else {
			prev = tot
		}
	}
}

// Property: random substochastic matrices always yield a consistent
// equilibrium (flow conservation and sojourn bound hold).
func TestSolveRandomMatrixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		j := 3 + r.Intn(8)
		p := NewTransferMatrix(j)
		for i := 0; i < j; i++ {
			remain := 0.9 // keep rows strictly substochastic
			for k := 0; k < j; k++ {
				if k == i {
					continue
				}
				v := r.Float64() * remain / 2
				p[i][k] = v
				remain -= v
			}
		}
		cfg := Config{
			Chunks:          j,
			PlaybackRate:    50e3,
			ChunkSeconds:    300,
			VMBandwidth:     1.25e6,
			EntryFirstChunk: 0.5,
		}
		lambda := 0.01 + r.Float64()*0.5
		eq, err := Solve(cfg, p, lambda, 0)
		if err != nil {
			return false
		}
		var out float64
		for i, li := range eq.ArrivalRates {
			out += li * p.DepartureProbability(i)
		}
		if !mathx.ApproxEqual(out, lambda, 1e-6) {
			return false
		}
		mu := cfg.ServiceRate()
		for i, li := range eq.ArrivalRates {
			if li == 0 {
				continue
			}
			q, err := mathx.NewMMm(li, mu, eq.Servers[i])
			if err != nil || q.MeanSojourn() > cfg.ChunkSeconds+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSlotsPerVMValidation(t *testing.T) {
	cfg := paperConfig()
	cfg.SlotsPerVM = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative slots accepted")
	}
	// Slot bandwidth must stay above the playback rate: R/r = 25, so 25
	// slots leaves exactly r per slot — invalid; 24 is the limit.
	cfg = paperConfig()
	cfg.SlotsPerVM = 25
	if err := cfg.Validate(); err == nil {
		t.Error("slot bandwidth equal to playback rate accepted")
	}
	cfg.SlotsPerVM = 24
	if err := cfg.Validate(); err != nil {
		t.Errorf("24 slots rejected: %v", err)
	}
}

func TestSlotBandwidthAndServiceRate(t *testing.T) {
	cfg := paperConfig()
	if got := cfg.SlotBandwidth(); got != cfg.VMBandwidth {
		t.Errorf("default SlotBandwidth = %v, want R", got)
	}
	cfg.SlotsPerVM = 5
	if got := cfg.SlotBandwidth(); !mathx.ApproxEqual(got, cfg.VMBandwidth/5, 1e-12) {
		t.Errorf("SlotBandwidth = %v, want R/5", got)
	}
	// µ scales with the slot, so five slots serve a chunk five times slower each.
	if got, want := cfg.ServiceRate(), cfg.VMBandwidth/5/cfg.ChunkBytes(); !mathx.ApproxEqual(got, want, 1e-12) {
		t.Errorf("ServiceRate = %v, want %v", got, want)
	}
}

func TestFinerSlotsNeverIncreaseCapacity(t *testing.T) {
	// Sub-VM granularity can only shave the integer-ceiling waste: for the
	// same load, total capacity with finer slots is at most the whole-VM
	// capacity (and remains enough for the sojourn bound by construction).
	base := paperConfig()
	p := sequentialMatrix(base.Chunks, 0.9)
	whole, err := Solve(base, p, 0.3, 0)
	if err != nil {
		t.Fatalf("Solve whole: %v", err)
	}
	fine := base
	fine.SlotsPerVM = 5
	slotted, err := Solve(fine, p, 0.3, 0)
	if err != nil {
		t.Fatalf("Solve slotted: %v", err)
	}
	if slotted.TotalCapacity() > whole.TotalCapacity()+1e-6 {
		t.Errorf("finer slots increased capacity: %v > %v", slotted.TotalCapacity(), whole.TotalCapacity())
	}
	// And the slotted solution still meets the sojourn target per chunk.
	mu := fine.ServiceRate()
	for i, li := range slotted.ArrivalRates {
		if li == 0 {
			continue
		}
		q, err := mathx.NewMMm(li, mu, slotted.Servers[i])
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if q.MeanSojourn() > fine.ChunkSeconds+1e-9 {
			t.Errorf("chunk %d sojourn %v exceeds T₀ with slots", i, q.MeanSojourn())
		}
	}
}

func TestViewerLoadIsLittlesLaw(t *testing.T) {
	cfg := paperConfig()
	p := sequentialMatrix(cfg.Chunks, 0.9)
	eq, err := Solve(cfg, p, 0.4, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i, li := range eq.ArrivalRates {
		if want := li * cfg.ChunkSeconds; !mathx.ApproxEqual(eq.ViewerLoad[i], want, 1e-9) {
			t.Errorf("ViewerLoad[%d] = %v, want λT₀ = %v", i, eq.ViewerLoad[i], want)
		}
	}
}
