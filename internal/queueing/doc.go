// Package queueing implements the paper's Jackson open queueing-network
// model of a multi-chunk VoD channel (Sec. IV).
//
// Each chunk i of a channel is an M/M/m(i) queue: a user downloading the
// chunk is a job, the m(i) "servers" are units of upload capacity of
// bandwidth R each (one VM's allocation), and the service rate per server is
// µ = R/(r·T₀) chunks per second. Users move between chunk queues according
// to a transfer probability matrix P, enter the channel as a Poisson stream
// of rate Λ (a fraction α starting at chunk 1, the rest uniformly), and
// leave with probability 1 − Σ_j P[i][j] after finishing chunk i.
//
// The package solves the traffic equations (Eqn. 1), evaluates the
// equilibrium state distribution (Eqn. 2) and expected queue populations
// (Eqn. 3), and sizes the per-chunk server counts so that the expected
// sojourn time of every chunk queue is at most the chunk playback time T₀ —
// the smooth-playback condition of Sec. IV-B. The resulting per-chunk upload
// capacity s(i) = R·m(i) is the client-server cloud demand Δ(i).
package queueing
