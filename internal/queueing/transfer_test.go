package queueing

import (
	"testing"
)

func TestNewTransferMatrix(t *testing.T) {
	p := NewTransferMatrix(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("zero matrix should validate: %v", err)
	}
	if p.DepartureProbability(0) != 1 {
		t.Errorf("empty row departure = %v, want 1", p.DepartureProbability(0))
	}
}

func TestTransferMatrixValidate(t *testing.T) {
	tests := []struct {
		name string
		p    TransferMatrix
		ok   bool
	}{
		{"empty", TransferMatrix{}, false},
		{"ragged", TransferMatrix{{0.5, 0.5}, {1}}, false},
		{"negative entry", TransferMatrix{{-0.1, 0}, {0, 0}}, false},
		{"entry above one", TransferMatrix{{1.1, 0}, {0, 0}}, false},
		{"row above one", TransferMatrix{{0.6, 0.6}, {0, 0}}, false},
		{"valid substochastic", TransferMatrix{{0, 0.9}, {0.1, 0}}, true},
		{"valid stochastic row", TransferMatrix{{0.5, 0.5}, {0, 0}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestDepartureProbability(t *testing.T) {
	p := TransferMatrix{{0.3, 0.4}, {0, 1}}
	if got := p.DepartureProbability(0); !approx(got, 0.3) {
		t.Errorf("row 0 departure = %v, want 0.3", got)
	}
	if got := p.DepartureProbability(1); got != 0 {
		t.Errorf("row 1 departure = %v, want 0", got)
	}
}

func TestHasDeparture(t *testing.T) {
	if (TransferMatrix{{0, 1}, {1, 0}}).HasDeparture() {
		t.Error("closed matrix should report no departures")
	}
	if !(TransferMatrix{{0, 0.9}, {0, 0}}).HasDeparture() {
		t.Error("substochastic matrix should report departures")
	}
}

func TestClone(t *testing.T) {
	p := TransferMatrix{{0.5, 0.5}, {0.2, 0}}
	q := p.Clone()
	q[0][0] = 0.9
	if p[0][0] != 0.5 {
		t.Error("Clone shares storage with the original")
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
