package queueing

import (
	"fmt"

	"cloudmedia/internal/mathx"
)

// DefaultMaxServers bounds the per-chunk server search. The paper's testbed
// tops out at 150 VMs; we leave generous headroom for larger scenarios.
const DefaultMaxServers = 100000

// Config carries the channel parameters shared by the whole analysis.
// Bandwidths are in bytes per second to match the paper (r = 50 Kbytes/s).
type Config struct {
	Chunks          int     // J: number of chunks the video is divided into
	PlaybackRate    float64 // r: streaming playback rate, bytes/s
	ChunkSeconds    float64 // T₀: playback time of one chunk, seconds
	VMBandwidth     float64 // R: bandwidth allocated to each VM, bytes/s (R > r)
	EntryFirstChunk float64 // α: fraction of arrivals starting at chunk 1

	// SlotsPerVM sets the capacity granularity of the queueing "servers":
	// each server has bandwidth R/SlotsPerVM. 0 or 1 reproduces the paper's
	// literal mapping µ = R/(rT₀) (one server = one whole VM). Larger
	// values model the fractional VM shares that Eqn. (7)'s z variables
	// permit: a chunk can be provisioned a fraction of a VM's bandwidth.
	// Without this, every warm chunk is floored at a whole VM (10 Mbps),
	// which with the paper's own parameters would put the total reserve an
	// order of magnitude above actual usage — contradicting Fig. 4's
	// reserved ≈ 1.5–2× used. See DESIGN.md.
	SlotsPerVM int
}

// Validate checks the configuration invariants from Sec. III-B/C.
func (c Config) Validate() error {
	switch {
	case c.Chunks <= 0:
		return fmt.Errorf("queueing: non-positive chunk count %d", c.Chunks)
	case c.PlaybackRate <= 0:
		return fmt.Errorf("queueing: non-positive playback rate %v", c.PlaybackRate)
	case c.ChunkSeconds <= 0:
		return fmt.Errorf("queueing: non-positive chunk duration %v", c.ChunkSeconds)
	case c.VMBandwidth <= c.PlaybackRate:
		return fmt.Errorf("queueing: VM bandwidth R=%v must exceed playback rate r=%v", c.VMBandwidth, c.PlaybackRate)
	case c.EntryFirstChunk < 0 || c.EntryFirstChunk > 1:
		return fmt.Errorf("queueing: entry fraction α=%v outside [0,1]", c.EntryFirstChunk)
	case c.Chunks == 1 && c.EntryFirstChunk != 1:
		return fmt.Errorf("queueing: single-chunk channel requires α=1, got %v", c.EntryFirstChunk)
	case c.SlotsPerVM < 0:
		return fmt.Errorf("queueing: negative slots per VM %d", c.SlotsPerVM)
	case c.SlotsPerVM > 0 && c.VMBandwidth/float64(c.SlotsPerVM) <= c.PlaybackRate:
		return fmt.Errorf("queueing: slot bandwidth R/%d=%v must exceed playback rate %v",
			c.SlotsPerVM, c.VMBandwidth/float64(c.SlotsPerVM), c.PlaybackRate)
	}
	return nil
}

// slots returns the effective slot count (≥1).
func (c Config) slots() int {
	if c.SlotsPerVM <= 0 {
		return 1
	}
	return c.SlotsPerVM
}

// SlotBandwidth returns the bandwidth of one queueing server, R/SlotsPerVM.
func (c Config) SlotBandwidth() float64 { return c.VMBandwidth / float64(c.slots()) }

// ChunkBytes returns the size of one chunk, r·T₀ bytes.
func (c Config) ChunkBytes() float64 { return c.PlaybackRate * c.ChunkSeconds }

// ServiceRate returns µ = (R/slots)/(r·T₀), the rate at which one queueing
// server (one VM-bandwidth slot) completes chunk downloads. With the
// default SlotsPerVM of 1 this is the paper's µ = R/(rT₀).
func (c Config) ServiceRate() float64 { return c.SlotBandwidth() / c.ChunkBytes() }

// ExternalArrivals splits the channel arrival rate Λ across chunk queues:
// α·Λ enters at chunk 1 and the remaining (1−α)·Λ is spread uniformly over
// chunks 2..J (Sec. IV-A).
func (c Config) ExternalArrivals(lambda float64) []float64 {
	ext := make([]float64, c.Chunks)
	if c.Chunks == 1 {
		ext[0] = lambda
		return ext
	}
	ext[0] = c.EntryFirstChunk * lambda
	rest := (1 - c.EntryFirstChunk) * lambda / float64(c.Chunks-1)
	for i := 1; i < c.Chunks; i++ {
		ext[i] = rest
	}
	return ext
}

// SolveTraffic solves the Jackson traffic equations (Eqn. 1):
//
//	λ_i = ext_i + Σ_j λ_j · P[j][i]
//
// i.e. (I − Pᵀ)·λ = ext, returning the per-queue aggregate arrival rates.
func SolveTraffic(p TransferMatrix, ext []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	j := p.Size()
	if len(ext) != j {
		return nil, fmt.Errorf("queueing: %d external rates for %d queues", len(ext), j)
	}
	for i, e := range ext {
		if e < 0 {
			return nil, fmt.Errorf("queueing: negative external rate %v at queue %d", e, i)
		}
	}
	a := make([][]float64, j)
	for i := range a {
		a[i] = make([]float64, j)
		for k := 0; k < j; k++ {
			a[i][k] = -p[k][i] // Pᵀ
		}
		a[i][i] += 1
	}
	lambda, err := mathx.SolveLinear(a, ext)
	if err != nil {
		return nil, fmt.Errorf("queueing: traffic equations: %w", err)
	}
	for i, l := range lambda {
		if l < 0 {
			if l > -1e-9 {
				lambda[i] = 0
				continue
			}
			return nil, fmt.Errorf("queueing: negative arrival rate %v at queue %d (non-substochastic routing?)", l, i)
		}
	}
	return lambda, nil
}

// Equilibrium is the solved steady state of one channel: the demand side of
// the paper's analysis.
type Equilibrium struct {
	Config Config
	// ArrivalRates λ_i for each chunk queue, jobs/s.
	ArrivalRates []float64
	// Servers m_i: minimal per-chunk server counts for smooth playback, in
	// slot units (one slot = R/SlotsPerVM of bandwidth).
	Servers []int
	// MeanUsers E[n_i]: expected number of users in each chunk queue
	// (waiting + downloading) at the sized server counts.
	MeanUsers []float64
	// ViewerLoad is λ_i·T₀: the expected number of viewers concurrently
	// engaged with chunk i when every queue meets the design sojourn T₀
	// (Little's law). This — not the instantaneous download-queue
	// population — is the "peers in Q_i" count that the P2P ownership
	// analysis of Sec. IV-C propagates.
	ViewerLoad []float64
	// Capacity s_i = R·m_i: total upload bandwidth to serve chunk i, bytes/s.
	Capacity []float64
}

// TotalCapacity returns Σ_i s_i, the aggregate upload bandwidth the channel
// needs for smooth playback, bytes/s.
func (e Equilibrium) TotalCapacity() float64 { return mathx.Sum(e.Capacity) }

// TotalServers returns Σ_i m_i.
func (e Equilibrium) TotalServers() int {
	var n int
	for _, m := range e.Servers {
		n += m
	}
	return n
}

// ExpectedPopulation returns Σ_i E[n_i], the expected number of concurrent
// users in the channel.
func (e Equilibrium) ExpectedPopulation() float64 { return mathx.Sum(e.MeanUsers) }

// Solve computes the channel equilibrium for external arrival rate Λ and
// transfer matrix P: it solves the traffic equations, then sizes each chunk
// queue to the smallest m_i whose expected sojourn time is at most T₀
// (Sec. IV-B). maxServers ≤ 0 selects DefaultMaxServers.
func Solve(cfg Config, p TransferMatrix, lambda float64, maxServers int) (Equilibrium, error) {
	if err := cfg.Validate(); err != nil {
		return Equilibrium{}, err
	}
	if lambda < 0 {
		return Equilibrium{}, fmt.Errorf("queueing: negative channel arrival rate %v", lambda)
	}
	if p.Size() != cfg.Chunks {
		return Equilibrium{}, fmt.Errorf("queueing: matrix size %d != chunks %d", p.Size(), cfg.Chunks)
	}
	if lambda > 0 && !p.HasDeparture() {
		return Equilibrium{}, fmt.Errorf("queueing: transfer matrix admits no departures; no equilibrium exists")
	}
	if maxServers <= 0 {
		maxServers = DefaultMaxServers
	}

	rates, err := SolveTraffic(p, cfg.ExternalArrivals(lambda))
	if err != nil {
		return Equilibrium{}, err
	}

	mu := cfg.ServiceRate()
	eq := Equilibrium{
		Config:       cfg,
		ArrivalRates: rates,
		Servers:      make([]int, cfg.Chunks),
		MeanUsers:    make([]float64, cfg.Chunks),
		ViewerLoad:   make([]float64, cfg.Chunks),
		Capacity:     make([]float64, cfg.Chunks),
	}
	for i, li := range rates {
		if li == 0 {
			continue // idle chunk: no capacity needed
		}
		eq.ViewerLoad[i] = li * cfg.ChunkSeconds
		m, err := mathx.MinServersForSojourn(li, mu, cfg.ChunkSeconds, maxServers)
		if err != nil {
			return Equilibrium{}, fmt.Errorf("queueing: sizing chunk %d: %w", i, err)
		}
		q, err := mathx.NewMMm(li, mu, m)
		if err != nil {
			return Equilibrium{}, fmt.Errorf("queueing: chunk %d: %w", i, err)
		}
		eq.Servers[i] = m
		eq.MeanUsers[i] = q.MeanJobs()
		eq.Capacity[i] = cfg.SlotBandwidth() * float64(m)
	}
	return eq, nil
}
