package queueing

import (
	"fmt"
)

// TransferMatrix is the chunk transfer probability matrix P of one channel:
// P[i][j] is the probability that a user who has finished downloading chunk
// i moves on to download chunk j. Row sums may be below 1; the deficit
// 1 − Σ_j P[i][j] is the probability of leaving the channel after chunk i.
type TransferMatrix [][]float64

// NewTransferMatrix returns a zeroed J×J matrix.
func NewTransferMatrix(j int) TransferMatrix {
	m := make(TransferMatrix, j)
	for i := range m {
		m[i] = make([]float64, j)
	}
	return m
}

// Size returns the number of chunks J.
func (p TransferMatrix) Size() int { return len(p) }

// Validate checks that the matrix is square, entries are probabilities, and
// every row sums to at most 1 (within a small tolerance).
func (p TransferMatrix) Validate() error {
	j := len(p)
	if j == 0 {
		return fmt.Errorf("queueing: empty transfer matrix")
	}
	for i, row := range p {
		if len(row) != j {
			return fmt.Errorf("queueing: row %d has %d entries, want %d", i, len(row), j)
		}
		var sum float64
		for k, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("queueing: P[%d][%d]=%v outside [0,1]", i, k, v)
			}
			sum += v
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("queueing: row %d sums to %v > 1", i, sum)
		}
	}
	return nil
}

// DepartureProbability returns 1 − Σ_j P[i][j], the probability of leaving
// the channel after chunk i (clamped at 0 against rounding).
func (p TransferMatrix) DepartureProbability(i int) float64 {
	var sum float64
	for _, v := range p[i] {
		sum += v
	}
	if d := 1 - sum; d > 0 {
		return d
	}
	return 0
}

// Clone returns a deep copy.
func (p TransferMatrix) Clone() TransferMatrix {
	out := make(TransferMatrix, len(p))
	for i, row := range p {
		out[i] = make([]float64, len(row))
		copy(out[i], row)
	}
	return out
}

// HasDeparture reports whether at least one row allows leaving the channel.
// A matrix with no departures cannot reach equilibrium under external
// arrivals: users would accumulate without bound.
func (p TransferMatrix) HasDeparture() bool {
	for i := range p {
		if p.DepartureProbability(i) > 1e-12 {
			return true
		}
	}
	return false
}
