// Package p2p implements the peer-supply side of the paper's analysis
// (Sec. IV-C): how much of the per-chunk upload demand derived by package
// queueing can be covered by the peers themselves in a mesh-pull P2P VoD
// channel with rarest-first scheduling, and how much the cloud must
// supplement.
//
// The pipeline is:
//
//  1. Proposition 1 — solve, per chunk i, the linear system
//     E[ν_ij] = Σ_l E[ν_il]·P[l][j] with E[ν_ii] = E[n_i] pinned,
//     giving the expected number of peers in each queue j that hold chunk i.
//  2. Eqn. (4) — E[ν_i] = Σ_{j≠i} E[ν_ij], the expected chunk replica count.
//  3. Co-ownership Ψ(a, b) — the probability a random peer holds both chunks.
//     The paper defers the exact computation to an unavailable technical
//     report; we use a conditional-independence estimator built from the
//     same Proposition-1 quantities (documented in DESIGN.md).
//  4. Eqn. (5) — allocate peer upload bandwidth to chunks in rarest-first
//     order and compute the expected peer contribution Γ_i per chunk.
//  5. Cloud residual — Δ_i = max(0, R·m_i − Γ_i), the capacity the VoD
//     provider must rent from the cloud for chunk i.
package p2p
