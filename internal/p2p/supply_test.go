package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/testutil"
	"cloudmedia/internal/viewing"
)

func paperConfig() queueing.Config {
	// testutil's standard shape at the paper's 10×300 s chunk layout
	// (DefaultVMBandwidth is the paper's 10 Mbps = 1.25e6 B/s).
	return testutil.ChannelConfig(10, 300)
}

func solvedChannel(t *testing.T, cfg queueing.Config, cont float64, lambda float64) (queueing.Equilibrium, queueing.TransferMatrix) {
	t.Helper()
	p, err := viewing.Sequential(cfg.Chunks, cont)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	eq, err := queueing.Solve(cfg, p, lambda, 0)
	if err != nil {
		t.Fatalf("queueing.Solve: %v", err)
	}
	return eq, p
}

func TestSolveValidation(t *testing.T) {
	eq, p := solvedChannel(t, paperConfig(), 0.9, 0.3)
	if _, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: -1}); err == nil {
		t.Error("negative upload: want error")
	}
	small := queueing.NewTransferMatrix(3)
	if _, err := Solve(Analysis{Equilibrium: eq, Transfer: small, PeerUpload: 1}); err == nil {
		t.Error("matrix size mismatch: want error")
	}
	if _, err := Solve(Analysis{}); err == nil {
		t.Error("empty analysis: want error")
	}
}

func TestOwnersSequentialChain(t *testing.T) {
	// Sequential viewing with α=1 (everyone starts at chunk 1): owners of
	// chunk i are exactly the users now in queues i+1..J, since every
	// downstream user downloaded it on the way. (With mid-stream entry
	// α<1 this identity no longer holds: later entrants skip early chunks.)
	cfg := paperConfig()
	cfg.EntryFirstChunk = 1
	eq, p := solvedChannel(t, cfg, 1.0, 0.3) // no early departures except after last chunk
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 60e3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := 0; i < cfg.Chunks; i++ {
		var downstream float64
		for q := i + 1; q < cfg.Chunks; q++ {
			downstream += eq.ViewerLoad[q]
		}
		if !mathx.ApproxEqual(res.Owners[i], downstream, 1e-6) {
			t.Errorf("Owners[%d] = %v, want downstream population %v", i, res.Owners[i], downstream)
		}
	}
	// The last chunk has no downstream queue: nobody holds it.
	last := cfg.Chunks - 1
	if res.Owners[last] > 1e-9 {
		t.Errorf("Owners[last] = %v, want 0", res.Owners[last])
	}
	// So the cloud must carry the full demand for it.
	wantDemand := cfg.VMBandwidth * float64(eq.Servers[last])
	if !mathx.ApproxEqual(res.CloudDemand[last], wantDemand, 1e-6) {
		t.Errorf("CloudDemand[last] = %v, want %v", res.CloudDemand[last], wantDemand)
	}
}

func TestOwnersDiagonalIsQueuePopulation(t *testing.T) {
	eq, p := solvedChannel(t, paperConfig(), 0.9, 0.2)
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 60e3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range eq.ViewerLoad {
		if res.OwnersByQueue[i][i] != eq.ViewerLoad[i] {
			t.Errorf("diag[%d] = %v, want E[n]=%v", i, res.OwnersByQueue[i][i], eq.ViewerLoad[i])
		}
	}
}

func TestSupplyBounds(t *testing.T) {
	cfg := paperConfig()
	eq, p := solvedChannel(t, cfg, 0.9, 0.4)
	u := 60e3
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: u})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := 0; i < cfg.Chunks; i++ {
		demandCap := float64(eq.Servers[i]) * cfg.VMBandwidth
		if res.PeerSupply[i] < 0 {
			t.Errorf("Γ[%d] = %v < 0", i, res.PeerSupply[i])
		}
		if res.PeerSupply[i] > demandCap+1e-6 {
			t.Errorf("Γ[%d] = %v exceeds demand cap m·R = %v", i, res.PeerSupply[i], demandCap)
		}
		if res.PeerSupply[i] > res.Owners[i]*u+1e-6 {
			t.Errorf("Γ[%d] = %v exceeds owner uplink %v", i, res.PeerSupply[i], res.Owners[i]*u)
		}
		full := cfg.VMBandwidth * float64(eq.Servers[i])
		if res.CloudDemand[i] < 0 || res.CloudDemand[i] > full+1e-6 {
			t.Errorf("Δ[%d] = %v outside [0, %v]", i, res.CloudDemand[i], full)
		}
		if !mathx.ApproxEqual(res.CloudDemand[i], full-res.PeerSupply[i], 1e-6) {
			t.Errorf("Δ[%d] = %v, want Rm−Γ = %v", i, res.CloudDemand[i], full-res.PeerSupply[i])
		}
	}
}

func TestZeroUploadMeansFullCloudDemand(t *testing.T) {
	cfg := paperConfig()
	eq, p := solvedChannel(t, cfg, 0.9, 0.4)
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 0})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.TotalPeerSupply() != 0 {
		t.Errorf("Γ total = %v, want 0", res.TotalPeerSupply())
	}
	if !mathx.ApproxEqual(res.TotalCloudDemand(), eq.TotalCapacity(), 1e-6) {
		t.Errorf("Δ total = %v, want full capacity %v", res.TotalCloudDemand(), eq.TotalCapacity())
	}
}

func TestMoreUploadNeverIncreasesCloudDemand(t *testing.T) {
	cfg := paperConfig()
	eq, p := solvedChannel(t, cfg, 0.9, 0.4)
	prev := -1.0
	for _, u := range []float64{100e3, 60e3, 40e3, 20e3, 0} { // decreasing upload
		res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: u})
		if err != nil {
			t.Fatalf("Solve(u=%v): %v", u, err)
		}
		if d := res.TotalCloudDemand(); d < prev-1e-6 {
			t.Errorf("cloud demand not monotone: u=%v gives %v < %v", u, d, prev)
		} else {
			prev = d
		}
	}
}

func TestP2PDemandBelowClientServer(t *testing.T) {
	// The headline claim: peer-assisted cloud demand is far below the
	// client-server demand when peer uplinks are comparable to r.
	cfg := paperConfig()
	eq, p := solvedChannel(t, cfg, 0.9, 0.4)
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 50e3}) // u = r
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.TotalCloudDemand() >= eq.TotalCapacity() {
		t.Errorf("P2P demand %v not below C/S demand %v", res.TotalCloudDemand(), eq.TotalCapacity())
	}
}

func TestCoOwnershipProperties(t *testing.T) {
	eq, p := solvedChannel(t, paperConfig(), 0.9, 0.4)
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 60e3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	j := eq.Config.Chunks
	for a := 0; a < j; a++ {
		for b := 0; b < j; b++ {
			psi := CoOwnership(eq.ViewerLoad, res.OwnersByQueue, a, b)
			if psi < 0 || psi > 1 {
				t.Errorf("Ψ(%d,%d) = %v outside [0,1]", a, b, psi)
			}
			back := CoOwnership(eq.ViewerLoad, res.OwnersByQueue, b, a)
			if !mathx.ApproxEqual(psi, back, 1e-9) {
				t.Errorf("Ψ not symmetric: (%d,%d)=%v vs %v", a, b, psi, back)
			}
		}
	}
}

func TestCoOwnershipEmptyChannel(t *testing.T) {
	if got := CoOwnership([]float64{0, 0}, [][]float64{{0, 0}, {0, 0}}, 0, 1); got != 0 {
		t.Errorf("Ψ on empty channel = %v, want 0", got)
	}
}

func TestSingleChunkChannel(t *testing.T) {
	cfg := queueing.Config{Chunks: 1, PlaybackRate: 50e3, ChunkSeconds: 300, VMBandwidth: 1.25e6, EntryFirstChunk: 1}
	p := queueing.NewTransferMatrix(1)
	eq, err := queueing.Solve(cfg, p, 0.1, 0)
	if err != nil {
		t.Fatalf("queueing.Solve: %v", err)
	}
	res, err := Solve(Analysis{Equilibrium: eq, Transfer: p, PeerUpload: 60e3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Single chunk, sequential: downloaders leave immediately after, so
	// nobody holds it and the cloud serves everything.
	if res.Owners[0] != 0 {
		t.Errorf("Owners[0] = %v, want 0", res.Owners[0])
	}
	if !mathx.ApproxEqual(res.TotalCloudDemand(), eq.TotalCapacity(), 1e-9) {
		t.Errorf("Δ = %v, want %v", res.TotalCloudDemand(), eq.TotalCapacity())
	}
}

// Property test: for random viewing matrices, all invariants hold at once.
func TestSolveInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := queueing.Config{
			Chunks:          3 + r.Intn(8),
			PlaybackRate:    50e3,
			ChunkSeconds:    300,
			VMBandwidth:     1.25e6,
			EntryFirstChunk: r.Float64(),
		}
		pm, err := viewing.SequentialWithJumps(cfg.Chunks, 0.5+r.Float64()*0.45, r.Float64()*0.5)
		if err != nil {
			return false
		}
		eq, err := queueing.Solve(cfg, pm, 0.01+r.Float64()*0.5, 0)
		if err != nil {
			return false
		}
		u := r.Float64() * 120e3
		res, err := Solve(Analysis{Equilibrium: eq, Transfer: pm, PeerUpload: u})
		if err != nil {
			return false
		}
		for i := 0; i < cfg.Chunks; i++ {
			full := cfg.VMBandwidth * float64(eq.Servers[i])
			if res.PeerSupply[i] < -1e-9 || res.PeerSupply[i] > full+1e-6 {
				return false
			}
			if res.Owners[i] < -1e-9 {
				return false
			}
			if res.CloudDemand[i] < -1e-9 || res.CloudDemand[i] > full+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
