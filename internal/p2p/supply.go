package p2p

import (
	"fmt"
	"sort"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/queueing"
)

// Analysis bundles the channel equilibrium with the P2P parameters needed
// to evaluate peer supply.
type Analysis struct {
	// Equilibrium is the solved demand side from package queueing.
	Equilibrium queueing.Equilibrium
	// Transfer is the chunk-transfer matrix the equilibrium was solved with.
	Transfer queueing.TransferMatrix
	// PeerUpload is u: the (average) per-peer upload bandwidth in bytes/s.
	PeerUpload float64
}

// Result is the outcome of the peer-supply analysis for one channel.
type Result struct {
	// OwnersByQueue[i][j] = E[ν_ij]: expected peers in queue j holding chunk
	// i; the diagonal holds E[ν_ii] = E[n_i].
	OwnersByQueue [][]float64
	// Owners[i] = E[ν_i]: expected replica count of chunk i among peers that
	// are not currently downloading it (Eqn. 4).
	Owners []float64
	// PeerSupply[i] = E[Γ_i]: expected peer upload bandwidth serving chunk i
	// under rarest-first allocation (Eqn. 5), bytes/s.
	PeerSupply []float64
	// CloudDemand[i] = E[Δ_i] = max(0, R·m_i − Γ_i): capacity to rent from
	// the cloud for chunk i, bytes/s.
	CloudDemand []float64
}

// TotalPeerSupply returns Σ_i Γ_i in bytes/s.
func (r Result) TotalPeerSupply() float64 { return mathx.Sum(r.PeerSupply) }

// TotalCloudDemand returns Σ_i Δ_i in bytes/s.
func (r Result) TotalCloudDemand() float64 { return mathx.Sum(r.CloudDemand) }

// Solve runs the full Sec. IV-C pipeline.
func Solve(a Analysis) (Result, error) {
	eq := a.Equilibrium
	j := eq.Config.Chunks
	if j == 0 {
		return Result{}, fmt.Errorf("p2p: empty equilibrium")
	}
	if a.Transfer.Size() != j {
		return Result{}, fmt.Errorf("p2p: transfer matrix size %d != chunks %d", a.Transfer.Size(), j)
	}
	if err := a.Transfer.Validate(); err != nil {
		return Result{}, fmt.Errorf("p2p: %w", err)
	}
	if a.PeerUpload < 0 {
		return Result{}, fmt.Errorf("p2p: negative peer upload %v", a.PeerUpload)
	}
	if len(eq.ViewerLoad) != j || len(eq.Servers) != j {
		return Result{}, fmt.Errorf("p2p: equilibrium arrays inconsistent with chunk count")
	}

	owners, err := ownersByQueue(eq.ViewerLoad, a.Transfer)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		OwnersByQueue: owners,
		Owners:        make([]float64, j),
		PeerSupply:    make([]float64, j),
		CloudDemand:   make([]float64, j),
	}
	for i := 0; i < j; i++ {
		var sum float64
		for q := 0; q < j; q++ {
			if q != i {
				sum += owners[i][q]
			}
		}
		res.Owners[i] = sum
	}

	res.PeerSupply = peerSupply(eq, owners, res.Owners, a.PeerUpload)
	for i := 0; i < j; i++ {
		res.CloudDemand[i] = eq.Capacity[i] - res.PeerSupply[i]
		if res.CloudDemand[i] < 0 {
			res.CloudDemand[i] = 0
		}
	}
	return res, nil
}

// ownersByQueue solves Proposition 1 once per chunk. For chunk i the
// unknowns are x_q = E[ν_iq] for q ≠ i, satisfying
//
//	x_q = Σ_{l≠i} x_l·P[l][q] + E[n_i]·P[i][q]
//
// i.e. (I − P̃ᵀ)·x = E[n_i]·P[i][·] where P̃ is P with row/column i removed.
func ownersByQueue(meanUsers []float64, p queueing.TransferMatrix) ([][]float64, error) {
	j := len(meanUsers)
	out := make([][]float64, j)
	for i := 0; i < j; i++ {
		out[i] = make([]float64, j)
		out[i][i] = meanUsers[i]
		if j == 1 {
			continue
		}
		n := j - 1
		// idx maps reduced index → full queue index.
		idx := make([]int, 0, n)
		for q := 0; q < j; q++ {
			if q != i {
				idx = append(idx, q)
			}
		}
		a := make([][]float64, n)
		b := make([]float64, n)
		for r := 0; r < n; r++ {
			a[r] = make([]float64, n)
			for c := 0; c < n; c++ {
				a[r][c] = -p[idx[c]][idx[r]] // −P̃ᵀ
			}
			a[r][r] += 1
			b[r] = meanUsers[i] * p[i][idx[r]]
		}
		x, err := mathx.SolveLinear(a, b)
		if err != nil {
			return nil, fmt.Errorf("p2p: proposition 1 for chunk %d: %w", i, err)
		}
		for r := 0; r < n; r++ {
			v := x[r]
			if v < 0 {
				if v < -1e-6 {
					return nil, fmt.Errorf("p2p: negative owner count %v for chunk %d in queue %d", v, i, idx[r])
				}
				v = 0
			}
			out[i][idx[r]] = v
		}
	}
	return out, nil
}

// CoOwnership returns Ψ(a, b): the estimated probability that a random peer
// in the channel simultaneously holds chunks a and b. With N = Σ_q E[n_q]
// and conditional independence of ownership given the peer's current queue:
//
//	Ψ(a,b) = Σ_q (E[n_q]/N) · (E[ν_aq]/E[n_q]) · (E[ν_bq]/E[n_q])
//
// Per-queue ownership fractions are clamped to 1 since E[ν_iq] can slightly
// exceed E[n_q] under the proposition's balance approximation.
func CoOwnership(meanUsers []float64, owners [][]float64, a, b int) float64 {
	total := mathx.Sum(meanUsers)
	if total <= 0 {
		return 0
	}
	var psi float64
	for q, nq := range meanUsers {
		if nq <= 0 {
			continue
		}
		fa := mathx.Clamp(owners[a][q]/nq, 0, 1)
		fb := mathx.Clamp(owners[b][q]/nq, 0, 1)
		psi += (nq / total) * fa * fb
	}
	return psi
}

// peerSupply evaluates Eqn. (5): chunks are served rarest-first, so the
// upload bandwidth a chunk can draw from its owners is what those owners
// have not already committed to rarer chunks.
func peerSupply(eq queueing.Equilibrium, owners [][]float64, replicaCount []float64, upload float64) []float64 {
	j := eq.Config.Chunks
	gamma := make([]float64, j)
	if upload <= 0 {
		return gamma
	}
	order := make([]int, j)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return replicaCount[order[a]] < replicaCount[order[b]]
	})

	totalPeers := mathx.Sum(eq.ViewerLoad)
	// Demand cap per chunk. Eqn. (5) prints this as m_i·r, but with the
	// paper's own parameters (R = 25r) that would bound peer savings at 4%,
	// contradicting the 5–10× cloud-cost reductions of Figs. 4 and 10. The
	// binding constraint in their testbed is clearly the owners' total
	// uplink, so we read the cap as the chunk's full provisioned demand
	// (see DESIGN.md, "Substitutions").
	for k, chunk := range order {
		demand := eq.Capacity[chunk]
		if demand <= 0 || replicaCount[chunk] <= 0 {
			continue
		}
		available := replicaCount[chunk] * upload
		// Subtract bandwidth the owners have already committed to rarer
		// chunks: for each rarer chunk π_j, the Ψ·N co-owners each contribute
		// Γ_πj / E[ν_πj].
		for jj := 0; jj < k; jj++ {
			rarer := order[jj]
			if gamma[rarer] <= 0 || replicaCount[rarer] <= 0 {
				continue
			}
			coOwners := CoOwnership(eq.ViewerLoad, owners, rarer, chunk) * totalPeers
			available -= coOwners * gamma[rarer] / replicaCount[rarer]
		}
		if available < 0 {
			available = 0
		}
		if available > demand {
			available = demand
		}
		gamma[chunk] = available
	}
	return gamma
}
