// Package workload generates the synthetic PPLive-like VoD trace of
// Sec. VI-A: 20 channels with Zipf popularity, per-channel Poisson arrivals
// modulated by a daily pattern with two flash crowds (around noon and in
// the evening), exponential VCR-jump intervals with a 15-minute mean, and
// peer upload capacities drawn from a bounded Pareto distribution on
// [180 Kbps, 10 Mbps] with shape k = 3.
//
// Rates are expressed per second of simulated time and bandwidths in bytes
// per second. All sampling is driven by a caller-supplied *rand.Rand.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cloudmedia/internal/mathx"
)

// FlashCrowd is one Gaussian arrival surge in the daily pattern.
type FlashCrowd struct {
	PeakHour   float64 // hour of day of the peak, [0, 24)
	WidthHours float64 // Gaussian σ in hours
	Amplitude  float64 // added rate multiplier at the peak
}

// Params configures the trace generator.
type Params struct {
	Channels        int                 // number of video channels
	ZipfExponent    float64             // popularity skew across channels
	BaseArrivalRate float64             // aggregate baseline arrival rate, users/s
	BaseLevel       float64             // off-peak fraction of the baseline rate
	FlashCrowds     []FlashCrowd        // daily surges
	JumpMeanSeconds float64             // mean VCR-jump interval (exponential)
	PeerUplink      mathx.BoundedPareto // per-peer upload bandwidth, bytes/s

	weights []float64 // cached Zipf weights
}

// Default returns parameters matching the paper's experimental settings:
// 20 Zipf channels, ~2500 concurrent users at steady state, two flash
// crowds (noon and evening), 15-minute jump intervals, and Pareto peer
// uplinks on [180 Kbps, 10 Mbps] with k = 3.
func Default() Params {
	uplink, err := mathx.NewBoundedPareto(180e3/8, 10e6/8, 3)
	if err != nil {
		panic("workload: default uplink distribution invalid: " + err.Error())
	}
	return Params{
		Channels:     20,
		ZipfExponent: 0.8,
		// ≈0.8 users/s aggregate × ≈50-minute mean sessions ≈ 2400 concurrent.
		BaseArrivalRate: 0.8,
		BaseLevel:       0.5,
		FlashCrowds: []FlashCrowd{
			{PeakHour: 12, WidthHours: 1.5, Amplitude: 1.0},
			{PeakHour: 20, WidthHours: 1.5, Amplitude: 1.5},
		},
		JumpMeanSeconds: 15 * 60,
		PeerUplink:      uplink,
	}
}

// Validate checks parameter invariants.
func (p Params) Validate() error {
	switch {
	case p.Channels <= 0:
		return fmt.Errorf("workload: non-positive channel count %d", p.Channels)
	case p.ZipfExponent < 0:
		return fmt.Errorf("workload: negative Zipf exponent %v", p.ZipfExponent)
	case p.BaseArrivalRate < 0:
		return fmt.Errorf("workload: negative arrival rate %v", p.BaseArrivalRate)
	case p.BaseLevel < 0:
		return fmt.Errorf("workload: negative base level %v", p.BaseLevel)
	case p.JumpMeanSeconds <= 0:
		return fmt.Errorf("workload: non-positive jump interval %v", p.JumpMeanSeconds)
	}
	for i, fc := range p.FlashCrowds {
		if fc.WidthHours <= 0 {
			return fmt.Errorf("workload: flash crowd %d: non-positive width %v", i, fc.WidthHours)
		}
		if fc.Amplitude < 0 {
			return fmt.Errorf("workload: flash crowd %d: negative amplitude %v", i, fc.Amplitude)
		}
		if fc.PeakHour < 0 || fc.PeakHour >= 24 {
			return fmt.Errorf("workload: flash crowd %d: peak hour %v outside [0,24)", i, fc.PeakHour)
		}
	}
	return nil
}

// Clone returns a deep copy: the flash-crowd list and the cached Zipf
// weights are reallocated, so mutations through the copy never reach the
// original. Scenario derivation (simulate.Scenario.With) relies on this.
func (p Params) Clone() Params {
	p.FlashCrowds = append([]FlashCrowd(nil), p.FlashCrowds...)
	p.weights = append([]float64(nil), p.weights...)
	return p
}

// ChannelWeights returns the Zipf popularity weights (summing to 1).
func (p *Params) ChannelWeights() ([]float64, error) {
	if p.weights == nil {
		w, err := mathx.ZipfWeights(p.Channels, p.ZipfExponent)
		if err != nil {
			return nil, err
		}
		p.weights = w
	}
	return p.weights, nil
}

// RateMultiplier returns the diurnal arrival-rate multiplier at simulated
// time t (seconds since the start of day 0): the base level plus the
// Gaussian flash crowds, evaluated on the 24-hour clock.
func (p Params) RateMultiplier(t float64) float64 {
	hour := math.Mod(t/3600, 24)
	if hour < 0 {
		hour += 24
	}
	m := p.BaseLevel
	for _, fc := range p.FlashCrowds {
		// Circular distance on the 24-hour clock so crowds near midnight wrap.
		d := math.Abs(hour - fc.PeakHour)
		if d > 12 {
			d = 24 - d
		}
		m += fc.Amplitude * math.Exp(-d*d/(2*fc.WidthHours*fc.WidthHours))
	}
	return m
}

// MaxRateMultiplier returns an upper bound on RateMultiplier, used as the
// thinning envelope for non-homogeneous Poisson sampling.
func (p Params) MaxRateMultiplier() float64 {
	m := p.BaseLevel
	for _, fc := range p.FlashCrowds {
		m += fc.Amplitude
	}
	return m
}

// ChannelRate returns channel c's instantaneous arrival rate at time t:
// BaseArrivalRate × zipf(c) × RateMultiplier(t).
func (p *Params) ChannelRate(c int, t float64) (float64, error) {
	w, err := p.ChannelWeights()
	if err != nil {
		return 0, err
	}
	if c < 0 || c >= len(w) {
		return 0, fmt.Errorf("workload: channel %d outside [0,%d)", c, len(w))
	}
	return p.BaseArrivalRate * w[c] * p.RateMultiplier(t), nil
}

// MeanChannelRate approximates channel c's mean arrival rate over
// [start, end) by midpoint sampling of ChannelRate — the true-intensity
// source behind oracle provisioning policies.
func (p *Params) MeanChannelRate(c int, start, end float64) (float64, error) {
	if end <= start {
		return 0, nil
	}
	const steps = 12
	dt := (end - start) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		r, err := p.ChannelRate(c, start+(float64(i)+0.5)*dt)
		if err != nil {
			return 0, err
		}
		sum += r
	}
	return sum / steps, nil
}

// TrueRateSource returns the oracle-policy rate source over a private
// copy of the parameters: the trace's mean arrival intensity per channel
// and interval, with errors (bad channel index) reported as zero demand.
func (p Params) TrueRateSource() func(channel int, start, end float64) float64 {
	return func(channel int, start, end float64) float64 {
		r, err := p.MeanChannelRate(channel, start, end)
		if err != nil {
			return 0
		}
		return r
	}
}

// MaxChannelRate returns the thinning envelope for channel c.
func (p *Params) MaxChannelRate(c int) (float64, error) {
	w, err := p.ChannelWeights()
	if err != nil {
		return 0, err
	}
	if c < 0 || c >= len(w) {
		return 0, fmt.Errorf("workload: channel %d outside [0,%d)", c, len(w))
	}
	return p.BaseArrivalRate * w[c] * p.MaxRateMultiplier(), nil
}

// NextArrival samples the next arrival time for channel c after `now`,
// before `horizon`, from the non-homogeneous Poisson process. It returns
// +Inf if no arrival occurs before the horizon.
func (p *Params) NextArrival(rng *rand.Rand, c int, now, horizon float64) (float64, error) {
	envelope, err := p.MaxChannelRate(c)
	if err != nil {
		return 0, err
	}
	t := mathx.NextNHPPArrival(rng, now, horizon, envelope, func(at float64) float64 {
		//cloudmedia:allow noloss -- thinning callback: on a rate error the zero fallback rejects the candidate arrival
		r, _ := p.ChannelRate(c, at)
		return r
	})
	return t, nil
}

// SampleUplink draws one peer upload capacity in bytes/s.
func (p Params) SampleUplink(rng *rand.Rand) float64 {
	return p.PeerUplink.Sample(rng)
}

// NextJump samples the delay in seconds until a viewer's next VCR jump.
func (p Params) NextJump(rng *rand.Rand) float64 {
	return mathx.Exponential(rng, p.JumpMeanSeconds)
}

// UplinkForRatio returns a bounded Pareto uplink distribution scaled so its
// mean equals ratio × streamingRate — the knob varied in Fig. 11 (ratios
// 0.9, 1.0, 1.2 of the streaming rate r).
func UplinkForRatio(streamingRate, ratio float64) (mathx.BoundedPareto, error) {
	if streamingRate <= 0 {
		return mathx.BoundedPareto{}, fmt.Errorf("workload: non-positive streaming rate %v", streamingRate)
	}
	if ratio <= 0 {
		return mathx.BoundedPareto{}, fmt.Errorf("workload: non-positive uplink ratio %v", ratio)
	}
	base, err := mathx.NewBoundedPareto(180e3/8, 10e6/8, 3)
	if err != nil {
		return mathx.BoundedPareto{}, err
	}
	scale := ratio * streamingRate / base.Mean()
	return mathx.NewBoundedPareto(base.Lo*scale, base.Hi*scale, base.Shape)
}
