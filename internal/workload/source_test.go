package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestNextArrivalFromBitIdenticalToParams pins the seam's core promise:
// sampling arrivals through the Source interface consumes exactly the
// random stream Params.NextArrival consumes, so the refactored engines
// reproduce every pre-seam seeded run bit for bit.
func TestNextArrivalFromBitIdenticalToParams(t *testing.T) {
	p := Default()
	p.Channels = 5
	src := p.Source()

	direct := rand.New(rand.NewSource(99))
	seam := rand.New(rand.NewSource(99))
	now := 0.0
	for i := 0; i < 2000; i++ {
		c := i % p.Channels
		want, err := p.NextArrival(direct, c, now, now+24*3600)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NextArrivalFrom(seam, src, c, now, now+24*3600)
		if err != nil {
			t.Fatal(err)
		}
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("arrival %d: seam %v, direct %v", i, got, want)
		}
		if !math.IsInf(want, 1) {
			now = want
		}
	}
}

// TestSourceIsIndependentOfParams: the adapter holds a private copy, so
// mutating the originating Params never changes an existing source.
func TestSourceIsIndependentOfParams(t *testing.T) {
	p := Default()
	p.Channels = 3
	src := p.Source()
	before, err := src.Rate(0, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	p.BaseArrivalRate *= 10
	p.Channels = 1
	after, err := src.Rate(0, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("source rate moved with the originating params: %v → %v", before, after)
	}
	if src.NumChannels() != 3 {
		t.Fatalf("source channels = %d, want 3", src.NumChannels())
	}

	clone := src.CloneSource()
	if clone.NumChannels() != 3 {
		t.Fatalf("clone channels = %d", clone.NumChannels())
	}
	c1, _ := clone.Rate(1, 0)
	o1, _ := src.Rate(1, 0)
	if c1 != o1 {
		t.Fatalf("clone rate %v != source rate %v", c1, o1)
	}
}

// TestWeightsNormalizes covers the popularity-weights helper, including
// the all-idle uniform fallback.
func TestWeightsNormalizes(t *testing.T) {
	p := Default()
	p.Channels = 4
	w, err := Weights(p.Source(), 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Errorf("weight %d = %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	// Zipf ordering survives normalization.
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Errorf("weights not monotone: w[%d]=%v > w[%d]=%v", i, w[i], i-1, w[i-1])
		}
	}

	idle := p
	idle.BaseArrivalRate = 0
	w, err = Weights(idle.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if v != 0.25 {
			t.Errorf("idle fallback weight = %v, want 0.25", v)
		}
	}
}
