package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// arbitraryParams maps arbitrary fuzz scalars onto a valid Params value,
// so the quick properties range over the whole valid parameter space
// instead of only the paper's point.
func arbitraryParams(rng *rand.Rand) Params {
	p := Default()
	p.Channels = 1 + rng.Intn(40)
	p.ZipfExponent = rng.Float64() * 3
	p.BaseArrivalRate = rng.Float64() * 10
	p.BaseLevel = rng.Float64() * 2
	p.JumpMeanSeconds = 1 + rng.Float64()*3600
	p.FlashCrowds = p.FlashCrowds[:0]
	for i, n := 0, rng.Intn(4); i < n; i++ {
		p.FlashCrowds = append(p.FlashCrowds, FlashCrowd{
			PeakHour:   rng.Float64() * 24,
			WidthHours: 0.1 + rng.Float64()*6,
			Amplitude:  rng.Float64() * 5,
		})
	}
	return p
}

// TestQuickRateMultiplierNonNegative: the diurnal multiplier is ≥ 0 at
// every instant (negative intensities would break Poisson thinning), and
// never exceeds the MaxRateMultiplier envelope.
func TestQuickRateMultiplierNonNegative(t *testing.T) {
	property := func(seed int64, at float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arbitraryParams(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("arbitraryParams produced invalid params: %v", err)
		}
		// Exercise negative and far-future instants too.
		ts := []float64{at, -at, math.Mod(at, 86400), at * 365}
		for _, x := range ts {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			m := p.RateMultiplier(x)
			if m < 0 || math.IsNaN(m) {
				t.Logf("RateMultiplier(%v) = %v", x, m)
				return false
			}
			if env := p.MaxRateMultiplier(); m > env+1e-12 {
				t.Logf("RateMultiplier(%v) = %v exceeds envelope %v", x, m, env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickChannelWeights: Zipf weights sum to 1 and are monotone
// non-increasing in rank for every valid (channels, exponent) pair.
func TestQuickChannelWeights(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arbitraryParams(rng)
		w, err := p.ChannelWeights()
		if err != nil {
			t.Logf("ChannelWeights: %v", err)
			return false
		}
		if len(w) != p.Channels {
			t.Logf("len(weights) = %d, channels = %d", len(w), p.Channels)
			return false
		}
		var sum float64
		for i, v := range w {
			if v < 0 {
				t.Logf("weight %d = %v < 0", i, v)
				return false
			}
			if i > 0 && v > w[i-1]+1e-15 {
				t.Logf("weights not monotone at rank %d: %v > %v", i, v, w[i-1])
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Logf("weights sum to %v", sum)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIndependence: mutating a clone — scalars, flash crowds,
// and the cached Zipf weights — never perturbs the original.
func TestQuickCloneIndependence(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arbitraryParams(rng)
		// Populate the weight cache before cloning so the clone copies it.
		if _, err := p.ChannelWeights(); err != nil {
			t.Logf("ChannelWeights: %v", err)
			return false
		}
		origRate, err := p.ChannelRate(0, 3600)
		if err != nil {
			t.Logf("ChannelRate: %v", err)
			return false
		}
		origCrowds := len(p.FlashCrowds)

		c := p.Clone()
		c.BaseArrivalRate *= 7
		c.FlashCrowds = append(c.FlashCrowds, FlashCrowd{PeakHour: 1, WidthHours: 1, Amplitude: 1})
		if w, err := c.ChannelWeights(); err == nil {
			for i := range w {
				w[i] = -1 // scribble on the clone's cache
			}
		}

		if len(p.FlashCrowds) != origCrowds {
			t.Log("clone's flash-crowd append reached the original")
			return false
		}
		after, err := p.ChannelRate(0, 3600)
		if err != nil {
			t.Logf("ChannelRate after clone mutation: %v", err)
			return false
		}
		if after != origRate {
			t.Logf("original rate moved after clone mutation: %v → %v", origRate, after)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSourceAgreesWithParams: the paramsSource adapter reports
// exactly the parametric rates, envelopes, and interval means — the seam
// introduces no drift.
func TestQuickSourceAgreesWithParams(t *testing.T) {
	property := func(seed int64, at, span float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arbitraryParams(rng)
		src := p.Source()
		if src.NumChannels() != p.Channels {
			return false
		}
		// Clamp the instant and span to a finite simulation-sized domain:
		// beyond ~1e9 s the sum at+span overflows float64 arithmetic into
		// Inf/NaN, where x != x makes equality meaningless.
		if math.IsNaN(at) || math.IsInf(at, 0) {
			at = 0
		}
		at = math.Mod(at, 1e9)
		span = math.Abs(span)
		if math.IsNaN(span) || math.IsInf(span, 0) || span > 1e9 {
			span = 3600
		}
		c := rng.Intn(p.Channels)
		r1, err1 := src.Rate(c, at)
		r2, err2 := p.ChannelRate(c, at)
		if (err1 == nil) != (err2 == nil) || r1 != r2 {
			t.Logf("Rate(%d, %v): source %v/%v, params %v/%v", c, at, r1, err1, r2, err2)
			return false
		}
		m1, err1 := src.MaxRate(c)
		m2, err2 := p.MaxChannelRate(c)
		if (err1 == nil) != (err2 == nil) || m1 != m2 {
			return false
		}
		a1, err1 := src.MeanRate(c, at, at+span)
		a2, err2 := p.MeanChannelRate(c, at, at+span)
		if (err1 == nil) != (err2 == nil) || a1 != a2 {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
