package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cloudmedia/internal/mathx"
)

// Source is the demand seam: per-channel arrival intensity over time.
// The parametric Params (Zipf popularity × diurnal pattern, the paper's
// Sec. VI-A workload) is the default implementation via Params.Source;
// recorded or synthesized traces (internal/trace) are the other. Both
// simulation engines, the provisioning controller's oracle rate feed,
// and the bootstrap estimates all consume demand through this interface,
// so swapping the demand model never touches the engines.
//
// Implementations must be usable read-only from concurrent goroutines
// after construction: the event engine queries Rate from its per-channel
// workers, and the fluid integrator's demand plane fans batched RatesInto
// reads — at distinct time instants — across its worker pool. Any lazy
// caching must happen on the first call, which both engines guarantee to
// make serially during construction (MaxRate for every channel is primed
// before workers start), or behind the implementation's own lock.
type Source interface {
	// NumChannels returns the number of channels the source describes.
	NumChannels() int
	// Rate returns channel c's instantaneous arrival intensity at
	// simulated time t (seconds since the start of the run), in users/s.
	Rate(channel int, t float64) (float64, error)
	// MaxRate returns an upper bound on Rate over all t — the thinning
	// envelope for non-homogeneous Poisson sampling.
	MaxRate(channel int) (float64, error)
	// MeanRate returns the mean arrival intensity over [start, end) — the
	// true-rate feed behind oracle provisioning policies.
	MeanRate(channel int, start, end float64) (float64, error)
	// CloneSource returns a deep, independent copy: mutating or querying
	// the clone never perturbs the original (including lazy caches).
	CloneSource() Source
	// Validate checks the source's invariants.
	Validate() error
}

// BatchSource is an optional Source refinement: fill dst[c] with Rate(c, t)
// for every channel in one call. Sources whose per-channel rates share work
// at a fixed instant — the parametric source's diurnal multiplier, a
// trace's interpolation segment — implement it so tight step loops (the
// fluid integrator, the live serving metrics) pay that work once per step
// instead of once per channel. Implementations must produce bit-identical
// values to per-channel Rate calls, must not allocate, and — like Rate —
// must tolerate concurrent calls at different instants into disjoint dst
// buffers (the fluid integrator batches a span of steps and resolves
// their rate rows in parallel).
type BatchSource interface {
	// RatesInto fills dst[c] with Rate(c, t); len(dst) must equal
	// NumChannels().
	RatesInto(t float64, dst []float64) error
}

// RatesInto fills dst with every channel's instantaneous rate at t, using
// the source's batched path when it has one and falling back to
// per-channel Rate calls otherwise. len(dst) must equal src.NumChannels().
//
//cloudmedia:hotpath
func RatesInto(src Source, t float64, dst []float64) error {
	if len(dst) != src.NumChannels() {
		return rateBufLenError(len(dst), src.NumChannels())
	}
	if bs, ok := src.(BatchSource); ok {
		return bs.RatesInto(t, dst)
	}
	for c := range dst {
		r, err := src.Rate(c, t)
		if err != nil {
			return err
		}
		dst[c] = r
	}
	return nil
}

// Source adapts the parametric workload into the demand seam over a
// private copy of the parameters, so the returned source shares no state
// (including the cached Zipf weights) with the receiver.
func (p Params) Source() Source {
	return &paramsSource{p: p.Clone()}
}

// paramsSource is the parametric Source: Zipf weights × diurnal
// multiplier, delegating to the Params methods unchanged so a parametric
// source is bit-identical to driving the engines from Params directly.
type paramsSource struct {
	p Params
}

func (s *paramsSource) NumChannels() int { return s.p.Channels }

func (s *paramsSource) Rate(channel int, t float64) (float64, error) {
	return s.p.ChannelRate(channel, t)
}

func (s *paramsSource) MaxRate(channel int) (float64, error) {
	return s.p.MaxChannelRate(channel)
}

func (s *paramsSource) MeanRate(channel int, start, end float64) (float64, error) {
	return s.p.MeanChannelRate(channel, start, end)
}

// RatesInto implements BatchSource: the diurnal multiplier (base level plus
// Gaussian flash crowds) is shared by every channel at a fixed instant, so
// it is evaluated once here instead of once per channel. Each entry is
// computed as BaseArrivalRate × w[c] × multiplier in exactly ChannelRate's
// operand order, so the batched values are bit-identical to Rate's.
//
//cloudmedia:hotpath
func (s *paramsSource) RatesInto(t float64, dst []float64) error {
	w, err := s.p.ChannelWeights()
	if err != nil {
		return err
	}
	if len(dst) != len(w) {
		return rateBufLenError(len(dst), len(w))
	}
	m := s.p.RateMultiplier(t)
	for c := range dst {
		dst[c] = s.p.BaseArrivalRate * w[c] * m
	}
	return nil
}

func (s *paramsSource) CloneSource() Source { return &paramsSource{p: s.p.Clone()} }

func (s *paramsSource) Validate() error { return s.p.Validate() }

// NextArrivalFrom samples the next arrival time for channel c after `now`,
// before `horizon`, from the non-homogeneous Poisson process whose
// intensity the source describes. It returns +Inf if no arrival occurs
// before the horizon. For a parametric source this consumes exactly the
// random stream Params.NextArrival consumes, so replacing one with the
// other never perturbs a seeded run.
func NextArrivalFrom(rng *rand.Rand, src Source, c int, now, horizon float64) (float64, error) {
	envelope, err := src.MaxRate(c)
	if err != nil {
		return 0, err
	}
	return NextArrivalThinned(rng, src, c, envelope, now, horizon), nil
}

// NextArrivalThinned is the engine-facing variant of NextArrivalFrom: the
// event engine precomputes each channel's envelope once at construction
// and passes it here from the per-channel arrival loop, so the thinning
// logic lives in exactly one place.
func NextArrivalThinned(rng *rand.Rand, src Source, c int, envelope, now, horizon float64) float64 {
	return mathx.NextNHPPArrival(rng, now, horizon, envelope, func(at float64) float64 {
		//cloudmedia:allow noloss -- thinning callback: on a rate error the zero fallback rejects the candidate arrival
		r, _ := src.Rate(c, at)
		return r
	})
}

// Scaled returns a source whose intensity is the given source's times
// factor — how the relative workload-scale knob (WithScale) applies to
// trace-driven scenarios, where rescaling Params.BaseArrivalRate would
// be a silent no-op. The wrapped source is cloned, so the caller's copy
// stays independent.
func Scaled(src Source, factor float64) (Source, error) {
	if src == nil {
		return nil, fmt.Errorf("workload: nil source")
	}
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("workload: invalid source scale %v", factor)
	}
	return &scaledSource{src: src.CloneSource(), factor: factor}, nil
}

type scaledSource struct {
	src    Source
	factor float64
}

func (s *scaledSource) NumChannels() int { return s.src.NumChannels() }

func (s *scaledSource) Rate(channel int, t float64) (float64, error) {
	r, err := s.src.Rate(channel, t)
	return r * s.factor, err
}

func (s *scaledSource) MaxRate(channel int) (float64, error) {
	r, err := s.src.MaxRate(channel)
	return r * s.factor, err
}

func (s *scaledSource) MeanRate(channel int, start, end float64) (float64, error) {
	r, err := s.src.MeanRate(channel, start, end)
	return r * s.factor, err
}

// RatesInto implements BatchSource by delegating to the wrapped source's
// batch path (or RatesInto's per-channel fallback) and scaling in place,
// preserving Rate's r*factor operand order.
// RatesInto scales the wrapped source's batched rates in place.
//
//cloudmedia:hotpath
func (s *scaledSource) RatesInto(t float64, dst []float64) error {
	if err := RatesInto(s.src, t, dst); err != nil {
		return err
	}
	for c := range dst {
		dst[c] *= s.factor
	}
	return nil
}

func (s *scaledSource) CloneSource() Source {
	return &scaledSource{src: s.src.CloneSource(), factor: s.factor}
}

func (s *scaledSource) Validate() error { return s.src.Validate() }

// Weights returns the source's popularity weights at time t: each
// channel's share of the aggregate arrival intensity, summing to 1. When
// every channel is idle at t the split is uniform.
func Weights(src Source, t float64) ([]float64, error) {
	n := src.NumChannels()
	if n <= 0 {
		return nil, fmt.Errorf("workload: source has no channels")
	}
	w := make([]float64, n)
	var total float64
	for c := 0; c < n; c++ {
		r, err := src.Rate(c, t)
		if err != nil {
			return nil, err
		}
		w[c] = r
		total += r
	}
	if total <= 0 {
		for c := range w {
			w[c] = 1 / float64(n)
		}
		return w, nil
	}
	for c := range w {
		w[c] /= total
	}
	return w, nil
}

// rateBufLenError is the cold half of the RatesInto length guards, kept
// out of line so the annotated hot bodies contain no fmt machinery.
func rateBufLenError(n, channels int) error {
	return fmt.Errorf("workload: rate buffer length %d != channels %d", n, channels)
}
