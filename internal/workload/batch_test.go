package workload

import (
	"testing"
)

// RatesInto must be bit-identical to per-channel Rate — the fluid
// engine's batched reads may not change any trajectory.
func TestRatesIntoMatchesRate(t *testing.T) {
	p := Default()
	p.Channels = 5
	base := p.Source()
	scaled, err := Scaled(base, 1.7)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]Source{"params": base, "scaled": scaled} {
		dst := make([]float64, p.Channels)
		for _, tt := range []float64{0, 1, 3600, 12*3600 + 0.5, 86399, 2 * 86400} {
			if err := RatesInto(src, tt, dst); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for c := 0; c < p.Channels; c++ {
				want, err := src.Rate(c, tt)
				if err != nil {
					t.Fatal(err)
				}
				if dst[c] != want {
					t.Fatalf("%s: RatesInto(%v)[%d] = %v, Rate = %v", name, tt, c, dst[c], want)
				}
			}
		}
		if err := RatesInto(src, 0, make([]float64, 2)); err == nil {
			t.Fatalf("%s: short buffer accepted", name)
		}
	}
}

// The generic fallback serves sources without the BatchSource fast path.
type scalarOnly struct{ Source }

func TestRatesIntoFallback(t *testing.T) {
	p := Default()
	p.Channels = 3
	src := scalarOnly{p.Source()}
	dst := make([]float64, 3)
	if err := RatesInto(src, 7200, dst); err != nil {
		t.Fatal(err)
	}
	for c := range dst {
		want, err := src.Rate(c, 7200)
		if err != nil {
			t.Fatal(err)
		}
		if dst[c] != want {
			t.Fatalf("fallback[%d] = %v, Rate = %v", c, dst[c], want)
		}
	}
}

// The batched read is the per-step hot path of the fluid engine: it must
// not allocate.
func TestRatesIntoAllocFree(t *testing.T) {
	p := Default()
	p.Channels = 8
	src := p.Source()
	dst := make([]float64, p.Channels)
	// Warm the popularity-weight cache.
	if err := RatesInto(src, 0, dst); err != nil {
		t.Fatal(err)
	}
	now := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		now += 1
		_ = RatesInto(src, now, dst)
	})
	if allocs > 0 {
		t.Fatalf("RatesInto allocates %.1f times per call", allocs)
	}
}
