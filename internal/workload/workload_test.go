package workload

import (
	"math"
	"math/rand"
	"testing"

	"cloudmedia/internal/mathx"
)

func TestDefaultValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default params invalid: %v", err)
	}
	if p.Channels != 20 {
		t.Errorf("Channels = %d, want 20 (the paper deploys 20 channels)", p.Channels)
	}
	if p.JumpMeanSeconds != 900 {
		t.Errorf("JumpMeanSeconds = %v, want 900 (15 minutes)", p.JumpMeanSeconds)
	}
	if len(p.FlashCrowds) != 2 {
		t.Errorf("FlashCrowds = %d, want 2 (noon and evening)", len(p.FlashCrowds))
	}
	// Paper's uplink range: [180 Kbps, 10 Mbps] in bytes/s.
	if p.PeerUplink.Lo != 22.5e3 || p.PeerUplink.Hi != 1.25e6 || p.PeerUplink.Shape != 3 {
		t.Errorf("uplink distribution = %+v", p.PeerUplink)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Channels = 0 },
		func(p *Params) { p.ZipfExponent = -1 },
		func(p *Params) { p.BaseArrivalRate = -1 },
		func(p *Params) { p.BaseLevel = -0.1 },
		func(p *Params) { p.JumpMeanSeconds = 0 },
		func(p *Params) { p.FlashCrowds[0].WidthHours = 0 },
		func(p *Params) { p.FlashCrowds[0].Amplitude = -1 },
		func(p *Params) { p.FlashCrowds[0].PeakHour = 25 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestChannelWeightsZipf(t *testing.T) {
	p := Default()
	w, err := p.ChannelWeights()
	if err != nil {
		t.Fatalf("ChannelWeights: %v", err)
	}
	if len(w) != 20 {
		t.Fatalf("len = %d", len(w))
	}
	if !mathx.ApproxEqual(mathx.Sum(w), 1, 1e-9) {
		t.Errorf("weights sum to %v", mathx.Sum(w))
	}
	if w[0] <= w[19] {
		t.Error("channel 0 should be the most popular")
	}
}

func TestRateMultiplierDailyPattern(t *testing.T) {
	p := Default()
	night := p.RateMultiplier(4 * 3600)    // 4 am
	noon := p.RateMultiplier(12 * 3600)    // noon flash crowd
	evening := p.RateMultiplier(20 * 3600) // evening flash crowd
	if noon <= night {
		t.Errorf("noon %v should exceed night %v", noon, night)
	}
	if evening <= noon {
		t.Errorf("evening crowd %v should be the daily peak (noon %v)", evening, noon)
	}
	// Pattern repeats daily.
	if got := p.RateMultiplier(12*3600 + 24*3600); !mathx.ApproxEqual(got, noon, 1e-9) {
		t.Errorf("day-2 noon %v != day-1 noon %v", got, noon)
	}
	// Envelope dominates everywhere.
	max := p.MaxRateMultiplier()
	for h := 0.0; h < 24; h += 0.25 {
		if m := p.RateMultiplier(h * 3600); m > max+1e-9 {
			t.Errorf("multiplier %v at hour %v exceeds envelope %v", m, h, max)
		}
	}
}

func TestRateMultiplierWrapsMidnight(t *testing.T) {
	p := Default()
	p.FlashCrowds = []FlashCrowd{{PeakHour: 23.5, WidthHours: 1, Amplitude: 1}}
	before := p.RateMultiplier(23 * 3600)
	after := p.RateMultiplier(0.25 * 3600) // 00:15, within a σ of the wrapped peak
	if after <= p.BaseLevel+0.1 {
		t.Errorf("crowd should spill past midnight: %v (before: %v)", after, before)
	}
}

func TestChannelRateOrderingAndErrors(t *testing.T) {
	p := Default()
	r0, err := p.ChannelRate(0, 12*3600)
	if err != nil {
		t.Fatalf("ChannelRate: %v", err)
	}
	r19, err := p.ChannelRate(19, 12*3600)
	if err != nil {
		t.Fatalf("ChannelRate: %v", err)
	}
	if r0 <= r19 {
		t.Errorf("popular channel rate %v should exceed tail %v", r0, r19)
	}
	if _, err := p.ChannelRate(20, 0); err == nil {
		t.Error("out-of-range channel: want error")
	}
	if _, err := p.MaxChannelRate(-1); err == nil {
		t.Error("negative channel: want error")
	}
}

func TestNextArrivalStatistics(t *testing.T) {
	p := Default()
	p.Channels = 1
	p.ZipfExponent = 0
	p.BaseArrivalRate = 1
	p.BaseLevel = 1
	p.FlashCrowds = nil // homogeneous rate 1/s
	rng := rand.New(rand.NewSource(77))
	var count int
	now := 0.0
	for {
		next, err := p.NextArrival(rng, 0, now, 1000)
		if err != nil {
			t.Fatalf("NextArrival: %v", err)
		}
		if math.IsInf(next, 1) {
			break
		}
		if next <= now {
			t.Fatalf("non-increasing arrival %v after %v", next, now)
		}
		now = next
		count++
	}
	if count < 900 || count > 1100 {
		t.Errorf("arrivals = %d, want ≈1000", count)
	}
}

func TestNextArrivalPeaksAtFlashCrowd(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(78))
	countIn := func(startHour, hours float64) int {
		now := startHour * 3600
		horizon := now + hours*3600
		n := 0
		for {
			next, err := p.NextArrival(rng, 0, now, horizon)
			if err != nil {
				t.Fatalf("NextArrival: %v", err)
			}
			if math.IsInf(next, 1) {
				break
			}
			now = next
			n++
		}
		return n
	}
	night := countIn(3, 2)    // 3–5 am
	evening := countIn(19, 2) // 19–21, around the evening crowd
	if evening <= night*2 {
		t.Errorf("evening arrivals %d should dwarf night %d", evening, night)
	}
}

func TestSampleUplinkWithinPaperRange(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 5000; i++ {
		u := p.SampleUplink(rng)
		if u < 22.5e3 || u > 1.25e6 {
			t.Fatalf("uplink %v outside paper range", u)
		}
	}
}

func TestNextJumpMean(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(80))
	var s mathx.Summary
	for i := 0; i < 50000; i++ {
		s.Add(p.NextJump(rng))
	}
	if !mathx.ApproxEqual(s.Mean(), 900, 0.05) {
		t.Errorf("jump mean %v, want ≈900 s", s.Mean())
	}
}

func TestUplinkForRatio(t *testing.T) {
	const r = 50e3                                   // paper streaming rate, bytes/s
	for _, ratio := range []float64{0.9, 1.0, 1.2} { // Fig. 11's three settings
		d, err := UplinkForRatio(r, ratio)
		if err != nil {
			t.Fatalf("UplinkForRatio(%v): %v", ratio, err)
		}
		if !mathx.ApproxEqual(d.Mean(), ratio*r, 1e-6) {
			t.Errorf("ratio %v: mean %v, want %v", ratio, d.Mean(), ratio*r)
		}
		if d.Shape != 3 {
			t.Errorf("ratio %v: shape %v changed", ratio, d.Shape)
		}
	}
	if _, err := UplinkForRatio(0, 1); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := UplinkForRatio(r, 0); err == nil {
		t.Error("zero ratio: want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Default()
	if _, err := p.ChannelWeights(); err != nil { // populate the cache
		t.Fatal(err)
	}
	c := p.Clone()
	c.FlashCrowds[0].PeakHour = 3
	cw, err := c.ChannelWeights()
	if err != nil {
		t.Fatal(err)
	}
	cw[0] = -1

	if p.FlashCrowds[0].PeakHour == 3 {
		t.Error("clone shares flash crowds")
	}
	pw, err := p.ChannelWeights()
	if err != nil {
		t.Fatal(err)
	}
	if pw[0] == -1 {
		t.Error("clone shares the cached Zipf weights")
	}
}
