package provision

import (
	"errors"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/mathx"
)

const paperChunkBytes = 15e6 // rT₀ = 50 KB/s × 300 s

func demandsFor(values ...float64) []ChunkDemand {
	out := make([]ChunkDemand, len(values))
	for i, v := range values {
		out[i] = ChunkDemand{Channel: 0, Chunk: i, Demand: v}
	}
	return out
}

func TestPlanStoragePrefersHighMarginalUtility(t *testing.T) {
	clusters := cloud.DefaultNFSClusters()
	// standard: 0.8/1.11e-4 ≈ 7207; high: 1.0/2.08e-4 ≈ 4808 → standard wins.
	plan, err := PlanStorage(demandsFor(10e6, 5e6), paperChunkBytes, clusters, 1)
	if err != nil {
		t.Fatalf("PlanStorage: %v", err)
	}
	for _, pl := range plan.Placements {
		if pl.Cluster != "standard" {
			t.Errorf("chunk %d placed on %q, want standard (best u/p)", pl.Chunk, pl.Cluster)
		}
	}
	if plan.GBPerCluster["standard"] <= 0 {
		t.Error("no storage accounted on standard")
	}
	wantUtility := 0.8 * (10e6 + 5e6)
	if !mathx.ApproxEqual(plan.Utility, wantUtility, 1e-9) {
		t.Errorf("Utility = %v, want %v", plan.Utility, wantUtility)
	}
}

func TestPlanStorageOverflowsToSecondCluster(t *testing.T) {
	clusters := []cloud.NFSClusterSpec{
		{Name: "tiny", Utility: 1, PricePerGBHour: 1e-4, CapacityGB: 0.02}, // fits one 15 MB chunk
		{Name: "big", Utility: 0.5, PricePerGBHour: 1e-4, CapacityGB: 1000},
	}
	plan, err := PlanStorage(demandsFor(10, 5, 1), paperChunkBytes, clusters, 10)
	if err != nil {
		t.Fatalf("PlanStorage: %v", err)
	}
	// Highest demand chunk gets the better cluster; the rest overflow.
	byChunk := map[int]string{}
	for _, pl := range plan.Placements {
		byChunk[pl.Chunk] = pl.Cluster
	}
	if byChunk[0] != "tiny" {
		t.Errorf("hottest chunk on %q, want tiny", byChunk[0])
	}
	if byChunk[1] != "big" || byChunk[2] != "big" {
		t.Errorf("overflow placement: %v", byChunk)
	}
}

func TestPlanStorageBudgetInfeasible(t *testing.T) {
	clusters := cloud.DefaultNFSClusters()
	// 20 chunks × 15 MB ≈ 0.3 GB; budget of zero cannot store anything.
	demands := make([]ChunkDemand, 20)
	for i := range demands {
		demands[i] = ChunkDemand{Channel: 0, Chunk: i, Demand: 1e6}
	}
	_, err := PlanStorage(demands, paperChunkBytes, clusters, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanStorageCapacityInfeasible(t *testing.T) {
	clusters := []cloud.NFSClusterSpec{
		{Name: "only", Utility: 1, PricePerGBHour: 1e-4, CapacityGB: 0.02},
	}
	_, err := PlanStorage(demandsFor(1, 1), paperChunkBytes, clusters, 100)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanStorageBudgetSkipsToAffordableCluster(t *testing.T) {
	// Best cluster is unaffordable; the heuristic must still place chunks
	// on the cheaper one rather than fail.
	clusters := []cloud.NFSClusterSpec{
		{Name: "gold", Utility: 10, PricePerGBHour: 100, CapacityGB: 100},
		{Name: "cheap", Utility: 1, PricePerGBHour: 1e-6, CapacityGB: 100},
	}
	plan, err := PlanStorage(demandsFor(5), paperChunkBytes, clusters, 0.01)
	if err != nil {
		t.Fatalf("PlanStorage: %v", err)
	}
	if plan.Placements[0].Cluster != "cheap" {
		t.Errorf("placed on %q, want cheap", plan.Placements[0].Cluster)
	}
}

func TestPlanStoragePaperCost(t *testing.T) {
	// Sec. VI-C: storing 20 channels (100 min each) costs ≈ $0.018/day.
	// 20 channels × 20 chunks × 15 MB = 6 GB on the standard cluster:
	// 6 × 1.11e-4 × 24 ≈ $0.016/day. Verify the same order of magnitude.
	var demands []ChunkDemand
	for c := 0; c < 20; c++ {
		for i := 0; i < 20; i++ {
			demands = append(demands, ChunkDemand{Channel: c, Chunk: i, Demand: float64(1000 - c)})
		}
	}
	plan, err := PlanStorage(demands, paperChunkBytes, cloud.DefaultNFSClusters(), 1)
	if err != nil {
		t.Fatalf("PlanStorage: %v", err)
	}
	perDay := plan.CostPerHour * 24
	if perDay < 0.005 || perDay > 0.05 {
		t.Errorf("daily storage cost $%.4f outside the paper's ≈$0.018 ballpark", perDay)
	}
}

func TestPlanStorageValidation(t *testing.T) {
	clusters := cloud.DefaultNFSClusters()
	if _, err := PlanStorage(demandsFor(1), 0, clusters, 1); err == nil {
		t.Error("zero chunk size: want error")
	}
	if _, err := PlanStorage(demandsFor(1), 1, nil, 1); err == nil {
		t.Error("no clusters: want error")
	}
	if _, err := PlanStorage(demandsFor(1), 1, clusters, -1); err == nil {
		t.Error("negative budget: want error")
	}
	if _, err := PlanStorage([]ChunkDemand{{Channel: 0, Chunk: 0, Demand: -1}}, 1, clusters, 1); err == nil {
		t.Error("negative demand: want error")
	}
	dup := []ChunkDemand{{Channel: 0, Chunk: 0, Demand: 1}, {Channel: 0, Chunk: 0, Demand: 2}}
	if _, err := PlanStorage(dup, 1, clusters, 1); err == nil {
		t.Error("duplicate chunk: want error")
	}
}

func TestPlanStorageUtilityPerChannel(t *testing.T) {
	demands := []ChunkDemand{
		{Channel: 0, Chunk: 0, Demand: 4e6},
		{Channel: 1, Chunk: 0, Demand: 2e6},
	}
	plan, err := PlanStorage(demands, paperChunkBytes, cloud.DefaultNFSClusters(), 1)
	if err != nil {
		t.Fatalf("PlanStorage: %v", err)
	}
	if plan.UtilityPerChannel[0] <= plan.UtilityPerChannel[1] {
		t.Errorf("channel utilities %v should order by demand", plan.UtilityPerChannel)
	}
	total := plan.UtilityPerChannel[0] + plan.UtilityPerChannel[1]
	if !mathx.ApproxEqual(total, plan.Utility, 1e-9) {
		t.Errorf("per-channel utilities %v do not sum to %v", total, plan.Utility)
	}
}
