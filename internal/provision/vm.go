package provision

import (
	"fmt"
	"math"
	"sort"

	"cloudmedia/internal/cloud"
)

// VMAllocation records the (possibly fractional) number of VMs from one
// virtual cluster assigned to serve one chunk: z(c,i,v) of Eqn. (7).
type VMAllocation struct {
	Channel int
	Chunk   int
	Cluster string
	VMs     float64
}

// VMPlan is the outcome of the VM-configuration heuristic.
type VMPlan struct {
	// Allocations lists every z > 0 entry, in greedy order.
	Allocations []VMAllocation
	// VMsPerCluster sums fractional allocations per cluster.
	VMsPerCluster map[string]float64
	// CostPerHour is Σ p̃_v · z, dollars per hour (the budget constraint).
	CostPerHour float64
	// Utility is the objective value Σ ũ_v · z.
	Utility float64
	// UtilityPerChannel splits the objective by channel — Fig. 9's series.
	UtilityPerChannel map[int]float64
}

// RentalVMs returns the integer VM count to actually rent from each
// cluster: fractional shares pack onto shared VMs (consecutive chunks of a
// channel preferentially share, which the greedy order's stable tie-break
// arranges), so the rental is the ceiling of the cluster total.
func (p VMPlan) RentalVMs() map[string]int {
	out := make(map[string]int, len(p.VMsPerCluster))
	for name, v := range p.VMsPerCluster {
		out[name] = int(math.Ceil(v - 1e-9))
	}
	return out
}

// TotalVMs returns the fractional VM total across clusters, summed in
// sorted cluster order so the float result does not depend on map
// iteration order.
func (p VMPlan) TotalVMs() float64 {
	names := make([]string, 0, len(p.VMsPerCluster))
	for name := range p.VMsPerCluster {
		names = append(names, name)
	}
	sort.Strings(names)
	var t float64
	for _, name := range names {
		t += p.VMsPerCluster[name]
	}
	return t
}

// PlanVMs runs the VM-configuration heuristic of Sec. V-A2. vmBandwidth is
// R in bytes/s; budgetPerHour is B_M. Each chunk needs Δ/R VMs; demand is
// filled from clusters in descending ũ_v/p̃_v order, splitting across
// clusters when the best one runs out of VMs.
func PlanVMs(demands []ChunkDemand, vmBandwidth float64, clusters []cloud.VMClusterSpec, budgetPerHour float64) (VMPlan, error) {
	if err := validateDemands(demands); err != nil {
		return VMPlan{}, err
	}
	if vmBandwidth <= 0 {
		return VMPlan{}, fmt.Errorf("provision: non-positive VM bandwidth %v", vmBandwidth)
	}
	if len(clusters) == 0 {
		return VMPlan{}, fmt.Errorf("provision: no VM clusters")
	}
	if budgetPerHour < 0 {
		return VMPlan{}, fmt.Errorf("provision: negative VM budget %v", budgetPerHour)
	}
	for _, s := range clusters {
		if err := s.Validate(); err != nil {
			return VMPlan{}, err
		}
	}

	order := make([]cloud.VMClusterSpec, len(clusters))
	copy(order, clusters)
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].MarginalUtility() > order[b].MarginalUtility()
	})

	plan := VMPlan{
		VMsPerCluster:     make(map[string]float64, len(clusters)),
		UtilityPerChannel: make(map[int]float64),
	}
	free := make(map[string]float64, len(order))
	for _, s := range order {
		free[s.Name] = float64(s.MaxVMs)
	}

	for _, d := range sortByDemand(demands) {
		need := d.Demand / vmBandwidth
		if need == 0 {
			continue
		}
		for _, s := range order {
			if need <= 1e-12 {
				break
			}
			avail := free[s.Name]
			if avail <= 1e-12 {
				continue
			}
			take := math.Min(need, avail)
			// Respect the budget: shrink the take if it would overshoot.
			if maxAffordable := (budgetPerHour - plan.CostPerHour) / s.PricePerHour; take > maxAffordable {
				take = maxAffordable
			}
			if take <= 1e-12 {
				continue
			}
			free[s.Name] -= take
			plan.VMsPerCluster[s.Name] += take
			plan.CostPerHour += take * s.PricePerHour
			plan.Utility += s.Utility * take
			plan.UtilityPerChannel[d.Channel] += s.Utility * take
			plan.Allocations = append(plan.Allocations, VMAllocation{
				Channel: d.Channel, Chunk: d.Chunk, Cluster: s.Name, VMs: take,
			})
			need -= take
		}
		if need > 1e-9 {
			return VMPlan{}, fmt.Errorf(
				"%w: chunk (%d,%d) still needs %.3f VMs with budget $%.2f/h", ErrInfeasible, d.Channel, d.Chunk, need, budgetPerHour)
		}
	}
	return plan, nil
}

// CapacityPerChunk converts a VM plan back into the per-chunk upload
// capacity (bytes/s) the cloud will provide, keyed by (channel, chunk).
func (p VMPlan) CapacityPerChunk(vmBandwidth float64) map[[2]int]float64 {
	out := make(map[[2]int]float64, len(p.Allocations))
	for _, a := range p.Allocations {
		out[[2]int{a.Channel, a.Chunk}] += a.VMs * vmBandwidth
	}
	return out
}
