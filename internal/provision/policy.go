package provision

import (
	"errors"
	"fmt"
	"math"

	"cloudmedia/internal/cloud"
)

// PlanRequest is everything the controller hands a provisioning policy at
// one interval boundary: the predicted per-chunk cloud demands, the
// negotiated cluster catalog, and the budgets. It is the exact planning
// surface core.Controller consumed before the Policy seam existed, so any
// policy sees precisely what the paper's greedy heuristic saw.
type PlanRequest struct {
	// Time is the simulated time of the round, seconds.
	Time float64
	// IntervalSeconds is the provisioning period T.
	IntervalSeconds float64
	// Demands is the predicted per-chunk cloud demand for the upcoming
	// interval (bytes/s), channel-major.
	Demands []ChunkDemand
	// Future holds demand forecasts for the intervals after the upcoming
	// one: Future[0] covers [Time+T, Time+2T), and so on. The controller
	// fills exactly Policy.Lookahead() entries; myopic policies see nil.
	Future [][]ChunkDemand
	// VMBandwidth is R, the per-VM upload bandwidth from the negotiated
	// catalog (bytes/s).
	VMBandwidth float64
	// ChunkBytes is the uniform chunk size rT₀ in bytes (storage planning).
	ChunkBytes float64
	// VMClusters and NFSClusters are the negotiated rental catalogs.
	VMClusters  []cloud.VMClusterSpec
	NFSClusters []cloud.NFSClusterSpec
	// VMBudgetPerHour and StorageBudgetPerHour are B_M and B_S in $/hour.
	VMBudgetPerHour      float64
	StorageBudgetPerHour float64
	// StorageChangeThreshold is the Sec. V-B trigger: storage is replanned
	// only when total demand moved by more than this fraction since the
	// last storage plan. 0 replans every round.
	StorageChangeThreshold float64
	// Pricing is the plan the ledger bills this run under. Risk-aware
	// policies read the spot tier from it (fraction at risk, interruption
	// probability) to fold expected interruption loss into their targets;
	// the zero value is pure on-demand and carries no risk.
	Pricing cloud.PricingPlan
}

// totalDemand sums the request's current-interval demand in input order
// (the same accumulation order the pre-seam controller used, so totals are
// bit-identical).
func (r PlanRequest) totalDemand() float64 {
	var t float64
	for _, d := range r.Demands {
		t += d.Demand
	}
	return t
}

// PlanResult is one policy decision: the plans to apply plus diagnostics.
type PlanResult struct {
	VMPlan      VMPlan
	StoragePlan StoragePlan
	// DemandScale < 1 records that the budget was infeasible and demand
	// was scaled down to fit (the paper's "increase your budget" signal).
	DemandScale float64
	// StorageErr is non-nil when storage planning failed this round; the
	// returned StoragePlan is then the previous (stale) plan, which stays
	// applied. The controller surfaces it on the IntervalRecord and in the
	// ledger diagnostics.
	StorageErr error
}

// Policy is the provisioning-policy seam: how predicted demand becomes a
// rental plan each interval. Implementations are stateless value specs
// (safe to share across scenarios, like core.Predictor); per-run mutable
// state lives in the Planner a controller obtains from NewPlanner, so two
// concurrent runs of one Scenario never share planner state.
type Policy interface {
	// Name is the policy's CLI/CSV spelling.
	Name() string
	// Lookahead is how many intervals of demand forecasts beyond the
	// upcoming one the policy wants in PlanRequest.Future; 0 for myopic
	// policies.
	Lookahead() int
	// Oracle reports whether the policy plans on the true (realized)
	// arrival intensity instead of the predictor's forecasts. The
	// controller honours it only when a true-rate source is configured.
	Oracle() bool
	// NewPlanner returns a fresh per-run planner.
	NewPlanner() Planner
}

// Planner carries one run's policy state and produces a plan per round.
type Planner interface {
	Plan(req PlanRequest) (PlanResult, error)
}

// FutureDemander is an optional Planner refinement: a planner whose need
// for future forecasts changes over the run (e.g. StaticPeak only needs
// the horizon for its first plan). When implemented and false, the
// controller skips computing PlanRequest.Future for the round — the
// forecasts are the expensive part of the control path.
type FutureDemander interface {
	NeedsFuture() bool
}

// ParsePolicy converts a command-line spelling into a Policy with its
// default parameters. It accepts "greedy", "lookahead", "oracle", and
// "staticpeak" (or "static-peak").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "greedy":
		return Greedy{}, nil
	case "lookahead":
		return Lookahead{}, nil
	case "oracle":
		return Oracle{}, nil
	case "staticpeak", "static-peak":
		return StaticPeak{}, nil
	case "lookahead-hedged", "hedged":
		return Lookahead{SpotHedge: true}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want greedy, lookahead, lookahead-hedged, oracle, or staticpeak)", s)
	}
}

// PolicyNames lists the ParsePolicy spellings, for CLI help and sweeps.
func PolicyNames() []string {
	return []string{"greedy", "lookahead", "lookahead-hedged", "oracle", "staticpeak"}
}

// Greedy is the paper's policy (Sec. V-A/V-B): every interval, run the
// greedy VM heuristic on the predicted demand, shrinking demand when the
// budget is infeasible, and replan storage when total demand has moved by
// more than the change threshold. It is the default, and reproduces the
// pre-seam controller bit for bit.
type Greedy struct{}

// Name implements Policy.
func (Greedy) Name() string { return "greedy" }

// Lookahead implements Policy.
func (Greedy) Lookahead() int { return 0 }

// Oracle implements Policy.
func (Greedy) Oracle() bool { return false }

// NewPlanner implements Policy.
func (Greedy) NewPlanner() Planner { return &greedyPlanner{} }

type greedyPlanner struct {
	storage storageState
}

func (p *greedyPlanner) Plan(req PlanRequest) (PlanResult, error) {
	vmPlan, scale, err := planWithScaling(req.Demands, req.VMBandwidth, req.VMClusters, req.VMBudgetPerHour)
	if err != nil {
		return PlanResult{}, err
	}
	res := PlanResult{VMPlan: vmPlan, DemandScale: scale}
	res.StoragePlan, res.StorageErr = p.storage.plan(req, req.totalDemand())
	return res, nil
}

// Oracle plans exactly like Greedy but on the true arrival intensity of
// the workload trace rather than the predictor's forecasts — the
// perfect-prediction upper bound on the cost/quality frontier. Without a
// configured true-rate source it degrades to Greedy.
type Oracle struct{}

// Name implements Policy.
func (Oracle) Name() string { return "oracle" }

// Lookahead implements Policy.
func (Oracle) Lookahead() int { return 0 }

// Oracle implements Policy.
func (Oracle) Oracle() bool { return true }

// NewPlanner implements Policy.
func (Oracle) NewPlanner() Planner { return &greedyPlanner{} }

// Lookahead provisions for the per-chunk maximum over the upcoming
// interval and the next K predicted intervals, and tears capacity down
// only after the lower target has persisted for Hysteresis consecutive
// rounds — trading rental dollars for robustness to demand ramps and
// against rent/release thrash. With the paper's last-interval predictor
// the forecasts are flat, so the lookahead is only informative with a
// trend-aware predictor (EWMA, DiurnalMemory, …); the hysteresis applies
// regardless.
type Lookahead struct {
	// K is the number of future intervals considered; 0 means 3.
	K int
	// Hysteresis is the number of consecutive rounds a smaller plan must
	// persist before capacity is released; 0 means 2, 1 releases
	// immediately.
	Hysteresis int
	// SpotHedge folds the pricing plan's spot-interruption risk into the
	// plan: targets grow by 1/(1 − fraction_at_risk), where the fraction
	// at risk is the spot share times the per-interval interruption
	// probability (clamped so the multiplier never exceeds 1.5×). Under a
	// mass preemption the surviving capacity then still covers the
	// unhedged demand in expectation; on risk-free plans (no spot tier)
	// the multiplier is exactly 1 and the policy is plain Lookahead.
	SpotHedge bool
}

// Name implements Policy.
func (l Lookahead) Name() string {
	if l.SpotHedge {
		return "lookahead-hedged"
	}
	return "lookahead"
}

// Lookahead implements Policy.
func (l Lookahead) Lookahead() int {
	if l.K <= 0 {
		return 3
	}
	return l.K
}

// Oracle implements Policy.
func (Lookahead) Oracle() bool { return false }

// Validate checks the parameters.
func (l Lookahead) Validate() error {
	if l.K < 0 {
		return fmt.Errorf("provision: negative lookahead %d", l.K)
	}
	if l.Hysteresis < 0 {
		return fmt.Errorf("provision: negative hysteresis %d", l.Hysteresis)
	}
	return nil
}

// NewPlanner implements Policy.
func (l Lookahead) NewPlanner() Planner {
	h := l.Hysteresis
	if h == 0 {
		h = 2
	}
	return &lookaheadPlanner{hysteresis: h, hedge: l.SpotHedge}
}

type lookaheadPlanner struct {
	hysteresis int
	hedge      bool
	storage    storageState

	have      bool
	lastPlan  VMPlan
	lastVMs   float64
	lastScale float64
	below     int
}

// hedgeMultiplier prices the pricing plan's interruption risk into a
// capacity multiplier m ≥ 1: the fraction of provisioned capacity at risk
// per interval is spotFraction × P(interruption in T), and provisioning
// 1/(1−atRisk) keeps the expected surviving capacity at the unhedged
// target through a mass preemption. The at-risk fraction is clamped to
// 1/3 (m ≤ 1.5) so a pathological plan can never triple the bill.
func hedgeMultiplier(p cloud.PricingPlan, intervalSeconds float64) float64 {
	if p.SpotFraction <= 0 || p.SpotInterruption <= 0 {
		return 1
	}
	pInt := p.SpotInterruption * intervalSeconds / 3600
	if pInt > 1 {
		pInt = 1
	}
	atRisk := p.SpotFraction * pInt
	if atRisk > 1.0/3 {
		atRisk = 1.0 / 3
	}
	return 1 / (1 - atRisk)
}

func (p *lookaheadPlanner) Plan(req PlanRequest) (PlanResult, error) {
	target := maxDemands(req.Demands, req.Future)
	if p.hedge {
		if m := hedgeMultiplier(req.Pricing, req.IntervalSeconds); m != 1 {
			for i := range target {
				target[i].Demand *= m
			}
		}
	}
	vmPlan, scale, err := planWithScaling(target, req.VMBandwidth, req.VMClusters, req.VMBudgetPerHour)
	if err != nil {
		return PlanResult{}, err
	}
	// Tear-down hysteresis: adopt larger plans immediately, smaller ones
	// only once the shrink has persisted. A held plan keeps its own
	// DemandScale so a budget-infeasibility signal is never masked.
	vms := vmPlan.TotalVMs()
	if p.have && vms < p.lastVMs {
		p.below++
		if p.below < p.hysteresis {
			vmPlan, vms, scale = p.lastPlan, p.lastVMs, p.lastScale
		} else {
			p.below = 0
		}
	} else {
		p.below = 0
	}
	p.have, p.lastPlan, p.lastVMs, p.lastScale = true, vmPlan, vms, scale

	res := PlanResult{VMPlan: vmPlan, DemandScale: scale}
	res.StoragePlan, res.StorageErr = p.storage.plan(req, req.totalDemand())
	return res, nil
}

// StaticPeak is the fixed-provisioning baseline generalized: one rental,
// sized at t=0 for the peak demand over the next Intervals intervals of
// the true workload trace, held unchanged for the whole run. It is what a
// provider without elastic provisioning would buy.
type StaticPeak struct {
	// Intervals is the horizon whose peak is provisioned; 0 means 24 (a
	// day of hourly intervals).
	Intervals int
}

// Name implements Policy.
func (StaticPeak) Name() string { return "staticpeak" }

// Lookahead implements Policy.
func (s StaticPeak) Lookahead() int {
	if s.Intervals <= 0 {
		return 24
	}
	return s.Intervals
}

// Oracle implements Policy.
func (StaticPeak) Oracle() bool { return true }

// Validate checks the parameters.
func (s StaticPeak) Validate() error {
	if s.Intervals < 0 {
		return fmt.Errorf("provision: negative static-peak horizon %d", s.Intervals)
	}
	return nil
}

// NewPlanner implements Policy.
func (StaticPeak) NewPlanner() Planner { return &staticPeakPlanner{} }

type staticPeakPlanner struct {
	planned bool
	first   PlanResult
}

// NeedsFuture implements FutureDemander: the horizon matters only until
// the one-shot rental is sized.
func (p *staticPeakPlanner) NeedsFuture() bool { return !p.planned }

func (p *staticPeakPlanner) Plan(req PlanRequest) (PlanResult, error) {
	if p.planned {
		// The one-shot rental holds; replay it (without re-reporting the
		// first round's storage error, if any).
		res := p.first
		res.StorageErr = nil
		return res, nil
	}
	target := maxDemands(req.Demands, req.Future)
	vmPlan, scale, err := planWithScaling(target, req.VMBandwidth, req.VMClusters, req.VMBudgetPerHour)
	if err != nil {
		return PlanResult{}, err
	}
	res := PlanResult{VMPlan: vmPlan, DemandScale: scale}
	var storage storageState
	res.StoragePlan, res.StorageErr = storage.plan(req, req.totalDemand())
	p.planned, p.first = true, res
	return res, nil
}

// maxDemands returns the per-chunk maximum of the current demands and
// every future forecast, in the current demands' order. Chunks that only
// appear in a forecast are ignored: the chunk universe is fixed per run.
func maxDemands(current []ChunkDemand, future [][]ChunkDemand) []ChunkDemand {
	out := make([]ChunkDemand, len(current))
	copy(out, current)
	index := make(map[[2]int]int, len(current))
	for i, d := range current {
		index[[2]int{d.Channel, d.Chunk}] = i
	}
	for _, step := range future {
		for _, d := range step {
			if i, ok := index[[2]int{d.Channel, d.Chunk}]; ok && d.Demand > out[i].Demand {
				out[i].Demand = d.Demand
			}
		}
	}
	return out
}

// storageState is the Sec. V-B storage-replan trigger shared by the
// planners: the last plan, the demand it was sized for, and whether one
// exists yet.
type storageState struct {
	lastPlan   StoragePlan
	lastDemand float64
	planned    bool
}

// plan replans storage when the catalog is non-empty and the demand moved
// past the change threshold; otherwise it returns the previous plan. A
// planning failure keeps (and returns) the stale plan together with the
// error, so the caller can surface the infeasibility instead of silently
// carrying old capacity.
func (s *storageState) plan(req PlanRequest, totalDemand float64) (StoragePlan, error) {
	if len(req.NFSClusters) == 0 || !s.stale(req.StorageChangeThreshold, totalDemand) {
		return s.lastPlan, nil
	}
	sp, err := PlanStorage(req.Demands, req.ChunkBytes, req.NFSClusters, req.StorageBudgetPerHour)
	if err != nil {
		return s.lastPlan, err
	}
	s.lastPlan, s.lastDemand, s.planned = sp, totalDemand, true
	return sp, nil
}

func (s *storageState) stale(threshold, totalDemand float64) bool {
	if !s.planned {
		return true
	}
	if threshold <= 0 {
		return true
	}
	base := s.lastDemand
	if base == 0 {
		return totalDemand > 0
	}
	change := totalDemand/base - 1
	if change < 0 {
		change = -change
	}
	return change > threshold
}

// planWithScaling runs the VM heuristic, shrinking demand until the plan
// fits the budget and cluster capacity. The first retry jumps straight to
// an upper bound on the feasible scale (cost is at least totalVMs × the
// cheapest price, and VMs are bounded by total cluster capacity), then
// backs off geometrically. Returns the plan and the final scale.
func planWithScaling(flat []ChunkDemand, vmBandwidth float64, specs []cloud.VMClusterSpec, budget float64) (VMPlan, float64, error) {
	plan, err := PlanVMs(flat, vmBandwidth, specs, budget)
	if err == nil {
		return plan, 1, nil
	}
	if !errors.Is(err, ErrInfeasible) {
		return VMPlan{}, 1, err
	}

	var totalNeed float64
	for _, d := range flat {
		totalNeed += d.Demand / vmBandwidth
	}
	if totalNeed <= 0 {
		return VMPlan{}, 1, err
	}
	var capTotal float64
	minPrice := math.Inf(1)
	for _, s := range specs {
		capTotal += float64(s.MaxVMs)
		if s.PricePerHour < minPrice {
			minPrice = s.PricePerHour
		}
	}
	scale := 1.0
	if bound := capTotal / totalNeed; bound < scale {
		scale = bound
	}
	if minPrice > 0 {
		if bound := budget / (totalNeed * minPrice); bound < scale {
			scale = bound
		}
	}
	scale *= 0.98

	for attempt := 0; attempt < 30 && scale > 0; attempt++ {
		scaled := make([]ChunkDemand, len(flat))
		for i, d := range flat {
			scaled[i] = ChunkDemand{Channel: d.Channel, Chunk: d.Chunk, Demand: d.Demand * scale}
		}
		plan, err := PlanVMs(scaled, vmBandwidth, specs, budget)
		if err == nil {
			return plan, scale, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return VMPlan{}, scale, err
		}
		scale *= 0.9
	}
	return VMPlan{}, scale, fmt.Errorf("%w: demand unservable even at %.2f%% scale", ErrInfeasible, scale*100)
}
