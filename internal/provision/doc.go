// Package provision implements the two rental optimization problems of
// Sec. V-A and the paper's greedy heuristics for them.
//
// Storage rental (Eqn. 6) decides which NFS cluster each chunk is placed
// on, maximizing Σ u_f·Δ_i·x_if subject to single placement, cluster
// capacities, and the storage budget B_S. The heuristic sorts chunks by
// demand Δ (descending) and clusters by marginal utility per cost u_f/p_f
// (descending), then places greedily.
//
// VM configuration (Eqn. 7) decides how many VMs z_iv to rent per virtual
// cluster for each chunk, maximizing Σ ũ_v·z_iv subject to covering each
// chunk's demand Δ_i/R, cluster VM counts N_v, and the VM budget B_M. The
// heuristic sorts clusters by ũ_v/p̃_v and fills greedily; allocations may
// be fractional, with fractional parts of consecutive chunks in a channel
// sharing a VM (the paper's packing rule).
//
// If a budget or all capacity runs out before every chunk is handled, the
// problem is infeasible and the heuristics return ErrInfeasible — the
// paper's signal that the provider must raise its budget.
//
// On top of the raw heuristics sits the Policy seam: the per-interval
// planning surface core.Controller consumes (PlanRequest in, PlanResult
// out). Greedy wraps the paper's heuristics with the infeasibility
// scale-down search; Lookahead, Oracle, and StaticPeak are the
// alternative policies the costfrontier experiment compares. See
// DESIGN.md "Provisioning policies".
package provision
