package provision

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInfeasible signals that the configured budget (or total cluster
// capacity) cannot accommodate the demand; per the paper, the VoD provider
// should increase the corresponding budget.
var ErrInfeasible = errors.New("provision: budget or capacity infeasible")

// ChunkDemand is the provisioning unit: one chunk of one channel and its
// required cloud upload capacity E[Δ] in bytes/s, as produced by the
// queueing (client-server) or p2p (peer-assisted) analysis.
type ChunkDemand struct {
	Channel int     // channel index c
	Chunk   int     // chunk index i within the channel
	Demand  float64 // Δ(c,i), bytes/s
}

// validateDemands checks demand invariants shared by both heuristics.
func validateDemands(demands []ChunkDemand) error {
	seen := make(map[[2]int]bool, len(demands))
	for _, d := range demands {
		if d.Channel < 0 || d.Chunk < 0 {
			return fmt.Errorf("provision: negative chunk identity (%d,%d)", d.Channel, d.Chunk)
		}
		if d.Demand < 0 {
			return fmt.Errorf("provision: negative demand %v for chunk (%d,%d)", d.Demand, d.Channel, d.Chunk)
		}
		key := [2]int{d.Channel, d.Chunk}
		if seen[key] {
			return fmt.Errorf("provision: duplicate chunk (%d,%d)", d.Channel, d.Chunk)
		}
		seen[key] = true
	}
	return nil
}

// sortByDemand returns the demands ordered by descending Δ, breaking ties
// by (channel, chunk) so the greedy pass is deterministic and consecutive
// chunks stay adjacent — that adjacency is what lets fractional VM shares
// of one channel pack onto shared VMs.
func sortByDemand(demands []ChunkDemand) []ChunkDemand {
	out := make([]ChunkDemand, len(demands))
	copy(out, demands)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Demand != out[b].Demand {
			return out[a].Demand > out[b].Demand
		}
		if out[a].Channel != out[b].Channel {
			return out[a].Channel < out[b].Channel
		}
		return out[a].Chunk < out[b].Chunk
	})
	return out
}
