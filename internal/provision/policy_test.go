package provision

import (
	"errors"
	"strings"
	"testing"

	"cloudmedia/internal/cloud"
)

// demandGrid builds channels×chunks uniform demands.
func demandGrid(channels, chunks int, demand float64) []ChunkDemand {
	out := make([]ChunkDemand, 0, channels*chunks)
	for c := 0; c < channels; c++ {
		for i := 0; i < chunks; i++ {
			out = append(out, ChunkDemand{Channel: c, Chunk: i, Demand: demand})
		}
	}
	return out
}

func planRequest(demands []ChunkDemand) PlanRequest {
	return PlanRequest{
		IntervalSeconds:      3600,
		Demands:              demands,
		VMBandwidth:          cloud.DefaultVMBandwidth,
		ChunkBytes:           50e3 * 75,
		VMClusters:           cloud.DefaultVMClusters(),
		NFSClusters:          cloud.DefaultNFSClusters(),
		VMBudgetPerHour:      100,
		StorageBudgetPerHour: 1,
	}
}

// TestPlanWithScalingFeasible: ample budget needs no scaling.
func TestPlanWithScalingFeasible(t *testing.T) {
	demands := demandGrid(2, 4, 2e6)
	plan, scale, err := planWithScaling(demands, cloud.DefaultVMBandwidth, cloud.DefaultVMClusters(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1 {
		t.Errorf("scale = %v, want 1 for a feasible budget", scale)
	}
	if plan.TotalVMs() <= 0 {
		t.Error("no VMs planned")
	}
}

// TestPlanWithScalingScalesDownToBudget pins the satellite path: a budget
// far below the demand forces the scale search, which must converge on a
// plan inside the budget with scale < 1.
func TestPlanWithScalingScalesDownToBudget(t *testing.T) {
	demands := demandGrid(3, 5, 5e6) // ≈60 VMs of demand
	const budget = 2.0               // ≈4 standard VMs
	plan, scale, err := planWithScaling(demands, cloud.DefaultVMBandwidth, cloud.DefaultVMClusters(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if scale >= 1 {
		t.Errorf("scale = %v, want < 1 under a starvation budget", scale)
	}
	if scale <= 0 {
		t.Errorf("scale = %v, want > 0", scale)
	}
	if plan.CostPerHour > budget+1e-9 {
		t.Errorf("plan cost %v exceeds budget %v", plan.CostPerHour, budget)
	}
	if plan.TotalVMs() <= 0 {
		t.Error("scaled plan rents nothing")
	}
}

// TestPlanWithScalingInfeasibleWrapsErrInfeasible pins the exhaustion
// path: when even the scale search cannot fit (zero budget), the error
// wraps ErrInfeasible so errors.Is works across the seam.
func TestPlanWithScalingInfeasibleWrapsErrInfeasible(t *testing.T) {
	demands := demandGrid(2, 4, 5e6)
	_, scale, err := planWithScaling(demands, cloud.DefaultVMBandwidth, cloud.DefaultVMClusters(), 0)
	if err == nil {
		t.Fatal("zero budget produced a plan")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
	if !strings.Contains(err.Error(), "unservable") {
		t.Errorf("error %q lacks the exhaustion message", err)
	}
	if scale != 0 {
		t.Errorf("final scale = %v, want 0 after the bound collapses", scale)
	}
}

// TestPlanWithScalingPassesThroughOtherErrors: non-infeasibility errors
// (here a negative budget) must not trigger the scale search.
func TestPlanWithScalingPassesThroughOtherErrors(t *testing.T) {
	demands := demandGrid(1, 2, 1e6)
	_, _, err := planWithScaling(demands, cloud.DefaultVMBandwidth, cloud.DefaultVMClusters(), -5)
	if err == nil {
		t.Fatal("negative budget produced a plan")
	}
	if errors.Is(err, ErrInfeasible) {
		t.Errorf("validation error %v wrongly wrapped as infeasible", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestGreedyMatchesRawHeuristic: the Greedy planner is exactly
// planWithScaling + threshold-gated storage.
func TestGreedyMatchesRawHeuristic(t *testing.T) {
	req := planRequest(demandGrid(2, 4, 2e6))
	res, err := Greedy{}.NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	wantVM, wantScale, err := planWithScaling(req.Demands, req.VMBandwidth, req.VMClusters, req.VMBudgetPerHour)
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandScale != wantScale || res.VMPlan.TotalVMs() != wantVM.TotalVMs() || res.VMPlan.CostPerHour != wantVM.CostPerHour {
		t.Errorf("greedy plan diverges from the raw heuristic: %+v vs %+v", res.VMPlan, wantVM)
	}
	if len(res.StoragePlan.Placements) != len(req.Demands) {
		t.Errorf("storage placements = %d, want %d", len(res.StoragePlan.Placements), len(req.Demands))
	}
}

// TestGreedyStorageFailureKeepsStalePlan pins the storage diagnostics: a
// round whose storage replan fails returns the previous plan plus the
// error.
func TestGreedyStorageFailureKeepsStalePlan(t *testing.T) {
	planner := Greedy{}.NewPlanner()
	req := planRequest(demandGrid(2, 4, 2e6))
	first, err := planner.Plan(req)
	if err != nil || first.StorageErr != nil {
		t.Fatalf("first round: %v / %v", err, first.StorageErr)
	}
	// Second round: same demand, but the storage budget collapses.
	req2 := req
	req2.StorageBudgetPerHour = 1e-12
	second, err := planner.Plan(req2)
	if err != nil {
		t.Fatal(err)
	}
	if second.StorageErr == nil {
		t.Fatal("storage failure not reported")
	}
	if !errors.Is(second.StorageErr, ErrInfeasible) {
		t.Errorf("StorageErr %v does not wrap ErrInfeasible", second.StorageErr)
	}
	if second.StoragePlan.Utility != first.StoragePlan.Utility {
		t.Error("failed round did not keep the stale storage plan")
	}
}

// TestLookaheadPlansForForecastPeak: with a future spike in the
// forecasts, the lookahead plan covers the spike now.
func TestLookaheadPlansForForecastPeak(t *testing.T) {
	req := planRequest(demandGrid(2, 4, 1e6))
	spike := demandGrid(2, 4, 3e6)
	req.Future = [][]ChunkDemand{demandGrid(2, 4, 1e6), spike}

	flat, err := Lookahead{K: 2, Hysteresis: 1}.NewPlanner().Plan(planRequest(demandGrid(2, 4, 1e6)))
	if err != nil {
		t.Fatal(err)
	}
	ahead, err := Lookahead{K: 2, Hysteresis: 1}.NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if ahead.VMPlan.TotalVMs() <= flat.VMPlan.TotalVMs() {
		t.Errorf("lookahead ignored the forecast spike: %v VMs vs %v without it",
			ahead.VMPlan.TotalVMs(), flat.VMPlan.TotalVMs())
	}
}

// TestLookaheadHysteresisDelaysTeardown: after a demand drop, the plan
// holds for Hysteresis−1 rounds and releases on the Hysteresis-th.
func TestLookaheadHysteresisDelaysTeardown(t *testing.T) {
	planner := Lookahead{K: 1, Hysteresis: 2}.NewPlanner()
	high := planRequest(demandGrid(2, 4, 3e6))
	low := planRequest(demandGrid(2, 4, 1e6))

	first, err := planner.Plan(high)
	if err != nil {
		t.Fatal(err)
	}
	held, err := planner.Plan(low)
	if err != nil {
		t.Fatal(err)
	}
	if held.VMPlan.TotalVMs() != first.VMPlan.TotalVMs() {
		t.Errorf("teardown not delayed: %v VMs after one low round, want %v held",
			held.VMPlan.TotalVMs(), first.VMPlan.TotalVMs())
	}
	released, err := planner.Plan(low)
	if err != nil {
		t.Fatal(err)
	}
	if released.VMPlan.TotalVMs() >= first.VMPlan.TotalVMs() {
		t.Errorf("teardown never happened: still %v VMs after two low rounds", released.VMPlan.TotalVMs())
	}
}

// TestLookaheadHoldKeepsDemandScale: a held (hysteresis) round must
// report the held plan's DemandScale, not 1 — the budget-infeasibility
// signal may not be masked by the hold.
func TestLookaheadHoldKeepsDemandScale(t *testing.T) {
	planner := Lookahead{K: 1, Hysteresis: 3}.NewPlanner()
	high := planRequest(demandGrid(3, 5, 5e6))
	high.VMBudgetPerHour = 2 // forces scale < 1
	low := planRequest(demandGrid(3, 5, 1e5))
	low.VMBudgetPerHour = 2

	first, err := planner.Plan(high)
	if err != nil {
		t.Fatal(err)
	}
	if first.DemandScale >= 1 {
		t.Fatalf("setup: high round not scaled (%v)", first.DemandScale)
	}
	held, err := planner.Plan(low)
	if err != nil {
		t.Fatal(err)
	}
	if held.VMPlan.TotalVMs() != first.VMPlan.TotalVMs() {
		t.Fatalf("setup: plan not held")
	}
	if held.DemandScale != first.DemandScale {
		t.Errorf("held round reports scale %v, want the held plan's %v", held.DemandScale, first.DemandScale)
	}
}

// TestStaticPeakStopsNeedingForecasts: after the one-shot plan, the
// planner tells the controller to skip the expensive future forecasts.
func TestStaticPeakStopsNeedingForecasts(t *testing.T) {
	planner := StaticPeak{Intervals: 3}.NewPlanner()
	fd, ok := planner.(FutureDemander)
	if !ok {
		t.Fatal("static-peak planner does not implement FutureDemander")
	}
	if !fd.NeedsFuture() {
		t.Error("first round must request the horizon")
	}
	if _, err := planner.Plan(planRequest(demandGrid(2, 4, 1e6))); err != nil {
		t.Fatal(err)
	}
	if fd.NeedsFuture() {
		t.Error("planner still requests forecasts after the one-shot plan")
	}
}

// TestStaticPeakHoldsFirstPlan: the one-shot rental never changes after
// the first round, whatever demand does.
func TestStaticPeakHoldsFirstPlan(t *testing.T) {
	planner := StaticPeak{Intervals: 2}.NewPlanner()
	req := planRequest(demandGrid(2, 4, 1e6))
	req.Future = [][]ChunkDemand{demandGrid(2, 4, 2e6), demandGrid(2, 4, 4e6)}
	first, err := planner.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	// The peak (4e6/chunk) must be what was rented, not the current 1e6.
	myopic, _, err := planWithScaling(req.Demands, req.VMBandwidth, req.VMClusters, req.VMBudgetPerHour)
	if err != nil {
		t.Fatal(err)
	}
	if first.VMPlan.TotalVMs() <= myopic.TotalVMs() {
		t.Errorf("static peak rented %v VMs, not above the myopic %v", first.VMPlan.TotalVMs(), myopic.TotalVMs())
	}
	later, err := planner.Plan(planRequest(demandGrid(2, 4, 9e6)))
	if err != nil {
		t.Fatal(err)
	}
	if later.VMPlan.TotalVMs() != first.VMPlan.TotalVMs() {
		t.Errorf("static plan moved: %v → %v VMs", first.VMPlan.TotalVMs(), later.VMPlan.TotalVMs())
	}
}

func TestMaxDemandsIgnoresUnknownChunks(t *testing.T) {
	current := demandGrid(1, 2, 1)
	future := [][]ChunkDemand{{
		{Channel: 0, Chunk: 0, Demand: 5},
		{Channel: 7, Chunk: 9, Demand: 99}, // not in the chunk universe
	}}
	got := maxDemands(current, future)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Demand != 5 || got[1].Demand != 1 {
		t.Errorf("maxDemands = %+v", got)
	}
}

// BenchmarkPolicyPlan measures plans/s for each policy on a paper-sized
// chunk universe (20 channels × 20 chunks), the per-interval control-path
// cost.
func BenchmarkPolicyPlan(b *testing.B) {
	for _, policy := range []Policy{Greedy{}, Lookahead{}, Oracle{}, StaticPeak{}} {
		b.Run(policy.Name(), func(b *testing.B) {
			req := planRequest(demandGrid(20, 20, 1e6))
			if k := policy.Lookahead(); k > 0 {
				req.Future = make([][]ChunkDemand, k)
				for i := range req.Future {
					req.Future[i] = demandGrid(20, 20, 1e6*float64(i+2)/2)
				}
			}
			planner := policy.NewPlanner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(req); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
		})
	}
}

// TestHedgeMultiplier pins the spot-risk discount: m = 1/(1 − atRisk)
// with atRisk = spotFraction × P(interruption in interval), clamped so
// m never exceeds 1.5.
func TestHedgeMultiplier(t *testing.T) {
	for _, tc := range []struct {
		name     string
		plan     cloud.PricingPlan
		interval float64
		want     float64
	}{
		{"no spot tier", cloud.OnDemandPricing(), 3600, 1},
		{"spot without interruption risk", cloud.PricingPlan{SpotFraction: 0.7, SpotRate: 0.3}, 3600, 1},
		{"shipped spot plan hourly", cloud.SpotPricing(), 3600, 1 / (1 - 0.7*0.25)},
		{"shorter interval shrinks the risk", cloud.SpotPricing(), 600, 1 / (1 - 0.7*0.25/6)},
		{"pathological plan clamps at 1.5", cloud.PricingPlan{SpotFraction: 1, SpotInterruption: 1}, 3600, 1.5},
	} {
		if got := hedgeMultiplier(tc.plan, tc.interval); !approxEq(got, tc.want, 1e-12) {
			t.Errorf("%s: m = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestLookaheadSpotHedgeRentsAhead: under a risky spot plan the hedged
// lookahead provisions strictly more than the plain one for the same
// demand, and exactly the same when the plan carries no spot risk.
func TestLookaheadSpotHedgeRentsAhead(t *testing.T) {
	req := planRequest(demandGrid(2, 4, 2e6))
	req.Pricing = cloud.SpotPricing()

	plain, err := Lookahead{}.NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	hedged, err := Lookahead{SpotHedge: true}.NewPlanner().Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if hedged.VMPlan.TotalVMs() <= plain.VMPlan.TotalVMs() {
		t.Errorf("hedged plan %v VMs not above plain %v under spot risk",
			hedged.VMPlan.TotalVMs(), plain.VMPlan.TotalVMs())
	}

	// Without spot risk the hedge is inert: identical plans.
	safe := planRequest(demandGrid(2, 4, 2e6))
	plainSafe, err := Lookahead{}.NewPlanner().Plan(safe)
	if err != nil {
		t.Fatal(err)
	}
	hedgedSafe, err := Lookahead{SpotHedge: true}.NewPlanner().Plan(safe)
	if err != nil {
		t.Fatal(err)
	}
	if hedgedSafe.VMPlan.TotalVMs() != plainSafe.VMPlan.TotalVMs() {
		t.Errorf("hedge moved the plan without spot risk: %v vs %v VMs",
			hedgedSafe.VMPlan.TotalVMs(), plainSafe.VMPlan.TotalVMs())
	}
}
