package provision

import (
	"fmt"
	"sort"

	"cloudmedia/internal/cloud"
)

// StoragePlacement records where one chunk is stored.
type StoragePlacement struct {
	Channel int
	Chunk   int
	Cluster string
}

// StoragePlan is the outcome of the storage-rental heuristic.
type StoragePlan struct {
	// Placements lists every chunk's NFS cluster, in greedy order.
	Placements []StoragePlacement
	// GBPerCluster is the storage footprint per cluster.
	GBPerCluster map[string]float64
	// CostPerHour is Σ p_f · rT₀ · x, dollars per hour.
	CostPerHour float64
	// Utility is the objective value Σ u_f · Δ_i · x_if.
	Utility float64
	// UtilityPerChannel splits the objective by channel — the quantity
	// plotted in Fig. 8.
	UtilityPerChannel map[int]float64
}

// PlanStorage runs the storage-rental heuristic of Sec. V-A1. chunkBytes is
// the uniform chunk size rT₀ in bytes; budgetPerHour is B_S. Every chunk is
// stored exactly once or the plan is infeasible.
func PlanStorage(demands []ChunkDemand, chunkBytes float64, clusters []cloud.NFSClusterSpec, budgetPerHour float64) (StoragePlan, error) {
	if err := validateDemands(demands); err != nil {
		return StoragePlan{}, err
	}
	if chunkBytes <= 0 {
		return StoragePlan{}, fmt.Errorf("provision: non-positive chunk size %v", chunkBytes)
	}
	if len(clusters) == 0 {
		return StoragePlan{}, fmt.Errorf("provision: no NFS clusters")
	}
	if budgetPerHour < 0 {
		return StoragePlan{}, fmt.Errorf("provision: negative storage budget %v", budgetPerHour)
	}
	for _, s := range clusters {
		if err := s.Validate(); err != nil {
			return StoragePlan{}, err
		}
	}

	// Clusters by marginal utility per unit cost u_f/p_f, best first.
	order := make([]cloud.NFSClusterSpec, len(clusters))
	copy(order, clusters)
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].MarginalUtility() > order[b].MarginalUtility()
	})

	chunkGB := chunkBytes / 1e9
	plan := StoragePlan{
		GBPerCluster:      make(map[string]float64, len(clusters)),
		UtilityPerChannel: make(map[int]float64),
	}
	free := make(map[string]float64, len(order))
	for _, s := range order {
		free[s.Name] = s.CapacityGB
	}

	for _, d := range sortByDemand(demands) {
		placed := false
		for _, s := range order {
			if free[s.Name] < chunkGB {
				continue
			}
			cost := s.PricePerGBHour * chunkGB
			if plan.CostPerHour+cost > budgetPerHour+1e-12 {
				// The paper spends budget in greedy order; once the best
				// available cluster busts the budget, cheaper clusters might
				// still fit, so keep scanning.
				continue
			}
			free[s.Name] -= chunkGB
			plan.GBPerCluster[s.Name] += chunkGB
			plan.CostPerHour += cost
			plan.Utility += s.Utility * d.Demand
			plan.UtilityPerChannel[d.Channel] += s.Utility * d.Demand
			plan.Placements = append(plan.Placements, StoragePlacement{
				Channel: d.Channel, Chunk: d.Chunk, Cluster: s.Name,
			})
			placed = true
			break
		}
		if !placed {
			return StoragePlan{}, fmt.Errorf(
				"%w: chunk (%d,%d) unplaceable with budget $%.4f/h", ErrInfeasible, d.Channel, d.Chunk, budgetPerHour)
		}
	}
	return plan, nil
}
