package provision

import "testing"

// TotalVMs sums floats out of a map; unless the keys are visited in a
// fixed order the result depends on Go's randomized map iteration
// ((0.1+0.2)+0.3 and (0.3+0.2)+0.1 are different doubles). The planner
// feeds this total into budget comparisons, so it must be bit-stable.
func TestTotalVMsIsOrderStable(t *testing.T) {
	p := VMPlan{VMsPerCluster: map[string]float64{
		"a": 0.1,
		"b": 0.2,
		"c": 0.3,
	}}
	// Sorted-key order, via float64 variables so the expectation is
	// runtime IEEE arithmetic, not constant folding.
	v1, v2, v3 := 0.1, 0.2, 0.3
	want := (v1 + v2) + v3
	for i := 0; i < 50; i++ {
		if got := p.TotalVMs(); got != want {
			t.Fatalf("run %d: TotalVMs = %.20g, want sorted-order sum %.20g", i, got, want)
		}
	}
}
