package provision

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/mathx"
)

const paperR = cloud.DefaultVMBandwidth // 10 Mbps in bytes/s

func TestPlanVMsPrefersBestMarginalUtility(t *testing.T) {
	clusters := cloud.DefaultVMClusters()
	// standard: 0.6/0.45 ≈ 1.33 beats advanced 1.25 and medium 1.14.
	demands := demandsFor(2 * paperR) // needs 2 VMs
	plan, err := PlanVMs(demands, paperR, clusters, 100)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	if len(plan.Allocations) != 1 || plan.Allocations[0].Cluster != "standard" {
		t.Errorf("allocations = %+v, want single standard entry", plan.Allocations)
	}
	if !mathx.ApproxEqual(plan.VMsPerCluster["standard"], 2, 1e-9) {
		t.Errorf("standard VMs = %v, want 2", plan.VMsPerCluster["standard"])
	}
	if !mathx.ApproxEqual(plan.CostPerHour, 0.9, 1e-9) {
		t.Errorf("cost = %v, want 0.9", plan.CostPerHour)
	}
	if !mathx.ApproxEqual(plan.Utility, 1.2, 1e-9) {
		t.Errorf("utility = %v, want 1.2", plan.Utility)
	}
}

func TestPlanVMsSpillsToNextCluster(t *testing.T) {
	clusters := cloud.DefaultVMClusters()
	// 80 VMs needed; standard holds 75, the rest go to advanced (next best).
	demands := demandsFor(80 * paperR)
	plan, err := PlanVMs(demands, paperR, clusters, 1000)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	if !mathx.ApproxEqual(plan.VMsPerCluster["standard"], 75, 1e-9) {
		t.Errorf("standard = %v, want 75", plan.VMsPerCluster["standard"])
	}
	if !mathx.ApproxEqual(plan.VMsPerCluster["advanced"], 5, 1e-9) {
		t.Errorf("advanced = %v, want 5", plan.VMsPerCluster["advanced"])
	}
	if plan.VMsPerCluster["medium"] != 0 {
		t.Errorf("medium = %v, want 0", plan.VMsPerCluster["medium"])
	}
}

func TestPlanVMsFractionalAndRental(t *testing.T) {
	clusters := cloud.DefaultVMClusters()
	// Two chunks each needing half a VM: fractional z sums to 1,
	// rental packs them onto a single shared VM.
	demands := []ChunkDemand{
		{Channel: 0, Chunk: 0, Demand: paperR / 2},
		{Channel: 0, Chunk: 1, Demand: paperR / 2},
	}
	plan, err := PlanVMs(demands, paperR, clusters, 100)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	if !mathx.ApproxEqual(plan.TotalVMs(), 1, 1e-9) {
		t.Errorf("TotalVMs = %v, want 1", plan.TotalVMs())
	}
	rent := plan.RentalVMs()
	if rent["standard"] != 1 {
		t.Errorf("rental = %v, want one shared standard VM", rent)
	}
}

func TestPlanVMsBudgetInfeasible(t *testing.T) {
	clusters := cloud.DefaultVMClusters()
	demands := demandsFor(10 * paperR) // 10 VMs ≈ $4.5/h minimum
	_, err := PlanVMs(demands, paperR, clusters, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanVMsCapacityInfeasible(t *testing.T) {
	clusters := []cloud.VMClusterSpec{{Name: "only", Utility: 1, PricePerHour: 0.1, MaxVMs: 3}}
	_, err := PlanVMs(demandsFor(5*paperR), paperR, clusters, 1000)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanVMsBudgetBindsPartially(t *testing.T) {
	// Budget covers part of the demand on the best cluster; the remainder
	// must still be unaffordable anywhere → infeasible (demand coverage is
	// a hard constraint in Eqn. 7).
	clusters := cloud.DefaultVMClusters()
	_, err := PlanVMs(demandsFor(4*paperR), paperR, clusters, 0.9) // 4 VMs cost ≥ $1.8
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanVMsHighDemandChunksServedFirst(t *testing.T) {
	// With capacity for only the hottest chunk, the heuristic must fail on
	// the cold one, not the hot one (greedy order by demand).
	clusters := []cloud.VMClusterSpec{{Name: "only", Utility: 1, PricePerHour: 0.1, MaxVMs: 4}}
	demands := []ChunkDemand{
		{Channel: 0, Chunk: 0, Demand: 1 * paperR},
		{Channel: 0, Chunk: 1, Demand: 4 * paperR},
	}
	_, err := PlanVMs(demands, paperR, clusters, 1000)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Hot chunk alone fits.
	plan, err := PlanVMs(demands[1:], paperR, clusters, 1000)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	if !mathx.ApproxEqual(plan.VMsPerCluster["only"], 4, 1e-9) {
		t.Errorf("hot chunk allocation = %v", plan.VMsPerCluster["only"])
	}
}

func TestPlanVMsZeroDemandSkipped(t *testing.T) {
	plan, err := PlanVMs(demandsFor(0, 0), paperR, cloud.DefaultVMClusters(), 10)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	if len(plan.Allocations) != 0 || plan.CostPerHour != 0 {
		t.Errorf("zero demand should produce empty plan: %+v", plan)
	}
}

func TestPlanVMsValidation(t *testing.T) {
	clusters := cloud.DefaultVMClusters()
	if _, err := PlanVMs(demandsFor(1), 0, clusters, 1); err == nil {
		t.Error("zero bandwidth: want error")
	}
	if _, err := PlanVMs(demandsFor(1), paperR, nil, 1); err == nil {
		t.Error("no clusters: want error")
	}
	if _, err := PlanVMs(demandsFor(1), paperR, clusters, -1); err == nil {
		t.Error("negative budget: want error")
	}
}

func TestCapacityPerChunkRoundTrips(t *testing.T) {
	demands := []ChunkDemand{
		{Channel: 0, Chunk: 0, Demand: 1.5 * paperR},
		{Channel: 1, Chunk: 3, Demand: 0.25 * paperR},
	}
	plan, err := PlanVMs(demands, paperR, cloud.DefaultVMClusters(), 100)
	if err != nil {
		t.Fatalf("PlanVMs: %v", err)
	}
	caps := plan.CapacityPerChunk(paperR)
	for _, d := range demands {
		got := caps[[2]int{d.Channel, d.Chunk}]
		if !mathx.ApproxEqual(got, d.Demand, 1e-9) {
			t.Errorf("chunk (%d,%d) capacity %v, want %v", d.Channel, d.Chunk, got, d.Demand)
		}
	}
}

// Property: whenever PlanVMs succeeds, every chunk's demand is exactly
// covered, no cluster exceeds capacity, and cost stays within budget.
func TestPlanVMsInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clusters := cloud.DefaultVMClusters()
		n := 1 + r.Intn(30)
		demands := make([]ChunkDemand, n)
		for i := range demands {
			demands[i] = ChunkDemand{Channel: i % 4, Chunk: i, Demand: r.Float64() * 4 * paperR}
		}
		budget := r.Float64() * 120
		plan, err := PlanVMs(demands, paperR, clusters, budget)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if plan.CostPerHour > budget+1e-6 {
			return false
		}
		for _, s := range clusters {
			if plan.VMsPerCluster[s.Name] > float64(s.MaxVMs)+1e-9 {
				return false
			}
		}
		caps := plan.CapacityPerChunk(paperR)
		for _, d := range demands {
			if !mathx.ApproxEqual(caps[[2]int{d.Channel, d.Chunk}], d.Demand, 1e-6) && d.Demand > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}
