package trace

import (
	"bytes"
	"testing"
)

// FuzzParseTraceCSV drives arbitrary bytes through the CSV parser. The
// contract under fuzz: never panic, and for any input that parses, the
// encoder is canonical — parse → encode → parse → encode is byte-stable
// and the re-parsed trace still validates.
func FuzzParseTraceCSV(f *testing.F) {
	f.Add([]byte("time_s,ch0,ch1\n0,1,2\n60,2,3\n"))
	f.Add([]byte("time_s,ch0\n0,0\n"))
	f.Add([]byte("t,a,b,c\n-5,0.25,1e-3,3\n0.5,1,2,0\n900,0,0,0\n"))
	f.Add([]byte("time_s,ch0\n 1 ,2.50\n9.0,1e1\n"))
	f.Add([]byte("time_s\n0\n"))
	f.Add([]byte("time_s,ch0\n0,-1\n"))
	f.Add([]byte("time_s,ch0\nNaN,1\n"))
	f.Add([]byte(""))
	f.Add(EncodeCSV(&Trace{Times: []float64{0, 450, 900}, Rates: [][]float64{{0.1, 0.7, 0.2}, {0, 0.05, 0}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseCSV(data)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ParseCSV returned an invalid trace: %v", err)
		}
		enc := EncodeCSV(tr)
		back, err := ParseCSV(enc)
		if err != nil {
			t.Fatalf("re-parse of encoder output failed: %v\nencoded: %q", err, enc)
		}
		if enc2 := EncodeCSV(back); !bytes.Equal(enc, enc2) {
			t.Fatalf("CSV round trip not byte-stable:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
	})
}

// FuzzParseTraceJSON mirrors FuzzParseTraceCSV for the JSON codec.
func FuzzParseTraceJSON(f *testing.F) {
	f.Add([]byte(`{"times":[0,60],"rates":[[1,2],[3,4]]}`))
	f.Add([]byte(`{"times":[0],"rates":[[0]]}`))
	f.Add([]byte(`{"times":[-10,0.5,9e3],"rates":[[0.25,1e-3,3]]}`))
	f.Add([]byte(`{"rates":[[1]]}`))
	f.Add([]byte(`{"times":[0,0],"rates":[[1,1]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	mustJSON := func(tr *Trace) []byte {
		out, err := EncodeJSON(tr)
		if err != nil {
			f.Fatal(err)
		}
		return out
	}
	f.Add(mustJSON(&Trace{Times: []float64{0, 450, 900}, Rates: [][]float64{{0.1, 0.7, 0.2}, {0, 0.05, 0}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseJSON(data)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ParseJSON returned an invalid trace: %v", err)
		}
		enc, err := EncodeJSON(tr)
		if err != nil {
			t.Fatalf("encoding a parsed trace failed: %v", err)
		}
		back, err := ParseJSON(enc)
		if err != nil {
			t.Fatalf("re-parse of encoder output failed: %v\nencoded: %q", err, enc)
		}
		enc2, err := EncodeJSON(back)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("JSON round trip not byte-stable:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
	})
}
