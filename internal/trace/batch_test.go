package trace

import (
	"testing"
)

// The batched read must be bit-identical to per-channel Rate at every
// probe class: before, between, exactly on, and after the samples.
func TestTraceRatesIntoMatchesRate(t *testing.T) {
	tr := ramp()
	dst := make([]float64, 2)
	for _, tt := range []float64{-50, 0, 37.5, 100, 150, 199, 200, 500} {
		if err := tr.RatesInto(tt, dst); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			want, err := tr.Rate(c, tt)
			if err != nil {
				t.Fatal(err)
			}
			if dst[c] != want {
				t.Fatalf("RatesInto(%v)[%d] = %v, Rate = %v", tt, c, dst[c], want)
			}
		}
	}
	if err := tr.RatesInto(0, make([]float64, 1)); err == nil {
		t.Fatal("short buffer accepted")
	}
	empty := &Trace{}
	if err := empty.RatesInto(0, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// One binary search, zero allocations — the replay hot path.
func TestTraceRatesIntoAllocFree(t *testing.T) {
	tr := ramp()
	dst := make([]float64, 2)
	now := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		now += 0.9
		_ = tr.RatesInto(now, dst)
	})
	if allocs > 0 {
		t.Fatalf("RatesInto allocates %.1f times per call", allocs)
	}
}
