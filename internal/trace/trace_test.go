package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudmedia/internal/workload"
)

func ramp() *Trace {
	return &Trace{
		Times: []float64{0, 100, 200},
		Rates: [][]float64{
			{1, 3, 3},
			{0, 0, 2},
		},
	}
}

func TestValidateCatchesMalformedTraces(t *testing.T) {
	cases := map[string]*Trace{
		"nil":             nil,
		"no samples":      {Rates: [][]float64{{1}}},
		"no channels":     {Times: []float64{0}},
		"row mismatch":    {Times: []float64{0, 1}, Rates: [][]float64{{1}}},
		"negative rate":   {Times: []float64{0}, Rates: [][]float64{{-1}}},
		"NaN rate":        {Times: []float64{0}, Rates: [][]float64{{math.NaN()}}},
		"Inf time":        {Times: []float64{math.Inf(1)}, Rates: [][]float64{{1}}},
		"non-increasing":  {Times: []float64{0, 0}, Rates: [][]float64{{1, 1}}},
		"decreasing time": {Times: []float64{1, 0}, Rates: [][]float64{{1, 1}}},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", name)
		}
	}
	if err := ramp().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestRateInterpolatesAndClamps(t *testing.T) {
	tr := ramp()
	cases := []struct {
		ch   int
		t    float64
		want float64
	}{
		{0, -50, 1}, // before the first sample: clamp
		{0, 0, 1},   // exact sample
		{0, 50, 2},  // midpoint of the 1→3 ramp
		{0, 100, 3}, // exact sample
		{0, 150, 3}, // flat segment
		{0, 500, 3}, // after the last sample: clamp
		{1, 150, 1}, // midpoint of the 0→2 ramp
		{1, 199, 1.98},
	}
	for _, c := range cases {
		got, err := tr.Rate(c.ch, c.t)
		if err != nil {
			t.Fatalf("Rate(%d, %v): %v", c.ch, c.t, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Rate(%d, %v) = %v, want %v", c.ch, c.t, got, c.want)
		}
	}
	if _, err := tr.Rate(2, 0); err == nil {
		t.Error("Rate on out-of-range channel: want error")
	}
	if _, err := tr.Rate(-1, 0); err == nil {
		t.Error("Rate on negative channel: want error")
	}
}

func TestMaxRateIsAnEnvelope(t *testing.T) {
	tr := ramp()
	for c := range tr.Rates {
		max, err := tr.MaxRate(c)
		if err != nil {
			t.Fatal(err)
		}
		for at := -100.0; at <= 400; at += 7 {
			r, err := tr.Rate(c, at)
			if err != nil {
				t.Fatal(err)
			}
			if r > max {
				t.Fatalf("channel %d: Rate(%v) = %v exceeds MaxRate %v", c, at, r, max)
			}
		}
	}
}

func TestMeanRateMatchesNumericIntegral(t *testing.T) {
	tr := ramp()
	for _, span := range [][2]float64{{0, 200}, {-100, 50}, {150, 400}, {25, 175}, {90, 110}} {
		for c := range tr.Rates {
			got, err := tr.MeanRate(c, span[0], span[1])
			if err != nil {
				t.Fatal(err)
			}
			// Fine Riemann sum as the reference.
			const steps = 20000
			dt := (span[1] - span[0]) / steps
			var sum float64
			for i := 0; i < steps; i++ {
				r, _ := tr.Rate(c, span[0]+(float64(i)+0.5)*dt)
				sum += r
			}
			want := sum / steps
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("channel %d MeanRate(%v, %v) = %v, numeric %v", c, span[0], span[1], got, want)
			}
		}
	}
	if r, err := tr.MeanRate(0, 100, 100); err != nil || r != 0 {
		t.Errorf("empty span: got %v, %v", r, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := ramp()
	cp := tr.Clone()
	cp.Times[0] = -99
	cp.Rates[0][0] = 42
	if tr.Times[0] != 0 || tr.Rates[0][0] != 1 {
		t.Error("mutating a clone reached the original")
	}
	src := tr.CloneSource()
	if src.NumChannels() != 2 {
		t.Errorf("CloneSource channels = %d", src.NumChannels())
	}
}

func TestScaleAndResample(t *testing.T) {
	tr := ramp()
	doubled, err := tr.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := doubled.Rates[0][1]; got != 6 {
		t.Errorf("scaled rate = %v, want 6", got)
	}
	if _, err := tr.Scale(math.NaN()); err == nil {
		t.Error("NaN scale accepted")
	}

	re, err := tr.Resample(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Times) != 5 { // 0,50,100,150,200
		t.Fatalf("resampled to %d samples, want 5", len(re.Times))
	}
	for i, at := range re.Times {
		want, _ := tr.Rate(0, at)
		if re.Rates[0][i] != want {
			t.Errorf("resampled rate at %v = %v, want %v", at, re.Rates[0][i], want)
		}
	}
	// A non-divisible step keeps the final instant so no demand is lost.
	odd, err := tr.Resample(130)
	if err != nil {
		t.Fatal(err)
	}
	if got := odd.Times[len(odd.Times)-1]; got != 200 {
		t.Errorf("resample dropped the final instant: last = %v", got)
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestTraceImplementsSourceSeam(t *testing.T) {
	var src workload.Source = ramp()
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := workload.Weights(src, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Errorf("weights sum to %v", w[0]+w[1])
	}
	if w[0] != 0.6 || w[1] != 0.4 { // rates 3 and 2 at t=200
		t.Errorf("weights = %v, want [0.6 0.4]", w)
	}
}

func TestRecorderRoundsArrivalsIntoRates(t *testing.T) {
	rec, err := NewRecorder(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec.Add(0, 3, 1) // five arrivals in bin 0
	}
	rec.Add(1, 25, 2.5) // fractional mass in bin 2
	// Ignored: out of range, negative mass, bad time.
	rec.Add(7, 1, 1)
	rec.Add(-1, 1, 1)
	rec.Add(0, 1, -1)
	rec.Add(0, math.NaN(), 1)
	rec.Add(0, -5, 1)

	tr, err := rec.Trace(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Times) != 4 {
		t.Fatalf("bins = %d, want 4 (horizon padding)", len(tr.Times))
	}
	if tr.Times[0] != 5 || tr.Times[1] != 15 {
		t.Errorf("bin midpoints = %v", tr.Times[:2])
	}
	if tr.Rates[0][0] != 0.5 { // 5 arrivals / 10 s
		t.Errorf("channel 0 bin 0 rate = %v, want 0.5", tr.Rates[0][0])
	}
	if tr.Rates[1][2] != 0.25 { // 2.5 mass / 10 s
		t.Errorf("channel 1 bin 2 rate = %v, want 0.25", tr.Rates[1][2])
	}
	if tr.Rates[0][3] != 0 || tr.Rates[1][3] != 0 {
		t.Error("horizon padding bins must be quiet")
	}

	if _, err := NewRecorder(0, 10); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewRecorder(2, 0); err == nil {
		t.Error("zero step accepted")
	}
	empty, _ := NewRecorder(1, 10)
	if _, err := empty.Trace(0); err == nil {
		t.Error("empty recording with no horizon: want error")
	}
}

func TestGeneratorsProduceValidTraces(t *testing.T) {
	wl := workload.Default()
	wl.Channels = 4

	from, err := FromSource(wl.Source(), 24, 900)
	if err != nil {
		t.Fatal(err)
	}
	if err := from.Validate(); err != nil {
		t.Fatal(err)
	}
	// The sampled trace reproduces the parametric rates at the grid.
	r, err := from.Rate(0, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wl.ChannelRate(0, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("FromSource rate at noon = %v, parametric %v", r, want)
	}

	ww, err := WeekdayWeekend(wl, 7, 3600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ww.Validate(); err != nil {
		t.Fatal(err)
	}
	weekday, _ := ww.Rate(0, 12*3600)        // day 0
	weekend, _ := ww.Rate(0, (5*24+12)*3600) // day 5
	if math.Abs(weekend-2*weekday) > 1e-9*weekday {
		t.Errorf("weekend rate %v, want 2× weekday %v", weekend, weekday)
	}

	drift, err := PopularityDrift(4, 24, 900, 0.8, 1.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := drift.Validate(); err != nil {
		t.Fatal(err)
	}
	// Aggregate intensity is conserved while ranks rotate.
	for _, at := range []float64{0, 3 * 3600, 9*3600 + 450} {
		var total float64
		for c := 0; c < 4; c++ {
			r, _ := drift.Rate(c, at)
			total += r
		}
		if math.Abs(total-1.2) > 1e-9 {
			t.Errorf("drift aggregate at %v = %v, want 1.2", at, total)
		}
	}

	ld, err := LaunchDecay(3, 12, 900, 0.5, 1, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := ld.Rate(2, 3600); r != 0 {
		t.Errorf("channel 2 live before its launch: rate %v at 1 h", r)
	}
	if r, _ := ld.Rate(0, 2*3600); r <= 0 {
		t.Error("channel 0 still silent 2 h after launch")
	}

	for _, bad := range []error{
		func() error { _, err := FromSource(nil, 1, 60); return err }(),
		func() error { _, err := WeekdayWeekend(wl, 0, 60, 1); return err }(),
		func() error { _, err := PopularityDrift(0, 1, 60, 0.8, 1, 1); return err }(),
		func() error { _, err := LaunchDecay(2, 1, 60, 1, 0, 1, 1); return err }(),
		func() error { _, err := FromSource(wl.Source(), -1, 60); return err }(),
		func() error { _, err := FromSource(wl.Source(), 1, 0); return err }(),
	} {
		if bad == nil {
			t.Error("generator accepted degenerate arguments")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := ramp()
	enc := EncodeCSV(tr)
	if !strings.HasPrefix(string(enc), "time_s,ch0,ch1\n") {
		t.Fatalf("unexpected header: %q", string(enc[:20]))
	}
	back, err := ParseCSV(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeCSV(back), enc) {
		t.Error("CSV encode∘parse not byte-stable")
	}
	if back.NumChannels() != 2 || len(back.Times) != 3 {
		t.Errorf("round-trip shape: %d channels × %d samples", back.NumChannels(), len(back.Times))
	}

	for name, input := range map[string]string{
		"empty":          "",
		"header only":    "time_s,ch0\n",
		"no channels":    "time_s\n0\n",
		"ragged row":     "time_s,ch0\n0,1\n1\n",
		"bad float":      "time_s,ch0\n0,x\n",
		"bad time":       "time_s,ch0\nx,1\n",
		"negative rate":  "time_s,ch0\n0,-1\n",
		"dup timestamps": "time_s,ch0\n0,1\n0,2\n",
		"inf rate":       "time_s,ch0\n0,1e999\n",
	} {
		if _, err := ParseCSV([]byte(input)); err == nil {
			t.Errorf("%s: ParseCSV accepted %q", name, input)
		}
	}

	// Whitespace and scientific notation are accepted and canonicalized.
	loose := "t,a,b\n 0 ,1e1, 2.50 \n9.0,3,0.1\n"
	got, err := ParseCSV([]byte(loose))
	if err != nil {
		t.Fatal(err)
	}
	canon := EncodeCSV(got)
	if want := "time_s,ch0,ch1\n0,10,2.5\n9,3,0.1\n"; string(canon) != want {
		t.Errorf("canonical form = %q, want %q", canon, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := ramp()
	enc, err := EncodeJSON(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("JSON encode∘parse not byte-stable")
	}
	for name, input := range map[string]string{
		"garbage":       "{",
		"empty object":  "{}",
		"negative rate": `{"times":[0],"rates":[[-1]]}`,
		"row mismatch":  `{"times":[0,1],"rates":[[1]]}`,
	} {
		if _, err := ParseJSON([]byte(input)); err == nil {
			t.Errorf("%s: ParseJSON accepted %q", name, input)
		}
	}
}

func TestReadWriteFileDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	tr := ramp()
	for _, name := range []string{"t.csv", "t.json"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumChannels() != 2 || len(back.Times) != 3 {
			t.Errorf("%s: shape lost in round trip", name)
		}
	}
	if err := WriteFile(filepath.Join(dir, "t.xml"), tr); err == nil {
		t.Error("unsupported extension accepted on write")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("unsupported extension accepted on read")
	}
}

// TestGridOverflowGuards pins the review fix: degenerate step/duration
// ratios must fail with "grid too large" instead of overflowing the int
// conversion and hanging or OOMing.
func TestGridOverflowGuards(t *testing.T) {
	day := &Trace{Times: []float64{0, 86400}, Rates: [][]float64{{1, 1}}}
	if _, err := day.Resample(1e-9); err == nil {
		t.Error("Resample with a sub-nanosecond step accepted")
	}
	wl := workload.Default()
	wl.Channels = 2
	if _, err := FromSource(wl.Source(), 1e30, 900); err == nil {
		t.Error("1e30-hour grid accepted")
	}
	if _, err := FromSource(wl.Source(), 24, 1e-12); err == nil {
		t.Error("1e-12-second step accepted")
	}
	if _, err := LaunchDecay(4, 1e25, 1, 1, 1, 1, 1); err == nil {
		t.Error("launchdecay overflow grid accepted")
	}
}
