package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The codec is byte-stable: for any parseable input, parse → encode →
// parse → encode yields the same bytes as the first encode. Floats are
// rendered with strconv's shortest round-trippable form, rows in channel
// order, so an encoded trace is a canonical artifact safe to golden-test
// and to diff across runs. FuzzParseTraceCSV/JSON enforce the property.

// maxTraceCells caps samples × channels so a malformed or hostile input
// cannot allocate unbounded memory during parsing.
const maxTraceCells = 1 << 24

// ParseCSV parses the trace CSV schema (EXPERIMENTS.md "Trace CSV
// schema"): a header line `time_s,ch0,ch1,…` followed by one row per
// sample, first column the time in seconds, remaining columns per-channel
// arrival rates in users/s. Header names are not interpreted — only the
// column count matters. The parsed trace is validated.
func ParseCSV(data []byte) (*Trace, error) {
	lines := strings.Split(string(data), "\n")
	// Tolerate trailing newline(s).
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 2 {
		return nil, fmt.Errorf("trace: CSV needs a header and at least one sample row")
	}
	channels := strings.Count(lines[0], ",")
	if channels < 1 {
		return nil, fmt.Errorf("trace: CSV header has no channel columns")
	}
	samples := len(lines) - 1
	if samples*channels > maxTraceCells {
		return nil, fmt.Errorf("trace: CSV too large (%d samples × %d channels)", samples, channels)
	}
	tr := &Trace{
		Times: make([]float64, samples),
		Rates: make([][]float64, channels),
	}
	for c := range tr.Rates {
		tr.Rates[c] = make([]float64, samples)
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != channels+1 {
			return nil, fmt.Errorf("trace: row %d has %d columns, want %d", i+1, len(fields), channels+1)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad time %q", i+1, fields[0])
		}
		tr.Times[i] = t
		for c := 0; c < channels; c++ {
			r, err := strconv.ParseFloat(strings.TrimSpace(fields[c+1]), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d: bad rate %q", i+1, fields[c+1])
			}
			tr.Rates[c][i] = r
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// EncodeCSV renders the trace in the canonical CSV schema. The trace must
// be valid; EncodeCSV panics on rows shorter than the time grid (an
// invariant Validate enforces).
func EncodeCSV(tr *Trace) []byte {
	var buf bytes.Buffer
	buf.WriteString("time_s")
	for c := range tr.Rates {
		fmt.Fprintf(&buf, ",ch%d", c)
	}
	buf.WriteByte('\n')
	for i, t := range tr.Times {
		buf.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		for c := range tr.Rates {
			buf.WriteByte(',')
			buf.WriteString(strconv.FormatFloat(tr.Rates[c][i], 'g', -1, 64))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// ParseJSON parses the JSON schema {"times":[…],"rates":[[…],…]} and
// validates the result.
func ParseJSON(data []byte) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(tr.Times)*len(tr.Rates) > maxTraceCells {
		return nil, fmt.Errorf("trace: JSON too large (%d samples × %d channels)", len(tr.Times), len(tr.Rates))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// EncodeJSON renders the trace as canonical single-line JSON with a
// trailing newline.
func EncodeJSON(tr *Trace) ([]byte, error) {
	out, err := json.Marshal(tr)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return append(out, '\n'), nil
}

// ReadFile loads a trace from a .csv or .json file, dispatching on the
// extension.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ParseCSV(data)
	case ".json":
		return ParseJSON(data)
	default:
		return nil, fmt.Errorf("trace: unsupported trace extension %q (want .csv or .json)", ext)
	}
}

// WriteFile writes a trace to a .csv or .json file, dispatching on the
// extension.
func WriteFile(path string, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	var data []byte
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		data = EncodeCSV(tr)
	case ".json":
		var err error
		data, err = EncodeJSON(tr)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unsupported trace extension %q (want .csv or .json)", ext)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}
