package trace

import (
	"fmt"
	"math"
	"sort"

	"cloudmedia/internal/workload"
)

// Trace is a per-channel arrival-intensity series: Rates[c][i] is channel
// c's arrival rate (users/s) at instant Times[i]. Between samples the
// intensity is linearly interpolated; before the first and after the last
// sample it holds the boundary value, so a trace replays indefinitely at
// its closing intensity. Times need not be uniform — Resample produces a
// uniform grid when one is wanted.
//
// Trace implements workload.Source. A validated Trace is immutable in
// use: every query is read-only, so one trace may drive concurrent runs
// (each run still clones it via CloneSource, matching the engines'
// ownership convention).
type Trace struct {
	// Times holds the sample instants in seconds, strictly increasing.
	Times []float64 `json:"times"`
	// Rates holds one row per channel, each len(Times) long, users/s.
	Rates [][]float64 `json:"rates"`
}

var _ workload.Source = (*Trace)(nil)

// Validate checks the trace invariants: at least one sample and one
// channel, strictly increasing finite times, and finite non-negative
// rates with every channel row matching the time grid.
func (tr *Trace) Validate() error {
	if tr == nil {
		return fmt.Errorf("trace: nil trace")
	}
	if len(tr.Times) == 0 {
		return fmt.Errorf("trace: no samples")
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("trace: no channels")
	}
	for i, t := range tr.Times {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("trace: non-finite time at sample %d", i)
		}
		if i > 0 && t <= tr.Times[i-1] {
			return fmt.Errorf("trace: times not strictly increasing at sample %d (%v after %v)", i, t, tr.Times[i-1])
		}
	}
	for c, row := range tr.Rates {
		if len(row) != len(tr.Times) {
			return fmt.Errorf("trace: channel %d has %d samples, want %d", c, len(row), len(tr.Times))
		}
		for i, r := range row {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("trace: channel %d: non-finite rate at sample %d", c, i)
			}
			if r < 0 {
				return fmt.Errorf("trace: channel %d: negative rate %v at sample %d", c, r, i)
			}
		}
	}
	return nil
}

// NumChannels returns the number of channels the trace describes.
func (tr *Trace) NumChannels() int { return len(tr.Rates) }

// Duration returns the span covered by the samples, seconds.
func (tr *Trace) Duration() float64 {
	if len(tr.Times) == 0 {
		return 0
	}
	return tr.Times[len(tr.Times)-1] - tr.Times[0]
}

// Rate returns channel c's intensity at time t: linear between samples,
// the boundary value outside them.
func (tr *Trace) Rate(channel int, t float64) (float64, error) {
	if channel < 0 || channel >= len(tr.Rates) {
		return 0, fmt.Errorf("trace: channel %d outside [0,%d)", channel, len(tr.Rates))
	}
	row := tr.Rates[channel]
	times := tr.Times
	if len(times) == 0 || len(row) != len(times) {
		return 0, fmt.Errorf("trace: channel %d: malformed series", channel)
	}
	if t <= times[0] {
		return row[0], nil
	}
	last := len(times) - 1
	if t >= times[last] {
		return row[last], nil
	}
	// First sample strictly after t; the invariant above guarantees
	// 1 <= i <= last.
	i := sort.SearchFloat64s(times, t)
	if times[i] == t {
		return row[i], nil
	}
	t0, t1 := times[i-1], times[i]
	f := (t - t0) / (t1 - t0)
	return row[i-1] + f*(row[i]-row[i-1]), nil
}

// RatesInto implements workload.BatchSource: every channel shares the
// same interpolation segment at a fixed instant, so the binary search over
// Times runs once here instead of once per channel. Each entry follows
// Rate's exact arithmetic (row[i-1] + f*(row[i]-row[i-1]) with the same
// f), so the batched values are bit-identical to per-channel Rate calls.
//
//cloudmedia:hotpath
func (tr *Trace) RatesInto(t float64, dst []float64) error {
	if len(dst) != len(tr.Rates) {
		return rateBufLenError(len(dst), len(tr.Rates))
	}
	times := tr.Times
	if len(times) == 0 {
		return errNoSamples()
	}
	last := len(times) - 1
	switch {
	case t <= times[0]:
		for c, row := range tr.Rates {
			dst[c] = row[0]
		}
	case t >= times[last]:
		for c, row := range tr.Rates {
			dst[c] = row[last]
		}
	default:
		i := sort.SearchFloat64s(times, t)
		if times[i] == t {
			for c, row := range tr.Rates {
				dst[c] = row[i]
			}
			return nil
		}
		t0, t1 := times[i-1], times[i]
		f := (t - t0) / (t1 - t0)
		for c, row := range tr.Rates {
			dst[c] = row[i-1] + f*(row[i]-row[i-1])
		}
	}
	return nil
}

// MaxRate returns the channel's peak sampled intensity — an exact
// envelope, since linear interpolation and constant extrapolation never
// exceed the samples.
func (tr *Trace) MaxRate(channel int) (float64, error) {
	if channel < 0 || channel >= len(tr.Rates) {
		return 0, fmt.Errorf("trace: channel %d outside [0,%d)", channel, len(tr.Rates))
	}
	var max float64
	for _, r := range tr.Rates[channel] {
		if r > max {
			max = r
		}
	}
	return max, nil
}

// MeanRate returns the exact mean of the piecewise-linear intensity over
// [start, end), including the constant extrapolation outside the samples.
func (tr *Trace) MeanRate(channel int, start, end float64) (float64, error) {
	if channel < 0 || channel >= len(tr.Rates) {
		return 0, fmt.Errorf("trace: channel %d outside [0,%d)", channel, len(tr.Rates))
	}
	if end <= start {
		return 0, nil
	}
	row := tr.Rates[channel]
	times := tr.Times
	if len(times) == 0 || len(row) != len(times) {
		return 0, fmt.Errorf("trace: channel %d: malformed series", channel)
	}
	var integral float64
	last := len(times) - 1
	// Leading flat segment before the first sample.
	if start < times[0] {
		hi := math.Min(end, times[0])
		integral += row[0] * (hi - start)
	}
	// Interior piecewise-linear segments.
	for i := 0; i < last; i++ {
		lo := math.Max(start, times[i])
		hi := math.Min(end, times[i+1])
		if hi <= lo {
			continue
		}
		r0, err := tr.Rate(channel, lo)
		if err != nil {
			return 0, err
		}
		r1, err := tr.Rate(channel, hi)
		if err != nil {
			return 0, err
		}
		integral += (r0 + r1) / 2 * (hi - lo)
	}
	// Trailing flat segment after the last sample.
	if end > times[last] {
		lo := math.Max(start, times[last])
		integral += row[last] * (end - lo)
	}
	return integral / (end - start), nil
}

// CloneSource returns a deep copy as a workload.Source.
func (tr *Trace) CloneSource() workload.Source { return tr.Clone() }

// Clone returns a deep copy: times and every channel row are reallocated.
func (tr *Trace) Clone() *Trace {
	out := &Trace{
		Times: append([]float64(nil), tr.Times...),
		Rates: make([][]float64, len(tr.Rates)),
	}
	for c, row := range tr.Rates {
		out.Rates[c] = append([]float64(nil), row...)
	}
	return out
}

// Scale returns a copy with every intensity multiplied by factor — the
// trace counterpart of the workload scale knob.
func (tr *Trace) Scale(factor float64) (*Trace, error) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("trace: invalid scale factor %v", factor)
	}
	out := tr.Clone()
	for _, row := range out.Rates {
		for i := range row {
			row[i] *= factor
		}
	}
	return out, nil
}

// Resample returns the trace re-sampled onto a uniform grid of the given
// step covering the original span, interpolating linearly. The last
// sample instant is included even when the span is not a multiple of the
// step, so no trailing demand is dropped.
func (tr *Trace) Resample(stepSeconds float64) (*Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if stepSeconds <= 0 || math.IsNaN(stepSeconds) || math.IsInf(stepSeconds, 0) {
		return nil, fmt.Errorf("trace: non-positive resample step %v", stepSeconds)
	}
	// Bound the grid in float space before allocating anything: a tiny
	// step over a long span must fail, not OOM (the int conversion alone
	// could overflow and defeat an integer check).
	if samples := tr.Duration()/stepSeconds + 2; samples*float64(len(tr.Rates)) > maxTraceCells {
		return nil, fmt.Errorf("trace: resample grid too large (~%g samples × %d channels)", samples, len(tr.Rates))
	}
	start, end := tr.Times[0], tr.Times[len(tr.Times)-1]
	var times []float64
	for t := start; t < end; t += stepSeconds {
		times = append(times, t)
	}
	times = append(times, end)
	out := &Trace{Times: times, Rates: make([][]float64, len(tr.Rates))}
	for c := range tr.Rates {
		row := make([]float64, len(times))
		for i, t := range times {
			r, err := tr.Rate(c, t)
			if err != nil {
				return nil, err
			}
			row[i] = r
		}
		out.Rates[c] = row
	}
	return out, nil
}

// rateBufLenError and errNoSamples are the cold halves of RatesInto's
// guards, kept out of line so the annotated hot body contains no fmt
// machinery.
func rateBufLenError(n, channels int) error {
	return fmt.Errorf("trace: rate buffer length %d != channels %d", n, channels)
}

func errNoSamples() error { return fmt.Errorf("trace: no samples") }
