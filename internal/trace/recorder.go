package trace

import (
	"fmt"
	"math"
)

// Recorder bins a run's realized arrivals back into a replayable Trace.
// Wire its Add method into the engines' arrival hook (sim.Config's
// OnArrivals, or simulate.OnArrivals at the public API) and call Trace
// with the run's horizon when it finishes:
//
//	rec, _ := trace.NewRecorder(channels, 900)
//	report, _ := sc.Run(ctx, simulate.OnArrivals(rec.Add))
//	tr, _ := rec.Trace(report.Hours * 3600)
//
// Concurrency: the engines invoke the arrival hook from per-channel
// shards — calls for one channel are serialized, different channels may
// call concurrently. The recorder therefore keeps strictly per-channel
// state and shares nothing across channels, matching that contract. It
// must not be shared between two simultaneous runs.
type Recorder struct {
	step float64
	bins [][]float64 // per-channel arrival counts per bin
}

// NewRecorder builds a recorder with the given channel count and bin
// width in seconds. The bin width is the resolution of the recovered
// trace; the provisioning interval (or the sampling period) is a natural
// choice.
func NewRecorder(channels int, stepSeconds float64) (*Recorder, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("trace: non-positive recorder channel count %d", channels)
	}
	if stepSeconds <= 0 || math.IsNaN(stepSeconds) || math.IsInf(stepSeconds, 0) {
		return nil, fmt.Errorf("trace: non-positive recorder step %v", stepSeconds)
	}
	return &Recorder{step: stepSeconds, bins: make([][]float64, channels)}, nil
}

// Add records n arrivals on the channel at simulated time t. The event
// engine calls it with n = 1 per viewer; the fluid engine with the
// fractional arrival mass of each integration step. Out-of-range
// channels and non-positive times or counts are ignored: the recorder is
// an observer and must never fail a run.
func (r *Recorder) Add(channel int, t, n float64) {
	if channel < 0 || channel >= len(r.bins) || n <= 0 || t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return
	}
	bin := int(t / r.step)
	row := r.bins[channel]
	for len(row) <= bin {
		row = append(row, 0)
	}
	row[bin] += n
	r.bins[channel] = row
}

// Trace converts the recorded bins into a trace: each bin's count divided
// by the bin width becomes the intensity at the bin's midpoint, padded
// with empty bins up to the given horizon so quiet closing intervals
// replay as quiet instead of being truncated.
func (r *Recorder) Trace(horizonSeconds float64) (*Trace, error) {
	bins := 0
	for _, row := range r.bins {
		if len(row) > bins {
			bins = len(row)
		}
	}
	if horizonSeconds > 0 {
		if want := int(math.Ceil(horizonSeconds / r.step)); want > bins {
			bins = want
		}
	}
	if bins == 0 {
		return nil, fmt.Errorf("trace: recorder saw no arrivals and no horizon")
	}
	if bins*len(r.bins) > maxTraceCells {
		return nil, fmt.Errorf("trace: recording too large (%d bins × %d channels)", bins, len(r.bins))
	}
	tr := &Trace{Times: make([]float64, bins), Rates: make([][]float64, len(r.bins))}
	for i := range tr.Times {
		tr.Times[i] = (float64(i) + 0.5) * r.step
	}
	for c, row := range r.bins {
		rates := make([]float64, bins)
		for i := 0; i < bins && i < len(row); i++ {
			rates[i] = row[i] / r.step
		}
		tr.Rates[c] = rates
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
