// Package trace drives the simulation engines from recorded or
// synthesized demand instead of the paper's single parametric workload.
//
// A Trace is a per-channel arrival-intensity series sampled at explicit
// instants; between samples the intensity is linear, outside them it
// holds the boundary value. Trace implements workload.Source, so a trace
// plugs into both simulation engines, the oracle policy's true-rate feed,
// and the bootstrap estimates exactly like the parametric workload.
//
// The package also provides a byte-stable CSV/JSON codec (ParseCSV,
// EncodeCSV, ParseJSON, EncodeJSON — encode∘parse is the identity on
// encoder output), resampling/scaling transforms, synthetic generators
// beyond the paper's diurnal pattern (weekday/weekend cycles, popularity
// drift, channel launch/decay), and a Recorder that bins a run's realized
// arrivals back into a replayable Trace for record→replay workflows.
package trace
