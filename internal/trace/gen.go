package trace

import (
	"fmt"
	"math"

	"cloudmedia/internal/mathx"
	"cloudmedia/internal/workload"
)

// FromSource samples any demand source onto a uniform grid — the bridge
// from the parametric workload (or another trace) into the codec:
// FromSource(params.Source(), 24, 900) materializes the paper's diurnal
// pattern as a portable CSV/JSON artifact.
func FromSource(src workload.Source, hours, stepSeconds float64) (*Trace, error) {
	if src == nil {
		return nil, fmt.Errorf("trace: nil source")
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	times, err := uniformGrid(hours, stepSeconds, src.NumChannels())
	if err != nil {
		return nil, err
	}
	tr := &Trace{Times: times, Rates: make([][]float64, src.NumChannels())}
	for c := range tr.Rates {
		row := make([]float64, len(times))
		for i, t := range times {
			r, err := src.Rate(c, t)
			if err != nil {
				return nil, err
			}
			row[i] = r
		}
		tr.Rates[c] = row
	}
	return tr, nil
}

// WeekdayWeekend samples the parametric workload over several days with a
// weekly cycle the paper's single-day pattern cannot express: days 5 and
// 6 of each week (the weekend) scale the diurnal intensity by
// weekendFactor (>1 models weekend binge crowds, <1 quiet weekends).
func WeekdayWeekend(p workload.Params, days int, stepSeconds, weekendFactor float64) (*Trace, error) {
	if days <= 0 {
		return nil, fmt.Errorf("trace: non-positive day count %d", days)
	}
	if weekendFactor < 0 || math.IsNaN(weekendFactor) || math.IsInf(weekendFactor, 0) {
		return nil, fmt.Errorf("trace: invalid weekend factor %v", weekendFactor)
	}
	src := p.Source()
	if err := src.Validate(); err != nil {
		return nil, err
	}
	times, err := uniformGrid(float64(days)*24, stepSeconds, src.NumChannels())
	if err != nil {
		return nil, err
	}
	tr := &Trace{Times: times, Rates: make([][]float64, src.NumChannels())}
	for c := range tr.Rates {
		row := make([]float64, len(times))
		for i, t := range times {
			r, err := src.Rate(c, t)
			if err != nil {
				return nil, err
			}
			if day := int(t/(24*3600)) % 7; day == 5 || day == 6 {
				r *= weekendFactor
			}
			row[i] = r
		}
		tr.Rates[c] = row
	}
	return tr, nil
}

// PopularityDrift generates channels whose Zipf popularity ranking
// rotates over time: every periodHours the whole ranking shifts by one
// channel, crossfading linearly so the aggregate rate stays constant at
// totalRate while individual channels rise from the tail to the head and
// sink back — the popularity churn of a real catalog.
func PopularityDrift(channels int, hours, stepSeconds, zipfExponent, totalRate, periodHours float64) (*Trace, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("trace: non-positive channel count %v", channels)
	}
	if totalRate < 0 || math.IsNaN(totalRate) || math.IsInf(totalRate, 0) {
		return nil, fmt.Errorf("trace: invalid total rate %v", totalRate)
	}
	if periodHours <= 0 {
		return nil, fmt.Errorf("trace: non-positive drift period %v h", periodHours)
	}
	w, err := mathx.ZipfWeights(channels, zipfExponent)
	if err != nil {
		return nil, err
	}
	times, err := uniformGrid(hours, stepSeconds, channels)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Times: times, Rates: make([][]float64, channels)}
	for c := range tr.Rates {
		tr.Rates[c] = make([]float64, len(times))
	}
	for i, t := range times {
		phase := t / (periodHours * 3600)
		k := int(phase)
		frac := phase - float64(k)
		for c := 0; c < channels; c++ {
			lo := w[(c+k)%channels]
			hi := w[(c+k+1)%channels]
			tr.Rates[c][i] = totalRate * ((1-frac)*lo + frac*hi)
		}
	}
	return tr, nil
}

// LaunchDecay generates a catalog of channel launches: channel c goes
// live at c × staggerHours, ramps toward peakRate with the given ramp
// time constant, and decays with the given half-life — the
// release-then-fade lifecycle of on-demand titles. Channels not yet
// launched have zero demand, so early intervals exercise the engines'
// empty-channel paths.
func LaunchDecay(channels int, hours, stepSeconds, peakRate, rampHours, halfLifeHours, staggerHours float64) (*Trace, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("trace: non-positive channel count %v", channels)
	}
	if peakRate < 0 || math.IsNaN(peakRate) || math.IsInf(peakRate, 0) {
		return nil, fmt.Errorf("trace: invalid peak rate %v", peakRate)
	}
	if rampHours <= 0 || halfLifeHours <= 0 || staggerHours < 0 {
		return nil, fmt.Errorf("trace: non-positive launch/decay shape (ramp %v h, half-life %v h, stagger %v h)",
			rampHours, halfLifeHours, staggerHours)
	}
	times, err := uniformGrid(hours, stepSeconds, channels)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Times: times, Rates: make([][]float64, channels)}
	for c := range tr.Rates {
		launch := float64(c) * staggerHours * 3600
		row := make([]float64, len(times))
		for i, t := range times {
			if t <= launch {
				continue
			}
			age := (t - launch) / 3600 // hours since launch
			row[i] = peakRate * (1 - math.Exp(-age/rampHours)) * math.Exp2(-age/halfLifeHours)
		}
		tr.Rates[c] = row
	}
	return tr, nil
}

// uniformGrid builds the sample instants for hours of demand at the given
// step, rejecting degenerate shapes and grids that exceed the codec cap.
func uniformGrid(hours, stepSeconds float64, channels int) ([]float64, error) {
	if hours <= 0 || math.IsNaN(hours) || math.IsInf(hours, 0) {
		return nil, fmt.Errorf("trace: non-positive duration %v h", hours)
	}
	if stepSeconds <= 0 || math.IsNaN(stepSeconds) || math.IsInf(stepSeconds, 0) {
		return nil, fmt.Errorf("trace: non-positive step %v s", stepSeconds)
	}
	end := hours * 3600
	// Bound the grid in float space before the int conversion: for
	// extreme hours/step ratios int(end/stepSeconds) overflows (to a
	// negative value), which would slip past an integer-only check and
	// let the append loop below run essentially forever.
	samplesF := end/stepSeconds + 2
	if ch := float64(channels); ch > 0 && samplesF*ch > maxTraceCells {
		return nil, fmt.Errorf("trace: grid too large (~%g samples × %d channels)", samplesF, channels)
	}
	samples := int(samplesF)
	times := make([]float64, 0, samples)
	for t := 0.0; t < end; t += stepSeconds {
		times = append(times, t)
	}
	times = append(times, end)
	return times, nil
}
