package fluid

import (
	"testing"

	"cloudmedia/internal/sim"
)

// The fluid engine honours the same pacing contract as the event engine:
// the hook fires before each integration barrier, nondecreasing, capped
// by the RunUntil target, and never perturbs the run.
func TestFluidPacerCalledPerBarrier(t *testing.T) {
	cfg := smallConfig(t, sim.ClientServer)
	var barriers []float64
	var b *Backend
	cfg.Sim.Pacer = func(simNow float64) {
		if b.Now() >= simNow {
			t.Fatalf("pacer at %v called after state advanced to %v", simNow, b.Now())
		}
		barriers = append(barriers, simNow)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	const horizon = 600.0
	b.RunUntil(horizon)
	if len(barriers) == 0 {
		t.Fatal("pacer never called")
	}
	for i, bt := range barriers {
		if bt > horizon {
			t.Fatalf("barrier %v beyond the RunUntil target %v", bt, horizon)
		}
		if i > 0 && bt < barriers[i-1] {
			t.Fatalf("barriers went backwards: %v after %v", bt, barriers[i-1])
		}
	}
}

func TestFluidPacerDoesNotPerturbRun(t *testing.T) {
	run := func(withPacer bool) (float64, float64) {
		cfg := smallConfig(t, sim.ClientServer)
		if withPacer {
			cfg.Sim.Pacer = func(float64) {}
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		provisionGenerously(t, b)
		b.RunUntil(3600)
		var users float64
		for c := 0; c < b.C; c++ {
			users += b.channelUsers(c)
		}
		return users, b.CloudBytesServed()
	}
	u0, by0 := run(false)
	u1, by1 := run(true)
	if u0 != u1 || by0 != by1 {
		t.Fatalf("pacer perturbed the run: (%v, %v) vs (%v, %v)", u0, by0, u1, by1)
	}
}

// The Euler loop's batched rate reads must not allocate once the scratch
// buffer exists: steady integration is the million-viewer hot path.
// Workers is pinned to 1: the serial path must be alloc-free, while the
// pool path pays its per-batch goroutine handoff (amortized over up to
// batchSteps steps; see TestFluidBatchedInnerLoopAllocFree for the
// multi-step batch case).
func TestFluidSteadySteppingAllocFree(t *testing.T) {
	cfg := smallConfig(t, sim.ClientServer)
	cfg.Sim.Workers = 1
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	b.RunUntil(600) // warm up: feed matrices, departure scratch
	now := 600.0
	allocs := testing.AllocsPerRun(200, func() {
		now += 1
		b.RunUntil(now)
	})
	if allocs > 0 {
		t.Fatalf("steady fluid stepping allocates %.1f times per step", allocs)
	}
}
