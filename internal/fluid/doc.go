// Package fluid is the aggregate simulation backend: a deterministic
// fluid-cohort model of the CloudMedia VoD system with O(channels ×
// chunks) state, independent of the viewer count.
//
// Where the discrete-event engine (internal/sim) tracks every viewer as
// an object — its playback position, cached chunks, and several scheduled
// events per chunk transition — this package tracks *cohorts*: the
// expected number of viewers playing each chunk and the expected number
// waiting on each chunk's download, advanced by explicit Euler
// integration of the flow-balance equations the paper's Sec. IV Jackson
// analysis is built on. Arrivals, playback completions, VCR jumps, and
// departures become continuous flows; download queues become
// demand-vs-capacity deficits. A million-viewer day integrates in
// milliseconds because the crowd size only changes the magnitudes of the
// flows, never the amount of state.
//
// The fidelity trade-offs (what the fluid model drops relative to the
// event engine) are documented in DESIGN.md's "Engine fidelities"
// section; the cross-validation test in internal/experiments pins the
// two engines against each other on the paper's Fig. 4/5 scenarios.
package fluid
